#include "proto/registry.hpp"

#include <utility>

#include "core/engine.hpp"
#include "proto/birthday.hpp"
#include "proto/desync.hpp"
#include "proto/fst.hpp"
#include "proto/st.hpp"

namespace firefly::proto {

namespace {

template <typename Engine>
std::unique_ptr<core::EngineBase> make_engine(std::vector<geo::Vec2> positions,
                                              const core::ProtocolParams& params,
                                              const phy::RadioParams& radio,
                                              std::uint64_t seed) {
  return std::make_unique<Engine>(std::move(positions), params, radio, seed);
}

}  // namespace

Registry& Registry::instance() {
  static Registry registry = [] {
    Registry r;
    r.add({"fst", "FST", "full-mesh firefly baseline (Chao et al. 2013)",
           core::Protocol::kFst, &make_engine<FstEngine>});
    r.add({"st", "ST", "spanning-tree firefly (the paper's proposed algorithm)",
           core::Protocol::kSt, &make_engine<StEngine>});
    r.add({"birthday", "Birthday", "sync-free random-beacon discovery baseline",
           core::Protocol::kBirthday, &make_engine<BirthdayEngine>});
    r.add({"desync", "DESYNC",
           "dithered desynchronisation to a round-robin schedule (arXiv:1210.2122)",
           core::Protocol::kDesync, &make_engine<DesyncEngine>});
    return r;
  }();
  return registry;
}

bool Registry::add(ProtocolInfo info) {
  if (info.factory == nullptr) return false;
  if (find(info.name) != nullptr || find(info.id) != nullptr) return false;
  infos_.push_back(std::move(info));
  return true;
}

const ProtocolInfo* Registry::find(std::string_view name) const {
  for (const ProtocolInfo& info : infos_) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

const ProtocolInfo* Registry::find(core::Protocol id) const {
  for (const ProtocolInfo& info : infos_) {
    if (info.id == id) return &info;
  }
  return nullptr;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(infos_.size());
  for (const ProtocolInfo& info : infos_) out.push_back(info.name);
  return out;
}

std::unique_ptr<core::EngineBase> Registry::make(std::string_view name,
                                                 std::vector<geo::Vec2> positions,
                                                 const core::ProtocolParams& params,
                                                 const phy::RadioParams& radio,
                                                 std::uint64_t seed) const {
  const ProtocolInfo* info = find(name);
  if (info == nullptr) return nullptr;
  return info->factory(std::move(positions), params, radio, seed);
}

std::unique_ptr<core::EngineBase> Registry::make(core::Protocol id,
                                                 std::vector<geo::Vec2> positions,
                                                 const core::ProtocolParams& params,
                                                 const phy::RadioParams& radio,
                                                 std::uint64_t seed) const {
  const ProtocolInfo* info = find(id);
  if (info == nullptr) return nullptr;
  return info->factory(std::move(positions), params, radio, seed);
}

}  // namespace firefly::proto
