// st.hpp — the proposed ST algorithm (paper Algorithms 1–3).
//
// GHS/Borůvka-style fragment growth over RSSI-weighted edges, with the
// paper's two-codec split: RACH1 carries regular firefly operation (sync
// pulses + discovery beacons), RACH2 carries fragment control (H_Connect
// request/accept, merge announcements, Change_head tokens).
//
// Protocol sketch (all messages are radio broadcasts; "addressed" means
// the payload names a target and others ignore it):
//   1. Discovery window: every device beacons a few times at random slots,
//      so neighbour tables hold PS-strength weights before merging starts.
//   2. Every device starts as the head of its own singleton fragment.
//      Heads act on a periodic round timer (staggered by device id):
//        - H_Connect (Algorithm 2): pick the *heaviest* outgoing edge
//          (strongest-PS neighbour in another fragment) and send a
//          ConnectRequest; the peer answers ConnectAccept.  Both ends then
//          agree deterministically on the merge winner — the larger
//          fragment, ties to the smaller label (Algorithm 1 line 12) — and
//          the losing side adopts the winner's label AND oscillator phase.
//        - Change_head (Algorithm 1 line 10): a head with no outgoing edge
//          passes headship to a tree neighbour round-robin.
//   3. Merge announcements flood through the losing fragment (each member
//      relays once), re-stamping the relayer's now-synchronised counter so
//      every member adopts the winner's phase (this is the
//      "F_F_A(..., RACH2)" inter-subtree synchronisation of Algorithm 1).
//   4. Sync pulses (RACH1) couple only along tree edges, polishing residual
//      offset; convergence is detected exactly as for FST.
//
// Robustness against message loss, churn and partitions: connect retries
// with bounded exponential backoff and a retry cap (after which headship
// moves on), announce dedup by (winner, loser), and a head *lease* — a
// member that has heard no proof of a live head for its fragment for
// head_lease_periods re-labels the reachable remnant under a fresh label
// and takes headship, so fragments orphaned by a crashed head, a lost head
// token or a network partition re-join through the normal H_Connect
// machinery.  Crashed devices cold-boot as singleton fragments under a
// fresh label (`on_recover`).
#pragma once

#include "core/engine.hpp"

namespace firefly::proto {

using core::Device;
using core::EngineBase;
using core::RunMetrics;

class StEngine : public EngineBase {
 public:
  using EngineBase::EngineBase;

 protected:
  void on_start() override;
  void deliver_batched(const mac::RxBatch& batch) override;
  void emit_fire_broadcast(Device& device) override;
  void fill_protocol_metrics(RunMetrics& metrics) const override;
  /// Algorithm 1 terminates when one fragment spans the (live) network.
  [[nodiscard]] bool protocol_complete() const override;
  /// Cold-boot fragment state after a crash: singleton head, fresh label.
  void on_recover(Device& device) override;
  /// Snapshot/restore: the fresh-label cursor is ST's only engine-level
  /// mutable scalar (everything else lives in the Device records).
  [[nodiscard]] std::uint64_t protocol_snapshot_word() const override {
    return next_label_;
  }
  void protocol_restore_word(std::uint64_t word) override {
    next_label_ = static_cast<std::uint16_t>(word);
  }

 private:
  /// One decoded PS (the per-record body of deliver_batched's sweep).
  void on_record(const mac::RxRecord& record);
  void round_action(Device& device);
  /// Strongest fresh neighbour outside the device's fragment, or nullptr.
  [[nodiscard]] const std::uint32_t* best_outgoing(const Device& device) const;
  [[nodiscard]] bool has_outgoing(const Device& device) const;
  void attempt_connect(Device& device);
  /// Pass headship to a tree neighbour; false when there is nobody to pass
  /// it to (or the fragment has gone quiet and the head parks instead).
  bool change_head(Device& device);
  /// Head-lease expiry: re-label the reachable remnant of a headless
  /// fragment and take headship (see the file comment).
  void maybe_reclaim_headless_fragment(Device& device);
  /// A fragment label never used by a live fragment before (labels from the
  /// id range are only minted by the initial singletons and orphan
  /// restarts; recovery and lease reclaim must not collide with them).
  [[nodiscard]] std::uint16_t fresh_label();
  /// Deterministic winner rule shared by both H_Connect endpoints.
  [[nodiscard]] static bool left_wins(std::uint16_t left_frag, std::uint16_t left_size,
                                      std::uint16_t right_frag, std::uint16_t right_size);
  void local_merge(Device& device, std::uint16_t peer_frag, std::uint16_t peer_size,
                   std::uint32_t peer_device, std::uint32_t adopted_counter);
  void emit_announce(Device& device, std::uint16_t winner, std::uint16_t loser,
                     std::uint16_t new_size);
  void handle_announce(Device& device, const mac::RxRecord& record);
  /// Keep-alive phase flood from a head (once per firing period).
  void emit_sync_flood(Device& device);
  /// Mobility repair: drop silent tree edges; restart orphaned devices as
  /// singleton fragments.
  void prune_stale_tree_edges(Device& device);

  std::uint16_t next_label_{0};  ///< fresh_label cursor (starts past the ids)
};

}  // namespace firefly::proto
