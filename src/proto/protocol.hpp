// protocol.hpp — the DiscoveryProtocol interface every proximity backend
// implements.
//
// `core::EngineBase` owns the substrate of one simulated trial — scheduler,
// Table I channel, radio medium, device array, convergence detectors,
// snapshot/restore — and derives from this interface; a protocol backend is
// the strategy layered on top.  The hook set covers the full lifecycle:
//
//   * on_start / deliver_batched / emit_fire_broadcast — what runs at t = 0,
//     the reaction to one slot's decoded receptions (delivered as a single
//     contiguous batch — see mac::RxBatch — so the engine sweeps receivers
//     through the SoA hot arrays instead of taking one virtual call per
//     pair), and the payload a firing broadcasts (the protocol state
//     machine proper);
//   * protocol_complete / requires_sync — how the protocol's own goal folds
//     into the convergence criterion;
//   * fill_protocol_metrics / fill_soak_window — the numbers the protocol
//     contributes to RunMetrics and to service-mode soak windows;
//   * on_recover — cold-boot protocol state after a fault-injected crash;
//   * protocol_snapshot_word / protocol_restore_word — engine-level scalar
//     state for the in-process rollback checkpoint (per-device state rides
//     along with the Device records and needs nothing here).
//
// Backends live in src/proto/ (st, fst, birthday, desync) and are resolved
// by stable string id through proto::Registry (registry.hpp); run_trial,
// run_service and the CLI never name a concrete engine class.
#pragma once

#include <cstdint>

namespace firefly::mac {
struct RxBatch;
}  // namespace firefly::mac

namespace firefly::sim {
struct SoakWindow;
}  // namespace firefly::sim

namespace firefly::core {
struct Device;
struct RunMetrics;
}  // namespace firefly::core

namespace firefly::proto {

class DiscoveryProtocol {
 public:
  virtual ~DiscoveryProtocol() = default;

 protected:
  /// Called once before the event loop starts.
  virtual void on_start() = 0;
  /// Protocol reaction to one slot's decoded PSs.  The batch holds every
  /// reception the radio resolved this slot, in the deterministic receiver
  /// order the per-pair API used to dispatch in; engines sweep it once,
  /// fusing their PCO phase update into the same pass.
  virtual void deliver_batched(const mac::RxBatch& batch) = 0;
  /// Broadcast emitted when `device` fires (protocols differ in payload).
  virtual void emit_fire_broadcast(core::Device& device) = 0;
  /// Hook for metrics specific to a protocol (tree stats, desync error…).
  virtual void fill_protocol_metrics(core::RunMetrics& /*metrics*/) const {}
  /// Protocol-specific observables for one service-mode telemetry window,
  /// sampled at the window's end slot.
  virtual void fill_soak_window(sim::SoakWindow& /*window*/) const {}
  /// Protocol-specific termination condition folded into convergence.
  /// The ST algorithm (paper Algorithm 1) runs `while |ST| != 1`, so its
  /// convergence additionally requires the spanning structure to be
  /// complete; DESYNC requires the anti-phase fixed point; the baseline has
  /// no such requirement.
  [[nodiscard]] virtual bool protocol_complete() const { return true; }
  /// Whether convergence includes the global firing-alignment goal.
  /// Discovery-only baselines (birthday protocols) and anti-sync schemes
  /// (DESYNC) waive it by design.
  [[nodiscard]] virtual bool requires_sync() const { return true; }
  /// Protocol-state reset when a crashed device cold-boots (fault
  /// injection).  The engine already clears the oscillator and the
  /// neighbour table; ST additionally resets its fragment state here.
  virtual void on_recover(core::Device& /*device*/) {}
  /// Protocol-level scalar state for snapshot/restore, packed into one word
  /// (ST: the fresh-label cursor; DESYNC: the sustained-check counter).
  [[nodiscard]] virtual std::uint64_t protocol_snapshot_word() const { return 0; }
  virtual void protocol_restore_word(std::uint64_t /*word*/) {}
};

}  // namespace firefly::proto
