#include "proto/fst.hpp"

namespace firefly::proto {

using core::Fields;
using core::pack;

void FstEngine::on_start() {
  // Nothing beyond the base: oscillators free-run from random phases and
  // the first firings start the mutual coupling.
}

void FstEngine::emit_fire_broadcast(Device& device) {
  radio_.broadcast(device.id,
                   random_preamble(mac::RachCodec::kRach1),
                   mac::PsType::kSyncPulse,
                   pack(Fields{fragment(device.id), device.service,
                               counter_field(device.id), 0}));
}

void FstEngine::deliver_batched(const mac::RxBatch& batch) {
  // Full-mesh coupling fused into the receiver sweep: any audible pulse
  // adjusts the receiver's phase.
  sweep_batch(batch, [this](const mac::RxRecord& r) {
    if (r.type != mac::PsType::kSyncPulse) return;
    apply_pulse_coupling(r);
  });
}

}  // namespace firefly::proto
