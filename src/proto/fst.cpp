#include "proto/fst.hpp"

namespace firefly::proto {

using core::Fields;
using core::pack;

void FstEngine::on_start() {
  // Nothing beyond the base: oscillators free-run from random phases and
  // the first firings start the mutual coupling.
}

void FstEngine::emit_fire_broadcast(Device& device) {
  radio_.broadcast(device.id,
                   random_preamble(mac::RachCodec::kRach1),
                   mac::PsType::kSyncPulse,
                   pack(Fields{device.fragment, device.service, counter_field(device), 0}));
}

void FstEngine::on_reception(Device& device, const mac::Reception& reception) {
  if (reception.type != mac::PsType::kSyncPulse) return;
  // Full-mesh coupling: any audible pulse adjusts the phase.
  apply_pulse_coupling(device, reception);
}

}  // namespace firefly::proto
