// fst.hpp — the FST baseline (Chao, Lee, Chou & Wei 2013, the paper's [17]).
//
// Bio-inspired proximity discovery and synchronisation with *full-mesh*
// coupling: every device broadcasts a proximity signal (RACH1) when its
// oscillator fires, and every device that decodes a PS above the −95 dBm
// threshold applies the Mirollo–Strogatz phase jump, whoever the sender is.
// Discovery piggybacks on the same pulses (sender id, fragment label unused,
// service id).  This reproduces the cost profile the paper attributes to
// the existing method: at scale, every firing excites the whole
// neighbourhood, preamble collisions mount as the population aligns, and
// synchronisation must propagate hop by hop through raw PCO dynamics.
#pragma once

#include "core/engine.hpp"

namespace firefly::proto {

using core::Device;
using core::EngineBase;

class FstEngine : public EngineBase {
 public:
  using EngineBase::EngineBase;

 protected:
  void on_start() override;
  void deliver_batched(const mac::RxBatch& batch) override;
  void emit_fire_broadcast(Device& device) override;
};

}  // namespace firefly::proto
