#include "proto/desync.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/soak.hpp"

namespace firefly::proto {

using core::Fields;
using core::pack;

void DesyncEngine::on_start() {
  // Nothing beyond the base: oscillators free-run from random phases; the
  // first full cycle seeds every node's phase-neighbour memory and the
  // midpoint jumps start from the second firing on.
}

void DesyncEngine::emit_fire_broadcast(Device& device) {
  // A new firing opens a new measurement cycle: the latest pulse heard
  // before this instant becomes the "previous" phase neighbour, and the
  // first pulse heard from now on will be the "next" one.
  const std::uint32_t i = device.id;
  desync_prev_slot(i) = desync_last_heard_slot(i);
  desync_adjusted(i) = false;
  radio_.broadcast(device.id,
                   random_preamble(mac::RachCodec::kRach1),
                   mac::PsType::kSyncPulse,
                   pack(Fields{fragment(i), device.service, counter_field(i), 0}));
}

void DesyncEngine::deliver_batched(const mac::RxBatch& batch) {
  sweep_batch(batch, [this](const mac::RxRecord& r) {
    if (r.type != mac::PsType::kSyncPulse) return;
    const std::uint32_t i = r.rx_index;
    const std::int64_t sent =
        current_slot() - static_cast<std::int64_t>(elapsed_slots(r));
    desync_last_heard_slot(i) = sent;
    if (last_fire_slot(i) < 0) return;             // not fired yet: no cycle open
    if (sent <= last_fire_slot(i)) return;         // pre-fire pulse: "previous" side
    if (!desync_adjusted(i)) midpoint_jump(i, sent);
  });
}

void DesyncEngine::midpoint_jump(std::uint32_t i, std::int64_t next_pulse_slot) {
  // One jump per own firing, triggered by the first post-fire pulse — the
  // discrete DESYNC step.  Mark the cycle spent even when the measurement
  // is unusable, so a stale late pulse cannot trigger it instead.
  desync_adjusted(i) = true;
  const auto period = static_cast<std::int64_t>(params_.period_slots);
  if (desync_prev_slot(i) < 0) return;  // no "previous" neighbour yet
  const std::int64_t prev_gap = last_fire_slot(i) - desync_prev_slot(i);
  const std::int64_t next_gap = next_pulse_slot - last_fire_slot(i);
  // Gaps outside (0, T) mean the memory is stale (silence for over a
  // period: crashed neighbours, deep fades) — skip, keep the cycle open
  // for fresh measurements next firing.
  if (prev_gap <= 0 || prev_gap >= period) return;
  if (next_gap <= 0 || next_gap >= period) return;
  const std::int64_t raw = next_gap - prev_gap;  // >0: fire later, <0: earlier
  // Dithered rounding of α·raw/2 to the slot grid: truncate, then add the
  // fractional part back in expectation via a Bernoulli draw from the
  // deterministic control RNG (arXiv:1210.2122's escape from the limit
  // cycles that plain truncation locks into).
  const double target = params_.desync_alpha * static_cast<double>(raw) / 2.0;
  const double whole = std::floor(target);
  const std::int64_t jump = static_cast<std::int64_t>(whole) +
                            (control_rng_.bernoulli(target - whole) ? 1 : 0);
  if (jump != 0) {
    const std::int64_t slot = current_slot();
    next_fire_slot(i) = std::max(slot + 1, next_fire_slot(i) + jump);
    schedule_fire(i);
  }
  // Residual imbalance after the jump: moving the firing by `jump` shrinks
  // next_gap and grows prev_gap by the same amount next cycle.
  desync_residual(i) = static_cast<std::int32_t>(std::llabs(raw - 2 * jump));
}

double DesyncEngine::mean_error_slots() const {
  double sum = 0.0;
  std::uint32_t measured = 0;
  for (std::uint32_t i = 0; i < devices_.size(); ++i) {
    if (down(i) || desync_residual(i) < 0) continue;
    sum += static_cast<double>(desync_residual(i));
    ++measured;
  }
  return measured > 0 ? sum / static_cast<double>(measured) : 0.0;
}

double DesyncEngine::spread_slots() const {
  const auto period = static_cast<std::int64_t>(params_.period_slots);
  std::vector<std::int64_t> phases;
  phases.reserve(devices_.size());
  for (std::uint32_t i = 0; i < devices_.size(); ++i) {
    if (!down(i)) phases.push_back(((next_fire_slot(i) % period) + period) % period);
  }
  if (phases.size() < 2) return 0.0;
  std::sort(phases.begin(), phases.end());
  std::int64_t min_gap = period;
  std::int64_t max_gap = 0;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const std::int64_t next =
        i + 1 < phases.size() ? phases[i + 1] : phases[0] + period;
    const std::int64_t gap = next - phases[i];
    min_gap = std::min(min_gap, gap);
    max_gap = std::max(max_gap, gap);
  }
  return static_cast<double>(max_gap - min_gap);
}

bool DesyncEngine::protocol_complete() const {
  // The per-check evaluator: check_convergence calls this exactly once per
  // check interval until the protocol goal latches.  Surface the current
  // error through the metric registry on every evaluation.
  if (telemetry_ != nullptr) {
    telemetry_->registry().gauge("proto.desync.error").set(mean_error_slots());
  }
  const auto tolerance = static_cast<std::int32_t>(params_.desync_tolerance_slots);
  std::uint32_t measured = 0;
  for (std::uint32_t i = 0; i < devices_.size(); ++i) {
    if (down(i)) continue;
    if (desync_last_heard_slot(i) < 0) continue;  // hears nobody: nothing to balance
    if (desync_residual(i) < 0 || desync_residual(i) > tolerance) {
      stable_checks_ = 0;
      return false;
    }
    ++measured;
  }
  if (measured == 0) {
    // Nobody has completed a measurement cycle yet (or the network is all
    // isolated singletons) — that is not a desynchronised schedule.
    stable_checks_ = 0;
    return false;
  }
  ++stable_checks_;
  return stable_checks_ >= params_.desync_sustain_checks;
}

void DesyncEngine::fill_protocol_metrics(RunMetrics& metrics) const {
  metrics.desync_error = mean_error_slots();
  metrics.desync_spread_slots = spread_slots();
}

void DesyncEngine::fill_soak_window(sim::SoakWindow& window) const {
  window.desync_error = mean_error_slots();
}

void DesyncEngine::on_recover(Device& device) {
  // Cold boot: whatever the radio had learned about its phase neighbours
  // died with it.
  const std::uint32_t i = device.id;
  desync_last_heard_slot(i) = -1;
  desync_prev_slot(i) = -1;
  desync_residual(i) = -1;
  desync_adjusted(i) = false;
}

}  // namespace firefly::proto
