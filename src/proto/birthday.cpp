#include "proto/birthday.hpp"

namespace firefly::proto {

using core::Fields;
using core::pack;

void BirthdayEngine::on_start() {
  // Every device beacons once per period from a random initial phase — the
  // same average transmission rate as the firefly protocols' sync pulses,
  // with zero coordination.  No coupling ever happens, so beacon times stay
  // i.i.d. uniform across the population (the birthday-protocol regime).
}

void BirthdayEngine::emit_fire_broadcast(Device& device) {
  radio_.broadcast(device.id, random_preamble(mac::RachCodec::kRach1),
                   mac::PsType::kDiscovery,
                   pack(Fields{fragment(device.id), device.service, 0, 0}));
}

void BirthdayEngine::deliver_batched(const mac::RxBatch& batch) {
  // Pure birthday protocol: receive, record (the sweep updates the
  // neighbour table), never react.
  sweep_batch(batch, [](const mac::RxRecord& /*record*/) {});
}

}  // namespace firefly::proto
