#include "proto/birthday.hpp"

namespace firefly::proto {

using core::Fields;
using core::pack;

void BirthdayEngine::on_start() {
  // Every device beacons once per period from a random initial phase — the
  // same average transmission rate as the firefly protocols' sync pulses,
  // with zero coordination.  No coupling ever happens, so beacon times stay
  // i.i.d. uniform across the population (the birthday-protocol regime).
}

void BirthdayEngine::emit_fire_broadcast(Device& device) {
  radio_.broadcast(device.id, random_preamble(mac::RachCodec::kRach1),
                   mac::PsType::kDiscovery,
                   pack(Fields{device.fragment, device.service, 0, 0}));
}

void BirthdayEngine::on_reception(Device& /*device*/, const mac::Reception& /*reception*/) {
  // Pure birthday protocol: receive, record (the base already updated the
  // neighbour table), never react.
}

}  // namespace firefly::proto
