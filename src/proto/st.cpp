#include "proto/st.hpp"

#include <algorithm>
#include <cassert>

#include "util/log.hpp"

namespace firefly::proto {

using core::Fields;
using core::TraceKind;
using core::kInvalidId;
using core::merge_key;
using core::pack;
using core::unpack;


void StEngine::on_start() {
  const std::int64_t base = 1;
  for (Device& d : devices_) {
    const std::uint32_t i = d.id;
    is_head(i) = true;  // every device heads its own singleton fragment
    fragment(i) = static_cast<std::uint16_t>(i);
    fragment_size(i) = 1;
    // Discovery beacons at random slots inside the window.
    for (std::uint32_t b = 0; b < params_.discovery_beacons; ++b) {
      const std::int64_t slot =
          base + static_cast<std::int64_t>(control_rng_.uniform_index(params_.discovery_slots));
      sim_.schedule_at(sim::SimTime::milliseconds(slot), [this, &d, i] {
        if (down(i)) return;
        radio_.broadcast(d.id, random_preamble(mac::RachCodec::kRach1),
                         mac::PsType::kDiscovery,
                         pack(Fields{fragment(i), d.service, 0, 0}));
      });
    }
    // Head round timer, staggered by id so RACH2 attempts de-collide.
    const std::int64_t first_round = base + params_.discovery_slots +
                                     static_cast<std::int64_t>(d.id % params_.round_slots);
    sim_.schedule_periodic(sim::SimTime::milliseconds(first_round),
                           sim::SimTime::milliseconds(params_.round_slots),
                           [this, &d] { round_action(d); });
    // Keep-alive sync flood: once per firing period each head floods its
    // phase down the fragment tree (the paper's RACH2 "keep-alive" codec;
    // Algorithm 1 re-runs F_F_A over RACH2 after every H_Connect round).
    const std::int64_t first_flood = base + params_.discovery_slots +
                                     static_cast<std::int64_t>(d.id % params_.period_slots);
    sim_.schedule_periodic(sim::SimTime::milliseconds(first_flood),
                           sim::SimTime::milliseconds(params_.period_slots), [this, &d, i] {
                             if (!down(i) && is_head(i)) emit_sync_flood(d);
                           });
    // Keep-alive discovery: one beacon per period at a *random* slot.  This
    // is ST's structural answer to the baseline's pathology — FST beacons
    // only when it fires, so once synchronised every beacon lands in the
    // same slot and collides; ST keeps discovery traffic spread out.
    sim_.schedule_periodic(
        sim::SimTime::milliseconds(base + static_cast<std::int64_t>(d.id % params_.period_slots)),
        sim::SimTime::milliseconds(params_.period_slots), [this, &d, i] {
          if (down(i)) return;
          const auto offset = static_cast<std::int64_t>(
              control_rng_.uniform_index(params_.period_slots - 1));
          sim_.schedule_in(sim::SimTime::milliseconds(offset), [this, &d, i] {
            if (down(i)) return;
            radio_.broadcast(d.id, random_preamble(mac::RachCodec::kRach1),
                             mac::PsType::kDiscovery,
                             pack(Fields{fragment(i), d.service, 0, 0}));
          });
        });
  }
  next_label_ = static_cast<std::uint16_t>(devices_.size());
}

void StEngine::emit_sync_flood(Device& device) {
  const std::uint32_t i = device.id;
  const auto cycle = static_cast<std::uint16_t>(
      (current_slot() / params_.period_slots) & 0xFFFF);
  device.sync_floods_seen.insert(merge_key(fragment(i), cycle));
  radio_.broadcast(device.id, random_preamble(mac::RachCodec::kRach2),
                   mac::PsType::kSyncFlood,
                   pack(Fields{fragment(i), cycle, counter_field(i), 0}));
}

void StEngine::emit_fire_broadcast(Device& device) {
  const std::uint32_t i = device.id;
  radio_.broadcast(device.id,
                   random_preamble(mac::RachCodec::kRach1),
                   mac::PsType::kSyncPulse,
                   pack(Fields{fragment(i), device.service, counter_field(i), 0}));
}

bool StEngine::left_wins(std::uint16_t left_frag, std::uint16_t left_size,
                         std::uint16_t right_frag, std::uint16_t right_size) {
  // Algorithm 1 line 12: head comes from the tree with the most nodes;
  // deterministic label tie-break keeps both endpoints consistent.
  if (left_size != right_size) return left_size > right_size;
  return left_frag < right_frag;
}

void StEngine::prune_stale_tree_edges(Device& device) {
  // Mobility repair: a tree neighbour silent for tree_stale_periods has
  // moved out of range — drop the coupling edge.  A device whose whole
  // tree neighbourhood vanished restarts as its own singleton fragment and
  // rejoins through the normal H_Connect machinery.
  const std::uint32_t i = device.id;
  const std::int64_t slot = current_slot();
  const std::int64_t stale =
      static_cast<std::int64_t>(params_.tree_stale_periods) * params_.period_slots;
  const auto& table = neighbors(i);
  std::erase_if(device.tree_neighbors, [&](std::uint32_t other) {
    const auto it = table.find(other);
    return it == table.end() || slot - it->second.last_heard_slot > stale;
  });
  if (device.tree_neighbors.empty() &&
      fragment(i) != static_cast<std::uint16_t>(device.id)) {
    fragment(i) = static_cast<std::uint16_t>(device.id);
    fragment_size(i) = 1;
    is_head(i) = true;
    device.pending_target = kInvalidId;
    device.connect_attempts = 0;
    device.last_fragment_activity_slot = slot;
    device.head_heard_slot = slot;
  }
}

std::uint16_t StEngine::fresh_label() {
  if (next_label_ < devices_.size()) {
    next_label_ = static_cast<std::uint16_t>(devices_.size());
  }
  return next_label_++;
}

void StEngine::maybe_reclaim_headless_fragment(Device& device) {
  const std::int64_t slot = current_slot();
  // A duty-cycled member only catches a fraction of the per-period flood
  // renewals, so the lease stretches by 1/awake to keep the false-expiry
  // probability comparable to the always-awake case.
  const auto lease = static_cast<std::int64_t>(
      static_cast<double>(params_.head_lease_periods) * params_.period_slots /
      params_.awake_fraction());
  if (slot - device.head_heard_slot <= lease) return;
  const std::uint32_t i = device.id;
  // Every orphaned member's lease expires around the same time (they all
  // refreshed at the head's last flood), so a deterministic claim would
  // shatter the remnant into singletons.  A Bernoulli draw per round lets
  // one early claimant win; its re-label announce rescues the rest.
  if (!control_rng_.bernoulli(0.25)) return;
  // Storm brake (service mode): a mass departure orphans many fragments in
  // the same period; the cap spreads their announce floods over several
  // periods.  Suppressed claimants simply retry next round.
  if (!relabel_permitted()) return;
  const std::uint16_t old_label = fragment(i);
  is_head(i) = true;
  fragment(i) = fresh_label();
  fragment_size(i) = 1;
  device.pending_target = kInvalidId;
  device.connect_attempts = 0;
  device.head_heard_slot = slot;
  device.last_fragment_activity_slot = slot;
  trace(TraceKind::kRelabel, device.id, fragment(i), old_label);
  // Flood the re-label through the remnant: members still carrying the old
  // label adopt the fresh one (and this device's phase) via the normal
  // merge-announce relay, then the renamed fragment re-joins through
  // H_Connect.
  device.announces_seen.insert(merge_key(fragment(i), old_label));
  emit_announce(device, fragment(i), old_label, 1);
}

void StEngine::round_action(Device& device) {
  const std::uint32_t i = device.id;
  if (down(i)) return;
  const std::int64_t slot = current_slot();
  prune_stale_tree_edges(device);
  if (!is_head(i)) {
    // Stall rule: a fragment whose head token was lost mid-merge would
    // otherwise freeze.  After long RACH2 silence, a member that can still
    // see an outgoing edge self-promotes with low probability, keeping the
    // fragment label intact (duplicate heads are harmless; a headless
    // fragment with work left is not).
    const std::int64_t stall = 6 * static_cast<std::int64_t>(params_.round_slots);
    if (slot - device.last_fragment_activity_slot > stall && has_outgoing(device) &&
        control_rng_.bernoulli(0.25)) {
      is_head(i) = true;
    } else {
      // Lease check: the stall rule cannot cover a fragment with no
      // outgoing edge (a spanning fragment whose head crashed, or a
      // partition remnant) — members then watch for proof of a live head
      // (sync floods, head tokens, merges) and reclaim the fragment when
      // it stops coming.
      maybe_reclaim_headless_fragment(device);
      return;
    }
  }
  if (device.pending_target != kInvalidId) {
    // Bounded exponential backoff: attempt k gets connect_timeout_slots<<k
    // before it is declared lost, so an unreachable peer (crashed, faded or
    // out of range) is probed at a geometrically decaying rate instead of
    // every round.
    const std::int64_t timeout =
        static_cast<std::int64_t>(params_.connect_timeout_slots)
        << std::min<std::uint32_t>(device.connect_attempts, 6U);
    if (slot - device.connect_sent_slot < timeout) return;
    device.pending_target = kInvalidId;
    ++device.connect_attempts;
    // Duty-cycled peers sleep through most requests; budget 1/awake times
    // the retries before concluding the peer is actually unreachable.
    const auto max_retries = static_cast<std::uint32_t>(
        static_cast<double>(params_.connect_max_retries) / params_.awake_fraction());
    if (device.connect_attempts > max_retries) {
      // Retry cap reached: stop hammering this neighbourhood and move
      // headship on; another vantage point may have a live outgoing edge.
      if (change_head(device)) device.connect_attempts = 0;
      return;
    }
  }
  attempt_connect(device);
}

const std::uint32_t* StEngine::best_outgoing(const Device& device) const {
  // Heaviest outgoing edge: strongest fresh neighbour in another fragment.
  // Entries not refreshed for three firing periods carry stale fragment
  // labels and are skipped.
  const std::uint32_t i = device.id;
  const std::int64_t slot = current_slot();
  const std::int64_t freshness = 3 * static_cast<std::int64_t>(params_.period_slots);
  const std::uint32_t* best = nullptr;
  double best_weight = -1e300;
  for (const auto& [other_id, info] : neighbors(i)) {
    if (info.fragment == fragment(i)) continue;
    if (info.last_heard_slot >= 0 && slot - info.last_heard_slot > freshness) continue;
    double weight = info.weight_dbm;
    if (info.service == device.service) weight += params_.service_bias_db;
    if (weight > best_weight) {
      best_weight = weight;
      best = &other_id;
    }
  }
  return best;
}

bool StEngine::has_outgoing(const Device& device) const {
  return best_outgoing(device) != nullptr;
}

void StEngine::attempt_connect(Device& device) {
  const obs::ScopedTimer span(telemetry_, obs::SpanId::kHConnect,
                              telemetry_ != nullptr ? sim_.now().as_milliseconds() : -1.0);
  const std::int64_t slot = current_slot();
  const std::uint32_t* best = best_outgoing(device);
  if (best == nullptr) {
    change_head(device);
    return;
  }
  device.pending_target = *best;
  device.connect_sent_slot = slot;
  device.last_fragment_activity_slot = slot;
  const std::uint32_t i = device.id;
  const auto counter = static_cast<std::uint16_t>(counter_at(i, slot));
  radio_.broadcast(device.id, random_preamble(mac::RachCodec::kRach2),
                   mac::PsType::kConnectRequest,
                   pack(Fields{static_cast<std::uint16_t>(*best), fragment(i),
                               fragment_size(i), counter}));
}

bool StEngine::change_head(Device& device) {
  // Algorithm 1 line 10: no outgoing edge at this head — rotate headship
  // through the tree neighbours.  A singleton with an empty table just
  // stays head and waits for discovery to populate it, and a fragment that
  // has seen no merge activity for a while is complete: its head goes
  // quiet instead of circulating tokens forever (it resumes automatically
  // if discovery later surfaces a new outgoing edge).
  if (device.tree_neighbors.empty()) return false;
  const std::int64_t quiet = 8 * static_cast<std::int64_t>(params_.round_slots);
  if (current_slot() - device.last_fragment_activity_slot > quiet) return false;
  const std::uint32_t target =
      device.tree_neighbors[device.head_rotation % device.tree_neighbors.size()];
  ++device.head_rotation;
  is_head(device.id) = false;
  device.last_fragment_activity_slot = current_slot();
  device.head_heard_slot = current_slot();  // start the lease on the successor
  radio_.broadcast(device.id, random_preamble(mac::RachCodec::kRach2),
                   mac::PsType::kHeadToken,
                   pack(Fields{static_cast<std::uint16_t>(target), fragment(device.id), 0, 0}));
  return true;
}

void StEngine::local_merge(Device& device, std::uint16_t peer_frag, std::uint16_t peer_size,
                           std::uint32_t peer_device, std::uint32_t adopted_counter) {
  const obs::ScopedTimer span(telemetry_, obs::SpanId::kMerge,
                              telemetry_ != nullptr ? sim_.now().as_milliseconds() : -1.0);
  if (telemetry_ != nullptr) telemetry_->count("st.merges");
  const std::uint32_t i = device.id;
  const auto new_size = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(0xFFFF, fragment_size(i) + peer_size));
  const bool we_win = left_wins(fragment(i), fragment_size(i), peer_frag, peer_size);
  const std::uint16_t winner = we_win ? fragment(i) : peer_frag;
  const std::uint16_t loser = we_win ? peer_frag : fragment(i);

  device.add_tree_neighbor(peer_device);
  device.last_fragment_activity_slot = current_slot();
  device.head_heard_slot = current_slot();  // a merge is proof of head activity
  device.connect_attempts = 0;              // progress: backoff restarts
  device.announces_seen.insert(merge_key(winner, loser));
  trace(TraceKind::kMerge, device.id, winner, loser);

  if (!we_win) {
    // Losing side: adopt the winner's label and phase (Algorithm 1's
    // inter-subtree synchronisation over RACH2).
    fragment(i) = winner;
    is_head(i) = false;
    device.pending_target = kInvalidId;
    adopt_counter(i, adopted_counter % params_.period_slots);
  }
  fragment_size(i) = new_size;
  emit_announce(device, winner, loser, new_size);
}

void StEngine::emit_announce(Device& device, std::uint16_t winner, std::uint16_t loser,
                             std::uint16_t new_size) {
  const auto counter = static_cast<std::uint16_t>(
      counter_at(device.id, current_slot()));
  radio_.broadcast(device.id, random_preamble(mac::RachCodec::kRach2),
                   mac::PsType::kMergeAnnounce,
                   pack(Fields{winner, loser, counter, new_size}));
}

void StEngine::handle_announce(Device& device, const mac::RxRecord& record) {
  const Fields f = unpack(record.payload);
  const std::uint32_t key = merge_key(f.a, f.b);
  if (device.announces_seen.contains(key)) return;
  device.announces_seen.insert(key);

  const std::uint32_t i = device.id;
  if (fragment(i) == f.b) {
    // My fragment lost this merge: adopt label, size and phase, and relay
    // once so the flood crosses the whole (former) fragment.
    fragment(i) = f.a;
    fragment_size(i) = f.d;
    is_head(i) = false;
    device.pending_target = kInvalidId;
    device.connect_attempts = 0;
    device.last_fragment_activity_slot = current_slot();
    device.head_heard_slot = current_slot();
    adopt_counter(i, (f.c + elapsed_slots(record)) % params_.period_slots);
    emit_announce(device, f.a, f.b, f.d);
  } else if (fragment(i) == f.a) {
    // My fragment won: refresh the size estimate.
    fragment_size(i) = std::max(fragment_size(i), f.d);
    device.last_fragment_activity_slot = current_slot();
  }
}

void StEngine::deliver_batched(const mac::RxBatch& batch) {
  sweep_batch(batch, [this](const mac::RxRecord& r) { on_record(r); });
}

void StEngine::on_record(const mac::RxRecord& record) {
  const std::uint32_t i = record.rx_index;
  Device& device = devices_[i];
  const Fields f = unpack(record.payload);
  switch (record.type) {
    case mac::PsType::kDiscovery:
      break;  // neighbour table already updated by the sweep

    case mac::PsType::kSyncPulse:
      // Tree-restricted coupling: only pulses from tree neighbours adjust
      // the oscillator (the whole point of the spanning-tree topology).
      if (device.has_tree_neighbor(record.sender)) {
        apply_pulse_coupling(record);
      }
      break;

    case mac::PsType::kConnectRequest: {
      if (f.a != device.id) break;          // addressed to someone else
      if (f.b == fragment(i)) break;        // stale: already same fragment
      device.last_fragment_activity_slot = current_slot();
      // Algorithm 2: answer over RACH2, then both endpoints merge.
      const auto my_counter = static_cast<std::uint16_t>(
          counter_at(i, current_slot()));
      radio_.broadcast(device.id,
                       random_preamble(mac::RachCodec::kRach2),
                       mac::PsType::kConnectAccept,
                       pack(Fields{static_cast<std::uint16_t>(record.sender),
                                   fragment(i), fragment_size(i), my_counter}));
      const std::uint32_t adopted = (f.d + elapsed_slots(record)) % params_.period_slots;
      local_merge(device, f.b, f.c, record.sender, adopted);
      break;
    }

    case mac::PsType::kConnectAccept: {
      if (f.a != device.id) break;
      if (f.b == fragment(i)) break;  // duplicate / already merged
      device.pending_target = kInvalidId;
      device.connect_attempts = 0;
      device.last_fragment_activity_slot = current_slot();
      const std::uint32_t adopted = (f.d + elapsed_slots(record)) % params_.period_slots;
      local_merge(device, f.b, f.c, record.sender, adopted);
      break;
    }

    case mac::PsType::kMergeAnnounce:
      handle_announce(device, record);
      break;

    case mac::PsType::kHeadToken:
      // Any member overhearing a token for its fragment learns a live head
      // existed a moment ago — that renews the lease.
      if (f.b == fragment(i)) device.head_heard_slot = current_slot();
      if (f.a == device.id && f.b == fragment(i)) {
        is_head(i) = true;
        device.connect_attempts = 0;
        device.last_fragment_activity_slot = current_slot();
        trace(TraceKind::kHeadChange, device.id, fragment(i));
      }
      break;

    case mac::PsType::kSyncFlood: {
      if (f.a != fragment(i)) break;  // another fragment's keep-alive
      device.head_heard_slot = current_slot();  // lease renewed (even if duplicate)
      const std::uint32_t key = merge_key(f.a, f.b);
      if (device.sync_floods_seen.contains(key)) break;
      device.sync_floods_seen.insert(key);
      // Adopt the head's phase exactly (delay-compensated) and relay once
      // with a re-stamped counter so the flood covers the whole tree.
      adopt_counter(i, (f.c + elapsed_slots(record)) % params_.period_slots);
      radio_.broadcast(device.id,
                       random_preamble(mac::RachCodec::kRach2),
                       mac::PsType::kSyncFlood,
                       pack(Fields{f.a, f.b, counter_field(i), 0}));
      break;
    }
  }
}

void StEngine::on_recover(Device& device) {
  // Everything volatile is gone; the device rejoins as a brand-new
  // singleton.  The label must be fresh: its old id-label may still name a
  // live fragment spanning its neighbours, and reusing it would make the
  // rejoin edge invisible to best_outgoing (same label = no outgoing edge).
  const std::int64_t slot = current_slot();
  fragment(device.id) = fresh_label();
  fragment_size(device.id) = 1;
  is_head(device.id) = true;
  device.tree_neighbors.clear();
  device.announces_seen.clear();
  device.sync_floods_seen.clear();
  device.head_rotation = 0;
  device.pending_target = kInvalidId;
  device.connect_sent_slot = -1;
  device.connect_attempts = 0;
  device.last_fragment_activity_slot = slot;
  device.head_heard_slot = slot;
}

bool StEngine::protocol_complete() const {
  // One fragment must span every *live* device; crashed radios are not part
  // of the network the algorithm can span.
  std::uint16_t label = 0;
  bool found = false;
  for (std::uint32_t i = 0; i < devices_.size(); ++i) {
    if (down(i)) continue;
    if (!found) {
      label = fragment(i);
      found = true;
    } else if (fragment(i) != label) {
      return false;
    }
  }
  return found;
}

void StEngine::fill_protocol_metrics(RunMetrics& metrics) const {
  // Distinct fragment labels remaining.
  std::vector<std::uint16_t> labels;
  labels.reserve(devices_.size());
  for (std::uint32_t i = 0; i < devices_.size(); ++i) {
    if (!down(i)) labels.push_back(fragment(i));
  }
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  metrics.final_fragments = static_cast<std::uint32_t>(labels.size());

  // Tree edges: unordered pairs listed by at least one endpoint; weight is
  // the strongest recorded direction (PS strength, the paper's edge weight).
  std::uint32_t edges = 0;
  std::uint32_t same_service_edges = 0;
  double weight_sum = 0.0;
  for (const Device& d : devices_) {
    if (down(d.id)) continue;
    for (const std::uint32_t other : d.tree_neighbors) {
      if (down(other)) continue;  // edge to a crashed radio is gone
      if (other < d.id && devices_[other].has_tree_neighbor(d.id)) continue;  // counted once
      ++edges;
      if (devices_[other].service == d.service) ++same_service_edges;
      double w = -200.0;
      const auto& table = neighbors(d.id);
      const auto it = table.find(other);
      if (it != table.end()) w = it->second.weight_dbm;
      const auto& other_table = neighbors(other);
      const auto it2 = other_table.find(d.id);
      if (it2 != other_table.end()) w = std::max(w, it2->second.weight_dbm);
      weight_sum += w;
    }
  }
  metrics.tree_edges = edges;
  metrics.tree_weight_dbm = weight_sum;
  metrics.tree_service_affinity =
      edges > 0 ? static_cast<double>(same_service_edges) / edges : 0.0;
}

}  // namespace firefly::proto
