// birthday.hpp — the sync-free discovery baseline (paper refs [4]–[7]).
//
// Before firefly-style schemes, D2D/ad-hoc discovery used "birthday
// protocols": every device beacons in independently random slots at a
// fixed rate, with no synchronisation at all.  Discovery completes by the
// birthday/coupon-collector argument; there is no firing alignment, so the
// global-sync component of the convergence criterion can never be met.
//
// This engine contextualises Figs. 3/4: it bounds what discovery costs
// *without* any synchronisation machinery, and shows what the firefly
// schemes buy (slot alignment) and what they pay for it.  Metrics report
// discovery_ms as the interesting number; `converged` is discovery-only
// for this engine (it has no sync goal by design).
#pragma once

#include "core/engine.hpp"

namespace firefly::proto {

using core::Device;
using core::EngineBase;

class BirthdayEngine : public EngineBase {
 public:
  using EngineBase::EngineBase;

 protected:
  void on_start() override;
  void deliver_batched(const mac::RxBatch& batch) override;
  void emit_fire_broadcast(Device& device) override;
  /// Discovery-only protocol: no synchronisation goal by design.
  [[nodiscard]] bool requires_sync() const override { return false; }
};

}  // namespace firefly::proto
