// registry.hpp — stable protocol ids → engine factories.
//
// One static registry maps CLI-facing lower-case names ("st", "fst",
// "birthday", "desync") and the `core::Protocol` enum to factories that
// build a ready-to-run engine from deployed positions and the parameter
// blocks.  `run_trial`, `run_service_trial`, `core::sweep` and
// `firefly_cli --protocol` all resolve through here, so adding a backend is:
// implement DiscoveryProtocol on top of EngineBase, register it in
// `Registry::instance()`, and every trial driver, bench sweep and CLI flag
// picks it up.
//
// Lookup is by linear scan over the registration-order vector: the registry
// holds a handful of entries, is built once, and `names()` must enumerate
// deterministically (CLI help, error messages, bench meta records).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/scenario.hpp"
#include "geo/point.hpp"

namespace firefly::core {
class EngineBase;
}  // namespace firefly::core

namespace firefly::proto {

/// Factory signature: deployed positions plus the parameter blocks one
/// trial needs, returning an engine ready for set_trace/set_telemetry/run.
using EngineFactory = std::unique_ptr<core::EngineBase> (*)(
    std::vector<geo::Vec2> positions, const core::ProtocolParams& params,
    const phy::RadioParams& radio, std::uint64_t seed);

struct ProtocolInfo {
  std::string name;     ///< registry id, lower-case (CLI-facing): "st"
  std::string display;  ///< JSON/metrics id, matches core::to_string: "ST"
  std::string summary;  ///< one-liner for --help and error messages
  core::Protocol id{};  ///< enum for switch-free enum-keyed dispatch
  EngineFactory factory{nullptr};
};

class Registry {
 public:
  /// Empty registry (unit tests build private instances); the built-in
  /// backends live in the process-wide `instance()`.
  Registry() = default;

  /// The global registry, populated with the built-in backends
  /// (fst, st, birthday, desync) on first use, in that order.
  [[nodiscard]] static Registry& instance();

  /// Register a backend.  Returns false (and registers nothing) when the
  /// name or the enum id is already taken.
  bool add(ProtocolInfo info);

  /// Lookup by registry name; nullptr when unknown.
  [[nodiscard]] const ProtocolInfo* find(std::string_view name) const;
  /// Lookup by enum id; nullptr when unknown.
  [[nodiscard]] const ProtocolInfo* find(core::Protocol id) const;

  /// Registry names in registration order (deterministic).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Build an engine by registry name; nullptr when `name` is unknown.
  [[nodiscard]] std::unique_ptr<core::EngineBase> make(
      std::string_view name, std::vector<geo::Vec2> positions,
      const core::ProtocolParams& params, const phy::RadioParams& radio,
      std::uint64_t seed) const;
  /// Build an engine by enum id; nullptr when `id` is unregistered.
  [[nodiscard]] std::unique_ptr<core::EngineBase> make(
      core::Protocol id, std::vector<geo::Vec2> positions,
      const core::ProtocolParams& params, const phy::RadioParams& radio,
      std::uint64_t seed) const;

 private:
  std::vector<ProtocolInfo> infos_;  ///< registration order
};

}  // namespace firefly::proto
