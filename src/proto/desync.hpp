// desync.hpp — discrete dithered desynchronisation (DESYNC).
//
// Ashkiani & Scaglione, "Discrete Dithered Desynchronization"
// (arXiv:1210.2122), building on Degesys et al.'s DESYNC: the same
// pulse-coupled oscillator substrate as the firefly schemes, run toward the
// *opposite* fixed point.  Instead of absorbing into a common firing
// instant, every node steers its firing to the midpoint of its two phase
// neighbours — the last pulse it heard before its own firing ("previous")
// and the first pulse it hears after it ("next"):
//
//     jump = α · (next_gap − prev_gap) / 2        (slots, signed)
//
// applied to the node's next scheduled firing, once per own firing.  At the
// fixed point the live nodes fire in a round-robin schedule spaced T/n —
// a TDMA frame negotiated with no base station, no global clock and no
// message contents beyond the pulse itself.  On the 1 ms LTE slot grid the
// continuous jump is quantised by *dithered rounding* (the paper's fix for
// limit cycles that plain truncation causes): ⌊jump⌋, plus one more slot
// with probability equal to the fractional part, drawn from the engine's
// deterministic control RNG so runs replay bit-identically.
//
// Convergence observables (this protocol's RunMetrics/soak contribution):
//   * desync_error — mean |next_gap − prev_gap| residual after the latest
//     jump, over live measured devices (slots; 0 at the fixed point);
//   * desync_spread_slots — max−min cyclic gap between consecutive firing
//     phases across the population (global round-robin uniformity).
//
// `protocol_complete()` holds when every live device that can hear anyone
// sits within desync_tolerance_slots of its midpoint for
// desync_sustain_checks consecutive convergence checks.  Global firing
// alignment is the anti-goal, so requires_sync() is false (like the
// birthday baseline, the detector's sync criterion is waived); discovery
// still must complete on every reliable link — pulses carry the same
// (fragment, service) discovery payload as FST beacons.
#pragma once

#include "core/engine.hpp"

namespace firefly::proto {

using core::Device;
using core::EngineBase;
using core::RunMetrics;

class DesyncEngine : public EngineBase {
 public:
  using EngineBase::EngineBase;

 protected:
  void on_start() override;
  void deliver_batched(const mac::RxBatch& batch) override;
  void emit_fire_broadcast(Device& device) override;
  void fill_protocol_metrics(RunMetrics& metrics) const override;
  void fill_soak_window(sim::SoakWindow& window) const override;
  /// Anti-phase fixed point reached and sustained (see file comment).
  [[nodiscard]] bool protocol_complete() const override;
  /// Desynchronisation is the goal; the global-alignment criterion is waived.
  [[nodiscard]] bool requires_sync() const override { return false; }
  /// Cold-boot: a recovered device re-enters with no phase-neighbour memory.
  void on_recover(Device& device) override;
  /// The sustained-check counter is DESYNC's only engine-level scalar; the
  /// phase-neighbour memory rides along with the Device records.
  [[nodiscard]] std::uint64_t protocol_snapshot_word() const override {
    return stable_checks_;
  }
  void protocol_restore_word(std::uint64_t word) override {
    stable_checks_ = static_cast<std::uint32_t>(word);
  }

 private:
  /// The once-per-cycle midpoint jump, triggered by the first pulse heard
  /// after device i's own firing.
  void midpoint_jump(std::uint32_t i, std::int64_t next_pulse_slot);
  /// Mean |midpoint residual| over live measured devices, in slots.
  [[nodiscard]] double mean_error_slots() const;
  /// Max−min cyclic gap of the live population's firing phases, in slots.
  [[nodiscard]] double spread_slots() const;

  /// Consecutive convergence checks with every measured device inside
  /// tolerance.  Mutable: protocol_complete() is the per-check evaluator
  /// (called exactly once per check while convergence is still pending),
  /// and the hook is const for every other backend.
  mutable std::uint32_t stable_checks_{0};
};

}  // namespace firefly::proto
