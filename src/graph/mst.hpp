// mst.hpp — centralised reference spanning-tree algorithms.
//
// The distributed protocol's output is validated against these.  Because
// the paper's tree selects *heaviest* (strongest-PS) edges, both a minimum
// and a maximum orientation are provided; `Orientation::kMax` computes the
// maximum spanning tree the paper's Fig. 2 depicts ("by selecting heavy
// edge, devices make synchronization").
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace firefly::graph {

enum class Orientation { kMin, kMax };

struct MstResult {
  std::vector<Edge> edges;
  double total_weight{0.0};
  bool spanning{false};  ///< false when the input graph is disconnected
};

/// Kruskal: sort + union-find.  O(E log E).
[[nodiscard]] MstResult kruskal(const Graph& g, Orientation orientation = Orientation::kMin);

/// Prim with a binary heap.  O(E log V).  Starts from vertex 0.
[[nodiscard]] MstResult prim(const Graph& g, Orientation orientation = Orientation::kMin);

/// Weight of the spanning forest (sum over components) — lets tests compare
/// algorithms on disconnected graphs too.
[[nodiscard]] double forest_weight(const MstResult& r);

}  // namespace firefly::graph
