#include "graph/boruvka.hpp"

#include <limits>

#include "graph/union_find.hpp"

namespace firefly::graph {

BoruvkaResult boruvka(const Graph& g, Orientation orientation) {
  BoruvkaResult result;
  const std::size_t n = g.vertex_count();
  if (n == 0) {
    result.tree.spanning = true;
    return result;
  }
  const double sign = orientation == Orientation::kMin ? 1.0 : -1.0;
  const auto& edges = g.edges();
  UnionFind uf(n);

  constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> best(n, kNone);  // fragment root -> best edge idx

  bool progressed = true;
  while (uf.set_count() > 1 && progressed) {
    progressed = false;
    ++result.rounds;

    // Phase 1: each fragment discovers its best outgoing edge.  In a real
    // deployment every member reports its local best up the fragment tree:
    // one message per member per round.
    for (std::uint32_t v = 0; v < n; ++v) best[uf.find(v)] = kNone;
    result.messages += n;
    for (std::uint32_t idx = 0; idx < edges.size(); ++idx) {
      const Edge& e = edges[idx];
      const std::uint32_t ru = uf.find(e.u);
      const std::uint32_t rv = uf.find(e.v);
      if (ru == rv) continue;
      const double key = sign * e.weight;
      auto better = [&](std::uint32_t current) {
        if (current == kNone) return true;
        const double cur_key = sign * edges[current].weight;
        if (key != cur_key) return key < cur_key;
        return idx < current;  // deterministic tie-break prevents cycles
      };
      if (better(best[ru])) best[ru] = idx;
      if (better(best[rv])) best[rv] = idx;
    }

    // Phase 2: merge over the chosen edges (1 announcement per fragment).
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint32_t root = uf.find(v);
      if (root != v) continue;  // one pass per fragment
      const std::uint32_t choice = best[root];
      if (choice == kNone) continue;
      const Edge& e = edges[choice];
      ++result.messages;  // merge announcement over the radio
      if (uf.unite(e.u, e.v)) {
        result.tree.edges.push_back(e);
        result.tree.total_weight += e.weight;
        progressed = true;
      }
    }
  }

  result.tree.spanning = (result.tree.edges.size() + 1 == n);
  return result;
}

}  // namespace firefly::graph
