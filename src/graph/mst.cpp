#include "graph/mst.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "graph/union_find.hpp"

namespace firefly::graph {

MstResult kruskal(const Graph& g, Orientation orientation) {
  MstResult result;
  const std::size_t n = g.vertex_count();
  if (n == 0) {
    result.spanning = true;
    return result;
  }
  std::vector<std::uint32_t> order(g.edge_count());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  const auto& edges = g.edges();
  if (orientation == Orientation::kMin) {
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      if (edges[a].weight != edges[b].weight) return edges[a].weight < edges[b].weight;
      return a < b;  // deterministic tie-break
    });
  } else {
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      if (edges[a].weight != edges[b].weight) return edges[a].weight > edges[b].weight;
      return a < b;
    });
  }
  UnionFind uf(n);
  for (const std::uint32_t idx : order) {
    const Edge& e = edges[idx];
    if (uf.unite(e.u, e.v)) {
      result.edges.push_back(e);
      result.total_weight += e.weight;
      if (result.edges.size() == n - 1) break;
    }
  }
  result.spanning = (result.edges.size() + 1 == n);
  return result;
}

MstResult prim(const Graph& g, Orientation orientation) {
  MstResult result;
  const std::size_t n = g.vertex_count();
  if (n == 0) {
    result.spanning = true;
    return result;
  }
  // For kMax we negate weights on the heap and restore on output.
  const double sign = orientation == Orientation::kMin ? 1.0 : -1.0;

  struct HeapEntry {
    double key;
    std::uint32_t edge_index;
    VertexId to;
  };
  const auto cmp = [](const HeapEntry& a, const HeapEntry& b) { return a.key > b.key; };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(cmp)> heap(cmp);

  std::vector<char> in_tree(n, 0);
  std::size_t in_tree_count = 0;

  auto add_vertex = [&](VertexId v) {
    in_tree[v] = 1;
    ++in_tree_count;
    for (const Neighbor& nb : g.neighbors(v)) {
      if (!in_tree[nb.to]) heap.push(HeapEntry{sign * nb.weight, nb.edge_index, nb.to});
    }
  };
  add_vertex(0);

  while (!heap.empty() && in_tree_count < n) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (in_tree[top.to]) continue;
    const Edge& e = g.edge(top.edge_index);
    result.edges.push_back(e);
    result.total_weight += e.weight;
    add_vertex(top.to);
  }
  result.spanning = (in_tree_count == n);
  return result;
}

double forest_weight(const MstResult& r) { return r.total_weight; }

}  // namespace firefly::graph
