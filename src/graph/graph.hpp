// graph.hpp — weighted undirected graphs.
//
// The paper models the network as G(V, E) with edge weight proportional to
// proximity-signal strength: *heavier = stronger = closer*.  The spanning
// structure the algorithm grows therefore selects the *maximum*-weight
// outgoing edge of each fragment — equivalently the minimum-RSSI-loss edge —
// so the reference algorithms below support both min and max orientation
// through a weight sign flip handled by the callers.
//
// Representation: flat edge list plus CSR-style adjacency built on demand.
// Vertices are dense 0..n-1 ids (device ids in the simulator).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace firefly::graph {

using VertexId = std::uint32_t;

struct Edge {
  VertexId u{0};
  VertexId v{0};
  double weight{0.0};

  friend constexpr bool operator==(const Edge&, const Edge&) = default;
};

/// Half-edge as seen from one endpoint.
struct Neighbor {
  VertexId to{0};
  double weight{0.0};
  std::uint32_t edge_index{0};  ///< index into the graph's edge list
};

class Graph {
 public:
  explicit Graph(std::size_t vertex_count = 0) : vertex_count_(vertex_count) {}

  /// Add an undirected edge.  Self-loops are rejected (assert).
  /// Returns the edge index.
  std::uint32_t add_edge(VertexId u, VertexId v, double weight);

  [[nodiscard]] std::size_t vertex_count() const { return vertex_count_; }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] const Edge& edge(std::uint32_t index) const { return edges_[index]; }

  /// Neighbors of `v`.  Adjacency is (re)built lazily after mutation.
  [[nodiscard]] std::span<const Neighbor> neighbors(VertexId v) const;

  /// Total weight of all edges.
  [[nodiscard]] double total_weight() const;

  /// True if every vertex is reachable from vertex 0 (or graph is empty).
  [[nodiscard]] bool connected() const;

  /// Number of connected components.
  [[nodiscard]] std::size_t component_count() const;

 private:
  void build_adjacency() const;

  std::size_t vertex_count_;
  std::vector<Edge> edges_;
  mutable std::vector<Neighbor> adjacency_;
  mutable std::vector<std::uint32_t> offsets_;
  mutable bool adjacency_valid_ = false;
};

/// True when `edges` (a subset of some graph's edges over n vertices) form
/// a spanning tree: exactly n-1 edges, connected, acyclic.
[[nodiscard]] bool is_spanning_tree(std::size_t vertex_count, std::span<const Edge> edges);

}  // namespace firefly::graph
