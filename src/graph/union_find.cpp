#include "graph/union_find.hpp"

#include <cassert>
#include <numeric>

namespace firefly::graph {

UnionFind::UnionFind(std::size_t n)
    : parents_(n), sizes_(n, 1), set_count_(n) {
  std::iota(parents_.begin(), parents_.end(), 0U);
}

std::uint32_t UnionFind::find(std::uint32_t x) {
  assert(x < parents_.size());
  while (parents_[x] != x) {
    parents_[x] = parents_[parents_[x]];  // path halving
    x = parents_[x];
  }
  return x;
}

bool UnionFind::unite(std::uint32_t a, std::uint32_t b) {
  std::uint32_t ra = find(a);
  std::uint32_t rb = find(b);
  if (ra == rb) return false;
  if (sizes_[ra] < sizes_[rb]) std::swap(ra, rb);
  parents_[rb] = ra;
  sizes_[ra] += sizes_[rb];
  --set_count_;
  return true;
}

}  // namespace firefly::graph
