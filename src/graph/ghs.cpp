#include "graph/ghs.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>

#include "graph/union_find.hpp"

namespace firefly::graph {

namespace {
constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();
}

GhsResult ghs(const Graph& g, Orientation orientation) {
  GhsResult result;
  const std::size_t n = g.vertex_count();
  if (n == 0) {
    result.tree.spanning = true;
    return result;
  }
  const double sign = orientation == Orientation::kMin ? 1.0 : -1.0;
  const auto& edges = g.edges();

  UnionFind uf(n);
  std::vector<std::size_t> level(n, 0);  // indexed by fragment root

  // Per-vertex adjacency sorted by (oriented weight, edge index): GHS nodes
  // probe edges in this order and remember rejected (intra-fragment) edges.
  std::vector<std::vector<Neighbor>> sorted_adj(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    const auto span = g.neighbors(v);
    sorted_adj[v].assign(span.begin(), span.end());
    std::sort(sorted_adj[v].begin(), sorted_adj[v].end(),
              [&](const Neighbor& a, const Neighbor& b) {
                const double ka = sign * a.weight;
                const double kb = sign * b.weight;
                if (ka != kb) return ka < kb;
                return a.edge_index < b.edge_index;
              });
  }
  // Probe cursor per vertex: edges before it are known-internal (rejected
  // once, never probed again — GHS's "rejected" edge state).
  std::vector<std::size_t> cursor(n, 0);

  std::vector<std::uint32_t> best(n, kNone);  // fragment root -> best edge

  while (uf.set_count() > 1) {
    ++result.rounds;

    // --- Find phase: every fragment locates its best outgoing edge. ---
    for (std::uint32_t v = 0; v < n; ++v) best[uf.find(v)] = kNone;
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint32_t root = uf.find(v);
      // Advance past edges now internal to the fragment.
      auto& adj = sorted_adj[v];
      while (cursor[v] < adj.size()) {
        const Neighbor& nb = adj[cursor[v]];
        ++result.messages.test;
        ++result.messages.accept_reject;
        if (uf.find(nb.to) == root) {
          ++cursor[v];  // rejected: internal edge, never probed again
          continue;
        }
        // Accepted: this is v's local best outgoing edge.
        const std::uint32_t idx = nb.edge_index;
        auto better = [&](std::uint32_t current) {
          if (current == kNone) return true;
          const double key = sign * edges[idx].weight;
          const double cur = sign * edges[current].weight;
          if (key != cur) return key < cur;
          return idx < current;
        };
        if (better(best[root])) best[root] = idx;
        break;
      }
      ++result.messages.report;  // report up the fragment tree
    }

    // --- Connect phase with the GHS level rule. ---
    // Collect each fragment's choice first (simultaneous sends).
    std::unordered_map<std::uint32_t, std::uint32_t> choice;  // root -> edge
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint32_t root = uf.find(v);
      if (root == v && best[root] != kNone) {
        choice.emplace(root, best[root]);
        ++result.messages.connect;
      }
    }
    if (choice.empty()) break;  // disconnected graph: no outgoing edges left

    bool progressed = false;
    for (const auto& [root, edge_idx] : choice) {
      if (uf.find(root) != root) continue;  // already absorbed this round
      const Edge& e = edges[edge_idx];
      std::uint32_t peer = uf.find(e.u) == root ? uf.find(e.v) : uf.find(e.u);
      if (peer == root) continue;  // became internal meanwhile

      const std::size_t my_level = level[root];
      const std::size_t peer_level = level[peer];
      const auto peer_choice = choice.find(peer);
      const bool mutual = peer_choice != choice.end() && peer_choice->second == edge_idx;

      std::size_t new_level;
      if (mutual && my_level == peer_level) {
        new_level = my_level + 1;  // merge
      } else if (peer_level > my_level) {
        new_level = peer_level;    // absorb into higher-level fragment
      } else {
        continue;                  // wait (peer is lower level, not mutual)
      }

      if (uf.unite(root, peer)) {
        result.tree.edges.push_back(e);
        result.tree.total_weight += e.weight;
        const std::uint32_t new_root = uf.find(root);
        level[new_root] = new_level;
        result.max_level = std::max(result.max_level, new_level);
        // Initiate: flood the new fragment identity to every member.
        result.messages.initiate += uf.size_of(new_root);
        progressed = true;
      }
    }
    if (!progressed) {
      // All pending connects are waits; in synchronous GHS the lowest-level
      // fragments would eventually force progress.  Force the minimum-key
      // mutual-less connect to absorb to avoid an artificial stall.
      std::uint32_t pick = kNone;
      for (const auto& [root, edge_idx] : choice) {
        if (uf.find(root) != root) continue;
        if (pick == kNone || sign * edges[edge_idx].weight < sign * edges[pick].weight ||
            (edges[edge_idx].weight == edges[pick].weight && edge_idx < pick)) {
          pick = edge_idx;
        }
      }
      if (pick == kNone) break;
      const Edge& e = edges[pick];
      if (uf.unite(e.u, e.v)) {
        result.tree.edges.push_back(e);
        result.tree.total_weight += e.weight;
        const std::uint32_t new_root = uf.find(e.u);
        level[new_root] = std::max(level[uf.find(e.u)], static_cast<std::size_t>(1));
        result.messages.initiate += uf.size_of(new_root);
      }
    }
  }

  result.tree.spanning = (result.tree.edges.size() + 1 == n);
  return result;
}

}  // namespace firefly::graph
