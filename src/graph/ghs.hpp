// ghs.hpp — synchronous Gallager–Humblet–Spira (GHS) distributed MST.
//
// A faithful synchronous rendition of the GHS fragment algorithm with its
// level rule, simulated at graph granularity with full message accounting:
//   * Test/Accept/Reject — a node probes incident edges in weight order to
//     find an outgoing one (2 messages per probe),
//   * Report — each member reports its best outgoing edge up the fragment
//     tree (1 message per member),
//   * Connect — the fragment sends a connect over its best outgoing edge,
//   * Initiate — after a merge the new fragment identity is flooded to all
//     members (1 message per member).
// Level rule: a fragment at level L joining over edge e
//   - merges (level L+1) when the peer fragment chose the same edge and has
//     the same level,
//   - is absorbed immediately when the peer has a higher level,
//   - waits otherwise.
// This matches the paper's "tree based topological mechanism" citation and
// provides the O(n log n) message behaviour the paper leans on.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/mst.hpp"

namespace firefly::graph {

struct GhsMessageBreakdown {
  std::uint64_t test{0};
  std::uint64_t accept_reject{0};
  std::uint64_t report{0};
  std::uint64_t connect{0};
  std::uint64_t initiate{0};

  [[nodiscard]] std::uint64_t total() const {
    return test + accept_reject + report + connect + initiate;
  }
};

struct GhsResult {
  MstResult tree;
  std::size_t rounds{0};
  std::size_t max_level{0};
  GhsMessageBreakdown messages;
};

[[nodiscard]] GhsResult ghs(const Graph& g, Orientation orientation = Orientation::kMin);

}  // namespace firefly::graph
