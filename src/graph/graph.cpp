#include "graph/graph.hpp"

#include <cassert>
#include <numeric>

#include "graph/union_find.hpp"

namespace firefly::graph {

std::uint32_t Graph::add_edge(VertexId u, VertexId v, double weight) {
  assert(u != v && "self-loops are not allowed");
  assert(u < vertex_count_ && v < vertex_count_);
  const auto index = static_cast<std::uint32_t>(edges_.size());
  edges_.push_back(Edge{u, v, weight});
  adjacency_valid_ = false;
  return index;
}

void Graph::build_adjacency() const {
  offsets_.assign(vertex_count_ + 1, 0);
  for (const Edge& e : edges_) {
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
  adjacency_.assign(2 * edges_.size(), Neighbor{});
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::uint32_t idx = 0; idx < edges_.size(); ++idx) {
    const Edge& e = edges_[idx];
    adjacency_[cursor[e.u]++] = Neighbor{e.v, e.weight, idx};
    adjacency_[cursor[e.v]++] = Neighbor{e.u, e.weight, idx};
  }
  adjacency_valid_ = true;
}

std::span<const Neighbor> Graph::neighbors(VertexId v) const {
  assert(v < vertex_count_);
  if (!adjacency_valid_) build_adjacency();
  return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

double Graph::total_weight() const {
  return std::accumulate(edges_.begin(), edges_.end(), 0.0,
                         [](double acc, const Edge& e) { return acc + e.weight; });
}

bool Graph::connected() const { return component_count() <= 1; }

std::size_t Graph::component_count() const {
  if (vertex_count_ == 0) return 0;
  UnionFind uf(vertex_count_);
  for (const Edge& e : edges_) uf.unite(e.u, e.v);
  return uf.set_count();
}

bool is_spanning_tree(std::size_t vertex_count, std::span<const Edge> edges) {
  if (vertex_count == 0) return edges.empty();
  if (edges.size() != vertex_count - 1) return false;
  UnionFind uf(vertex_count);
  for (const Edge& e : edges) {
    if (e.u >= vertex_count || e.v >= vertex_count) return false;
    if (!uf.unite(e.u, e.v)) return false;  // cycle
  }
  return uf.set_count() == 1;
}

}  // namespace firefly::graph
