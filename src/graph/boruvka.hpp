// boruvka.hpp — message-counting distributed Borůvka.
//
// The paper bases its spanning-tree construction on "GHS and Boruvkas
// algorithm".  This module runs Borůvka in synchronous rounds the way a
// radio network would: in each round every fragment
//   1. floods internally to find its best (min or max) outgoing edge
//      (costing ~|fragment| messages),
//   2. announces a merge over that edge (1 message),
//   3. merged fragments adopt the larger side's head (union by size).
// Message and round counts are reported so the spanning-tree bench can
// compare against the naive all-pairs approach.  Ties are broken on
// (weight, edge index) so the run is deterministic and never cycles.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/mst.hpp"

namespace firefly::graph {

struct BoruvkaResult {
  MstResult tree;
  std::size_t rounds{0};
  std::uint64_t messages{0};  ///< intra-fragment floods + merge announcements
};

[[nodiscard]] BoruvkaResult boruvka(const Graph& g,
                                    Orientation orientation = Orientation::kMin);

}  // namespace firefly::graph
