// union_find.hpp — disjoint-set forest with union by size + path halving.
//
// Used by the reference MST algorithms, by spanning-tree validation, and by
// the ST protocol's fragment bookkeeping ("merge S_u into S_v, choosing the
// head from the tree with the highest number of nodes" — Algorithm 1 line
// 12 needs exactly union-by-size semantics).
#pragma once

#include <cstdint>
#include <vector>

namespace firefly::graph {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  /// Representative of x's set (with path halving).
  [[nodiscard]] std::uint32_t find(std::uint32_t x);

  /// Merge the sets of a and b.  Returns false if already in one set.
  /// The larger set's representative wins (union by size), matching the
  /// paper's "head from the highest number of node's tree".
  bool unite(std::uint32_t a, std::uint32_t b);

  [[nodiscard]] bool same(std::uint32_t a, std::uint32_t b) { return find(a) == find(b); }
  [[nodiscard]] std::size_t set_count() const { return set_count_; }
  [[nodiscard]] std::size_t size_of(std::uint32_t x) { return sizes_[find(x)]; }
  [[nodiscard]] std::size_t element_count() const { return parents_.size(); }

 private:
  std::vector<std::uint32_t> parents_;
  std::vector<std::uint32_t> sizes_;
  std::size_t set_count_;
};

}  // namespace firefly::graph
