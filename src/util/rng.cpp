#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace firefly::util {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256ss::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(engine_.next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded integer method, with rejection to
  // remove modulo bias entirely.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = engine_.next();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 shifted away from zero to keep log() finite.
  const double u1 = (static_cast<double>(engine_.next() >> 11) + 0.5) * 0x1.0p-53;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = radius * std::sin(kTwoPi * u2);
  have_cached_normal_ = true;
  return radius * std::cos(kTwoPi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::rayleigh(double sigma) {
  const double u = (static_cast<double>(engine_.next() >> 11) + 0.5) * 0x1.0p-53;
  return sigma * std::sqrt(-2.0 * std::log(u));
}

double Rng::gamma(double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and correct with u^(1/shape) (Marsaglia–Tsang trick).
    const double u = (static_cast<double>(engine_.next() >> 11) + 0.5) * 0x1.0p-53;
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = (static_cast<double>(engine_.next() >> 11) + 0.5) * 0x1.0p-53;
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v * scale;
  }
}

std::uint64_t Rng::poisson(double lambda) {
  assert(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 64.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-lambda);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  const double x = normal(lambda, std::sqrt(lambda));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::uint64_t derive_seed(std::uint64_t master, std::string_view stream, std::uint64_t index) {
  // FNV-1a over the stream name ...
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : stream) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  // ... mixed with master seed and index through SplitMix64 rounds.
  SplitMix64 mixer(master ^ h);
  std::uint64_t s = mixer.next();
  SplitMix64 mixer2(s ^ (index * 0x9E3779B97F4A7C15ULL + 0x2545F4914F6CDD1DULL));
  return mixer2.next();
}

}  // namespace firefly::util
