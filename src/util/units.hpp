// units.hpp — decibel / milliwatt power arithmetic used throughout the PHY.
//
// The paper works in dBm end-to-end (transmit power 23 dBm, detection
// threshold -95 dBm, path loss and shadowing in dB).  These helpers keep the
// conversions in one audited place.  Strong types `Dbm` and `Db` prevent the
// classic bug of adding two absolute powers as if they were gains.
#pragma once

#include <cmath>
#include <compare>
#include <string>

namespace firefly::util {

/// A relative power ratio in decibels (a gain or a loss).
struct Db {
  double value{0.0};

  constexpr Db() = default;
  constexpr explicit Db(double v) : value(v) {}

  friend constexpr Db operator+(Db a, Db b) { return Db{a.value + b.value}; }
  friend constexpr Db operator-(Db a, Db b) { return Db{a.value - b.value}; }
  friend constexpr Db operator-(Db a) { return Db{-a.value}; }
  friend constexpr Db operator*(double k, Db a) { return Db{k * a.value}; }
  friend constexpr auto operator<=>(Db a, Db b) = default;

  /// Linear power ratio: 10^(dB/10).
  [[nodiscard]] double ratio() const { return std::pow(10.0, value / 10.0); }
};

/// An absolute power level referenced to 1 mW, in dBm.
struct Dbm {
  double value{0.0};

  constexpr Dbm() = default;
  constexpr explicit Dbm(double v) : value(v) {}

  // Absolute power plus/minus a gain stays absolute.
  friend constexpr Dbm operator+(Dbm p, Db g) { return Dbm{p.value + g.value}; }
  friend constexpr Dbm operator-(Dbm p, Db g) { return Dbm{p.value - g.value}; }
  // The difference of two absolute powers is a ratio.
  friend constexpr Db operator-(Dbm a, Dbm b) { return Db{a.value - b.value}; }
  // Unary negation, so `-95.0_dBm` literals read naturally.
  friend constexpr Dbm operator-(Dbm p) { return Dbm{-p.value}; }
  friend constexpr auto operator<=>(Dbm a, Dbm b) = default;

  /// Power in milliwatts: 10^(dBm/10).
  [[nodiscard]] double milliwatts() const { return std::pow(10.0, value / 10.0); }
  /// Power in watts.
  [[nodiscard]] double watts() const { return milliwatts() * 1e-3; }
};

/// dBm from a power in milliwatts (paper eq. 8: p = 10·log10(p/p_ref)).
[[nodiscard]] Dbm dbm_from_milliwatts(double mw);

/// dB from a linear power ratio.
[[nodiscard]] Db db_from_ratio(double ratio);

/// Sum of two absolute powers (converts to mW, adds, converts back).
/// Needed when accumulating interference from several transmitters.
[[nodiscard]] Dbm power_sum(Dbm a, Dbm b);

/// Human-readable rendering, e.g. "-95.0 dBm".
[[nodiscard]] std::string to_string(Dbm p);
[[nodiscard]] std::string to_string(Db g);

namespace literals {
constexpr Dbm operator""_dBm(long double v) { return Dbm{static_cast<double>(v)}; }
constexpr Dbm operator""_dBm(unsigned long long v) { return Dbm{static_cast<double>(v)}; }
constexpr Db operator""_dB(long double v) { return Db{static_cast<double>(v)}; }
constexpr Db operator""_dB(unsigned long long v) { return Db{static_cast<double>(v)}; }
}  // namespace literals

}  // namespace firefly::util
