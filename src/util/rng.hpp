// rng.hpp — deterministic, stream-splittable random number generation.
//
// Every stochastic element of the simulator (deployment, shadowing, fading,
// oscillator jitter, Monte-Carlo trials) draws from an `Rng` derived from a
// single master seed through named substreams.  Two runs with the same master
// seed are bit-identical regardless of evaluation order across threads,
// because each component owns an independent stream keyed by
// (master_seed, stream_name, trial_index).
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace firefly::util {

/// SplitMix64: the canonical 64-bit seeding/stream-derivation mixer.
/// Passes BigCrush when used as a generator; we use it both as a mixer for
/// stream derivation and as the engine behind `Rng`.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Seeded from SplitMix64 per its authors' recommendation.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed);

  std::uint64_t next();

  // UniformRandomBitGenerator interface so <random> distributions also work.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

 private:
  std::uint64_t s_[4];
};

/// High-level deterministic RNG with the distributions the simulator needs.
/// All transforms are implemented here (not via <random>) so results are
/// identical across standard libraries and compilers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).  Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Standard normal via Box–Muller (deterministic, pair-cached).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Uniform in (0, 1), offset away from zero: the single generator step
  /// underlying `exponential` (and the Rayleigh power-gain draw).  Exposed
  /// so the radio's delivery fast path can test the raw uniform against a
  /// precomputed bound and only pay the log for survivors.
  double unit_open() {
    return (static_cast<double>(engine_.next() >> 11) + 0.5) * 0x1.0p-53;
  }
  /// Fill `out[0..n)` with the exact sequence n successive `unit_open()`
  /// calls would produce.  The radio's batched delivery path uses this to
  /// draw one fade per candidate in a single tight loop; keeping it
  /// bit-equal to the scalar draw is what pins cross-path determinism.
  void fill_unit_open(double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = (static_cast<double>(engine_.next() >> 11) + 0.5) * 0x1.0p-53;
    }
  }
  /// Exponential with the given rate λ (> 0).  Inline: it is the Rayleigh
  /// power-gain draw, which delivery evaluation performs once per
  /// candidate receiver — millions of times per large trial.
  double exponential(double rate) {
    assert(rate > 0.0);
    return -std::log(unit_open()) / rate;
  }
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);
  /// Rayleigh-distributed amplitude with scale σ.
  double rayleigh(double sigma);
  /// Gamma(shape k, scale θ) via Marsaglia–Tsang.  Used for Nakagami fading.
  double gamma(double shape, double scale);
  /// Poisson with mean λ (Knuth for small λ, normal approximation above 64).
  std::uint64_t poisson(double lambda);

  /// Raw 64 random bits.
  std::uint64_t bits() { return engine_.next(); }

  /// Fisher–Yates shuffle.
  template <typename RandomIt>
  void shuffle(RandomIt first, RandomIt last) {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const auto j = uniform_index(i);
      using std::swap;
      swap(first[i - 1], first[j]);
    }
  }

 private:
  Xoshiro256ss engine_;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Derive a child seed from (master, stream_name, index).
/// FNV-1a over the name, mixed with SplitMix64; stable across platforms.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master, std::string_view stream,
                                        std::uint64_t index = 0);

/// Factory for named substreams off a master seed.
class RngFactory {
 public:
  explicit RngFactory(std::uint64_t master_seed) : master_(master_seed) {}

  [[nodiscard]] Rng make(std::string_view stream, std::uint64_t index = 0) const {
    return Rng{derive_seed(master_, stream, index)};
  }
  [[nodiscard]] std::uint64_t master_seed() const { return master_; }

 private:
  std::uint64_t master_;
};

}  // namespace firefly::util
