#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace firefly::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sem() const {
  if (count_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

void Sample::add(double x) {
  values_.push_back(x);
  sorted_ = false;
}

void Sample::ensure_sorted() const {
  if (!sorted_) {
    auto& v = const_cast<std::vector<double>&>(values_);
    std::sort(v.begin(), v.end());
    const_cast<bool&>(sorted_) = true;
  }
}

double Sample::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Sample::stddev() const {
  const std::size_t n = values_.size();
  if (n < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (const double v : values_) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(n - 1));
}

double Sample::percentile(double p) const {
  assert(p >= 0.0 && p <= 100.0);
  if (values_.empty()) return 0.0;
  ensure_sorted();
  if (values_.size() == 1) return values_[0];
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double Sample::ci95_halfwidth() const {
  const std::size_t n = values_.size();
  if (n < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n));
}

double fit_loglog_slope(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] <= 0.0 || y[i] <= 0.0) continue;
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++used;
  }
  if (used < 2) return 0.0;
  const double un = static_cast<double>(used);
  const double denom = un * sxx - sx * sx;
  if (std::fabs(denom) < std::numeric_limits<double>::epsilon()) return 0.0;
  return (un * sxy - sx * sy) / denom;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace firefly::util
