#include "util/units.hpp"

#include <limits>
#include <sstream>

namespace firefly::util {

Dbm dbm_from_milliwatts(double mw) {
  if (mw <= 0.0) return Dbm{-std::numeric_limits<double>::infinity()};
  return Dbm{10.0 * std::log10(mw)};
}

Db db_from_ratio(double ratio) {
  if (ratio <= 0.0) return Db{-std::numeric_limits<double>::infinity()};
  return Db{10.0 * std::log10(ratio)};
}

Dbm power_sum(Dbm a, Dbm b) {
  return dbm_from_milliwatts(a.milliwatts() + b.milliwatts());
}

std::string to_string(Dbm p) {
  std::ostringstream os;
  os << p.value << " dBm";
  return os.str();
}

std::string to_string(Db g) {
  std::ostringstream os;
  os << g.value << " dB";
  return os.str();
}

}  // namespace firefly::util
