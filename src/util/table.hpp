// table.hpp — console tables and CSV emission for the benchmark harness.
//
// Every figure/table bench prints (a) a human-readable aligned table in the
// style of the paper's figures and (b) optionally a CSV file so results can
// be re-plotted.  This keeps formatting out of the experiment code.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace firefly::util {

/// Column-aligned text table with a title, headers and string cells.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& set_headers(std::vector<std::string> headers);
  /// Adds a row; the cell count must match the header count (asserted).
  Table& add_row(std::vector<std::string> cells);

  /// Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 2);
  /// Convenience: format an integer count.
  static std::string num(std::size_t v);

  /// Render aligned to an ostream (default separator style: spaces + rules).
  void print(std::ostream& os) const;
  /// Render as RFC-4180-ish CSV (no quoting of embedded commas needed here,
  /// but commas in cells are escaped by quoting).
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] const std::vector<std::string>& headers() const { return headers_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& row_data() const {
    return rows_;
  }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace firefly::util
