// inplace_function.hpp — small-buffer-optimised move-only callable.
//
// The event scheduler stores one callback per pending event; with
// `std::function` every schedule() heap-allocates a closure, which is the
// single largest per-event cost in a large trial.  `InplaceFunction` keeps
// the closure inline in a fixed buffer (no heap, ever: captures larger than
// the buffer fail to compile), dispatches through one static ops table
// pointer, and is move-only so it can hold move-only captures.  It is not a
// general `std::function` replacement — only what the simulator needs.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace firefly::util {

template <typename Signature, std::size_t Capacity = 48>
class InplaceFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InplaceFunction>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    static_assert(std::is_invocable_r_v<R, D&, Args...>,
                  "callable signature mismatch");
    static_assert(sizeof(D) <= Capacity,
                  "closure captures exceed the inline buffer; grow Capacity "
                  "or capture less");
    static_assert(alignof(D) <= alignof(std::max_align_t));
    ::new (static_cast<void*>(buffer_)) D(std::forward<F>(f));
    ops_ = &ops_for<D>;
  }

  InplaceFunction(InplaceFunction&& other) noexcept { move_from(other); }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InplaceFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(buffer_, std::forward<Args>(args)...);
  }

  /// Deep copy of the stored callable.  The class stays move-only (the
  /// scheduler never copies events accidentally); cloning is the explicit
  /// escape hatch the snapshot/restore checkpoint uses to duplicate a
  /// pending-event set.  Requires the callable to be copy-constructible —
  /// every closure the engines schedule is (they capture raw pointers and
  /// scalars); a non-copyable capture asserts.  An empty function clones
  /// to an empty function.
  [[nodiscard]] InplaceFunction clone() const {
    InplaceFunction out;
    if (ops_ != nullptr) {
      assert(ops_->copy != nullptr &&
             "clone() requires a copy-constructible callable");
      ops_->copy(out.buffer_, buffer_);
      out.ops_ = ops_;
    }
    return out;
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args...);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
    void (*copy)(void* dst, const void* src);  // null for non-copyable callables
  };

  template <typename D>
  static constexpr auto copy_op() -> void (*)(void*, const void*) {
    if constexpr (std::is_copy_constructible_v<D>) {
      return [](void* dst, const void* src) {
        ::new (dst) D(*std::launder(reinterpret_cast<const D*>(src)));
      };
    } else {
      return nullptr;
    }
  }

  template <typename D>
  static constexpr Ops ops_for{
      [](void* p, Args... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(p)))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { std::launder(reinterpret_cast<D*>(p))->~D(); },
      copy_op<D>(),
  };

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  void move_from(InplaceFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(buffer_, other.buffer_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buffer_[Capacity];
};

}  // namespace firefly::util
