// thread_pool.hpp — fixed-size thread pool for Monte-Carlo trial fan-out.
//
// The experiment harness runs independent simulation trials (one per seed)
// in parallel.  Tasks are plain value closures; results come back through
// futures, so there is no shared mutable state between trials (each trial
// owns its RNG substream and simulator instance).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace firefly::util {

class ThreadPool {
 public:
  /// n = 0 picks hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t n = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Apply fn(i) for i in [0, count) across the pool and wait for all.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace firefly::util
