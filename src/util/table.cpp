#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace firefly::util {

Table& Table::set_headers(std::vector<std::string> headers) {
  headers_ = std::move(headers);
  return *this;
}

Table& Table::add_row(std::vector<std::string> cells) {
  assert(headers_.empty() || cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::size_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i >= widths.size()) widths.resize(i + 1, 0);
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  std::size_t total = widths.empty() ? 0 : 2 * (widths.size() - 1);
  for (const auto w : widths) total += w;

  os << "\n== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i])) << cells[i];
      if (i + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };
  if (!headers_.empty()) {
    print_row(headers_);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return;
  auto write_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      f << csv_escape(cells[i]);
      if (i + 1 < cells.size()) f << ',';
    }
    f << '\n';
  };
  if (!headers_.empty()) write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

}  // namespace firefly::util
