// flags.hpp — minimal command-line flag parsing for the tools/examples.
//
// Supports `--name value`, `--name=value` and bare boolean `--name`.
// Unknown flags are collected so callers can reject typos instead of
// silently ignoring them.  No global state; each parser owns its argv view.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace firefly::util {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get(const std::string& name, std::string fallback) const;
  [[nodiscard]] std::int64_t get(const std::string& name, std::int64_t fallback) const;
  [[nodiscard]] double get(const std::string& name, double fallback) const;
  [[nodiscard]] bool get(const std::string& name, bool fallback) const;

  /// Non-flag positional arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }
  /// Flags that were parsed (for unknown-flag checks).
  [[nodiscard]] std::vector<std::string> names() const;
  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace firefly::util
