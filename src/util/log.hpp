// log.hpp — minimal leveled logger for protocol tracing.
//
// The simulator's protocol state machines log fragment merges, RACH
// handshakes and firing events at Debug/Trace level; experiments run with
// logging off by default so the hot path stays free of I/O.  The logger is a
// process-wide singleton guarded by a mutex (log volume is low; contention
// is irrelevant next to the cost of formatting).
#pragma once

#include <sstream>
#include <string>

namespace firefly::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global threshold; messages below it are discarded before formatting.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();
[[nodiscard]] const char* log_level_name(LogLevel level);

/// Sink the formatted line (thread-safe).  Exposed for tests.
void log_emit(LogLevel level, const std::string& message);

namespace detail {
/// RAII line builder: streams into a buffer, emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace firefly::util

// Usage: FIREFLY_LOG(kDebug) << "fragment " << id << " merged";
#define FIREFLY_LOG(level)                                                     \
  if (::firefly::util::LogLevel::level < ::firefly::util::log_level()) {       \
  } else                                                                       \
    ::firefly::util::detail::LogLine(::firefly::util::LogLevel::level)
