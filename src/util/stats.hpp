// stats.hpp — streaming and batch statistics for experiment results.
//
// `RunningStats` uses Welford's numerically stable online algorithm so that
// millions of samples can be accumulated without storing them.  `Sample`
// stores values for percentile queries and confidence intervals, which the
// experiment harness reports alongside every figure series.
#pragma once

#include <cstddef>
#include <vector>

namespace firefly::util {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Unbiased sample variance (0 when fewer than two samples).
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  /// Standard error of the mean.
  [[nodiscard]] double sem() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Value-retaining sample for order statistics.
class Sample {
 public:
  void add(double x);
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  /// Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  /// Half-width of the t-distribution-free normal-approximation 95% CI.
  [[nodiscard]] double ci95_halfwidth() const;
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable bool sorted_ = true;
};

/// Least-squares fit of log(y) = a + b·log(x); returns the exponent b.
/// Used by the complexity benches to estimate empirical scaling orders.
[[nodiscard]] double fit_loglog_slope(const std::vector<double>& x,
                                      const std::vector<double>& y);

/// Pearson correlation coefficient.
[[nodiscard]] double pearson(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace firefly::util
