#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace firefly::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void log_emit(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::clog << '[' << log_level_name(level) << "] " << message << '\n';
}

}  // namespace firefly::util
