// flat_set.hpp — open-addressed set of 32-bit keys.
//
// The ST engine deduplicates merge announcements and sync floods once per
// decoded control PS, so the set operations sit on the simulator's hot
// path.  std::unordered_set pays a heap node per element and a bucket walk
// per lookup; this replacement is a single power-of-two slot array with
// linear probing (slots are 64-bit so every 32-bit key is storable and the
// empty sentinel lives outside the key space).  Only what the engine
// needs: insert, contains, clear — no erase, so probing never meets a
// tombstone.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace firefly::util {

class FlatU32Set {
 public:
  /// Insert `key`; returns true when it was not already present.
  bool insert(std::uint32_t key) {
    if (slots_.empty()) slots_.assign(kMinSlots, kEmpty);
    std::size_t slot = probe(key);
    if (slots_[slot] == key) return false;
    if ((size_ + 1) * 4 > slots_.size() * 3) {  // load factor 3/4
      rehash(slots_.size() * 2);
      slot = probe(key);
    }
    slots_[slot] = key;
    ++size_;
    return true;
  }

  [[nodiscard]] bool contains(std::uint32_t key) const {
    return !slots_.empty() && slots_[probe(key)] == key;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Empties the set but keeps the slot array (cleared sets refill soon).
  void clear() {
    std::fill(slots_.begin(), slots_.end(), kEmpty);
    size_ = 0;
  }

 private:
  static constexpr std::uint64_t kEmpty = ~0ULL;
  static constexpr std::size_t kMinSlots = 16;

  /// Slot holding `key`, or the first empty slot on its probe chain.
  [[nodiscard]] std::size_t probe(std::uint32_t key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot =
        static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ULL) >> 32) & mask;
    while (slots_[slot] != kEmpty && slots_[slot] != key) slot = (slot + 1) & mask;
    return slot;
  }

  void rehash(std::size_t new_slots) {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(new_slots, kEmpty);
    for (const std::uint64_t v : old) {
      if (v != kEmpty) slots_[probe(static_cast<std::uint32_t>(v))] = v;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
};

}  // namespace firefly::util
