// arena.hpp — trial-scoped allocators.
//
// Two shapes live here:
//   * `SlabArena<T>` — chunked slab with a freelist.  Fixed-layout records
//     (the slot calendar's event records) live in chunks of 256 so addresses
//     are stable, indices are dense 32-bit handles, and a release/allocate
//     cycle never touches the system heap after the first use of a slot.
//     Destructors are not run on clear(); element types must be reusable by
//     assignment (the calendar re-initialises every field on allocate).
//   * `RegionArena` — one grow-never byte region that typed arrays are
//     carved out of front to back.  The device core's hot state
//     (core/device_soa.hpp) lives in one region per trial, so every flat
//     array is contiguous, the whole hot state snapshots/restores as a
//     single memcpy, and a trial performs exactly one allocation for it.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

namespace firefly::util {

/// A single contiguous byte region carved into typed arrays.  `reset`
/// allocates (and zero-fills) the block once; `carve<T>(count)` hands out
/// aligned sub-arrays front to back.  Only trivially copyable element types
/// are allowed: the region's bytes ARE the state, so a snapshot is
/// `memcpy(dst, data(), used())` and a restore is the reverse.
class RegionArena {
 public:
  /// Discard any previous block and allocate a fresh zero-filled region of
  /// `bytes` capacity.  Pointers carved before reset are invalidated.
  void reset(std::size_t bytes) {
    block_ = std::make_unique<std::byte[]>(bytes);
    std::memset(block_.get(), 0, bytes);
    size_ = bytes;
    used_ = 0;
  }

  /// Carve the next `count` elements of T, aligned to alignof(T).  The
  /// returned array is zero-initialised (reset zero-fills the block).
  template <typename T>
  [[nodiscard]] T* carve(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "RegionArena state must memcpy-snapshot");
    const std::size_t align = alignof(T);
    used_ = (used_ + align - 1) & ~(align - 1);
    assert(used_ + sizeof(T) * count <= size_ && "RegionArena over-carved");
    T* out = reinterpret_cast<T*>(block_.get() + used_);
    used_ += sizeof(T) * count;
    return out;
  }

  [[nodiscard]] std::byte* data() { return block_.get(); }
  [[nodiscard]] const std::byte* data() const { return block_.get(); }
  /// Bytes actually carved — the span a snapshot must copy.
  [[nodiscard]] std::size_t used() const { return used_; }
  [[nodiscard]] std::size_t capacity() const { return size_; }

 private:
  std::unique_ptr<std::byte[]> block_;
  std::size_t size_ = 0;
  std::size_t used_ = 0;
};

template <typename T>
class SlabArena {
 public:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::size_t kChunkSize = 256;

  /// Take a free slot (growing by one chunk when exhausted).  The slot's
  /// object keeps whatever state it last had; the caller re-initialises.
  [[nodiscard]] std::uint32_t allocate() {
    if (free_head_ == kNil) grow();
    const std::uint32_t idx = free_head_;
    free_head_ = free_link_[idx];
    ++live_;
    if (live_ > high_water_) high_water_ = live_;
    return idx;
  }

  /// Return a slot to the freelist.  The object is not destroyed.
  void release(std::uint32_t idx) {
    assert(idx < free_link_.size());
    free_link_[idx] = free_head_;
    free_head_ = idx;
    assert(live_ > 0);
    --live_;
  }

  [[nodiscard]] T& operator[](std::uint32_t idx) {
    assert(idx < capacity());
    return chunks_[idx / kChunkSize][idx % kChunkSize];
  }
  [[nodiscard]] const T& operator[](std::uint32_t idx) const {
    assert(idx < capacity());
    return chunks_[idx / kChunkSize][idx % kChunkSize];
  }

  [[nodiscard]] std::size_t capacity() const { return chunks_.size() * kChunkSize; }
  [[nodiscard]] std::size_t live() const { return live_; }
  /// Lifetime maximum of live(): the bounded-memory probe.  A steady-state
  /// soak must see this stop moving after warm-up — capacity never shrinks,
  /// so a flat high-water mark means the arena stopped allocating.
  [[nodiscard]] std::size_t high_water() const { return high_water_; }
  [[nodiscard]] bool in_range(std::uint64_t idx) const { return idx < capacity(); }

  /// Overwrite this arena with a slot-exact copy of `src`: same chunk count,
  /// same freelist chain, every slot copied through `copy_slot(dst, src)`.
  /// Slot indices (and whatever generation counters the element type keeps)
  /// are preserved, so handles minted against `src` stay valid against the
  /// copy — this is what lets a restored scheduler keep the EventIds that
  /// devices still hold.  The high-water mark keeps its own maximum: a
  /// rollback must not hide growth from the memory probe.
  template <typename CopySlot>
  void copy_from(const SlabArena& src, CopySlot&& copy_slot) {
    while (chunks_.size() < src.chunks_.size())
      chunks_.push_back(std::make_unique<T[]>(kChunkSize));
    chunks_.resize(src.chunks_.size());
    const auto n = static_cast<std::uint32_t>(src.capacity());
    for (std::uint32_t i = 0; i < n; ++i) copy_slot((*this)[i], src[i]);
    free_link_ = src.free_link_;
    free_head_ = src.free_head_;
    live_ = src.live_;
    if (src.high_water_ > high_water_) high_water_ = src.high_water_;
  }

 private:
  void grow() {
    const auto base = static_cast<std::uint32_t>(capacity());
    chunks_.push_back(std::make_unique<T[]>(kChunkSize));
    free_link_.resize(base + kChunkSize);
    // Thread the new chunk onto the freelist in ascending order.
    for (std::uint32_t i = 0; i < kChunkSize; ++i) {
      free_link_[base + i] = base + i + 1;
    }
    free_link_[base + kChunkSize - 1] = free_head_;
    free_head_ = base;
  }

  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<std::uint32_t> free_link_;  // per-slot next-free index
  std::uint32_t free_head_ = kNil;
  std::size_t live_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace firefly::util
