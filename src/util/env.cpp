#include "util/env.hpp"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <set>
#include <string>

namespace firefly::util {

namespace {
std::mutex warned_mutex;
std::set<std::string>& warned_names() {
  static std::set<std::string> names;
  return names;
}
}  // namespace

std::optional<std::size_t> parse_size(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (value > (SIZE_MAX - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  if (value == 0) return std::nullopt;
  return value;
}

std::size_t env_size_t(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const std::optional<std::size_t> parsed = parse_size(raw);
  if (parsed.has_value()) return *parsed;
  {
    const std::lock_guard<std::mutex> lock(warned_mutex);
    if (warned_names().insert(name).second) {
      std::cerr << "warning: ignoring malformed " << name << "='" << raw
                << "' (want a positive integer); using default " << fallback << "\n";
    }
  }
  return fallback;
}

void reset_env_warnings() {
  const std::lock_guard<std::mutex> lock(warned_mutex);
  warned_names().clear();
}

}  // namespace firefly::util
