#include "util/flags.hpp"

#include <cstdlib>

namespace firefly::util {

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is itself a flag (then boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "";
    }
  }
}

bool Flags::has(const std::string& name) const { return values_.contains(name); }

std::string Flags::get(const std::string& name, std::string fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return it->second;
}

std::int64_t Flags::get(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1" ||
      it->second == "yes") {
    return true;
  }
  return false;
}

std::vector<std::string> Flags::names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [name, value] : values_) out.push_back(name);
  return out;
}

}  // namespace firefly::util
