// env.hpp — strict environment-variable parsing for the bench knobs.
//
// The figure benches are trimmed via FIREFLY_BENCH_TRIALS / _MAX_N; a typo
// there (`FIREFLY_BENCH_MAX_N=abc`, `=0`, `=100x`) used to fall back
// silently, so a truncated sweep could masquerade as a full one.  These
// parsers reject trailing garbage and zero, warn once per variable on
// stderr, and only then fall back.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace firefly::util {

/// Strictly parse `text` as a positive base-10 size; nullopt on empty
/// input, trailing garbage, overflow or zero.
[[nodiscard]] std::optional<std::size_t> parse_size(std::string_view text);

/// Read env var `name` as a positive integer; on unset returns `fallback`,
/// on malformed/zero values warns once per variable on stderr and returns
/// `fallback`.
[[nodiscard]] std::size_t env_size_t(const char* name, std::size_t fallback);

/// Test hook: forget which variables have already been warned about.
void reset_env_warnings();

}  // namespace firefly::util
