// mobility.hpp — movement models.
//
// Two models:
//   * `RandomWaypoint` — the classic ad-hoc mobility model, used by the
//     extension examples to study discovery under movement;
//   * `firefly_step` — the paper's eq. (13) location update,
//         x_i <- x_i + k·exp(-γ·r_ij²)·(x_j - x_i) + η·μ,
//     where device i is attracted toward a brighter device j with strength
//     decaying in squared distance, plus a Gaussian exploration term η·μ.
//     This is the positional half of Yang's firefly algorithm that
//     Algorithm 3 of the paper runs per fragment.
#pragma once

#include "geo/point.hpp"
#include "util/rng.hpp"

namespace firefly::geo {

/// Parameters of the paper's eq. (13).
struct FireflyStepParams {
  double k{1.0};      ///< step size toward the better (brighter) solution
  double gamma{1.0};  ///< attraction coefficient γ
  double eta{0.1};    ///< exploration step-size control η
};

/// One eq.-(13) update of `xi` attracted toward `xj`.  `rng` supplies the
/// Gaussian vector μ.  The caller clamps to the deployment area if needed.
[[nodiscard]] Vec2 firefly_step(Vec2 xi, Vec2 xj, const FireflyStepParams& params,
                                util::Rng& rng);

/// Random-waypoint mobility: pick a waypoint uniformly in the area, move
/// toward it at `speed` (m/s), pause `pause_s` seconds, repeat.
class RandomWaypoint {
 public:
  RandomWaypoint(Vec2 start, Area area, double speed_mps, double pause_s, util::Rng* rng);

  /// Advance the model by dt seconds and return the new position.
  Vec2 advance(double dt_s);
  [[nodiscard]] Vec2 position() const { return position_; }

 private:
  void pick_waypoint();

  Vec2 position_;
  Vec2 waypoint_;
  Area area_;
  double speed_;
  double pause_;
  double pause_left_ = 0.0;
  util::Rng* rng_;
};

}  // namespace firefly::geo
