#include "geo/grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace firefly::geo {

void SpatialGrid::build(const std::vector<Vec2>& positions, double cell_size) {
  assert(cell_size > 0.0 && std::isfinite(cell_size));
  cell_size_ = cell_size;
  inv_cell_ = 1.0 / cell_size;

  Vec2 lo{0.0, 0.0};
  Vec2 hi{0.0, 0.0};
  if (!positions.empty()) {
    lo = hi = positions.front();
    for (const Vec2 p : positions) {
      lo.x = std::fmin(lo.x, p.x);
      lo.y = std::fmin(lo.y, p.y);
      hi.x = std::fmax(hi.x, p.x);
      hi.y = std::fmax(hi.y, p.y);
    }
  }
  origin_ = lo;
  nx_ = static_cast<std::size_t>(std::floor((hi.x - lo.x) * inv_cell_)) + 1;
  ny_ = static_cast<std::size_t>(std::floor((hi.y - lo.y) * inv_cell_)) + 1;

  cells_.assign(nx_ * ny_, {});
  cell_of_.resize(positions.size());
  slot_in_cell_.resize(positions.size());
  for (std::size_t id = 0; id < positions.size(); ++id) {
    const std::size_t cell = cell_index(positions[id]);
    cell_of_[id] = static_cast<std::uint32_t>(cell);
    slot_in_cell_[id] = static_cast<std::uint32_t>(cells_[cell].size());
    cells_[cell].push_back(static_cast<std::uint32_t>(id));
  }
}

std::size_t SpatialGrid::col_of(double x) const {
  const double c = std::floor((x - origin_.x) * inv_cell_);
  if (c <= 0.0) return 0;
  const auto col = static_cast<std::size_t>(c);
  return col >= nx_ ? nx_ - 1 : col;
}

std::size_t SpatialGrid::row_of(double y) const {
  const double r = std::floor((y - origin_.y) * inv_cell_);
  if (r <= 0.0) return 0;
  const auto row = static_cast<std::size_t>(r);
  return row >= ny_ ? ny_ - 1 : row;
}

std::size_t SpatialGrid::cell_index(Vec2 p) const {
  return row_of(p.y) * nx_ + col_of(p.x);
}

void SpatialGrid::move(std::size_t id, Vec2 to) {
  assert(id < cell_of_.size());
  const std::size_t from_cell = cell_of_[id];
  const std::size_t to_cell = cell_index(to);
  if (to_cell == from_cell) return;

  // Swap-erase from the old cell, patching the swapped member's slot.
  std::vector<std::uint32_t>& old_members = cells_[from_cell];
  const std::uint32_t slot = slot_in_cell_[id];
  const std::uint32_t last = old_members.back();
  old_members[slot] = last;
  slot_in_cell_[last] = slot;
  old_members.pop_back();

  cell_of_[id] = static_cast<std::uint32_t>(to_cell);
  slot_in_cell_[id] = static_cast<std::uint32_t>(cells_[to_cell].size());
  cells_[to_cell].push_back(static_cast<std::uint32_t>(id));
}

void SpatialGrid::gather(Vec2 center, double radius, std::vector<std::uint32_t>& out) const {
  assert(built());
  const std::size_t c0 = col_of(center.x - radius);
  const std::size_t c1 = col_of(center.x + radius);
  const std::size_t r0 = row_of(center.y - radius);
  const std::size_t r1 = row_of(center.y + radius);
  for (std::size_t row = r0; row <= r1; ++row) {
    for (std::size_t col = c0; col <= c1; ++col) {
      const std::vector<std::uint32_t>& members = cells_[row * nx_ + col];
      out.insert(out.end(), members.begin(), members.end());
    }
  }
}

}  // namespace firefly::geo
