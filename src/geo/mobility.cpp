#include "geo/mobility.hpp"

#include <cassert>
#include <cmath>

namespace firefly::geo {

Vec2 firefly_step(Vec2 xi, Vec2 xj, const FireflyStepParams& params, util::Rng& rng) {
  const double r2 = distance_squared(xi, xj);
  const double attraction = params.k * std::exp(-params.gamma * r2);
  const Vec2 mu{rng.normal(), rng.normal()};
  return xi + attraction * (xj - xi) + params.eta * mu;
}

RandomWaypoint::RandomWaypoint(Vec2 start, Area area, double speed_mps, double pause_s,
                               util::Rng* rng)
    : position_(start), area_(area), speed_(speed_mps), pause_(pause_s), rng_(rng) {
  assert(rng_ != nullptr);
  assert(speed_ > 0.0);
  pick_waypoint();
}

void RandomWaypoint::pick_waypoint() {
  waypoint_ = {rng_->uniform(0.0, area_.width), rng_->uniform(0.0, area_.height)};
}

Vec2 RandomWaypoint::advance(double dt_s) {
  double remaining = dt_s;
  while (remaining > 0.0) {
    if (pause_left_ > 0.0) {
      const double wait = std::fmin(pause_left_, remaining);
      pause_left_ -= wait;
      remaining -= wait;
      continue;
    }
    const Vec2 to_target = waypoint_ - position_;
    const double dist = to_target.norm();
    const double reach = speed_ * remaining;
    if (reach >= dist) {
      // Arrive, spend travel time, start pausing, then pick the next point.
      position_ = waypoint_;
      remaining -= (speed_ > 0.0 ? dist / speed_ : 0.0);
      pause_left_ = pause_;
      pick_waypoint();
    } else {
      position_ += (reach / dist) * to_target;
      remaining = 0.0;
    }
  }
  return position_;
}

}  // namespace firefly::geo
