#include "geo/deployment.hpp"

#include <cassert>
#include <cmath>

namespace firefly::geo {

std::vector<Vec2> deploy_uniform(std::size_t n, Area area, util::Rng& rng) {
  std::vector<Vec2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.uniform(0.0, area.width), rng.uniform(0.0, area.height)});
  }
  return points;
}

std::vector<Vec2> deploy_poisson(double mean_n, Area area, util::Rng& rng) {
  assert(mean_n >= 0.0);
  const std::size_t n = static_cast<std::size_t>(rng.poisson(mean_n));
  return deploy_uniform(n, area, rng);
}

std::vector<Vec2> deploy_clustered(std::size_t n, std::size_t clusters, double spread,
                                   Area area, util::Rng& rng) {
  assert(clusters > 0);
  const std::vector<Vec2> parents = deploy_uniform(clusters, area, rng);
  std::vector<Vec2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 parent = parents[i % clusters];
    const Vec2 offset{rng.normal(0.0, spread), rng.normal(0.0, spread)};
    points.push_back(area.clamp(parent + offset));
  }
  return points;
}

std::vector<Vec2> deploy_grid(std::size_t n, Area area) {
  std::vector<Vec2> points;
  points.reserve(n);
  if (n == 0) return points;
  const auto side = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  const double dx = area.width / static_cast<double>(side + 1);
  const double dy = area.height / static_cast<double>(side + 1);
  for (std::size_t row = 0; row < side && points.size() < n; ++row) {
    for (std::size_t col = 0; col < side && points.size() < n; ++col) {
      points.push_back({dx * static_cast<double>(col + 1), dy * static_cast<double>(row + 1)});
    }
  }
  return points;
}

Area scaled_area_for(std::size_t n, std::size_t reference_n, Area reference_area) {
  assert(reference_n > 0);
  const double scale =
      std::sqrt(static_cast<double>(n) / static_cast<double>(reference_n));
  return Area{reference_area.width * scale, reference_area.height * scale};
}

}  // namespace firefly::geo
