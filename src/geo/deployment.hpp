// deployment.hpp — node placement strategies.
//
// The paper's evaluation deploys 50 devices uniformly in 100 m × 100 m and
// then scales node count for the figures.  We provide:
//   * uniform i.i.d. placement (the paper's set-up),
//   * a homogeneous Poisson point process (the standard stochastic-geometry
//     model for D2D; mean intensity = n/area),
//   * clustered (Matern-like) placement for the hotspot/stadium examples,
//   * grid placement for deterministic unit tests.
// Density-preserving scaling (`scaled_area_for`) grows the area with n so
// that sweeps over n keep the paper's 50-per-hectare density, matching how
// "different scales" are compared in Figs. 3-4.
#pragma once

#include <cstddef>
#include <vector>

#include "geo/point.hpp"
#include "util/rng.hpp"

namespace firefly::geo {

/// n points i.i.d. uniform over the area.
[[nodiscard]] std::vector<Vec2> deploy_uniform(std::size_t n, Area area, util::Rng& rng);

/// Homogeneous PPP with mean n points (actual count is Poisson(n)).
[[nodiscard]] std::vector<Vec2> deploy_poisson(double mean_n, Area area, util::Rng& rng);

/// `clusters` parent points; each parent gets ~n/clusters daughters placed
/// normally (stddev `spread`) around it, clamped to the area.
[[nodiscard]] std::vector<Vec2> deploy_clustered(std::size_t n, std::size_t clusters,
                                                 double spread, Area area, util::Rng& rng);

/// ceil(sqrt(n))² grid, truncated to n points.  Deterministic.
[[nodiscard]] std::vector<Vec2> deploy_grid(std::size_t n, Area area);

/// Area scaled so n devices keep the reference density of
/// `reference_n` devices in `reference_area` (Table I: 50 per 100 m×100 m).
[[nodiscard]] Area scaled_area_for(std::size_t n, std::size_t reference_n = 50,
                                   Area reference_area = kPaperArea);

}  // namespace firefly::geo
