// point.hpp — 2-D vectors and the deployment area.
//
// The paper deploys devices on a 100 m × 100 m plane (Table I) with
// coordinates (x_i, y_i).  `Vec2` is a plain value type; `Area` is an
// axis-aligned rectangle used for deployment, clamping and density
// calculations.
#pragma once

#include <cmath>
#include <compare>

namespace firefly::geo {

struct Vec2 {
  double x{0.0};
  double y{0.0};

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Vec2 operator*(double k, Vec2 v) { return {k * v.x, k * v.y}; }
  friend constexpr Vec2 operator*(Vec2 v, double k) { return k * v; }
  constexpr Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
  friend constexpr bool operator==(Vec2 a, Vec2 b) = default;

  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  [[nodiscard]] constexpr double norm_squared() const { return x * x + y * y; }
};

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
[[nodiscard]] constexpr double distance_squared(Vec2 a, Vec2 b) {
  return (a - b).norm_squared();
}

/// Axis-aligned rectangular deployment area [0,width] x [0,height].
struct Area {
  double width{100.0};
  double height{100.0};

  [[nodiscard]] constexpr double size() const { return width * height; }
  [[nodiscard]] constexpr bool contains(Vec2 p) const {
    return p.x >= 0.0 && p.x <= width && p.y >= 0.0 && p.y <= height;
  }
  /// Clamp a point to the area (used by mobility models at the border).
  [[nodiscard]] Vec2 clamp(Vec2 p) const {
    return {std::fmin(std::fmax(p.x, 0.0), width), std::fmin(std::fmax(p.y, 0.0), height)};
  }
  /// Devices per square metre for n devices in this area.
  [[nodiscard]] constexpr double density(std::size_t n) const {
    return static_cast<double>(n) / size();
  }
};

/// The paper's Table I area.
inline constexpr Area kPaperArea{100.0, 100.0};

}  // namespace firefly::geo
