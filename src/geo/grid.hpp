// grid.hpp — uniform spatial grid over the deployment plane.
//
// The radio's candidate-cache construction, the engine's reliable-links
// scan and the ground-truth proximity graph all ask the same question:
// which device pairs could possibly hear each other?  The channel bounds
// the answer by a maximum detectable range (path-loss budget plus the
// shadowing clamp and fading headroom), so a grid with cell size equal to
// that range finds every pair within it by scanning a 3×3 cell block
// instead of all N devices — O(N·k) enumeration instead of O(N²).
//
// Cell membership updates are O(1) (`move` swap-erases within the old
// cell), which is what per-step mobility needs.  Enumeration order within
// a cell is *not* deterministic after moves; callers that need a canonical
// order sort the gathered ids (the radio and proximity-graph builders do).
#pragma once

#include <cstdint>
#include <vector>

#include "geo/point.hpp"

namespace firefly::geo {

class SpatialGrid {
 public:
  SpatialGrid() = default;

  /// Build the grid over `positions` (ids are the vector indices) with the
  /// given cell size.  `cell_size` must be positive and finite; the extent
  /// is the bounding box of the initial positions.  Points later moved
  /// outside the extent are clamped into the border cells, so queries stay
  /// correct (border cells just grow).
  void build(const std::vector<Vec2>& positions, double cell_size);

  /// Incremental membership update after device `id` moved to `to`.
  void move(std::size_t id, Vec2 to);

  [[nodiscard]] bool built() const { return cell_size_ > 0.0; }
  [[nodiscard]] std::size_t device_count() const { return cell_of_.size(); }
  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }
  [[nodiscard]] double cell_size() const { return cell_size_; }

  /// Flat index of the cell containing `p` (clamped to the grid extent).
  [[nodiscard]] std::size_t cell_index(Vec2 p) const;
  /// Ids currently stored in one cell (tests and visualisation).
  [[nodiscard]] const std::vector<std::uint32_t>& cell_members(std::size_t cell) const {
    return cells_[cell];
  }

  /// Append to `out` every id whose cell overlaps the axis-aligned square
  /// circumscribing the disc (center, radius): a superset of the ids within
  /// `radius` of `center`.  `out` is neither cleared nor sorted.
  void gather(Vec2 center, double radius, std::vector<std::uint32_t>& out) const;

 private:
  [[nodiscard]] std::size_t col_of(double x) const;
  [[nodiscard]] std::size_t row_of(double y) const;

  double cell_size_ = 0.0;
  double inv_cell_ = 0.0;
  Vec2 origin_{};
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  std::vector<std::vector<std::uint32_t>> cells_;  // row-major [row * nx_ + col]
  std::vector<std::uint32_t> cell_of_;       // id -> flat cell index
  std::vector<std::uint32_t> slot_in_cell_;  // id -> index inside its cell vector
};

}  // namespace firefly::geo
