// firefly.hpp — Yang's firefly optimisation algorithm (paper Algorithm 3).
//
// Population of candidate solutions ("fireflies"); each moves toward every
// brighter one with attractiveness decaying in distance:
//     x_i ← x_i + k·exp(−γ·r²)·(x_j − x_i) + η·μ        (paper eq. 13)
//
// Two inner-loop strategies, the subject of the paper's complexity claim:
//   * `Strategy::kClassic` — the textbook double loop: every firefly
//     compares against every other, Θ(n²) brightness comparisons per
//     generation.
//   * `Strategy::kRankOrdered` — the paper's improvement: fireflies are
//     kept sorted by brightness ("ordered tree structure"); each firefly
//     locates its own rank by binary search (O(log n)) and moves only
//     toward a bounded window of brighter fireflies, Θ(n log n) work per
//     generation while preserving the attraction dynamics (the nearest
//     brighter fireflies dominate eq. 13's exponential anyway).
// Both produce the same optimisation behaviour on the benchmarks; the
// bench measures the wall-clock scaling separating them.
#pragma once

#include <cstdint>
#include <vector>

#include "fa/objective.hpp"
#include "util/rng.hpp"

namespace firefly::fa {

enum class Strategy { kClassic, kRankOrdered };

struct FaConfig {
  std::size_t population{25};
  std::size_t dimensions{2};
  std::size_t generations{100};
  double k{1.0};        ///< step toward a brighter firefly (eq. 13)
  double gamma{1.0};    ///< light absorption coefficient γ
  double eta{0.2};      ///< exploration step control η
  double eta_decay{0.97};  ///< anneal η per generation (standard practice)
  double lower_bound{-5.0};
  double upper_bound{5.0};
  Strategy strategy{Strategy::kClassic};
  /// Brighter-window width for kRankOrdered (number of brighter fireflies
  /// each one moves toward); log2(n)+1 when 0.
  std::size_t window{0};
};

struct FaResult {
  std::vector<double> best_position;
  double best_value{0.0};
  std::uint64_t evaluations{0};
  std::uint64_t comparisons{0};  ///< brightness comparisons (the claimed n² vs n log n)
  std::vector<double> best_by_generation;
};

class FireflyOptimizer {
 public:
  FireflyOptimizer(FaConfig config, Objective objective, util::Rng rng);

  [[nodiscard]] FaResult run();

 private:
  void evaluate_all();
  void move_classic();
  void move_rank_ordered();
  void move_toward(std::size_t i, std::size_t j);
  void clamp(std::vector<double>& x) const;

  FaConfig config_;
  Objective objective_;
  util::Rng rng_;
  std::vector<std::vector<double>> positions_;
  std::vector<double> brightness_;
  double eta_current_;
  FaResult result_;
};

}  // namespace firefly::fa
