// objective.hpp — objective functions for the firefly optimiser.
//
// Algorithm 3 of the paper "defines objective function f(x)" and evaluates
// firefly light intensity from it.  In the D2D protocol the objective is
// PS strength toward the proximity target; here we also ship the standard
// benchmark objectives (sphere, Rastrigin, Rosenbrock and a multi-well
// "beacon field") used by the FA tests and the complexity bench.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "geo/point.hpp"

namespace firefly::fa {

/// Maximised by the optimiser (brightness == objective value).
using Objective = std::function<double(std::span<const double>)>;

/// -(Σ x_i²): maximum 0 at the origin.
[[nodiscard]] Objective sphere();

/// -Rastrigin: highly multimodal, maximum 0 at the origin.
[[nodiscard]] Objective rastrigin();

/// -Rosenbrock: curved valley, maximum 0 at (1, ..., 1).
[[nodiscard]] Objective rosenbrock();

/// 2-D field of radio beacons: the value at x is the strongest beacon's
/// power at x under a 1/(1+d²) falloff.  Mimics the D2D use of FA, where a
/// firefly's brightness is received PS strength.
[[nodiscard]] Objective beacon_field(std::vector<geo::Vec2> beacons);

}  // namespace firefly::fa
