#include "fa/firefly.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace firefly::fa {

FireflyOptimizer::FireflyOptimizer(FaConfig config, Objective objective, util::Rng rng)
    : config_(config), objective_(std::move(objective)), rng_(rng),
      eta_current_(config.eta) {
  assert(config_.population > 0 && config_.dimensions > 0);
  assert(config_.upper_bound > config_.lower_bound);
  positions_.resize(config_.population, std::vector<double>(config_.dimensions));
  brightness_.resize(config_.population, 0.0);
  for (auto& x : positions_) {
    for (double& v : x) v = rng_.uniform(config_.lower_bound, config_.upper_bound);
  }
}

void FireflyOptimizer::evaluate_all() {
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    brightness_[i] = objective_(positions_[i]);
    ++result_.evaluations;
  }
}

void FireflyOptimizer::clamp(std::vector<double>& x) const {
  for (double& v : x) v = std::clamp(v, config_.lower_bound, config_.upper_bound);
}

void FireflyOptimizer::move_toward(std::size_t i, std::size_t j) {
  // eq. (13) in all dimensions.
  double r2 = 0.0;
  for (std::size_t d = 0; d < config_.dimensions; ++d) {
    const double diff = positions_[j][d] - positions_[i][d];
    r2 += diff * diff;
  }
  const double attraction = config_.k * std::exp(-config_.gamma * r2);
  for (std::size_t d = 0; d < config_.dimensions; ++d) {
    positions_[i][d] += attraction * (positions_[j][d] - positions_[i][d]) +
                        eta_current_ * rng_.normal();
  }
  clamp(positions_[i]);
}

void FireflyOptimizer::move_classic() {
  // Textbook double loop: i moves once toward each brighter j.
  const std::size_t n = positions_.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      ++result_.comparisons;
      if (brightness_[j] > brightness_[i]) move_toward(i, j);
    }
  }
}

void FireflyOptimizer::move_rank_ordered() {
  // Sort indices by brightness descending (the "ordered tree"); each
  // firefly binary-searches its own rank (O(log n) comparisons) and moves
  // toward a log-sized window of the fireflies ranked just above it plus
  // the global best.
  const std::size_t n = positions_.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (brightness_[a] != brightness_[b]) return brightness_[a] > brightness_[b];
    return a < b;
  });
  std::vector<std::size_t> rank_of(n);
  for (std::size_t r = 0; r < n; ++r) rank_of[order[r]] = r;

  std::size_t window = config_.window;
  if (window == 0) {
    window = 1;
    while ((std::size_t{1} << window) < n) ++window;  // ~log2(n)
  }

  for (std::size_t i = 0; i < n; ++i) {
    // Binary-search cost of locating one's rank in the ordered structure.
    std::size_t lo = 0, hi = n;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      ++result_.comparisons;
      if (brightness_[order[mid]] > brightness_[i] ||
          (brightness_[order[mid]] == brightness_[i] && order[mid] < i)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const std::size_t my_rank = rank_of[i];
    if (my_rank == 0) continue;  // the current best only explores
    const std::size_t from = my_rank >= window ? my_rank - window : 0;
    for (std::size_t r = from; r < my_rank; ++r) {
      ++result_.comparisons;
      move_toward(i, order[r]);
    }
    if (from > 0) {
      ++result_.comparisons;
      move_toward(i, order[0]);  // always feel the global best
    }
  }
}

FaResult FireflyOptimizer::run() {
  evaluate_all();
  result_.best_by_generation.reserve(config_.generations);
  for (std::size_t gen = 0; gen < config_.generations; ++gen) {
    if (config_.strategy == Strategy::kClassic) {
      move_classic();
    } else {
      move_rank_ordered();
    }
    evaluate_all();
    eta_current_ *= config_.eta_decay;
    const auto best_it = std::max_element(brightness_.begin(), brightness_.end());
    result_.best_by_generation.push_back(*best_it);
  }
  const auto best_it = std::max_element(brightness_.begin(), brightness_.end());
  const auto best_index = static_cast<std::size_t>(best_it - brightness_.begin());
  result_.best_value = *best_it;
  result_.best_position = positions_[best_index];
  return result_;
}

}  // namespace firefly::fa
