#include "fa/objective.hpp"

#include <cmath>

namespace firefly::fa {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}

Objective sphere() {
  return [](std::span<const double> x) {
    double sum = 0.0;
    for (const double v : x) sum += v * v;
    return -sum;
  };
}

Objective rastrigin() {
  return [](std::span<const double> x) {
    double sum = 10.0 * static_cast<double>(x.size());
    for (const double v : x) sum += v * v - 10.0 * std::cos(kTwoPi * v);
    return -sum;
  };
}

Objective rosenbrock() {
  return [](std::span<const double> x) {
    double sum = 0.0;
    for (std::size_t i = 0; i + 1 < x.size(); ++i) {
      const double a = x[i + 1] - x[i] * x[i];
      const double b = 1.0 - x[i];
      sum += 100.0 * a * a + b * b;
    }
    return -sum;
  };
}

Objective beacon_field(std::vector<geo::Vec2> beacons) {
  return [beacons = std::move(beacons)](std::span<const double> x) {
    if (x.size() < 2 || beacons.empty()) return 0.0;
    const geo::Vec2 p{x[0], x[1]};
    double best = 0.0;
    for (const geo::Vec2& b : beacons) {
      const double d2 = geo::distance_squared(p, b);
      best = std::max(best, 1.0 / (1.0 + d2));
    }
    return best;
  };
}

}  // namespace firefly::fa
