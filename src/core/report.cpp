#include "core/report.hpp"

#include "obs/build_info.hpp"

namespace firefly::core {

void write_sample_json(obs::JsonWriter& w, const util::Sample& sample) {
  w.begin_object();
  w.field("count", static_cast<std::uint64_t>(sample.count()));
  w.field("mean", sample.mean());
  w.field("stddev", sample.stddev());
  w.field("ci95", sample.ci95_halfwidth());
  w.field("p50", sample.percentile(50.0));
  w.field("p90", sample.percentile(90.0));
  w.field("p99", sample.percentile(99.0));
  w.end_object();
}

void write_run_metrics_json(obs::JsonWriter& w, const RunMetrics& m) {
  w.begin_object();
  w.field("converged", m.converged);
  w.field("convergence_ms", m.convergence_ms);
  w.field("sync_ms", m.sync_ms);
  w.field("discovery_ms", m.discovery_ms);
  w.field("locally_converged", m.locally_converged);
  w.field("local_sync_ms", m.local_sync_ms);
  w.field("rach1_messages", m.rach1_messages);
  w.field("rach2_messages", m.rach2_messages);
  w.field("total_messages", m.total_messages());
  w.field("collisions", m.collisions);
  w.field("deliveries", m.deliveries);
  w.field("mean_neighbors_discovered", m.mean_neighbors_discovered);
  w.field("mean_service_peers", m.mean_service_peers);
  w.field("ranging_mean_abs_rel_error", m.ranging_mean_abs_rel_error);
  w.field("ranging_p90_rel_error", m.ranging_p90_rel_error);
  w.field("final_fragments", static_cast<std::uint64_t>(m.final_fragments));
  w.field("tree_edges", static_cast<std::uint64_t>(m.tree_edges));
  w.field("tree_weight_dbm", m.tree_weight_dbm);
  w.field("tree_service_affinity", m.tree_service_affinity);
  w.field("desync_error", m.desync_error);
  w.field("desync_spread_slots", m.desync_spread_slots);
  w.field("total_energy_mj", m.total_energy_mj);
  w.field("mean_device_energy_mj", m.mean_device_energy_mj);
  w.field("energy_per_neighbor_mj", m.energy_per_neighbor_mj);
  w.field("crashes", static_cast<std::uint64_t>(m.crashes));
  w.field("recoveries", static_cast<std::uint64_t>(m.recoveries));
  w.field("fade_episodes", static_cast<std::uint64_t>(m.fade_episodes));
  w.field("fault_drops", m.fault_drops);
  w.field("resyncs", static_cast<std::uint64_t>(m.resyncs));
  w.field("mean_resync_ms", m.mean_resync_ms);
  w.field("max_resync_ms", m.max_resync_ms);
  w.field("sync_uptime", m.sync_uptime);
  w.field("in_sync_at_end", m.in_sync_at_end);
  w.field("repair_messages", m.repair_messages);
  w.field("alive_at_end", static_cast<std::uint64_t>(m.alive_at_end));
  w.field("partitioned", m.partitioned);
  w.field("events_processed", m.events_processed);
  w.field("simulated_ms", m.simulated_ms);
  w.end_object();
}

void write_sweep_point_json(obs::JsonWriter& w, const SweepPoint& point,
                            Protocol protocol, const char* bench) {
  w.begin_object();
  w.field("bench", bench);
  w.field("protocol", to_string(protocol));
  w.field("n", static_cast<std::uint64_t>(point.n));
  w.field("trials", static_cast<std::uint64_t>(point.trials));
  w.field("failure_rate", point.failure_rate);
  w.key("convergence_ms");
  write_sample_json(w, point.convergence_ms);
  w.key("total_messages");
  write_sample_json(w, point.total_messages);
  w.key("rach1_messages");
  write_sample_json(w, point.rach1_messages);
  w.key("rach2_messages");
  write_sample_json(w, point.rach2_messages);
  w.key("collisions");
  write_sample_json(w, point.collisions);
  w.key("neighbors_discovered");
  write_sample_json(w, point.neighbors_discovered);
  w.key("ranging_error");
  write_sample_json(w, point.ranging_error);
  w.end_object();
}

void write_soak_header_json(obs::JsonWriter& w, Protocol protocol,
                            const ScenarioConfig& config,
                            const ServiceConfig& service) {
  w.begin_object();
  w.field("schema", "firefly-soak-v1");
  obs::write_build_info_fields(w);
  w.field("protocol", to_string(protocol));
  w.field("n", static_cast<std::uint64_t>(config.n));
  w.field("seed", config.seed);
  w.field("duration_slots", service.duration_slots);
  w.field("window_slots", service.window_slots);
  w.field("snapshot_every_slots", service.snapshot_every_slots);
  w.field("dedup_clear_periods",
          static_cast<std::uint64_t>(service.dedup_clear_periods));
  w.field("relabel_cap_per_period",
          static_cast<std::uint64_t>(service.relabel_cap_per_period));
  w.field("churn_rate_per_min", config.protocol.faults.churn_rate_per_min);
  w.field("mean_downtime_ms", config.protocol.faults.mean_downtime_ms);
  w.end_object();
}

void write_soak_window_json(obs::JsonWriter& w, const sim::SoakWindow& win) {
  w.begin_object();
  w.key("window");
  w.begin_object();
  w.field("index", win.index);
  w.field("start_slot", win.start_slot);
  w.field("end_slot", win.end_slot);
  w.field("live_devices", static_cast<std::uint64_t>(win.live_devices));
  w.field("crashes", static_cast<std::uint64_t>(win.crashes));
  w.field("recoveries", static_cast<std::uint64_t>(win.recoveries));
  w.field("messages", win.messages);
  w.field("deliveries", win.deliveries);
  w.field("collisions", win.collisions);
  w.field("fault_drops", win.fault_drops);
  w.field("msg_rate_per_slot", win.msg_rate_per_slot);
  w.field("synced_once", win.synced_once);
  w.field("sync_fraction", win.sync_fraction);
  w.field("resyncs", static_cast<std::uint64_t>(win.resyncs));
  w.field("mean_resync_ms", win.mean_resync_ms);
  w.field("relabels", win.relabels);
  w.field("relabels_suppressed", win.relabels_suppressed);
  w.field("desync_error", win.desync_error);
  w.field("events_live", static_cast<std::uint64_t>(win.events_live));
  w.field("arena_capacity", static_cast<std::uint64_t>(win.arena_capacity));
  w.field("arena_high_water", static_cast<std::uint64_t>(win.arena_high_water));
  w.field("events_processed", win.events_processed);
  w.end_object();
  w.end_object();
}

void write_soak_summary_json(obs::JsonWriter& w, const ServiceReport& report) {
  w.begin_object();
  w.key("summary");
  w.begin_object();
  w.field("windows", report.windows);
  w.field("windows_dropped", report.windows_dropped);
  w.field("snapshots", report.snapshots);
  w.field("relabels", report.relabels);
  w.field("relabels_suppressed", report.relabels_suppressed);
  w.field("arena_capacity", report.arena_capacity);
  w.field("arena_high_water", report.arena_high_water);
  w.key("metrics");
  write_run_metrics_json(w, report.metrics);
  w.end_object();
  w.end_object();
}

}  // namespace firefly::core
