// engine.hpp — common plumbing for the protocol backends in src/proto/.
//
// `EngineBase` owns the whole simulated world of one trial: the event
// scheduler, the Table I channel, the radio medium, the device array and
// the convergence detector.  It derives from `proto::DiscoveryProtocol`
// (proto/protocol.hpp), whose hooks — `on_start`, `deliver_batched`,
// `emit_fire_broadcast`, convergence/metrics/snapshot participation — the
// backends implement; the base supplies the event-driven oscillator
// (schedule/reschedule/fire), neighbour-table maintenance with RSSI
// ranging, periodic convergence checks and the final metrics sweep.
// Backends are resolved by name or enum through `proto::Registry`.
//
// Hot state lives in one of two layouts selected by ProtocolParams::
// device_core: the fat `Device` struct (reference) or the flat index-aligned
// `DeviceHot` arrays (default, one RegionArena block per trial).  Every hot
// field is reached through the accessors below, whose layout branch is
// constant for the engine's lifetime — both cores execute the same logic in
// the same order, so results are bit-identical by construction
// (test_layout_equivalence enforces it byte-for-byte).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/device.hpp"
#include "core/device_soa.hpp"
#include "core/metrics.hpp"
#include "core/params.hpp"
#include "core/trace.hpp"
#include "fault/fault_injector.hpp"
#include "geo/mobility.hpp"
#include "geo/point.hpp"
#include "mac/radio.hpp"
#include "obs/timer.hpp"
#include "pco/sync_metrics.hpp"
#include "phy/channel.hpp"
#include "phy/energy.hpp"
#include "phy/rssi.hpp"
#include "proto/protocol.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace firefly::fault {
class ChurnStream;
class FadeStream;
}  // namespace firefly::fault

namespace firefly::sim {
class SoakRecorder;
}  // namespace firefly::sim

namespace firefly::core {

struct ServiceConfig;
struct ServiceReport;
struct EngineSnapshot;

class EngineBase : public proto::DiscoveryProtocol {
 public:
  EngineBase(std::vector<geo::Vec2> positions, ProtocolParams params,
             phy::RadioParams radio_params, std::uint64_t seed);
  virtual ~EngineBase();  // out of line: unique_ptr members of incomplete types

  EngineBase(const EngineBase&) = delete;
  EngineBase& operator=(const EngineBase&) = delete;

  /// Run the trial to convergence or the max_periods cap; fills metrics.
  RunMetrics run();

  // --- long-lived service mode (implemented in core/service_mode.cpp) ---
  /// Open-ended soak: windowed run loop fed by regenerating fault-schedule
  /// streams, emitting one SoakWindow per window through `recorder` (may be
  /// null), taking periodic rollback snapshots when configured.  Callable
  /// again after restore() to resume the run to the same horizon; the
  /// resumed run replays bit-identically.  See service_mode.hpp.
  ServiceReport run_service(const ServiceConfig& cfg, sim::SoakRecorder* recorder = nullptr);

  /// In-process rollback checkpoint of the complete mutable world: the
  /// scheduler (wheel/arena state, callbacks cloned), devices, detectors,
  /// radio traffic state, every RNG stream and the fault-schedule streams.
  /// Static scenarios only (mobility rebuilds position-derived caches a
  /// checkpoint does not carry).  restore() rewinds THIS engine; it is not
  /// a serialised file.  test_service_mode proves a restored run reproduces
  /// byte-identical RunMetrics.
  [[nodiscard]] std::unique_ptr<EngineSnapshot> snapshot();
  void restore(const EngineSnapshot& snap);
  /// Latest snapshot taken by run_service's snapshot_every cadence (null
  /// until the first one).
  [[nodiscard]] const EngineSnapshot* service_snapshot() const {
    return service_snapshot_.get();
  }

  /// Post-run inspection view.  Under the SoA core the structs are synced
  /// from the hot arrays first, so readers always see current state; the
  /// sync is a flat copy, cheap at inspection cadence (never in-loop).
  [[nodiscard]] const std::vector<Device>& devices() const {
    if (soa_) hot_.store_to(const_cast<EngineBase*>(this)->devices_);
    return devices_;
  }
  [[nodiscard]] const ProtocolParams& params() const { return params_; }
  /// RSSI ranging against this run's path-loss model; distance estimates
  /// are derived from NeighborInfo::weight_dbm on demand.
  [[nodiscard]] const phy::RssiRanging& ranging() const { return ranging_; }

  /// Attach an optional trace sink (not owned; may be null).
  void set_trace(TraceSink* sink) { trace_ = sink; }
  /// Attach an optional telemetry context (not owned; may be null).  With
  /// no context every instrumentation site is a single pointer test, the
  /// run consumes no extra randomness and RunMetrics is bit-identical to
  /// an uninstrumented run.
  void set_telemetry(obs::Telemetry* telemetry);

 protected:
  // The protocol hooks (on_start, deliver_batched, emit_fire_broadcast,
  // fill_protocol_metrics, fill_soak_window, protocol_complete,
  // requires_sync, on_recover, protocol_snapshot_word/restore_word) are
  // inherited from proto::DiscoveryProtocol; backends override them there.

  // --- hot-state accessors (dual device core; see header note) ---
  // One accessor per hot field; `i` is the dense device index (== Device::id).
  // The soa_ branch is engine-constant, so it predicts perfectly and keeps a
  // single copy of every protocol rule valid for both layouts.
  [[nodiscard]] std::int64_t& next_fire_slot(std::uint32_t i) { return soa_ ? hot_.next_fire_slot[i] : devices_[i].next_fire_slot; }
  [[nodiscard]] std::int64_t next_fire_slot(std::uint32_t i) const { return soa_ ? hot_.next_fire_slot[i] : devices_[i].next_fire_slot; }
  [[nodiscard]] std::int64_t& last_fire_slot(std::uint32_t i) { return soa_ ? hot_.last_fire_slot[i] : devices_[i].last_fire_slot; }
  [[nodiscard]] std::int64_t last_fire_slot(std::uint32_t i) const { return soa_ ? hot_.last_fire_slot[i] : devices_[i].last_fire_slot; }
  [[nodiscard]] std::int64_t& refractory_until_slot(std::uint32_t i) { return soa_ ? hot_.refractory_until_slot[i] : devices_[i].refractory_until_slot; }
  [[nodiscard]] std::int64_t refractory_until_slot(std::uint32_t i) const { return soa_ ? hot_.refractory_until_slot[i] : devices_[i].refractory_until_slot; }
  [[nodiscard]] sim::EventId& fire_event(std::uint32_t i) { return soa_ ? hot_.fire_event[i] : devices_[i].fire_event; }
  [[nodiscard]] double& drift_ppm(std::uint32_t i) { return soa_ ? hot_.drift_ppm[i] : devices_[i].drift_ppm; }
  [[nodiscard]] double& drift_residual(std::uint32_t i) { return soa_ ? hot_.drift_residual[i] : devices_[i].drift_residual; }
  [[nodiscard]] bool& down(std::uint32_t i) { return soa_ ? hot_.down[i] : devices_[i].down; }
  [[nodiscard]] bool down(std::uint32_t i) const { return soa_ ? hot_.down[i] : devices_[i].down; }
  [[nodiscard]] std::uint16_t& fragment(std::uint32_t i) { return soa_ ? hot_.fragment[i] : devices_[i].fragment; }
  [[nodiscard]] std::uint16_t fragment(std::uint32_t i) const { return soa_ ? hot_.fragment[i] : devices_[i].fragment; }
  [[nodiscard]] std::uint16_t& fragment_size(std::uint32_t i) { return soa_ ? hot_.fragment_size[i] : devices_[i].fragment_size; }
  [[nodiscard]] std::uint16_t fragment_size(std::uint32_t i) const { return soa_ ? hot_.fragment_size[i] : devices_[i].fragment_size; }
  [[nodiscard]] bool& is_head(std::uint32_t i) { return soa_ ? hot_.is_head[i] : devices_[i].is_head; }
  [[nodiscard]] bool is_head(std::uint32_t i) const { return soa_ ? hot_.is_head[i] : devices_[i].is_head; }
  [[nodiscard]] std::int64_t& desync_last_heard_slot(std::uint32_t i) { return soa_ ? hot_.desync_last_heard_slot[i] : devices_[i].desync_last_heard_slot; }
  [[nodiscard]] std::int64_t desync_last_heard_slot(std::uint32_t i) const { return soa_ ? hot_.desync_last_heard_slot[i] : devices_[i].desync_last_heard_slot; }
  [[nodiscard]] std::int64_t& desync_prev_slot(std::uint32_t i) { return soa_ ? hot_.desync_prev_slot[i] : devices_[i].desync_prev_slot; }
  [[nodiscard]] std::int32_t& desync_residual(std::uint32_t i) { return soa_ ? hot_.desync_residual[i] : devices_[i].desync_residual; }
  [[nodiscard]] std::int32_t desync_residual(std::uint32_t i) const { return soa_ ? hot_.desync_residual[i] : devices_[i].desync_residual; }
  [[nodiscard]] bool& desync_adjusted(std::uint32_t i) { return soa_ ? hot_.desync_adjusted[i] : devices_[i].desync_adjusted; }
  [[nodiscard]] NeighborTable& neighbors(std::uint32_t i) { return soa_ ? hot_.neighbors[i] : devices_[i].neighbors; }
  [[nodiscard]] const NeighborTable& neighbors(std::uint32_t i) const { return soa_ ? hot_.neighbors[i] : devices_[i].neighbors; }

  /// Oscillator counter of device `i` at `slot` (Device::counter_at over
  /// whichever layout holds next_fire_slot).
  [[nodiscard]] std::uint32_t counter_at(std::uint32_t i, std::int64_t slot) const {
    const std::int64_t remaining = next_fire_slot(i) - slot;
    if (remaining <= 0) return params_.period_slots;
    if (remaining >= static_cast<std::int64_t>(params_.period_slots)) return 0;
    return params_.period_slots - static_cast<std::uint32_t>(remaining);
  }
  [[nodiscard]] bool refractory_at(std::uint32_t i, std::int64_t slot) const {
    return slot <= refractory_until_slot(i);
  }

  /// One pass over a slot's decoded batch: per record, in radio dispatch
  /// order — skip crashed receivers, refresh the neighbour table, run the
  /// protocol reaction `fn(record)`.  The SoA leg walks the flat arrays
  /// directly and prefetches the neighbour slot kAhead records ahead; the
  /// struct leg runs the identical sequence through a type-erased callable
  /// (the per-pair API's dispatch cost, kept for an honest reference leg).
  /// The two cores differ in layout and call overhead only, never in order.
  template <typename Fn>
  void sweep_batch(const mac::RxBatch& batch, Fn&& fn) {
    constexpr std::size_t kAhead = 8;
    const mac::RxRecord* rec = batch.records;
    if (soa_) {
      for (std::size_t k = 0; k < batch.count; ++k) {
        if (k + kAhead < batch.count) {
          const mac::RxRecord& p = rec[k + kAhead];
          hot_.neighbors[p.rx_index].prefetch(p.sender);
        }
        const mac::RxRecord& r = rec[k];
        if (hot_.down[r.rx_index]) continue;
        update_neighbor(r);
        fn(r);
      }
    } else {
      const std::function<void(const mac::RxRecord&)> dispatch =
          [this, &fn](const mac::RxRecord& r) {
            if (devices_[r.rx_index].down) return;
            update_neighbor(r);
            fn(r);
          };
      for (std::size_t k = 0; k < batch.count; ++k) {
        if (k + kAhead < batch.count) {
          const mac::RxRecord& p = rec[k + kAhead];
          devices_[p.rx_index].neighbors.prefetch(p.sender);
        }
        dispatch(rec[k]);
      }
    }
  }

  /// Re-election storm brake.  Headless-fragment reclaims call this before
  /// relabelling; at most `relabel_cap_per_period` are granted per firing
  /// period network-wide (0 = unlimited, the one-shot default).  A mass
  /// departure can orphan many fragments at once; without the cap every
  /// orphan floods a fresh announce wave in the same period.  Suppressed
  /// reclaims retry next period via the existing lease timers.  Grants and
  /// suppressions are counted for the soak telemetry either way.
  [[nodiscard]] bool relabel_permitted();

  // --- fault injection (tentpole subsystem) ---
  /// Crash a device now: radio off, firing event cancelled, excluded from
  /// the convergence detectors until it recovers.
  void crash_device(std::uint32_t id);
  /// Recover a crashed device with full cold-boot state: empty neighbour
  /// table, fresh random phase, protocol state reset via `on_recover`.
  void recover_device(std::uint32_t id);
  [[nodiscard]] fault::FaultInjector* injector() { return injector_.get(); }

  // --- run phases (split so tests can step the world manually) ---
  /// Schedule initial phases, the convergence checker, mobility and the
  /// fault plan; call once before driving the simulator.
  void start_run();
  /// Harvest metrics from the current simulator state.
  [[nodiscard]] RunMetrics collect_metrics();

  // --- oscillator driving (shared) ---
  /// Current absolute slot.
  [[nodiscard]] std::int64_t current_slot() const;
  /// (Re)schedule device i's natural firing event at next_fire_slot(i).
  void schedule_fire(std::uint32_t i);
  /// Fire now: broadcast, reset the counter (to `post_counter` — nonzero
  /// for reachback-aligned absorptions), refractory, inform the detector.
  void fire(std::uint32_t i, std::uint32_t post_counter = 0);
  /// Apply the PRC jump for one received pulse, compensating the slot(s) of
  /// delivery delay using the counter embedded in the PS; reschedules or
  /// fires on absorption.
  void apply_pulse_coupling(const mac::RxRecord& record);
  /// Slots elapsed since the record's transmission slot.
  [[nodiscard]] std::uint32_t elapsed_slots(const mac::RxRecord& record) const;
  /// Device i's current counter, for embedding into outgoing PSs.
  [[nodiscard]] std::uint16_t counter_field(std::uint32_t i) const;
  /// A fresh random preamble (LTE UEs draw RACH preambles uniformly from
  /// the cell's pool on every attempt).
  [[nodiscard]] mac::Preamble random_preamble(mac::RachCodec codec);
  /// Record a trace event when a sink is attached.
  void trace(TraceKind kind, std::uint32_t device, std::uint32_t a = 0,
             std::uint32_t b = 0) {
    if (trace_ != nullptr) trace_->record(sim_.now().as_milliseconds(), device, kind, a, b);
  }
  /// Adopt an absolute counter value (ST merge sync); reschedules or fires.
  void adopt_counter(std::uint32_t i, std::uint32_t counter);

  // --- discovery (shared) ---
  /// Update the receiver's neighbour table from a decoded PS (any type).
  void update_neighbor(const mac::RxRecord& record);

  sim::Simulator sim_;
  std::unique_ptr<phy::Channel> channel_;
  mac::RadioMedium radio_;
  ProtocolParams params_;
  std::vector<Device> devices_;
  DeviceHot hot_;     ///< flat hot arrays (built only under DeviceCore::kSoa)
  bool soa_ = true;   ///< params_.device_core == kSoa, fixed at construction
  pco::ConvergenceDetector detector_;       ///< Fig. 3 criterion: global alignment
  pco::LocalSyncDetector local_detector_;   ///< diagnostic: per-link alignment
  util::RngFactory rng_factory_;
  util::Rng control_rng_;  ///< protocol-level randomness (initial phases, jitter)
  phy::RssiRanging ranging_;
  phy::EnergyMeter energy_;
  obs::Telemetry* telemetry_ = nullptr;   ///< null = telemetry off (default)
  obs::Counter* fires_counter_ = nullptr; ///< pre-bound "engine.fires"

 private:
  void check_convergence();
  [[nodiscard]] bool discovery_complete() const;
  void finalize_metrics(RunMetrics& metrics) const;
  /// Adapt the fault plan into the radio (iid drops + fade attenuation) and
  /// schedule every pre-generated churn and fade event.
  void install_fault_hook();
  void schedule_fault_events();
  /// Accumulate sync-uptime and desync/resync episodes (sampled at the
  /// convergence-check cadence once the network has synchronised once).
  void sample_resilience(std::int64_t slot);
  /// Mobility extension: advance every device along its random-waypoint
  /// trajectory, move it on the radio, invalidate memoised shadowing and
  /// rebuild the delivery cache.  Installed only when
  /// params.mobility_speed_mps > 0.
  void start_mobility();
  void mobility_step();

  // Convergence requires BOTH of the paper's simultaneous goals: sustained
  // global firing alignment AND complete neighbour discovery over every
  // reliable proximity link (both directions).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> reliable_links_;
  std::int64_t sync_slot_ = -1;
  std::int64_t discovery_slot_ = -1;
  std::int64_t protocol_slot_ = -1;
  std::int64_t local_converged_slot_ = -1;
  geo::Area mobility_area_{};
  util::Rng mobility_rng_;
  std::vector<geo::RandomWaypoint> movers_;
  TraceSink* trace_ = nullptr;

  // --- fault injection ---
  std::unique_ptr<fault::FaultInjector> injector_;
  std::uint32_t crashes_ = 0;
  std::uint32_t recoveries_ = 0;
  // Resilience observables, sampled in check_convergence.
  bool was_aligned_ = false;
  std::int64_t resilience_last_slot_ = -1;
  std::int64_t desync_start_ = -1;
  std::int64_t observed_slots_ = 0;
  std::int64_t in_sync_slots_ = 0;
  std::uint32_t resyncs_ = 0;
  double resync_sum_ms_ = 0.0;
  double resync_max_ms_ = 0.0;
  bool repair_base_set_ = false;
  std::uint64_t repair_rach2_base_ = 0;

  // --- service mode (run_service; implemented in core/service_mode.cpp) ---
  /// Generate and schedule churn/fade events for slots up to `to_slot` from
  /// the regenerating streams (one telemetry window at a time).
  void schedule_service_faults(std::int64_t to_slot);

  bool service_mode_ = false;     // schedule_fault_events() defers to streams
  bool service_started_ = false;  // start_run() already executed
  std::unique_ptr<fault::ChurnStream> churn_stream_;
  std::unique_ptr<fault::FadeStream> fade_stream_;
  std::vector<fault::ChurnEvent> churn_chunk_;  // reused per-window buffers
  std::vector<fault::FadeEpisode> fade_chunk_;
  std::uint32_t service_fade_episodes_ = 0;
  std::unique_ptr<EngineSnapshot> service_snapshot_;
  // Relabel storm-cap bookkeeping (see relabel_permitted()).
  std::uint32_t relabel_cap_per_period_ = 0;
  std::int64_t relabel_window_ = -1;
  std::uint32_t relabels_in_window_ = 0;
  std::uint64_t relabels_total_ = 0;
  std::uint64_t relabels_suppressed_ = 0;
};

}  // namespace firefly::core
