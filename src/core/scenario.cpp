#include "core/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "core/engine.hpp"
#include "geo/grid.hpp"
#include "proto/registry.hpp"
#include "util/rng.hpp"

namespace firefly::core {

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kFst: return "FST";
    case Protocol::kSt: return "ST";
    case Protocol::kBirthday: return "Birthday";
    case Protocol::kDesync: return "DESYNC";
  }
  return "?";
}

geo::Area ScenarioConfig::area() const {
  if (area_policy == AreaPolicy::kFixed) return geo::kPaperArea;
  return geo::scaled_area_for(n);
}

std::vector<geo::Vec2> deploy(const ScenarioConfig& config) {
  util::RngFactory factory(config.seed);
  util::Rng rng = factory.make("scenario.deploy");
  return geo::deploy_uniform(config.n, config.area(), rng);
}

graph::Graph proximity_graph(const std::vector<geo::Vec2>& positions, phy::Channel& channel) {
  graph::Graph g(positions.size());
  const auto admit = [&](std::uint32_t u, std::uint32_t v) {
    const util::Dbm forward =
        channel.mean_received_power_uncached(u, positions[u], v, positions[v]);
    const util::Dbm backward =
        channel.mean_received_power_uncached(v, positions[v], u, positions[u]);
    const util::Dbm strongest = std::max(forward, backward);
    if (channel.detectable(strongest)) g.add_edge(u, v, strongest.value);
  };
  // Edges need mean power >= threshold, which the shadowing clamp bounds by
  // a hard range — enumerate only grid-near pairs when that bound is finite.
  const double range = channel.max_detectable_range();
  if (std::isfinite(range) && range > 0.0 && positions.size() > 1) {
    geo::SpatialGrid grid;
    grid.build(positions, range);
    std::vector<std::uint32_t> near;
    for (std::uint32_t u = 0; u < positions.size(); ++u) {
      near.clear();
      grid.gather(positions[u], range, near);
      std::sort(near.begin(), near.end());
      for (const std::uint32_t v : near) {
        if (v > u) admit(u, v);
      }
    }
  } else {
    for (std::uint32_t u = 0; u < positions.size(); ++u) {
      for (std::uint32_t v = u + 1; v < positions.size(); ++v) admit(u, v);
    }
  }
  return g;
}

RunMetrics run_trial(Protocol protocol, const ScenarioConfig& config,
                     const RunHooks& hooks) {
  std::vector<geo::Vec2> positions = deploy(config);
  std::unique_ptr<EngineBase> engine = proto::Registry::instance().make(
      protocol, std::move(positions), config.protocol, config.radio, config.seed);
  assert(engine != nullptr);  // every Protocol enumerator has a built-in backend
  engine->set_trace(hooks.trace);
  engine->set_telemetry(hooks.telemetry);
  RunMetrics metrics = engine->run();
  if (hooks.progress != nullptr) hooks.progress->advance();
  return metrics;
}

}  // namespace firefly::core
