// service_mode.cpp — run_service window loop, snapshot/restore and the
// regenerating fault-schedule bridge.  See service_mode.hpp for the model.
#include "core/service_mode.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <utility>

#include "proto/registry.hpp"

namespace firefly::core {

// ---------------------------------------------------------------------------
// Snapshot / restore
// ---------------------------------------------------------------------------

std::unique_ptr<EngineSnapshot> EngineBase::snapshot() {
  // Mobility rebuilds position-derived caches (delivery lists, shadowing
  // memo) every step; a checkpoint does not carry them.  run_service
  // rejects mobile scenarios up front, so this only trips on misuse.
  assert(params_.mobility_speed_mps == 0.0 &&
         "snapshot() supports static scenarios only");

  auto snap = std::make_unique<EngineSnapshot>();
  snap->sim = sim_.snapshot();
  snap->devices = devices_;
  if (soa_) {
    // The whole hot scalar state is one contiguous region: snapshot it as a
    // flat byte copy.  Neighbour tables own heap storage, so they ride
    // separately (element-wise copies, capacity-reusing on restore).
    snap->hot_block.assign(hot_.block(), hot_.block() + hot_.block_bytes());
    snap->hot_neighbors = hot_.neighbors;
  }
  snap->detector = detector_;
  snap->local_detector = local_detector_;
  snap->control_rng = control_rng_;
  snap->mobility_rng = mobility_rng_;
  snap->fading_rng = channel_->fading_rng();
  snap->radio = radio_.save_state();
  snap->energy = energy_;
  if (injector_ != nullptr) snap->injector = *injector_;
  if (churn_stream_ != nullptr) snap->churn_stream = *churn_stream_;
  if (fade_stream_ != nullptr) snap->fade_stream = *fade_stream_;
  snap->protocol_word = protocol_snapshot_word();

  snap->sync_slot = sync_slot_;
  snap->discovery_slot = discovery_slot_;
  snap->protocol_slot = protocol_slot_;
  snap->local_converged_slot = local_converged_slot_;
  snap->crashes = crashes_;
  snap->recoveries = recoveries_;
  snap->was_aligned = was_aligned_;
  snap->resilience_last_slot = resilience_last_slot_;
  snap->desync_start = desync_start_;
  snap->observed_slots = observed_slots_;
  snap->in_sync_slots = in_sync_slots_;
  snap->resyncs = resyncs_;
  snap->resync_sum_ms = resync_sum_ms_;
  snap->resync_max_ms = resync_max_ms_;
  snap->repair_base_set = repair_base_set_;
  snap->repair_rach2_base = repair_rach2_base_;
  snap->service_fade_episodes = service_fade_episodes_;
  snap->relabel_window = relabel_window_;
  snap->relabels_in_window = relabels_in_window_;
  snap->relabels_total = relabels_total_;
  snap->relabels_suppressed = relabels_suppressed_;
  return snap;
}

void EngineBase::restore(const EngineSnapshot& snap) {
  assert(snap.devices.size() == devices_.size() &&
         "a snapshot only restores into the engine that produced it");

  sim_.restore(snap.sim);
  // Element-wise: pending callbacks hold `&devices_[i]`, so the vector's
  // storage must not move.
  for (std::size_t i = 0; i < devices_.size(); ++i) devices_[i] = snap.devices[i];
  if (soa_) {
    assert(snap.hot_block.size() == hot_.block_bytes() &&
           "hot-region layout must match the engine that took the snapshot");
    std::memcpy(hot_.block(), snap.hot_block.data(), snap.hot_block.size());
    // Element-wise for the same reason as devices_: assignment reuses each
    // table's existing slot array, so a steady-state restore is
    // allocation-free and the arrays never move.
    for (std::size_t i = 0; i < hot_.neighbors.size(); ++i) {
      hot_.neighbors[i] = snap.hot_neighbors[i];
    }
  }
  detector_ = *snap.detector;
  local_detector_ = *snap.local_detector;
  control_rng_ = *snap.control_rng;
  mobility_rng_ = *snap.mobility_rng;
  channel_->fading_rng() = *snap.fading_rng;
  radio_.restore_state(snap.radio);
  energy_ = *snap.energy;
  if (injector_ != nullptr && snap.injector.has_value()) *injector_ = *snap.injector;
  if (snap.churn_stream.has_value()) {
    if (churn_stream_ != nullptr) {
      *churn_stream_ = *snap.churn_stream;
    } else {
      churn_stream_ = std::make_unique<fault::ChurnStream>(*snap.churn_stream);
    }
  }
  if (snap.fade_stream.has_value()) {
    if (fade_stream_ != nullptr) {
      *fade_stream_ = *snap.fade_stream;
    } else {
      fade_stream_ = std::make_unique<fault::FadeStream>(*snap.fade_stream);
    }
  }
  protocol_restore_word(snap.protocol_word);

  sync_slot_ = snap.sync_slot;
  discovery_slot_ = snap.discovery_slot;
  protocol_slot_ = snap.protocol_slot;
  local_converged_slot_ = snap.local_converged_slot;
  crashes_ = snap.crashes;
  recoveries_ = snap.recoveries;
  was_aligned_ = snap.was_aligned;
  resilience_last_slot_ = snap.resilience_last_slot;
  desync_start_ = snap.desync_start;
  observed_slots_ = snap.observed_slots;
  in_sync_slots_ = snap.in_sync_slots;
  resyncs_ = snap.resyncs;
  resync_sum_ms_ = snap.resync_sum_ms;
  resync_max_ms_ = snap.resync_max_ms;
  repair_base_set_ = snap.repair_base_set;
  repair_rach2_base_ = snap.repair_rach2_base;
  service_fade_episodes_ = snap.service_fade_episodes;
  relabel_window_ = snap.relabel_window;
  relabels_in_window_ = snap.relabels_in_window;
  relabels_total_ = snap.relabels_total;
  relabels_suppressed_ = snap.relabels_suppressed;
}

// ---------------------------------------------------------------------------
// Fault-stream bridge
// ---------------------------------------------------------------------------

void EngineBase::schedule_service_faults(std::int64_t to_slot) {
  if (churn_stream_ != nullptr) {
    churn_chunk_.clear();
    churn_stream_->generate_until(to_slot, churn_chunk_);
    for (const fault::ChurnEvent& e : churn_chunk_) {
      sim_.schedule_at(sim::SimTime::milliseconds(e.slot), [this, e] {
        if (e.crash) {
          crash_device(e.device);
        } else {
          recover_device(e.device);
        }
      });
    }
  }
  if (fade_stream_ != nullptr) {
    fade_chunk_.clear();
    fade_stream_->generate_until(to_slot, fade_chunk_);
    for (const fault::FadeEpisode& f : fade_chunk_) {
      ++service_fade_episodes_;
      sim_.schedule_at(sim::SimTime::milliseconds(f.start_slot), [this, f] {
        injector_->fade_started(f);
        trace(TraceKind::kFadeStart, f.u, f.u, f.v);
      });
      sim_.schedule_at(sim::SimTime::milliseconds(f.end_slot), [this, f] {
        injector_->fade_ended(f);
        trace(TraceKind::kFadeEnd, f.u, f.u, f.v);
      });
    }
  }
}

// ---------------------------------------------------------------------------
// The service loop
// ---------------------------------------------------------------------------

namespace {
/// Counter values at a window boundary; windows report the deltas.
struct Baseline {
  std::uint64_t tx = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collisions = 0;
  std::uint64_t fault_drops = 0;
  std::uint32_t crashes = 0;
  std::uint32_t recoveries = 0;
  std::uint32_t resyncs = 0;
  double resync_sum_ms = 0.0;
  std::int64_t observed = 0;
  std::int64_t in_sync = 0;
  std::uint64_t relabels = 0;
  std::uint64_t suppressed = 0;
};
}  // namespace

ServiceReport EngineBase::run_service(const ServiceConfig& cfg,
                                      sim::SoakRecorder* recorder) {
  ServiceReport report;
  if (cfg.duration_slots <= 0 || cfg.window_slots <= 0) {
    report.error = "service mode requires positive duration_slots and window_slots";
    return report;
  }
  if (params_.mobility_speed_mps > 0.0) {
    report.error =
        "service mode supports static scenarios only: snapshot/restore does "
        "not carry the mobility caches";
    return report;
  }
  report.error = fault::validate_service_horizon(params_.faults, cfg.duration_slots);
  if (!report.error.empty()) return report;

  if (!service_started_) {
    service_mode_ = true;  // start_run() must not expand the batch schedule
    service_started_ = true;
    params_.stop_on_convergence = false;  // a service never "converges and exits"
    relabel_cap_per_period_ = cfg.relabel_cap_per_period;
    // collect_metrics() clamps "never happened" marks to max_slots(); stretch
    // the cap to the soak horizon so those sentinels stay past the run.
    const auto periods =
        (cfg.duration_slots + params_.period_slots - 1) / params_.period_slots;
    params_.max_periods =
        std::max<std::uint32_t>(params_.max_periods, static_cast<std::uint32_t>(periods));
    const auto n = static_cast<std::uint32_t>(devices_.size());
    const std::uint64_t seed = rng_factory_.master_seed();
    if (params_.faults.churn_enabled()) {
      churn_stream_ = std::make_unique<fault::ChurnStream>(params_.faults, n, seed);
      churn_chunk_.reserve(64);
    }
    if (params_.faults.fade_rate_per_min > 0.0 && n >= 2) {
      fade_stream_ = std::make_unique<fault::FadeStream>(params_.faults, n, seed);
      fade_chunk_.reserve(64);
    }
    // Bounded-memory invariant: pre-size the containers whose growth is
    // "new lifetime record" shaped so the steady state never allocates.
    // Tree adjacency is bounded by the device count; the radio's per-slot
    // scratch by the transmissions a slot can carry (every live device
    // fires or relays at most a couple of PSs per slot — 2·n covers the
    // worst storm the relabel cap admits).
    for (Device& d : devices_) {
      neighbors(d.id).reserve(n > 0 ? n - 1 : 0);
      d.tree_neighbors.reserve(n > 0 ? n - 1 : 0);
    }
    radio_.reserve_delivery(static_cast<std::size_t>(2) * n);
    start_run();
  }

  const auto take_baseline = [this] {
    Baseline b;
    const mac::TrafficCounters& c = radio_.counters();
    b.tx = c.total_tx();
    b.deliveries = c.deliveries;
    b.collisions = c.collisions;
    b.fault_drops = c.fault_drops;
    b.crashes = crashes_;
    b.recoveries = recoveries_;
    b.resyncs = resyncs_;
    b.resync_sum_ms = resync_sum_ms_;
    b.observed = observed_slots_;
    b.in_sync = in_sync_slots_;
    b.relabels = relabels_total_;
    b.suppressed = relabels_suppressed_;
    return b;
  };

  // Dedup pruning and snapshots key off *absolute* slot multiples (not
  // "every k-th window of this call"), so a run resumed from a snapshot
  // replays the identical side-effect sequence.
  const std::int64_t clear_span =
      cfg.dedup_clear_periods > 0
          ? static_cast<std::int64_t>(cfg.dedup_clear_periods) * params_.period_slots
          : 0;

  std::int64_t slot = current_slot();
  Baseline prev = take_baseline();
  while (slot < cfg.duration_slots) {
    const std::int64_t window_end = std::min(slot + cfg.window_slots, cfg.duration_slots);
    schedule_service_faults(window_end);
    sim_.run_until(sim::SimTime::milliseconds(window_end));
    const Baseline now = take_baseline();

    sim::SoakWindow w;
    w.index = static_cast<std::uint64_t>(slot / cfg.window_slots);
    w.start_slot = slot;
    w.end_slot = window_end;
    std::uint32_t live = 0;
    for (std::uint32_t i = 0; i < devices_.size(); ++i) {
      if (!down(i)) ++live;
    }
    w.live_devices = live;
    w.crashes = now.crashes - prev.crashes;
    w.recoveries = now.recoveries - prev.recoveries;
    w.messages = now.tx - prev.tx;
    w.deliveries = now.deliveries - prev.deliveries;
    w.collisions = now.collisions - prev.collisions;
    w.fault_drops = now.fault_drops - prev.fault_drops;
    w.msg_rate_per_slot =
        static_cast<double>(w.messages) / static_cast<double>(window_end - slot);
    w.synced_once = sync_slot_ >= 0;
    const std::int64_t observed_delta = now.observed - prev.observed;
    const std::int64_t in_sync_delta = now.in_sync - prev.in_sync;
    // Resilience sampling only starts after first sync; before that the
    // fraction is pinned by definition (never synced => 0).
    w.sync_fraction =
        observed_delta > 0
            ? static_cast<double>(in_sync_delta) / static_cast<double>(observed_delta)
            : ((w.synced_once && was_aligned_) ? 1.0 : 0.0);
    w.resyncs = now.resyncs - prev.resyncs;
    w.mean_resync_ms = w.resyncs > 0
                           ? (now.resync_sum_ms - prev.resync_sum_ms) / w.resyncs
                           : 0.0;
    w.relabels = now.relabels - prev.relabels;
    w.relabels_suppressed = now.suppressed - prev.suppressed;
    const sim::Simulator::SchedulerStats stats = sim_.scheduler_stats();
    w.events_live = stats.live_events;
    w.arena_capacity = stats.arena_capacity;
    w.arena_high_water = stats.arena_high_water;
    w.events_processed = sim_.events_processed();
    fill_soak_window(w);  // protocol-specific gauges (DESYNC error etc.)
    if (recorder != nullptr) recorder->push(w);
    ++report.windows;
    prev = now;

    // Bounded memory: drop the protocols' flood/announce dedup memory on a
    // deterministic cadence.  The sets' clear() keeps their slot arrays, so
    // this allocates nothing; losing cross-epoch dedup only costs an extra
    // relay for floods that straddle the boundary.
    if (clear_span > 0 && slot / clear_span != window_end / clear_span) {
      for (Device& d : devices_) {
        d.announces_seen.clear();
        d.sync_floods_seen.clear();
      }
    }
    // Snapshot last, after the window was emitted and the dedup pruned: the
    // checkpoint then holds exactly the state the next window starts from.
    if (cfg.snapshot_every_slots > 0 &&
        slot / cfg.snapshot_every_slots != window_end / cfg.snapshot_every_slots) {
      service_snapshot_ = snapshot();
      ++report.snapshots;
    }
    slot = window_end;
  }

  report.metrics = collect_metrics();
  const sim::Simulator::SchedulerStats stats = sim_.scheduler_stats();
  report.arena_capacity = stats.arena_capacity;
  report.arena_high_water = stats.arena_high_water;
  report.relabels = relabels_total_;
  report.relabels_suppressed = relabels_suppressed_;
  if (recorder != nullptr) report.windows_dropped = recorder->dropped();
  return report;
}

// ---------------------------------------------------------------------------
// run_service_trial
// ---------------------------------------------------------------------------

ServiceReport run_service_trial(Protocol protocol, const ScenarioConfig& config,
                                const ServiceConfig& service, const RunHooks& hooks,
                                sim::SoakRecorder* recorder) {
  std::vector<geo::Vec2> positions = deploy(config);
  std::unique_ptr<EngineBase> engine = proto::Registry::instance().make(
      protocol, std::move(positions), config.protocol, config.radio, config.seed);
  assert(engine != nullptr);  // every Protocol enumerator has a built-in backend
  engine->set_trace(hooks.trace);
  engine->set_telemetry(hooks.telemetry);
  ServiceReport report = engine->run_service(service, recorder);
  if (hooks.progress != nullptr) hooks.progress->advance();
  return report;
}

}  // namespace firefly::core
