#include "core/schedule.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "phy/link.hpp"

namespace firefly::core {

double TdmaSchedule::aggregate_throughput_mbps() const {
  if (frame_slots == 0) return 0.0;
  double sum = 0.0;
  for (const ScheduledLink& link : links) sum += link.rate_mbps;
  return sum / static_cast<double>(frame_slots);
}

TdmaSchedule build_tdma_schedule(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& links,
    const std::vector<geo::Vec2>& positions, phy::Channel& channel,
    double interference_margin_db) {
  TdmaSchedule schedule;
  const std::size_t m = links.size();
  schedule.links.reserve(m);
  const util::Dbm noise = channel.params().noise_floor;
  for (const auto& [tx, rx] : links) {
    assert(tx < positions.size() && rx < positions.size() && tx != rx);
    const util::Dbm mean =
        channel.mean_received_power(tx, positions[tx], rx, positions[rx]);
    schedule.links.push_back(ScheduledLink{
        tx, rx, 0, mean.value,
        phy::rayleigh_ergodic_rate_mbps(mean, noise, phy::kSidelinkBandwidthHz)});
  }
  if (m == 0) {
    schedule.valid_ = true;
    return schedule;
  }

  // Conflict graph: shared endpoints or transmitter-to-foreign-receiver
  // power above (threshold − margin).
  const util::Dbm interference_cutoff =
      channel.params().detection_threshold - util::Db{interference_margin_db};
  schedule.conflicts_.assign(m, {});
  auto interferes = [&](std::uint32_t tx, std::uint32_t rx) {
    return channel.mean_received_power(tx, positions[tx], rx, positions[rx]) >=
           interference_cutoff;
  };
  for (std::uint32_t i = 0; i < m; ++i) {
    for (std::uint32_t j = i + 1; j < m; ++j) {
      const auto& a = schedule.links[i];
      const auto& b = schedule.links[j];
      const bool endpoint_conflict =
          a.tx == b.tx || a.tx == b.rx || a.rx == b.tx || a.rx == b.rx;
      const bool physical_conflict =
          endpoint_conflict || interferes(a.tx, b.rx) || interferes(b.tx, a.rx);
      if (physical_conflict) {
        schedule.conflicts_[i].push_back(j);
        schedule.conflicts_[j].push_back(i);
        ++schedule.conflict_edges;
      }
    }
  }
  for (const auto& adj : schedule.conflicts_) {
    schedule.max_conflict_degree =
        std::max(schedule.max_conflict_degree, static_cast<std::uint32_t>(adj.size()));
  }

  // Welsh–Powell: colour in order of decreasing conflict degree.
  std::vector<std::uint32_t> order(m);
  std::iota(order.begin(), order.end(), 0U);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (schedule.conflicts_[a].size() != schedule.conflicts_[b].size()) {
      return schedule.conflicts_[a].size() > schedule.conflicts_[b].size();
    }
    return a < b;
  });
  constexpr std::uint32_t kUncolored = ~0U;
  std::vector<std::uint32_t> color(m, kUncolored);
  std::vector<char> used;
  for (const std::uint32_t v : order) {
    used.assign(m + 1, 0);
    for (const std::uint32_t nb : schedule.conflicts_[v]) {
      if (color[nb] != kUncolored) used[color[nb]] = 1;
    }
    std::uint32_t c = 0;
    while (used[c]) ++c;
    color[v] = c;
    schedule.frame_slots = std::max(schedule.frame_slots, c + 1);
  }
  for (std::uint32_t i = 0; i < m; ++i) schedule.links[i].slot = color[i];

  // Validate: no same-slot conflicts.
  schedule.valid_ = true;
  for (std::uint32_t i = 0; i < m && schedule.valid_; ++i) {
    for (const std::uint32_t j : schedule.conflicts_[i]) {
      if (color[i] == color[j]) {
        schedule.valid_ = false;
        break;
      }
    }
  }
  return schedule;
}

}  // namespace firefly::core
