// schedule.hpp — TDMA scheduling of discovered D2D links.
//
// Slot synchronisation is not an end in itself: the paper's point is that
// aligned devices can *schedule* direct transfers.  This module turns a set
// of discovered links into a conflict-free TDMA schedule:
//
//   * two links conflict when they share an endpoint (half-duplex radios)
//     or when a transmitter of one sits within interference range of a
//     receiver of the other (physical interference, judged by the channel's
//     slot-averaged power against a threshold);
//   * greedy Welsh–Powell colouring of the conflict graph assigns each link
//     the first compatible slot of the TDMA frame; the classic bound
//     colours ≤ max-conflict-degree + 1 holds;
//   * per-link throughput = link ergodic rate / frame length, so denser
//     scheduling regions pay in per-link rate — the trade the scheduler
//     reports.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/point.hpp"
#include "phy/channel.hpp"

namespace firefly::core {

struct ScheduledLink {
  std::uint32_t tx{0};
  std::uint32_t rx{0};
  std::uint32_t slot{0};       ///< assigned slot within the TDMA frame
  double mean_rx_dbm{0.0};     ///< slot-averaged received power
  double rate_mbps{0.0};       ///< ergodic link rate (full channel)
};

struct TdmaSchedule {
  std::vector<ScheduledLink> links;
  std::uint32_t frame_slots{0};       ///< schedule length (number of colours)
  std::size_t conflict_edges{0};      ///< size of the conflict graph
  std::uint32_t max_conflict_degree{0};

  /// Sum over links of rate/frame: the network's simultaneous throughput.
  [[nodiscard]] double aggregate_throughput_mbps() const;
  /// True when no two links in the same slot conflict (validated by the
  /// builder; exposed for tests).
  [[nodiscard]] bool valid() const { return valid_; }

 private:
  friend TdmaSchedule build_tdma_schedule(const std::vector<std::pair<std::uint32_t, std::uint32_t>>&,
                                          const std::vector<geo::Vec2>&, phy::Channel&,
                                          double);
  bool valid_ = false;
  std::vector<std::vector<std::uint32_t>> conflicts_;
};

/// Build a schedule for directed links (tx, rx) over devices at `positions`
/// using `channel` for propagation.  A foreign transmitter conflicts with a
/// link when its slot-averaged power at that link's receiver exceeds the
/// detection threshold minus `interference_margin_db` (i.e. it would add
/// non-negligible interference).
[[nodiscard]] TdmaSchedule build_tdma_schedule(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& links,
    const std::vector<geo::Vec2>& positions, phy::Channel& channel,
    double interference_margin_db = 10.0);

}  // namespace firefly::core
