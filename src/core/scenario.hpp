// scenario.hpp — canonical experiment scenarios.
//
// `ScenarioConfig` bundles everything one trial needs: device count, the
// deployment area policy, Table I radio constants and the protocol knobs.
// The paper's reference configuration is 50 devices in 100 m × 100 m; its
// figures sweep the device count "at different scales", which we read as
// density-preserving (the area grows with N so the network stays multi-hop
// at the same local density — the regime in which the two algorithms
// separate).  A fixed-area mode is provided for the dense-hotspot ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.hpp"
#include "core/params.hpp"
#include "core/trace.hpp"
#include "geo/deployment.hpp"
#include "geo/point.hpp"
#include "graph/graph.hpp"
#include "obs/progress.hpp"
#include "obs/telemetry.hpp"
#include "phy/channel.hpp"

namespace firefly::core {

enum class AreaPolicy {
  kDensityScaled,  ///< area grows with N (paper's 50-per-hectare density)
  kFixed,          ///< always the Table I 100 m × 100 m square
};

enum class Protocol {
  kFst,       ///< full-mesh firefly baseline (Chao et al.)
  kSt,        ///< proposed spanning-tree algorithm (this paper)
  kBirthday,  ///< sync-free random-beacon discovery (refs [4]-[7])
  kDesync,    ///< dithered desynchronisation (arXiv:1210.2122)
};

[[nodiscard]] const char* to_string(Protocol p);

struct ScenarioConfig {
  std::size_t n{50};
  std::uint64_t seed{1};
  AreaPolicy area_policy{AreaPolicy::kDensityScaled};
  phy::RadioParams radio{};
  ProtocolParams protocol{};

  [[nodiscard]] geo::Area area() const;
};

/// Deterministic deployment for the scenario (uniform i.i.d., seeded).
[[nodiscard]] std::vector<geo::Vec2> deploy(const ScenarioConfig& config);

/// Ground-truth proximity graph: an edge (u, v) exists when the
/// slot-averaged received power (path loss + per-link shadowing, as the
/// given channel realises it) clears the detection threshold in at least
/// one direction; the edge weight is that power in dBm (the paper's
/// PS-strength weight).  Used to validate protocol trees against reference
/// MSTs and to drive the standalone PCO ablations.
[[nodiscard]] graph::Graph proximity_graph(const std::vector<geo::Vec2>& positions,
                                           phy::Channel& channel);

/// The single home for every optional trial observer.  All are non-owning
/// and may be null; attaching them changes nothing about the simulated
/// behaviour (verified by the telemetry-off invariance tests).  `progress`
/// is advanced once per completed trial.
struct RunHooks {
  TraceSink* trace = nullptr;
  obs::Telemetry* telemetry = nullptr;
  obs::ProgressReporter* progress = nullptr;
};

/// Run one trial of the chosen protocol on the scenario, with any
/// observers in `hooks` attached for its duration.  The engine is built
/// through `proto::Registry`, so every registered backend is runnable here.
[[nodiscard]] RunMetrics run_trial(Protocol protocol, const ScenarioConfig& config,
                                   const RunHooks& hooks = {});

}  // namespace firefly::core
