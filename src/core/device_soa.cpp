#include "core/device_soa.hpp"

#include "core/device.hpp"

namespace firefly::core {

void DeviceHot::build(std::size_t n) {
  count_ = n;
  // Carve widest-first so inter-array padding never exceeds one element.
  // Per device: 5×8 (slots) + 8 (event) + 2×8 (drift) + 4 + 2×2 + 3×1 ≈ 75 B.
  arena_.reset(80 * n + 64);
  next_fire_slot = arena_.carve<std::int64_t>(n);
  last_fire_slot = arena_.carve<std::int64_t>(n);
  refractory_until_slot = arena_.carve<std::int64_t>(n);
  desync_last_heard_slot = arena_.carve<std::int64_t>(n);
  desync_prev_slot = arena_.carve<std::int64_t>(n);
  fire_event = arena_.carve<sim::EventId>(n);
  drift_ppm = arena_.carve<double>(n);
  drift_residual = arena_.carve<double>(n);
  desync_residual = arena_.carve<std::int32_t>(n);
  fragment = arena_.carve<std::uint16_t>(n);
  fragment_size = arena_.carve<std::uint16_t>(n);
  down = arena_.carve<bool>(n);
  is_head = arena_.carve<bool>(n);
  desync_adjusted = arena_.carve<bool>(n);
  neighbors.resize(n);
}

void DeviceHot::load_from(const std::vector<Device>& devices) {
  for (std::size_t i = 0; i < count_; ++i) {
    const Device& d = devices[i];
    next_fire_slot[i] = d.next_fire_slot;
    last_fire_slot[i] = d.last_fire_slot;
    refractory_until_slot[i] = d.refractory_until_slot;
    desync_last_heard_slot[i] = d.desync_last_heard_slot;
    desync_prev_slot[i] = d.desync_prev_slot;
    fire_event[i] = d.fire_event;
    drift_ppm[i] = d.drift_ppm;
    drift_residual[i] = d.drift_residual;
    desync_residual[i] = d.desync_residual;
    fragment[i] = d.fragment;
    fragment_size[i] = d.fragment_size;
    down[i] = d.down;
    is_head[i] = d.is_head;
    desync_adjusted[i] = d.desync_adjusted;
    neighbors[i] = d.neighbors;
  }
}

void DeviceHot::store_to(std::vector<Device>& devices) const {
  for (std::size_t i = 0; i < count_; ++i) {
    Device& d = devices[i];
    d.next_fire_slot = next_fire_slot[i];
    d.last_fire_slot = last_fire_slot[i];
    d.refractory_until_slot = refractory_until_slot[i];
    d.desync_last_heard_slot = desync_last_heard_slot[i];
    d.desync_prev_slot = desync_prev_slot[i];
    d.fire_event = fire_event[i];
    d.drift_ppm = drift_ppm[i];
    d.drift_residual = drift_residual[i];
    d.desync_residual = desync_residual[i];
    d.fragment = fragment[i];
    d.fragment_size = fragment_size[i];
    d.down = down[i];
    d.is_head = is_head[i];
    d.desync_adjusted = desync_adjusted[i];
    d.neighbors = neighbors[i];
  }
}

}  // namespace firefly::core
