#include "core/trace.hpp"

#include <algorithm>
#include <fstream>

namespace firefly::core {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kFire: return "fire";
    case TraceKind::kMerge: return "merge";
    case TraceKind::kHeadChange: return "head-change";
    case TraceKind::kAdopt: return "adopt";
    case TraceKind::kSync: return "sync";
    case TraceKind::kDiscovery: return "discovery";
    case TraceKind::kCrash: return "crash";
    case TraceKind::kRecover: return "recover";
    case TraceKind::kFadeStart: return "fade-start";
    case TraceKind::kFadeEnd: return "fade-end";
    case TraceKind::kRelabel: return "relabel";
  }
  return "?";
}

std::size_t TraceSink::count(TraceKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const TraceEvent& e) { return e.kind == kind; }));
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  // Ring order: [head_, end) is older than [0, head_).
  for (std::size_t i = head_; i < events_.size(); ++i) out.push_back(events_[i]);
  for (std::size_t i = 0; i < head_; ++i) out.push_back(events_[i]);
  return out;
}

void TraceSink::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return;
  f << "time_ms,device,kind,a,b\n";
  for (const TraceEvent& e : snapshot()) {
    f << e.time_ms << ',' << e.device << ',' << to_string(e.kind) << ',' << e.a << ','
      << e.b << '\n';
  }
}

}  // namespace firefly::core
