#include "core/device.hpp"

#include <algorithm>

namespace firefly::core {

bool Device::has_tree_neighbor(std::uint32_t other) const {
  return std::find(tree_neighbors.begin(), tree_neighbors.end(), other) !=
         tree_neighbors.end();
}

void Device::add_tree_neighbor(std::uint32_t other) {
  if (!has_tree_neighbor(other)) tree_neighbors.push_back(other);
}

}  // namespace firefly::core
