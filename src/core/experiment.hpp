// experiment.hpp — Monte-Carlo sweeps for the figure benches.
//
// A sweep runs `trials` independent seeds per (protocol, N) point, fanned
// out over a thread pool (each trial owns its simulator; nothing is
// shared), and aggregates the Fig. 3 / Fig. 4 series with 95% confidence
// intervals.  Trials that hit the max_periods cap are reported through
// `failure_rate` and excluded from the time statistics (the paper plots
// converged runs).
#pragma once

#include <cstdint>
#include <vector>

#include "core/scenario.hpp"
#include "obs/progress.hpp"
#include "obs/telemetry.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace firefly::core {

struct SweepPoint {
  std::size_t n{0};
  std::size_t trials{0};
  double failure_rate{0.0};
  util::Sample convergence_ms;
  util::Sample total_messages;
  util::Sample rach1_messages;
  util::Sample rach2_messages;
  util::Sample collisions;
  util::Sample neighbors_discovered;
  util::Sample ranging_error;
};

struct SweepConfig {
  ScenarioConfig base{};           ///< n and seed are overridden per point/trial
  std::vector<std::size_t> ns{50, 100, 200, 400, 600, 800, 1000};
  std::size_t trials{5};
  std::uint64_t master_seed{2015};
  /// Observers passed to every trial (see RunHooks — the single home for
  /// them; no raw observer pointers live here).  `hooks.telemetry` records
  /// a wall-clock span per trial and is shared safely across pooled
  /// workers; `hooks.progress` is advanced once per completed trial
  /// (stderr ETA line).  `hooks.trace` is not thread-safe: leave it null
  /// for pooled sweeps.  None affect the simulated results.
  RunHooks hooks{};

  /// Total trial count of one protocol sweep (for sizing a progress bar).
  [[nodiscard]] std::size_t total_trials() const { return ns.size() * trials; }
};

/// One protocol across all N.  `pool` may be null (sequential).
[[nodiscard]] std::vector<SweepPoint> sweep(Protocol protocol, const SweepConfig& config,
                                            util::ThreadPool* pool = nullptr);

}  // namespace firefly::core
