// metrics.hpp — what a single protocol run reports.
//
// `RunMetrics` carries everything Figs. 3 and 4 plot plus the discovery-
// quality numbers the paper discusses qualitatively: convergence time,
// per-codec message counts taken from the radio's meter, collision counts,
// and RSSI-ranging accuracy measured against ground-truth positions.
#pragma once

#include <cstdint>

namespace firefly::core {

struct RunMetrics {
  // --- Fig. 3 ---
  // Convergence is the paper's twin goal achieved simultaneously: sustained
  // global firing alignment AND complete neighbour discovery on every
  // reliable proximity link.  convergence_ms = max(sync_ms, discovery_ms).
  bool converged{false};
  double convergence_ms{0.0};
  double sync_ms{0.0};            ///< first sustained global firing alignment
  double discovery_ms{0.0};       ///< all reliable links discovered both ways
  bool locally_converged{false};
  double local_sync_ms{0.0};      ///< per-link alignment (diagnostic; <= sync_ms)

  // --- Fig. 4 (measured at the radio medium) ---
  std::uint64_t rach1_messages{0};
  std::uint64_t rach2_messages{0};
  std::uint64_t collisions{0};
  std::uint64_t deliveries{0};
  [[nodiscard]] std::uint64_t total_messages() const {
    return rach1_messages + rach2_messages;
  }

  // --- discovery quality ---
  double mean_neighbors_discovered{0.0};
  double mean_service_peers{0.0};
  double ranging_mean_abs_rel_error{0.0};  ///< mean |r_est/r_true - 1|
  double ranging_p90_rel_error{0.0};

  // --- topology (ST only; zero for FST) ---
  std::uint32_t final_fragments{0};
  std::uint32_t tree_edges{0};
  double tree_weight_dbm{0.0};    ///< sum of tree edge weights (PS strength)
  double tree_service_affinity{0.0};  ///< fraction of tree edges joining same-service UEs

  // --- desynchronisation (DESYNC only; zero for the sync protocols) ---
  double desync_error{0.0};         ///< mean |midpoint residual| (slots)
  double desync_spread_slots{0.0};  ///< max−min cyclic firing-phase gap (slots)

  // --- energy (refs [4]-[9] motivation: discovery power cost) ---
  double total_energy_mj{0.0};        ///< all devices, to the stop instant
  double mean_device_energy_mj{0.0};
  double energy_per_neighbor_mj{0.0}; ///< mean energy / mean neighbours found

  // --- resilience (fault-injection runs; all zero when fault-free) ---
  std::uint32_t crashes{0};
  std::uint32_t recoveries{0};
  std::uint32_t fade_episodes{0};
  std::uint64_t fault_drops{0};       ///< receptions vetoed by fades/iid loss
  std::uint32_t resyncs{0};           ///< completed desync->resync episodes
  double mean_resync_ms{0.0};         ///< mean time to regain alignment
  double max_resync_ms{0.0};
  double sync_uptime{0.0};            ///< aligned fraction of post-first-sync time
  bool in_sync_at_end{false};
  std::uint64_t repair_messages{0};   ///< RACH2 spent after first convergence
  std::uint32_t alive_at_end{0};
  /// True when the reliable-link graph over the devices alive at the end is
  /// disconnected — re-convergence to one synchronised fragment is then
  /// impossible, and the run is diagnosed rather than failed.
  bool partitioned{false};

  // --- engine accounting ---
  std::uint64_t events_processed{0};
  double simulated_ms{0.0};

  /// Field-wise equality — the telemetry-off invariance tests assert that
  /// attaching observers leaves every reported number bit-identical.
  [[nodiscard]] friend bool operator==(const RunMetrics&, const RunMetrics&) = default;
};

}  // namespace firefly::core
