// device.hpp — per-UE protocol state.
//
// A `Device` is passive data; the protocol engines (fst.cpp / st.cpp) drive
// all transitions so the state machine logic is in one readable place per
// protocol.  The oscillator is event-driven: instead of ticking a counter
// every slot, the device stores the absolute slot of its next natural
// firing, derives the counter on demand, and the engine reschedules the
// firing event whenever a PRC jump moves it.
//
// Under the default SoA device core (ProtocolParams::device_core), the HOT
// subset of these fields — oscillator slots, fire_event, down, drift,
// fragment/fragment_size/is_head, the desync_* phase memory and the
// neighbour table — lives in core::DeviceHot's flat arrays during a run and
// the copies here are stale until EngineBase::devices() syncs them back.
// Everything else (identity, position, ST tree/merge bookkeeping) is COLD
// and this struct is its only storage in both modes.  Engines reach hot
// fields exclusively through EngineBase's accessors.
#pragma once

#include <cstdint>
#include <vector>

#include "core/neighbor_table.hpp"
#include "core/wire.hpp"
#include "geo/point.hpp"
#include "sim/event_queue.hpp"
#include "util/flat_set.hpp"

namespace firefly::core {

struct Device {
  std::uint32_t id{0};
  geo::Vec2 position{};
  std::uint16_t service{0};

  // --- oscillator (event-driven counter formulation) ---
  std::int64_t next_fire_slot{0};
  sim::EventId fire_event{0};
  std::int64_t last_fire_slot{-1};
  std::int64_t refractory_until_slot{-1};

  // --- discovery ---
  NeighborTable neighbors;  ///< see neighbor_table.hpp (flat, insertion-ordered)

  // --- fault-injection state ---
  bool down{false};             ///< crashed: radio silent, timers parked
  double drift_ppm{0.0};        ///< oscillator skew of this device's crystal
  double drift_residual{0.0};   ///< accumulated fractional skew, in slots

  // --- ST fragment state ---
  std::uint16_t fragment{kInvalidId};   ///< fragment label (head id at creation)
  std::uint16_t fragment_size{1};
  bool is_head{false};
  std::vector<std::uint32_t> tree_neighbors;
  util::FlatU32Set announces_seen;    ///< merge_key dedup
  util::FlatU32Set sync_floods_seen;  ///< (fragment, cycle) dedup
  std::size_t head_rotation{0};         ///< Change_head round-robin cursor
  std::uint32_t pending_target{kInvalidId};
  std::int64_t connect_sent_slot{-1};
  std::uint32_t connect_attempts{0};    ///< timed-out H_Connects this head stint
  std::int64_t last_fragment_activity_slot{0};  ///< stall detection for headless fragments
  std::int64_t head_heard_slot{0};      ///< lease: last proof a live head serves my fragment

  // --- DESYNC phase-neighbour memory (proto/desync.*; idle for other protocols) ---
  std::int64_t desync_last_heard_slot{-1};  ///< latest pulse heard (sent slot)
  std::int64_t desync_prev_slot{-1};    ///< last pulse heard before my own firing
  std::int32_t desync_residual{-1};     ///< |midpoint imbalance| after last jump (-1: unmeasured)
  bool desync_adjusted{false};          ///< midpoint jump already spent this cycle

  /// Oscillator counter at `slot` given the scheduled natural firing.
  [[nodiscard]] std::uint32_t counter_at(std::int64_t slot, std::uint32_t period) const {
    const std::int64_t remaining = next_fire_slot - slot;
    if (remaining <= 0) return period;
    if (remaining >= static_cast<std::int64_t>(period)) return 0;
    return period - static_cast<std::uint32_t>(remaining);
  }

  [[nodiscard]] bool refractory_at(std::int64_t slot) const {
    return slot <= refractory_until_slot;
  }

  [[nodiscard]] bool has_tree_neighbor(std::uint32_t other) const;
  void add_tree_neighbor(std::uint32_t other);
};

}  // namespace firefly::core
