// params.hpp — protocol parameters shared by the FST baseline and the
// proposed ST algorithm.
//
// Defaults follow the paper where it is explicit (Table I) and the firefly
// synchronisation literature where it is not: a 100-slot (100 ms) firing
// period, Mirollo–Strogatz coupling with dissipation a = 3 and pulse
// strength ε = 0.1 (α ≈ 1.35, β ≈ 0.018 — comfortably inside the α > 1,
// β > 0 convergence region), and a short refractory window to suppress
// pulse echo under the 1-slot delivery delay.
#pragma once

#include <cstdint>

#include "fault/fault_plan.hpp"
#include "pco/prc.hpp"
#include "sim/scheduler.hpp"

namespace firefly::core {

/// Where the per-device hot protocol state lives during a trial.  Results
/// are bit-identical for both (enforced by test_layout_equivalence); the
/// SoA core is faster.
enum class DeviceCore : std::uint8_t {
  kStruct,  ///< reference: hot fields stay in the fat core::Device struct
  kSoa,     ///< hot fields in flat arrays carved from one RegionArena
};

struct ProtocolParams {
  // --- simulator ---
  /// Pending-event-set implementation.  Results are bit-identical for both
  /// (enforced by test_scheduler_equivalence); the wheel is faster.
  sim::SchedulerKind scheduler{sim::SchedulerKind::kWheel};
  /// Device hot-state layout (see DeviceCore above).
  DeviceCore device_core{DeviceCore::kSoa};

  // --- oscillator ---
  std::uint32_t period_slots{100};      ///< T: firing period (slots of 1 ms)
  pco::PrcParams prc{3.0, 0.05};        ///< eq. 5 coupling (a, ε): α≈1.16, β≈0.008
  std::uint32_t refractory_slots{5};    ///< post-fire deafness (echo guard)

  // --- convergence detection ---
  std::uint32_t tolerance_slots{2};     ///< max spread of aligned firing
  std::uint32_t check_interval_slots{25};
  std::uint32_t max_periods{400};       ///< give-up bound for a trial
  /// Stop the simulation at the convergence instant (the Fig. 3 measurement
  /// mode).  Long-running scenarios (mobility, observation) set this false
  /// and run to max_periods; convergence is still recorded.
  bool stop_on_convergence{true};

  // --- neighbour table ---
  double weight_ewma{0.25};             ///< smoothing of PS-strength weights
  std::uint16_t service_count{4};       ///< distinct service-interest codes
  /// Service-affinity bias: when ST picks its heaviest outgoing edge, a
  /// neighbour sharing the device's service interest gets this many dB of
  /// bonus weight.  The paper's goal of reaching "same service interest
  /// among devices" becomes a tunable preference for service-homophilous
  /// trees; 0 (default) reproduces the pure strongest-PS rule.
  double service_bias_db{0.0};

  // --- ST (proposed) only ---
  std::uint32_t discovery_slots{100};   ///< initial discovery window (one period)
  std::uint32_t discovery_beacons{4};   ///< beacons per device in the window
  std::uint32_t round_slots{32};        ///< head H_Connect attempt cadence
  std::uint32_t connect_timeout_slots{8};
  std::uint32_t tree_stale_periods{4};  ///< drop tree edges silent this long

  // --- ST robustness (fault hardening) ---
  /// Timed-out H_Connects a head tolerates before passing headship on
  /// (Change_head); each retry doubles the wait (bounded exponential
  /// backoff), so attempt k times out after connect_timeout_slots << k.
  std::uint32_t connect_max_retries{4};
  /// Head lease: a member that has heard no proof of a live head for its
  /// fragment (sync flood, head token, merge) for this many periods declares
  /// the fragment headless, re-labels the reachable remnant under its own id
  /// and takes headship, so orphaned partitions re-join via H_Connect.
  std::uint32_t head_lease_periods{8};

  // --- DESYNC only (proto/desync.*; arXiv:1210.2122) ---
  /// Midpoint-jump strength α ∈ (0, 1]: each firing moves toward the
  /// midpoint of the two phase neighbours by this fraction.  The literature
  /// default 0.95 converges fast and stays stable under dithered rounding.
  double desync_alpha{0.95};
  /// A device counts as balanced when its post-jump midpoint residual is at
  /// most this many slots.
  std::uint32_t desync_tolerance_slots{2};
  /// Consecutive convergence checks every measured device must stay
  /// balanced for before the protocol goal latches.
  std::uint32_t desync_sustain_checks{4};

  // --- fault injection (default-constructed plan = fault-free run) ---
  fault::FaultPlan faults{};

  // --- mobility extension (paper future work; 0 = static Table I) ---
  double mobility_speed_mps{0.0};       ///< random-waypoint speed
  double mobility_pause_s{2.0};
  std::uint32_t mobility_update_slots{50};

  // --- duty-cycling extension (refs [8],[9]; 0/0 = always awake) ---
  // A device listens for duty_awake_slots out of every duty_period_slots,
  // with a per-device offset so wake windows are spread.  Transmissions
  // wake the radio and are always allowed; only reception is gated.
  std::uint32_t duty_awake_slots{0};
  std::uint32_t duty_period_slots{0};

  [[nodiscard]] bool duty_cycled() const {
    return duty_period_slots > 0 && duty_awake_slots < duty_period_slots;
  }
  [[nodiscard]] double awake_fraction() const {
    if (!duty_cycled()) return 1.0;
    return static_cast<double>(duty_awake_slots) / static_cast<double>(duty_period_slots);
  }

  [[nodiscard]] std::int64_t max_slots() const {
    return static_cast<std::int64_t>(max_periods) * period_slots;
  }
};

}  // namespace firefly::core
