#include "core/experiment.hpp"

#include <mutex>

#include "obs/timer.hpp"
#include "util/rng.hpp"

namespace firefly::core {

namespace {

ScenarioConfig trial_config(const SweepConfig& sweep_config, std::size_t n,
                            std::size_t trial) {
  ScenarioConfig config = sweep_config.base;
  config.n = n;
  config.seed = util::derive_seed(sweep_config.master_seed, "experiment.trial",
                                  (static_cast<std::uint64_t>(n) << 20) | trial);
  return config;
}

void accumulate(SweepPoint& point, const RunMetrics& metrics, std::mutex& mutex) {
  const std::lock_guard<std::mutex> lock(mutex);
  ++point.trials;
  if (!metrics.converged) {
    point.failure_rate += 1.0;  // normalised after the loop
  } else {
    point.convergence_ms.add(metrics.convergence_ms);
  }
  point.total_messages.add(static_cast<double>(metrics.total_messages()));
  point.rach1_messages.add(static_cast<double>(metrics.rach1_messages));
  point.rach2_messages.add(static_cast<double>(metrics.rach2_messages));
  point.collisions.add(static_cast<double>(metrics.collisions));
  point.neighbors_discovered.add(metrics.mean_neighbors_discovered);
  point.ranging_error.add(metrics.ranging_mean_abs_rel_error);
}

}  // namespace

std::vector<SweepPoint> sweep(Protocol protocol, const SweepConfig& config,
                              util::ThreadPool* pool) {
  std::vector<SweepPoint> points(config.ns.size());
  for (std::size_t i = 0; i < config.ns.size(); ++i) points[i].n = config.ns[i];

  std::mutex mutex;
  auto run_one = [&](std::size_t point_index, std::size_t trial) {
    const ScenarioConfig trial_cfg = trial_config(config, points[point_index].n, trial);
    RunMetrics metrics;
    {
      const obs::ScopedTimer span(config.hooks.telemetry, obs::SpanId::kTrial);
      metrics = run_trial(protocol, trial_cfg, config.hooks);
    }
    accumulate(points[point_index], metrics, mutex);
  };

  if (pool != nullptr) {
    const std::size_t total = config.ns.size() * config.trials;
    pool->parallel_for(total, [&](std::size_t flat) {
      run_one(flat / config.trials, flat % config.trials);
    });
  } else {
    for (std::size_t i = 0; i < config.ns.size(); ++i) {
      for (std::size_t t = 0; t < config.trials; ++t) run_one(i, t);
    }
  }

  for (SweepPoint& point : points) {
    if (point.trials > 0) point.failure_rate /= static_cast<double>(point.trials);
  }
  return points;
}

}  // namespace firefly::core
