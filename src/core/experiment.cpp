#include "core/experiment.hpp"

#include "obs/timer.hpp"
#include "util/rng.hpp"

namespace firefly::core {

namespace {

ScenarioConfig trial_config(const SweepConfig& sweep_config, std::size_t n,
                            std::size_t trial) {
  ScenarioConfig config = sweep_config.base;
  config.n = n;
  config.seed = util::derive_seed(sweep_config.master_seed, "experiment.trial",
                                  (static_cast<std::uint64_t>(n) << 20) | trial);
  return config;
}

void accumulate(SweepPoint& point, const RunMetrics& metrics) {
  ++point.trials;
  if (!metrics.converged) {
    point.failure_rate += 1.0;  // normalised after the loop
  } else {
    point.convergence_ms.add(metrics.convergence_ms);
  }
  point.total_messages.add(static_cast<double>(metrics.total_messages()));
  point.rach1_messages.add(static_cast<double>(metrics.rach1_messages));
  point.rach2_messages.add(static_cast<double>(metrics.rach2_messages));
  point.collisions.add(static_cast<double>(metrics.collisions));
  point.neighbors_discovered.add(metrics.mean_neighbors_discovered);
  point.ranging_error.add(metrics.ranging_mean_abs_rel_error);
}

}  // namespace

std::vector<SweepPoint> sweep(Protocol protocol, const SweepConfig& config,
                              util::ThreadPool* pool) {
  std::vector<SweepPoint> points(config.ns.size());
  for (std::size_t i = 0; i < config.ns.size(); ++i) points[i].n = config.ns[i];

  // Workers write each trial's metrics into its own pre-allocated slot
  // (indexed by flat trial number), so the parallel phase shares nothing —
  // no mutex, no contention.  Accumulation then runs sequentially in flat
  // trial order, which makes the resulting SweepPoints (including the
  // per-trial value order inside each util::Sample) identical for a serial
  // run and for any pool size.
  const std::size_t total = config.ns.size() * config.trials;
  std::vector<RunMetrics> results(total);

  auto run_one = [&](std::size_t flat) {
    const std::size_t point_index = flat / config.trials;
    const std::size_t trial = flat % config.trials;
    const ScenarioConfig trial_cfg = trial_config(config, points[point_index].n, trial);
    const obs::ScopedTimer span(config.hooks.telemetry, obs::SpanId::kTrial);
    results[flat] = run_trial(protocol, trial_cfg, config.hooks);
  };

  if (pool != nullptr) {
    pool->parallel_for(total, run_one);
  } else {
    for (std::size_t flat = 0; flat < total; ++flat) run_one(flat);
  }

  for (std::size_t flat = 0; flat < total; ++flat) {
    accumulate(points[flat / config.trials], results[flat]);
  }

  for (SweepPoint& point : points) {
    if (point.trials > 0) point.failure_rate /= static_cast<double>(point.trials);
  }
  return points;
}

}  // namespace firefly::core
