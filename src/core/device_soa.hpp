// device_soa.hpp — hot/cold split of the per-device protocol state.
//
// `core::Device` keeps every field a protocol might touch; profiling (DESIGN
// §9/§12) shows the per-slot sweeps only read a small hot subset — oscillator
// slots, fault flags, drift, ST fragment label, DESYNC phase memory — while
// dragging the whole ~300-byte struct through the cache.  `DeviceHot` carves
// that hot subset into flat arrays, index-aligned with the radio's dense
// device order, out of ONE `util::RegionArena` block per trial:
//
//   * a receiver sweep walks contiguous memory instead of striding structs,
//   * snapshot/restore of all hot scalars is a single memcpy of the region,
//   * a trial performs exactly one allocation for its hot state.
//
// Neighbor tables are hot too but own heap storage, so they sit beside the
// region in an index-aligned vector (restored element-wise, capacity-reusing).
// Cold fields — identity, position, ST tree bookkeeping, dedup sets — stay in
// the `Device` struct, which remains the single storage under
// `DeviceCore::kStruct` (the bit-identical reference leg).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/neighbor_table.hpp"
#include "sim/event_queue.hpp"
#include "util/arena.hpp"

namespace firefly::core {

struct Device;

struct DeviceHot {
  // --- oscillator ---
  std::int64_t* next_fire_slot = nullptr;
  std::int64_t* last_fire_slot = nullptr;
  std::int64_t* refractory_until_slot = nullptr;
  sim::EventId* fire_event = nullptr;

  // --- fault injection ---
  double* drift_ppm = nullptr;
  double* drift_residual = nullptr;
  bool* down = nullptr;

  // --- ST fragment hot subset ---
  std::uint16_t* fragment = nullptr;
  std::uint16_t* fragment_size = nullptr;
  bool* is_head = nullptr;

  // --- DESYNC phase memory ---
  std::int64_t* desync_last_heard_slot = nullptr;
  std::int64_t* desync_prev_slot = nullptr;
  std::int32_t* desync_residual = nullptr;
  bool* desync_adjusted = nullptr;

  /// Index-aligned discovery tables (hot, but heap-owning — see header note).
  std::vector<NeighborTable> neighbors;

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool built() const { return count_ != 0; }

  /// One region snapshot = these bytes, verbatim.
  [[nodiscard]] const std::byte* block() const { return arena_.data(); }
  [[nodiscard]] std::byte* block() { return arena_.data(); }
  [[nodiscard]] std::size_t block_bytes() const { return arena_.used(); }

  /// Allocate the region and carve every array for `n` devices (zero-filled).
  void build(std::size_t n);
  /// Copy hot fields (and neighbor tables) struct → arrays.
  void load_from(const std::vector<Device>& devices);
  /// Copy hot fields (and neighbor tables) arrays → struct.
  void store_to(std::vector<Device>& devices) const;

 private:
  util::RegionArena arena_;
  std::size_t count_ = 0;
};

}  // namespace firefly::core
