// trace.hpp — optional structured run tracing.
//
// When a `TraceSink` is attached to an engine, protocol milestones are
// recorded as (time, device, kind, a, b) rows and can be dumped to CSV for
// visualisation or debugging: every firing, every fragment merge, head
// changes, phase adoptions and the convergence instants.  Tracing is off by
// default and costs nothing when detached (a null check per event).
//
// Long chaos soaks and multi-hour CLI runs record millions of events, so
// the sink optionally runs as a ring: `set_capacity(n)` keeps the most
// recent n events, counts the overwritten ones in `dropped()`, and can
// mirror that count into an obs registry counter (`set_drop_counter`).
// The default stays unlimited for short runs and golden tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace firefly::core {

enum class TraceKind : std::uint8_t {
  kFire = 0,        ///< device fired (a = counter after reset)
  kMerge = 1,       ///< fragments merged (a = winner, b = loser)
  kHeadChange = 2,  ///< headship moved (a = new head device)
  kAdopt = 3,       ///< device adopted a phase (a = counter)
  kSync = 4,        ///< global sync achieved (device = 0, a = slot)
  kDiscovery = 5,   ///< discovery completed (device = 0, a = slot)
  kCrash = 6,       ///< fault injection crashed the device
  kRecover = 7,     ///< device recovered with cold-boot state
  kFadeStart = 8,   ///< deep-fade episode opened (a, b = link endpoints)
  kFadeEnd = 9,     ///< deep-fade episode closed (a, b = link endpoints)
  kRelabel = 10,    ///< head lease expired; device re-labelled its remnant
                    ///< fragment under its own id (b = old label)
};

[[nodiscard]] const char* to_string(TraceKind kind);

struct TraceEvent {
  double time_ms{0.0};
  std::uint32_t device{0};
  TraceKind kind{TraceKind::kFire};
  std::uint32_t a{0};
  std::uint32_t b{0};
};

class TraceSink {
 public:
  void record(double time_ms, std::uint32_t device, TraceKind kind, std::uint32_t a = 0,
              std::uint32_t b = 0) {
    const TraceEvent event{time_ms, device, kind, a, b};
    if (capacity_ == 0 || events_.size() < capacity_) {
      events_.push_back(event);
      return;
    }
    events_[head_] = event;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
    if (drop_counter_ != nullptr) drop_counter_->inc();
  }

  /// Keep only the most recent `capacity` events (0 = unlimited).  Must be
  /// set before recording starts; shrinking an already-full sink is not
  /// supported.
  void set_capacity(std::size_t capacity) { capacity_ = capacity; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events overwritten by the ring since the last clear().
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Mirror drops into an obs registry counter (not owned; may be null).
  void set_drop_counter(obs::Counter* counter) { drop_counter_ = counter; }

  /// Buffered events; chronological unless the ring has wrapped (use
  /// snapshot() when order matters on capped sinks).
  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  /// Buffered events in chronological order, ring or not.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  [[nodiscard]] std::size_t count(TraceKind kind) const;
  void clear() {
    events_.clear();
    head_ = 0;
    dropped_ = 0;
  }

  /// Write "time_ms,device,kind,a,b" rows (chronological).
  void write_csv(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;
  std::uint64_t dropped_ = 0;
  obs::Counter* drop_counter_ = nullptr;
};

}  // namespace firefly::core
