// trace.hpp — optional structured run tracing.
//
// When a `TraceSink` is attached to an engine, protocol milestones are
// recorded as (time, device, kind, a, b) rows and can be dumped to CSV for
// visualisation or debugging: every firing, every fragment merge, head
// changes, phase adoptions and the convergence instants.  Tracing is off by
// default and costs nothing when detached (a null check per event).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace firefly::core {

enum class TraceKind : std::uint8_t {
  kFire = 0,        ///< device fired (a = counter after reset)
  kMerge = 1,       ///< fragments merged (a = winner, b = loser)
  kHeadChange = 2,  ///< headship moved (a = new head device)
  kAdopt = 3,       ///< device adopted a phase (a = counter)
  kSync = 4,        ///< global sync achieved (device = 0, a = slot)
  kDiscovery = 5,   ///< discovery completed (device = 0, a = slot)
  kCrash = 6,       ///< fault injection crashed the device
  kRecover = 7,     ///< device recovered with cold-boot state
  kFadeStart = 8,   ///< deep-fade episode opened (a, b = link endpoints)
  kFadeEnd = 9,     ///< deep-fade episode closed (a, b = link endpoints)
  kRelabel = 10,    ///< head lease expired; device re-labelled its remnant
                    ///< fragment under its own id (b = old label)
};

[[nodiscard]] const char* to_string(TraceKind kind);

struct TraceEvent {
  double time_ms{0.0};
  std::uint32_t device{0};
  TraceKind kind{TraceKind::kFire};
  std::uint32_t a{0};
  std::uint32_t b{0};
};

class TraceSink {
 public:
  void record(double time_ms, std::uint32_t device, TraceKind kind, std::uint32_t a = 0,
              std::uint32_t b = 0) {
    events_.push_back(TraceEvent{time_ms, device, kind, a, b});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t count(TraceKind kind) const;
  void clear() { events_.clear(); }

  /// Write "time_ms,device,kind,a,b" rows.
  void write_csv(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace firefly::core
