// report.hpp — deterministic JSONL exporters for run and sweep results.
//
// These writers are the machine-readable counterpart of the stdout tables:
// one JSON object per line, keys in a fixed order, doubles rendered with
// shortest-round-trip formatting.  Two runs with the same seed produce
// byte-identical output, so bench JSONL files can be diffed and checked
// into golden tests.  Wall-clock quantities are deliberately excluded —
// anything time-of-day or machine-speed dependent belongs in the telemetry
// registry or the Chrome trace, not here.
#pragma once

#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "core/scenario.hpp"
#include "obs/json.hpp"
#include "util/stats.hpp"

namespace firefly::core {

/// Summary of a util::Sample as a JSON object:
/// {"count":..,"mean":..,"stddev":..,"ci95":..,"p50":..,"p90":..,"p99":..}.
/// An empty sample reports count 0 and zeros (matching util::Sample).
void write_sample_json(obs::JsonWriter& w, const util::Sample& sample);

/// Every RunMetrics field as a JSON object, in declaration order.
void write_run_metrics_json(obs::JsonWriter& w, const RunMetrics& metrics);

/// One sweep point as a self-describing JSONL record:
/// {"bench":..,"protocol":..,"n":..,"trials":..,"failure_rate":..,
///  "convergence_ms":{..},"total_messages":{..},...}.
void write_sweep_point_json(obs::JsonWriter& w, const SweepPoint& point,
                            Protocol protocol, const char* bench);

}  // namespace firefly::core
