// report.hpp — deterministic JSONL exporters for run and sweep results.
//
// These writers are the machine-readable counterpart of the stdout tables:
// one JSON object per line, keys in a fixed order, doubles rendered with
// shortest-round-trip formatting.  Two runs with the same seed produce
// byte-identical output, so bench JSONL files can be diffed and checked
// into golden tests.  Wall-clock quantities are deliberately excluded —
// anything time-of-day or machine-speed dependent belongs in the telemetry
// registry or the Chrome trace, not here.
#pragma once

#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "core/scenario.hpp"
#include "core/service_mode.hpp"
#include "obs/json.hpp"
#include "sim/soak.hpp"
#include "util/stats.hpp"

namespace firefly::core {

/// Summary of a util::Sample as a JSON object:
/// {"count":..,"mean":..,"stddev":..,"ci95":..,"p50":..,"p90":..,"p99":..}.
/// An empty sample reports count 0 and zeros (matching util::Sample).
void write_sample_json(obs::JsonWriter& w, const util::Sample& sample);

/// Every RunMetrics field as a JSON object, in declaration order.
void write_run_metrics_json(obs::JsonWriter& w, const RunMetrics& metrics);

/// One sweep point as a self-describing JSONL record:
/// {"bench":..,"protocol":..,"n":..,"trials":..,"failure_rate":..,
///  "convergence_ms":{..},"total_messages":{..},...}.
void write_sweep_point_json(obs::JsonWriter& w, const SweepPoint& point,
                            Protocol protocol, const char* bench);

// --- service-mode soak telemetry (schema "firefly-soak-v1") -----------------
// A soak file is JSONL: one header line identifying the run, then one line
// per telemetry window as the soak progresses (streamable: each line is
// complete the moment the window closes), then one summary line.  The same
// determinism contract as bench-v1 applies: same seed, same bytes.

/// Header: {"schema":"firefly-soak-v1",<build info>,"protocol":..,"n":..,
///          "seed":..,"duration_slots":..,"window_slots":..,
///          "snapshot_every_slots":..,"churn_rate_per_min":..,
///          "mean_downtime_ms":..}.
void write_soak_header_json(obs::JsonWriter& w, Protocol protocol,
                            const ScenarioConfig& config,
                            const ServiceConfig& service);

/// One telemetry window: {"window":{...every SoakWindow field...}}.
void write_soak_window_json(obs::JsonWriter& w, const sim::SoakWindow& window);

/// Trailing summary: {"summary":{"windows":..,"windows_dropped":..,
///  "snapshots":..,"relabels":..,"relabels_suppressed":..,
///  "arena_capacity":..,"arena_high_water":..,"metrics":{...}}}.
void write_soak_summary_json(obs::JsonWriter& w, const ServiceReport& report);

}  // namespace firefly::core
