// service_mode.hpp — long-lived service runs: open-ended churn soaks with
// windowed telemetry, rollback snapshots and bounded-memory guarantees.
//
// A one-shot trial (`EngineBase::run`) expands its fault schedule up front,
// runs to convergence or a cap and exits.  A service run never "converges
// and exits": `run_service` slices simulated time into fixed telemetry
// windows and, per window, (1) pulls the next chunk of churn/fades from the
// regenerating fault streams (src/fault/schedule_stream.hpp — infinite,
// seed-replayable, constant memory), (2) drives the simulator to the window
// boundary, (3) emits one sim::SoakWindow through the recorder, (4) prunes
// the protocols' dedup sets on their deterministic cadence (the bounded-
// memory invariant under churn) and (5) optionally takes a rollback
// snapshot.  Every side effect is keyed to absolute slot boundaries, so a
// run resumed from `EngineBase::restore()` replays bit-identically — the
// property test_service_mode pins down to byte-identical RunMetrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "core/scenario.hpp"
#include "fault/fault_injector.hpp"
#include "fault/schedule_stream.hpp"
#include "mac/radio.hpp"
#include "pco/sync_metrics.hpp"
#include "phy/energy.hpp"
#include "sim/simulator.hpp"
#include "sim/soak.hpp"
#include "util/rng.hpp"

namespace firefly::core {

struct ServiceConfig {
  /// Soak horizon in slots (1 slot = 1 ms).  run_service returns when the
  /// clock reaches it; calling run_service again extends the run.
  std::int64_t duration_slots{1'000'000};
  /// Telemetry window length; one SoakWindow per window.
  std::int64_t window_slots{1'000};
  /// Rollback-snapshot cadence in slots; 0 = never.  Snapshots land on the
  /// first window boundary at or past each multiple.
  std::int64_t snapshot_every_slots{0};
  /// Prune the ST flood/announce dedup sets every this many firing periods
  /// (0 = never).  Without pruning those sets grow without bound under
  /// churn; the clears reuse the sets' slot arrays, so steady state is
  /// allocation-free.
  std::uint32_t dedup_clear_periods{8};
  /// Network-wide cap on headless-fragment re-elections per firing period
  /// (0 = unlimited).  Brakes the announce storm after a mass departure.
  std::uint32_t relabel_cap_per_period{8};
};

struct ServiceReport {
  RunMetrics metrics{};
  /// Non-empty: the soak was rejected before anything ran (invalid config,
  /// a fault plan that ends before the horizon, mobility enabled).
  std::string error;
  std::uint64_t windows{0};
  std::uint64_t windows_dropped{0};  ///< recorder ring overwrites (backpressure)
  std::uint64_t snapshots{0};
  std::uint64_t relabels{0};
  std::uint64_t relabels_suppressed{0};
  /// Scheduler-arena footprint at the end of the run (the memory probe).
  std::uint64_t arena_capacity{0};
  std::uint64_t arena_high_water{0};

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Deep copy of an engine's complete mutable state.  Owned by the caller
/// (or by the engine itself for run_service's periodic snapshots); only
/// meaningful against the engine that produced it — the cloned event
/// callbacks capture that engine's addresses.
struct EngineSnapshot {
  sim::Simulator::Snapshot sim;
  std::vector<Device> devices;
  /// SoA core only: the hot region's bytes, verbatim (one memcpy each way),
  /// and the index-aligned neighbour tables (restored element-wise so their
  /// capacity is reused — a restore allocates nothing at steady state).
  std::vector<std::byte> hot_block;
  std::vector<NeighborTable> hot_neighbors;
  std::optional<pco::ConvergenceDetector> detector;
  std::optional<pco::LocalSyncDetector> local_detector;
  std::optional<util::Rng> control_rng;
  std::optional<util::Rng> mobility_rng;
  std::optional<util::Rng> fading_rng;
  mac::RadioMedium::StateSnapshot radio;
  std::optional<phy::EnergyMeter> energy;
  std::optional<fault::FaultInjector> injector;
  std::optional<fault::ChurnStream> churn_stream;
  std::optional<fault::FadeStream> fade_stream;
  std::uint64_t protocol_word = 0;

  // EngineBase scalar state (convergence marks, resilience accumulators,
  // fault and relabel counters).
  std::int64_t sync_slot = -1;
  std::int64_t discovery_slot = -1;
  std::int64_t protocol_slot = -1;
  std::int64_t local_converged_slot = -1;
  std::uint32_t crashes = 0;
  std::uint32_t recoveries = 0;
  bool was_aligned = false;
  std::int64_t resilience_last_slot = -1;
  std::int64_t desync_start = -1;
  std::int64_t observed_slots = 0;
  std::int64_t in_sync_slots = 0;
  std::uint32_t resyncs = 0;
  double resync_sum_ms = 0.0;
  double resync_max_ms = 0.0;
  bool repair_base_set = false;
  std::uint64_t repair_rach2_base = 0;
  std::uint32_t service_fade_episodes = 0;
  std::int64_t relabel_window = -1;
  std::uint32_t relabels_in_window = 0;
  std::uint64_t relabels_total = 0;
  std::uint64_t relabels_suppressed = 0;
};

/// Deploy the scenario and run one service soak of the chosen protocol,
/// streaming windows through `recorder` (may be null).  The service-mode
/// analogue of run_trial.
[[nodiscard]] ServiceReport run_service_trial(Protocol protocol,
                                              const ScenarioConfig& config,
                                              const ServiceConfig& service,
                                              const RunHooks& hooks = {},
                                              sim::SoakRecorder* recorder = nullptr);

}  // namespace firefly::core
