#include "core/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/service_mode.hpp"
#include "fault/schedule_stream.hpp"
#include "graph/union_find.hpp"
#include "pco/prc.hpp"
#include "util/stats.hpp"

namespace firefly::core {

// Out of line: engine.hpp holds unique_ptrs to types (EngineSnapshot, the
// fault streams) that are incomplete there.
EngineBase::~EngineBase() = default;

EngineBase::EngineBase(std::vector<geo::Vec2> positions, ProtocolParams params,
                       phy::RadioParams radio_params, std::uint64_t seed)
    : sim_(params.scheduler),
      channel_(phy::make_paper_channel(seed, radio_params)),
      radio_(&sim_, channel_.get(), radio_params.capture_margin_db),
      params_(params),
      detector_(positions.size(), params.period_slots, params.tolerance_slots),
      local_detector_(positions.size(), params.period_slots, params.tolerance_slots),
      rng_factory_(seed),
      control_rng_(rng_factory_.make("core.control")),
      ranging_(&channel_->pathloss(), radio_params.tx_power),
      energy_(positions.size()),
      mobility_rng_(rng_factory_.make("core.mobility")) {
  soa_ = params_.device_core == DeviceCore::kSoa;
  radio_.set_energy_meter(&energy_);
  devices_.reserve(positions.size());
  for (std::uint32_t id = 0; id < positions.size(); ++id) {
    Device d;
    d.id = id;
    d.position = positions[id];
    d.service = static_cast<std::uint16_t>(control_rng_.uniform_index(params_.service_count));
    d.fragment = static_cast<std::uint16_t>(id);
    devices_.push_back(std::move(d));
  }
  for (Device& d : devices_) {
    mac::RadioMedium::ListenFn listening = nullptr;
    if (params_.duty_cycled()) {
      // Per-device offset spreads the wake windows across the population.
      const auto offset = static_cast<std::int64_t>(
          util::derive_seed(rng_factory_.master_seed(), "core.duty", d.id) %
          params_.duty_period_slots);
      listening = [this, offset] {
        const std::int64_t slot = current_slot();
        return (slot + offset) % params_.duty_period_slots < params_.duty_awake_slots;
      };
    }
    radio_.add_device(d.id, d.position, std::move(listening));
  }
  radio_.rebuild();
  // One call per slot hands the protocol every decoded reception at once;
  // deliver_batched sweeps them in the radio's dispatch order.  Engine ids
  // are dense indices (d.id == its devices_ slot), so rx_index indexes
  // devices_ and the hot arrays directly.
  radio_.set_delivery_sink([this](const mac::RxBatch& batch) { deliver_batched(batch); });

  if (params_.faults.enabled()) {
    injector_ = std::make_unique<fault::FaultInjector>(
        params_.faults, static_cast<std::uint32_t>(devices_.size()),
        params_.max_slots(), seed);
    for (Device& d : devices_) d.drift_ppm = injector_->drift_ppm(d.id);
    install_fault_hook();
    // A faulted run observes behaviour *through* the faults, so it never
    // stops at the first convergence instant.
    params_.stop_on_convergence = false;
  }

  // Links the protocols owe discovery and alignment on: proximity edges
  // whose slot-averaged power clears the threshold with a margin (links
  // right at the threshold decode too rarely to owe either).  The radio's
  // candidate cache (threshold − fading margin, symmetric means) is a
  // superset of this set, so its memoised pairs replace a second O(N²)
  // channel sweep.
  assert(radio_params.reliable_link_margin_db >=
         -phy::RadioParams::kCandidateFadingMarginDb);
  const util::Dbm reliable =
      radio_params.detection_threshold + util::Db{radio_params.reliable_link_margin_db};
  radio_.for_each_candidate_pair([&](std::uint32_t u, std::uint32_t v, util::Dbm mean) {
    if (mean >= reliable) {
      local_detector_.add_edge(u, v);
      reliable_links_.emplace_back(u, v);
    }
  });

  // Hot/cold split: carve the flat arrays and seed them from the structs,
  // picking up every constructor-time write above (fragment labels, drift).
  // From here on all hot reads and writes go through the accessors.
  if (soa_) {
    hot_.build(devices_.size());
    hot_.load_from(devices_);
  }
}

std::int64_t EngineBase::current_slot() const {
  return mac::RadioMedium::slot_index(sim_.now());
}

void EngineBase::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  fires_counter_ =
      telemetry != nullptr ? &telemetry->registry().counter("engine.fires") : nullptr;
  radio_.set_telemetry(telemetry);
}

void EngineBase::schedule_fire(std::uint32_t i) {
  if (down(i)) return;
  if (fire_event(i) != 0) sim_.cancel(fire_event(i));
  const sim::SimTime at = sim::SimTime{next_fire_slot(i) * sim::kLteSlot.us};
  fire_event(i) = sim_.schedule_at(std::max(at, sim_.now()), [this, i] {
    fire_event(i) = 0;
    fire(i);
  });
}

void EngineBase::fire(std::uint32_t i, std::uint32_t post_counter) {
  if (down(i)) return;
  const std::int64_t slot = current_slot();
  last_fire_slot(i) = slot;
  refractory_until_slot(i) = slot + params_.refractory_slots;
  // A reachback-aligned absorption restarts the counter at the absorber's
  // clock offset so the next cycle fires simultaneously with it.
  next_fire_slot(i) =
      slot + params_.period_slots - static_cast<std::int64_t>(post_counter);
  if (drift_ppm(i) != 0.0) {
    // Clock drift: a fast crystal (+ppm) completes its cycle early.  The
    // sub-slot skew accumulates in a residual and is applied one whole slot
    // at a time, so the drift the PRC must fight is exact over any horizon.
    drift_residual(i) +=
        static_cast<double>(params_.period_slots) * drift_ppm(i) * 1e-6;
    const double whole = std::floor(drift_residual(i));
    if (whole != 0.0) {
      next_fire_slot(i) -= static_cast<std::int64_t>(whole);
      drift_residual(i) -= whole;
    }
  }
  emit_fire_broadcast(devices_[i]);
  detector_.record_fire(i, slot);
  local_detector_.record_fire(i, slot);
  if (fires_counter_ != nullptr) fires_counter_->inc();
  trace(TraceKind::kFire, i, post_counter);
  schedule_fire(i);
}

std::uint32_t EngineBase::elapsed_slots(const mac::RxRecord& record) const {
  const std::int64_t sent_slot = record.slot_start.us / sim::kLteSlot.us;
  const std::int64_t elapsed = current_slot() - sent_slot;
  return elapsed > 0 ? static_cast<std::uint32_t>(elapsed) : 0;
}

std::uint16_t EngineBase::counter_field(std::uint32_t i) const {
  return static_cast<std::uint16_t>(counter_at(i, current_slot()) % params_.period_slots);
}

void EngineBase::apply_pulse_coupling(const mac::RxRecord& record) {
  const obs::ScopedTimer span(telemetry_, obs::SpanId::kPcoUpdate,
                              telemetry_ != nullptr ? sim_.now().as_milliseconds() : -1.0);
  const std::uint32_t i = record.rx_index;
  const std::int64_t slot = current_slot();
  if (refractory_at(i, slot)) return;
  // Delay compensation: the pulse was transmitted `elapsed` slots ago, so
  // the PRC applies to the phase the receiver had at transmission time.
  const std::uint32_t elapsed = elapsed_slots(record);
  const std::uint32_t counter = counter_at(i, slot);
  const std::uint32_t counter_then = counter > elapsed ? counter - elapsed : 0;
  const double theta =
      static_cast<double>(counter_then) / static_cast<double>(params_.period_slots);
  const double jumped = pco::apply_prc(std::min(theta, 1.0), params_.prc);
  const auto new_counter = std::max(
      counter, static_cast<std::uint32_t>(
                   std::ceil(jumped * static_cast<double>(params_.period_slots))) + elapsed);
  if (new_counter >= params_.period_slots) {
    // Absorption: fire in this very slot, and restart the counter aligned
    // to the absorbing sender's clock (reachback compensation — without it
    // a slotted radio accumulates one slot of skew per hop and global
    // alignment is unreachable for any pulse-coupled scheme).
    if (fire_event(i) != 0) {
      sim_.cancel(fire_event(i));
      fire_event(i) = 0;
    }
    const Fields f = unpack(record.payload);
    const std::uint32_t aligned = (f.c + elapsed) % params_.period_slots;
    fire(i, aligned);
    return;
  }
  next_fire_slot(i) = slot + (params_.period_slots - new_counter);
  schedule_fire(i);
}

void EngineBase::adopt_counter(std::uint32_t i, std::uint32_t counter) {
  if (down(i)) return;
  const std::int64_t slot = current_slot();
  if (counter >= params_.period_slots) counter %= params_.period_slots;
  next_fire_slot(i) = slot + (params_.period_slots - counter);
  trace(TraceKind::kAdopt, i, counter);
  schedule_fire(i);
}

void EngineBase::update_neighbor(const mac::RxRecord& record) {
  NeighborInfo& info = neighbors(record.rx_index)[record.sender];
  const double rx = record.rx_power.value;
  if (info.heard_count == 0) {
    info.weight_dbm = rx;
  } else {
    info.weight_dbm += params_.weight_ewma * (rx - info.weight_dbm);
  }
  ++info.heard_count;
  info.last_heard_slot = current_slot();
  // Sync pulses and discovery beacons carry (fragment, service); control
  // messages carry other fields, so only refresh from beacons.
  if (record.type == mac::PsType::kSyncPulse || record.type == mac::PsType::kDiscovery) {
    const Fields f = unpack(record.payload);
    info.fragment = f.a;
    info.service = f.b;
  }
}

mac::Preamble EngineBase::random_preamble(mac::RachCodec codec) {
  return mac::Preamble{
      codec, static_cast<std::uint32_t>(control_rng_.uniform_index(mac::kPreamblePoolSize))};
}

bool EngineBase::discovery_complete() const {
  for (const auto& [u, v] : reliable_links_) {
    // A link with a crashed endpoint is waived: the survivor cannot be
    // expected to (re)discover a silent radio.
    if (down(u) || down(v)) continue;
    if (!neighbors(u).contains(v)) return false;
    if (!neighbors(v).contains(u)) return false;
  }
  return true;
}

void EngineBase::start_mobility() {
  // Deployment area inferred as the bounding box of the initial positions
  // (the engines take raw positions, not a scenario).
  double max_x = 1.0, max_y = 1.0;
  for (const Device& d : devices_) {
    max_x = std::max(max_x, d.position.x);
    max_y = std::max(max_y, d.position.y);
  }
  mobility_area_ = geo::Area{max_x, max_y};
  movers_.reserve(devices_.size());
  for (const Device& d : devices_) {
    movers_.emplace_back(d.position, mobility_area_, params_.mobility_speed_mps,
                         params_.mobility_pause_s, &mobility_rng_);
  }
  sim_.schedule_periodic(sim::SimTime::milliseconds(params_.mobility_update_slots),
                         sim::SimTime::milliseconds(params_.mobility_update_slots),
                         [this] { mobility_step(); });
}

void EngineBase::mobility_step() {
  const double dt_s = static_cast<double>(params_.mobility_update_slots) * 1e-3;
  for (Device& d : devices_) {
    d.position = movers_[d.id].advance(dt_s);
    radio_.move_device(d.id, d.position);
  }
  // Large-scale state changed: link shadowing decorrelates and the
  // memoised means are stale.  Cell membership already tracked the moves
  // incrementally inside move_device; rebuild() re-enumerates candidates
  // from the maintained grid.
  channel_->shadowing().invalidate();
  radio_.rebuild();
}

void EngineBase::check_convergence() {
  const std::int64_t slot = current_slot();
  if (local_converged_slot_ < 0) {
    const auto local = local_detector_.converged_at(slot);
    if (local.has_value()) local_converged_slot_ = *local;
  }
  if (discovery_slot_ < 0 && discovery_complete()) {
    discovery_slot_ = slot;
    trace(TraceKind::kDiscovery, 0, static_cast<std::uint32_t>(slot));
  }
  if (protocol_slot_ < 0 && protocol_complete()) protocol_slot_ = slot;
  if (sync_slot_ < 0) {
    const auto converged = detector_.converged_at(slot);
    if (converged.has_value()) {
      sync_slot_ = *converged;
      trace(TraceKind::kSync, 0, static_cast<std::uint32_t>(*converged));
    }
  }
  if (sync_slot_ >= 0) sample_resilience(slot);
  const bool sync_ok = !requires_sync() || sync_slot_ >= 0;
  if (sync_ok && discovery_slot_ >= 0 && protocol_slot_ >= 0) {
    if (!repair_base_set_) {
      // Everything RACH2 spends from here on is repair traffic, not
      // first-formation traffic.
      repair_base_set_ = true;
      repair_rach2_base_ = radio_.counters().rach2_tx;
    }
    if (params_.stop_on_convergence) sim_.stop();
  }
}

void EngineBase::sample_resilience(std::int64_t slot) {
  const bool aligned = detector_.aligned_now();
  if (resilience_last_slot_ >= 0) {
    const std::int64_t dt = slot - resilience_last_slot_;
    if (dt > 0) {
      observed_slots_ += dt;
      if (was_aligned_) in_sync_slots_ += dt;
    }
    if (was_aligned_ && !aligned) {
      desync_start_ = slot;
    } else if (!was_aligned_ && aligned && desync_start_ >= 0) {
      const auto duration_ms = static_cast<double>(slot - desync_start_);
      ++resyncs_;
      resync_sum_ms_ += duration_ms;
      resync_max_ms_ = std::max(resync_max_ms_, duration_ms);
      desync_start_ = -1;
    }
  }
  was_aligned_ = aligned;
  resilience_last_slot_ = slot;
}

RunMetrics EngineBase::run() {
  start_run();
  const sim::SimTime deadline = sim::SimTime::milliseconds(params_.max_slots());
  sim_.run_until(deadline);
  return collect_metrics();
}

void EngineBase::start_run() {
  // Random initial phases (paper: devices start unsynchronised).
  for (std::uint32_t i = 0; i < devices_.size(); ++i) {
    next_fire_slot(i) = static_cast<std::int64_t>(
        control_rng_.uniform_index(params_.period_slots)) + 1;
    schedule_fire(i);
  }
  [[maybe_unused]] const auto checker = sim_.schedule_periodic(
      sim::SimTime::milliseconds(params_.check_interval_slots),
      sim::SimTime::milliseconds(params_.check_interval_slots),
      [this] { check_convergence(); });
  if (params_.mobility_speed_mps > 0.0) start_mobility();
  on_start();
  if (injector_ != nullptr) schedule_fault_events();
}

void EngineBase::install_fault_hook() {
  if (!params_.faults.channel_enabled()) return;
  radio_.set_fault_hook(
      [this](std::uint32_t sender, std::uint32_t receiver, mac::PsType /*type*/,
             util::Dbm power) -> std::optional<util::Dbm> {
        if (injector_->drop_reception()) return std::nullopt;
        const double attenuation_db = injector_->link_attenuation_db(sender, receiver);
        if (attenuation_db > 0.0) {
          power = power - util::Db{attenuation_db};
          // A faded-below-threshold reception is a fault drop, not an
          // ordinary out-of-range miss.
          if (!channel_->detectable(power)) return std::nullopt;
        }
        return power;
      });
}

void EngineBase::schedule_fault_events() {
  // A service run has no fixed horizon: churn and fades come from the
  // regenerating streams, one telemetry window at a time
  // (schedule_service_faults).  Drift and the drop/fade delivery hook were
  // installed in the constructor and stay live either way.
  if (service_mode_) return;
  for (const fault::ChurnEvent& e : injector_->churn_schedule()) {
    sim_.schedule_at(sim::SimTime::milliseconds(e.slot), [this, e] {
      if (e.crash) {
        crash_device(e.device);
      } else {
        recover_device(e.device);
      }
    });
  }
  for (const fault::FadeEpisode& f : injector_->fade_schedule()) {
    sim_.schedule_at(sim::SimTime::milliseconds(f.start_slot), [this, f] {
      injector_->fade_started(f);
      trace(TraceKind::kFadeStart, f.u, f.u, f.v);
    });
    sim_.schedule_at(sim::SimTime::milliseconds(f.end_slot), [this, f] {
      injector_->fade_ended(f);
      trace(TraceKind::kFadeEnd, f.u, f.u, f.v);
    });
  }
}

void EngineBase::crash_device(std::uint32_t id) {
  if (down(id)) return;
  down(id) = true;
  if (fire_event(id) != 0) {
    sim_.cancel(fire_event(id));
    fire_event(id) = 0;
  }
  radio_.set_down(id, true);
  detector_.set_active(id, false);
  local_detector_.set_active(id, false);
  ++crashes_;
  trace(TraceKind::kCrash, id);
}

void EngineBase::recover_device(std::uint32_t id) {
  if (!down(id)) return;
  down(id) = false;
  radio_.set_down(id, false);
  detector_.set_active(id, true);
  local_detector_.set_active(id, true);
  // Cold boot: volatile state is gone.  The crystal (and its drift) is the
  // same physical part, so drift_ppm survives.
  neighbors(id).clear();
  last_fire_slot(id) = -1;
  refractory_until_slot(id) = -1;
  drift_residual(id) = 0.0;
  next_fire_slot(id) = current_slot() + 1 +
                       static_cast<std::int64_t>(
                           control_rng_.uniform_index(params_.period_slots));
  schedule_fire(id);
  on_recover(devices_[id]);
  ++recoveries_;
  trace(TraceKind::kRecover, id);
}

bool EngineBase::relabel_permitted() {
  const std::int64_t window = current_slot() / params_.period_slots;
  if (window != relabel_window_) {
    relabel_window_ = window;
    relabels_in_window_ = 0;
  }
  if (relabel_cap_per_period_ != 0 && relabels_in_window_ >= relabel_cap_per_period_) {
    ++relabels_suppressed_;
    return false;
  }
  ++relabels_in_window_;
  ++relabels_total_;
  return true;
}

RunMetrics EngineBase::collect_metrics() {
  RunMetrics metrics;
  const bool sync_ok = !requires_sync() || sync_slot_ >= 0;
  metrics.converged = sync_ok && discovery_slot_ >= 0 && protocol_slot_ >= 0;
  metrics.convergence_ms =
      metrics.converged
          ? static_cast<double>(std::max(
                std::max(requires_sync() ? sync_slot_ : 0, discovery_slot_), protocol_slot_))
          : static_cast<double>(params_.max_slots());
  metrics.sync_ms = sync_slot_ >= 0 ? static_cast<double>(sync_slot_)
                                    : static_cast<double>(params_.max_slots());
  metrics.discovery_ms = discovery_slot_ >= 0 ? static_cast<double>(discovery_slot_)
                                              : static_cast<double>(params_.max_slots());
  metrics.locally_converged = local_converged_slot_ >= 0;
  metrics.local_sync_ms = metrics.locally_converged
                              ? static_cast<double>(local_converged_slot_)
                              : static_cast<double>(params_.max_slots());
  finalize_metrics(metrics);
  fill_protocol_metrics(metrics);
  return metrics;
}

void EngineBase::finalize_metrics(RunMetrics& metrics) const {
  const mac::TrafficCounters& traffic = radio_.counters();
  metrics.rach1_messages = traffic.rach1_tx;
  metrics.rach2_messages = traffic.rach2_tx;
  metrics.collisions = traffic.collisions;
  metrics.deliveries = traffic.deliveries;
  metrics.events_processed = sim_.events_processed();
  metrics.simulated_ms = sim_.now().as_milliseconds();

  // Resilience observables (all zero on fault-free runs).
  metrics.crashes = crashes_;
  metrics.recoveries = recoveries_;
  // Service mode counts episodes as the stream emits them; the injector's
  // pre-generated schedule is unused there.
  metrics.fade_episodes =
      service_mode_ ? service_fade_episodes_
                    : (injector_ != nullptr
                           ? static_cast<std::uint32_t>(injector_->fade_schedule().size())
                           : 0);
  metrics.fault_drops = traffic.fault_drops;
  metrics.resyncs = resyncs_;
  metrics.mean_resync_ms = resyncs_ > 0 ? resync_sum_ms_ / resyncs_ : 0.0;
  metrics.max_resync_ms = resync_max_ms_;
  metrics.sync_uptime =
      observed_slots_ > 0
          ? static_cast<double>(in_sync_slots_) / static_cast<double>(observed_slots_)
          : (sync_slot_ >= 0 ? 1.0 : 0.0);
  metrics.in_sync_at_end = sync_slot_ >= 0 && was_aligned_;
  metrics.repair_messages =
      repair_base_set_ ? traffic.rach2_tx - repair_rach2_base_ : 0;
  std::uint32_t alive = 0;
  for (std::uint32_t i = 0; i < devices_.size(); ++i) {
    if (!down(i)) ++alive;
  }
  metrics.alive_at_end = alive;
  // Partition diagnosis: connect the reliable links whose endpoints are both
  // alive; if more than one component of live devices remains, no protocol
  // can merge them into a single synchronised fragment.
  graph::UnionFind components(devices_.size());
  for (const auto& [u, v] : reliable_links_) {
    if (!down(u) && !down(v)) components.unite(u, v);
  }
  std::int64_t root = -1;
  bool split = false;
  for (std::uint32_t i = 0; i < devices_.size(); ++i) {
    if (down(i)) continue;
    const std::uint32_t r = components.find(i);
    if (root < 0) {
      root = r;
    } else if (r != static_cast<std::uint32_t>(root)) {
      split = true;
      break;
    }
  }
  metrics.partitioned = split || alive == 0;

  util::RunningStats neighbor_counts;
  util::RunningStats service_peers;
  util::Sample rel_errors;
  for (std::uint32_t i = 0; i < devices_.size(); ++i) {
    const Device& d = devices_[i];
    const NeighborTable& table = neighbors(i);
    neighbor_counts.add(static_cast<double>(table.size()));
    std::size_t peers = 0;
    for (const auto& [other_id, info] : table) {
      if (info.service == d.service) ++peers;
      const double true_dist =
          geo::distance(d.position, devices_[other_id].position);
      if (true_dist > 0.0) {
        // RSSI ranging estimate, derived from the EWMA weight on demand
        // (inverting the path-loss model per delivery was pure waste: the
        // estimate is only ever read here and by post-run reports).
        const double est = ranging_.estimate_distance(util::Dbm{info.weight_dbm});
        rel_errors.add(std::fabs(est / true_dist - 1.0));
      }
    }
    service_peers.add(static_cast<double>(peers));
  }
  metrics.mean_neighbors_discovered = neighbor_counts.mean();
  metrics.mean_service_peers = service_peers.mean();
  metrics.ranging_mean_abs_rel_error = rel_errors.mean();
  metrics.ranging_p90_rel_error = rel_errors.count() > 0 ? rel_errors.percentile(90.0) : 0.0;

  const std::int64_t elapsed_slots = mac::RadioMedium::slot_index(sim_.now());
  const double awake = params_.awake_fraction();
  metrics.total_energy_mj = energy_.total_energy_mj(elapsed_slots, awake);
  metrics.mean_device_energy_mj = energy_.mean_energy_mj(elapsed_slots, awake);
  metrics.energy_per_neighbor_mj =
      metrics.mean_neighbors_discovered > 0.0
          ? metrics.mean_device_energy_mj / metrics.mean_neighbors_discovered
          : 0.0;
}

}  // namespace firefly::core
