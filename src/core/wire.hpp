// wire.hpp — payload packing for proximity signals.
//
// A PS payload is a single uint64; the protocols pack four 16-bit fields
// into it.  Field meaning depends on the PsType:
//
//   kSyncPulse / kDiscovery : a = sender's fragment id, b = service id
//   kConnectRequest         : a = target device, b = sender fragment,
//                             c = sender fragment size
//   kConnectAccept          : a = target device, b = sender fragment,
//                             c = sender fragment size, d = sender counter
//   kMergeAnnounce          : a = winner fragment, b = loser fragment,
//                             c = relayer counter, d = winner fragment size
//   kHeadToken              : a = target device, b = fragment id
//
// Device ids, fragment ids (head device ids at creation time), sizes and
// slot counters all fit in 16 bits for the scales the paper evaluates
// (N <= 1000, period 100 slots).
#pragma once

#include <cstdint>

namespace firefly::core {

inline constexpr std::uint16_t kInvalidId = 0xFFFF;

struct Fields {
  std::uint16_t a{0};
  std::uint16_t b{0};
  std::uint16_t c{0};
  std::uint16_t d{0};
};

[[nodiscard]] constexpr std::uint64_t pack(Fields f) {
  return static_cast<std::uint64_t>(f.a) | (static_cast<std::uint64_t>(f.b) << 16) |
         (static_cast<std::uint64_t>(f.c) << 32) | (static_cast<std::uint64_t>(f.d) << 48);
}

[[nodiscard]] constexpr Fields unpack(std::uint64_t payload) {
  return Fields{static_cast<std::uint16_t>(payload & 0xFFFF),
                static_cast<std::uint16_t>((payload >> 16) & 0xFFFF),
                static_cast<std::uint16_t>((payload >> 32) & 0xFFFF),
                static_cast<std::uint16_t>((payload >> 48) & 0xFFFF)};
}

/// Merge-announce dedup key.
[[nodiscard]] constexpr std::uint32_t merge_key(std::uint16_t winner, std::uint16_t loser) {
  return (static_cast<std::uint32_t>(winner) << 16) | loser;
}

}  // namespace firefly::core
