// neighbor_table.hpp — the per-device neighbour table.
//
// `NeighborTable` is a flat open-addressed hash map from neighbour id to
// NeighborInfo, tuned for the simulator's hottest loop: update_neighbor
// runs once per decoded PS (millions of times per large trial), and the
// std::unordered_map it replaces dominated the wall-clock profile with
// pointer-chasing bucket walks.  Key and value live together in one
// power-of-two slot array, so a lookup is a single probe into a single
// allocation — one cache line touched for the common hit-on-first-probe
// case.  The protocols never erase individual neighbours — staleness is
// expressed through last_heard_slot — so the table only needs
// insert-or-find, lookup, clear and iteration, and probing never meets a
// tombstone.  Iteration visits slots in index order, which is a pure
// function of the insertion sequence (deterministic deliveries ⇒
// deterministic iteration).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/wire.hpp"

namespace firefly::core {

/// What a device knows about a neighbour, learnt entirely from PSs.
struct NeighborInfo {
  double weight_dbm{-200.0};        ///< EWMA of received PS power (the edge weight)
  std::uint16_t fragment{kInvalidId};
  std::uint16_t service{0};
  std::int64_t last_heard_slot{-1};
  std::uint32_t heard_count{0};
};

class NeighborTable {
 public:
  /// Slot layout mirrors std::pair so call sites keep the map idioms:
  /// `it->second`, `for (const auto& [id, info] : table)`.
  struct value_type {
    std::uint32_t first{kEmptyKey};
    NeighborInfo second{};
  };

  template <typename V>
  class basic_iterator {
   public:
    basic_iterator(V* p, V* end) : p_(p), end_(end) {
      while (p_ != end_ && p_->first == kEmptyKey) ++p_;
    }
    [[nodiscard]] V& operator*() const { return *p_; }
    [[nodiscard]] V* operator->() const { return p_; }
    basic_iterator& operator++() {
      ++p_;
      while (p_ != end_ && p_->first == kEmptyKey) ++p_;
      return *this;
    }
    [[nodiscard]] bool operator==(const basic_iterator& o) const { return p_ == o.p_; }
    [[nodiscard]] bool operator!=(const basic_iterator& o) const { return p_ != o.p_; }

   private:
    V* p_;
    V* end_;
  };
  using iterator = basic_iterator<value_type>;
  using const_iterator = basic_iterator<const value_type>;

  /// Find-or-insert.  References stay valid until the next insertion.
  [[nodiscard]] NeighborInfo& operator[](std::uint32_t id) {
    if (slots_.empty()) slots_.assign(kMinSlots, value_type{});
    std::size_t slot = probe(id);
    if (slots_[slot].first != id) {
      if ((size_ + 1) * 4 > slots_.size() * 3) {  // load factor 3/4
        rehash(slots_.size() * 2);
        slot = probe(id);
      }
      slots_[slot] = value_type{id, NeighborInfo{}};
      ++size_;
    }
    return slots_[slot].second;
  }

  /// Pull `id`'s probe-chain head into cache ahead of an operator[] call.
  /// Purely a hint — no table state changes, any id is safe.  The delivery
  /// loop issues these one receiver bucket ahead, which hides the random
  /// DRAM access update_neighbor's probe would otherwise stall on (the
  /// slot arrays of a large population far exceed the last-level cache).
  void prefetch(std::uint32_t id) const {
#if defined(__GNUC__) || defined(__clang__)
    if (slots_.empty()) return;
    const std::size_t mask = slots_.size() - 1;
    const std::size_t slot =
        static_cast<std::size_t>((id * 0x9E3779B97F4A7C15ULL) >> 32) & mask;
    __builtin_prefetch(&slots_[slot], 1);
#else
    (void)id;
#endif
  }

  [[nodiscard]] iterator find(std::uint32_t id) {
    const std::size_t slot = slot_of(id);
    return slot == kNotFound ? end() : iterator(slots_.data() + slot, slots_end());
  }
  [[nodiscard]] const_iterator find(std::uint32_t id) const {
    const std::size_t slot = slot_of(id);
    return slot == kNotFound ? end() : const_iterator(slots_.data() + slot, slots_end());
  }
  [[nodiscard]] bool contains(std::uint32_t id) const { return slot_of(id) != kNotFound; }
  [[nodiscard]] std::size_t count(std::uint32_t id) const { return contains(id) ? 1 : 0; }
  [[nodiscard]] const NeighborInfo& at(std::uint32_t id) const {
    const std::size_t slot = slot_of(id);
    if (slot == kNotFound) throw std::out_of_range("NeighborTable::at");
    return slots_[slot].second;
  }

  /// Pre-size for up to `max_entries` keys so no future insertion rehashes.
  /// Growth-only, and the slot count stays the same power-of-two sequence a
  /// demand-driven table would reach — only the *timing* of the growth
  /// moves.  Service mode calls this with the domain bound (n−1 possible
  /// neighbours) so a soak's steady state never sets a new size record.
  void reserve(std::size_t max_entries) {
    std::size_t want = kMinSlots;
    while (max_entries * 4 > want * 3) want *= 2;  // mirrors the insert check
    if (slots_.empty()) {
      slots_.assign(want, value_type{});
    } else if (want > slots_.size()) {
      rehash(want);
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Empties the table but keeps the slot array: a cleared table belongs to
  /// a recovering device and refills within a few periods, so retention
  /// makes crash/recover churn rehash- and allocation-free (the service
  /// heap gate measures this).  Peak size is bounded by the n−1 possible
  /// neighbours, so what is retained is bounded too.
  void clear() {
    std::fill(slots_.begin(), slots_.end(), value_type{});
    size_ = 0;
  }

  [[nodiscard]] iterator begin() { return {slots_.data(), slots_end()}; }
  [[nodiscard]] iterator end() { return {slots_end(), slots_end()}; }
  [[nodiscard]] const_iterator begin() const { return {slots_.data(), slots_end()}; }
  [[nodiscard]] const_iterator end() const { return {slots_end(), slots_end()}; }

 private:
  /// Reserved key marking an empty slot; no simulated device carries it
  /// (engine ids are dense indices, wire ids fit 16 bits).
  static constexpr std::uint32_t kEmptyKey = 0xFFFFFFFFU;
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinSlots = 16;

  [[nodiscard]] value_type* slots_end() { return slots_.data() + slots_.size(); }
  [[nodiscard]] const value_type* slots_end() const { return slots_.data() + slots_.size(); }

  /// Slot holding `id`, or the first empty slot on its probe chain.
  [[nodiscard]] std::size_t probe(std::uint32_t id) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot =
        static_cast<std::size_t>((id * 0x9E3779B97F4A7C15ULL) >> 32) & mask;
    while (slots_[slot].first != kEmptyKey && slots_[slot].first != id) {
      slot = (slot + 1) & mask;
    }
    return slot;
  }

  [[nodiscard]] std::size_t slot_of(std::uint32_t id) const {
    if (slots_.empty()) return kNotFound;
    const std::size_t slot = probe(id);
    return slots_[slot].first == id ? slot : kNotFound;
  }

  void rehash(std::size_t new_slots) {
    std::vector<value_type> old = std::move(slots_);
    slots_.assign(new_slots, value_type{});
    for (value_type& v : old) {
      if (v.first != kEmptyKey) slots_[probe(v.first)] = v;
    }
  }

  std::vector<value_type> slots_;  ///< open-addressed, key + value inline
  std::size_t size_ = 0;
};

}  // namespace firefly::core
