#include "fault/schedule_stream.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace firefly::fault {

std::string validate_service_horizon(const FaultPlan& plan, std::int64_t duration_slots) {
  if (!plan.churn_enabled()) return {};
  if (plan.churn_rate_per_min > 0.0) {
    if (plan.churn_stop_ms >= 0.0 &&
        plan.churn_stop_ms < static_cast<double>(duration_slots)) {
      return "churn stops at " + std::to_string(static_cast<std::int64_t>(plan.churn_stop_ms)) +
             " ms but the soak runs to slot " + std::to_string(duration_slots) +
             "; the tail would be silently fault-free — raise churn_stop_ms past the "
             "horizon or set it negative (churn for the whole run)";
    }
    return {};
  }
  // Scheduled-only churn: the scripted list must reach the horizon.
  std::int64_t last = -1;
  for (const ChurnEvent& e : plan.scheduled) last = std::max(last, e.slot);
  if (last + 1 < duration_slots) {
    return "scheduled churn ends at slot " + std::to_string(last) +
           " but the soak runs to slot " + std::to_string(duration_slots) +
           "; the tail would be silently fault-free — add churn_rate_per_min, extend "
           "the scheduled events, or shorten the soak";
  }
  return {};
}

ChurnStream::ChurnStream(const FaultPlan& plan, std::uint32_t device_count,
                         std::uint64_t master_seed)
    : rate_per_slot_(plan.churn_rate_per_min / 60'000.0),
      stop_ms_(plan.churn_stop_ms),
      mean_downtime_ms_(std::max(1.0, plan.mean_downtime_ms)),
      device_count_(device_count),
      rng_(util::derive_seed(master_seed, "fault.churn")),
      down_until_(device_count, -1),
      scheduled_(plan.scheduled) {
  std::stable_sort(scheduled_.begin(), scheduled_.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) { return a.slot < b.slot; });
}

void ChurnStream::generate_until(std::int64_t to_slot, std::vector<ChurnEvent>& out) {
  assert(to_slot >= generated_to_);
  // Scheduled events are merged at their slot, *between* random arrivals, so
  // the interleaving (and hence the caller's schedule order for same-slot
  // events) does not depend on where the chunk boundary falls.
  const auto emit_scheduled_upto = [&](double t_limit) {
    while (scheduled_cursor_ < scheduled_.size() &&
           scheduled_[scheduled_cursor_].slot < to_slot &&
           static_cast<double>(scheduled_[scheduled_cursor_].slot) <= t_limit) {
      const ChurnEvent& e = scheduled_[scheduled_cursor_++];
      if (e.device < device_count_) out.push_back(e);
    }
  };

  if (rate_per_slot_ > 0.0 && device_count_ > 0 && !stopped_) {
    const auto to = static_cast<double>(to_slot);
    while (true) {
      if (!have_pending_) {
        pending_t_ += rng_.exponential(rate_per_slot_);
        have_pending_ = true;
        if (stop_ms_ >= 0.0 && pending_t_ >= stop_ms_) {
          stopped_ = true;  // mirror the batch injector: the process ends here
          break;
        }
      }
      if (pending_t_ >= to) break;  // beyond this chunk: keep it pending
      emit_scheduled_upto(pending_t_);
      const auto slot = static_cast<std::int64_t>(pending_t_);
      // Per-arrival draw order (device, then downtime) matches the batch
      // injector so the two processes stay recognisably related; the draws
      // are consumed even for absorbed arrivals, exactly like the batch.
      const auto device = static_cast<std::uint32_t>(rng_.uniform_index(device_count_));
      const auto downtime = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(rng_.exponential(1.0 / mean_downtime_ms_)));
      have_pending_ = false;
      if (down_until_[device] < slot) {
        down_until_[device] = slot + downtime;
        out.push_back(ChurnEvent{slot, device, true});
        out.push_back(ChurnEvent{slot + downtime, device, false});
      }
    }
  }
  emit_scheduled_upto(std::numeric_limits<double>::infinity());
  generated_to_ = to_slot;
}

FadeStream::FadeStream(const FaultPlan& plan, std::uint32_t device_count,
                       std::uint64_t master_seed)
    : rate_per_slot_(plan.fade_rate_per_min / 60'000.0),
      mean_duration_ms_(std::max(1.0, plan.fade_mean_duration_ms)),
      device_count_(device_count),
      rng_(util::derive_seed(master_seed, "fault.fade")) {}

void FadeStream::generate_until(std::int64_t to_slot, std::vector<FadeEpisode>& out) {
  assert(to_slot >= generated_to_);
  if (rate_per_slot_ > 0.0 && device_count_ >= 2) {
    const auto to = static_cast<double>(to_slot);
    while (true) {
      if (!have_pending_) {
        pending_t_ += rng_.exponential(rate_per_slot_);
        have_pending_ = true;
      }
      if (pending_t_ >= to) break;
      const auto slot = static_cast<std::int64_t>(pending_t_);
      const auto u = static_cast<std::uint32_t>(rng_.uniform_index(device_count_));
      auto v = static_cast<std::uint32_t>(rng_.uniform_index(device_count_ - 1));
      if (v >= u) ++v;
      const auto duration = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(rng_.exponential(1.0 / mean_duration_ms_)));
      have_pending_ = false;
      // No horizon clamp: the service loop has no horizon.  An end slot past
      // the soak's duration simply schedules a fade_ended that never fires.
      out.push_back(FadeEpisode{slot, slot + duration, std::min(u, v), std::max(u, v)});
    }
  }
  generated_to_ = to_slot;
}

}  // namespace firefly::fault
