// fault_injector.hpp — expands a FaultPlan into a concrete, replayable
// fault schedule and answers the delivery-time fault queries.
//
// All schedules (churn transitions, fade episodes, per-device drift) are
// pre-generated at construction from named substreams of the master seed
// ("fault.churn", "fault.fade", "fault.drift", "fault.drop"), so the whole
// fault sequence of a run is fixed before the first event executes and can
// be inspected, logged or asserted on.  The engine owns the simulator, so
// it — not the injector — schedules the events; the injector only keeps the
// *active-fade* set current (via `fade_started`/`fade_ended` callbacks the
// engine invokes at episode boundaries) and draws the i.i.d. drop stream in
// radio delivery order, which the single-threaded event loop makes
// deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "fault/fault_plan.hpp"
#include "util/rng.hpp"

namespace firefly::fault {

class FaultInjector {
 public:
  /// Expands `plan` for `device_count` devices over `horizon_slots` slots of
  /// simulated time (1 slot = 1 ms).  Pure function of its arguments.
  FaultInjector(FaultPlan plan, std::uint32_t device_count, std::int64_t horizon_slots,
                std::uint64_t master_seed);

  /// Churn transitions sorted by slot; crash/recover pairs interleaved.
  /// A device is never crashed while already down.
  [[nodiscard]] const std::vector<ChurnEvent>& churn_schedule() const { return churn_; }
  /// Fade episodes sorted by start slot.
  [[nodiscard]] const std::vector<FadeEpisode>& fade_schedule() const { return fades_; }
  /// This device's oscillator skew in ppm (0 when drift is disabled).
  [[nodiscard]] double drift_ppm(std::uint32_t device) const;

  // --- active-fade bookkeeping (engine calls at episode boundaries) ---
  void fade_started(const FadeEpisode& episode);
  void fade_ended(const FadeEpisode& episode);
  /// Extra attenuation currently on link (a, b), in dB (0 when clear).
  [[nodiscard]] double link_attenuation_db(std::uint32_t a, std::uint32_t b) const;

  /// One i.i.d. drop draw (delivery order = draw order).  False when the
  /// plan has no drop knob, without consuming randomness.
  [[nodiscard]] bool drop_reception();

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  [[nodiscard]] static std::uint64_t link_key(std::uint32_t a, std::uint32_t b);
  void generate_churn(const util::RngFactory& factory, std::uint32_t device_count,
                      std::int64_t horizon_slots);
  void generate_fades(const util::RngFactory& factory, std::uint32_t device_count,
                      std::int64_t horizon_slots);

  FaultPlan plan_;
  std::vector<ChurnEvent> churn_;
  std::vector<FadeEpisode> fades_;
  std::vector<double> drift_ppm_;
  // A link can be covered by overlapping episodes; count them so an episode
  // ending early does not clear a fade another episode still holds.
  std::unordered_multiset<std::uint64_t> active_fades_;
  util::Rng drop_rng_;
};

}  // namespace firefly::fault
