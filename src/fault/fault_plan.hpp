// fault_plan.hpp — declarative description of the faults one run injects.
//
// The paper (like most of the pulse-coupled-sync literature it builds on)
// evaluates the happy path: static nodes, ideal oscillators, losses limited
// to preamble collisions.  A `FaultPlan` describes the three fault families
// real D2D deployments add on top — node churn, oscillator drift and
// channel faults — as *parameters of a deterministic process*: the concrete
// schedule is expanded by `FaultInjector` from named RNG substreams of the
// run's master seed, so two runs with the same seed and the same plan see
// bit-identical fault sequences regardless of thread placement.
//
// All rates are network-wide arrival rates of a Poisson process (events per
// simulated minute); durations are exponential with the given mean.  An
// empty plan (`enabled() == false`) costs nothing: no injector is built and
// the radio keeps its fault-free delivery path.
#pragma once

#include <cstdint>
#include <vector>

namespace firefly::fault {

/// One scheduled churn transition.  `crash == true` takes the device down
/// (radio silent, timers parked, oscillator stopped); `false` brings it
/// back with a full cold-boot state reset.
struct ChurnEvent {
  std::int64_t slot{0};
  std::uint32_t device{0};
  bool crash{true};

  friend constexpr bool operator==(const ChurnEvent&, const ChurnEvent&) = default;
};

/// A deep-fade episode: the link (u, v) is attenuated by `FaultPlan::
/// fade_depth_db` in both directions for [start_slot, end_slot).  Models
/// correlated burst loss (body blocking, a bus driving through the path)
/// that the i.i.d. fast-fading model cannot produce.
struct FadeEpisode {
  std::int64_t start_slot{0};
  std::int64_t end_slot{0};
  std::uint32_t u{0};
  std::uint32_t v{0};

  friend constexpr bool operator==(const FadeEpisode&, const FadeEpisode&) = default;
};

struct FaultPlan {
  // --- node churn ---
  /// Random crash arrivals across the whole network, per simulated minute.
  double churn_rate_per_min{0.0};
  /// Mean downtime before the crashed device cold-boots (exponential).
  double mean_downtime_ms{2000.0};
  /// Inject no *random* churn after this instant (< 0: churn for the whole
  /// run).  A quiet tail lets resilience benches assert re-convergence.
  double churn_stop_ms{-1.0};
  /// Deterministic, caller-specified churn (replayed verbatim, merged with
  /// the random schedule).  Slots beyond the run horizon never fire.
  std::vector<ChurnEvent> scheduled;

  // --- clock drift ---
  /// Per-device oscillator skew drawn uniformly from [-max, +max] ppm of
  /// the 1 ms slot clock.  0 disables drift.
  double drift_max_ppm{0.0};

  // --- channel faults ---
  /// i.i.d. per-reception drop probability at the radio, independent of the
  /// collision model (decoder glitches, off-channel interference bursts).
  double drop_probability{0.0};
  /// Deep-fade episode arrivals across the whole network, per minute.
  double fade_rate_per_min{0.0};
  /// Mean episode duration (exponential).
  double fade_mean_duration_ms{500.0};
  /// Attenuation applied to the faded link; 60 dB puts any Table I link far
  /// below the detection threshold (a full outage).
  double fade_depth_db{60.0};

  [[nodiscard]] bool churn_enabled() const {
    return churn_rate_per_min > 0.0 || !scheduled.empty();
  }
  [[nodiscard]] bool channel_enabled() const {
    return drop_probability > 0.0 || fade_rate_per_min > 0.0;
  }
  [[nodiscard]] bool enabled() const {
    return churn_enabled() || channel_enabled() || drift_max_ppm > 0.0;
  }
};

}  // namespace firefly::fault
