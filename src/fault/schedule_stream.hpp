// schedule_stream.hpp — infinite, seed-replayable regenerating fault
// schedules for service-mode soaks.
//
// The batch `FaultInjector` expands a FaultPlan over a fixed horizon at
// construction; an open-ended service run has no fixed horizon.  The streams
// here keep the Poisson processes' continuation state as members — the RNG
// engine, the one arrival that was drawn but landed beyond the last chunk,
// per-device downtime — so the engine can pull the schedule chunk by chunk,
// one telemetry window at a time, forever, in constant memory.  The emitted
// sequence is a pure function of (plan, device_count, master_seed) and is
// *chunk-invariant*: slicing the same horizon into different chunk sizes
// yields the identical concatenated event list (test_schedule_stream
// asserts this).  Both streams are copyable, so an engine snapshot captures
// the stream position and a restored run replays the exact same tail.
//
// Draws come from the same named substreams as the batch injector
// ("fault.churn", "fault.fade"), but interleaved per arrival instead of
// batched per phase, so a stream schedule is its own deterministic process,
// not a replay of the batch one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "util/rng.hpp"

namespace firefly::fault {

/// Check that `plan`'s churn actually covers a soak of `duration_slots`
/// (1 slot = 1 ms): a finite schedule that ends early would leave the rest
/// of the soak silently fault-free, which is never what a churn soak means.
/// Returns "" when the plan is usable, else a human-readable error.
[[nodiscard]] std::string validate_service_horizon(const FaultPlan& plan,
                                                   std::int64_t duration_slots);

/// Regenerating churn process: Poisson crash arrivals with exponential
/// downtimes, plus the plan's caller-scheduled events merged in slot order.
class ChurnStream {
 public:
  ChurnStream(const FaultPlan& plan, std::uint32_t device_count,
              std::uint64_t master_seed);

  /// Append every event whose *generation point* lies in
  /// [generated_to(), to_slot) to `out`: crash events land at their arrival
  /// slot; each crash's paired recover event is emitted immediately even
  /// when its slot falls beyond `to_slot` (the caller schedules it wherever
  /// it lands — that is what makes the output chunk-invariant).  A device
  /// that is still down when a crash arrival hits it absorbs the arrival,
  /// exactly like the batch injector.
  void generate_until(std::int64_t to_slot, std::vector<ChurnEvent>& out);

  [[nodiscard]] std::int64_t generated_to() const { return generated_to_; }

 private:
  double rate_per_slot_ = 0.0;
  double stop_ms_ = -1.0;
  double mean_downtime_ms_ = 1.0;
  std::uint32_t device_count_ = 0;
  util::Rng rng_;
  // The one arrival drawn past the end of the previous chunk.  It must be
  // kept, not re-drawn: re-drawing would make the sequence depend on where
  // the chunk boundaries fell.
  bool have_pending_ = false;
  double pending_t_ = 0.0;
  bool stopped_ = false;  // churn_stop_ms reached: no further draws, ever
  std::vector<std::int64_t> down_until_;
  std::vector<ChurnEvent> scheduled_;  // plan.scheduled, sorted by slot
  std::size_t scheduled_cursor_ = 0;
  std::int64_t generated_to_ = 0;
};

/// Regenerating deep-fade process: Poisson episode arrivals on random links
/// with exponential durations.  Episodes are emitted at their start slot;
/// an episode's end may fall beyond the chunk (the caller schedules both
/// boundaries).
class FadeStream {
 public:
  FadeStream(const FaultPlan& plan, std::uint32_t device_count,
             std::uint64_t master_seed);

  /// Append every episode whose start slot lies in [generated_to(), to_slot).
  void generate_until(std::int64_t to_slot, std::vector<FadeEpisode>& out);

  [[nodiscard]] std::int64_t generated_to() const { return generated_to_; }

 private:
  double rate_per_slot_ = 0.0;
  double mean_duration_ms_ = 1.0;
  std::uint32_t device_count_ = 0;
  util::Rng rng_;
  bool have_pending_ = false;
  double pending_t_ = 0.0;
  std::int64_t generated_to_ = 0;
};

}  // namespace firefly::fault
