#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace firefly::fault {

namespace {

/// Poisson arrival slots over [0, horizon) at `rate_per_min` events/min.
/// 1 slot = 1 ms, so the per-slot rate is rate / 60000.
std::vector<std::int64_t> poisson_arrivals(util::Rng& rng, double rate_per_min,
                                           std::int64_t horizon_slots,
                                           double stop_ms = -1.0) {
  std::vector<std::int64_t> arrivals;
  if (rate_per_min <= 0.0 || horizon_slots <= 0) return arrivals;
  const double rate_per_slot = rate_per_min / 60'000.0;
  double t = 0.0;
  const double stop = stop_ms < 0.0 ? static_cast<double>(horizon_slots)
                                    : std::min(stop_ms, static_cast<double>(horizon_slots));
  while (true) {
    t += rng.exponential(rate_per_slot);
    if (t >= stop) break;
    arrivals.push_back(static_cast<std::int64_t>(t));
  }
  return arrivals;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, std::uint32_t device_count,
                             std::int64_t horizon_slots, std::uint64_t master_seed)
    : plan_(std::move(plan)),
      drop_rng_(util::derive_seed(master_seed, "fault.drop")) {
  const util::RngFactory factory(master_seed);
  drift_ppm_.assign(device_count, 0.0);
  if (plan_.drift_max_ppm > 0.0) {
    util::Rng rng = factory.make("fault.drift");
    for (double& ppm : drift_ppm_) {
      ppm = rng.uniform(-plan_.drift_max_ppm, plan_.drift_max_ppm);
    }
  }
  generate_churn(factory, device_count, horizon_slots);
  generate_fades(factory, device_count, horizon_slots);
}

void FaultInjector::generate_churn(const util::RngFactory& factory,
                                   std::uint32_t device_count, std::int64_t horizon_slots) {
  churn_ = plan_.scheduled;
  if (plan_.churn_rate_per_min > 0.0 && device_count > 0) {
    util::Rng rng = factory.make("fault.churn");
    // Track per-device downtime so the random process never crashes a
    // device that is already down (the scheduled events are the caller's
    // responsibility and replayed verbatim).
    std::vector<std::int64_t> down_until(device_count, -1);
    for (const std::int64_t slot :
         poisson_arrivals(rng, plan_.churn_rate_per_min, horizon_slots, plan_.churn_stop_ms)) {
      const auto device = static_cast<std::uint32_t>(rng.uniform_index(device_count));
      const auto downtime = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(rng.exponential(1.0 / std::max(1.0, plan_.mean_downtime_ms))));
      if (down_until[device] >= slot) continue;  // still down: skip this arrival
      down_until[device] = slot + downtime;
      churn_.push_back(ChurnEvent{slot, device, true});
      churn_.push_back(ChurnEvent{slot + downtime, device, false});
    }
  }
  std::erase_if(churn_, [&](const ChurnEvent& e) {
    return e.slot >= horizon_slots || e.device >= device_count;
  });
  std::stable_sort(churn_.begin(), churn_.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) { return a.slot < b.slot; });
}

void FaultInjector::generate_fades(const util::RngFactory& factory,
                                   std::uint32_t device_count, std::int64_t horizon_slots) {
  if (plan_.fade_rate_per_min <= 0.0 || device_count < 2) return;
  util::Rng rng = factory.make("fault.fade");
  for (const std::int64_t slot :
       poisson_arrivals(rng, plan_.fade_rate_per_min, horizon_slots)) {
    const auto u = static_cast<std::uint32_t>(rng.uniform_index(device_count));
    auto v = static_cast<std::uint32_t>(rng.uniform_index(device_count - 1));
    if (v >= u) ++v;
    const auto duration = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(rng.exponential(1.0 / std::max(1.0, plan_.fade_mean_duration_ms))));
    fades_.push_back(
        FadeEpisode{slot, std::min(slot + duration, horizon_slots), std::min(u, v), std::max(u, v)});
  }
}

double FaultInjector::drift_ppm(std::uint32_t device) const {
  assert(device < drift_ppm_.size());
  return drift_ppm_[device];
}

std::uint64_t FaultInjector::link_key(std::uint32_t a, std::uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

void FaultInjector::fade_started(const FadeEpisode& episode) {
  active_fades_.insert(link_key(episode.u, episode.v));
}

void FaultInjector::fade_ended(const FadeEpisode& episode) {
  const auto it = active_fades_.find(link_key(episode.u, episode.v));
  if (it != active_fades_.end()) active_fades_.erase(it);
}

double FaultInjector::link_attenuation_db(std::uint32_t a, std::uint32_t b) const {
  if (active_fades_.empty()) return 0.0;
  return active_fades_.contains(link_key(a, b)) ? plan_.fade_depth_db : 0.0;
}

bool FaultInjector::drop_reception() {
  if (plan_.drop_probability <= 0.0) return false;
  return drop_rng_.bernoulli(plan_.drop_probability);
}

}  // namespace firefly::fault
