// prc.hpp — the Mirollo–Strogatz phase response curve (paper eqs. 4–5).
//
// An integrate-and-fire oscillator has state x = f(θ) concave-up; when a
// pulse of amplitude ε arrives the state jumps by ε, which in phase terms is
// the piecewise-linear return map
//     θ ← min(α·θ + β, 1),       α = e^{aε},   β = (e^{aε} − 1)/(e^a − 1),
// with dissipation factor a.  Mirollo & Strogatz prove that for a fully
// meshed network with α > 1 and β > 0 (i.e. a > 0, ε > 0) all oscillators
// converge to simultaneous firing.  `PrcParams::valid_for_convergence`
// encodes exactly that condition and is asserted by the protocols.
#pragma once

namespace firefly::pco {

struct PrcParams {
  double dissipation_a{1.0};  ///< a > 0: concavity of f
  double epsilon{0.05};       ///< ε > 0: pulse coupling strength

  /// α = e^{aε} (eq. 5).
  [[nodiscard]] double alpha() const;
  /// β = (e^{aε} − 1)/(e^a − 1) (eq. 5).
  [[nodiscard]] double beta() const;
  /// Mirollo–Strogatz convergence condition: α > 1 and β > 0.
  [[nodiscard]] bool valid_for_convergence() const;
};

/// The return map θ ← min(α·θ + β, 1).  θ is normalised to [0, 1].
[[nodiscard]] double apply_prc(double theta, const PrcParams& params);

/// Phase advance Δθ(θ) = apply_prc(θ) − θ (the PRC proper).
[[nodiscard]] double phase_response(double theta, const PrcParams& params);

/// Smallest θ from which a single pulse triggers immediate firing
/// (α·θ + β >= 1), i.e. the absorption threshold θ* = (1 − β)/α.
[[nodiscard]] double absorption_threshold(const PrcParams& params);

}  // namespace firefly::pco
