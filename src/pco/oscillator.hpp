// oscillator.hpp — integrate-and-fire oscillators (paper eqs. 3–4).
//
// Two granularities:
//   * `Oscillator` — continuous phase θ ∈ [0, 1] advancing at dθ/dt = 1/T;
//     used by the standalone PCO network and the theory tests.
//   * `SlotOscillator` — the paper's "counter" formulation: an integer
//     counter incremented once per LTE slot at a fixed rate, firing when it
//     reaches the threshold (period) and resetting to zero.  Receptions
//     apply the PRC to the counter, scaled by the period.  This is what the
//     D2D devices actually run, because everything in LTE-A happens on slot
//     boundaries.
// Both support a refractory window after firing, the standard radio-network
// guard (Werner-Allen et al.) against pulse echo loops under delay.
#pragma once

#include <cstdint>

#include "pco/prc.hpp"

namespace firefly::pco {

class Oscillator {
 public:
  Oscillator(double period_s, PrcParams prc, double initial_phase = 0.0);

  /// Advance by dt seconds; returns true if the threshold was crossed
  /// (the oscillator fired and wrapped).
  bool advance(double dt_s);

  /// Handle a received pulse: apply the PRC unless refractory.
  /// Returns true if the jump pushed the phase to threshold (fire now).
  bool receive_pulse();

  /// Must be called when the owner has processed a fire (resets phase and
  /// starts the refractory window).
  void on_fired();

  [[nodiscard]] double phase() const { return phase_; }
  [[nodiscard]] double period() const { return period_; }
  /// Seconds until natural firing with no further input.
  [[nodiscard]] double time_to_fire() const;
  [[nodiscard]] bool refractory() const { return refractory_left_ > 0.0; }
  void set_refractory_window(double seconds) { refractory_window_ = seconds; }
  void set_phase(double phase);

 private:
  double period_;
  PrcParams prc_;
  double phase_;                    // [0, 1]
  double refractory_window_ = 0.0;  // seconds
  double refractory_left_ = 0.0;
};

/// Slot-granular counter oscillator (the paper's Section III description:
/// "the counter value of devices increase by a fix rate; as counter value
/// reach to threshold, the device sends PS and reset its counter to zero").
class SlotOscillator {
 public:
  SlotOscillator(std::uint32_t period_slots, PrcParams prc, std::uint32_t initial_counter = 0);

  /// One slot tick; true when the counter reached the period (fire).
  bool tick();

  /// Apply the PRC to the counter.  Returns true when the jump saturates
  /// the counter (fire in this slot).  No-op during refractory slots.
  bool receive_pulse();

  void on_fired();

  [[nodiscard]] std::uint32_t counter() const { return counter_; }
  [[nodiscard]] std::uint32_t period_slots() const { return period_slots_; }
  [[nodiscard]] double phase() const {
    return static_cast<double>(counter_) / static_cast<double>(period_slots_);
  }
  [[nodiscard]] bool refractory() const { return refractory_left_ > 0; }
  void set_refractory_slots(std::uint32_t slots) { refractory_slots_ = slots; }
  void set_counter(std::uint32_t counter);

 private:
  std::uint32_t period_slots_;
  PrcParams prc_;
  std::uint32_t counter_;
  std::uint32_t refractory_slots_ = 0;
  std::uint32_t refractory_left_ = 0;
};

}  // namespace firefly::pco
