#include "pco/prc.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace firefly::pco {

double PrcParams::alpha() const { return std::exp(dissipation_a * epsilon); }

double PrcParams::beta() const {
  const double numerator = std::exp(dissipation_a * epsilon) - 1.0;
  const double denominator = std::exp(dissipation_a) - 1.0;
  assert(denominator != 0.0);
  return numerator / denominator;
}

bool PrcParams::valid_for_convergence() const {
  return dissipation_a > 0.0 && epsilon > 0.0;  // implies alpha() > 1, beta() > 0
}

double apply_prc(double theta, const PrcParams& params) {
  assert(theta >= 0.0 && theta <= 1.0);
  return std::min(params.alpha() * theta + params.beta(), 1.0);
}

double phase_response(double theta, const PrcParams& params) {
  return apply_prc(theta, params) - theta;
}

double absorption_threshold(const PrcParams& params) {
  const double a = params.alpha();
  const double b = params.beta();
  if (b >= 1.0) return 0.0;
  return std::max(0.0, (1.0 - b) / a);
}

}  // namespace firefly::pco
