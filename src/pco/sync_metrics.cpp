#include "pco/sync_metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace firefly::pco {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}

double order_parameter(std::span<const double> phases) {
  if (phases.empty()) return 1.0;
  double re = 0.0;
  double im = 0.0;
  for (const double theta : phases) {
    re += std::cos(kTwoPi * theta);
    im += std::sin(kTwoPi * theta);
  }
  const double n = static_cast<double>(phases.size());
  return std::sqrt(re * re + im * im) / n;
}

double circular_spread(std::span<const double> phases) {
  if (phases.size() <= 1) return 0.0;
  std::vector<double> sorted(phases.begin(), phases.end());
  for (double& p : sorted) p = p - std::floor(p);  // into [0, 1)
  std::sort(sorted.begin(), sorted.end());
  // The smallest covering arc is 1 minus the largest gap between
  // consecutive (circularly adjacent) phases.
  double max_gap = 1.0 - sorted.back() + sorted.front();
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    max_gap = std::max(max_gap, sorted[i] - sorted[i - 1]);
  }
  return 1.0 - max_gap;
}

ConvergenceDetector::ConvergenceDetector(std::size_t n, std::uint32_t period_slots,
                                         std::uint32_t tolerance_slots)
    : period_slots_(period_slots),
      tolerance_slots_(tolerance_slots),
      last_fire_(n, -1),
      active_(n, 1),
      active_count_(n) {
  assert(period_slots_ > 0);
}

void ConvergenceDetector::record_fire(std::uint32_t id, std::int64_t slot) {
  assert(id < last_fire_.size());
  if (active_[id] == 0) return;
  if (last_fire_[id] < 0) ++fired_count_;
  last_fire_[id] = slot;
}

void ConvergenceDetector::set_active(std::uint32_t id, bool active) {
  assert(id < active_.size());
  if ((active_[id] != 0) == active) return;
  active_[id] = active ? 1 : 0;
  if (active) {
    ++active_count_;
    last_fire_[id] = -1;  // must fire again after the cold boot
  } else {
    --active_count_;
    if (last_fire_[id] >= 0) --fired_count_;
    last_fire_[id] = -1;
  }
}

double ConvergenceDetector::current_spread() const {
  return static_cast<double>(spread_slots()) / static_cast<double>(period_slots_);
}

std::int64_t ConvergenceDetector::spread_slots() const {
  if (active_count_ == 0 || fired_count_ < active_count_) return period_slots_;
  if (active_count_ == 1) return 0;
  // Smallest covering arc of the firing slots modulo the period, computed
  // exactly in integer slots.
  std::vector<std::int64_t> mods;
  mods.reserve(active_count_);
  const auto period = static_cast<std::int64_t>(period_slots_);
  for (std::size_t id = 0; id < last_fire_.size(); ++id) {
    if (active_[id] != 0) mods.push_back(last_fire_[id] % period);
  }
  std::sort(mods.begin(), mods.end());
  std::int64_t max_gap = mods.front() + period - mods.back();
  for (std::size_t i = 1; i < mods.size(); ++i) {
    max_gap = std::max(max_gap, mods[i] - mods[i - 1]);
  }
  return period - max_gap;
}

bool ConvergenceDetector::aligned_now() const {
  return active_count_ > 0 && fired_count_ == active_count_ &&
         spread_slots() <= static_cast<std::int64_t>(tolerance_slots_);
}

std::optional<std::int64_t> ConvergenceDetector::converged_at(std::int64_t current_slot) {
  const bool aligned = aligned_now();
  if (!aligned) {
    aligned_since_.reset();
    return std::nullopt;
  }
  if (!aligned_since_.has_value()) aligned_since_ = current_slot;
  if (current_slot - *aligned_since_ >= static_cast<std::int64_t>(period_slots_)) {
    return aligned_since_;
  }
  return std::nullopt;
}

LocalSyncDetector::LocalSyncDetector(std::size_t n, std::uint32_t period_slots,
                                     std::uint32_t tolerance_slots)
    : period_slots_(period_slots),
      tolerance_slots_(tolerance_slots),
      last_fire_(n, -1),
      active_(n, 1),
      active_count_(n) {
  assert(period_slots_ > 0);
}

void LocalSyncDetector::add_edge(std::uint32_t u, std::uint32_t v) {
  assert(u < last_fire_.size() && v < last_fire_.size() && u != v);
  edges_.emplace_back(u, v);
}

void LocalSyncDetector::record_fire(std::uint32_t id, std::int64_t slot) {
  assert(id < last_fire_.size());
  if (active_[id] == 0) return;
  if (last_fire_[id] < 0) ++fired_count_;
  last_fire_[id] = slot;
}

void LocalSyncDetector::set_active(std::uint32_t id, bool active) {
  assert(id < active_.size());
  if ((active_[id] != 0) == active) return;
  active_[id] = active ? 1 : 0;
  if (active) {
    ++active_count_;
  } else {
    --active_count_;
    if (last_fire_[id] >= 0) --fired_count_;
  }
  last_fire_[id] = -1;
}

bool LocalSyncDetector::edge_aligned(std::uint32_t u, std::uint32_t v) const {
  if (active_[u] == 0 || active_[v] == 0) return true;  // waived while down
  if (last_fire_[u] < 0 || last_fire_[v] < 0) return false;
  const auto period = static_cast<std::int64_t>(period_slots_);
  std::int64_t diff = (last_fire_[u] - last_fire_[v]) % period;
  if (diff < 0) diff += period;
  const std::int64_t circular = std::min(diff, period - diff);
  return circular <= static_cast<std::int64_t>(tolerance_slots_);
}

double LocalSyncDetector::aligned_fraction() const {
  if (edges_.empty()) return 1.0;
  std::size_t aligned = 0;
  for (const auto& [u, v] : edges_) {
    if (edge_aligned(u, v)) ++aligned;
  }
  return static_cast<double>(aligned) / static_cast<double>(edges_.size());
}

std::optional<std::int64_t> LocalSyncDetector::converged_at(std::int64_t current_slot) {
  bool aligned = active_count_ > 0 && fired_count_ == active_count_;
  if (aligned) {
    for (const auto& [u, v] : edges_) {
      if (!edge_aligned(u, v)) {
        aligned = false;
        break;
      }
    }
  }
  if (!aligned) {
    aligned_since_.reset();
    return std::nullopt;
  }
  if (!aligned_since_.has_value()) aligned_since_ = current_slot;
  if (current_slot - *aligned_since_ >= static_cast<std::int64_t>(period_slots_)) {
    return aligned_since_;
  }
  return std::nullopt;
}

}  // namespace firefly::pco
