#include "pco/network_pco.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <functional>

#include "pco/sync_metrics.hpp"

namespace firefly::pco {

PcoNetwork::PcoNetwork(const graph::Graph& coupling, PcoNetworkConfig config, util::Rng& rng)
    : coupling_(coupling), config_(config) {
  const std::size_t n = coupling.vertex_count();
  phases_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) phases_.push_back(rng.uniform());
  refractory_until_.assign(n, -1.0);
}

void PcoNetwork::fire_cascade(std::uint32_t origin, std::vector<std::uint32_t>& fired_now) {
  // Breadth-first absorption: a firing pulses its neighbours; neighbours
  // pushed to threshold fire in the same instant ("absorbed"), each such
  // firing is itself a broadcast pulse.  A device fires at most once per
  // instant (it resets to zero and becomes refractory).
  std::deque<std::uint32_t> queue{origin};
  while (!queue.empty()) {
    const std::uint32_t v = queue.front();
    queue.pop_front();
    if (phases_[v] < 1.0) continue;  // got reset by an earlier cascade step
    phases_[v] = 0.0;
    refractory_until_[v] = now_s_ + config_.refractory_s;
    ++firings_;
    fired_now.push_back(v);
    for (const graph::Neighbor& nb : coupling_.neighbors(v)) {
      if (refractory_until_[nb.to] >= now_s_) continue;
      if (phases_[nb.to] >= 1.0) continue;  // already queued to fire
      phases_[nb.to] = apply_prc(phases_[nb.to], config_.prc);
      if (phases_[nb.to] >= 1.0) queue.push_back(nb.to);
    }
  }
}

PcoRunResult PcoNetwork::run() {
  if (config_.delay_s > 0.0) return run_delayed();
  return run_instantaneous();
}

void PcoNetwork::fire_with_delay(std::uint32_t origin) {
  phases_[origin] = 0.0;
  refractory_until_[origin] = now_s_ + config_.refractory_s;
  ++firings_;
  for (const graph::Neighbor& nb : coupling_.neighbors(origin)) {
    arrivals_.push_back(Arrival{now_s_ + config_.delay_s, nb.to});
    std::push_heap(arrivals_.begin(), arrivals_.end(), std::greater<>{});
  }
}

PcoRunResult PcoNetwork::run_delayed() {
  PcoRunResult result;
  const std::size_t n = phases_.size();
  if (n == 0) {
    result.converged = true;
    return result;
  }

  std::uint64_t quiet_checks = 0;
  while (now_s_ < config_.max_time_s) {
    // Next event: the earliest natural firing or the earliest arrival.
    double max_phase = -1.0;
    std::uint32_t leader = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (phases_[i] > max_phase) {
        max_phase = phases_[i];
        leader = i;
      }
    }
    const double fire_time = now_s_ + (1.0 - max_phase) * config_.period_s;
    const bool arrival_first = !arrivals_.empty() && arrivals_.front().time_s < fire_time;
    const double event_time = arrival_first ? arrivals_.front().time_s : fire_time;
    const double dt = event_time - now_s_;
    now_s_ = event_time;
    for (double& p : phases_) p += dt / config_.period_s;

    if (arrival_first) {
      std::pop_heap(arrivals_.begin(), arrivals_.end(), std::greater<>{});
      const Arrival arrival = arrivals_.back();
      arrivals_.pop_back();
      const std::uint32_t v = arrival.target;
      if (refractory_until_[v] >= now_s_) continue;
      phases_[v] = apply_prc(std::min(phases_[v], 1.0), config_.prc);
      if (phases_[v] >= 1.0) fire_with_delay(v);
    } else {
      phases_[leader] = 1.0;
      fire_with_delay(leader);
    }

    // Periodic convergence check (cheap spread test) once per ~period.
    if (++quiet_checks % (2 * n) == 0) {
      const double spread = circular_spread(phases_);
      if (spread <= config_.spread_tolerance) {
        result.converged = true;
        result.convergence_time_s = now_s_;
        result.final_spread = spread;
        break;
      }
    }
  }
  result.total_firings = firings_;
  if (!result.converged) {
    result.convergence_time_s = now_s_;
    result.final_spread = circular_spread(phases_);
  }
  result.cycles =
      static_cast<std::size_t>(std::ceil(result.convergence_time_s / config_.period_s));
  return result;
}

PcoRunResult PcoNetwork::run_instantaneous() {
  PcoRunResult result;
  const std::size_t n = phases_.size();
  if (n == 0) {
    result.converged = true;
    return result;
  }

  std::vector<std::uint32_t> fired_now;
  while (now_s_ < config_.max_time_s) {
    // Next natural firing time.
    double max_phase = 0.0;
    std::uint32_t leader = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (phases_[i] > max_phase) {
        max_phase = phases_[i];
        leader = i;
      }
    }
    const double dt = (1.0 - max_phase) * config_.period_s;
    now_s_ += dt;
    for (double& p : phases_) p += dt / config_.period_s;
    // Guard against floating-point undershoot on the leader.
    phases_[leader] = 1.0;

    fired_now.clear();
    fire_cascade(leader, fired_now);

    // Converged when one cascade absorbed the whole population.
    if (fired_now.size() == n) {
      result.converged = true;
      result.convergence_time_s = now_s_;
      result.final_spread = 0.0;
      break;
    }
    // Cheap spread check for near-convergence under refractory shadowing.
    const double spread = circular_spread(phases_);
    if (spread <= config_.spread_tolerance) {
      result.converged = true;
      result.convergence_time_s = now_s_;
      result.final_spread = spread;
      break;
    }
  }

  result.total_firings = firings_;
  if (!result.converged) {
    result.convergence_time_s = now_s_;
    result.final_spread = circular_spread(phases_);
  }
  result.cycles = static_cast<std::size_t>(
      std::ceil(result.convergence_time_s / config_.period_s));
  return result;
}

}  // namespace firefly::pco
