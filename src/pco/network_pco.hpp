// network_pco.hpp — standalone continuous-time PCO network simulation.
//
// An idealised (no radio, no slots, optional per-link delay) population of
// Mirollo–Strogatz oscillators coupled along the edges of an arbitrary
// graph.  This is the analytic workhorse: it verifies the M&S convergence
// theorem on full meshes, quantifies how coupling topology (mesh vs tree vs
// k-NN) changes convergence time and pulse count, and backs the ablation
// bench.  The radio-level protocols in src/core are the "real" versions.
//
// Simulation loop (classic): find the earliest next firing, advance all
// phases to that instant, process the firing plus the same-instant
// absorption cascade, repeat.  Pulse count = number of firings (each firing
// is one broadcast).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "pco/oscillator.hpp"
#include "util/rng.hpp"

namespace firefly::pco {

struct PcoNetworkConfig {
  double period_s{0.1};
  PrcParams prc{};
  double refractory_s{0.0};
  /// Pulse propagation delay (seconds).  Zero gives the classic
  /// instantaneous Mirollo–Strogatz model; a nonzero delay reproduces the
  /// radio reality that breaks naive pulse coupling (each hop of absorption
  /// lags by the delay) — the effect the protocols' reachback compensation
  /// exists to cancel.
  double delay_s{0.0};
  /// Stop when the order parameter exceeds this and the spread is below
  /// one part in a thousand of the cycle.
  double spread_tolerance{1e-3};
  /// Give up after this much simulated time.
  double max_time_s{1000.0};
};

struct PcoRunResult {
  bool converged{false};
  double convergence_time_s{0.0};
  std::uint64_t total_firings{0};  ///< == pulses broadcast
  std::size_t cycles{0};           ///< convergence time in periods (rounded up)
  double final_spread{1.0};
};

class PcoNetwork {
 public:
  /// Coupling graph over n oscillators; initial phases i.i.d. uniform.
  PcoNetwork(const graph::Graph& coupling, PcoNetworkConfig config, util::Rng& rng);

  /// Run to convergence or config.max_time_s.
  [[nodiscard]] PcoRunResult run();

  [[nodiscard]] const std::vector<double>& phases() const { return phases_; }

 private:
  void fire_cascade(std::uint32_t origin, std::vector<std::uint32_t>& fired_now);
  void fire_with_delay(std::uint32_t origin);
  [[nodiscard]] PcoRunResult run_instantaneous();
  [[nodiscard]] PcoRunResult run_delayed();

  const graph::Graph& coupling_;
  PcoNetworkConfig config_;
  std::vector<double> phases_;           // [0, 1)
  std::vector<double> refractory_until_; // absolute seconds
  double now_s_ = 0.0;
  std::uint64_t firings_ = 0;
  // Pending pulse arrivals for the delayed model: (arrival time, target).
  struct Arrival {
    double time_s;
    std::uint32_t target;
    bool operator>(const Arrival& other) const { return time_s > other.time_s; }
  };
  std::vector<Arrival> arrivals_;  // min-heap via std::push_heap/greater
};

}  // namespace firefly::pco
