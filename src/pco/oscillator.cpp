#include "pco/oscillator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace firefly::pco {

Oscillator::Oscillator(double period_s, PrcParams prc, double initial_phase)
    : period_(period_s), prc_(prc), phase_(initial_phase) {
  assert(period_ > 0.0);
  assert(initial_phase >= 0.0 && initial_phase < 1.0);
}

bool Oscillator::advance(double dt_s) {
  assert(dt_s >= 0.0);
  refractory_left_ = std::max(0.0, refractory_left_ - dt_s);
  phase_ += dt_s / period_;
  if (phase_ >= 1.0) {
    phase_ = 1.0;
    return true;
  }
  return false;
}

bool Oscillator::receive_pulse() {
  if (refractory()) return false;
  phase_ = apply_prc(phase_, prc_);
  return phase_ >= 1.0;
}

void Oscillator::on_fired() {
  phase_ = 0.0;
  refractory_left_ = refractory_window_;
}

double Oscillator::time_to_fire() const { return (1.0 - phase_) * period_; }

void Oscillator::set_phase(double phase) {
  assert(phase >= 0.0 && phase <= 1.0);
  phase_ = phase;
}

SlotOscillator::SlotOscillator(std::uint32_t period_slots, PrcParams prc,
                               std::uint32_t initial_counter)
    : period_slots_(period_slots), prc_(prc), counter_(initial_counter) {
  assert(period_slots_ > 0);
  assert(initial_counter < period_slots_);
}

bool SlotOscillator::tick() {
  if (refractory_left_ > 0) --refractory_left_;
  ++counter_;
  return counter_ >= period_slots_;
}

bool SlotOscillator::receive_pulse() {
  if (refractory()) return false;
  const double theta = phase();
  const double jumped = apply_prc(theta, prc_);
  // Quantise back to slots, never moving backwards.
  const auto new_counter = static_cast<std::uint32_t>(
      std::ceil(jumped * static_cast<double>(period_slots_)));
  counter_ = std::max(counter_, new_counter);
  return counter_ >= period_slots_;
}

void SlotOscillator::on_fired() {
  counter_ = 0;
  refractory_left_ = refractory_slots_;
}

void SlotOscillator::set_counter(std::uint32_t counter) {
  assert(counter <= period_slots_);
  counter_ = counter;
}

}  // namespace firefly::pco
