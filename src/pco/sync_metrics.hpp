// sync_metrics.hpp — how synchronised is a population of oscillators?
//
// Two measures:
//   * the Kuramoto order parameter R = |1/N · Σ e^{i·2π·θ_k}| ∈ [0, 1]
//     (R = 1 means identical phases), robust and differentiable;
//   * the circular spread: the smallest arc of the unit circle containing
//     every phase — the paper's operational criterion "all devices fire at
//     a time" corresponds to spread ≤ one slot.
// `ConvergenceDetector` tracks per-device firing times and reports the
// first time the population stayed aligned for a full period (so a
// transient coincidence does not count as convergence).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace firefly::pco {

/// Kuramoto order parameter of phases in [0, 1].
[[nodiscard]] double order_parameter(std::span<const double> phases);

/// Smallest arc (in phase units, [0, 1]) containing all phases.
[[nodiscard]] double circular_spread(std::span<const double> phases);

/// Firing-time-based convergence detection for slotted protocols.
class ConvergenceDetector {
 public:
  /// `n` devices; aligned means the wrapped spread of the devices' last
  /// firing slots modulo `period_slots` is <= `tolerance_slots`.
  ConvergenceDetector(std::size_t n, std::uint32_t period_slots,
                      std::uint32_t tolerance_slots);

  /// Record that device `id` fired in absolute slot `slot`.
  void record_fire(std::uint32_t id, std::int64_t slot);

  /// Crash/recover lifecycle: an inactive device is excluded from the
  /// spread and from the everyone-has-fired requirement.  Re-activating
  /// clears the device's firing record — a cold-booted oscillator must fire
  /// again (and land inside the tolerance) before it counts as aligned.
  void set_active(std::uint32_t id, bool active);

  /// Evaluate at the current absolute slot.  Once every device has fired at
  /// least once and alignment has held for `period_slots` consecutive
  /// slots, returns the slot at which alignment was first achieved.
  [[nodiscard]] std::optional<std::int64_t> converged_at(std::int64_t current_slot);

  /// Instantaneous alignment (no sustained-hold requirement): every active
  /// device has fired and the spread is within tolerance.  The resilience
  /// metrics sample this to track desync/resync episodes under faults.
  [[nodiscard]] bool aligned_now() const;

  /// Wrapped spread of last firing slots (period units); 1.0 until all
  /// devices have fired.
  [[nodiscard]] double current_spread() const;
  /// Same spread in whole slots (exact integer arithmetic).
  [[nodiscard]] std::int64_t spread_slots() const;

 private:
  std::uint32_t period_slots_;
  std::uint32_t tolerance_slots_;
  std::vector<std::int64_t> last_fire_;  // -1 = never
  std::vector<std::uint8_t> active_;     // 0 = crashed (excluded)
  std::size_t fired_count_ = 0;          // active devices that have fired
  std::size_t active_count_ = 0;
  std::optional<std::int64_t> aligned_since_;
};

/// Local (per-link) synchronisation detection.
///
/// On a slotted multi-hop radio, pulse propagation is one slot per hop, so
/// *global* firing alignment tighter than the network radius is physically
/// unreachable for a pure pulse-coupled protocol; what D2D needs — and what
/// the distributed-synchronisation literature measures — is that every
/// device is slot-aligned with the devices it can actually communicate
/// with.  `LocalSyncDetector` therefore requires, for every proximity edge
/// (u, v), that the two last firing slots agree modulo the period within a
/// tolerance, sustained for one full period.
class LocalSyncDetector {
 public:
  LocalSyncDetector(std::size_t n, std::uint32_t period_slots, std::uint32_t tolerance_slots);

  /// Declare a proximity edge that must be aligned.
  void add_edge(std::uint32_t u, std::uint32_t v);
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  void record_fire(std::uint32_t id, std::int64_t slot);

  /// Crash/recover lifecycle: edges with an inactive endpoint are waived;
  /// re-activation clears the device's firing record (see
  /// `ConvergenceDetector::set_active`).
  void set_active(std::uint32_t id, bool active);

  /// First slot of the currently sustained alignment, once it has held for
  /// a full period and every device has fired.
  [[nodiscard]] std::optional<std::int64_t> converged_at(std::int64_t current_slot);

  /// Fraction of edges currently aligned (1.0 when none are violated).
  [[nodiscard]] double aligned_fraction() const;

 private:
  [[nodiscard]] bool edge_aligned(std::uint32_t u, std::uint32_t v) const;

  std::uint32_t period_slots_;
  std::uint32_t tolerance_slots_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;
  std::vector<std::int64_t> last_fire_;
  std::vector<std::uint8_t> active_;
  std::size_t fired_count_ = 0;
  std::size_t active_count_ = 0;
  std::optional<std::int64_t> aligned_since_;
};

}  // namespace firefly::pco
