// energy.hpp — per-device energy accounting.
//
// The D2D discovery literature the paper builds on (its refs [4]–[9]) is
// dominated by the energy cost of discovery: beacon transmissions, receive
// decoding and idle listening.  This meter charges each activity at
// configurable power levels and integrates over slots, so the protocols can
// be compared on millijoules-to-convergence, not just messages.
//
// Default power levels are typical LTE UE figures: a 23 dBm (200 mW) PA at
// ~40% efficiency plus transmit circuitry ≈ 700 mW while transmitting,
// ~300 mW while actively receiving/decoding a PS, ~10 mW slot-idle
// listening (paging-style monitoring of the RACH opportunities).
#pragma once

#include <cstdint>
#include <vector>

namespace firefly::phy {

struct EnergyParams {
  double tx_mw{700.0};    ///< while transmitting one PS (one slot)
  double rx_mw{300.0};    ///< while decoding one received PS (one slot)
  double idle_mw{10.0};   ///< awake but idle (RACH monitoring)
  double sleep_mw{0.1};   ///< duty-cycled sleep
  double slot_seconds{1e-3};
};

/// Accumulates energy per device.  One meter per trial.
class EnergyMeter {
 public:
  EnergyMeter(std::size_t device_count, EnergyParams params = {});

  void record_tx(std::uint32_t device) { ++tx_slots_[device]; }
  void record_rx(std::uint32_t device) { ++rx_slots_[device]; }

  /// Total energy of one device over `elapsed_slots` simulated slots, in
  /// millijoules.  Idle slots = elapsed − tx − rx (clamped at zero: a slot
  /// with both a tx and several rx is charged per activity, which slightly
  /// over-counts busy slots — the conservative direction).  With a
  /// duty-cycled receiver, `awake_fraction` of the non-busy time is charged
  /// at idle power and the rest at sleep power.
  [[nodiscard]] double device_energy_mj(std::uint32_t device, std::int64_t elapsed_slots,
                                        double awake_fraction = 1.0) const;

  /// Sum over devices, millijoules.
  [[nodiscard]] double total_energy_mj(std::int64_t elapsed_slots,
                                       double awake_fraction = 1.0) const;
  /// Mean per device, millijoules.
  [[nodiscard]] double mean_energy_mj(std::int64_t elapsed_slots,
                                      double awake_fraction = 1.0) const;

  [[nodiscard]] std::uint64_t tx_slots(std::uint32_t device) const {
    return tx_slots_[device];
  }
  [[nodiscard]] std::uint64_t rx_slots(std::uint32_t device) const {
    return rx_slots_[device];
  }
  [[nodiscard]] const EnergyParams& params() const { return params_; }

 private:
  EnergyParams params_;
  std::vector<std::uint64_t> tx_slots_;
  std::vector<std::uint64_t> rx_slots_;
};

}  // namespace firefly::phy
