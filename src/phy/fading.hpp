// fading.hpp — small-scale (fast) fading.
//
// Table I specifies "UMi (NLOS)" fast fading.  NLOS small-scale fading is
// classically Rayleigh: the power gain is exponential with unit mean, i.e.
// −10·log10(Exp(1)) dB of extra loss per slot.  Nakagami-m generalises it
// (m = 1 reduces to Rayleigh; larger m approaches LOS Rician behaviour);
// the ablation benches sweep m.  Fast fading is redrawn every slot, unlike
// shadowing which is static per link.
#pragma once

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace firefly::phy {

class FadingModel {
 public:
  /// Floor on the linear power gain: a deep fade produces a large but
  /// finite loss (60 dB) rather than −inf, which would poison dB
  /// arithmetic.
  static constexpr double kGainFloor = 1e-6;

  virtual ~FadingModel() = default;
  /// Linear power gain for one reception (unit mean).  Consumes exactly
  /// the randomness `sample` would — the radio's fast path draws the gain,
  /// tests it against a precomputed threshold and only converts to dB for
  /// audible receptions.
  [[nodiscard]] virtual double sample_gain(util::Rng& rng) const = 0;
  /// Extra loss in dB for one reception (negative values = constructive).
  [[nodiscard]] virtual util::Db sample(util::Rng& rng) const {
    return loss_from_gain(sample_gain(rng));
  }
  [[nodiscard]] virtual double mean_power_gain() const = 0;

  /// u-space skip support.  When true, `sample_gain` consumes exactly one
  /// generator step and equals `gain_from_uniform(rng.unit_open())`, so
  /// the radio's fast path can draw the raw uniform, discard provably
  /// sub-threshold receptions on a single comparison against
  /// `skip_u(min_gain)` and only evaluate the gain transform (a log, for
  /// Rayleigh) for survivors.
  [[nodiscard]] virtual bool supports_uniform_skip() const { return false; }
  /// The gain transform for one uniform draw (only when supported); must
  /// be bit-identical to what `sample_gain` computes from the same step.
  [[nodiscard]] virtual double gain_from_uniform(double /*u*/) const { return 0.0; }
  /// Conservative uniform bound: u ≥ skip_u(g) guarantees the sampled
  /// gain is below g.  Default 2.0 (> any uniform) never skips.
  [[nodiscard]] virtual double skip_u(double /*min_gain*/) const { return 2.0; }

  /// dB loss for a linear power gain, floored at `kGainFloor`.
  [[nodiscard]] static util::Db loss_from_gain(double gain) {
    return util::Db{-10.0 * std::log10(std::max(gain, kGainFloor))};
  }
};

/// No fast fading: deterministic tests and analytic validation.
class NoFading final : public FadingModel {
 public:
  [[nodiscard]] double sample_gain(util::Rng&) const override { return 1.0; }
  [[nodiscard]] util::Db sample(util::Rng&) const override { return util::Db{0.0}; }
  [[nodiscard]] double mean_power_gain() const override { return 1.0; }
};

/// Rayleigh fading: power gain ~ Exp(1).
class RayleighFading final : public FadingModel {
 public:
  [[nodiscard]] double sample_gain(util::Rng& rng) const override;
  [[nodiscard]] double mean_power_gain() const override { return 1.0; }

  // Gain = −ln(u) is a decreasing transform of one uniform step, so
  // "gain < g" is exactly "u > e^{−g}"; the 1e-12 relative slack absorbs
  // the rounding of exp/log (≲1 ulp each), keeping the skip conservative —
  // borderline draws fall through to the exact dBm comparison.
  [[nodiscard]] bool supports_uniform_skip() const override { return true; }
  [[nodiscard]] double gain_from_uniform(double u) const override { return -std::log(u); }
  [[nodiscard]] double skip_u(double min_gain) const override {
    return std::exp(-min_gain) * (1.0 + 1e-12);
  }
};

/// Rician fading with K-factor (LOS-dominated links): the amplitude is
/// |sqrt(K/(K+1)) + CN(0, 1/(K+1))|, unit mean power.  K = 0 reduces to
/// Rayleigh; large K approaches no fading.  Used by the LOS ablation —
/// Table I itself is NLOS, hence Rayleigh.
class RicianFading final : public FadingModel {
 public:
  explicit RicianFading(double k_factor) : k_(k_factor) {}

  [[nodiscard]] double sample_gain(util::Rng& rng) const override;
  [[nodiscard]] double mean_power_gain() const override { return 1.0; }
  [[nodiscard]] double k_factor() const { return k_; }

 private:
  double k_;
};

/// Nakagami-m fading: power gain ~ Gamma(m, 1/m) (unit mean).
class NakagamiFading final : public FadingModel {
 public:
  explicit NakagamiFading(double m) : m_(m) {}

  [[nodiscard]] double sample_gain(util::Rng& rng) const override;
  [[nodiscard]] double mean_power_gain() const override { return 1.0; }
  [[nodiscard]] double m() const { return m_; }

 private:
  double m_;
};

}  // namespace firefly::phy
