// fading.hpp — small-scale (fast) fading.
//
// Table I specifies "UMi (NLOS)" fast fading.  NLOS small-scale fading is
// classically Rayleigh: the power gain is exponential with unit mean, i.e.
// −10·log10(Exp(1)) dB of extra loss per slot.  Nakagami-m generalises it
// (m = 1 reduces to Rayleigh; larger m approaches LOS Rician behaviour);
// the ablation benches sweep m.  Fast fading is redrawn every slot, unlike
// shadowing which is static per link.
#pragma once

#include "util/rng.hpp"
#include "util/units.hpp"

namespace firefly::phy {

class FadingModel {
 public:
  virtual ~FadingModel() = default;
  /// Extra loss in dB for one reception (negative values = constructive).
  [[nodiscard]] virtual util::Db sample(util::Rng& rng) const = 0;
  [[nodiscard]] virtual double mean_power_gain() const = 0;
};

/// No fast fading: deterministic tests and analytic validation.
class NoFading final : public FadingModel {
 public:
  [[nodiscard]] util::Db sample(util::Rng&) const override { return util::Db{0.0}; }
  [[nodiscard]] double mean_power_gain() const override { return 1.0; }
};

/// Rayleigh fading: power gain ~ Exp(1).
class RayleighFading final : public FadingModel {
 public:
  [[nodiscard]] util::Db sample(util::Rng& rng) const override;
  [[nodiscard]] double mean_power_gain() const override { return 1.0; }
};

/// Rician fading with K-factor (LOS-dominated links): the amplitude is
/// |sqrt(K/(K+1)) + CN(0, 1/(K+1))|, unit mean power.  K = 0 reduces to
/// Rayleigh; large K approaches no fading.  Used by the LOS ablation —
/// Table I itself is NLOS, hence Rayleigh.
class RicianFading final : public FadingModel {
 public:
  explicit RicianFading(double k_factor) : k_(k_factor) {}

  [[nodiscard]] util::Db sample(util::Rng& rng) const override;
  [[nodiscard]] double mean_power_gain() const override { return 1.0; }
  [[nodiscard]] double k_factor() const { return k_; }

 private:
  double k_;
};

/// Nakagami-m fading: power gain ~ Gamma(m, 1/m) (unit mean).
class NakagamiFading final : public FadingModel {
 public:
  explicit NakagamiFading(double m) : m_(m) {}

  [[nodiscard]] util::Db sample(util::Rng& rng) const override;
  [[nodiscard]] double mean_power_gain() const override { return 1.0; }
  [[nodiscard]] double m() const { return m_; }

 private:
  double m_;
};

}  // namespace firefly::phy
