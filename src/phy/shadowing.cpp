#include "phy/shadowing.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace firefly::phy {

double PerLinkShadowing::draw(std::uint32_t a, std::uint32_t b) const {
  const std::uint32_t lo = std::min(a, b);
  const std::uint32_t hi = std::max(a, b);
  const std::uint64_t key = (static_cast<std::uint64_t>(lo) << 32) | hi;
  // Hash-derived Box–Muller draw: identical regardless of query order.
  util::SplitMix64 mixer(seed_ ^ (key * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL) ^
                         (epoch_ * 0xA0761D6478BD642FULL));
  const double u1 = (static_cast<double>(mixer.next() >> 11) + 0.5) * 0x1.0p-53;
  const double u2 = static_cast<double>(mixer.next() >> 11) * 0x1.0p-53;
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return sigma_ * std::clamp(z, -kClampSigmas, kClampSigmas);
}

util::Db PerLinkShadowing::sample(std::uint32_t a, std::uint32_t b) {
  const std::uint32_t lo = std::min(a, b);
  const std::uint32_t hi = std::max(a, b);
  const std::uint64_t key = (static_cast<std::uint64_t>(lo) << 32) | hi;
  const auto it = cache_.find(key);
  if (it != cache_.end()) return util::Db{it->second};
  const double value = draw(a, b);
  cache_.emplace(key, value);
  return util::Db{value};
}

CorrelatedShadowing::CorrelatedShadowing(double sigma_db, double decorrelation_m,
                                         std::vector<geo::Vec2> positions, util::Rng rng)
    : sigma_(sigma_db),
      spacing_(decorrelation_m),
      positions_(std::move(positions)),
      rng_(rng),
      field_seed_(rng_.bits()) {
  assert(spacing_ > 0.0);
}

double CorrelatedShadowing::grid_value(std::int64_t ix, std::int64_t iy) const {
  const std::uint64_t key = (static_cast<std::uint64_t>(ix) << 32) ^
                            (static_cast<std::uint64_t>(iy) & 0xFFFFFFFFULL);
  const auto it = grid_.find(key);
  if (it != grid_.end()) return it->second;
  // Hash-derived draw so the field is identical regardless of query order.
  util::SplitMix64 mixer(field_seed_ ^ (key * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL));
  const double u1 =
      (static_cast<double>(mixer.next() >> 11) + 0.5) * 0x1.0p-53;
  const double u2 = static_cast<double>(mixer.next() >> 11) * 0x1.0p-53;
  const double value =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  grid_.emplace(key, value);
  return value;
}

double CorrelatedShadowing::field_at(geo::Vec2 p) const {
  const double gx = p.x / spacing_;
  const double gy = p.y / spacing_;
  const auto ix = static_cast<std::int64_t>(std::floor(gx));
  const auto iy = static_cast<std::int64_t>(std::floor(gy));
  const double fx = gx - static_cast<double>(ix);
  const double fy = gy - static_cast<double>(iy);
  const double w00 = (1.0 - fx) * (1.0 - fy);
  const double w10 = fx * (1.0 - fy);
  const double w01 = (1.0 - fx) * fy;
  const double w11 = fx * fy;
  const double raw = w00 * grid_value(ix, iy) + w10 * grid_value(ix + 1, iy) +
                     w01 * grid_value(ix, iy + 1) + w11 * grid_value(ix + 1, iy + 1);
  // Bilinear mixing shrinks the variance to Σw²; renormalise to unit.
  const double norm = std::sqrt(w00 * w00 + w10 * w10 + w01 * w01 + w11 * w11);
  return raw / norm;
}

util::Db CorrelatedShadowing::sample(std::uint32_t a, std::uint32_t b) {
  assert(a < positions_.size() && b < positions_.size());
  const geo::Vec2 mid = 0.5 * (positions_[a] + positions_[b]);
  return util::Db{sigma_ * field_at(mid)};
}

}  // namespace firefly::phy
