#include "phy/rssi.hpp"

#include <cassert>
#include <cmath>

namespace firefly::phy {

namespace {
constexpr double kLn10 = 2.302585092994045684;
// Standard normal quantile for p = 0.90.
constexpr double kZ90 = 1.2815515655446004;
}  // namespace

double ranging_distortion(double shadow_db, double pathloss_exponent) {
  assert(pathloss_exponent > 0.0);
  return std::pow(10.0, shadow_db / (10.0 * pathloss_exponent));
}

RangingErrorStats analytic_ranging_error(double sigma_db, double pathloss_exponent) {
  assert(sigma_db >= 0.0 && pathloss_exponent > 0.0);
  const double s = sigma_db * kLn10 / (10.0 * pathloss_exponent);
  const double s2 = s * s;
  RangingErrorStats stats{};
  stats.mean_ratio = std::exp(s2 / 2.0);
  stats.stddev_ratio = std::sqrt((std::exp(s2) - 1.0) * std::exp(s2));
  stats.median_ratio = 1.0;
  stats.p90_ratio = std::exp(kZ90 * s);
  return stats;
}

}  // namespace firefly::phy
