// channel.hpp — the composed radio channel.
//
// Combines transmit power with deterministic path loss, static per-link
// shadowing and per-reception fast fading into a received power
//     rx = tx − PL(d) − X_shadow(link) − X_fade,            (paper eqs. 7–10)
// and answers the two questions the protocols ask:
//   * what power does device b receive from device a right now, and
//   * is that above the detection threshold (Table I: −95 dBm)?
// The channel owns the stochastic models; protocol code never touches RNGs
// for propagation, which keeps PHY randomness in one auditable stream.
#pragma once

#include <cstdint>
#include <memory>

#include "geo/point.hpp"
#include "phy/fading.hpp"
#include "phy/pathloss.hpp"
#include "phy/shadowing.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace firefly::phy {

/// How the radio medium enumerates candidate receiver pairs.
enum class SpatialIndex {
  kGrid,   ///< uniform grid keyed by the max detectable range (production)
  kDense,  ///< exhaustive O(N²) scans (reference baseline for A/B tests)
};

/// Table I radio constants.
struct RadioParams {
  util::Dbm tx_power{23.0};             ///< device power, 23 dBm
  util::Dbm detection_threshold{-95.0}; ///< PS detection threshold
  double shadowing_sigma_db{10.0};      ///< shadowing std-dev
  /// Same-preamble capture: decoded anyway when the wanted signal exceeds
  /// the summed interference-plus-noise by this margin (typical LTE PRACH
  /// detector ~3 dB).
  double capture_margin_db{3.0};
  /// Receiver noise floor: kTB + noise figure for a 1.4 MHz LTE carrier
  /// (−174 + 61.5 + 9 ≈ −104 dBm).  The −95 dBm detection threshold sits
  /// 9 dB above it; noise mainly matters inside the capture rule, where it
  /// adds to same-preamble interference.
  util::Dbm noise_floor{-104.0};
  /// Links whose slot-averaged power clears the threshold by this margin
  /// are "reliable": they define the discovery obligation and the per-link
  /// sync criterion (weaker links fade below threshold too often to owe
  /// either).
  double reliable_link_margin_db{6.0};
  /// Fading headroom for candidate-cache pruning: receivers whose
  /// slot-averaged power is within this margin of the detection threshold
  /// stay delivery candidates (see RadioMedium::rebuild).  Rayleigh fading
  /// adds at most ~15 dB of constructive gain with probability ~2e-14, so
  /// this margin makes the pruned delivery loop exact in practice.
  static constexpr double kCandidateFadingMarginDb = 15.0;
  /// Candidate enumeration strategy: grid (production) or the dense
  /// reference the equivalence tests and scaling bench compare against.
  SpatialIndex spatial_index{SpatialIndex::kGrid};
};

class Channel {
 public:
  Channel(RadioParams params, std::unique_ptr<PathLossModel> pathloss,
          std::unique_ptr<ShadowingModel> shadowing, std::unique_ptr<FadingModel> fading,
          util::Rng fading_rng);

  /// Received power at `rx_pos` for a transmission from device `tx_id` at
  /// `tx_pos` to device `rx_id`.  Draws fresh fast fading.
  [[nodiscard]] util::Dbm received_power(std::uint32_t tx_id, geo::Vec2 tx_pos,
                                         std::uint32_t rx_id, geo::Vec2 rx_pos);

  /// Received power without fast fading (slot-averaged), used by neighbour
  /// weight estimation where the protocol averages several PSs.
  [[nodiscard]] util::Dbm mean_received_power(std::uint32_t tx_id, geo::Vec2 tx_pos,
                                              std::uint32_t rx_id, geo::Vec2 rx_pos);

  /// Same value as `mean_received_power` for order-independent shadowing
  /// models, via the model's cache-free path: bulk candidate rebuilds use
  /// it so scanning millions of pairs does not grow the per-link memo.
  [[nodiscard]] util::Dbm mean_received_power_uncached(std::uint32_t tx_id, geo::Vec2 tx_pos,
                                                       std::uint32_t rx_id, geo::Vec2 rx_pos);

  /// One fast-fading power gain from the shared per-delivery stream;
  /// consumes exactly the randomness `received_power` would.  The radio's
  /// spatial-index fast path draws the gain, compares it against a
  /// precomputed linear threshold and only converts to dBm when audible.
  [[nodiscard]] double sample_fading_gain() { return fading_->sample_gain(fading_rng_); }

  /// The raw uniform behind one fading draw, for models with
  /// `supports_uniform_skip()`: consumes the same single generator step
  /// `sample_fading_gain` would, letting the radio compare it against a
  /// candidate's precomputed `skip_u` bound before paying the gain
  /// transform.
  [[nodiscard]] double sample_fading_uniform() { return fading_rng_.unit_open(); }

  /// Batched form of `sample_fading_uniform`: fills `out[0..n)` with the
  /// exact sequence n scalar calls would produce (same stream, same order),
  /// so the radio's vectorised delivery sweep stays bit-identical to the
  /// per-candidate path.
  void fill_fading_uniforms(double* out, std::size_t n) {
    fading_rng_.fill_unit_open(out, n);
  }

  [[nodiscard]] bool detectable(util::Dbm rx) const {
    return rx >= params_.detection_threshold;
  }

  /// Deterministic maximum range: distance at which the *median* channel
  /// (no shadowing/fading) hits the threshold.  Useful for bounding
  /// neighbour candidate sets.
  [[nodiscard]] double median_range() const;

  /// Hard upper bound on the distance at which a slot-averaged reception
  /// can clear the detection threshold, given the path-loss budget, the
  /// shadowing model's bounded gain and `extra_margin_db` of headroom
  /// (e.g. the candidate fading margin).  +inf when the shadowing model is
  /// unbounded — spatial pruning then degrades to a dense scan.
  [[nodiscard]] double max_detectable_range(double extra_margin_db = 0.0) const;

  [[nodiscard]] const RadioParams& params() const { return params_; }
  [[nodiscard]] const PathLossModel& pathloss() const { return *pathloss_; }
  [[nodiscard]] ShadowingModel& shadowing() { return *shadowing_; }
  [[nodiscard]] const FadingModel& fading() const { return *fading_; }
  /// The fast-fading stream — the channel's only mutable state in a static
  /// scenario (shadowing memo entries are pure caches of hash-derived
  /// draws).  Exposed so the engine's snapshot/restore checkpoint can save
  /// and rewind it.
  [[nodiscard]] util::Rng& fading_rng() { return fading_rng_; }

 private:
  RadioParams params_;
  std::unique_ptr<PathLossModel> pathloss_;
  std::unique_ptr<ShadowingModel> shadowing_;
  std::unique_ptr<FadingModel> fading_;
  util::Rng fading_rng_;
};

/// Canonical Table I channel: dual-slope path loss, per-link 10 dB
/// shadowing, Rayleigh fast fading; seeded from `master_seed`.
[[nodiscard]] std::unique_ptr<Channel> make_paper_channel(std::uint64_t master_seed,
                                                          RadioParams params = {});

}  // namespace firefly::phy
