// channel.hpp — the composed radio channel.
//
// Combines transmit power with deterministic path loss, static per-link
// shadowing and per-reception fast fading into a received power
//     rx = tx − PL(d) − X_shadow(link) − X_fade,            (paper eqs. 7–10)
// and answers the two questions the protocols ask:
//   * what power does device b receive from device a right now, and
//   * is that above the detection threshold (Table I: −95 dBm)?
// The channel owns the stochastic models; protocol code never touches RNGs
// for propagation, which keeps PHY randomness in one auditable stream.
#pragma once

#include <cstdint>
#include <memory>

#include "geo/point.hpp"
#include "phy/fading.hpp"
#include "phy/pathloss.hpp"
#include "phy/shadowing.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace firefly::phy {

/// Table I radio constants.
struct RadioParams {
  util::Dbm tx_power{23.0};             ///< device power, 23 dBm
  util::Dbm detection_threshold{-95.0}; ///< PS detection threshold
  double shadowing_sigma_db{10.0};      ///< shadowing std-dev
  /// Same-preamble capture: decoded anyway when the wanted signal exceeds
  /// the summed interference-plus-noise by this margin (typical LTE PRACH
  /// detector ~3 dB).
  double capture_margin_db{3.0};
  /// Receiver noise floor: kTB + noise figure for a 1.4 MHz LTE carrier
  /// (−174 + 61.5 + 9 ≈ −104 dBm).  The −95 dBm detection threshold sits
  /// 9 dB above it; noise mainly matters inside the capture rule, where it
  /// adds to same-preamble interference.
  util::Dbm noise_floor{-104.0};
  /// Links whose slot-averaged power clears the threshold by this margin
  /// are "reliable": they define the discovery obligation and the per-link
  /// sync criterion (weaker links fade below threshold too often to owe
  /// either).
  double reliable_link_margin_db{6.0};
};

class Channel {
 public:
  Channel(RadioParams params, std::unique_ptr<PathLossModel> pathloss,
          std::unique_ptr<ShadowingModel> shadowing, std::unique_ptr<FadingModel> fading,
          util::Rng fading_rng);

  /// Received power at `rx_pos` for a transmission from device `tx_id` at
  /// `tx_pos` to device `rx_id`.  Draws fresh fast fading.
  [[nodiscard]] util::Dbm received_power(std::uint32_t tx_id, geo::Vec2 tx_pos,
                                         std::uint32_t rx_id, geo::Vec2 rx_pos);

  /// Received power without fast fading (slot-averaged), used by neighbour
  /// weight estimation where the protocol averages several PSs.
  [[nodiscard]] util::Dbm mean_received_power(std::uint32_t tx_id, geo::Vec2 tx_pos,
                                              std::uint32_t rx_id, geo::Vec2 rx_pos);

  [[nodiscard]] bool detectable(util::Dbm rx) const {
    return rx >= params_.detection_threshold;
  }

  /// Deterministic maximum range: distance at which the *median* channel
  /// (no shadowing/fading) hits the threshold.  Useful for bounding
  /// neighbour candidate sets.
  [[nodiscard]] double median_range() const;

  [[nodiscard]] const RadioParams& params() const { return params_; }
  [[nodiscard]] const PathLossModel& pathloss() const { return *pathloss_; }
  [[nodiscard]] ShadowingModel& shadowing() { return *shadowing_; }

 private:
  RadioParams params_;
  std::unique_ptr<PathLossModel> pathloss_;
  std::unique_ptr<ShadowingModel> shadowing_;
  std::unique_ptr<FadingModel> fading_;
  util::Rng fading_rng_;
};

/// Canonical Table I channel: dual-slope path loss, per-link 10 dB
/// shadowing, Rayleigh fast fading; seeded from `master_seed`.
[[nodiscard]] std::unique_ptr<Channel> make_paper_channel(std::uint64_t master_seed,
                                                          RadioParams params = {});

}  // namespace firefly::phy
