// pathloss.hpp — deterministic distance-dependent path loss models.
//
// All models return a positive loss in dB; received power is
// rx = tx − PL(d) − X_shadow − X_fade.  Three models:
//
//   * `LogDistance` — the paper's eq. (7): received power falls as
//     10·n·log10(d/d0) past a reference distance d0, with path-loss
//     exponent n (2 indoor, 4 outdoor per the paper).
//   * `PaperDualSlope` — Table I's propagation model, the 3GPP D2D outdoor
//     NLOS curve:  PL = 4.35 + 25·log10(d)   for d < 6 m
//                  PL = 40.0 + 40·log10(d)   otherwise.
//   * `FreeSpace` — Friis free-space loss at a given carrier frequency, as
//     a sanity baseline.
//
// Each model exposes the inverse `distance_for_loss` used by RSSI ranging
// (the device inverts the measured loss to estimate range).
#pragma once

#include <memory>
#include <string>

#include "util/units.hpp"

namespace firefly::phy {

class PathLossModel {
 public:
  virtual ~PathLossModel() = default;

  /// Loss at distance d metres (d clamped to >= min_distance()).
  [[nodiscard]] virtual util::Db loss(double distance_m) const = 0;
  /// Inverse: the distance that would produce this loss.
  [[nodiscard]] virtual double distance_for_loss(util::Db loss) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Distances below this are clamped (models diverge at d -> 0).
  [[nodiscard]] virtual double min_distance() const { return 0.1; }
};

/// Log-distance model (paper eq. 7).  `loss_at_reference` is the loss at
/// d0; the paper leaves it implicit, so we default to the dual-slope
/// model's value at 1 m for continuity.
class LogDistance final : public PathLossModel {
 public:
  LogDistance(double exponent, double reference_distance_m = 1.0,
              util::Db loss_at_reference = util::Db{40.0});

  [[nodiscard]] util::Db loss(double distance_m) const override;
  [[nodiscard]] double distance_for_loss(util::Db loss) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double exponent() const { return exponent_; }

 private:
  double exponent_;
  double d0_;
  util::Db pl0_;
};

/// Table I dual-slope outdoor NLOS model.
class PaperDualSlope final : public PathLossModel {
 public:
  static constexpr double kBreakpoint = 6.0;  // metres

  [[nodiscard]] util::Db loss(double distance_m) const override;
  [[nodiscard]] double distance_for_loss(util::Db loss) const override;
  [[nodiscard]] std::string name() const override { return "paper-dual-slope"; }
};

/// Friis free-space loss: 20·log10(d) + 20·log10(f) − 147.55 (f in Hz).
class FreeSpace final : public PathLossModel {
 public:
  explicit FreeSpace(double frequency_hz = 2.0e9) : frequency_hz_(frequency_hz) {}

  [[nodiscard]] util::Db loss(double distance_m) const override;
  [[nodiscard]] double distance_for_loss(util::Db loss) const override;
  [[nodiscard]] std::string name() const override { return "free-space"; }

 private:
  double frequency_hz_;
};

/// Factory helpers for the scenarios.
[[nodiscard]] std::unique_ptr<PathLossModel> make_paper_model();
[[nodiscard]] std::unique_ptr<PathLossModel> make_outdoor_log_distance();

}  // namespace firefly::phy
