#include "phy/fading.hpp"

#include <algorithm>
#include <cmath>

namespace firefly::phy {

double RayleighFading::sample_gain(util::Rng& rng) const {
  return rng.exponential(1.0);
}

double RicianFading::sample_gain(util::Rng& rng) const {
  // Complex channel h = sqrt(K/(K+1)) + (x + iy)/sqrt(2(K+1)),
  // x, y ~ N(0,1): E[|h|²] = K/(K+1) + 1/(K+1) = 1.
  const double los = std::sqrt(k_ / (k_ + 1.0));
  const double scatter_scale = std::sqrt(1.0 / (2.0 * (k_ + 1.0)));
  const double re = los + scatter_scale * rng.normal();
  const double im = scatter_scale * rng.normal();
  return re * re + im * im;
}

double NakagamiFading::sample_gain(util::Rng& rng) const {
  return rng.gamma(m_, 1.0 / m_);
}

}  // namespace firefly::phy
