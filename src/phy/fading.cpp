#include "phy/fading.hpp"

#include <algorithm>
#include <cmath>

namespace firefly::phy {

namespace {
// Floor on the linear power gain so a deep fade produces a large but finite
// loss (-60 dB) rather than -inf, which would poison dB arithmetic.
constexpr double kGainFloor = 1e-6;

util::Db loss_from_gain(double gain) {
  return util::Db{-10.0 * std::log10(std::max(gain, kGainFloor))};
}
}  // namespace

util::Db RayleighFading::sample(util::Rng& rng) const {
  return loss_from_gain(rng.exponential(1.0));
}

util::Db RicianFading::sample(util::Rng& rng) const {
  // Complex channel h = sqrt(K/(K+1)) + (x + iy)/sqrt(2(K+1)),
  // x, y ~ N(0,1): E[|h|²] = K/(K+1) + 1/(K+1) = 1.
  const double los = std::sqrt(k_ / (k_ + 1.0));
  const double scatter_scale = std::sqrt(1.0 / (2.0 * (k_ + 1.0)));
  const double re = los + scatter_scale * rng.normal();
  const double im = scatter_scale * rng.normal();
  return loss_from_gain(re * re + im * im);
}

util::Db NakagamiFading::sample(util::Rng& rng) const {
  return loss_from_gain(rng.gamma(m_, 1.0 / m_));
}

}  // namespace firefly::phy
