#include "phy/energy.hpp"

#include <algorithm>
#include <cassert>

namespace firefly::phy {

EnergyMeter::EnergyMeter(std::size_t device_count, EnergyParams params)
    : params_(params), tx_slots_(device_count, 0), rx_slots_(device_count, 0) {}

double EnergyMeter::device_energy_mj(std::uint32_t device, std::int64_t elapsed_slots,
                                     double awake_fraction) const {
  assert(device < tx_slots_.size());
  assert(awake_fraction >= 0.0 && awake_fraction <= 1.0);
  const double tx = static_cast<double>(tx_slots_[device]);
  const double rx = static_cast<double>(rx_slots_[device]);
  const double busy = tx + rx;
  const double remainder = std::max(0.0, static_cast<double>(elapsed_slots) - busy);
  const double idle = remainder * awake_fraction;
  const double sleep = remainder * (1.0 - awake_fraction);
  const double mw_slots = tx * params_.tx_mw + rx * params_.rx_mw +
                          idle * params_.idle_mw + sleep * params_.sleep_mw;
  return mw_slots * params_.slot_seconds;  // mW·s == mJ
}

double EnergyMeter::total_energy_mj(std::int64_t elapsed_slots, double awake_fraction) const {
  double total = 0.0;
  for (std::uint32_t d = 0; d < tx_slots_.size(); ++d) {
    total += device_energy_mj(d, elapsed_slots, awake_fraction);
  }
  return total;
}

double EnergyMeter::mean_energy_mj(std::int64_t elapsed_slots, double awake_fraction) const {
  if (tx_slots_.empty()) return 0.0;
  return total_energy_mj(elapsed_slots, awake_fraction) /
         static_cast<double>(tx_slots_.size());
}

}  // namespace firefly::phy
