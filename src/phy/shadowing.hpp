// shadowing.hpp — log-normal shadow fading (paper eq. 9).
//
// The paper models medium-scale fading as a zero-mean Gaussian `x` in dB
// with standard deviation σ = 10 dB (Table I).  For a *static* deployment a
// link's shadowing is constant over the run (obstructions don't move), so
// the default model draws once per unordered link and memoises — this also
// makes the link symmetric, which the ranging analysis assumes.  An i.i.d.
// per-sample mode is provided for the analytic-error validation bench, and
// a distance-correlated (Gudmundson) mode for the mobility extension.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "geo/point.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace firefly::phy {

class ShadowingModel {
 public:
  virtual ~ShadowingModel() = default;
  /// Shadowing loss in dB for the (a, b) link (may be negative = gain).
  [[nodiscard]] virtual util::Db sample(std::uint32_t a, std::uint32_t b) = 0;
  /// Like `sample`, but guaranteed not to grow memoised state — the
  /// spatial-index bulk rebuilds use it so scanning millions of candidate
  /// pairs does not inflate the per-link cache.  Models whose draws are
  /// order-dependent (or stateless) simply forward to `sample`.
  [[nodiscard]] virtual util::Db sample_uncached(std::uint32_t a, std::uint32_t b) {
    return sample(a, b);
  }
  [[nodiscard]] virtual double sigma_db() const = 0;
  /// Upper bound on the shadowing *gain* (−sample) in dB, used to bound
  /// the maximum detectable range for spatial pruning; +inf when the model
  /// is unbounded (pruning then degrades to a dense scan, never to a wrong
  /// answer).
  [[nodiscard]] virtual double max_gain_db() const {
    return std::numeric_limits<double>::infinity();
  }
  /// Invalidate memoised link state after large-scale movement; models
  /// without memoised state ignore it.
  virtual void invalidate() {}
};

/// No shadowing (σ = 0): for deterministic unit tests.
class NoShadowing final : public ShadowingModel {
 public:
  [[nodiscard]] util::Db sample(std::uint32_t, std::uint32_t) override { return util::Db{0.0}; }
  [[nodiscard]] double sigma_db() const override { return 0.0; }
  [[nodiscard]] double max_gain_db() const override { return 0.0; }
};

/// Fresh Gaussian draw on every call (eq. 9 verbatim).
class IidShadowing final : public ShadowingModel {
 public:
  IidShadowing(double sigma_db, util::Rng rng) : sigma_(sigma_db), rng_(rng) {}

  [[nodiscard]] util::Db sample(std::uint32_t, std::uint32_t) override {
    return util::Db{rng_.normal(0.0, sigma_)};
  }
  [[nodiscard]] double sigma_db() const override { return sigma_; }

 private:
  double sigma_;
  util::Rng rng_;
};

/// One Gaussian draw per unordered link: the static-scenario model.
/// Symmetric by construction: sample(a,b) == sample(b,a).
///
/// The draw is *hash-derived* from (seed, link, epoch) rather than consumed
/// from a sequential stream, so a link's value never depends on which other
/// links were queried first — the property that lets the spatial-index
/// radio path evaluate exactly the same channel as a dense scan.  Draws are
/// clamped at ±`kClampSigmas`·σ, giving the hard `max_gain_db` bound that
/// makes range-based candidate pruning exact; the clamp shifts the per-link
/// variance by < 0.5% (truncation probability ≈ 2.7e-3 per link).
/// `sample` memoises into a per-link cache (the dense scan's working set);
/// `sample_uncached` recomputes the identical value without touching it.
class PerLinkShadowing final : public ShadowingModel {
 public:
  /// Truncation point for link draws, in standard deviations.
  static constexpr double kClampSigmas = 3.0;

  PerLinkShadowing(double sigma_db, std::uint64_t seed) : sigma_(sigma_db), seed_(seed) {}
  /// Compatibility constructor: derives the hash seed from the stream.
  PerLinkShadowing(double sigma_db, util::Rng rng) : sigma_(sigma_db), seed_(rng.bits()) {}

  [[nodiscard]] util::Db sample(std::uint32_t a, std::uint32_t b) override;
  [[nodiscard]] util::Db sample_uncached(std::uint32_t a, std::uint32_t b) override {
    return util::Db{draw(a, b)};
  }
  [[nodiscard]] double sigma_db() const override { return sigma_; }
  [[nodiscard]] double max_gain_db() const override { return kClampSigmas * sigma_; }
  /// Decorrelate every link (epoch bump) and drop the memoised draws.
  void reset() {
    ++epoch_;
    cache_.clear();
  }
  void invalidate() override { reset(); }

 private:
  [[nodiscard]] double draw(std::uint32_t a, std::uint32_t b) const;

  double sigma_;
  std::uint64_t seed_;
  std::uint64_t epoch_ = 0;
  std::unordered_map<std::uint64_t, double> cache_;
};

/// Spatially correlated shadowing (Gudmundson-style).
///
/// Each link's shadowing is σ · F(midpoint(p_a, p_b)), where F is a smooth
/// unit-variance Gaussian random field realised by bilinear interpolation
/// of an i.i.d. grid with spacing equal to the decorrelation distance
/// (re-normalised so the pointwise variance stays exactly 1).
/// Consequences the tests pin: per-link variance σ², symmetry by
/// construction, and links whose midpoints are close see strongly
/// correlated shadowing while far-apart links decorrelate — obstructions
/// are shared by co-located links, which i.i.d. per-link draws cannot
/// express.  Device positions are fixed at construction (the static
/// Table I deployment); `field_at` is exposed for tests and visualisation.
class CorrelatedShadowing final : public ShadowingModel {
 public:
  CorrelatedShadowing(double sigma_db, double decorrelation_m,
                      std::vector<geo::Vec2> positions, util::Rng rng);

  [[nodiscard]] util::Db sample(std::uint32_t a, std::uint32_t b) override;
  [[nodiscard]] double sigma_db() const override { return sigma_; }

  /// The underlying unit-variance field (for tests/ablation).
  [[nodiscard]] double field_at(geo::Vec2 p) const;

 private:
  [[nodiscard]] double grid_value(std::int64_t ix, std::int64_t iy) const;

  double sigma_;
  double spacing_;
  std::vector<geo::Vec2> positions_;
  // Lazily drawn grid values keyed by cell index; mutable via const helper.
  mutable std::unordered_map<std::uint64_t, double> grid_;
  mutable util::Rng rng_;
  std::uint64_t field_seed_;
};

}  // namespace firefly::phy
