#include "phy/channel.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace firefly::phy {

Channel::Channel(RadioParams params, std::unique_ptr<PathLossModel> pathloss,
                 std::unique_ptr<ShadowingModel> shadowing,
                 std::unique_ptr<FadingModel> fading, util::Rng fading_rng)
    : params_(params),
      pathloss_(std::move(pathloss)),
      shadowing_(std::move(shadowing)),
      fading_(std::move(fading)),
      fading_rng_(fading_rng) {
  assert(pathloss_ != nullptr && shadowing_ != nullptr && fading_ != nullptr);
}

util::Dbm Channel::received_power(std::uint32_t tx_id, geo::Vec2 tx_pos, std::uint32_t rx_id,
                                  geo::Vec2 rx_pos) {
  const double d = geo::distance(tx_pos, rx_pos);
  return params_.tx_power - pathloss_->loss(d) - shadowing_->sample(tx_id, rx_id) -
         fading_->sample(fading_rng_);
}

util::Dbm Channel::mean_received_power(std::uint32_t tx_id, geo::Vec2 tx_pos,
                                       std::uint32_t rx_id, geo::Vec2 rx_pos) {
  const double d = geo::distance(tx_pos, rx_pos);
  return params_.tx_power - pathloss_->loss(d) - shadowing_->sample(tx_id, rx_id);
}

util::Dbm Channel::mean_received_power_uncached(std::uint32_t tx_id, geo::Vec2 tx_pos,
                                                std::uint32_t rx_id, geo::Vec2 rx_pos) {
  // Mirrors mean_received_power term-for-term so the two are bit-identical
  // for order-independent shadowing models.
  const double d = geo::distance(tx_pos, rx_pos);
  return params_.tx_power - pathloss_->loss(d) - shadowing_->sample_uncached(tx_id, rx_id);
}

double Channel::median_range() const {
  const util::Db budget = params_.tx_power - params_.detection_threshold;
  return pathloss_->distance_for_loss(budget);
}

double Channel::max_detectable_range(double extra_margin_db) const {
  const double shadow_gain = shadowing_->max_gain_db();
  if (!std::isfinite(shadow_gain)) return std::numeric_limits<double>::infinity();
  const util::Db budget = (params_.tx_power - params_.detection_threshold) +
                          util::Db{extra_margin_db + shadow_gain};
  return pathloss_->distance_for_loss(budget);
}

std::unique_ptr<Channel> make_paper_channel(std::uint64_t master_seed, RadioParams params) {
  util::RngFactory factory(master_seed);
  return std::make_unique<Channel>(
      params, make_paper_model(),
      std::make_unique<PerLinkShadowing>(params.shadowing_sigma_db,
                                         util::derive_seed(master_seed, "phy.shadowing")),
      std::make_unique<RayleighFading>(), factory.make("phy.fading"));
}

}  // namespace firefly::phy
