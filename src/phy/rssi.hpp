// rssi.hpp — RSSI-based ranging (the paper's eqs. 6–12).
//
// A device receiving a proximity signal at power p can invert the path-loss
// model to estimate the transmitter's distance.  Shadowing `x` (Gaussian,
// σ dB) corrupts the estimate *multiplicatively*:
//     r_est = r_true · 10^(x / (10 n))                      (eq. 11)
//     ε     = r_est / r_true − 1 = 10^(x/(10n)) − 1          (eqs. 6, 12)
// so the relative error is log-normal.  `RssiRanging` performs the
// inversion against any PathLossModel; the analytic helpers give the exact
// moments of ε, which the validation bench compares to simulation.
#pragma once

#include "phy/pathloss.hpp"
#include "util/units.hpp"

namespace firefly::phy {

class RssiRanging {
 public:
  RssiRanging(const PathLossModel* model, util::Dbm tx_power)
      : model_(model), tx_power_(tx_power) {}

  /// Distance estimate from a received power (inverts the model; any
  /// shadowing/fading in `rx` surfaces as ranging error).
  [[nodiscard]] double estimate_distance(util::Dbm rx) const {
    return model_->distance_for_loss(tx_power_ - rx);
  }

  /// Relative ranging error (eq. 6) given truth.
  [[nodiscard]] static double relative_error(double estimated, double actual) {
    return estimated / actual - 1.0;
  }

 private:
  const PathLossModel* model_;
  util::Dbm tx_power_;
};

/// Analytic error statistics for a log-distance channel with exponent n and
/// shadowing σ (dB).  Let s = σ·ln(10)/(10·n); then 10^(x/10n) is
/// log-normal(0, s²):
///   E[r_est/r]   = exp(s²/2)
///   Var[r_est/r] = (exp(s²) − 1)·exp(s²)
///   median multiplicative error = 1 (the estimator is median-unbiased).
struct RangingErrorStats {
  double mean_ratio;    ///< E[r_est / r_true]
  double stddev_ratio;  ///< SD[r_est / r_true]
  double median_ratio;  ///< always 1.0 for zero-mean shadowing
  double p90_ratio;     ///< 90th percentile of r_est / r_true
};

[[nodiscard]] RangingErrorStats analytic_ranging_error(double sigma_db,
                                                       double pathloss_exponent);

/// The multiplicative distortion 10^(x/(10n)) for a given shadowing draw x
/// (eq. 11's factor).  Exposed for tests.
[[nodiscard]] double ranging_distortion(double shadow_db, double pathloss_exponent);

}  // namespace firefly::phy
