#include "phy/pathloss.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace firefly::phy {

namespace {
// The dual-slope curve is continuous at the breakpoint only approximately
// (4.35 + 25·log10(6) = 23.80;  40 + 40·log10(6) = 71.13) — the paper's
// Table I has a deliberate near-field/far-field regime jump, which we keep
// verbatim.  Inversion resolves the ambiguity by preferring the far-field
// branch (losses in the gap map to the breakpoint).
constexpr double kNearIntercept = 4.35;
constexpr double kNearSlope = 25.0;
constexpr double kFarIntercept = 40.0;
constexpr double kFarSlope = 40.0;
}  // namespace

LogDistance::LogDistance(double exponent, double reference_distance_m,
                         util::Db loss_at_reference)
    : exponent_(exponent), d0_(reference_distance_m), pl0_(loss_at_reference) {
  assert(exponent_ > 0.0);
  assert(d0_ > 0.0);
}

util::Db LogDistance::loss(double distance_m) const {
  const double d = std::max(distance_m, min_distance());
  return util::Db{pl0_.value + 10.0 * exponent_ * std::log10(d / d0_)};
}

double LogDistance::distance_for_loss(util::Db pl) const {
  return d0_ * std::pow(10.0, (pl.value - pl0_.value) / (10.0 * exponent_));
}

std::string LogDistance::name() const {
  std::ostringstream os;
  os << "log-distance(n=" << exponent_ << ")";
  return os.str();
}

util::Db PaperDualSlope::loss(double distance_m) const {
  const double d = std::max(distance_m, min_distance());
  if (d < kBreakpoint) return util::Db{kNearIntercept + kNearSlope * std::log10(d)};
  return util::Db{kFarIntercept + kFarSlope * std::log10(d)};
}

double PaperDualSlope::distance_for_loss(util::Db pl) const {
  const double far_loss_at_break = kFarIntercept + kFarSlope * std::log10(kBreakpoint);
  if (pl.value >= far_loss_at_break) {
    return std::pow(10.0, (pl.value - kFarIntercept) / kFarSlope);
  }
  const double near_loss_at_break = kNearIntercept + kNearSlope * std::log10(kBreakpoint);
  if (pl.value >= near_loss_at_break) {
    // Losses inside the regime gap have no preimage; snap to the breakpoint.
    return kBreakpoint;
  }
  return std::max(min_distance(),
                  std::pow(10.0, (pl.value - kNearIntercept) / kNearSlope));
}

util::Db FreeSpace::loss(double distance_m) const {
  const double d = std::max(distance_m, min_distance());
  return util::Db{20.0 * std::log10(d) + 20.0 * std::log10(frequency_hz_) - 147.55};
}

double FreeSpace::distance_for_loss(util::Db pl) const {
  const double exponent = (pl.value - 20.0 * std::log10(frequency_hz_) + 147.55) / 20.0;
  return std::pow(10.0, exponent);
}

std::unique_ptr<PathLossModel> make_paper_model() {
  return std::make_unique<PaperDualSlope>();
}

std::unique_ptr<PathLossModel> make_outdoor_log_distance() {
  // Outdoor exponent n = 4 per Section III, anchored to the dual-slope
  // model's far-field intercept at 1 m.
  return std::make_unique<LogDistance>(4.0, 1.0, util::Db{40.0});
}

}  // namespace firefly::phy
