#include "phy/link.hpp"

#include <cassert>
#include <cmath>

namespace firefly::phy {

double snr_linear(util::Dbm received, util::Dbm noise) {
  return (received - noise).ratio();
}

double shannon_rate_mbps(util::Dbm received, util::Dbm noise, double bandwidth_hz) {
  assert(bandwidth_hz > 0.0);
  return bandwidth_hz * std::log2(1.0 + snr_linear(received, noise)) / 1e6;
}

double rayleigh_outage(util::Dbm mean_received, util::Dbm required, util::Dbm noise) {
  const double snr_mean = snr_linear(mean_received, noise);
  const double snr_required = snr_linear(required, noise);
  if (snr_mean <= 0.0) return 1.0;
  return 1.0 - std::exp(-snr_required / snr_mean);
}

double rayleigh_ergodic_rate_mbps(util::Dbm mean_received, util::Dbm noise,
                                  double bandwidth_hz) {
  assert(bandwidth_hz > 0.0);
  const double snr_mean = snr_linear(mean_received, noise);
  // Midpoint quadrature over the uniform quantile u of g = −ln(1 − u):
  // E[f(g)] = ∫₀¹ f(−ln(1−u)) du.
  constexpr int kPoints = 2048;
  double sum = 0.0;
  for (int i = 0; i < kPoints; ++i) {
    const double u = (static_cast<double>(i) + 0.5) / kPoints;
    const double gain = -std::log(1.0 - u);
    sum += std::log2(1.0 + snr_mean * gain);
  }
  return bandwidth_hz * (sum / kPoints) / 1e6;
}

}  // namespace firefly::phy
