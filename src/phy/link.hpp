// link.hpp — link-quality estimates for established D2D pairs.
//
// Once discovery and slot synchronisation are done, the question becomes
// what the direct links are worth: Shannon capacity at the measured SNR,
// outage probability under the Rayleigh fast fading the Table I channel
// uses, and ergodic (fading-averaged) throughput.  All closed-form or
// deterministic quadrature — no RNG — so the examples can quote stable
// numbers.
#pragma once

#include "util/units.hpp"

namespace firefly::phy {

/// Linear SNR from received power and noise floor.
[[nodiscard]] double snr_linear(util::Dbm received, util::Dbm noise);

/// Instantaneous Shannon rate BW·log2(1 + SNR), in Mbit/s.
[[nodiscard]] double shannon_rate_mbps(util::Dbm received, util::Dbm noise,
                                       double bandwidth_hz);

/// Outage probability under Rayleigh fading: the power gain is Exp(1), so
/// P[SNR·g < snr_required] = 1 − exp(−snr_required / SNR_mean).
[[nodiscard]] double rayleigh_outage(util::Dbm mean_received, util::Dbm required,
                                     util::Dbm noise);

/// Ergodic Shannon rate under Rayleigh fading:
/// E_g[BW·log2(1 + SNR·g)], g ~ Exp(1), evaluated by fixed quadrature over
/// the exponential quantiles (deterministic, <0.5% error).
[[nodiscard]] double rayleigh_ergodic_rate_mbps(util::Dbm mean_received, util::Dbm noise,
                                                double bandwidth_hz);

/// LTE-A D2D sidelink default: 10 MHz channel.
inline constexpr double kSidelinkBandwidthHz = 10e6;

}  // namespace firefly::phy
