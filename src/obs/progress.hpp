// progress.hpp — progress/ETA reporting for long Monte-Carlo sweeps.
//
// A `ProgressReporter` counts completed work units (trials) and prints a
// single self-overwriting status line to stderr at a bounded rate:
//
//   [fig3] 42/70 trials (60%) elapsed 12.3s eta 8.2s
//
// It writes to stderr only, never stdout, so machine-readable bench output
// stays byte-deterministic while a human watching a 1000-node sweep can
// see it is alive.  Thread-safe: pooled sweep workers call advance()
// concurrently.
#pragma once

#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>

namespace firefly::obs {

class ProgressReporter {
 public:
  /// `out` defaults to std::cerr; tests inject a stringstream.
  ProgressReporter(std::string label, std::size_t total,
                   std::chrono::milliseconds min_interval = std::chrono::milliseconds(500),
                   std::ostream* out = nullptr);

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Mark `n` units complete; prints when min_interval has elapsed since
  /// the last print (and always on the final unit).
  void advance(std::size_t n = 1);
  /// Print the final state and a newline; idempotent.
  void finish();

  [[nodiscard]] std::size_t done() const;

  ~ProgressReporter() { finish(); }

 private:
  void print_locked();

  mutable std::mutex mutex_;
  std::string label_;
  std::size_t total_;
  std::size_t done_ = 0;
  bool finished_ = false;
  std::chrono::milliseconds min_interval_;
  std::ostream* out_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_print_;
};

}  // namespace firefly::obs
