#include "obs/progress.hpp"

#include <array>
#include <cstdio>
#include <iostream>

namespace firefly::obs {

ProgressReporter::ProgressReporter(std::string label, std::size_t total,
                                   std::chrono::milliseconds min_interval,
                                   std::ostream* out)
    : label_(std::move(label)),
      total_(total),
      min_interval_(min_interval),
      out_(out != nullptr ? out : &std::cerr),
      start_(std::chrono::steady_clock::now()),
      last_print_(start_ - min_interval) {}

void ProgressReporter::advance(std::size_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  done_ += n;
  const auto now = std::chrono::steady_clock::now();
  if (done_ < total_ && now - last_print_ < min_interval_) return;
  last_print_ = now;
  print_locked();
}

void ProgressReporter::finish() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  finished_ = true;
  print_locked();
  *out_ << '\n';
  out_->flush();
}

std::size_t ProgressReporter::done() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

void ProgressReporter::print_locked() {
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start_).count();
  const double fraction =
      total_ > 0 ? static_cast<double>(done_) / static_cast<double>(total_) : 1.0;
  std::array<char, 160> line{};
  if (done_ > 0 && done_ < total_) {
    const double eta = elapsed * (1.0 - fraction) / fraction;
    std::snprintf(line.data(), line.size(),
                  "\r[%s] %zu/%zu trials (%3.0f%%) elapsed %.1fs eta %.1fs   ",
                  label_.c_str(), done_, total_, 100.0 * fraction, elapsed, eta);
  } else {
    std::snprintf(line.data(), line.size(),
                  "\r[%s] %zu/%zu trials (%3.0f%%) elapsed %.1fs          ",
                  label_.c_str(), done_, total_, 100.0 * fraction, elapsed);
  }
  *out_ << line.data();
  out_->flush();
}

}  // namespace firefly::obs
