#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>

namespace firefly::obs {

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  counts_.assign(bounds_.size() + 1, 0);
}

Histogram Histogram::exponential(double first, double factor, std::size_t count) {
  assert(first > 0.0 && factor > 1.0 && count > 0);
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = first;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return Histogram(std::move(bounds));
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) < target) continue;
    // Interpolate inside bucket i between its lower and upper bound.
    const double lower = i > 0 ? bounds_[i - 1] : min_;
    const double upper = i < bounds_.size() ? bounds_[i] : max_;
    const double fraction =
        std::clamp((target - before) / static_cast<double>(counts_[i]), 0.0, 1.0);
    const double interpolated = lower + (upper - lower) * fraction;
    // Never report outside the observed range (exact for 1-sample
    // histograms and for the overflow bucket).
    return std::clamp(interpolated, min_, max_);
  }
  return max_;
}

void Histogram::write_json(JsonWriter& w) const {
  w.begin_object()
      .field("count", count())
      .field("sum", sum())
      .field("min", min())
      .field("max", max())
      .field("mean", mean())
      .field("p50", quantile(0.50))
      .field("p90", quantile(0.90))
      .field("p99", quantile(0.99))
      .end_object();
}

Counter& Registry::counter(const std::string& name) { return counters_[name]; }

Gauge& Registry::gauge(const std::string& name) { return gauges_[name]; }

Histogram& Registry::histogram(const std::string& name, std::vector<double> upper_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(upper_bounds))).first->second;
}

void Registry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, counter] : counters_) w.field(name, counter.value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, gauge] : gauges_) w.field(name, gauge.value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, histogram] : histograms_) {
    w.key(name);
    histogram.write_json(w);
  }
  w.end_object();
  w.end_object();
}

}  // namespace firefly::obs
