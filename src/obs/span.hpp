// span.hpp — profiling span collection and Chrome trace-event export.
//
// A `SpanSink` buffers completed wall-clock spans (what the RAII timers in
// timer.hpp measure) and serialises them in the Chrome trace-event JSON
// format, loadable in chrome://tracing and https://ui.perfetto.dev.  Span
// timestamps are wall-clock nanoseconds relative to the telemetry epoch —
// the timeline shows where *real* time goes — and each span carries the
// simulated time at which it ran as an argument, so the two clocks can be
// cross-referenced in the viewer.
//
// The sink is a ring: with a nonzero capacity the oldest spans are
// overwritten and counted in `dropped()`, bounding memory on multi-hour
// runs.  Default capacity is 1M spans (~48 MB); 0 means unlimited.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace firefly::obs {

/// Instrumented code regions.  Extend here and in span_name().
enum class SpanId : std::uint8_t {
  kSlotDelivery = 0,  ///< RadioMedium::flush_slot — one radio slot boundary
  kPcoUpdate = 1,     ///< EngineBase::apply_pulse_coupling — one PRC jump
  kHConnect = 2,      ///< StEngine::attempt_connect — one H_Connect attempt
  kMerge = 3,         ///< StEngine::local_merge — one fragment merge
  kTrial = 4,         ///< core::experiment — one Monte-Carlo trial
};
inline constexpr std::size_t kSpanIdCount = 5;

/// Stable lowercase name ("slot_delivery", ...), used for metric names and
/// trace-event names alike.
[[nodiscard]] const char* span_name(SpanId id);

struct Span {
  SpanId id;
  std::uint32_t tid;       ///< reporting thread (dense, assigned on first use)
  std::int64_t start_ns;   ///< wall clock, relative to the telemetry epoch
  std::int64_t duration_ns;
  double sim_ms;           ///< simulated time at span start; < 0 when n/a
};

class SpanSink {
 public:
  explicit SpanSink(std::size_t capacity = kDefaultCapacity);

  void add(const Span& span);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t dropped() const;
  /// Buffered spans in chronological (insertion) order.
  [[nodiscard]] std::vector<Span> snapshot() const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}) with "X" (complete)
  /// events; timestamps/durations in microseconds as the format requires.
  void write_chrome_trace(std::ostream& out) const;
  /// Same, to a file; returns false when the file cannot be opened.
  bool write_chrome_trace(const std::string& path) const;

  static constexpr std::size_t kDefaultCapacity = 1'000'000;

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<Span> spans_;
  std::size_t head_ = 0;  ///< next overwrite position once full
  std::uint64_t dropped_ = 0;
};

}  // namespace firefly::obs
