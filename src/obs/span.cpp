#include "obs/span.hpp"

#include <fstream>
#include <ostream>

#include "obs/json.hpp"

namespace firefly::obs {

const char* span_name(SpanId id) {
  switch (id) {
    case SpanId::kSlotDelivery: return "slot_delivery";
    case SpanId::kPcoUpdate: return "pco_update";
    case SpanId::kHConnect: return "h_connect";
    case SpanId::kMerge: return "fragment_merge";
    case SpanId::kTrial: return "trial";
  }
  return "?";
}

SpanSink::SpanSink(std::size_t capacity) : capacity_(capacity) {
  spans_.reserve(std::min<std::size_t>(capacity_ == 0 ? 4096 : capacity_, 4096));
}

void SpanSink::add(const Span& span) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0 || spans_.size() < capacity_) {
    spans_.push_back(span);
    return;
  }
  spans_[head_] = span;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::size_t SpanSink::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::uint64_t SpanSink::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<Span> SpanSink::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Span> out;
  out.reserve(spans_.size());
  // Ring order: [head_, end) is older than [0, head_).
  for (std::size_t i = head_; i < spans_.size(); ++i) out.push_back(spans_[i]);
  for (std::size_t i = 0; i < head_; ++i) out.push_back(spans_[i]);
  return out;
}

void SpanSink::write_chrome_trace(std::ostream& out) const {
  const std::vector<Span> spans = snapshot();
  JsonWriter w(out);
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  for (const Span& s : spans) {
    w.begin_object()
        .field("name", span_name(s.id))
        .field("cat", "firefly")
        .field("ph", "X")
        .field("pid", std::uint64_t{1})
        .field("tid", static_cast<std::uint64_t>(s.tid))
        .field("ts", static_cast<double>(s.start_ns) / 1000.0)
        .field("dur", static_cast<double>(s.duration_ns) / 1000.0);
    if (s.sim_ms >= 0.0) {
      w.key("args").begin_object().field("sim_ms", s.sim_ms).end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

bool SpanSink::write_chrome_trace(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(f);
  return true;
}

}  // namespace firefly::obs
