// json.hpp — deterministic streaming JSON emission.
//
// `JsonWriter` writes JSON to an ostream with no whitespace, caller-ordered
// keys and shortest-round-trip doubles (std::to_chars), so two runs that
// produce the same values produce byte-identical output.  It is the
// substrate for every obs exporter: JSONL run/sweep snapshots, registry
// dumps and the Chrome trace-event file.  No DOM, no allocation per value.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace firefly::obs {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by exactly one value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view{v}); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);

  // key + scalar in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// Escape `s` for inclusion inside a JSON string literal (no quotes).
  [[nodiscard]] static std::string escape(std::string_view s);
  /// Shortest round-trip decimal form; non-finite values become "null".
  [[nodiscard]] static std::string format_double(double v);

 private:
  /// Emit the separating comma when a value follows a sibling.
  void separate();

  struct Level {
    char kind;  // 'O' or 'A'
    bool first = true;
    bool key_pending = false;
  };
  std::ostream& out_;
  std::vector<Level> levels_;
};

}  // namespace firefly::obs
