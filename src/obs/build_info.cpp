#include "obs/build_info.hpp"

namespace firefly::obs {

namespace {

#ifndef FIREFLY_GIT_SHA
#define FIREFLY_GIT_SHA "unknown"
#endif
#ifndef FIREFLY_BUILD_TYPE
#define FIREFLY_BUILD_TYPE "unknown"
#endif

#if defined(__clang__)
constexpr const char* kCompiler = "clang " __clang_version__;
#elif defined(__GNUC__)
constexpr const char* kCompiler = "gcc " __VERSION__;
#else
constexpr const char* kCompiler = "unknown";
#endif

}  // namespace

BuildInfo build_info() {
  return BuildInfo{FIREFLY_GIT_SHA, kCompiler, FIREFLY_BUILD_TYPE};
}

void write_build_info_fields(JsonWriter& w) {
  const BuildInfo info = build_info();
  w.field("git_sha", info.git_sha)
      .field("compiler", info.compiler)
      .field("build_type", info.build_type);
}

}  // namespace firefly::obs
