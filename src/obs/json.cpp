#include "obs/json.hpp"

#include <array>
#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace firefly::obs {

void JsonWriter::separate() {
  if (levels_.empty()) return;
  Level& level = levels_.back();
  if (level.key_pending) {
    // The comma (if any) was written with the key.
    level.key_pending = false;
    return;
  }
  if (!level.first) out_ << ',';
  level.first = false;
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  out_ << '{';
  levels_.push_back(Level{'O'});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!levels_.empty() && levels_.back().kind == 'O');
  assert(!levels_.back().key_pending && "dangling key");
  levels_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  out_ << '[';
  levels_.push_back(Level{'A'});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!levels_.empty() && levels_.back().kind == 'A');
  levels_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  assert(!levels_.empty() && levels_.back().kind == 'O');
  Level& level = levels_.back();
  assert(!level.key_pending && "two keys in a row");
  if (!level.first) out_ << ',';
  level.first = false;
  level.key_pending = true;
  out_ << '"' << escape(k) << "\":";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separate();
  out_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  out_ << format_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  out_ << v;
  return *this;
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x", c);
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::format_double(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no NaN/Inf
  std::array<char, 32> buf{};
  const auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  assert(ec == std::errc());
  return std::string(buf.data(), ptr);
}

}  // namespace firefly::obs
