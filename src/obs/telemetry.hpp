// telemetry.hpp — the telemetry context the engines observe through.
//
// A `Telemetry` owns one metric `Registry`, pre-registers a latency
// histogram and call counter per instrumented span (span.<name>.us /
// span.<name>.calls), and optionally forwards completed spans to a
// `SpanSink` for Chrome-trace export.  Hot paths hold a `Telemetry*` that
// is null by default: with no context attached every instrumentation site
// reduces to one pointer test, the simulation consumes no extra randomness
// and `RunMetrics` is bit-identical to an uninstrumented run.
//
// Thread model: `record_span` and `observe` serialise through an internal
// mutex, so one context may be shared by all trials of a pooled sweep;
// contention is negligible because spans are recorded at slot/handshake
// granularity, not per arithmetic op.
#pragma once

#include <array>
#include <chrono>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace firefly::obs {

class Telemetry {
 public:
  Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] const Registry& registry() const { return registry_; }

  /// Forward spans to `sink` (not owned; null detaches).
  void attach_spans(SpanSink* sink) { spans_ = sink; }
  [[nodiscard]] SpanSink* spans() const { return spans_; }

  /// Record one completed span: histogram + counter, plus the span sink
  /// when attached.  Called by ScopedTimer; thread-safe.
  void record_span(SpanId id, std::chrono::steady_clock::time_point start,
                   std::chrono::nanoseconds duration, double sim_ms);

  /// Thread-safe find-or-create + increment for cold-path event counts.
  void count(const std::string& name, std::uint64_t n = 1);
  /// Thread-safe observation into a find-or-create histogram.
  void observe(const std::string& name, std::vector<double> upper_bounds, double x);

  /// Dense id for the calling thread (for span attribution).
  [[nodiscard]] static std::uint32_t thread_id();

 private:
  std::mutex mutex_;
  Registry registry_;
  std::array<Histogram*, kSpanIdCount> span_us_{};
  std::array<Counter*, kSpanIdCount> span_calls_{};
  SpanSink* spans_ = nullptr;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace firefly::obs
