// metrics.hpp — the metric registry: named counters, gauges and fixed-bucket
// histograms with streaming quantiles.
//
// Design constraints, in order:
//   * deterministic export — registry snapshots iterate in name order and
//     hold no wall-clock state, so two identical runs dump identical JSON;
//   * allocation-light hot path — callers look a metric up once (stable
//     address for the lifetime of the registry) and then update through the
//     pointer; an update is an add or a bucket increment, never a malloc;
//   * thread model — `Counter` is a relaxed atomic (safe to bump from
//     pooled sweep trials); `Gauge` stores through an atomic double;
//     `Histogram` and registry mutation are NOT thread-safe on their own —
//     concurrent writers go through `Telemetry`, which serialises them.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace firefly::obs {

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with interpolated streaming quantiles.
///
/// Buckets are defined by ascending upper bounds; one implicit overflow
/// bucket catches everything above the last bound.  Quantiles interpolate
/// linearly inside the selected bucket and are clamped to the observed
/// [min, max], so a single-sample histogram reports that sample exactly.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);
  /// `count` log-spaced buckets: bounds first, first*factor, first*factor², …
  [[nodiscard]] static Histogram exponential(double first, double factor,
                                             std::size_t count);

  void observe(double x);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }
  /// q in [0, 1].  Empty histogram -> 0.
  [[nodiscard]] double quantile(double q) const;

  /// Bucket counts; index bounds().size() is the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const {
    return counts_;
  }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

  /// {count,sum,min,max,mean,p50,p90,p99} as one JSON object.
  void write_json(JsonWriter& w) const;

 private:
  std::vector<double> bounds_;          // ascending upper bounds
  std::vector<std::uint64_t> counts_;   // bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named metrics with stable addresses and name-ordered export.
class Registry {
 public:
  /// Find-or-create; the returned reference stays valid for the registry's
  /// lifetime (std::map nodes never move).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` is used only on first creation of `name`.
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds);

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}},
  /// each section in name order.
  void write_json(JsonWriter& w) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace firefly::obs
