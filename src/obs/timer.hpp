// timer.hpp — scoped RAII wall-clock timers for the hot paths.
//
// `ScopedTimer span(telemetry, SpanId::kSlotDelivery, sim_ms);` measures
// the enclosing scope and records it into the telemetry context's per-span
// histogram/counter (and span sink, when attached).  With a null context
// the constructor and destructor are each a single pointer test — no clock
// read, no allocation, no lock — which is what keeps telemetry-off runs
// within the engine's performance budget and bit-identical in results.
#pragma once

#include <chrono>

#include "obs/telemetry.hpp"

namespace firefly::obs {

class ScopedTimer {
 public:
  /// `sim_ms` < 0 means "no simulated-time annotation".
  ScopedTimer(Telemetry* telemetry, SpanId id, double sim_ms = -1.0)
      : telemetry_(telemetry), id_(id), sim_ms_(sim_ms) {
    if (telemetry_ == nullptr) return;
    start_ = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (telemetry_ == nullptr) return;
    const auto duration = std::chrono::steady_clock::now() - start_;
    telemetry_->record_span(
        id_, start_, std::chrono::duration_cast<std::chrono::nanoseconds>(duration),
        sim_ms_);
  }

 private:
  Telemetry* telemetry_;
  SpanId id_;
  double sim_ms_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace firefly::obs
