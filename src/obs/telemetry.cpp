#include "obs/telemetry.hpp"

#include <atomic>

namespace firefly::obs {

namespace {
// Timer buckets: 0.25 us .. ~8.6 s, log-spaced ×2.  Covers a single PRC
// jump through a whole Monte-Carlo trial.
std::vector<double> timer_bounds_us() {
  std::vector<double> bounds;
  double b = 0.25;
  for (int i = 0; i < 25; ++i) {
    bounds.push_back(b);
    b *= 2.0;
  }
  return bounds;
}
}  // namespace

Telemetry::Telemetry() : epoch_(std::chrono::steady_clock::now()) {
  for (std::size_t i = 0; i < kSpanIdCount; ++i) {
    const std::string name = std::string("span.") + span_name(static_cast<SpanId>(i));
    span_us_[i] = &registry_.histogram(name + ".us", timer_bounds_us());
    span_calls_[i] = &registry_.counter(name + ".calls");
  }
}

void Telemetry::record_span(SpanId id, std::chrono::steady_clock::time_point start,
                            std::chrono::nanoseconds duration, double sim_ms) {
  const auto index = static_cast<std::size_t>(id);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    span_us_[index]->observe(static_cast<double>(duration.count()) / 1000.0);
  }
  span_calls_[index]->inc();
  if (spans_ != nullptr) {
    spans_->add(Span{
        id, thread_id(),
        std::chrono::duration_cast<std::chrono::nanoseconds>(start - epoch_).count(),
        duration.count(), sim_ms});
  }
}

void Telemetry::count(const std::string& name, std::uint64_t n) {
  Counter* counter;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    counter = &registry_.counter(name);
  }
  counter->inc(n);
}

void Telemetry::observe(const std::string& name, std::vector<double> upper_bounds,
                        double x) {
  const std::lock_guard<std::mutex> lock(mutex_);
  registry_.histogram(name, std::move(upper_bounds)).observe(x);
}

std::uint32_t Telemetry::thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace firefly::obs
