// build_info.hpp — build provenance for machine-readable bench output.
//
// Every exported JSONL stream carries an environment block (git sha,
// compiler, build type) so a `BENCH_*.json` trajectory recorded today can
// be attributed to the exact binary that produced it.  The git sha is
// captured at CMake configure time (see src/obs/CMakeLists.txt); it reads
// "unknown" outside a git checkout and goes stale only if you commit
// without reconfiguring.
#pragma once

#include <string_view>

#include "obs/json.hpp"

namespace firefly::obs {

struct BuildInfo {
  std::string_view git_sha;
  std::string_view compiler;
  std::string_view build_type;
};

[[nodiscard]] BuildInfo build_info();

/// Append the environment fields (git_sha, compiler, build_type) to the
/// currently open JSON object.
void write_build_info_fields(JsonWriter& w);

}  // namespace firefly::obs
