#include "mac/radio.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "obs/timer.hpp"
#include "util/log.hpp"

namespace firefly::mac {

RadioMedium::RadioMedium(sim::Simulator* sim, phy::Channel* channel, double capture_margin_db)
    : sim_(sim), channel_(channel), capture_margin_db_(capture_margin_db) {
  assert(sim_ != nullptr && channel_ != nullptr);
}

void RadioMedium::add_device(std::uint32_t id, geo::Vec2 position, ReceiveFn on_receive,
                             ListenFn listening) {
  if (id >= id_to_index_.size()) {
    id_to_index_.resize(id + 1, std::numeric_limits<std::size_t>::max());
  }
  assert(id_to_index_[id] == std::numeric_limits<std::size_t>::max() && "duplicate device id");
  id_to_index_[id] = devices_.size();
  devices_.push_back(DeviceEntry{id, position, std::move(on_receive), std::move(listening)});
  if (devices_.back().listening) any_listening_ = true;
  down_.push_back(0);
  invalidate();
  grid_ready_ = false;  // population changed: next rebuild re-seeds the grid
}

void RadioMedium::set_down(std::uint32_t id, bool down) {
  down_[index_of(id)] = down ? 1 : 0;
}

bool RadioMedium::is_down(std::uint32_t id) const {
  return down_[index_of(id)] != 0;
}

std::size_t RadioMedium::index_of(std::uint32_t id) const {
  assert(id < id_to_index_.size());
  const std::size_t idx = id_to_index_[id];
  assert(idx != std::numeric_limits<std::size_t>::max());
  return idx;
}

void RadioMedium::move_device(std::uint32_t id, geo::Vec2 position) {
  const std::size_t idx = index_of(id);
  devices_[idx].position = position;
  // Cell membership tracks the move incrementally; the memoised means are
  // stale until the caller rebuilds (mobility steps move every device,
  // then rebuild once).
  if (grid_ready_) grid_.move(idx, position);
  invalidate();
}

geo::Vec2 RadioMedium::device_position(std::uint32_t id) const {
  return devices_[index_of(id)].position;
}

void RadioMedium::admit_candidate(std::size_t u, std::size_t v, util::Dbm mean,
                                  util::Dbm cutoff) {
  if (mean < cutoff) return;
  // Fading headroom of the link.  Gains strictly below skip_gain provably
  // leave the reception sub-threshold (1e-9 dB of slack absorbs pow/log
  // rounding); borderline gains fall through to the exact dBm comparison,
  // so the fast path decides bit-identically with the dense one.  When the
  // headroom exceeds the fade-loss cap the link is audible in any fade.
  const double headroom_db = (mean - channel_->params().detection_threshold).value;
  const double max_loss_db = -10.0 * std::log10(phy::FadingModel::kGainFloor);
  double skip_gain = 0.0;
  if (headroom_db < max_loss_db) {
    skip_gain = std::pow(10.0, -(headroom_db + 1e-9) / 10.0);
  }
  // u-space form of the same bound (2.0 = never skip when the fading model
  // offers no uniform shortcut; skip_gain 0 maps to skip_u > 1 likewise).
  const double skip_u =
      uniform_skip_ ? channel_->fading().skip_u(skip_gain) : 2.0;
  candidates_[u].push_back(Candidate{v, mean.value, skip_gain, skip_u});
  candidates_[v].push_back(Candidate{u, mean.value, skip_gain, skip_u});
}

void RadioMedium::rebuild(double fading_margin_db) {
  const std::size_t n = devices_.size();
  candidates_.assign(n, {});
  const util::Dbm cutoff = channel_->params().detection_threshold - util::Db{fading_margin_db};
  grid_delivery_ = channel_->params().spatial_index == phy::SpatialIndex::kGrid;
  uniform_skip_ = channel_->fading().supports_uniform_skip();

  if (grid_delivery_) {
    // Grid-indexed enumeration.  The range bound holds because candidate
    // admission needs mean >= cutoff, i.e. PL(d) <= tx − threshold +
    // margin + max shadowing gain — exactly max_detectable_range(margin).
    // Gathered cells are a superset of that disc; the cutoff test (same
    // compare, same mean value) is the only filter, as in the dense scan.
    const double range = channel_->max_detectable_range(fading_margin_db);
    if (std::isfinite(range) && range > 0.0 && n > 1) {
      if (!grid_ready_) {
        std::vector<geo::Vec2> positions(n);
        for (std::size_t i = 0; i < n; ++i) positions[i] = devices_[i].position;
        grid_.build(positions, range);
        grid_ready_ = true;
      }
      std::vector<std::uint32_t> near;
      for (std::size_t u = 0; u < n; ++u) {
        near.clear();
        grid_.gather(devices_[u].position, range, near);
        std::sort(near.begin(), near.end());
        for (const std::uint32_t v : near) {
          if (v <= u) continue;
          const util::Dbm mean = channel_->mean_received_power_uncached(
              devices_[u].id, devices_[u].position, devices_[v].id, devices_[v].position);
          admit_candidate(u, v, mean, cutoff);
        }
      }
    } else {
      // Unbounded shadowing or degenerate world: no spatial pruning, but
      // the memoised fast path still applies.
      for (std::size_t u = 0; u < n; ++u) {
        for (std::size_t v = u + 1; v < n; ++v) {
          const util::Dbm mean = channel_->mean_received_power_uncached(
              devices_[u].id, devices_[u].position, devices_[v].id, devices_[v].position);
          admit_candidate(u, v, mean, cutoff);
        }
      }
    }
  } else {
    // Dense reference: the memo-backed channel query keeps the legacy
    // per-link cache as the delivery path's working set.
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = u + 1; v < n; ++v) {
        const util::Dbm mean = channel_->mean_received_power(
            devices_[u].id, devices_[u].position, devices_[v].id, devices_[v].position);
        admit_candidate(u, v, mean, cutoff);
      }
    }
  }
  cache_valid_ = true;
}

void RadioMedium::broadcast(std::uint32_t sender, Preamble preamble, PsType type,
                            std::uint64_t payload) {
  if (down_[index_of(sender)] != 0) return;  // crashed: PA is off
  const std::int64_t slot = slot_index(sim_->now());
  const sim::SimTime slot_start = sim::SimTime{slot * sim::kLteSlot.us};
  pending_.push_back(PendingTx{sender, preamble, type, payload, slot_start});
  if (energy_ != nullptr) energy_->record_tx(sender);
  switch (preamble.codec) {
    case RachCodec::kRach1: ++counters_.rach1_tx; break;
    case RachCodec::kRach2: ++counters_.rach2_tx; break;
  }
  ensure_flush_scheduled();
}

void RadioMedium::ensure_flush_scheduled() {
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  // Deliver at the end of the current slot.
  const std::int64_t slot = slot_index(sim_->now());
  const sim::SimTime boundary = sim::SimTime{(slot + 1) * sim::kLteSlot.us};
  sim_->schedule_at(boundary, [this] { flush_slot(); });
}

void RadioMedium::flush_slot() {
  flush_scheduled_ = false;
  std::vector<PendingTx> batch;
  batch.swap(pending_);
  if (batch.empty()) return;
  const obs::ScopedTimer span(telemetry_, obs::SpanId::kSlotDelivery,
                              telemetry_ != nullptr ? sim_->now().as_milliseconds() : -1.0);
  if (telemetry_ != nullptr) {
    telemetry_->observe("radio.slot_batch", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024},
                        static_cast<double>(batch.size()));
  }

  // Bucket audible transmissions by receiver, then resolve same-resource
  // collisions per receiver with the capture rule.
  struct Audible {
    const PendingTx* tx;
    util::Dbm power;
  };
  static thread_local std::vector<std::vector<Audible>> buckets;
  static thread_local std::vector<std::size_t> touched;
  if (buckets.size() < devices_.size()) buckets.resize(devices_.size());
  touched.clear();

  auto add_audible = [&](std::size_t rx_index, const PendingTx& tx) {
    const DeviceEntry& rx = devices_[rx_index];
    if (tx.sender == rx.id) return;  // half-duplex: no self-reception
    if (down_[rx_index] != 0) return;  // crashed receiver hears nothing
    if (rx.listening && !rx.listening()) return;  // duty-cycled receiver asleep
    const geo::Vec2 tx_pos = devices_[index_of(tx.sender)].position;
    util::Dbm power = channel_->received_power(tx.sender, tx_pos, rx.id, rx.position);
    if (fault_) {
      const std::optional<util::Dbm> adjusted = fault_(tx.sender, rx.id, tx.type, power);
      if (!adjusted.has_value()) {
        ++counters_.fault_drops;
        return;
      }
      power = *adjusted;
    }
    if (!channel_->detectable(power)) return;
    if (buckets[rx_index].empty()) touched.push_back(rx_index);
    buckets[rx_index].push_back(Audible{&tx, power});
  };

  if (cache_valid_ && grid_delivery_) {
    // Memoised fast path: the candidate's mean power replaces the per-pair
    // path-loss + shadowing recomputation, and most sub-threshold fades are
    // rejected on the linear gain alone.  Gate order and the fading-stream
    // consumption mirror add_audible exactly, so the delivered receptions
    // are bit-identical to the dense path's.
    for (const PendingTx& tx : batch) {
      for (const Candidate& c : candidates_[index_of(tx.sender)]) {
        if (down_[c.rx_index] != 0) continue;  // crashed receiver hears nothing
        if (any_listening_) {  // avoid the DeviceEntry load when no gates exist
          const DeviceEntry& rx = devices_[c.rx_index];
          if (rx.listening && !rx.listening()) continue;  // duty-cycled, asleep
        }
        double gain;
        if (uniform_skip_) {
          // Raw-uniform shortcut: same single generator step, but the
          // provably sub-threshold draws never pay the gain transform.
          const double u = channel_->sample_fading_uniform();
          if (!fault_ && u >= c.skip_u) continue;
          gain = channel_->fading().gain_from_uniform(u);
        } else {
          gain = channel_->sample_fading_gain();
          if (!fault_ && gain < c.skip_gain) continue;  // provably sub-threshold
        }
        util::Dbm power = util::Dbm{c.mean_dbm} - phy::FadingModel::loss_from_gain(gain);
        if (fault_) {
          const std::optional<util::Dbm> adjusted =
              fault_(tx.sender, devices_[c.rx_index].id, tx.type, power);
          if (!adjusted.has_value()) {
            ++counters_.fault_drops;
            continue;
          }
          power = *adjusted;
        }
        if (!channel_->detectable(power)) continue;
        if (buckets[c.rx_index].empty()) touched.push_back(c.rx_index);
        buckets[c.rx_index].push_back(Audible{&tx, power});
      }
    }
  } else if (cache_valid_) {
    for (const PendingTx& tx : batch) {
      for (const Candidate& c : candidates_[index_of(tx.sender)]) {
        add_audible(c.rx_index, tx);
      }
    }
  } else {
    for (const PendingTx& tx : batch) {
      for (std::size_t rx_index = 0; rx_index < devices_.size(); ++rx_index) {
        add_audible(rx_index, tx);
      }
    }
  }

  for (const std::size_t rx_index : touched) {
    auto& audible = buckets[rx_index];
    const DeviceEntry& rx = devices_[rx_index];
    const double noise_mw = channel_->params().noise_floor.milliwatts();
    for (const Audible& a : audible) {
      double interference_mw = 0.0;
      for (const Audible& b : audible) {
        if (&a == &b) continue;
        if (same_resource(a.tx->preamble, b.tx->preamble)) {
          interference_mw += b.power.milliwatts();
        }
      }
      bool decoded = true;
      if (interference_mw > 0.0) {
        // SINR capture: signal over summed interference *plus noise*.
        const util::Dbm denominator =
            util::dbm_from_milliwatts(interference_mw + noise_mw);
        decoded = (a.power - denominator).value >= capture_margin_db_;
        if (!decoded) ++counters_.collisions;
      }
      if (!decoded) continue;
      ++counters_.deliveries;
      if (energy_ != nullptr) energy_->record_rx(rx.id);
      rx.on_receive(Reception{a.tx->sender, a.tx->preamble, a.tx->type, a.tx->payload,
                              a.power, a.tx->slot_start});
    }
    audible.clear();
  }
}

}  // namespace firefly::mac
