#include "mac/radio.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "obs/timer.hpp"
#include "util/log.hpp"

namespace firefly::mac {

RadioMedium::RadioMedium(sim::Simulator* sim, phy::Channel* channel, double capture_margin_db)
    : sim_(sim), channel_(channel), capture_margin_db_(capture_margin_db) {
  assert(sim_ != nullptr && channel_ != nullptr);
}

void RadioMedium::add_device(std::uint32_t id, geo::Vec2 position, ReceiveFn on_receive,
                             ListenFn listening) {
  if (id >= id_to_index_.size()) {
    id_to_index_.resize(id + 1, std::numeric_limits<std::size_t>::max());
  }
  assert(id_to_index_[id] == std::numeric_limits<std::size_t>::max() && "duplicate device id");
  id_to_index_[id] = devices_.size();
  devices_.push_back(DeviceEntry{id, position, std::move(on_receive), std::move(listening)});
  down_.push_back(0);
  cache_valid_ = false;
}

void RadioMedium::set_down(std::uint32_t id, bool down) {
  down_[index_of(id)] = down ? 1 : 0;
}

bool RadioMedium::is_down(std::uint32_t id) const {
  return down_[index_of(id)] != 0;
}

std::size_t RadioMedium::index_of(std::uint32_t id) const {
  assert(id < id_to_index_.size());
  const std::size_t idx = id_to_index_[id];
  assert(idx != std::numeric_limits<std::size_t>::max());
  return idx;
}

void RadioMedium::move_device(std::uint32_t id, geo::Vec2 position) {
  devices_[index_of(id)].position = position;
  cache_valid_ = false;
}

geo::Vec2 RadioMedium::device_position(std::uint32_t id) const {
  return devices_[index_of(id)].position;
}

void RadioMedium::build_candidate_cache(double fading_margin_db) {
  const std::size_t n = devices_.size();
  candidates_.assign(n, {});
  const util::Dbm cutoff = channel_->params().detection_threshold - util::Db{fading_margin_db};
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t r = 0; r < n; ++r) {
      if (s == r) continue;
      const util::Dbm mean = channel_->mean_received_power(
          devices_[s].id, devices_[s].position, devices_[r].id, devices_[r].position);
      if (mean >= cutoff) candidates_[s].push_back(r);
    }
  }
  cache_valid_ = true;
}

void RadioMedium::broadcast(std::uint32_t sender, Preamble preamble, PsType type,
                            std::uint64_t payload) {
  if (down_[index_of(sender)] != 0) return;  // crashed: PA is off
  const std::int64_t slot = slot_index(sim_->now());
  const sim::SimTime slot_start = sim::SimTime{slot * sim::kLteSlot.us};
  pending_.push_back(PendingTx{sender, preamble, type, payload, slot_start});
  if (energy_ != nullptr) energy_->record_tx(sender);
  switch (preamble.codec) {
    case RachCodec::kRach1: ++counters_.rach1_tx; break;
    case RachCodec::kRach2: ++counters_.rach2_tx; break;
  }
  ensure_flush_scheduled();
}

void RadioMedium::ensure_flush_scheduled() {
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  // Deliver at the end of the current slot.
  const std::int64_t slot = slot_index(sim_->now());
  const sim::SimTime boundary = sim::SimTime{(slot + 1) * sim::kLteSlot.us};
  sim_->schedule_at(boundary, [this] { flush_slot(); });
}

void RadioMedium::flush_slot() {
  flush_scheduled_ = false;
  std::vector<PendingTx> batch;
  batch.swap(pending_);
  if (batch.empty()) return;
  const obs::ScopedTimer span(telemetry_, obs::SpanId::kSlotDelivery,
                              telemetry_ != nullptr ? sim_->now().as_milliseconds() : -1.0);
  if (telemetry_ != nullptr) {
    telemetry_->observe("radio.slot_batch", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024},
                        static_cast<double>(batch.size()));
  }

  // Bucket audible transmissions by receiver, then resolve same-resource
  // collisions per receiver with the capture rule.
  struct Audible {
    const PendingTx* tx;
    util::Dbm power;
  };
  static thread_local std::vector<std::vector<Audible>> buckets;
  static thread_local std::vector<std::size_t> touched;
  if (buckets.size() < devices_.size()) buckets.resize(devices_.size());
  touched.clear();

  auto add_audible = [&](std::size_t rx_index, const PendingTx& tx) {
    const DeviceEntry& rx = devices_[rx_index];
    if (tx.sender == rx.id) return;  // half-duplex: no self-reception
    if (down_[rx_index] != 0) return;  // crashed receiver hears nothing
    if (rx.listening && !rx.listening()) return;  // duty-cycled receiver asleep
    const geo::Vec2 tx_pos = devices_[index_of(tx.sender)].position;
    util::Dbm power = channel_->received_power(tx.sender, tx_pos, rx.id, rx.position);
    if (fault_) {
      const std::optional<util::Dbm> adjusted = fault_(tx.sender, rx.id, tx.type, power);
      if (!adjusted.has_value()) {
        ++counters_.fault_drops;
        return;
      }
      power = *adjusted;
    }
    if (!channel_->detectable(power)) return;
    if (buckets[rx_index].empty()) touched.push_back(rx_index);
    buckets[rx_index].push_back(Audible{&tx, power});
  };

  if (cache_valid_) {
    for (const PendingTx& tx : batch) {
      for (const std::size_t rx_index : candidates_[index_of(tx.sender)]) {
        add_audible(rx_index, tx);
      }
    }
  } else {
    for (const PendingTx& tx : batch) {
      for (std::size_t rx_index = 0; rx_index < devices_.size(); ++rx_index) {
        add_audible(rx_index, tx);
      }
    }
  }

  for (const std::size_t rx_index : touched) {
    auto& audible = buckets[rx_index];
    const DeviceEntry& rx = devices_[rx_index];
    const double noise_mw = channel_->params().noise_floor.milliwatts();
    for (const Audible& a : audible) {
      double interference_mw = 0.0;
      for (const Audible& b : audible) {
        if (&a == &b) continue;
        if (same_resource(a.tx->preamble, b.tx->preamble)) {
          interference_mw += b.power.milliwatts();
        }
      }
      bool decoded = true;
      if (interference_mw > 0.0) {
        // SINR capture: signal over summed interference *plus noise*.
        const util::Dbm denominator =
            util::dbm_from_milliwatts(interference_mw + noise_mw);
        decoded = (a.power - denominator).value >= capture_margin_db_;
        if (!decoded) ++counters_.collisions;
      }
      if (!decoded) continue;
      ++counters_.deliveries;
      if (energy_ != nullptr) energy_->record_rx(rx.id);
      rx.on_receive(Reception{a.tx->sender, a.tx->preamble, a.tx->type, a.tx->payload,
                              a.power, a.tx->slot_start});
    }
    audible.clear();
  }
}

}  // namespace firefly::mac
