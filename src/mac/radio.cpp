#include "mac/radio.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "obs/timer.hpp"
#include "util/log.hpp"

namespace firefly::mac {

RadioMedium::RadioMedium(sim::Simulator* sim, phy::Channel* channel, double capture_margin_db)
    : sim_(sim), channel_(channel), capture_margin_db_(capture_margin_db) {
  assert(sim_ != nullptr && channel_ != nullptr);
}

void RadioMedium::add_device(std::uint32_t id, geo::Vec2 position, ListenFn listening) {
  if (id >= id_to_index_.size()) {
    id_to_index_.resize(id + 1, std::numeric_limits<std::size_t>::max());
  }
  assert(id_to_index_[id] == std::numeric_limits<std::size_t>::max() && "duplicate device id");
  id_to_index_[id] = devices_.size();
  devices_.push_back(DeviceEntry{id, position, std::move(listening)});
  if (devices_.back().listening) any_listening_ = true;
  down_.push_back(0);
  invalidate();
  grid_ready_ = false;  // population changed: next rebuild re-seeds the grid
}

void RadioMedium::set_down(std::uint32_t id, bool down) {
  std::uint8_t& flag = down_[index_of(id)];
  const std::uint8_t next = down ? 1 : 0;
  if (flag == next) return;
  flag = next;
  if (down) {
    ++down_count_;
  } else {
    assert(down_count_ > 0);
    --down_count_;
  }
}

bool RadioMedium::is_down(std::uint32_t id) const {
  return down_[index_of(id)] != 0;
}

std::size_t RadioMedium::index_of(std::uint32_t id) const {
  assert(id < id_to_index_.size());
  const std::size_t idx = id_to_index_[id];
  assert(idx != std::numeric_limits<std::size_t>::max());
  return idx;
}

void RadioMedium::move_device(std::uint32_t id, geo::Vec2 position) {
  const std::size_t idx = index_of(id);
  devices_[idx].position = position;
  // Cell membership tracks the move incrementally; the memoised means are
  // stale until the caller rebuilds (mobility steps move every device,
  // then rebuild once).
  if (grid_ready_) grid_.move(idx, position);
  invalidate();
}

geo::Vec2 RadioMedium::device_position(std::uint32_t id) const {
  return devices_[index_of(id)].position;
}

void RadioMedium::admit_candidate(std::size_t u, std::size_t v, util::Dbm mean,
                                  util::Dbm cutoff) {
  if (mean < cutoff) return;
  // Fading headroom of the link.  Gains strictly below skip_gain provably
  // leave the reception sub-threshold (1e-9 dB of slack absorbs pow/log
  // rounding); borderline gains fall through to the exact dBm comparison,
  // so the fast path decides bit-identically with the dense one.  When the
  // headroom exceeds the fade-loss cap the link is audible in any fade.
  const double headroom_db = (mean - channel_->params().detection_threshold).value;
  const double max_loss_db = -10.0 * std::log10(phy::FadingModel::kGainFloor);
  double skip_gain = 0.0;
  if (headroom_db < max_loss_db) {
    skip_gain = std::pow(10.0, -(headroom_db + 1e-9) / 10.0);
  }
  // u-space form of the same bound (2.0 = never skip when the fading model
  // offers no uniform shortcut; skip_gain 0 maps to skip_u > 1 likewise).
  const double skip_u =
      uniform_skip_ ? channel_->fading().skip_u(skip_gain) : 2.0;
  pair_scratch_.push_back(PairRec{static_cast<std::uint32_t>(u),
                                  static_cast<std::uint32_t>(v), mean.value,
                                  skip_gain, skip_u});
}

void RadioMedium::scatter_candidates() {
  const std::size_t n = devices_.size();
  cand_offsets_.assign(n + 1, 0);
  for (const PairRec& p : pair_scratch_) {
    ++cand_offsets_[p.u + 1];
    ++cand_offsets_[p.v + 1];
  }
  for (std::size_t i = 0; i < n; ++i) cand_offsets_[i + 1] += cand_offsets_[i];
  const std::size_t total = cand_offsets_[n];
  cand_rx_.resize(total);
  cand_mean_.resize(total);
  cand_skip_gain_.resize(total);
  cand_skip_u_.resize(total);
  cand_cursor_.assign(cand_offsets_.begin(), cand_offsets_.end() - 1);
  // Scatter in admission order.  Pairs are admitted with u ascending and v
  // ascending within u, so each sender's slice fills in ascending receiver
  // index — the same per-sender order the per-sender push_backs used to
  // produce, which is what pins the fading-draw order at delivery.
  for (const PairRec& p : pair_scratch_) {
    const std::size_t ku = cand_cursor_[p.u]++;
    cand_rx_[ku] = p.v;
    cand_mean_[ku] = p.mean_dbm;
    cand_skip_gain_[ku] = p.skip_gain;
    cand_skip_u_[ku] = p.skip_u;
    const std::size_t kv = cand_cursor_[p.v]++;
    cand_rx_[kv] = p.u;
    cand_mean_[kv] = p.mean_dbm;
    cand_skip_gain_[kv] = p.skip_gain;
    cand_skip_u_[kv] = p.skip_u;
  }
}

void RadioMedium::rebuild(double fading_margin_db) {
  const std::size_t n = devices_.size();
  pair_scratch_.clear();
  const util::Dbm cutoff = channel_->params().detection_threshold - util::Db{fading_margin_db};
  grid_delivery_ = channel_->params().spatial_index == phy::SpatialIndex::kGrid;
  uniform_skip_ = channel_->fading().supports_uniform_skip();

  if (grid_delivery_) {
    // Grid-indexed enumeration.  The range bound holds because candidate
    // admission needs mean >= cutoff, i.e. PL(d) <= tx − threshold +
    // margin + max shadowing gain — exactly max_detectable_range(margin).
    // Gathered cells are a superset of that disc; the cutoff test (same
    // compare, same mean value) is the only filter, as in the dense scan.
    const double range = channel_->max_detectable_range(fading_margin_db);
    if (std::isfinite(range) && range > 0.0 && n > 1) {
      if (!grid_ready_) {
        std::vector<geo::Vec2> positions(n);
        for (std::size_t i = 0; i < n; ++i) positions[i] = devices_[i].position;
        grid_.build(positions, range);
        grid_ready_ = true;
      }
      std::vector<std::uint32_t> near;
      for (std::size_t u = 0; u < n; ++u) {
        near.clear();
        grid_.gather(devices_[u].position, range, near);
        std::sort(near.begin(), near.end());
        for (const std::uint32_t v : near) {
          if (v <= u) continue;
          const util::Dbm mean = channel_->mean_received_power_uncached(
              devices_[u].id, devices_[u].position, devices_[v].id, devices_[v].position);
          admit_candidate(u, v, mean, cutoff);
        }
      }
    } else {
      // Unbounded shadowing or degenerate world: no spatial pruning, but
      // the memoised fast path still applies.
      for (std::size_t u = 0; u < n; ++u) {
        for (std::size_t v = u + 1; v < n; ++v) {
          const util::Dbm mean = channel_->mean_received_power_uncached(
              devices_[u].id, devices_[u].position, devices_[v].id, devices_[v].position);
          admit_candidate(u, v, mean, cutoff);
        }
      }
    }
  } else {
    // Dense reference: the memo-backed channel query keeps the legacy
    // per-link cache as the delivery path's working set.
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = u + 1; v < n; ++v) {
        const util::Dbm mean = channel_->mean_received_power(
            devices_[u].id, devices_[u].position, devices_[v].id, devices_[v].position);
        admit_candidate(u, v, mean, cutoff);
      }
    }
  }
  scatter_candidates();
  cache_valid_ = true;
}

void RadioMedium::broadcast(std::uint32_t sender, Preamble preamble, PsType type,
                            std::uint64_t payload) {
  if (down_[index_of(sender)] != 0) return;  // crashed: PA is off
  const std::int64_t slot = slot_index(sim_->now());
  const sim::SimTime slot_start = sim::SimTime{slot * sim::kLteSlot.us};
  pending_.push_back(PendingTx{sender, preamble, type, payload, slot_start});
  if (energy_ != nullptr) energy_->record_tx(sender);
  switch (preamble.codec) {
    case RachCodec::kRach1: ++counters_.rach1_tx; break;
    case RachCodec::kRach2: ++counters_.rach2_tx; break;
  }
  ensure_flush_scheduled();
}

void RadioMedium::ensure_flush_scheduled() {
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  // Deliver at the end of the current slot.
  const std::int64_t slot = slot_index(sim_->now());
  const sim::SimTime boundary = sim::SimTime{(slot + 1) * sim::kLteSlot.us};
  sim_->schedule_at(boundary, [this] { flush_slot(); });
}

void RadioMedium::add_audible(std::size_t rx_index, const PendingTx& tx) {
  const DeviceEntry& rx = devices_[rx_index];
  if (tx.sender == rx.id) return;  // half-duplex: no self-reception
  if (down_[rx_index] != 0) return;  // crashed receiver hears nothing
  if (rx.listening && !rx.listening()) return;  // duty-cycled receiver asleep
  const geo::Vec2 tx_pos = devices_[index_of(tx.sender)].position;
  util::Dbm power = channel_->received_power(tx.sender, tx_pos, rx.id, rx.position);
  if (fault_) {
    const std::optional<util::Dbm> adjusted = fault_(tx.sender, rx.id, tx.type, power);
    if (!adjusted.has_value()) {
      ++counters_.fault_drops;
      return;
    }
    power = *adjusted;
  }
  if (!channel_->detectable(power)) return;
  if (buckets_[rx_index].empty()) touched_.push_back(rx_index);
  buckets_[rx_index].push_back(Audible{&tx, power});
}

void RadioMedium::deliver_fused() {
  // All delivery gates are static this slot (no faults, no duty cycling, no
  // crashed devices), so every candidate draws exactly one fade: one batched
  // RNG fill per sender, then a branch-free compare sweep over the skip
  // bounds.  The uniform sequence and the survivor set match the scalar
  // path draw for draw — deliver_memoised_scalar() is the reference.
  for (const PendingTx& tx : flushing_) {
    const std::size_t s = index_of(tx.sender);
    const std::size_t begin = cand_offsets_[s];
    const std::size_t m = cand_offsets_[s + 1] - begin;
    if (m == 0) continue;
    if (fade_u_.size() < m) {
      fade_u_.resize(m);
      survivors_.resize(m);
    }
    channel_->fill_fading_uniforms(fade_u_.data(), m);
    const double* skip_u = cand_skip_u_.data() + begin;
    std::size_t count = 0;
    for (std::size_t k = 0; k < m; ++k) {
      survivors_[count] = static_cast<std::uint32_t>(k);
      count += static_cast<std::size_t>(fade_u_[k] < skip_u[k]);
    }
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t k = survivors_[i];
      const double gain = channel_->fading().gain_from_uniform(fade_u_[k]);
      const util::Dbm power =
          util::Dbm{cand_mean_[begin + k]} - phy::FadingModel::loss_from_gain(gain);
      if (!channel_->detectable(power)) continue;  // borderline fade: exact compare
      const std::uint32_t rxi = cand_rx_[begin + k];
      if (buckets_[rxi].empty()) touched_.push_back(rxi);
      buckets_[rxi].push_back(Audible{&tx, power});
    }
  }
}

void RadioMedium::deliver_memoised_scalar() {
  // Memoised fast path: the candidate's mean power replaces the per-pair
  // path-loss + shadowing recomputation, and most sub-threshold fades are
  // rejected on the raw uniform (or linear gain) alone.  Gate order and the
  // fading-stream consumption mirror add_audible exactly, so the delivered
  // receptions are bit-identical to the dense path's.
  for (const PendingTx& tx : flushing_) {
    const std::size_t s = index_of(tx.sender);
    for (std::size_t k = cand_offsets_[s]; k < cand_offsets_[s + 1]; ++k) {
      const std::uint32_t rxi = cand_rx_[k];
      if (down_[rxi] != 0) continue;  // crashed receiver hears nothing
      if (any_listening_) {  // avoid the DeviceEntry load when no gates exist
        const DeviceEntry& rx = devices_[rxi];
        if (rx.listening && !rx.listening()) continue;  // duty-cycled, asleep
      }
      double gain;
      if (uniform_skip_) {
        // Raw-uniform shortcut: same single generator step, but the
        // provably sub-threshold draws never pay the gain transform.
        const double u = channel_->sample_fading_uniform();
        if (!fault_ && u >= cand_skip_u_[k]) continue;
        gain = channel_->fading().gain_from_uniform(u);
      } else {
        gain = channel_->sample_fading_gain();
        if (!fault_ && gain < cand_skip_gain_[k]) continue;  // provably sub-threshold
      }
      util::Dbm power = util::Dbm{cand_mean_[k]} - phy::FadingModel::loss_from_gain(gain);
      if (fault_) {
        const std::optional<util::Dbm> adjusted =
            fault_(tx.sender, devices_[rxi].id, tx.type, power);
        if (!adjusted.has_value()) {
          ++counters_.fault_drops;
          continue;
        }
        power = *adjusted;
      }
      if (!channel_->detectable(power)) continue;
      if (buckets_[rxi].empty()) touched_.push_back(rxi);
      buckets_[rxi].push_back(Audible{&tx, power});
    }
  }
}

void RadioMedium::resolve_receivers() {
  // Resolve same-resource collisions per receiver with the capture rule.
  // Decoded receptions are appended to the slot's flat RxRecord batch in
  // bucket order — exactly the order the old per-pair callbacks fired in —
  // and the owner's sink consumes the whole batch after this returns.
  const double noise_mw = channel_->params().noise_floor.milliwatts();
  const std::size_t nbuckets = touched_.size();
  rx_records_.clear();
  for (std::size_t t = 0; t < nbuckets; ++t) {
    const std::size_t rx_index = touched_[t];
    auto& audible = buckets_[rx_index];
    const DeviceEntry& rx = devices_[rx_index];
    const std::size_t k = audible.size();
    bool grouped = false;
    if (k > 1) {
      // Contention prepass: chain the bucket's entries per RACH resource in
      // one O(k) epoch-marked pass (no clearing between buckets), and
      // convert contended entries to milliwatts exactly once.  The
      // interference sum then walks only an entry's own chain — in entry
      // order, so it adds the same doubles in the same order as the naive
      // all-pairs scan, which re-evaluated pow(10, dBm/10) per (a, b) pair.
      grouped = true;
      res_key_.resize(k);
      for (std::size_t i = 0; i < k; ++i) {
        const Preamble p = audible[i].tx->preamble;
        if (p.index >= kPreamblePoolSize ||
            static_cast<std::uint32_t>(p.codec) >= kResourceCodecs) {
          grouped = false;  // out-of-pool resource (tests): generic fallback
          break;
        }
        res_key_[i] = static_cast<std::uint32_t>(p.codec) * kPreamblePoolSize + p.index;
      }
      if (grouped) {
        ++group_epoch_;
        group_next_.resize(k);
        aud_mw_.resize(k);
        for (std::size_t i = 0; i < k; ++i) {
          const std::uint32_t key = res_key_[i];
          group_next_[i] = kGroupNil;
          if (group_seen_[key] != group_epoch_) {
            group_seen_[key] = group_epoch_;
            group_head_[key] = static_cast<std::uint32_t>(i);
            group_count_[key] = 1;
          } else {
            group_next_[group_tail_[key]] = static_cast<std::uint32_t>(i);
            ++group_count_[key];
          }
          group_tail_[key] = static_cast<std::uint32_t>(i);
        }
        for (std::size_t i = 0; i < k; ++i) {
          aud_mw_[i] =
              group_count_[res_key_[i]] > 1 ? audible[i].power.milliwatts() : 0.0;
        }
      } else {
        res_key_.resize(k);
        aud_mw_.resize(k);
        for (std::size_t i = 0; i < k; ++i) {
          const Preamble p = audible[i].tx->preamble;
          res_key_[i] = (static_cast<std::uint64_t>(p.codec) << 32) | p.index;
        }
        for (std::size_t i = 0; i < k; ++i) {
          bool contended = false;
          for (std::size_t j = 0; j < k; ++j) {
            contended = contended || (j != i && res_key_[j] == res_key_[i]);
          }
          aud_mw_[i] = contended ? audible[i].power.milliwatts() : 0.0;
        }
      }
    }
    for (std::size_t i = 0; i < k; ++i) {
      const Audible& a = audible[i];
      double interference_mw = 0.0;
      if (k > 1) {
        if (grouped) {
          if (group_count_[res_key_[i]] > 1) {
            for (std::uint32_t j = group_head_[res_key_[i]]; j != kGroupNil;
                 j = group_next_[j]) {
              if (j != i) interference_mw += aud_mw_[j];
            }
          }
        } else {
          for (std::size_t j = 0; j < k; ++j) {
            if (j != i && res_key_[j] == res_key_[i]) interference_mw += aud_mw_[j];
          }
        }
      }
      bool decoded = true;
      if (interference_mw > 0.0) {
        // SINR capture: signal over summed interference *plus noise*.
        const util::Dbm denominator =
            util::dbm_from_milliwatts(interference_mw + noise_mw);
        decoded = (a.power - denominator).value >= capture_margin_db_;
        if (!decoded) ++counters_.collisions;
      }
      if (!decoded) continue;
      ++counters_.deliveries;
      if (energy_ != nullptr) energy_->record_rx(rx.id);
      rx_records_.push_back(RxRecord{a.tx->sender, static_cast<std::uint32_t>(rx_index),
                                     a.tx->preamble, a.tx->type, a.tx->payload, a.power,
                                     a.tx->slot_start});
    }
    audible.clear();
  }
}

void RadioMedium::flush_slot() {
  flush_scheduled_ = false;
  // Double buffer: swap the pending list into the flushing list (both keep
  // their capacity), so steady-state slot delivery never allocates.
  flushing_.clear();
  flushing_.swap(pending_);
  if (flushing_.empty()) return;
  const obs::ScopedTimer span(telemetry_, obs::SpanId::kSlotDelivery,
                              telemetry_ != nullptr ? sim_->now().as_milliseconds() : -1.0);
  if (telemetry_ != nullptr) {
    telemetry_->observe("radio.slot_batch", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024},
                        static_cast<double>(flushing_.size()));
  }

  if (buckets_.size() < devices_.size()) buckets_.resize(devices_.size());
  touched_.clear();

  // Pick the cheapest delivery sweep whose gates hold.  The batched sweep
  // requires every per-candidate gate to be statically off; any crashed
  // device, duty-cycle gate or fault hook falls back to the scalar sweep,
  // which evaluates the gates per candidate in the original order.
  const bool fused = cache_valid_ && grid_delivery_ && uniform_skip_ &&
                     !fault_ && !any_listening_ && down_count_ == 0;
  if (fused) {
    deliver_fused();
  } else if (cache_valid_ && grid_delivery_) {
    deliver_memoised_scalar();
  } else if (cache_valid_) {
    for (const PendingTx& tx : flushing_) {
      const std::size_t s = index_of(tx.sender);
      for (std::size_t k = cand_offsets_[s]; k < cand_offsets_[s + 1]; ++k) {
        add_audible(cand_rx_[k], tx);
      }
    }
  } else {
    for (const PendingTx& tx : flushing_) {
      for (std::size_t rx_index = 0; rx_index < devices_.size(); ++rx_index) {
        add_audible(rx_index, tx);
      }
    }
  }

  resolve_receivers();
  // Hand the slot's whole decoded batch to the owner in one call.  Protocol
  // reactions run here, sequentially in record order; broadcasts they issue
  // land in pending_ for the next slot, exactly as under per-pair dispatch
  // (now() already sits at the flush boundary either way).
  if (sink_ && !rx_records_.empty()) sink_(RxBatch{rx_records_.data(), rx_records_.size()});
}

void RadioMedium::reserve_delivery(std::size_t max_tx_per_slot) {
  pending_.reserve(max_tx_per_slot);
  flushing_.reserve(max_tx_per_slot);
  if (buckets_.size() < devices_.size()) buckets_.resize(devices_.size());
  touched_.reserve(devices_.size());
  for (std::vector<Audible>& bucket : buckets_) bucket.reserve(max_tx_per_slot);
  // Worst case one decoded record per (transmission, receiver) pair; the
  // soak heap gate needs this buffer to hit its lifetime-record size during
  // warm-up, so reserve for the storm, not the steady state.
  rx_records_.reserve(std::min<std::size_t>(max_tx_per_slot * devices_.size(), 1u << 20));
  res_key_.reserve(max_tx_per_slot);
  aud_mw_.reserve(max_tx_per_slot);
}

RadioMedium::StateSnapshot RadioMedium::save_state() const {
  StateSnapshot snap;
  snap.counters = counters_;
  snap.pending = pending_;
  snap.flushing = flushing_;
  snap.flush_scheduled = flush_scheduled_;
  snap.down = down_;
  snap.down_count = down_count_;
  return snap;
}

void RadioMedium::restore_state(const StateSnapshot& snap) {
  counters_ = snap.counters;
  pending_ = snap.pending;
  flushing_ = snap.flushing;
  flush_scheduled_ = snap.flush_scheduled;
  down_ = snap.down;
  down_count_ = snap.down_count;
  // The collision prepass tags per-resource slots with the current epoch and
  // pre-increments before each bucket, so rewinding the epoch to zero (no
  // slot carries tag 0 after a fill) is equivalent to clearing the table.
  group_epoch_ = 0;
  std::fill(std::begin(group_seen_), std::end(group_seen_), std::uint64_t{0});
}

}  // namespace firefly::mac
