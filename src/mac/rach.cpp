#include "mac/rach.hpp"

namespace firefly::mac {

const char* to_string(RachCodec codec) {
  switch (codec) {
    case RachCodec::kRach1: return "RACH1";
    case RachCodec::kRach2: return "RACH2";
  }
  return "?";
}

const char* to_string(PsType type) {
  switch (type) {
    case PsType::kSyncPulse: return "sync-pulse";
    case PsType::kDiscovery: return "discovery";
    case PsType::kConnectRequest: return "connect-request";
    case PsType::kConnectAccept: return "connect-accept";
    case PsType::kMergeAnnounce: return "merge-announce";
    case PsType::kHeadToken: return "head-token";
    case PsType::kSyncFlood: return "sync-flood";
  }
  return "?";
}

}  // namespace firefly::mac
