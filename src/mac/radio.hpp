// radio.hpp — the shared broadcast medium.
//
// All proximity signals flow through one `RadioMedium`.  A transmission is
// buffered for the current slot; at the slot boundary every registered
// receiver hears the set of transmissions, the channel assigns each one a
// received power, sub-threshold receptions are dropped, and same-resource
// receptions collide unless one captures (dominates the sum of the rest by
// the capture margin).  The medium is also the *single meter* for Fig. 4:
// every transmission is counted here by codec class, so FST and ST message
// counts are measured identically.
//
// Delivery is batched: decoding appends one `RxRecord` per successful
// reception to a flat per-slot buffer (in receiver-bucket order — the same
// order the old per-pair callbacks fired in), and the slot's whole batch is
// handed to the owner's delivery sink in one call.  Protocol reactions run
// sequentially inside the sink in record order, so any state they mutate is
// visible to later records of the same slot exactly as it was under
// per-pair dispatch.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "geo/grid.hpp"
#include "geo/point.hpp"
#include "mac/rach.hpp"
#include "obs/telemetry.hpp"
#include "phy/channel.hpp"
#include "phy/energy.hpp"
#include "sim/simulator.hpp"

namespace firefly::mac {

/// One decoded PS, addressed by *receiver index* (the dense registration
/// slot, equal to the device id for engine-registered populations) so batch
/// consumers can index flat per-device arrays directly.
struct RxRecord {
  std::uint32_t sender;
  std::uint32_t rx_index;  ///< receiver's dense device index
  Preamble preamble;       ///< the RACH resource the PS occupied
  PsType type;
  std::uint64_t payload;   ///< protocol-defined (fragment id, phase, etc.)
  util::Dbm rx_power;
  sim::SimTime slot_start; ///< slot in which the PS was transmitted (records
                           ///< in one batch can differ: a broadcast executing
                           ///< at the flush boundary joins the closing batch
                           ///< with the next slot's stamp)
};

/// The contiguous span of every successful reception of one slot flush, in
/// decode order (receiver-bucket order, in-bucket transmission order).
struct RxBatch {
  const RxRecord* records;
  std::size_t count;
};

/// Per-codec transmission counters (the Fig. 4 meter).
struct TrafficCounters {
  std::uint64_t rach1_tx = 0;
  std::uint64_t rach2_tx = 0;
  std::uint64_t collisions = 0;   ///< receiver-side collision events
  std::uint64_t deliveries = 0;   ///< successful receptions
  std::uint64_t fault_drops = 0;  ///< receptions vetoed by the fault hook

  [[nodiscard]] std::uint64_t total_tx() const { return rach1_tx + rach2_tx; }
};

class RadioMedium {
 public:
  /// The per-slot delivery sink: called at most once per flush with the
  /// slot's whole decoded batch.  There is one sink for the medium (not one
  /// callback per device); receivers are identified by RxRecord::rx_index.
  using DeliverFn = std::function<void(const RxBatch&)>;
  /// Receiver-side duty cycling: evaluated at delivery time; a device whose
  /// predicate returns false is asleep and decodes nothing that slot.
  using ListenFn = std::function<bool()>;
  /// Channel-fault hook (fault-injection runs): called once per audible
  /// (tx, rx) pair before the detectability check.  Returns the possibly
  /// attenuated power — which then flows through the normal threshold and
  /// collision rules — or nullopt to veto the reception at this receiver
  /// outright (counted in `TrafficCounters::fault_drops`).  A veto is a
  /// per-receiver decode failure; the transmission still reaches other
  /// receivers normally.
  using FaultFn = std::function<std::optional<util::Dbm>(
      std::uint32_t sender, std::uint32_t receiver, PsType type, util::Dbm power)>;

  /// `capture_margin_db`: a same-resource reception is decoded anyway when
  /// its power exceeds the *sum* of the interferers by this margin.
  RadioMedium(sim::Simulator* sim, phy::Channel* channel, double capture_margin_db = 6.0);

  /// Register a device.  Devices must be registered before the first slot
  /// boundary they use, in the index order the owner's delivery sink
  /// expects (RxRecord::rx_index is the registration slot).  `listening`
  /// may be null (always awake).
  void add_device(std::uint32_t id, geo::Vec2 position, ListenFn listening = nullptr);
  /// Update a device position (mobility support).
  void move_device(std::uint32_t id, geo::Vec2 position);
  [[nodiscard]] geo::Vec2 device_position(std::uint32_t id) const;
  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }

  /// Crash/recover lifecycle: a down device neither transmits (broadcasts
  /// are silently discarded and not metered) nor receives anything.
  void set_down(std::uint32_t id, bool down);
  [[nodiscard]] bool is_down(std::uint32_t id) const;

  /// Install the channel-fault hook (null = fault-free delivery).
  void set_fault_hook(FaultFn fn) { fault_ = std::move(fn); }

  /// Install the per-slot delivery sink (null = decoded PSs are metered but
  /// discarded, which is what the radio-only unit tests want).
  void set_delivery_sink(DeliverFn fn) { sink_ = std::move(fn); }

  /// Queue a broadcast for the slot containing now(); it is delivered to
  /// every in-range receiver at the next slot boundary.
  void broadcast(std::uint32_t sender, Preamble preamble, PsType type, std::uint64_t payload);

  /// Rebuild the candidate cache: for every device, the receivers whose
  /// slot-averaged power is within `fading_margin_db` of being detectable,
  /// with that mean memoised so delivery never recomputes path loss or
  /// shadowing.  Enumeration is grid-indexed (O(N·k) cell queries keyed by
  /// the channel's max detectable range) or dense O(N²) per
  /// `RadioParams::spatial_index`; both produce identical caches.  The cache
  /// is stored structure-of-arrays (one flat `ids`/`mean`/`skip` array per
  /// field, prefix-offset indexed per sender) so a slot flush sweeps
  /// contiguous memory.  Call after registering devices and after
  /// `invalidate`.
  void rebuild(double fading_margin_db = phy::RadioParams::kCandidateFadingMarginDb);
  /// Mark the candidate cache stale.  Delivery falls back to a dense
  /// per-slot scan until the next `rebuild` (`add_device` and `move_device`
  /// invalidate implicitly; mobility steps rebuild right after moving).
  void invalidate() { cache_valid_ = false; }
  [[nodiscard]] bool cache_valid() const { return cache_valid_; }

  /// Visit every cached candidate pair once as fn(id_u, id_v, mean_dbm)
  /// with index(id_u) < index(id_v), in deterministic index-lexicographic
  /// order.  Requires a valid cache.  The engine derives reliable links
  /// from this instead of a second O(N²) channel sweep.
  template <typename Fn>
  void for_each_candidate_pair(Fn&& fn) const {
    assert(cache_valid_);
    for (std::size_t u = 0; u + 1 < cand_offsets_.size(); ++u) {
      for (std::size_t k = cand_offsets_[u]; k < cand_offsets_[u + 1]; ++k) {
        if (cand_rx_[k] <= u) continue;
        fn(devices_[u].id, devices_[cand_rx_[k]].id, util::Dbm{cand_mean_[k]});
      }
    }
  }

  [[nodiscard]] const TrafficCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }
  /// Optional energy meter: charged one tx slot per broadcast and one rx
  /// slot per successful delivery.  Not owned; may be null.
  void set_energy_meter(phy::EnergyMeter* meter) { energy_ = meter; }
  /// Optional telemetry: a slot-delivery span per flush plus a batch-size
  /// histogram.  Not owned; null (the default) costs one pointer test per
  /// flush and nothing per delivery.
  void set_telemetry(obs::Telemetry* telemetry) { telemetry_ = telemetry; }
  [[nodiscard]] phy::Channel& channel() { return *channel_; }
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }

  /// Slot index containing time t.
  [[nodiscard]] static std::int64_t slot_index(sim::SimTime t) {
    return t.us / sim::kLteSlot.us;
  }

 private:
  struct DeviceEntry {
    std::uint32_t id;
    geo::Vec2 position;
    ListenFn listening;
  };
  struct PendingTx {
    std::uint32_t sender;
    Preamble preamble;
    PsType type;
    std::uint64_t payload;
    sim::SimTime slot_start;
  };

 public:
  /// Mutable-state checkpoint for the engine's in-process snapshot/restore.
  /// Geometry, the candidate cache and the installed hooks are not captured
  /// — they are position-derived and snapshots are restricted to static
  /// scenarios — so only traffic state is: the counters, the two slot
  /// buffers, the flush-armed flag and the down set.  The per-resource
  /// collision scratch is epoch-tagged and rewound wholesale on restore.
  struct StateSnapshot {
    TrafficCounters counters;
    std::vector<PendingTx> pending;
    std::vector<PendingTx> flushing;
    bool flush_scheduled = false;
    std::vector<std::uint8_t> down;
    std::size_t down_count = 0;
  };
  [[nodiscard]] StateSnapshot save_state() const;
  void restore_state(const StateSnapshot& snap);

  /// Pre-size the per-slot delivery scratch (the pending/flushing double
  /// buffer, the per-receiver audible buckets and their side arrays) for a
  /// worst case of `max_tx_per_slot` simultaneous transmissions.  These
  /// vectors never shrink, so they only allocate when a slot sets a new
  /// lifetime-record load; reserving past the workload's record up front
  /// makes a long soak's steady state allocation-free (the service-mode
  /// heap gate relies on this).  Purely a capacity hint — delivery
  /// behaviour is unchanged.
  void reserve_delivery(std::size_t max_tx_per_slot);

 private:
  /// A transmission audible at one receiver, pre-collision-resolution.
  struct Audible {
    const PendingTx* tx;
    util::Dbm power;
  };
  /// One admitted candidate pair, staged during rebuild before the scatter
  /// into the flat per-sender arrays.
  struct PairRec {
    std::uint32_t u, v;
    double mean_dbm;
    double skip_gain;
    double skip_u;
  };

  void ensure_flush_scheduled();
  void flush_slot();
  [[nodiscard]] std::size_t index_of(std::uint32_t id) const;
  void admit_candidate(std::size_t u, std::size_t v, util::Dbm mean, util::Dbm cutoff);
  void scatter_candidates();
  void deliver_fused();
  void deliver_memoised_scalar();
  void add_audible(std::size_t rx_index, const PendingTx& tx);
  void resolve_receivers();

  sim::Simulator* sim_;
  phy::Channel* channel_;
  double capture_margin_db_;
  std::vector<DeviceEntry> devices_;
  std::vector<std::size_t> id_to_index_;  // device id -> devices_ slot
  std::vector<std::uint8_t> down_;        // by device index; 1 = crashed
  std::size_t down_count_ = 0;            // crashed devices (gates the batched path)
  FaultFn fault_;
  bool any_listening_ = false;  // duty-cycle gates exist: fast path must probe them
  std::vector<PendingTx> pending_;
  std::vector<PendingTx> flushing_;  // double buffer: swap per flush, no allocation
  bool flush_scheduled_ = false;
  TrafficCounters counters_;
  phy::EnergyMeter* energy_ = nullptr;
  obs::Telemetry* telemetry_ = nullptr;
  // Candidate cache, structure-of-arrays: sender u's candidates occupy flat
  // slots [cand_offsets_[u], cand_offsets_[u+1]), ascending rx index —
  // identical order for grid and dense enumeration, which pins the fading
  // stream.  Parallel arrays so the delivery sweep reads each field
  // contiguously.
  std::vector<std::size_t> cand_offsets_;   // n+1 prefix offsets
  std::vector<std::uint32_t> cand_rx_;      // receiver device index
  std::vector<double> cand_mean_;           // memoised mean received power, dBm
  std::vector<double> cand_skip_gain_;      // fades below this are sub-threshold
  std::vector<double> cand_skip_u_;         // uniforms at/above this are sub-threshold
  std::vector<PairRec> pair_scratch_;       // rebuild staging (reused)
  std::vector<std::size_t> cand_cursor_;    // rebuild scatter cursors (reused)
  std::vector<double> fade_u_;              // per-flush batched uniform draws
  std::vector<std::uint32_t> survivors_;    // per-flush skip-test survivors
  std::vector<std::vector<Audible>> buckets_;  // per-receiver audible sets
  std::vector<std::size_t> touched_;           // receivers with non-empty buckets
  DeliverFn sink_;                             // per-slot batch consumer
  std::vector<RxRecord> rx_records_;           // this slot's decoded batch
  std::vector<std::uint64_t> res_key_;         // per-bucket packed resource keys
  std::vector<double> aud_mw_;                 // per-bucket memoised milliwatts
  // Epoch-marked per-resource chains for the collision prepass: one slot per
  // (codec, preamble) pool entry, valid only while its epoch tag matches —
  // no clearing between buckets.
  static constexpr std::uint32_t kResourceCodecs = 2;
  static constexpr std::uint32_t kGroupNil = 0xFFFFFFFFU;
  static constexpr std::size_t kResourceSlots =
      static_cast<std::size_t>(kResourceCodecs) * kPreamblePoolSize;
  std::uint64_t group_epoch_ = 0;
  std::uint64_t group_seen_[kResourceSlots] = {};
  std::uint32_t group_head_[kResourceSlots] = {};
  std::uint32_t group_tail_[kResourceSlots] = {};
  std::uint32_t group_count_[kResourceSlots] = {};
  std::vector<std::uint32_t> group_next_;      // per-bucket chain links
  bool cache_valid_ = false;
  bool uniform_skip_ = false;  // fading model offers the u-space skip test
  geo::SpatialGrid grid_;
  bool grid_ready_ = false;     // cell membership current (maintained by move_device)
  bool grid_delivery_ = false;  // cache built for the memoised fast path
};

}  // namespace firefly::mac
