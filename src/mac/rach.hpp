// rach.hpp — LTE-A RACH codec abstraction.
//
// Section IV of the paper uses a *pair* of RACH codecs: RACH1 carries the
// regular firefly proximity signals (keep-alive / synchronisation) inside a
// fragment, RACH2 carries the inter-fragment H_Connect handshake.  Because
// the LTE-A downlink is OFDMA, different codecs are orthogonal and never
// interfere; two transmissions with the *same* codec in the same slot can
// collide at a receiver unless the strongest dominates (capture effect).
//
// We model a codec as a class label plus a preamble index drawn from a
// finite pool (LTE has 64 Zadoff–Chu preambles; distinct preambles of the
// same codec class are also orthogonal, so collisions require same codec,
// same preamble, same slot).
#pragma once

#include <cstdint>
#include <string>

namespace firefly::mac {

/// The paper's two codec classes.
enum class RachCodec : std::uint8_t {
  kRach1 = 1,  ///< regular firefly operation (sync pulses, discovery)
  kRach2 = 2,  ///< inter-fragment synchronisation (H_Connect)
};

[[nodiscard]] const char* to_string(RachCodec codec);

/// LTE-A RACH preamble pool size (36.211: 64 preambles per cell).
inline constexpr std::uint32_t kPreamblePoolSize = 64;

/// A concrete transmission resource: codec class + preamble index.
struct Preamble {
  RachCodec codec{RachCodec::kRach1};
  std::uint32_t index{0};  ///< [0, kPreamblePoolSize)

  friend constexpr bool operator==(Preamble a, Preamble b) = default;
};

/// Whether two simultaneous transmissions occupy the same resource and can
/// therefore collide at a common receiver.
[[nodiscard]] constexpr bool same_resource(Preamble a, Preamble b) {
  return a.codec == b.codec && a.index == b.index;
}

/// Deterministic preamble assignment used by the protocols: spreads device
/// ids across the pool so intra-fragment PSs rarely share a preamble.
[[nodiscard]] constexpr Preamble preamble_for_device(RachCodec codec, std::uint32_t device_id) {
  return Preamble{codec, device_id % kPreamblePoolSize};
}

/// Message type tags carried in a PS payload.  The protocols agree on these
/// instead of parsing bytes; the radio treats payloads as opaque.
enum class PsType : std::uint8_t {
  kSyncPulse = 0,     ///< firefly firing (phase reset announcement)
  kDiscovery = 1,     ///< neighbour/service discovery beacon
  kConnectRequest = 2,///< H_Connect: request over the heaviest outgoing edge
  kConnectAccept = 3, ///< H_Connect: accept / echo
  kMergeAnnounce = 4, ///< fragment merge: new head / fragment id broadcast
  kHeadToken = 5,     ///< Change_head: headship handover inside a fragment
  kSyncFlood = 6,     ///< keep-alive phase flood from a fragment head
};

[[nodiscard]] const char* to_string(PsType type);

}  // namespace firefly::mac
