#include "sim/slot_calendar.hpp"

#include <algorithm>
#include <cassert>

namespace firefly::sim {

namespace {
constexpr std::uint64_t kGenMask = 0xFFFFFFFFull;
}

EventId SlotCalendar::schedule(SimTime at, EventFn fn) {
  assert(at.us >= 0 && "events must not be scheduled before t=0");
  const auto idx = arena_.allocate();
  Rec& r = arena_[idx];
  r.time = at;
  r.seq = next_seq_++;
  r.next = kNil;
  r.state = State::kLive;
  r.fn = std::move(fn);
  ++live_count_;

  const std::int64_t slot = slot_of(at);
  if (slot < cur_slot_) {
    // The cursor peeked past this slot: run_until() stopping short of the
    // next event advances next_time()'s cursor beyond now(), and a later
    // schedule can land in the gap.  Retreat and rebuild (rare).
    cur_slot_ = slot;
    rebuild();
    place(idx);
  } else if (slot == cur_slot_ && ready_active_) {
    // The current slot is draining through the ready_ heap; divert new
    // same-slot arrivals there so ordering stays exact.
    ready_push(idx);
    ++residents_[kL0];
  } else {
    place(idx);
  }
  return ((static_cast<std::uint64_t>(idx) + 1) << 32) | r.gen;
}

bool SlotCalendar::cancel(EventId id) {
  const std::uint64_t hi = id >> 32;
  if (hi == 0 || !arena_.in_range(hi - 1)) return false;
  const auto idx = static_cast<std::uint32_t>(hi - 1);
  Rec& r = arena_[idx];
  if (r.state != State::kLive || r.gen != (id & kGenMask)) return false;
  r.state = State::kCancelled;
  r.fn = nullptr;  // drop capture resources eagerly; the record is pruned lazily
  assert(live_count_ > 0);
  --live_count_;
  return true;
}

SimTime SlotCalendar::next_time() const {
  // peek() prunes cancelled records and advances the cursor, which mutates
  // book-keeping but never the observable event order.
  auto* self = const_cast<SlotCalendar*>(this);
  const std::uint32_t idx = self->peek();
  return idx == kNil ? SimTime::max() : self->arena_[idx].time;
}

FiredEvent SlotCalendar::pop() {
  const std::uint32_t idx = peek();
  assert(idx != kNil && "pop() on empty calendar");
  Rec& r = arena_[idx];
  FiredEvent out{r.time, ((static_cast<std::uint64_t>(idx) + 1) << 32) | r.gen,
                 std::move(r.fn)};
  if (ready_active_) {
    [[maybe_unused]] const std::uint32_t popped = ready_pop();
    assert(popped == idx);
    assert(residents_[kL0] > 0);
    --residents_[kL0];
  } else {
    Bucket& b = l0_[static_cast<std::size_t>(cur_slot_) & (kBuckets - 1)];
    [[maybe_unused]] const std::uint32_t popped = unlink_head(b, kL0);
    assert(popped == idx);
  }
  assert(live_count_ > 0);
  --live_count_;
  free_rec(idx);
  return out;
}

void SlotCalendar::append(Bucket& b, std::uint32_t idx, Region region) {
  Rec& r = arena_[idx];
  r.next = kNil;
  if (b.head == kNil) {
    b.head = b.tail = idx;
    b.sorted = true;
  } else {
    if (arena_[b.tail].time > r.time) b.sorted = false;
    arena_[b.tail].next = idx;
    b.tail = idx;
  }
  ++residents_[region];
}

std::uint32_t SlotCalendar::unlink_head(Bucket& b, Region region) {
  const std::uint32_t idx = b.head;
  assert(idx != kNil);
  b.head = arena_[idx].next;
  if (b.head == kNil) {
    b.tail = kNil;
    b.sorted = true;
  }
  assert(residents_[region] > 0);
  --residents_[region];
  return idx;
}

void SlotCalendar::place(std::uint32_t idx) {
  const std::int64_t slot = slot_of(arena_[idx].time);
  assert(slot >= cur_slot_);
  if ((slot >> 8) == (cur_slot_ >> 8)) {
    append(l0_[static_cast<std::size_t>(slot) & (kBuckets - 1)], idx, kL0);
  } else if ((slot >> 16) == (cur_slot_ >> 16)) {
    append(l1_[static_cast<std::size_t>(slot >> 8) & (kBuckets - 1)], idx, kL1);
  } else if ((slot >> 24) == (cur_slot_ >> 24)) {
    append(l2_[static_cast<std::size_t>(slot >> 16) & (kBuckets - 1)], idx, kL2);
  } else {
    append(far_, idx, kFar);
  }
}

void SlotCalendar::cascade(Bucket& b, Region region) {
  // Walking in list order preserves sequence order; the level-0 buckets a
  // page crossing cascades into are empty (the previous page fully drained),
  // so per-bucket FIFO order remains sequence order.
  std::uint32_t idx = b.head;
  b.head = b.tail = kNil;
  b.sorted = true;
  while (idx != kNil) {
    const std::uint32_t next = arena_[idx].next;
    assert(residents_[region] > 0);
    --residents_[region];
    if (arena_[idx].state == State::kCancelled) {
      free_rec(idx);
    } else {
      place(idx);
    }
    idx = next;
  }
}

void SlotCalendar::free_rec(std::uint32_t idx) {
  Rec& r = arena_[idx];
  r.state = State::kFree;
  ++r.gen;  // invalidate outstanding ids for this slot
  r.fn = nullptr;
  arena_.release(idx);
}

void SlotCalendar::rebuild() {
  // Gather every live record, restore global sequence order, and re-place
  // relative to the (possibly moved) cursor.  Only two rare paths need this:
  // cursor retreat after a peek overshoot, and far-horizon (2^24 slot)
  // crossings, where merged lists would lose relative sequence order.
  std::vector<std::uint32_t> live;
  live.reserve(live_count_);
  auto gather = [&](Bucket& b) {
    std::uint32_t idx = b.head;
    b.head = b.tail = kNil;
    b.sorted = true;
    while (idx != kNil) {
      const std::uint32_t next = arena_[idx].next;
      if (arena_[idx].state == State::kCancelled) {
        free_rec(idx);
      } else {
        live.push_back(idx);
      }
      idx = next;
    }
  };
  for (auto& b : l0_) gather(b);
  for (auto& b : l1_) gather(b);
  for (auto& b : l2_) gather(b);
  gather(far_);
  for (const std::uint32_t idx : ready_) {
    if (arena_[idx].state == State::kCancelled) {
      free_rec(idx);
    } else {
      live.push_back(idx);
    }
  }
  ready_.clear();
  ready_active_ = false;
  residents_[kL0] = residents_[kL1] = residents_[kL2] = residents_[kFar] = 0;
  std::sort(live.begin(), live.end(), [this](std::uint32_t a, std::uint32_t b) {
    return arena_[a].seq < arena_[b].seq;
  });
  for (const std::uint32_t idx : live) place(idx);
}

void SlotCalendar::advance_cursor() {
  if (residents_[kL0] == 0 && residents_[kL1] == 0 && residents_[kL2] == 0) {
    // Everything pending sits beyond the far horizon: jump straight there.
    cur_slot_ = ((cur_slot_ >> 24) + 1) << 24;
    rebuild();
    return;
  }
  if (residents_[kL0] == 0 && residents_[kL1] == 0) {
    cur_slot_ = ((cur_slot_ >> 16) + 1) << 16;  // next level-2 boundary
  } else if (residents_[kL0] == 0) {
    cur_slot_ = ((cur_slot_ >> 8) + 1) << 8;  // next level-1 boundary
  } else {
    ++cur_slot_;
  }
  if ((cur_slot_ & 0xFFFFFF) == 0) {
    // Far-horizon crossing: far-list records merge with resident ones in
    // arbitrary relative order, so rebuild from scratch.
    rebuild();
    return;
  }
  if ((cur_slot_ & 0xFFFF) == 0) {
    cascade(l2_[static_cast<std::size_t>(cur_slot_ >> 16) & (kBuckets - 1)], kL2);
  }
  if ((cur_slot_ & 0xFF) == 0) {
    cascade(l1_[static_cast<std::size_t>(cur_slot_ >> 8) & (kBuckets - 1)], kL1);
  }
}

void SlotCalendar::spill_to_ready(Bucket& b) {
  // Rare path: the bucket mixes intra-slot microsecond offsets out of append
  // order, so FIFO drain would be wrong.  Move it into an explicit
  // (time, seq) min-heap; later same-slot schedules push here too.
  std::uint32_t idx = b.head;
  b.head = b.tail = kNil;
  b.sorted = true;
  while (idx != kNil) {
    const std::uint32_t next = arena_[idx].next;
    if (arena_[idx].state == State::kCancelled) {
      assert(residents_[kL0] > 0);
      --residents_[kL0];
      free_rec(idx);
    } else {
      ready_.push_back(idx);
    }
    idx = next;
  }
  std::make_heap(ready_.begin(), ready_.end(),
                 [this](std::uint32_t a, std::uint32_t b2) {
                   const Rec& ra = arena_[a];
                   const Rec& rb = arena_[b2];
                   if (ra.time != rb.time) return ra.time > rb.time;
                   return ra.seq > rb.seq;
                 });
  ready_active_ = true;
}

std::uint32_t SlotCalendar::peek() {
  if (live_count_ == 0) return kNil;
  for (;;) {
    if (ready_active_) {
      while (!ready_.empty() &&
             arena_[ready_.front()].state == State::kCancelled) {
        const std::uint32_t idx = ready_pop();
        assert(residents_[kL0] > 0);
        --residents_[kL0];
        free_rec(idx);
      }
      if (!ready_.empty()) return ready_.front();
      ready_active_ = false;
      advance_cursor();
      continue;
    }
    Bucket& b = l0_[static_cast<std::size_t>(cur_slot_) & (kBuckets - 1)];
    while (b.head != kNil && arena_[b.head].state == State::kCancelled) {
      free_rec(unlink_head(b, kL0));
    }
    if (b.head != kNil) {
      if (b.sorted) return b.head;
      spill_to_ready(b);
      continue;
    }
    advance_cursor();
  }
}

void SlotCalendar::ready_push(std::uint32_t idx) {
  ready_.push_back(idx);
  std::push_heap(ready_.begin(), ready_.end(),
                 [this](std::uint32_t a, std::uint32_t b) {
                   const Rec& ra = arena_[a];
                   const Rec& rb = arena_[b];
                   if (ra.time != rb.time) return ra.time > rb.time;
                   return ra.seq > rb.seq;
                 });
}

std::uint32_t SlotCalendar::ready_pop() {
  std::pop_heap(ready_.begin(), ready_.end(),
                [this](std::uint32_t a, std::uint32_t b) {
                  const Rec& ra = arena_[a];
                  const Rec& rb = arena_[b];
                  if (ra.time != rb.time) return ra.time > rb.time;
                  return ra.seq > rb.seq;
                });
  const std::uint32_t idx = ready_.back();
  ready_.pop_back();
  return idx;
}

void SlotCalendar::clone_into(SlotCalendar& dst) const {
  // Slot-exact arena copy: freelist chain and generations carry over, so the
  // ((idx+1) << 32 | gen) ids devices hold remain valid against the copy.
  // Cancelled and free slots hold a null fn; clone() maps null to null.
  dst.arena_.copy_from(arena_, [](Rec& d, const Rec& s) {
    d.time = s.time;
    d.seq = s.seq;
    d.next = s.next;
    d.gen = s.gen;
    d.state = s.state;
    d.fn = s.fn.clone();
  });
  std::copy(std::begin(l0_), std::end(l0_), std::begin(dst.l0_));
  std::copy(std::begin(l1_), std::end(l1_), std::begin(dst.l1_));
  std::copy(std::begin(l2_), std::end(l2_), std::begin(dst.l2_));
  dst.far_ = far_;
  dst.cur_slot_ = cur_slot_;
  dst.ready_active_ = ready_active_;
  dst.ready_ = ready_;
  std::copy(std::begin(residents_), std::end(residents_), std::begin(dst.residents_));
  dst.next_seq_ = next_seq_;
  dst.live_count_ = live_count_;
}

}  // namespace firefly::sim
