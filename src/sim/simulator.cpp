#include "sim/simulator.hpp"

#include <cassert>
#include <sstream>

namespace firefly::sim {

struct Simulator::PeriodicHandle::State {
  Simulator* sim = nullptr;
  SimTime period{};
  EventFn fn;
  EventId pending = 0;
  bool cancelled = false;

  // Fires one occurrence, then re-arms.  The State outlives every pending
  // occurrence (it is owned by the Simulator and freed in its destructor),
  // so scheduled closures capture just this raw pointer — 8 bytes, no
  // shared_ptr control block per timer.
  void run() {
    if (cancelled) return;
    fn();
    if (cancelled) return;
    pending = sim->schedule_in(period, [this] { run(); });
  }
};

EventId Simulator::schedule_at(SimTime at, EventFn fn) {
  assert(at >= now_);
  return kind_ == SchedulerKind::kWheel ? wheel_.schedule(at, std::move(fn))
                                        : heap_.schedule(at, std::move(fn));
}

EventId Simulator::schedule_in(SimTime delay, EventFn fn) {
  assert(delay.us >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::PeriodicHandle::cancel() {
  if (state_ == nullptr) return;
  state_->cancelled = true;
  if (state_->pending != 0) sim_->cancel(state_->pending);
  state_ = nullptr;
}

Simulator::PeriodicHandle Simulator::schedule_periodic(SimTime phase, SimTime period, EventFn fn) {
  assert(period.us > 0);
  auto* state = new PeriodicHandle::State{this, period, std::move(fn), 0, false};
  periodic_states_.push_back(state);
  state->pending = schedule_in(phase, [state] { state->run(); });

  PeriodicHandle handle;
  handle.state_ = state;
  handle.sim_ = this;
  return handle;
}

SimTime Simulator::run_until(SimTime deadline) {
  stop_requested_ = false;
  if (kind_ == SchedulerKind::kWheel) {
    while (!wheel_.empty() && !stop_requested_) {
      if (wheel_.next_time() > deadline) {
        now_ = deadline;
        return now_;
      }
      auto fired = wheel_.pop();
      now_ = fired.time;
      ++events_processed_;
      fired.fn();
    }
  } else {
    while (!heap_.empty() && !stop_requested_) {
      if (heap_.next_time() > deadline) {
        now_ = deadline;
        return now_;
      }
      auto fired = heap_.pop();
      now_ = fired.time;
      ++events_processed_;
      fired.fn();
    }
  }
  if (queue_empty() && now_ < deadline && deadline != SimTime::max()) now_ = deadline;
  return now_;
}

SimTime Simulator::run() { return run_until(SimTime::max()); }

Simulator::Snapshot Simulator::snapshot() const {
  Snapshot snap;
  snap.kind = kind_;
  if (kind_ == SchedulerKind::kWheel) {
    wheel_.clone_into(snap.wheel);
  } else {
    heap_.clone_into(snap.heap);
  }
  snap.now = now_;
  snap.events_processed = events_processed_;
  snap.periodic.reserve(periodic_states_.size());
  for (const auto* s : periodic_states_)
    snap.periodic.emplace_back(s->pending, s->cancelled);
  return snap;
}

void Simulator::restore(const Snapshot& snap) {
  assert(snap.kind == kind_ && "snapshot came from a different scheduler kind");
  assert(snap.periodic.size() <= periodic_states_.size());
  if (kind_ == SchedulerKind::kWheel) {
    snap.wheel.clone_into(wheel_);
  } else {
    snap.heap.clone_into(heap_);
  }
  now_ = snap.now;
  events_processed_ = snap.events_processed;
  stop_requested_ = false;
  for (std::size_t i = 0; i < periodic_states_.size(); ++i) {
    if (i < snap.periodic.size()) {
      periodic_states_[i]->pending = snap.periodic[i].first;
      periodic_states_[i]->cancelled = snap.periodic[i].second;
    } else {
      // Installed after the snapshot: its State must stay allocated (cloned
      // closures in the restored queue never reference it, but the vector
      // owns it), yet it must never re-arm.
      periodic_states_[i]->cancelled = true;
    }
  }
}

Simulator::SchedulerStats Simulator::scheduler_stats() const {
  SchedulerStats stats;
  if (kind_ == SchedulerKind::kWheel) {
    stats.live_events = wheel_.size();
    stats.arena_capacity = wheel_.arena_capacity();
    stats.arena_high_water = wheel_.arena_high_water();
  } else {
    stats.live_events = heap_.size();
  }
  return stats;
}

Simulator::~Simulator() {
  for (auto* s : periodic_states_) delete s;
}

std::string to_string(SimTime t) {
  std::ostringstream os;
  os << t.as_milliseconds() << " ms";
  return os.str();
}

}  // namespace firefly::sim
