#include "sim/simulator.hpp"

#include <cassert>
#include <memory>
#include <sstream>

namespace firefly::sim {

struct Simulator::PeriodicHandle::State {
  Simulator* sim = nullptr;
  SimTime period{};
  EventFn fn;
  EventId pending = 0;
  bool cancelled = false;
};

EventId Simulator::schedule_at(SimTime at, EventFn fn) {
  assert(at >= now_);
  return queue_.schedule(at, std::move(fn));
}

EventId Simulator::schedule_in(SimTime delay, EventFn fn) {
  assert(delay.us >= 0);
  return queue_.schedule(now_ + delay, std::move(fn));
}

void Simulator::PeriodicHandle::cancel() {
  if (state_ == nullptr) return;
  state_->cancelled = true;
  if (state_->pending != 0) sim_->cancel(state_->pending);
  state_ = nullptr;
}

Simulator::PeriodicHandle Simulator::schedule_periodic(SimTime phase, SimTime period, EventFn fn) {
  assert(period.us > 0);
  auto* state = new PeriodicHandle::State{this, period, std::move(fn), 0, false};
  periodic_states_.push_back(state);

  // Self-rescheduling closure: fires, then re-arms unless cancelled.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [state, tick]() {
    if (state->cancelled) return;
    state->fn();
    if (state->cancelled) return;
    state->pending = state->sim->schedule_in(state->period, [tick] { (*tick)(); });
  };
  state->pending = schedule_in(phase, [tick] { (*tick)(); });

  PeriodicHandle handle;
  handle.state_ = state;
  handle.sim_ = this;
  return handle;
}

SimTime Simulator::run_until(SimTime deadline) {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > deadline) {
      now_ = deadline;
      return now_;
    }
    auto fired = queue_.pop();
    now_ = fired.time;
    ++events_processed_;
    fired.fn();
  }
  if (queue_.empty() && now_ < deadline && deadline != SimTime::max()) now_ = deadline;
  return now_;
}

SimTime Simulator::run() { return run_until(SimTime::max()); }

Simulator::~Simulator() {
  for (auto* s : periodic_states_) delete s;
}

std::string to_string(SimTime t) {
  std::ostringstream os;
  os << t.as_milliseconds() << " ms";
  return os.str();
}

}  // namespace firefly::sim
