// event_queue.hpp — deterministic pending-event set (heap reference).
//
// A binary min-heap keyed on (time, sequence number).  The monotone sequence
// number gives FIFO semantics for simultaneous events, which is what makes
// two identically seeded runs process events in the same order.  Events can
// be cancelled in O(1) by id (lazy deletion at pop).
//
// This is the reference implementation behind `SchedulerKind::kHeap`; the
// production scheduler is the slot calendar (slot_calendar.hpp), which
// processes events in exactly the same (time, seq) total order.  Callbacks
// are stored inline (`util::InplaceFunction`) so neither scheduler touches
// the heap per schedule().
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"
#include "util/inplace_function.hpp"

namespace firefly::sim {

using EventId = std::uint64_t;
/// Event callback with inline (small-buffer) capture storage.  48 bytes
/// covers every closure the engines schedule; larger captures fail to
/// compile rather than silently allocating.
using EventFn = util::InplaceFunction<void(), 48>;

/// A popped event, common to both scheduler implementations.
struct FiredEvent {
  SimTime time;
  EventId id;
  EventFn fn;
};

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `at`.  Returns an id usable for cancel().
  EventId schedule(SimTime at, EventFn fn);

  /// Cancel a pending event.  Returns false if already fired or cancelled.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest live event; SimTime::max() when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Pop the earliest live event.  Precondition: !empty().
  struct Fired {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  Fired pop();

  /// Deep-copy this queue's complete state (entries, cancellation sets, id
  /// and sequence counters) into `dst`, cloning every stored callback.
  /// Ids minted by this queue stay valid against the copy, and the copy
  /// pops in exactly the same (time, seq) order — the scheduler half of the
  /// simulator's snapshot/restore checkpoint.
  void clone_into(EventQueue& dst) const;

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void skip_cancelled() const;

  mutable std::vector<Entry> heap_;
  std::unordered_set<EventId> pending_;
  mutable std::unordered_set<EventId> cancelled_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace firefly::sim
