// simulator.hpp — the discrete-event scheduler.
//
// A single-threaded event loop over `EventQueue`.  Protocol entities
// schedule callbacks in the future (`schedule_in`/`schedule_at`), install
// periodic timers, and the loop advances the clock from event to event.
// `run_until` bounds a run; convergence detectors call `stop()` to end it
// early.  One Simulator per Monte-Carlo trial; trials parallelise across a
// thread pool with no shared state.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace firefly::sim {

class Simulator {
 public:
  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const { return events_processed_; }

  /// Schedule at an absolute simulated time (must be >= now()).
  EventId schedule_at(SimTime at, EventFn fn);
  /// Schedule `delay` after now().
  EventId schedule_in(SimTime delay, EventFn fn);
  /// Cancel a pending event; false if already fired/cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Install a periodic timer with the given period, first firing at
  /// now() + phase.  Returns the id of the *current* pending occurrence via
  /// the handle; cancelling the handle stops the series.
  class PeriodicHandle {
   public:
    PeriodicHandle() = default;
    void cancel();
    [[nodiscard]] bool active() const { return state_ != nullptr; }

   private:
    friend class Simulator;
    struct State;
    State* state_ = nullptr;
    Simulator* sim_ = nullptr;
  };
  PeriodicHandle schedule_periodic(SimTime phase, SimTime period, EventFn fn);

  /// Run until the queue drains or `deadline` passes.  Returns the time the
  /// loop stopped at.
  SimTime run_until(SimTime deadline);
  /// Run until the queue drains (use with care: periodic timers never drain).
  SimTime run();
  /// Request an early stop from inside an event callback.
  void stop() { stop_requested_ = true; }
  [[nodiscard]] bool stopped() const { return stop_requested_; }

  ~Simulator();

 private:
  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  std::uint64_t events_processed_ = 0;
  bool stop_requested_ = false;
  std::vector<PeriodicHandle::State*> periodic_states_;
};

}  // namespace firefly::sim
