// simulator.hpp — the discrete-event scheduler.
//
// A single-threaded event loop over a pending-event set.  Protocol entities
// schedule callbacks in the future (`schedule_in`/`schedule_at`), install
// periodic timers, and the loop advances the clock from event to event.
// `run_until` bounds a run; convergence detectors call `stop()` to end it
// early.  One Simulator per Monte-Carlo trial; trials parallelise across a
// thread pool with no shared state.
//
// Two interchangeable pending-event sets back the loop (sim/scheduler.hpp):
// the slot calendar (`kWheel`, default, allocation-free hot path) and the
// binary-heap reference (`kHeap`).  Both process events in the identical
// (time, sequence) total order, so a trial's results are bit-identical
// either way — `test_scheduler_equivalence` enforces this.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/scheduler.hpp"
#include "sim/slot_calendar.hpp"
#include "sim/time.hpp"

namespace firefly::sim {

class Simulator {
 public:
  explicit Simulator(SchedulerKind kind = SchedulerKind::kWheel) : kind_(kind) {}

  [[nodiscard]] SchedulerKind scheduler() const { return kind_; }
  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const { return events_processed_; }

  /// Schedule at an absolute simulated time (must be >= now()).
  EventId schedule_at(SimTime at, EventFn fn);
  /// Schedule `delay` after now().
  EventId schedule_in(SimTime delay, EventFn fn);
  /// Cancel a pending event; false if already fired/cancelled.
  bool cancel(EventId id) {
    return kind_ == SchedulerKind::kWheel ? wheel_.cancel(id) : heap_.cancel(id);
  }

  /// Install a periodic timer with the given period, first firing at
  /// now() + phase.  Returns the id of the *current* pending occurrence via
  /// the handle; cancelling the handle stops the series.
  class PeriodicHandle {
   public:
    PeriodicHandle() = default;
    void cancel();
    [[nodiscard]] bool active() const { return state_ != nullptr; }

   private:
    friend class Simulator;
    struct State;
    State* state_ = nullptr;
    Simulator* sim_ = nullptr;
  };
  PeriodicHandle schedule_periodic(SimTime phase, SimTime period, EventFn fn);

  /// Run until the queue drains or `deadline` passes.  Returns the time the
  /// loop stopped at.
  SimTime run_until(SimTime deadline);
  /// Run until the queue drains (use with care: periodic timers never drain).
  SimTime run();
  /// Request an early stop from inside an event callback.
  void stop() { stop_requested_ = true; }
  [[nodiscard]] bool stopped() const { return stop_requested_; }

  /// In-process rollback checkpoint of the scheduler: clock, counters, the
  /// complete pending-event set (callbacks cloned) and the re-arm state of
  /// every periodic timer.  restore() rewinds THIS simulator — scheduled
  /// closures capture raw pointers (engine, devices, periodic states) that
  /// are only meaningful inside the owning process, so a snapshot is a
  /// rewind point, not a serialised file.
  struct Snapshot {
    SchedulerKind kind = SchedulerKind::kWheel;
    SlotCalendar wheel;
    EventQueue heap;
    SimTime now = SimTime::zero();
    std::uint64_t events_processed = 0;
    // Per periodic timer, in installation order: (pending occurrence id,
    // cancelled flag).  Timers installed after the snapshot are marked
    // cancelled on restore (their State outlives the rollback, but their
    // pending occurrence no longer exists in the restored queue).
    std::vector<std::pair<EventId, bool>> periodic;
  };
  [[nodiscard]] Snapshot snapshot() const;
  void restore(const Snapshot& snap);

  /// Pending-set footprint, for the bounded-memory probe.  The arena fields
  /// are zero under kHeap (the reference heap has no arena).
  struct SchedulerStats {
    std::size_t live_events = 0;
    std::size_t arena_capacity = 0;
    std::size_t arena_high_water = 0;
  };
  [[nodiscard]] SchedulerStats scheduler_stats() const;

  ~Simulator();

 private:
  [[nodiscard]] bool queue_empty() const {
    return kind_ == SchedulerKind::kWheel ? wheel_.empty() : heap_.empty();
  }
  [[nodiscard]] SimTime queue_next_time() const {
    return kind_ == SchedulerKind::kWheel ? wheel_.next_time() : heap_.next_time();
  }

  SchedulerKind kind_ = SchedulerKind::kWheel;
  SlotCalendar wheel_;
  EventQueue heap_;
  SimTime now_ = SimTime::zero();
  std::uint64_t events_processed_ = 0;
  bool stop_requested_ = false;
  std::vector<PeriodicHandle::State*> periodic_states_;
};

}  // namespace firefly::sim
