// slot_calendar.hpp — hierarchical slot-calendar scheduler (timing wheel).
//
// The simulator's pending-event set is dominated by one pattern: cancel the
// previous fire event and schedule the next one exactly one period ahead.
// A binary heap pays O(log n) moves plus a hash-set insert (a heap
// allocation) for every such reschedule.  The slot calendar makes both O(1):
//
//   * Event records are fixed-layout structs in a `util::SlabArena` —
//     schedule() pops a freelist slot, cancel() flips a flag.  After warm-up
//     a trial never touches the system heap for scheduling.
//   * Time is bucketed by LTE slot (1 ms — see sim/time.hpp).  Three levels
//     of 256 buckets cover the next 2^24 slots (~4.6 h of simulated time);
//     later events park in an overflow list.  Crossing a 256-slot page
//     cascades the next level-1 bucket down into level 0, and so on.
//   * Each bucket is an intrusive FIFO list.  Appends happen in sequence-
//     number order, so a bucket whose times are non-decreasing in list order
//     (the common case — engine events land exactly on slot boundaries, so
//     all times in a level-0 bucket are equal) drains front-to-back in the
//     exact (time, seq) order the heap would produce.  A bucket that mixes
//     intra-slot microsecond offsets out of order is detected via a per-
//     bucket flag and spilled into a small (time, seq) min-heap before
//     draining, so the total order is ALWAYS identical to EventQueue's.
//
// Determinism is the hard requirement: `test_scheduler_equivalence` asserts
// bit-identical RunMetrics between this scheduler and the heap reference.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"  // EventId, EventFn, FiredEvent
#include "sim/time.hpp"
#include "util/arena.hpp"

namespace firefly::sim {

class SlotCalendar {
 public:
  /// Schedule `fn` at absolute time `at`.  Returns an id usable for cancel().
  EventId schedule(SimTime at, EventFn fn);

  /// Cancel a pending event.  Returns false if already fired or cancelled.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest live event; SimTime::max() when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Pop the earliest live event.  Precondition: !empty().
  FiredEvent pop();

  /// Deep-copy the calendar's complete state into `dst`: the record arena
  /// (slot-exact, callbacks cloned, generations preserved — so EventIds
  /// minted here stay valid against the copy), every bucket list, the
  /// cursor, the ready heap and the counters.  The copy pops in exactly the
  /// same (time, seq) order as the original; this is the scheduler half of
  /// the simulator's snapshot/restore checkpoint.
  void clone_into(SlotCalendar& dst) const;

  /// Arena footprint probes for the bounded-memory soak gate.
  [[nodiscard]] std::size_t arena_capacity() const { return arena_.capacity(); }
  [[nodiscard]] std::size_t arena_high_water() const { return arena_.high_water(); }

 private:
  static constexpr std::uint32_t kNil = util::SlabArena<int>::kNil;
  static constexpr std::uint32_t kBuckets = 256;  // per level

  enum class State : std::uint8_t { kFree, kLive, kCancelled };

  struct Rec {
    SimTime time{};
    std::uint64_t seq = 0;
    std::uint32_t next = kNil;  // intrusive list link
    std::uint32_t gen = 0;      // bumped on release; stale ids fail cancel()
    State state = State::kFree;
    EventFn fn;
  };

  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    // True while the list's times are non-decreasing in append order, which
    // makes head the (time, seq) minimum and FIFO drain exact.
    bool sorted = true;
  };

  // Which region a record currently resides in, for the resident counters
  // that let the cursor skip empty pages.
  enum Region : std::uint8_t { kL0 = 0, kL1 = 1, kL2 = 2, kFar = 3 };

  static std::int64_t slot_of(SimTime t) { return t.us / kLteSlot.us; }

  Rec& rec(std::uint32_t idx) { return arena_[idx]; }

  void append(Bucket& b, std::uint32_t idx, Region region);
  std::uint32_t unlink_head(Bucket& b, Region region);
  /// Route a record to the bucket its slot belongs to, relative to cur_slot_.
  void place(std::uint32_t idx);
  /// Move every record of a level-1/2 bucket down one level.
  void cascade(Bucket& b, Region region);
  /// Drop a record back to the freelist (bumps generation).
  void free_rec(std::uint32_t idx);
  /// Gather all live records, sort by seq, and re-place them relative to the
  /// current cursor.  Used for cursor retreat and far-horizon crossings.
  void rebuild();
  /// Advance the cursor one step (skipping empty pages), cascading on
  /// page crossings.
  void advance_cursor();
  /// Spill the current level-0 bucket into the ready_ min-heap.
  void spill_to_ready(Bucket& b);
  /// Index of the earliest live record, pruning cancelled ones; kNil iff
  /// the calendar is empty.  Advances the cursor as needed.
  std::uint32_t peek();

  void ready_push(std::uint32_t idx);
  std::uint32_t ready_pop();

  util::SlabArena<Rec> arena_;
  Bucket l0_[kBuckets];
  Bucket l1_[kBuckets];
  Bucket l2_[kBuckets];
  Bucket far_;  // beyond the 2^24-slot horizon

  std::int64_t cur_slot_ = 0;  // slot the drain cursor is at
  bool ready_active_ = false;  // current slot drains via ready_ instead
  std::vector<std::uint32_t> ready_;  // min-heap on (time, seq)

  // Records resident per region (live + cancelled-not-yet-freed).  A region
  // count of zero lets advance_cursor() jump whole pages.
  std::size_t residents_[4] = {0, 0, 0, 0};

  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace firefly::sim
