#include "sim/soak.hpp"

#include <algorithm>

namespace firefly::sim {

SoakRecorder::SoakRecorder(std::size_t capacity) {
  ring_.resize(std::max<std::size_t>(1, capacity));
}

void SoakRecorder::push(const SoakWindow& window) {
  ++emitted_;
  if (consumer_) {
    consumer_(window);
    return;
  }
  if (count_ < ring_.size()) {
    ring_[(head_ + count_) % ring_.size()] = window;
    ++count_;
  } else {
    ring_[head_] = window;
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
  }
}

void SoakRecorder::drain(const Consumer& fn) {
  for (std::size_t i = 0; i < count_; ++i) fn(ring_[(head_ + i) % ring_.size()]);
  head_ = 0;
  count_ = 0;
}

}  // namespace firefly::sim
