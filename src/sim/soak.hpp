// soak.hpp — windowed soak telemetry for long-lived service runs.
//
// A service-mode run never "converges and exits"; instead it slices simulated
// time into fixed windows and emits one `SoakWindow` record per slice: live
// device count, churn and message-rate deltas, fraction-of-time-synced,
// re-sync latency, and the scheduler-arena footprint that backs the
// bounded-memory invariant.  `SoakRecorder` is the delivery channel: a
// preallocated ring buffer with drop-oldest backpressure (a slow or absent
// consumer can never make a soak's memory grow), or a streaming consumer
// callback when the caller wants every window (the CLI's JSONL writer).
//
// This layer is deliberately engine-agnostic — plain structs and a ring —
// so it sits in src/sim below src/core in the layering.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace firefly::sim {

/// One telemetry window of a service-mode run.  Counter-like fields are
/// deltas over the window; gauge-like fields (live_devices, events_live,
/// arena_*) are sampled at the window's end slot.
struct SoakWindow {
  std::uint64_t index = 0;
  std::int64_t start_slot = 0;
  std::int64_t end_slot = 0;

  // Population & churn over the window.
  std::uint32_t live_devices = 0;
  std::uint32_t crashes = 0;
  std::uint32_t recoveries = 0;

  // Traffic over the window.
  std::uint64_t messages = 0;      // transmissions (RACH1 + RACH2)
  std::uint64_t deliveries = 0;
  std::uint64_t collisions = 0;
  std::uint64_t fault_drops = 0;
  double msg_rate_per_slot = 0.0;

  // Synchronisation health.
  bool synced_once = false;        // network has reached global sync at least once
  double sync_fraction = 0.0;      // fraction of sampled slots spent aligned
  std::uint32_t resyncs = 0;       // desync->resync episodes completed this window
  double mean_resync_ms = 0.0;     // mean re-sync latency of those episodes

  // Graceful-degradation counters.
  std::uint64_t relabels = 0;            // headless-fragment re-elections granted
  std::uint64_t relabels_suppressed = 0; // re-elections refused by the storm cap

  // Protocol-specific gauges (filled by DiscoveryProtocol::fill_soak_window;
  // zero for protocols without the observable).
  double desync_error = 0.0;       // DESYNC: mean midpoint residual (slots)

  // Scheduler footprint (bounded-memory probe; arena fields zero under kHeap).
  std::uint64_t events_live = 0;
  std::uint64_t arena_capacity = 0;
  std::uint64_t arena_high_water = 0;
  std::uint64_t events_processed = 0;  // cumulative, sampled at end_slot

  friend bool operator==(const SoakWindow&, const SoakWindow&) = default;
};

/// Bounded delivery channel for SoakWindow records.
///
/// Two modes:
///   * streaming — `set_consumer()` installed: every push is handed straight
///     to the consumer, nothing is buffered, nothing is dropped;
///   * buffered — no consumer: pushes land in a ring preallocated at
///     construction.  When the ring is full the OLDEST window is overwritten
///     and `dropped()` counts it; the soak keeps running in constant memory
///     and the loss is visible instead of silent.
class SoakRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  using Consumer = std::function<void(const SoakWindow&)>;

  explicit SoakRecorder(std::size_t capacity = kDefaultCapacity);

  /// Install a streaming consumer (replaces buffering for subsequent pushes;
  /// anything already buffered stays until drain()).
  void set_consumer(Consumer consumer) { consumer_ = std::move(consumer); }

  void push(const SoakWindow& window);

  /// Hand every buffered window to `fn` in arrival order and empty the ring.
  void drain(const Consumer& fn);

  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t buffered() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

 private:
  std::vector<SoakWindow> ring_;  // fixed size after construction
  std::size_t head_ = 0;          // index of the oldest buffered window
  std::size_t count_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
  Consumer consumer_;
};

}  // namespace firefly::sim
