// scheduler.hpp — pending-event-set selector.
//
// The simulator offers two interchangeable schedulers with bit-identical
// event ordering (total order on (time, sequence number)):
//   * kWheel — the hierarchical slot calendar (slot_calendar.hpp): O(1)
//     schedule/cancel, arena-backed records, no allocation on the hot path.
//     The production default.
//   * kHeap  — the binary-heap EventQueue (event_queue.hpp): the simple
//     reference implementation the equivalence tests compare against.
#pragma once

#include <optional>
#include <string_view>

namespace firefly::sim {

enum class SchedulerKind {
  kWheel,  ///< hierarchical slot calendar (production)
  kHeap,   ///< binary min-heap (reference baseline)
};

[[nodiscard]] constexpr const char* to_string(SchedulerKind kind) {
  return kind == SchedulerKind::kWheel ? "wheel" : "heap";
}

/// Strict parse of "wheel"/"heap"; nullopt for anything else.  User-facing
/// surfaces (CLI flags) must use this and reject unknown names loudly.
[[nodiscard]] constexpr std::optional<SchedulerKind> scheduler_from_name(
    std::string_view name) {
  if (name == "wheel") return SchedulerKind::kWheel;
  if (name == "heap") return SchedulerKind::kHeap;
  return std::nullopt;
}

/// Parse "wheel"/"heap"; anything else returns `fallback`.  For defaultable
/// internal call sites only — CLI parsing goes through scheduler_from_name.
[[nodiscard]] constexpr SchedulerKind scheduler_from_string(
    std::string_view name, SchedulerKind fallback = SchedulerKind::kWheel) {
  return scheduler_from_name(name).value_or(fallback);
}

}  // namespace firefly::sim
