#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace firefly::sim {

EventId EventQueue::schedule(SimTime at, EventFn fn) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{at, next_seq_++, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_.insert(id);
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return false;  // already fired or cancelled
  pending_.erase(it);
  cancelled_.insert(id);
  --live_count_;
  return true;
}

void EventQueue::skip_cancelled() const {
  auto& self = const_cast<EventQueue&>(*this);
  while (!self.heap_.empty()) {
    const Entry& top = self.heap_.front();
    const auto it = self.cancelled_.find(top.id);
    if (it == self.cancelled_.end()) return;
    self.cancelled_.erase(it);
    std::pop_heap(self.heap_.begin(), self.heap_.end(), Later{});
    self.heap_.pop_back();
  }
}

SimTime EventQueue::next_time() const {
  skip_cancelled();
  if (heap_.empty()) return SimTime::max();
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  skip_cancelled();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(e.id);
  --live_count_;
  return Fired{e.time, e.id, std::move(e.fn)};
}

void EventQueue::clone_into(EventQueue& dst) const {
  dst.heap_.clear();
  dst.heap_.reserve(heap_.size());
  for (const Entry& e : heap_)
    dst.heap_.push_back(Entry{e.time, e.seq, e.id, e.fn.clone()});
  dst.pending_ = pending_;
  dst.cancelled_ = cancelled_;
  dst.next_seq_ = next_seq_;
  dst.next_id_ = next_id_;
  dst.live_count_ = live_count_;
}

}  // namespace firefly::sim
