// time.hpp — integer simulated time.
//
// The LTE-A slot the paper uses is exactly 1 ms; we represent simulated time
// as int64 microseconds so slot boundaries, propagation offsets and timer
// periods are exact.  No floating point ever enters the event queue, which
// keeps event ordering (and therefore whole-simulation determinism) exact.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace firefly::sim {

/// A point or duration on the simulated clock, in microseconds.
struct SimTime {
  std::int64_t us{0};

  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t microseconds) : us(microseconds) {}

  static constexpr SimTime microseconds(std::int64_t v) { return SimTime{v}; }
  static constexpr SimTime milliseconds(std::int64_t v) { return SimTime{v * 1000}; }
  static constexpr SimTime seconds(std::int64_t v) { return SimTime{v * 1'000'000}; }
  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() { return SimTime{INT64_MAX}; }

  [[nodiscard]] constexpr double as_seconds() const { return static_cast<double>(us) * 1e-6; }
  [[nodiscard]] constexpr double as_milliseconds() const { return static_cast<double>(us) * 1e-3; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.us + b.us}; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.us - b.us}; }
  friend constexpr SimTime operator*(std::int64_t k, SimTime t) { return SimTime{k * t.us}; }
  constexpr SimTime& operator+=(SimTime o) { us += o.us; return *this; }
  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;
};

/// The LTE-A slot length from Table I.
inline constexpr SimTime kLteSlot = SimTime::milliseconds(1);

[[nodiscard]] std::string to_string(SimTime t);

}  // namespace firefly::sim
