// firefly_cli.cpp — scriptable front-end for arbitrary scenario runs.
//
//   firefly_cli --protocol st --n 400 --seed 3 --trials 5
//   firefly_cli --protocol both --n 200 --area fixed --epsilon 0.1
//   firefly_cli --protocol st --n 60 --mobility 1.5 --periods 100
//
// The full flag table lives in `kFlagSpecs` below — the single source that
// generates `--help` AND validates every parsed flag, so the help text can
// no longer drift from what the binary actually accepts.  Run with --help
// for the current table and the live protocol registry.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "core/service_mode.hpp"
#include "core/trace.hpp"
#include "obs/span.hpp"
#include "proto/registry.hpp"
#include "obs/telemetry.hpp"
#include "sim/scheduler.hpp"
#include "sim/soak.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

/// One CLI flag: the single source of truth for `--help` and for rejecting
/// unknown flags.  `arg` is the value placeholder (nullptr for booleans),
/// `group` batches related flags under one heading in the help output.
struct FlagSpec {
  const char* name;
  const char* arg;   // nullptr: bare boolean flag
  const char* help;  // one line, defaults in brackets
  int group;
};

constexpr const char* kFlagGroups[] = {
    "scenario",
    "fault injection (any non-zero knob turns the subsystem on)",
    "service mode (long-lived soak; see DESIGN.md \"Service mode\")",
    "observability (see DESIGN.md \"Observability\")",
    "general",
};

constexpr FlagSpec kFlagSpecs[] = {
    {"protocol", "NAME|both|all", "registered protocol, or a shorthand [both]", 0},
    {"n", "DEVICES", "population size [50]", 0},
    {"seed", "U64", "base RNG seed; trial t runs with seed+t [1]", 0},
    {"trials", "COUNT", "independent trials per protocol [1]", 0},
    {"area", "scaled|fixed", "deployment area policy [scaled]", 0},
    {"epsilon", "E", "PRC coupling strength [0.05]", 0},
    {"period", "SLOTS", "firing period in 1 ms slots [100]", 0},
    {"periods", "MAX", "horizon in firing periods [400]", 0},
    {"mobility", "MPS", "random-waypoint speed, 0 = static [0]", 0},
    {"scheduler", "wheel|heap", "event scheduler; identical results [wheel]", 0},
    {"device-core", "soa|struct", "hot device state layout; identical results [soa]", 0},
    {"csv", "PATH", "append the result table as CSV rows", 0},
    {"churn", "PER_MIN", "crash rate [0]", 1},
    {"churn-rate", "PER_MIN", "alias for --churn (service-mode docs)", 1},
    {"downtime", "MS", "mean downtime before recovery [2000]", 1},
    {"churn-stop", "MS", "stop churn after this instant [-1 = never]", 1},
    {"drift", "PPM", "max oscillator drift [0]", 1},
    {"drop", "P", "i.i.d. reception drop probability [0]", 1},
    {"fade-rate", "PER_MIN", "deep-fade episode rate [0]", 1},
    {"fade-ms", "MS", "mean fade duration [500]", 1},
    {"fade-depth", "DB", "fade attenuation depth [60]", 1},
    {"service", nullptr, "one open-ended soak instead of the trial loop", 2},
    {"duration-slots", "N", "soak horizon in 1 ms slots [1000000]", 2},
    {"window-slots", "N", "telemetry window length [1000]", 2},
    {"snapshot-every", "SLOTS", "rollback-snapshot cadence [0 = never]", 2},
    {"dedup-clear-periods", "N", "ST dedup-set prune cadence in periods [8]", 2},
    {"relabel-cap", "N", "headless re-elections per period, 0 = unlimited [8]", 2},
    {"soak-out", "PATH", "stream firefly-soak-v1 JSONL windows", 2},
    {"telemetry", nullptr, "print a metric-registry summary after the runs", 3},
    {"trace-chrome", "PATH", "Chrome trace-event file (load in ui.perfetto.dev)", 3},
    {"metrics-out", "PATH", "JSONL: run-metrics per trial + registry snapshot", 3},
    {"trace-csv", "PATH", "protocol milestone trace (fires, merges, ...)", 3},
    {"trace-capacity", "N", "ring-buffer the milestone trace [0 = unlimited]", 3},
    {"help", nullptr, "print this flag table and the protocol registry", 4},
};

void print_help(const firefly::util::Flags& flags) {
  using namespace firefly;
  std::cout << "usage: " << flags.program() << " [--flag value ...]\n";
  for (std::size_t g = 0; g < std::size(kFlagGroups); ++g) {
    std::cout << kFlagGroups[g] << ":\n";
    for (const FlagSpec& spec : kFlagSpecs) {
      if (static_cast<std::size_t>(spec.group) != g) continue;
      std::string left = std::string("--") + spec.name;
      if (spec.arg != nullptr) left += std::string(" <") + spec.arg + ">";
      std::cout << "  " << left;
      for (std::size_t pad = left.size(); pad < 30; ++pad) std::cout << ' ';
      std::cout << spec.help << '\n';
    }
  }
  std::cout << "protocols (from proto::Registry):\n";
  for (const std::string& name : proto::Registry::instance().names()) {
    const proto::ProtocolInfo* info = proto::Registry::instance().find(name);
    std::cout << "  " << name << " — " << info->summary << '\n';
  }
}

/// Reject flags outside the table — a typo must not silently run defaults.
bool reject_unknown_flags(const firefly::util::Flags& flags) {
  bool ok = true;
  for (const std::string& name : flags.names()) {
    const bool known =
        std::any_of(std::begin(kFlagSpecs), std::end(kFlagSpecs),
                    [&](const FlagSpec& spec) { return name == spec.name; });
    if (!known) {
      std::cerr << "unknown flag '--" << name << "' (see --help)\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace firefly;
  const util::Flags flags(argc, argv);

  if (flags.has("help")) {
    print_help(flags);
    return 0;
  }
  if (!reject_unknown_flags(flags)) return 2;

  core::ScenarioConfig base;
  base.n = static_cast<std::size_t>(flags.get("n", std::int64_t{50}));
  base.seed = static_cast<std::uint64_t>(flags.get("seed", std::int64_t{1}));
  base.area_policy = flags.get("area", std::string("scaled")) == "fixed"
                         ? core::AreaPolicy::kFixed
                         : core::AreaPolicy::kDensityScaled;
  base.protocol.prc.epsilon = flags.get("epsilon", 0.05);
  base.protocol.period_slots =
      static_cast<std::uint32_t>(flags.get("period", std::int64_t{100}));
  base.protocol.max_periods =
      static_cast<std::uint32_t>(flags.get("periods", std::int64_t{400}));
  base.protocol.mobility_speed_mps = flags.get("mobility", 0.0);
  const std::string scheduler_arg = flags.get("scheduler", std::string("wheel"));
  if (const auto kind = sim::scheduler_from_name(scheduler_arg); kind.has_value()) {
    base.protocol.scheduler = *kind;
  } else {
    std::cerr << "unknown --scheduler '" << scheduler_arg << "' (expected: wheel, heap)\n";
    return 2;
  }
  const std::string core_arg = flags.get("device-core", std::string("soa"));
  if (core_arg == "soa") {
    base.protocol.device_core = core::DeviceCore::kSoa;
  } else if (core_arg == "struct") {
    base.protocol.device_core = core::DeviceCore::kStruct;
  } else {
    std::cerr << "unknown --device-core '" << core_arg << "' (expected: soa, struct)\n";
    return 2;
  }
  fault::FaultPlan& faults = base.protocol.faults;
  faults.churn_rate_per_min = flags.get("churn", flags.get("churn-rate", 0.0));
  faults.mean_downtime_ms = flags.get("downtime", faults.mean_downtime_ms);
  faults.churn_stop_ms = flags.get("churn-stop", faults.churn_stop_ms);
  faults.drift_max_ppm = flags.get("drift", 0.0);
  faults.drop_probability = flags.get("drop", 0.0);
  faults.fade_rate_per_min = flags.get("fade-rate", 0.0);
  faults.fade_mean_duration_ms = flags.get("fade-ms", faults.fade_mean_duration_ms);
  faults.fade_depth_db = flags.get("fade-depth", faults.fade_depth_db);
  const auto trials = static_cast<std::size_t>(flags.get("trials", std::int64_t{1}));

  // --- observability wiring (all optional, all off by default) ---
  const std::string trace_chrome = flags.get("trace-chrome", std::string());
  const std::string metrics_out = flags.get("metrics-out", std::string());
  const std::string trace_csv = flags.get("trace-csv", std::string());
  const auto trace_capacity =
      static_cast<std::size_t>(flags.get("trace-capacity", std::int64_t{0}));
  const bool telemetry_on =
      flags.has("telemetry") || !trace_chrome.empty() || !metrics_out.empty();

  obs::Telemetry telemetry;  // one context across every trial of this invocation
  obs::SpanSink spans;
  core::TraceSink trace;
  core::RunHooks hooks;
  if (telemetry_on) {
    hooks.telemetry = &telemetry;
    if (!trace_chrome.empty()) telemetry.attach_spans(&spans);
  }
  if (!trace_csv.empty()) {
    trace.set_capacity(trace_capacity);
    if (telemetry_on) trace.set_drop_counter(&telemetry.registry().counter("trace.dropped"));
    hooks.trace = &trace;
  }
  std::ofstream metrics_ofs;
  if (!metrics_out.empty()) {
    metrics_ofs.open(metrics_out, std::ios::binary | std::ios::trunc);
    if (!metrics_ofs) {
      std::cerr << "cannot open --metrics-out '" << metrics_out << "'\n";
      return 2;
    }
  }

  // --protocol resolves through the registry: any registered name runs, the
  // "both"/"all" multi-run shorthands expand here, and anything else is an
  // error listing what IS registered — a typo must not silently run the
  // default pair.
  const proto::Registry& registry = proto::Registry::instance();
  const std::string protocol_arg = flags.get("protocol", std::string("both"));
  std::vector<core::Protocol> protocols;
  if (protocol_arg == "both") {
    protocols = {core::Protocol::kFst, core::Protocol::kSt};
  } else if (protocol_arg == "all") {
    for (const std::string& name : registry.names()) {
      protocols.push_back(registry.find(name)->id);
    }
  } else if (const proto::ProtocolInfo* info = registry.find(protocol_arg)) {
    protocols = {info->id};
  } else {
    std::cerr << "unknown --protocol '" << protocol_arg << "' (registered:";
    for (const std::string& name : registry.names()) std::cerr << ' ' << name;
    std::cerr << "; shorthands: both, all)\n";
    return 2;
  }

  // Shared tail: telemetry summary, metrics JSONL trailer, trace exports.
  // Used by both the trials path and the service-soak path.
  const auto finish_observability = [&]() -> int {
    if (flags.has("telemetry")) {
      util::Table summary("telemetry (all trials of this invocation)");
      summary.set_headers({"metric", "count", "mean", "p50", "p90", "p99", "max"});
      for (const auto& [name, c] : telemetry.registry().counters()) {
        summary.add_row({name, util::Table::num(static_cast<std::size_t>(c.value())), "-",
                         "-", "-", "-", "-"});
      }
      for (const auto& [name, h] : telemetry.registry().histograms()) {
        summary.add_row({name, util::Table::num(static_cast<std::size_t>(h.count())),
                         util::Table::num(h.mean(), 2), util::Table::num(h.quantile(0.5), 2),
                         util::Table::num(h.quantile(0.9), 2),
                         util::Table::num(h.quantile(0.99), 2),
                         util::Table::num(h.max(), 2)});
      }
      summary.print(std::cout);
    }
    if (metrics_ofs.is_open()) {
      obs::JsonWriter w(metrics_ofs);
      w.begin_object();
      w.key("telemetry");
      telemetry.registry().write_json(w);
      // Loss visibility: a long soak that overwrote milestone-trace events
      // or rotated histogram reservoirs must say so in the machine-readable
      // output, not just on stdout.
      w.field("trace_events", static_cast<std::uint64_t>(trace.events().size()));
      w.field("trace_dropped", trace.dropped());
      w.key("histogram_samples");
      w.begin_object();
      for (const auto& [name, h] : telemetry.registry().histograms()) {
        w.field(name, static_cast<std::uint64_t>(h.count()));
      }
      w.end_object();
      w.end_object();
      metrics_ofs << '\n';
      std::cout << "(metrics JSONL written to " << metrics_out << ")\n";
    }
    if (!trace_chrome.empty()) {
      if (spans.write_chrome_trace(trace_chrome)) {
        std::cout << "(Chrome trace written to " << trace_chrome << " — load in "
                  << "chrome://tracing or https://ui.perfetto.dev; " << spans.size()
                  << " spans, " << spans.dropped() << " dropped)\n";
      } else {
        std::cerr << "cannot open --trace-chrome '" << trace_chrome << "'\n";
        return 2;
      }
    }
    if (!trace_csv.empty()) {
      trace.write_csv(trace_csv);
      std::cout << "(milestone trace written to " << trace_csv << "; "
                << trace.events().size() << " events buffered, " << trace.dropped()
                << " overwritten)\n";
    }
    return 0;
  };

  // --- long-lived service mode: one open-ended soak, not a trial loop ---
  if (flags.has("service")) {
    core::ServiceConfig service;
    service.duration_slots = flags.get("duration-slots", service.duration_slots);
    service.window_slots = flags.get("window-slots", service.window_slots);
    service.snapshot_every_slots =
        flags.get("snapshot-every", service.snapshot_every_slots);
    service.dedup_clear_periods = static_cast<std::uint32_t>(flags.get(
        "dedup-clear-periods", static_cast<std::int64_t>(service.dedup_clear_periods)));
    service.relabel_cap_per_period = static_cast<std::uint32_t>(flags.get(
        "relabel-cap", static_cast<std::int64_t>(service.relabel_cap_per_period)));
    const core::Protocol protocol =
        protocols.size() == 1 ? protocols.front() : core::Protocol::kSt;

    const std::string soak_out = flags.get("soak-out", std::string());
    std::ofstream soak_ofs;
    if (!soak_out.empty()) {
      soak_ofs.open(soak_out, std::ios::binary | std::ios::trunc);
      if (!soak_ofs) {
        std::cerr << "cannot open --soak-out '" << soak_out << "'\n";
        return 2;
      }
      obs::JsonWriter w(soak_ofs);
      core::write_soak_header_json(w, protocol, base, service);
      soak_ofs << '\n';
    }
    sim::SoakRecorder recorder;
    if (soak_ofs.is_open()) {
      recorder.set_consumer([&soak_ofs](const sim::SoakWindow& win) {
        obs::JsonWriter w(soak_ofs);
        core::write_soak_window_json(w, win);
        soak_ofs << '\n';
      });
    }

    const core::ServiceReport report =
        core::run_service_trial(protocol, base, service, hooks, &recorder);
    if (!report.ok()) {
      std::cerr << "service mode rejected: " << report.error << '\n';
      return 2;
    }
    if (soak_ofs.is_open()) {
      obs::JsonWriter w(soak_ofs);
      core::write_soak_summary_json(w, report);
      soak_ofs << '\n';
      std::cout << "(soak JSONL written to " << soak_out << ")\n";
    }
    if (metrics_ofs.is_open()) {
      obs::JsonWriter w(metrics_ofs);
      w.begin_object();
      w.field("protocol", core::to_string(protocol));
      w.field("service", true);
      w.field("seed", base.seed);
      w.key("run");
      core::write_run_metrics_json(w, report.metrics);
      w.end_object();
      metrics_ofs << '\n';
    }

    util::Table soak_table("service soak: n=" + std::to_string(base.n) + ", " +
                           std::to_string(service.duration_slots) + " slots");
    soak_table.set_headers({"protocol", "windows", "dropped", "snapshots", "crashes",
                            "recoveries", "sync uptime", "relabels", "suppressed",
                            "events", "arena hwm"});
    soak_table.add_row(
        {core::to_string(protocol),
         util::Table::num(static_cast<std::size_t>(report.windows)),
         util::Table::num(static_cast<std::size_t>(report.windows_dropped)),
         util::Table::num(static_cast<std::size_t>(report.snapshots)),
         util::Table::num(static_cast<std::size_t>(report.metrics.crashes)),
         util::Table::num(static_cast<std::size_t>(report.metrics.recoveries)),
         util::Table::num(report.metrics.sync_uptime, 3),
         util::Table::num(static_cast<std::size_t>(report.relabels)),
         util::Table::num(static_cast<std::size_t>(report.relabels_suppressed)),
         util::Table::num(static_cast<std::size_t>(report.metrics.events_processed)),
         util::Table::num(static_cast<std::size_t>(report.arena_high_water))});
    soak_table.print(std::cout);
    return finish_observability();
  }

  util::Table table("firefly-d2d run: n=" + std::to_string(base.n) + ", " +
                    std::to_string(trials) + " trial(s)");
  table.set_headers({"protocol", "converged", "time ms (mean)", "sync ms", "discovery ms",
                     "msgs", "RACH2", "collisions", "energy/dev mJ", "neighbors"});
  util::Table resilience("resilience (fault-injection observables)");
  resilience.set_headers({"protocol", "crashes", "recoveries", "fault drops", "resyncs",
                          "mean resync ms", "sync uptime", "in-sync end", "repair msgs",
                          "alive", "partitioned"});

  for (const core::Protocol protocol : protocols) {
    util::Sample time_ms, sync_ms, disc_ms, msgs, rach2, collisions, energy, neighbors;
    util::Sample crashes, recoveries, drops, resyncs, resync_ms, uptime, repair, alive;
    std::size_t converged = 0, in_sync = 0, partitioned = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      core::ScenarioConfig config = base;
      config.seed = base.seed + t;
      const core::RunMetrics m = core::run_trial(protocol, config, hooks);
      if (metrics_ofs.is_open()) {
        obs::JsonWriter w(metrics_ofs);
        w.begin_object();
        w.field("protocol", core::to_string(protocol));
        w.field("trial", static_cast<std::uint64_t>(t));
        w.field("seed", config.seed);
        w.key("run");
        core::write_run_metrics_json(w, m);
        w.end_object();
        metrics_ofs << '\n';
      }
      if (m.converged) {
        ++converged;
        time_ms.add(m.convergence_ms);
        sync_ms.add(m.sync_ms);
        disc_ms.add(m.discovery_ms);
      }
      msgs.add(static_cast<double>(m.total_messages()));
      rach2.add(static_cast<double>(m.rach2_messages));
      collisions.add(static_cast<double>(m.collisions));
      energy.add(m.mean_device_energy_mj);
      neighbors.add(m.mean_neighbors_discovered);
      crashes.add(static_cast<double>(m.crashes));
      recoveries.add(static_cast<double>(m.recoveries));
      drops.add(static_cast<double>(m.fault_drops));
      resyncs.add(static_cast<double>(m.resyncs));
      resync_ms.add(m.mean_resync_ms);
      uptime.add(m.sync_uptime);
      repair.add(static_cast<double>(m.repair_messages));
      alive.add(static_cast<double>(m.alive_at_end));
      if (m.in_sync_at_end) ++in_sync;
      if (m.partitioned) ++partitioned;
    }
    table.add_row({core::to_string(protocol),
                   util::Table::num(converged) + "/" + util::Table::num(trials),
                   util::Table::num(time_ms.count() ? time_ms.mean() : 0.0, 1),
                   util::Table::num(sync_ms.count() ? sync_ms.mean() : 0.0, 1),
                   util::Table::num(disc_ms.count() ? disc_ms.mean() : 0.0, 1),
                   util::Table::num(msgs.mean(), 0), util::Table::num(rach2.mean(), 0),
                   util::Table::num(collisions.mean(), 0),
                   util::Table::num(energy.mean(), 1),
                   util::Table::num(neighbors.mean(), 1)});
    resilience.add_row({core::to_string(protocol), util::Table::num(crashes.mean(), 1),
                        util::Table::num(recoveries.mean(), 1),
                        util::Table::num(drops.mean(), 0),
                        util::Table::num(resyncs.mean(), 1),
                        util::Table::num(resync_ms.mean(), 0),
                        util::Table::num(uptime.mean(), 3),
                        util::Table::num(in_sync) + "/" + util::Table::num(trials),
                        util::Table::num(repair.mean(), 0),
                        util::Table::num(alive.mean(), 1),
                        util::Table::num(partitioned) + "/" + util::Table::num(trials)});
  }
  table.print(std::cout);
  if (base.protocol.faults.enabled()) resilience.print(std::cout);

  const std::string csv = flags.get("csv", std::string());
  if (!csv.empty()) {
    table.write_csv(csv);
    std::cout << "(results appended to " << csv << ")\n";
  }

  // --- observability output ---
  return finish_observability();
}
