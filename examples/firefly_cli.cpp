// firefly_cli.cpp — scriptable front-end for arbitrary scenario runs.
//
//   firefly_cli --protocol st --n 400 --seed 3 --trials 5
//   firefly_cli --protocol both --n 200 --area fixed --epsilon 0.1
//   firefly_cli --protocol st --n 60 --mobility 1.5 --periods 100
//
// Flags (defaults in brackets):
//   --protocol <name>|both|all [both]  any registered protocol (fst, st,
//                                   birthday, desync — see --help for the
//                                   live list); unknown names are an error
//   --n <devices> [50]
//   --seed <u64> [1]                --trials <count> [1]
//   --area scaled|fixed [scaled]    --epsilon <PRC ε> [0.05]
//   --period <slots> [100]          --periods <max periods> [400]
//   --mobility <m/s> [0]            --csv <path>  (append result rows)
//   --scheduler wheel|heap [wheel]  event scheduler (identical results;
//                                   heap is the A/B reference baseline)
//
// Fault injection (any non-zero knob turns the subsystem on; the run then
// observes through the faults instead of stopping at convergence):
//   --churn <crashes/min> [0]       --downtime <mean ms> [2000]
//   --churn-stop <ms> [-1 = never]  --drift <max ppm> [0]
//   --drop <probability> [0]        --fade-rate <fades/min> [0]
//   --fade-ms <mean ms> [500]       --fade-depth <dB> [60]
//   (--churn-rate is an alias for --churn, matching the service-mode docs)
//
// Service mode (long-lived soak; see DESIGN.md "Service mode"):
//   --service                 run one open-ended soak instead of trials: the
//                             run never stops at convergence, churn regenerates
//                             forever, telemetry streams one window at a time
//   --duration-slots <n>      soak horizon in 1 ms slots [1000000]
//   --window-slots <n>        telemetry window length [1000]
//   --snapshot-every <slots>  rollback-snapshot cadence [0 = never]
//   --soak-out <path>         stream firefly-soak-v1 JSONL (header line, one
//                             line per window, summary line)
//
// Observability (see DESIGN.md "Observability"):
//   --telemetry               print a metric-registry summary after the runs
//   --trace-chrome <path>     write a Chrome trace-event file of the
//                             instrumented spans (load in ui.perfetto.dev)
//   --metrics-out <path>      JSONL: one run-metrics record per trial plus a
//                             final registry snapshot
//   --trace-csv <path>        protocol milestone trace (fires, merges, ...)
//   --trace-capacity <n>      ring-buffer the milestone trace to the most
//                             recent n events [0 = unlimited]
#include <fstream>
#include <iostream>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "core/service_mode.hpp"
#include "core/trace.hpp"
#include "obs/span.hpp"
#include "proto/registry.hpp"
#include "obs/telemetry.hpp"
#include "sim/scheduler.hpp"
#include "sim/soak.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace firefly;
  const util::Flags flags(argc, argv);

  if (flags.has("help")) {
    std::cout << "usage: " << flags.program()
              << " [--protocol NAME|both|all] [--n N] [--seed S] [--trials T]\n"
                 "       [--area scaled|fixed] [--epsilon E] [--period SLOTS]\n"
                 "       [--periods MAX] [--mobility MPS] [--csv PATH] [--scheduler wheel|heap]\n"
                 "       [--churn PER_MIN] [--downtime MS] [--churn-stop MS] [--drift PPM]\n"
                 "       [--drop P] [--fade-rate PER_MIN] [--fade-ms MS] [--fade-depth DB]\n"
                 "       [--telemetry] [--trace-chrome PATH] [--metrics-out PATH]\n"
                 "       [--trace-csv PATH] [--trace-capacity N]\n"
                 "       [--service] [--duration-slots N] [--window-slots N]\n"
                 "       [--snapshot-every SLOTS] [--soak-out PATH]\n"
                 "protocols (from proto::Registry):\n";
    for (const std::string& name : proto::Registry::instance().names()) {
      const proto::ProtocolInfo* info = proto::Registry::instance().find(name);
      std::cout << "  " << name << " — " << info->summary << '\n';
    }
    return 0;
  }

  core::ScenarioConfig base;
  base.n = static_cast<std::size_t>(flags.get("n", std::int64_t{50}));
  base.seed = static_cast<std::uint64_t>(flags.get("seed", std::int64_t{1}));
  base.area_policy = flags.get("area", std::string("scaled")) == "fixed"
                         ? core::AreaPolicy::kFixed
                         : core::AreaPolicy::kDensityScaled;
  base.protocol.prc.epsilon = flags.get("epsilon", 0.05);
  base.protocol.period_slots =
      static_cast<std::uint32_t>(flags.get("period", std::int64_t{100}));
  base.protocol.max_periods =
      static_cast<std::uint32_t>(flags.get("periods", std::int64_t{400}));
  base.protocol.mobility_speed_mps = flags.get("mobility", 0.0);
  const std::string scheduler_arg = flags.get("scheduler", std::string("wheel"));
  if (const auto kind = sim::scheduler_from_name(scheduler_arg); kind.has_value()) {
    base.protocol.scheduler = *kind;
  } else {
    std::cerr << "unknown --scheduler '" << scheduler_arg << "' (expected: wheel, heap)\n";
    return 2;
  }
  fault::FaultPlan& faults = base.protocol.faults;
  faults.churn_rate_per_min = flags.get("churn", flags.get("churn-rate", 0.0));
  faults.mean_downtime_ms = flags.get("downtime", faults.mean_downtime_ms);
  faults.churn_stop_ms = flags.get("churn-stop", faults.churn_stop_ms);
  faults.drift_max_ppm = flags.get("drift", 0.0);
  faults.drop_probability = flags.get("drop", 0.0);
  faults.fade_rate_per_min = flags.get("fade-rate", 0.0);
  faults.fade_mean_duration_ms = flags.get("fade-ms", faults.fade_mean_duration_ms);
  faults.fade_depth_db = flags.get("fade-depth", faults.fade_depth_db);
  const auto trials = static_cast<std::size_t>(flags.get("trials", std::int64_t{1}));

  // --- observability wiring (all optional, all off by default) ---
  const std::string trace_chrome = flags.get("trace-chrome", std::string());
  const std::string metrics_out = flags.get("metrics-out", std::string());
  const std::string trace_csv = flags.get("trace-csv", std::string());
  const auto trace_capacity =
      static_cast<std::size_t>(flags.get("trace-capacity", std::int64_t{0}));
  const bool telemetry_on =
      flags.has("telemetry") || !trace_chrome.empty() || !metrics_out.empty();

  obs::Telemetry telemetry;  // one context across every trial of this invocation
  obs::SpanSink spans;
  core::TraceSink trace;
  core::RunHooks hooks;
  if (telemetry_on) {
    hooks.telemetry = &telemetry;
    if (!trace_chrome.empty()) telemetry.attach_spans(&spans);
  }
  if (!trace_csv.empty()) {
    trace.set_capacity(trace_capacity);
    if (telemetry_on) trace.set_drop_counter(&telemetry.registry().counter("trace.dropped"));
    hooks.trace = &trace;
  }
  std::ofstream metrics_ofs;
  if (!metrics_out.empty()) {
    metrics_ofs.open(metrics_out, std::ios::binary | std::ios::trunc);
    if (!metrics_ofs) {
      std::cerr << "cannot open --metrics-out '" << metrics_out << "'\n";
      return 2;
    }
  }

  // --protocol resolves through the registry: any registered name runs, the
  // "both"/"all" multi-run shorthands expand here, and anything else is an
  // error listing what IS registered — a typo must not silently run the
  // default pair.
  const proto::Registry& registry = proto::Registry::instance();
  const std::string protocol_arg = flags.get("protocol", std::string("both"));
  std::vector<core::Protocol> protocols;
  if (protocol_arg == "both") {
    protocols = {core::Protocol::kFst, core::Protocol::kSt};
  } else if (protocol_arg == "all") {
    for (const std::string& name : registry.names()) {
      protocols.push_back(registry.find(name)->id);
    }
  } else if (const proto::ProtocolInfo* info = registry.find(protocol_arg)) {
    protocols = {info->id};
  } else {
    std::cerr << "unknown --protocol '" << protocol_arg << "' (registered:";
    for (const std::string& name : registry.names()) std::cerr << ' ' << name;
    std::cerr << "; shorthands: both, all)\n";
    return 2;
  }

  // Shared tail: telemetry summary, metrics JSONL trailer, trace exports.
  // Used by both the trials path and the service-soak path.
  const auto finish_observability = [&]() -> int {
    if (flags.has("telemetry")) {
      util::Table summary("telemetry (all trials of this invocation)");
      summary.set_headers({"metric", "count", "mean", "p50", "p90", "p99", "max"});
      for (const auto& [name, c] : telemetry.registry().counters()) {
        summary.add_row({name, util::Table::num(static_cast<std::size_t>(c.value())), "-",
                         "-", "-", "-", "-"});
      }
      for (const auto& [name, h] : telemetry.registry().histograms()) {
        summary.add_row({name, util::Table::num(static_cast<std::size_t>(h.count())),
                         util::Table::num(h.mean(), 2), util::Table::num(h.quantile(0.5), 2),
                         util::Table::num(h.quantile(0.9), 2),
                         util::Table::num(h.quantile(0.99), 2),
                         util::Table::num(h.max(), 2)});
      }
      summary.print(std::cout);
    }
    if (metrics_ofs.is_open()) {
      obs::JsonWriter w(metrics_ofs);
      w.begin_object();
      w.key("telemetry");
      telemetry.registry().write_json(w);
      // Loss visibility: a long soak that overwrote milestone-trace events
      // or rotated histogram reservoirs must say so in the machine-readable
      // output, not just on stdout.
      w.field("trace_events", static_cast<std::uint64_t>(trace.events().size()));
      w.field("trace_dropped", trace.dropped());
      w.key("histogram_samples");
      w.begin_object();
      for (const auto& [name, h] : telemetry.registry().histograms()) {
        w.field(name, static_cast<std::uint64_t>(h.count()));
      }
      w.end_object();
      w.end_object();
      metrics_ofs << '\n';
      std::cout << "(metrics JSONL written to " << metrics_out << ")\n";
    }
    if (!trace_chrome.empty()) {
      if (spans.write_chrome_trace(trace_chrome)) {
        std::cout << "(Chrome trace written to " << trace_chrome << " — load in "
                  << "chrome://tracing or https://ui.perfetto.dev; " << spans.size()
                  << " spans, " << spans.dropped() << " dropped)\n";
      } else {
        std::cerr << "cannot open --trace-chrome '" << trace_chrome << "'\n";
        return 2;
      }
    }
    if (!trace_csv.empty()) {
      trace.write_csv(trace_csv);
      std::cout << "(milestone trace written to " << trace_csv << "; "
                << trace.events().size() << " events buffered, " << trace.dropped()
                << " overwritten)\n";
    }
    return 0;
  };

  // --- long-lived service mode: one open-ended soak, not a trial loop ---
  if (flags.has("service")) {
    core::ServiceConfig service;
    service.duration_slots = flags.get("duration-slots", service.duration_slots);
    service.window_slots = flags.get("window-slots", service.window_slots);
    service.snapshot_every_slots =
        flags.get("snapshot-every", service.snapshot_every_slots);
    service.dedup_clear_periods = static_cast<std::uint32_t>(flags.get(
        "dedup-clear-periods", static_cast<std::int64_t>(service.dedup_clear_periods)));
    service.relabel_cap_per_period = static_cast<std::uint32_t>(flags.get(
        "relabel-cap", static_cast<std::int64_t>(service.relabel_cap_per_period)));
    const core::Protocol protocol =
        protocols.size() == 1 ? protocols.front() : core::Protocol::kSt;

    const std::string soak_out = flags.get("soak-out", std::string());
    std::ofstream soak_ofs;
    if (!soak_out.empty()) {
      soak_ofs.open(soak_out, std::ios::binary | std::ios::trunc);
      if (!soak_ofs) {
        std::cerr << "cannot open --soak-out '" << soak_out << "'\n";
        return 2;
      }
      obs::JsonWriter w(soak_ofs);
      core::write_soak_header_json(w, protocol, base, service);
      soak_ofs << '\n';
    }
    sim::SoakRecorder recorder;
    if (soak_ofs.is_open()) {
      recorder.set_consumer([&soak_ofs](const sim::SoakWindow& win) {
        obs::JsonWriter w(soak_ofs);
        core::write_soak_window_json(w, win);
        soak_ofs << '\n';
      });
    }

    const core::ServiceReport report =
        core::run_service_trial(protocol, base, service, hooks, &recorder);
    if (!report.ok()) {
      std::cerr << "service mode rejected: " << report.error << '\n';
      return 2;
    }
    if (soak_ofs.is_open()) {
      obs::JsonWriter w(soak_ofs);
      core::write_soak_summary_json(w, report);
      soak_ofs << '\n';
      std::cout << "(soak JSONL written to " << soak_out << ")\n";
    }
    if (metrics_ofs.is_open()) {
      obs::JsonWriter w(metrics_ofs);
      w.begin_object();
      w.field("protocol", core::to_string(protocol));
      w.field("service", true);
      w.field("seed", base.seed);
      w.key("run");
      core::write_run_metrics_json(w, report.metrics);
      w.end_object();
      metrics_ofs << '\n';
    }

    util::Table soak_table("service soak: n=" + std::to_string(base.n) + ", " +
                           std::to_string(service.duration_slots) + " slots");
    soak_table.set_headers({"protocol", "windows", "dropped", "snapshots", "crashes",
                            "recoveries", "sync uptime", "relabels", "suppressed",
                            "events", "arena hwm"});
    soak_table.add_row(
        {core::to_string(protocol),
         util::Table::num(static_cast<std::size_t>(report.windows)),
         util::Table::num(static_cast<std::size_t>(report.windows_dropped)),
         util::Table::num(static_cast<std::size_t>(report.snapshots)),
         util::Table::num(static_cast<std::size_t>(report.metrics.crashes)),
         util::Table::num(static_cast<std::size_t>(report.metrics.recoveries)),
         util::Table::num(report.metrics.sync_uptime, 3),
         util::Table::num(static_cast<std::size_t>(report.relabels)),
         util::Table::num(static_cast<std::size_t>(report.relabels_suppressed)),
         util::Table::num(static_cast<std::size_t>(report.metrics.events_processed)),
         util::Table::num(static_cast<std::size_t>(report.arena_high_water))});
    soak_table.print(std::cout);
    return finish_observability();
  }

  util::Table table("firefly-d2d run: n=" + std::to_string(base.n) + ", " +
                    std::to_string(trials) + " trial(s)");
  table.set_headers({"protocol", "converged", "time ms (mean)", "sync ms", "discovery ms",
                     "msgs", "RACH2", "collisions", "energy/dev mJ", "neighbors"});
  util::Table resilience("resilience (fault-injection observables)");
  resilience.set_headers({"protocol", "crashes", "recoveries", "fault drops", "resyncs",
                          "mean resync ms", "sync uptime", "in-sync end", "repair msgs",
                          "alive", "partitioned"});

  for (const core::Protocol protocol : protocols) {
    util::Sample time_ms, sync_ms, disc_ms, msgs, rach2, collisions, energy, neighbors;
    util::Sample crashes, recoveries, drops, resyncs, resync_ms, uptime, repair, alive;
    std::size_t converged = 0, in_sync = 0, partitioned = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      core::ScenarioConfig config = base;
      config.seed = base.seed + t;
      const core::RunMetrics m = core::run_trial(protocol, config, hooks);
      if (metrics_ofs.is_open()) {
        obs::JsonWriter w(metrics_ofs);
        w.begin_object();
        w.field("protocol", core::to_string(protocol));
        w.field("trial", static_cast<std::uint64_t>(t));
        w.field("seed", config.seed);
        w.key("run");
        core::write_run_metrics_json(w, m);
        w.end_object();
        metrics_ofs << '\n';
      }
      if (m.converged) {
        ++converged;
        time_ms.add(m.convergence_ms);
        sync_ms.add(m.sync_ms);
        disc_ms.add(m.discovery_ms);
      }
      msgs.add(static_cast<double>(m.total_messages()));
      rach2.add(static_cast<double>(m.rach2_messages));
      collisions.add(static_cast<double>(m.collisions));
      energy.add(m.mean_device_energy_mj);
      neighbors.add(m.mean_neighbors_discovered);
      crashes.add(static_cast<double>(m.crashes));
      recoveries.add(static_cast<double>(m.recoveries));
      drops.add(static_cast<double>(m.fault_drops));
      resyncs.add(static_cast<double>(m.resyncs));
      resync_ms.add(m.mean_resync_ms);
      uptime.add(m.sync_uptime);
      repair.add(static_cast<double>(m.repair_messages));
      alive.add(static_cast<double>(m.alive_at_end));
      if (m.in_sync_at_end) ++in_sync;
      if (m.partitioned) ++partitioned;
    }
    table.add_row({core::to_string(protocol),
                   util::Table::num(converged) + "/" + util::Table::num(trials),
                   util::Table::num(time_ms.count() ? time_ms.mean() : 0.0, 1),
                   util::Table::num(sync_ms.count() ? sync_ms.mean() : 0.0, 1),
                   util::Table::num(disc_ms.count() ? disc_ms.mean() : 0.0, 1),
                   util::Table::num(msgs.mean(), 0), util::Table::num(rach2.mean(), 0),
                   util::Table::num(collisions.mean(), 0),
                   util::Table::num(energy.mean(), 1),
                   util::Table::num(neighbors.mean(), 1)});
    resilience.add_row({core::to_string(protocol), util::Table::num(crashes.mean(), 1),
                        util::Table::num(recoveries.mean(), 1),
                        util::Table::num(drops.mean(), 0),
                        util::Table::num(resyncs.mean(), 1),
                        util::Table::num(resync_ms.mean(), 0),
                        util::Table::num(uptime.mean(), 3),
                        util::Table::num(in_sync) + "/" + util::Table::num(trials),
                        util::Table::num(repair.mean(), 0),
                        util::Table::num(alive.mean(), 1),
                        util::Table::num(partitioned) + "/" + util::Table::num(trials)});
  }
  table.print(std::cout);
  if (base.protocol.faults.enabled()) resilience.print(std::cout);

  const std::string csv = flags.get("csv", std::string());
  if (!csv.empty()) {
    table.write_csv(csv);
    std::cout << "(results appended to " << csv << ")\n";
  }

  // --- observability output ---
  return finish_observability();
}
