// mobile_network.cpp — discovery and synchronisation under mobility, the
// paper's stated future work ("this proximity discovery concept can be
// extended to more realistic scenarios of D2D LTE-A networks").
//
// Devices walk a random-waypoint pattern at pedestrian speed while the ST
// protocol runs continuously: tree edges to departed neighbours go stale
// and are pruned, orphaned devices restart as singleton fragments and
// re-merge, and the keep-alive sync floods keep the phase aligned through
// the churn.  The example samples the live network once per second and
// prints the sync/fragment/discovery time series.
//
//   ./build/examples/mobile_network [n] [speed_mps] [seconds] [seed]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <set>
#include <vector>

#include "core/scenario.hpp"
#include "proto/st.hpp"
#include "pco/sync_metrics.hpp"
#include "util/table.hpp"

namespace {

using namespace firefly;

class MobileObserver final : public proto::StEngine {
 public:
  using StEngine::StEngine;

  struct Snapshot {
    double t_s;
    std::size_t fragments;
    double firing_spread_slots;
    double mean_fresh_neighbors;
    std::size_t tree_edges;
  };

  void install(util::Table* table) {
    sim_.schedule_periodic(sim::SimTime::seconds(1), sim::SimTime::seconds(1), [this, table] {
      const Snapshot s = snapshot();
      table->add_row({util::Table::num(s.t_s, 0), util::Table::num(s.fragments),
                      util::Table::num(s.firing_spread_slots, 1),
                      util::Table::num(s.mean_fresh_neighbors, 1),
                      util::Table::num(s.tree_edges)});
    });
  }

  [[nodiscard]] Snapshot snapshot() const {
    Snapshot s{};
    s.t_s = sim_.now().as_seconds();
    const std::int64_t slot = sim_.now().us / sim::kLteSlot.us;
    const std::int64_t fresh_horizon = 2 * params().period_slots;
    std::set<std::uint16_t> fragments;
    std::vector<std::int64_t> mods;
    double fresh_sum = 0.0;
    std::size_t edges = 0;
    for (const auto& d : devices()) {
      fragments.insert(d.fragment);
      if (d.last_fire_slot >= 0) mods.push_back(d.last_fire_slot % params().period_slots);
      std::size_t fresh = 0;
      for (const auto& [id, info] : d.neighbors) {
        if (slot - info.last_heard_slot <= fresh_horizon) ++fresh;
      }
      fresh_sum += static_cast<double>(fresh);
      edges += d.tree_neighbors.size();
    }
    s.fragments = fragments.size();
    s.mean_fresh_neighbors = fresh_sum / static_cast<double>(devices().size());
    s.tree_edges = edges / 2;
    std::sort(mods.begin(), mods.end());
    if (mods.size() > 1) {
      const auto period = static_cast<std::int64_t>(params().period_slots);
      std::int64_t max_gap = mods.front() + period - mods.back();
      for (std::size_t i = 1; i < mods.size(); ++i) {
        max_gap = std::max(max_gap, mods[i] - mods[i - 1]);
      }
      s.firing_spread_slots = static_cast<double>(period - max_gap);
    }
    return s;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60;
  const double speed = argc > 2 ? std::strtod(argv[2], nullptr) : 1.5;
  const std::int64_t seconds = argc > 3 ? std::strtoll(argv[3], nullptr, 10) : 20;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 11;

  std::cout << "Mobile D2D network: " << n << " devices at " << speed
            << " m/s random waypoint, " << seconds << " s, seed " << seed << "\n";

  core::ScenarioConfig config;
  config.n = n;
  config.seed = seed;
  config.area_policy = core::AreaPolicy::kFixed;
  config.protocol.mobility_speed_mps = speed;
  config.protocol.stop_on_convergence = false;  // observe the full duration
  config.protocol.max_periods =
      static_cast<std::uint32_t>(seconds * 1000 / config.protocol.period_slots) + 1;

  util::Table table("Live network state (1 s samples)");
  table.set_headers({"t (s)", "fragments", "firing spread (slots)",
                     "fresh neighbors (avg)", "tree edges"});

  auto positions = core::deploy(config);
  MobileObserver engine(std::move(positions), config.protocol, config.radio, config.seed);
  engine.install(&table);
  const core::RunMetrics metrics = engine.run();
  table.print(std::cout);

  const auto final_state = engine.snapshot();
  std::cout << "\nAfter " << seconds << " s of movement: " << final_state.fragments
            << " fragment(s), firing spread " << final_state.firing_spread_slots
            << " slots, " << metrics.total_messages() << " messages total ("
            << metrics.rach2_messages << " on RACH2 incl. repairs)\n"
            << "Tree edges pruned-and-rebuilt continuously; phase alignment is\n"
            << "maintained by the per-period keep-alive floods through the churn.\n";
  return 0;
}
