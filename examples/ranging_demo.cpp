// ranging_demo.cpp — the RSSI ranging model of Section III (eqs. 6–12),
// stand-alone.
//
// One transmitter, one receiver walking outward.  At each true distance the
// receiver estimates range by inverting the Table I path-loss model on the
// received power, under (a) the clean channel, (b) log-normal shadowing,
// (c) shadowing + Rayleigh fast fading with per-slot averaging over a burst
// of proximity signals — which is exactly what the protocols' EWMA of PS
// strength does.
//
//   ./build/examples/ranging_demo [sigma_dB]
#include <cstdlib>
#include <iostream>

#include "phy/channel.hpp"
#include "phy/pathloss.hpp"
#include "phy/rssi.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace firefly;
  using util::Table;
  using namespace util::literals;

  const double sigma = argc > 1 ? std::strtod(argv[1], nullptr) : 10.0;
  std::cout << "RSSI ranging demo (Table I channel, sigma = " << sigma << " dB)\n";

  const auto model = phy::make_paper_model();
  const phy::RssiRanging ranging(model.get(), 23.0_dBm);
  util::Rng rng(42);

  Table table("Distance estimation as the receiver walks away");
  table.set_headers({"true d (m)", "clean est (m)", "shadowed est (m)",
                     "shadow+fade, 1 PS (m)", "shadow+fade, avg of 16 PS (m)"});
  for (const double d : {1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0}) {
    const util::Dbm clean_rx = 23.0_dBm - model->loss(d);

    const double shadow = rng.normal(0.0, sigma);  // frozen per link
    const util::Dbm shadowed_rx = clean_rx - util::Db{shadow};

    // One noisy PS.
    const double one_fade = -10.0 * std::log10(std::max(rng.exponential(1.0), 1e-6));
    const util::Dbm one_ps = shadowed_rx - util::Db{one_fade};

    // EWMA-style averaging across a burst (fading averages out; the
    // shadowing bias of course remains — eq. 11's distortion).
    util::RunningStats burst;
    for (int i = 0; i < 16; ++i) {
      const double fade = -10.0 * std::log10(std::max(rng.exponential(1.0), 1e-6));
      burst.add(shadowed_rx.value - fade);
    }

    table.add_row({Table::num(d, 1), Table::num(ranging.estimate_distance(clean_rx), 1),
                   Table::num(ranging.estimate_distance(shadowed_rx), 1),
                   Table::num(ranging.estimate_distance(one_ps), 1),
                   Table::num(ranging.estimate_distance(util::Dbm{burst.mean()}), 1)});
  }
  table.print(std::cout);

  const auto stats = phy::analytic_ranging_error(sigma, 4.0);
  std::cout << "\nClosed-form error at this sigma (far field, n = 4):\n"
            << "  multiplicative distortion r_est/r_true: mean "
            << Table::num(stats.mean_ratio, 2) << ", sd " << Table::num(stats.stddev_ratio, 2)
            << ", median " << Table::num(stats.median_ratio, 2) << ", p90 "
            << Table::num(stats.p90_ratio, 2) << "\n"
            << "Averaging PSs removes fast fading but NOT shadowing — the residual\n"
            << "bias is the 10^(x/10n) factor of eq. (11), which is why the paper\n"
            << "feeds RSSI *weights* (not absolute positions) to the tree builder.\n";
  return 0;
}
