// quickstart.cpp — the 2-minute tour.
//
// Deploys the paper's Table I scenario (50 devices, 100 m × 100 m, 23 dBm,
// −95 dBm threshold), runs both the FST baseline and the proposed ST
// algorithm on the same seed, and prints what each achieved: convergence
// time, message counts by codec, discovery quality and (for ST) the
// spanning tree it grew.
//
//   ./build/examples/quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace firefly;

  core::ScenarioConfig config;
  config.n = 50;
  config.area_policy = core::AreaPolicy::kFixed;  // the literal Table I box
  config.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::cout << "Firefly-D2D quickstart\n"
            << "  devices: " << config.n << " in " << config.area().width << " m x "
            << config.area().height << " m\n"
            << "  tx power: " << config.radio.tx_power.value << " dBm, threshold: "
            << config.radio.detection_threshold.value << " dBm\n"
            << "  period: " << config.protocol.period_slots << " slots of 1 ms, seed: "
            << config.seed << "\n";

  util::Table table("FST (baseline) vs ST (proposed), one trial");
  table.set_headers({"protocol", "converged", "time (ms)", "RACH1 msgs", "RACH2 msgs",
                     "collisions", "avg neighbors", "rng err (mean)"});
  for (const core::Protocol protocol : {core::Protocol::kFst, core::Protocol::kSt}) {
    const core::RunMetrics m = core::run_trial(protocol, config);
    table.add_row({core::to_string(protocol), m.converged ? "yes" : "NO",
                   util::Table::num(m.convergence_ms, 0),
                   util::Table::num(static_cast<std::size_t>(m.rach1_messages)),
                   util::Table::num(static_cast<std::size_t>(m.rach2_messages)),
                   util::Table::num(static_cast<std::size_t>(m.collisions)),
                   util::Table::num(m.mean_neighbors_discovered, 1),
                   util::Table::num(m.ranging_mean_abs_rel_error, 3)});
    if (protocol == core::Protocol::kSt) {
      std::cout << "\nST spanning structure: " << m.final_fragments
                << " fragment(s), " << m.tree_edges << " tree edges\n";
    }
  }
  table.print(std::cout);
  return 0;
}
