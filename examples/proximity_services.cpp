// proximity_services.cpp — ProSe-style service discovery with the paper's
// two-codec scheme.
//
// The paper's motivation: D2D proximity services need *simultaneous*
// neighbour discovery and application-level (service-interest) discovery.
// This example runs the proposed ST protocol on a Table I network where
// devices carry one of several service interests (think: gaming lobby,
// content share, push advertising, public safety), then reports per-service
// peer groups, how long discovery+sync took, and what flowed over which
// RACH codec.
//
//   ./build/examples/proximity_services [n] [seed]
#include <cstdlib>
#include <iostream>
#include <map>
#include <vector>

#include "core/scenario.hpp"
#include "proto/st.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace firefly;
  using util::Table;

  core::ScenarioConfig config;
  config.n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2015;
  config.area_policy = core::AreaPolicy::kDensityScaled;
  config.protocol.service_count = 4;

  static const char* kServiceNames[] = {"gaming-lobby", "content-share",
                                        "push-advert", "public-safety"};

  std::cout << "Proximity services demo: " << config.n
            << " devices, 4 service interests, seed " << config.seed << "\n";

  auto positions = core::deploy(config);
  proto::StEngine engine(std::move(positions), config.protocol, config.radio, config.seed);
  const core::RunMetrics metrics = engine.run();

  std::cout << "\nconverged: " << (metrics.converged ? "yes" : "NO") << " at "
            << metrics.convergence_ms << " ms"
            << " (sync " << metrics.sync_ms << " ms, discovery " << metrics.discovery_ms
            << " ms)\n"
            << "RACH1 (keep-alive/discovery): " << metrics.rach1_messages
            << " msgs, RACH2 (tree control): " << metrics.rach2_messages << " msgs\n";

  // Per-service population and discovered peer counts.
  std::map<std::uint16_t, std::size_t> population;
  std::map<std::uint16_t, double> peers_found;
  for (const auto& device : engine.devices()) {
    ++population[device.service];
    std::size_t same = 0;
    for (const auto& [id, info] : device.neighbors) {
      if (info.service == device.service) ++same;
    }
    peers_found[device.service] += static_cast<double>(same);
  }

  Table table("Service-interest groups discovered in proximity");
  table.set_headers({"service", "devices", "avg peers discovered"});
  for (const auto& [service, count] : population) {
    table.add_row({kServiceNames[service % 4], Table::num(count),
                   Table::num(peers_found[service] / static_cast<double>(count), 1)});
  }
  table.print(std::cout);

  // Show one device's view: its service peers ranked by PS strength — the
  // list a ProSe application would hand to the user.
  const auto& device = engine.devices().front();
  Table view("Device 0's ranked service peers (service: " +
             std::string(kServiceNames[device.service % 4]) + ")");
  view.set_headers({"peer", "PS strength (dBm)", "est. distance (m)", "true distance (m)"});
  std::vector<std::pair<double, std::uint32_t>> ranked;
  for (const auto& [id, info] : device.neighbors) {
    if (info.service == device.service) ranked.emplace_back(info.weight_dbm, id);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (std::size_t i = 0; i < std::min<std::size_t>(ranked.size(), 8); ++i) {
    const auto& info = device.neighbors.at(ranked[i].second);
    const double est_distance_m =
        engine.ranging().estimate_distance(firefly::util::Dbm{info.weight_dbm});
    view.add_row({"UE" + std::to_string(ranked[i].second),
                  Table::num(info.weight_dbm, 1), Table::num(est_distance_m, 1),
                  Table::num(geo::distance(device.position,
                                           engine.devices()[ranked[i].second].position),
                             1)});
  }
  view.print(std::cout);
  return metrics.converged ? 0 : 1;
}
