// stadium_offload.cpp — dense-crowd traffic offload, the introduction's
// motivating scenario.
//
// A stadium section: hundreds of devices packed into hotspots (clustered
// deployment), all wanting the same replay clip.  With D2D, devices that
// already have the content serve nearby devices directly, and only cluster
// "seeds" pull from the base station.  This example runs the ST protocol to
// discover + synchronise the crowd, then computes how much base-station
// traffic the discovered proximity graph could absorb: every device that
// found at least one content-holding neighbour within D2D range is offloaded.
//
//   ./build/examples/stadium_offload [n] [seed]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/scenario.hpp"
#include "proto/st.hpp"
#include "geo/deployment.hpp"
#include "phy/link.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace firefly;
  using util::Table;

  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  std::cout << "Stadium offload demo: " << n
            << " devices in 6 seating-block hotspots (100 m x 100 m), seed " << seed
            << "\n";

  // Clustered crowd instead of uniform placement.
  util::RngFactory factory(seed);
  util::Rng deploy_rng = factory.make("stadium.deploy");
  auto positions = geo::deploy_clustered(n, 6, 6.0, geo::kPaperArea, deploy_rng);

  core::ScenarioConfig config;  // Table I radio, default protocol knobs
  config.n = n;
  config.seed = seed;
  proto::StEngine engine(positions, config.protocol, config.radio, seed);
  const core::RunMetrics metrics = engine.run();

  std::cout << "\nconverged: " << (metrics.converged ? "yes" : "NO") << " at "
            << metrics.convergence_ms << " ms, " << metrics.total_messages()
            << " control messages, " << metrics.final_fragments << " fragment(s)\n";

  // 10% of devices already cached the clip (they watched it live).
  util::Rng content_rng = factory.make("stadium.content");
  std::vector<bool> has_content(n, false);
  for (std::size_t i = 0; i < n; ++i) has_content[i] = content_rng.bernoulli(0.10);

  std::size_t seeds = 0, offloaded = 0, cellular = 0;
  util::RunningStats donors;
  util::RunningStats d2d_rate;  // ergodic Mbit/s on the best donor link
  for (const auto& device : engine.devices()) {
    if (has_content[device.id]) {
      ++seeds;
      continue;
    }
    std::size_t candidate_donors = 0;
    double best_weight = -1e300;
    for (const auto& [id, info] : device.neighbors) {
      if (!has_content[id]) continue;
      ++candidate_donors;
      best_weight = std::max(best_weight, info.weight_dbm);
    }
    donors.add(static_cast<double>(candidate_donors));
    if (candidate_donors > 0) {
      ++offloaded;
      d2d_rate.add(phy::rayleigh_ergodic_rate_mbps(util::Dbm{best_weight},
                                                   config.radio.noise_floor,
                                                   phy::kSidelinkBandwidthHz));
    } else {
      ++cellular;
    }
  }

  Table table("Offload outcome (clip = 40 MB, one per device)");
  table.set_headers({"path", "devices", "traffic (GB)"});
  const double clip_gb = 40.0 / 1024.0;
  table.add_row({"already cached (seeds)", Table::num(seeds), "0.00"});
  table.add_row({"served via D2D", Table::num(offloaded), Table::num(0.0, 2)});
  table.add_row({"must use cellular", Table::num(cellular),
                 Table::num(static_cast<double>(cellular) * clip_gb, 2)});
  table.add_row({"cellular WITHOUT D2D", Table::num(n - seeds),
                 Table::num(static_cast<double>(n - seeds) * clip_gb, 2)});
  table.print(std::cout);

  const double saved = 1.0 - static_cast<double>(cellular) /
                                 std::max<double>(1.0, static_cast<double>(n - seeds));
  std::cout << "\nBase-station traffic avoided: " << Table::num(saved * 100.0, 1)
            << "% (avg " << Table::num(donors.mean(), 1)
            << " content-holding neighbours discovered per device)\n"
            << "Best-donor D2D link quality (10 MHz sidelink, Rayleigh ergodic): "
            << Table::num(d2d_rate.mean(), 1) << " Mbit/s avg, worst "
            << Table::num(d2d_rate.min(), 1) << " Mbit/s -> the 40 MB clip moves in "
            << Table::num(40.0 * 8.0 / std::max(1.0, d2d_rate.mean()), 1) << " s on average.\n"
            << "Slot-synchronised D2D links make the direct transfers schedulable: "
            << "firing spread stabilised within "
            << config.protocol.tolerance_slots << " slot(s).\n";
  return metrics.converged ? 0 : 1;
}
