file(REMOVE_RECURSE
  "CMakeFiles/test_shadowing.dir/test_shadowing.cpp.o"
  "CMakeFiles/test_shadowing.dir/test_shadowing.cpp.o.d"
  "test_shadowing"
  "test_shadowing.pdb"
  "test_shadowing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shadowing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
