# Empty dependencies file for test_shadowing.
# This may be replaced when dependencies are built.
