file(REMOVE_RECURSE
  "CMakeFiles/test_service_affinity.dir/test_service_affinity.cpp.o"
  "CMakeFiles/test_service_affinity.dir/test_service_affinity.cpp.o.d"
  "test_service_affinity"
  "test_service_affinity.pdb"
  "test_service_affinity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
