# Empty dependencies file for test_prc.
# This may be replaced when dependencies are built.
