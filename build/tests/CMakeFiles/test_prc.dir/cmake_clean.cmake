file(REMOVE_RECURSE
  "CMakeFiles/test_prc.dir/test_prc.cpp.o"
  "CMakeFiles/test_prc.dir/test_prc.cpp.o.d"
  "test_prc"
  "test_prc.pdb"
  "test_prc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
