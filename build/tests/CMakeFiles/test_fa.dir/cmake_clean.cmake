file(REMOVE_RECURSE
  "CMakeFiles/test_fa.dir/test_fa.cpp.o"
  "CMakeFiles/test_fa.dir/test_fa.cpp.o.d"
  "test_fa"
  "test_fa.pdb"
  "test_fa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
