# Empty dependencies file for test_fa.
# This may be replaced when dependencies are built.
