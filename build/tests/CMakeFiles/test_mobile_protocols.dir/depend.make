# Empty dependencies file for test_mobile_protocols.
# This may be replaced when dependencies are built.
