file(REMOVE_RECURSE
  "CMakeFiles/test_mobile_protocols.dir/test_mobile_protocols.cpp.o"
  "CMakeFiles/test_mobile_protocols.dir/test_mobile_protocols.cpp.o.d"
  "test_mobile_protocols"
  "test_mobile_protocols.pdb"
  "test_mobile_protocols[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mobile_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
