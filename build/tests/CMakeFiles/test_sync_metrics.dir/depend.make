# Empty dependencies file for test_sync_metrics.
# This may be replaced when dependencies are built.
