file(REMOVE_RECURSE
  "CMakeFiles/test_sync_metrics.dir/test_sync_metrics.cpp.o"
  "CMakeFiles/test_sync_metrics.dir/test_sync_metrics.cpp.o.d"
  "test_sync_metrics"
  "test_sync_metrics.pdb"
  "test_sync_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
