# Empty dependencies file for test_duty_cycle.
# This may be replaced when dependencies are built.
