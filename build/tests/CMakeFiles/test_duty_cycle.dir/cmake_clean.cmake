file(REMOVE_RECURSE
  "CMakeFiles/test_duty_cycle.dir/test_duty_cycle.cpp.o"
  "CMakeFiles/test_duty_cycle.dir/test_duty_cycle.cpp.o.d"
  "test_duty_cycle"
  "test_duty_cycle.pdb"
  "test_duty_cycle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_duty_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
