file(REMOVE_RECURSE
  "CMakeFiles/test_ghs.dir/test_ghs.cpp.o"
  "CMakeFiles/test_ghs.dir/test_ghs.cpp.o.d"
  "test_ghs"
  "test_ghs.pdb"
  "test_ghs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ghs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
