# Empty compiler generated dependencies file for test_ghs.
# This may be replaced when dependencies are built.
