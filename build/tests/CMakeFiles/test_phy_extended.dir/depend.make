# Empty dependencies file for test_phy_extended.
# This may be replaced when dependencies are built.
