file(REMOVE_RECURSE
  "CMakeFiles/test_phy_extended.dir/test_phy_extended.cpp.o"
  "CMakeFiles/test_phy_extended.dir/test_phy_extended.cpp.o.d"
  "test_phy_extended"
  "test_phy_extended.pdb"
  "test_phy_extended[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
