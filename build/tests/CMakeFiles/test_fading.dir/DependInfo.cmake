
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_fading.cpp" "tests/CMakeFiles/test_fading.dir/test_fading.cpp.o" "gcc" "tests/CMakeFiles/test_fading.dir/test_fading.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/firefly_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/firefly_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/firefly_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/firefly_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/pco/CMakeFiles/firefly_pco.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/firefly_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/fa/CMakeFiles/firefly_fa.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/firefly_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/firefly_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
