file(REMOVE_RECURSE
  "CMakeFiles/test_network_pco.dir/test_network_pco.cpp.o"
  "CMakeFiles/test_network_pco.dir/test_network_pco.cpp.o.d"
  "test_network_pco"
  "test_network_pco.pdb"
  "test_network_pco[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_pco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
