# Empty dependencies file for test_network_pco.
# This may be replaced when dependencies are built.
