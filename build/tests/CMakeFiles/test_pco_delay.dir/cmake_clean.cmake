file(REMOVE_RECURSE
  "CMakeFiles/test_pco_delay.dir/test_pco_delay.cpp.o"
  "CMakeFiles/test_pco_delay.dir/test_pco_delay.cpp.o.d"
  "test_pco_delay"
  "test_pco_delay.pdb"
  "test_pco_delay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pco_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
