# Empty dependencies file for test_pco_delay.
# This may be replaced when dependencies are built.
