# Empty dependencies file for proximity_services.
# This may be replaced when dependencies are built.
