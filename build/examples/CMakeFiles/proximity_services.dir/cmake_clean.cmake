file(REMOVE_RECURSE
  "CMakeFiles/proximity_services.dir/proximity_services.cpp.o"
  "CMakeFiles/proximity_services.dir/proximity_services.cpp.o.d"
  "proximity_services"
  "proximity_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proximity_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
