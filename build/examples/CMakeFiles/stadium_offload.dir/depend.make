# Empty dependencies file for stadium_offload.
# This may be replaced when dependencies are built.
