file(REMOVE_RECURSE
  "CMakeFiles/stadium_offload.dir/stadium_offload.cpp.o"
  "CMakeFiles/stadium_offload.dir/stadium_offload.cpp.o.d"
  "stadium_offload"
  "stadium_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stadium_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
