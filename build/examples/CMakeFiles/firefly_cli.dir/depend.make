# Empty dependencies file for firefly_cli.
# This may be replaced when dependencies are built.
