file(REMOVE_RECURSE
  "CMakeFiles/firefly_cli.dir/firefly_cli.cpp.o"
  "CMakeFiles/firefly_cli.dir/firefly_cli.cpp.o.d"
  "firefly_cli"
  "firefly_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
