file(REMOVE_RECURSE
  "CMakeFiles/mobile_network.dir/mobile_network.cpp.o"
  "CMakeFiles/mobile_network.dir/mobile_network.cpp.o.d"
  "mobile_network"
  "mobile_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
