# Empty dependencies file for mobile_network.
# This may be replaced when dependencies are built.
