file(REMOVE_RECURSE
  "CMakeFiles/ranging_demo.dir/ranging_demo.cpp.o"
  "CMakeFiles/ranging_demo.dir/ranging_demo.cpp.o.d"
  "ranging_demo"
  "ranging_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranging_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
