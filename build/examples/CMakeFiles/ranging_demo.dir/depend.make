# Empty dependencies file for ranging_demo.
# This may be replaced when dependencies are built.
