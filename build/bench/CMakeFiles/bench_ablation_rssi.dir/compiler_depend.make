# Empty compiler generated dependencies file for bench_ablation_rssi.
# This may be replaced when dependencies are built.
