file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rssi.dir/bench_ablation_rssi.cpp.o"
  "CMakeFiles/bench_ablation_rssi.dir/bench_ablation_rssi.cpp.o.d"
  "bench_ablation_rssi"
  "bench_ablation_rssi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rssi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
