file(REMOVE_RECURSE
  "CMakeFiles/bench_spanning_tree.dir/bench_spanning_tree.cpp.o"
  "CMakeFiles/bench_spanning_tree.dir/bench_spanning_tree.cpp.o.d"
  "bench_spanning_tree"
  "bench_spanning_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spanning_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
