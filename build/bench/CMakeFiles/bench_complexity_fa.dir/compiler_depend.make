# Empty compiler generated dependencies file for bench_complexity_fa.
# This may be replaced when dependencies are built.
