file(REMOVE_RECURSE
  "CMakeFiles/bench_complexity_fa.dir/bench_complexity_fa.cpp.o"
  "CMakeFiles/bench_complexity_fa.dir/bench_complexity_fa.cpp.o.d"
  "bench_complexity_fa"
  "bench_complexity_fa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_complexity_fa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
