file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_messages.dir/bench_fig4_messages.cpp.o"
  "CMakeFiles/bench_fig4_messages.dir/bench_fig4_messages.cpp.o.d"
  "bench_fig4_messages"
  "bench_fig4_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
