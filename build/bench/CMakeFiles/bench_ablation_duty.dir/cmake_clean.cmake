file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_duty.dir/bench_ablation_duty.cpp.o"
  "CMakeFiles/bench_ablation_duty.dir/bench_ablation_duty.cpp.o.d"
  "bench_ablation_duty"
  "bench_ablation_duty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_duty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
