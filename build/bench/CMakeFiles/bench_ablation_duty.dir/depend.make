# Empty dependencies file for bench_ablation_duty.
# This may be replaced when dependencies are built.
