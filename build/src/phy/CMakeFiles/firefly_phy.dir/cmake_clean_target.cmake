file(REMOVE_RECURSE
  "libfirefly_phy.a"
)
