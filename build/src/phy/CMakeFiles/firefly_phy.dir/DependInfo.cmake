
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/channel.cpp" "src/phy/CMakeFiles/firefly_phy.dir/channel.cpp.o" "gcc" "src/phy/CMakeFiles/firefly_phy.dir/channel.cpp.o.d"
  "/root/repo/src/phy/energy.cpp" "src/phy/CMakeFiles/firefly_phy.dir/energy.cpp.o" "gcc" "src/phy/CMakeFiles/firefly_phy.dir/energy.cpp.o.d"
  "/root/repo/src/phy/fading.cpp" "src/phy/CMakeFiles/firefly_phy.dir/fading.cpp.o" "gcc" "src/phy/CMakeFiles/firefly_phy.dir/fading.cpp.o.d"
  "/root/repo/src/phy/link.cpp" "src/phy/CMakeFiles/firefly_phy.dir/link.cpp.o" "gcc" "src/phy/CMakeFiles/firefly_phy.dir/link.cpp.o.d"
  "/root/repo/src/phy/pathloss.cpp" "src/phy/CMakeFiles/firefly_phy.dir/pathloss.cpp.o" "gcc" "src/phy/CMakeFiles/firefly_phy.dir/pathloss.cpp.o.d"
  "/root/repo/src/phy/rssi.cpp" "src/phy/CMakeFiles/firefly_phy.dir/rssi.cpp.o" "gcc" "src/phy/CMakeFiles/firefly_phy.dir/rssi.cpp.o.d"
  "/root/repo/src/phy/shadowing.cpp" "src/phy/CMakeFiles/firefly_phy.dir/shadowing.cpp.o" "gcc" "src/phy/CMakeFiles/firefly_phy.dir/shadowing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/firefly_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/firefly_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
