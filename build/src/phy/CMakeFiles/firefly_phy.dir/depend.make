# Empty dependencies file for firefly_phy.
# This may be replaced when dependencies are built.
