file(REMOVE_RECURSE
  "CMakeFiles/firefly_phy.dir/channel.cpp.o"
  "CMakeFiles/firefly_phy.dir/channel.cpp.o.d"
  "CMakeFiles/firefly_phy.dir/energy.cpp.o"
  "CMakeFiles/firefly_phy.dir/energy.cpp.o.d"
  "CMakeFiles/firefly_phy.dir/fading.cpp.o"
  "CMakeFiles/firefly_phy.dir/fading.cpp.o.d"
  "CMakeFiles/firefly_phy.dir/link.cpp.o"
  "CMakeFiles/firefly_phy.dir/link.cpp.o.d"
  "CMakeFiles/firefly_phy.dir/pathloss.cpp.o"
  "CMakeFiles/firefly_phy.dir/pathloss.cpp.o.d"
  "CMakeFiles/firefly_phy.dir/rssi.cpp.o"
  "CMakeFiles/firefly_phy.dir/rssi.cpp.o.d"
  "CMakeFiles/firefly_phy.dir/shadowing.cpp.o"
  "CMakeFiles/firefly_phy.dir/shadowing.cpp.o.d"
  "libfirefly_phy.a"
  "libfirefly_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
