file(REMOVE_RECURSE
  "libfirefly_geo.a"
)
