file(REMOVE_RECURSE
  "CMakeFiles/firefly_geo.dir/deployment.cpp.o"
  "CMakeFiles/firefly_geo.dir/deployment.cpp.o.d"
  "CMakeFiles/firefly_geo.dir/mobility.cpp.o"
  "CMakeFiles/firefly_geo.dir/mobility.cpp.o.d"
  "libfirefly_geo.a"
  "libfirefly_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
