# Empty compiler generated dependencies file for firefly_geo.
# This may be replaced when dependencies are built.
