
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/birthday.cpp" "src/core/CMakeFiles/firefly_core.dir/birthday.cpp.o" "gcc" "src/core/CMakeFiles/firefly_core.dir/birthday.cpp.o.d"
  "/root/repo/src/core/device.cpp" "src/core/CMakeFiles/firefly_core.dir/device.cpp.o" "gcc" "src/core/CMakeFiles/firefly_core.dir/device.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/firefly_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/firefly_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/firefly_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/firefly_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/fst.cpp" "src/core/CMakeFiles/firefly_core.dir/fst.cpp.o" "gcc" "src/core/CMakeFiles/firefly_core.dir/fst.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/firefly_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/firefly_core.dir/scenario.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/firefly_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/firefly_core.dir/schedule.cpp.o.d"
  "/root/repo/src/core/st.cpp" "src/core/CMakeFiles/firefly_core.dir/st.cpp.o" "gcc" "src/core/CMakeFiles/firefly_core.dir/st.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/firefly_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/firefly_core.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/firefly_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/firefly_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/firefly_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/firefly_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/firefly_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/firefly_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/pco/CMakeFiles/firefly_pco.dir/DependInfo.cmake"
  "/root/repo/build/src/fa/CMakeFiles/firefly_fa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
