file(REMOVE_RECURSE
  "libfirefly_core.a"
)
