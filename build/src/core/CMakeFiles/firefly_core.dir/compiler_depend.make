# Empty compiler generated dependencies file for firefly_core.
# This may be replaced when dependencies are built.
