file(REMOVE_RECURSE
  "CMakeFiles/firefly_core.dir/birthday.cpp.o"
  "CMakeFiles/firefly_core.dir/birthday.cpp.o.d"
  "CMakeFiles/firefly_core.dir/device.cpp.o"
  "CMakeFiles/firefly_core.dir/device.cpp.o.d"
  "CMakeFiles/firefly_core.dir/engine.cpp.o"
  "CMakeFiles/firefly_core.dir/engine.cpp.o.d"
  "CMakeFiles/firefly_core.dir/experiment.cpp.o"
  "CMakeFiles/firefly_core.dir/experiment.cpp.o.d"
  "CMakeFiles/firefly_core.dir/fst.cpp.o"
  "CMakeFiles/firefly_core.dir/fst.cpp.o.d"
  "CMakeFiles/firefly_core.dir/scenario.cpp.o"
  "CMakeFiles/firefly_core.dir/scenario.cpp.o.d"
  "CMakeFiles/firefly_core.dir/schedule.cpp.o"
  "CMakeFiles/firefly_core.dir/schedule.cpp.o.d"
  "CMakeFiles/firefly_core.dir/st.cpp.o"
  "CMakeFiles/firefly_core.dir/st.cpp.o.d"
  "CMakeFiles/firefly_core.dir/trace.cpp.o"
  "CMakeFiles/firefly_core.dir/trace.cpp.o.d"
  "libfirefly_core.a"
  "libfirefly_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
