# Empty compiler generated dependencies file for firefly_util.
# This may be replaced when dependencies are built.
