file(REMOVE_RECURSE
  "CMakeFiles/firefly_util.dir/flags.cpp.o"
  "CMakeFiles/firefly_util.dir/flags.cpp.o.d"
  "CMakeFiles/firefly_util.dir/log.cpp.o"
  "CMakeFiles/firefly_util.dir/log.cpp.o.d"
  "CMakeFiles/firefly_util.dir/rng.cpp.o"
  "CMakeFiles/firefly_util.dir/rng.cpp.o.d"
  "CMakeFiles/firefly_util.dir/stats.cpp.o"
  "CMakeFiles/firefly_util.dir/stats.cpp.o.d"
  "CMakeFiles/firefly_util.dir/table.cpp.o"
  "CMakeFiles/firefly_util.dir/table.cpp.o.d"
  "CMakeFiles/firefly_util.dir/thread_pool.cpp.o"
  "CMakeFiles/firefly_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/firefly_util.dir/units.cpp.o"
  "CMakeFiles/firefly_util.dir/units.cpp.o.d"
  "libfirefly_util.a"
  "libfirefly_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
