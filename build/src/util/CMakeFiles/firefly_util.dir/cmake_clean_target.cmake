file(REMOVE_RECURSE
  "libfirefly_util.a"
)
