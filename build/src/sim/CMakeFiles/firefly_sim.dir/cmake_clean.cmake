file(REMOVE_RECURSE
  "CMakeFiles/firefly_sim.dir/event_queue.cpp.o"
  "CMakeFiles/firefly_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/firefly_sim.dir/simulator.cpp.o"
  "CMakeFiles/firefly_sim.dir/simulator.cpp.o.d"
  "libfirefly_sim.a"
  "libfirefly_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
