# Empty dependencies file for firefly_graph.
# This may be replaced when dependencies are built.
