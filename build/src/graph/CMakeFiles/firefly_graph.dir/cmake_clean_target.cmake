file(REMOVE_RECURSE
  "libfirefly_graph.a"
)
