file(REMOVE_RECURSE
  "CMakeFiles/firefly_graph.dir/boruvka.cpp.o"
  "CMakeFiles/firefly_graph.dir/boruvka.cpp.o.d"
  "CMakeFiles/firefly_graph.dir/ghs.cpp.o"
  "CMakeFiles/firefly_graph.dir/ghs.cpp.o.d"
  "CMakeFiles/firefly_graph.dir/graph.cpp.o"
  "CMakeFiles/firefly_graph.dir/graph.cpp.o.d"
  "CMakeFiles/firefly_graph.dir/mst.cpp.o"
  "CMakeFiles/firefly_graph.dir/mst.cpp.o.d"
  "CMakeFiles/firefly_graph.dir/union_find.cpp.o"
  "CMakeFiles/firefly_graph.dir/union_find.cpp.o.d"
  "libfirefly_graph.a"
  "libfirefly_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
