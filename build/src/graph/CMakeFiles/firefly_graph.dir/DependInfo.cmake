
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/boruvka.cpp" "src/graph/CMakeFiles/firefly_graph.dir/boruvka.cpp.o" "gcc" "src/graph/CMakeFiles/firefly_graph.dir/boruvka.cpp.o.d"
  "/root/repo/src/graph/ghs.cpp" "src/graph/CMakeFiles/firefly_graph.dir/ghs.cpp.o" "gcc" "src/graph/CMakeFiles/firefly_graph.dir/ghs.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/firefly_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/firefly_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/mst.cpp" "src/graph/CMakeFiles/firefly_graph.dir/mst.cpp.o" "gcc" "src/graph/CMakeFiles/firefly_graph.dir/mst.cpp.o.d"
  "/root/repo/src/graph/union_find.cpp" "src/graph/CMakeFiles/firefly_graph.dir/union_find.cpp.o" "gcc" "src/graph/CMakeFiles/firefly_graph.dir/union_find.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/firefly_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
