file(REMOVE_RECURSE
  "CMakeFiles/firefly_mac.dir/rach.cpp.o"
  "CMakeFiles/firefly_mac.dir/rach.cpp.o.d"
  "CMakeFiles/firefly_mac.dir/radio.cpp.o"
  "CMakeFiles/firefly_mac.dir/radio.cpp.o.d"
  "libfirefly_mac.a"
  "libfirefly_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
