file(REMOVE_RECURSE
  "libfirefly_mac.a"
)
