# Empty dependencies file for firefly_mac.
# This may be replaced when dependencies are built.
