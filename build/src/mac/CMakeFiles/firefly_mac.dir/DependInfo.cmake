
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/rach.cpp" "src/mac/CMakeFiles/firefly_mac.dir/rach.cpp.o" "gcc" "src/mac/CMakeFiles/firefly_mac.dir/rach.cpp.o.d"
  "/root/repo/src/mac/radio.cpp" "src/mac/CMakeFiles/firefly_mac.dir/radio.cpp.o" "gcc" "src/mac/CMakeFiles/firefly_mac.dir/radio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/firefly_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/firefly_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/firefly_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/firefly_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
