file(REMOVE_RECURSE
  "CMakeFiles/firefly_fa.dir/firefly.cpp.o"
  "CMakeFiles/firefly_fa.dir/firefly.cpp.o.d"
  "CMakeFiles/firefly_fa.dir/objective.cpp.o"
  "CMakeFiles/firefly_fa.dir/objective.cpp.o.d"
  "libfirefly_fa.a"
  "libfirefly_fa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_fa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
