file(REMOVE_RECURSE
  "libfirefly_fa.a"
)
