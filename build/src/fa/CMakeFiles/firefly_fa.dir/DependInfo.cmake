
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fa/firefly.cpp" "src/fa/CMakeFiles/firefly_fa.dir/firefly.cpp.o" "gcc" "src/fa/CMakeFiles/firefly_fa.dir/firefly.cpp.o.d"
  "/root/repo/src/fa/objective.cpp" "src/fa/CMakeFiles/firefly_fa.dir/objective.cpp.o" "gcc" "src/fa/CMakeFiles/firefly_fa.dir/objective.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/firefly_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/firefly_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
