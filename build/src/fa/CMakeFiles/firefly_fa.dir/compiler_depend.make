# Empty compiler generated dependencies file for firefly_fa.
# This may be replaced when dependencies are built.
