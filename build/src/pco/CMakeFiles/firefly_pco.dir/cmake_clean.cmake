file(REMOVE_RECURSE
  "CMakeFiles/firefly_pco.dir/network_pco.cpp.o"
  "CMakeFiles/firefly_pco.dir/network_pco.cpp.o.d"
  "CMakeFiles/firefly_pco.dir/oscillator.cpp.o"
  "CMakeFiles/firefly_pco.dir/oscillator.cpp.o.d"
  "CMakeFiles/firefly_pco.dir/prc.cpp.o"
  "CMakeFiles/firefly_pco.dir/prc.cpp.o.d"
  "CMakeFiles/firefly_pco.dir/sync_metrics.cpp.o"
  "CMakeFiles/firefly_pco.dir/sync_metrics.cpp.o.d"
  "libfirefly_pco.a"
  "libfirefly_pco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_pco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
