
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pco/network_pco.cpp" "src/pco/CMakeFiles/firefly_pco.dir/network_pco.cpp.o" "gcc" "src/pco/CMakeFiles/firefly_pco.dir/network_pco.cpp.o.d"
  "/root/repo/src/pco/oscillator.cpp" "src/pco/CMakeFiles/firefly_pco.dir/oscillator.cpp.o" "gcc" "src/pco/CMakeFiles/firefly_pco.dir/oscillator.cpp.o.d"
  "/root/repo/src/pco/prc.cpp" "src/pco/CMakeFiles/firefly_pco.dir/prc.cpp.o" "gcc" "src/pco/CMakeFiles/firefly_pco.dir/prc.cpp.o.d"
  "/root/repo/src/pco/sync_metrics.cpp" "src/pco/CMakeFiles/firefly_pco.dir/sync_metrics.cpp.o" "gcc" "src/pco/CMakeFiles/firefly_pco.dir/sync_metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/firefly_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/firefly_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
