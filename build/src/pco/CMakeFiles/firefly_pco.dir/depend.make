# Empty dependencies file for firefly_pco.
# This may be replaced when dependencies are built.
