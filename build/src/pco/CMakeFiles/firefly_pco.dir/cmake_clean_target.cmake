file(REMOVE_RECURSE
  "libfirefly_pco.a"
)
