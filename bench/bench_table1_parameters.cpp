// bench_table1_parameters — validates the Table I simulation parameters.
//
// Table I is the paper's parameter table, not a result; this bench prints
// the parameter set as configured, then *validates* the derived physics:
//   * the dual-slope propagation curve at representative distances,
//   * the median detection range implied by the 23 dBm / −95 dBm budget,
//   * empirical detection probability vs distance under 10 dB shadowing
//     and Rayleigh fading (the stochastic link model the protocols see),
//   * the RSSI ranging error distribution at the Table I shadowing.
#include <iostream>

#include "bench_common.hpp"
#include "core/scenario.hpp"
#include "phy/channel.hpp"
#include "phy/rssi.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace firefly;
  using util::Table;

  bench::BenchJson json("table1_parameters", &argc, argv);
  json.write_meta();

  const core::ScenarioConfig config;  // Table I defaults

  Table params("Table I — simulation parameters (as configured)");
  params.set_headers({"parameter", "value"});
  params.add_row({"Device power", util::to_string(config.radio.tx_power)});
  params.add_row({"Threshold", util::to_string(config.radio.detection_threshold)});
  params.add_row({"Device density", "50 devices in 100 m x 100 m"});
  params.add_row({"Fast fading", "UMi (NLOS) -> Rayleigh"});
  params.add_row({"Shadowing std dev",
                  Table::num(config.radio.shadowing_sigma_db, 0) + " dB"});
  params.add_row({"Time slot", "1 ms"});
  params.add_row({"Propagation model",
                  "PL = 4.35 + 25 log10(d) if d < 6; PL = 40.0 + 40 log10(d) otherwise"});
  params.print(std::cout);
  json.write_table(params, "parameters");

  // --- propagation curve ---
  const auto model = phy::make_paper_model();
  Table curve("Propagation validation: PL(d) and median received power");
  curve.set_headers({"d (m)", "PL (dB)", "rx @23 dBm (dBm)", "detectable (median)"});
  for (const double d : {1.0, 3.0, 6.0, 10.0, 25.0, 50.0, 89.0, 100.0, 150.0}) {
    const util::Db pl = model->loss(d);
    const util::Dbm rx = config.radio.tx_power - pl;
    curve.add_row({Table::num(d, 0), Table::num(pl.value, 2), Table::num(rx.value, 2),
                   rx >= config.radio.detection_threshold ? "yes" : "no"});
  }
  curve.print(std::cout);
  json.write_table(curve, "propagation");

  auto channel = phy::make_paper_channel(7, config.radio);
  std::cout << "\nMedian detection range (link budget 118 dB): "
            << Table::num(channel->median_range(), 1) << " m\n";
  json.write_object([&](obs::JsonWriter& w) {
    w.field("series", "median_range");
    w.field("median_range_m", channel->median_range());
  });

  // --- stochastic detection probability ---
  Table detect("Detection probability vs distance (shadowing 10 dB + Rayleigh)");
  detect.set_headers({"d (m)", "P(detect)"});
  util::Rng rng(99);
  for (const double d : {10.0, 30.0, 50.0, 70.0, 89.0, 110.0, 140.0, 200.0}) {
    int detected = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
      // Fresh shadowing per virtual link + fresh fading per reception.
      const double shadow = rng.normal(0.0, config.radio.shadowing_sigma_db);
      const double fade_gain = rng.exponential(1.0);
      const double rx = config.radio.tx_power.value - model->loss(d).value - shadow +
                        10.0 * std::log10(std::max(fade_gain, 1e-6));
      if (rx >= config.radio.detection_threshold.value) ++detected;
    }
    detect.add_row({Table::num(d, 0),
                    Table::num(detected / static_cast<double>(trials), 3)});
  }
  detect.print(std::cout);
  json.write_table(detect, "detection");

  // --- ranging error at Table I shadowing ---
  const phy::RangingErrorStats stats =
      phy::analytic_ranging_error(config.radio.shadowing_sigma_db, 4.0);
  Table ranging("RSSI ranging error at sigma = 10 dB, n = 4 (eqs. 6, 11, 12)");
  ranging.set_headers({"statistic", "analytic value"});
  ranging.add_row({"E[r_est/r_true]", Table::num(stats.mean_ratio, 3)});
  ranging.add_row({"SD[r_est/r_true]", Table::num(stats.stddev_ratio, 3)});
  ranging.add_row({"median ratio", Table::num(stats.median_ratio, 3)});
  ranging.add_row({"90th percentile ratio", Table::num(stats.p90_ratio, 3)});
  ranging.print(std::cout);
  json.write_table(ranging, "ranging");

  std::cout << "\nAll Table I parameters configured verbatim from the paper.\n";
  return 0;
}
