// bench_fig3_convergence — reproduces the paper's Fig. 3.
//
// "Comparison in convergence time between existing FST method with proposed
// ST method at different scales."  The paper's claim: below ~200 nodes the
// two methods perform at almost the same rate; as the node count grows the
// proposed ST method wins increasingly.
//
// This bench sweeps N ∈ {50..1000} at the Table I density (area scales with
// N), runs both protocols over several seeds, and prints convergence time
// (time until sustained global firing alignment AND complete neighbour
// discovery; for ST additionally a spanning fragment, per Algorithm 1's
// termination).  A CSV lands next to the binary for replotting.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace firefly;
  using util::Table;

  bench::BenchJson json("fig3_convergence", &argc, argv);

  std::cout << "Reproducing Fig. 3: convergence time vs number of nodes\n"
            << "(Table I scenario, density-scaled area, "
            << bench::paper_sweep().trials << " seeds per point)\n";

  const bench::PaperSweepResult sweep = bench::run_paper_sweep();
  if (json) {
    json.write_meta(bench::paper_sweep());
    json.write_series(core::Protocol::kFst, sweep.fst);
    json.write_series(core::Protocol::kSt, sweep.st);
  }

  Table table("Fig. 3 — convergence time (ms)");
  table.set_headers({"nodes", "FST mean", "FST ci95", "ST mean", "ST ci95",
                     "ST speedup", "FST fail%", "ST fail%"});
  for (std::size_t i = 0; i < sweep.fst.size(); ++i) {
    const auto& f = sweep.fst[i];
    const auto& s = sweep.st[i];
    const double speedup =
        s.convergence_ms.mean() > 0.0 ? f.convergence_ms.mean() / s.convergence_ms.mean()
                                      : 0.0;
    table.add_row({Table::num(f.n), Table::num(f.convergence_ms.mean(), 1),
                   Table::num(f.convergence_ms.ci95_halfwidth(), 1),
                   Table::num(s.convergence_ms.mean(), 1),
                   Table::num(s.convergence_ms.ci95_halfwidth(), 1),
                   Table::num(speedup, 2) + "x", Table::num(f.failure_rate * 100.0, 0),
                   Table::num(s.failure_rate * 100.0, 0)});
  }
  table.print(std::cout);
  table.write_csv("fig3_convergence.csv");

  // Shape verdicts the paper's figure carries.
  const auto& f_first = sweep.fst.front();
  const auto& f_last = sweep.fst.back();
  const auto& s_first = sweep.st.front();
  const auto& s_last = sweep.st.back();
  const double small_ratio = f_first.convergence_ms.mean() /
                             std::max(1.0, s_first.convergence_ms.mean());
  const double large_ratio = f_last.convergence_ms.mean() /
                             std::max(1.0, s_last.convergence_ms.mean());
  std::cout << "\nShape check (paper: comparable at small N, ST increasingly "
               "better at scale):\n"
            << "  FST/ST time ratio at N=" << f_first.n << ": " << small_ratio << "\n"
            << "  FST/ST time ratio at N=" << f_last.n << ": " << large_ratio << "\n"
            << "  ST advantage grows with scale: "
            << (large_ratio > small_ratio ? "YES" : "NO") << "\n"
            << "  FST convergence time grows with N: "
            << (f_last.convergence_ms.mean() > f_first.convergence_ms.mean() ? "YES" : "NO")
            << "\n(CSV written to fig3_convergence.csv)\n";
  return 0;
}
