// bench_fig3_convergence — reproduces the paper's Fig. 3.
//
// "Comparison in convergence time between existing FST method with proposed
// ST method at different scales."  The paper's claim: below ~200 nodes the
// two methods perform at almost the same rate; as the node count grows the
// proposed ST method wins increasingly.
//
// This bench sweeps N ∈ {50..1000} at the Table I density (area scales with
// N), runs the protocol axis (default FST + ST; override with
// FIREFLY_BENCH_PROTOCOLS, e.g. "fst,st,desync") over several seeds, and
// prints convergence time (time until each protocol's own completion
// criterion holds — sustained global firing alignment AND complete neighbour
// discovery; for ST additionally a spanning fragment, per Algorithm 1's
// termination; for DESYNC a sustained balanced round-robin schedule).
// A CSV lands next to the binary for replotting.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace firefly;
  using util::Table;

  bench::BenchJson json("fig3_convergence", &argc, argv);

  const std::vector<core::Protocol> protocols =
      bench::bench_protocols({core::Protocol::kFst, core::Protocol::kSt});
  std::cout << "Reproducing Fig. 3: convergence time vs number of nodes\n"
            << "(Table I scenario, density-scaled area, "
            << bench::paper_sweep().trials << " seeds per point)\n";

  const std::vector<bench::ProtocolSeries> sweep = bench::run_paper_sweep(protocols);
  if (json) {
    json.write_meta(bench::paper_sweep(), protocols);
    for (const bench::ProtocolSeries& series : sweep) {
      json.write_series(series.protocol, series.points);
    }
  }

  Table table("Fig. 3 — convergence time (ms)");
  table.set_headers({"protocol", "nodes", "mean", "ci95", "fail%"});
  for (const bench::ProtocolSeries& series : sweep) {
    for (const core::SweepPoint& point : series.points) {
      table.add_row({core::to_string(series.protocol), Table::num(point.n),
                     Table::num(point.convergence_ms.mean(), 1),
                     Table::num(point.convergence_ms.ci95_halfwidth(), 1),
                     Table::num(point.failure_rate * 100.0, 0)});
    }
  }
  table.print(std::cout);
  table.write_csv("fig3_convergence.csv");

  // Shape verdicts the paper's figure carries — meaningful only when both
  // sides of the figure's comparison are on the axis.
  const auto* fst = bench::find_series(sweep, core::Protocol::kFst);
  const auto* st = bench::find_series(sweep, core::Protocol::kSt);
  if (fst != nullptr && st != nullptr && !fst->empty() && !st->empty()) {
    const auto& f_first = fst->front();
    const auto& f_last = fst->back();
    const auto& s_first = st->front();
    const auto& s_last = st->back();
    const double small_ratio = f_first.convergence_ms.mean() /
                               std::max(1.0, s_first.convergence_ms.mean());
    const double large_ratio = f_last.convergence_ms.mean() /
                               std::max(1.0, s_last.convergence_ms.mean());
    std::cout << "\nShape check (paper: comparable at small N, ST increasingly "
                 "better at scale):\n"
              << "  FST/ST time ratio at N=" << f_first.n << ": " << small_ratio << "\n"
              << "  FST/ST time ratio at N=" << f_last.n << ": " << large_ratio << "\n"
              << "  ST advantage grows with scale: "
              << (large_ratio > small_ratio ? "YES" : "NO") << "\n"
              << "  FST convergence time grows with N: "
              << (f_last.convergence_ms.mean() > f_first.convergence_ms.mean() ? "YES"
                                                                               : "NO")
              << '\n';
  }
  std::cout << "(CSV written to fig3_convergence.csv)\n";
  return 0;
}
