// bench_ablation_energy — energy to convergence, FST vs ST.
//
// The D2D discovery literature the paper builds on (its refs [4]–[9]) is
// driven by the energy cost of discovery.  This extension bench charges
// every transmitted PS slot at 700 mW, every decoded PS slot at 300 mW and
// idle RACH monitoring at 10 mW, and reports millijoules per device until
// convergence across scales — the battery-life reading of Figs. 3 and 4 —
// for every protocol on the axis (default FST + ST; override with
// FIREFLY_BENCH_PROTOCOLS).
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace firefly;
  using util::Table;

  bench::BenchJson json("ablation_energy", &argc, argv);

  std::cout << "Energy-to-convergence ablation (700/300/10 mW tx/rx/idle slots)\n";

  core::SweepConfig config = bench::paper_sweep();
  // Energy separates clearly by N=600; trim the largest step for runtime.
  if (!config.ns.empty() && config.ns.back() == 1000) config.ns.pop_back();
  const int trials = static_cast<int>(std::max<std::size_t>(1, config.trials - 1));
  const std::vector<core::Protocol> protocols =
      bench::bench_protocols({core::Protocol::kFst, core::Protocol::kSt});

  Table table("Mean energy per device until convergence (mJ)");
  table.set_headers({"protocol", "nodes", "mJ/device", "mJ/neighbor"});
  for (const core::Protocol protocol : protocols) {
    for (const std::size_t n : config.ns) {
      double mj = 0.0, per = 0.0;
      for (int t = 0; t < trials; ++t) {
        core::ScenarioConfig scenario = config.base;
        scenario.n = n;
        scenario.seed = 9000 + n * 31 + static_cast<std::uint64_t>(t);
        const auto m = core::run_trial(protocol, scenario);
        mj += m.mean_device_energy_mj;
        per += m.energy_per_neighbor_mj;
      }
      table.add_row({core::to_string(protocol), Table::num(n), Table::num(mj / trials, 2),
                     Table::num(per / trials, 3)});
    }
  }
  table.print(std::cout);
  table.write_csv("ablation_energy.csv");
  json.write_meta(config, protocols);
  json.write_table(table, "energy");

  std::cout << "\nReading: a genuine crossover.  At small scale ST costs MORE energy —\n"
               "its spread-out beacons and sync floods all get decoded (and decoding\n"
               "costs energy) while FST's synchronised beacons mostly collide and are\n"
               "never decoded.  At scale FST's ever-longer convergence dominates and\n"
               "ST wins.  (CSV written to ablation_energy.csv)\n";
  return 0;
}
