// bench_ablation_duty — duty-cycled discovery, the power-saving trade-off
// behind the paper's references [4]–[9] (Birthday protocols, Disco,
// U-Connect, ALOHA-like discovery).
//
// The axis protocols (default ST; override with FIREFLY_BENCH_PROTOCOLS)
// run on the Table I network with receivers awake only a fraction of
// each period.  The bench charts the three-way trade: convergence latency,
// energy rate while running, and total energy to convergence — including
// the regime boundary where the strict sustained-global-alignment
// criterion stops being reachable (residual PRC jitter on a
// partially-listening population).
#include <iostream>

#include "bench_common.hpp"
#include "core/scenario.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace firefly;
  using util::Table;

  bench::BenchJson json("ablation_duty", &argc, argv);
  const std::vector<core::Protocol> protocols =
      bench::bench_protocols({core::Protocol::kSt});
  json.write_meta(protocols);

  std::cout << "Duty-cycle ablation: 30 devices, Table I box, 2 seeds/point\n";

  Table table("Receiver duty cycle vs convergence and energy");
  table.set_headers({"protocol", "awake %", "converged", "time (ms)",
                     "energy rate (mJ/s/dev)", "energy to conv (mJ/dev)"});
  for (const core::Protocol protocol : protocols) {
    for (const std::uint32_t awake : {100U, 80U, 60U, 50U, 40U, 30U, 20U}) {
      double time_sum = 0.0, rate_sum = 0.0, energy_sum = 0.0;
      int converged = 0;
      const int trials = 2;
      for (int t = 0; t < trials; ++t) {
        core::ScenarioConfig config;
        config.n = 30;
        config.seed = 140 + static_cast<std::uint64_t>(t);
        config.area_policy = core::AreaPolicy::kFixed;
        config.protocol.max_periods = 1000;
        if (awake < 100) {
          config.protocol.duty_awake_slots = awake;
          config.protocol.duty_period_slots = 100;
        }
        const auto m = core::run_trial(protocol, config);
        rate_sum += m.mean_device_energy_mj / (m.simulated_ms * 1e-3);
        if (m.converged) {
          ++converged;
          time_sum += m.convergence_ms;
          energy_sum += m.mean_device_energy_mj;
        }
      }
      table.add_row(
          {core::to_string(protocol), Table::num(static_cast<std::size_t>(awake)),
           Table::num(static_cast<std::size_t>(converged)) + "/" +
               Table::num(static_cast<std::size_t>(trials)),
           converged > 0 ? Table::num(time_sum / converged, 0) : "-",
           Table::num(rate_sum / trials, 2),
           converged > 0 ? Table::num(energy_sum / converged, 1) : "-"});
    }
  }
  table.print(std::cout);
  table.write_csv("ablation_duty.csv");
  json.write_table(table, "duty_cycle");

  std::cout << "\nReading: the energy *rate* falls monotonically with duty, but the\n"
               "latency climbs far faster, so the total energy spent reaching\n"
               "convergence rises steeply — always-on is the cheapest way to\n"
               "converge, and deep duty cycling only pays off for devices that\n"
               "idle long after convergence.  Below ~30% awake, sustained global\n"
               "alignment becomes unreliable.  (CSV written to ablation_duty.csv)\n";
  return 0;
}
