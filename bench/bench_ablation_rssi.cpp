// bench_ablation_rssi — ablation over the paper's RSSI error model
// (eqs. 6, 11, 12): how ranging accuracy depends on the shadowing σ and the
// path-loss exponent n, empirical vs analytic.
//
// The paper's pitch against the FST baseline is precisely that it "did not
// consider how the signal strength will vary from distance aspect when
// noise or real environment come in picture"; this bench quantifies that
// environment sensitivity.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "phy/pathloss.hpp"
#include "phy/rssi.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace firefly;
  using util::Table;

  bench::BenchJson json("ablation_rssi", &argc, argv);
  json.write_meta();

  std::cout << "RSSI ranging ablation: relative error vs shadowing and exponent\n"
            << "(eqs. 6, 11, 12; Monte-Carlo vs closed form)\n";

  Table table("Ranging error |r_est/r_true - 1|: analytic vs simulated");
  table.set_headers({"sigma (dB)", "exponent n", "mean ratio (analytic)",
                     "mean ratio (sim)", "sd ratio (analytic)", "sd ratio (sim)",
                     "p90 ratio (analytic)", "p90 ratio (sim)"});

  util::Rng rng(2015);
  for (const double sigma : {0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0}) {
    for (const double n : {2.0, 4.0}) {  // indoor / outdoor per Section III
      const phy::RangingErrorStats analytic = phy::analytic_ranging_error(sigma, n);
      util::Sample ratios;
      const int trials = 200000;
      for (int i = 0; i < trials; ++i) {
        ratios.add(phy::ranging_distortion(rng.normal(0.0, sigma), n));
      }
      table.add_row({Table::num(sigma, 0), Table::num(n, 0),
                     Table::num(analytic.mean_ratio, 3), Table::num(ratios.mean(), 3),
                     Table::num(analytic.stddev_ratio, 3), Table::num(ratios.stddev(), 3),
                     Table::num(analytic.p90_ratio, 3),
                     Table::num(ratios.percentile(90.0), 3)});
    }
  }
  table.print(std::cout);
  table.write_csv("ablation_rssi.csv");
  json.write_table(table, "ranging_ablation");

  // End-to-end: ranging through the dual-slope model across distances.
  Table e2e("End-to-end ranging through the Table I dual-slope model (sigma = 10 dB)");
  e2e.set_headers({"true d (m)", "mean est (m)", "median est (m)", "p90 est (m)"});
  const auto model = phy::make_paper_model();
  const phy::RssiRanging ranging(model.get(), util::Dbm{23.0});
  for (const double d : {2.0, 5.0, 10.0, 30.0, 60.0, 89.0}) {
    util::Sample estimates;
    for (int i = 0; i < 50000; ++i) {
      const util::Dbm rx =
          util::Dbm{23.0} - model->loss(d) - util::Db{rng.normal(0.0, 10.0)};
      estimates.add(ranging.estimate_distance(rx));
    }
    e2e.add_row({Table::num(d, 0), Table::num(estimates.mean(), 1),
                 Table::num(estimates.median(), 1),
                 Table::num(estimates.percentile(90.0), 1)});
  }
  e2e.print(std::cout);
  json.write_table(e2e, "end_to_end");
  std::cout << "\nTakeaways: error is median-unbiased but mean-biased upward;\n"
               "outdoor (n = 4) ranging is materially more accurate than indoor\n"
               "(n = 2) at equal shadowing — the 1/n scaling of eq. (12).\n"
               "(CSV written to ablation_rssi.csv)\n";
  return 0;
}
