// bench_ablation_topology — ablation of the design choice at the heart of
// the paper: restricting pulse coupling to a spanning tree instead of the
// full proximity mesh.
//
// Uses the idealised continuous-time PCO network (no radio), so the effect
// of *topology alone* on Mirollo–Strogatz convergence is isolated from
// collision/discovery effects: full mesh vs maximum spanning tree vs k-NN
// graphs, across coupling strengths, on the same Table I deployments.
// Also sweeps ε to chart the convergence-speed/coupling trade-off.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/scenario.hpp"
#include "graph/mst.hpp"
#include "pco/network_pco.hpp"
#include "phy/channel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace firefly;
using util::Table;

graph::Graph knn_graph(const graph::Graph& proximity, std::size_t k) {
  // Keep each vertex's k strongest edges (union over endpoints).
  graph::Graph out(proximity.vertex_count());
  std::vector<char> keep(proximity.edge_count(), 0);
  for (graph::VertexId v = 0; v < proximity.vertex_count(); ++v) {
    auto neighbors = proximity.neighbors(v);
    std::vector<graph::Neighbor> sorted(neighbors.begin(), neighbors.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.weight > b.weight; });
    for (std::size_t i = 0; i < std::min(k, sorted.size()); ++i) {
      keep[sorted[i].edge_index] = 1;
    }
  }
  for (std::uint32_t idx = 0; idx < proximity.edge_count(); ++idx) {
    if (keep[idx]) {
      const auto& e = proximity.edge(idx);
      out.add_edge(e.u, e.v, e.weight);
    }
  }
  return out;
}

graph::Graph tree_graph(const graph::Graph& proximity) {
  const auto mst = graph::kruskal(proximity, graph::Orientation::kMax);
  graph::Graph out(proximity.vertex_count());
  for (const auto& e : mst.edges) out.add_edge(e.u, e.v, e.weight);
  return out;
}

struct TopologyRun {
  double time_sum = 0.0;
  double firings_sum = 0.0;
  int converged = 0;
  int trials = 0;
};

TopologyRun run_topology(const graph::Graph& coupling, double epsilon, int trials,
                         std::uint64_t seed_base) {
  TopologyRun acc;
  for (int t = 0; t < trials; ++t) {
    util::Rng rng(seed_base + static_cast<std::uint64_t>(t));
    pco::PcoNetworkConfig config;
    config.prc = pco::PrcParams{3.0, epsilon};
    config.max_time_s = 500.0;
    pco::PcoNetwork net(coupling, config, rng);
    const auto result = net.run();
    ++acc.trials;
    if (result.converged) {
      ++acc.converged;
      acc.time_sum += result.convergence_time_s;
      acc.firings_sum += static_cast<double>(result.total_firings);
    }
  }
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson json("ablation_topology", &argc, argv);
  json.write_meta();

  std::cout << "Topology ablation: PCO convergence under mesh / tree / k-NN coupling\n"
            << "(idealised continuous-time oscillators on Table I deployments)\n";

  constexpr int kTrials = 5;
  Table table("Coupling topology vs convergence (eps = 0.1)");
  table.set_headers({"nodes", "topology", "edges", "converged", "mean time (s)",
                     "mean pulses"});
  for (const std::size_t n : {50UL, 100UL, 200UL}) {
    core::ScenarioConfig config;
    config.n = n;
    config.seed = 42 + n;
    config.area_policy = core::AreaPolicy::kFixed;  // dense: mesh vs tree contrast
    const auto positions = core::deploy(config);
    auto channel = phy::make_paper_channel(config.seed, config.radio);
    const graph::Graph mesh = core::proximity_graph(positions, *channel);
    if (!mesh.connected()) continue;
    const graph::Graph tree = tree_graph(mesh);
    const graph::Graph knn3 = knn_graph(mesh, 3);

    const struct {
      const char* name;
      const graph::Graph* g;
    } topologies[] = {{"full mesh", &mesh}, {"max spanning tree", &tree}, {"3-NN", &knn3}};
    for (const auto& topo : topologies) {
      const TopologyRun run = run_topology(*topo.g, 0.1, kTrials, 1000 + n);
      table.add_row(
          {Table::num(n), topo.name, Table::num(topo.g->edge_count()),
           Table::num(static_cast<std::size_t>(run.converged)) + "/" +
               Table::num(static_cast<std::size_t>(run.trials)),
           run.converged > 0 ? Table::num(run.time_sum / run.converged, 3) : "-",
           run.converged > 0 ? Table::num(run.firings_sum / run.converged, 0) : "-"});
    }
  }
  table.print(std::cout);
  json.write_table(table, "topology");

  Table eps_table("Coupling-strength sweep on 100 nodes (mesh vs tree)");
  eps_table.set_headers({"epsilon", "mesh time (s)", "mesh pulses", "tree time (s)",
                         "tree pulses"});
  {
    core::ScenarioConfig config;
    config.n = 100;
    config.seed = 77;
    config.area_policy = core::AreaPolicy::kFixed;
    const auto positions = core::deploy(config);
    auto channel = phy::make_paper_channel(config.seed, config.radio);
    const graph::Graph mesh = core::proximity_graph(positions, *channel);
    const graph::Graph tree = tree_graph(mesh);
    for (const double eps : {0.02, 0.05, 0.1, 0.2, 0.4}) {
      const TopologyRun m = run_topology(mesh, eps, kTrials, 2000);
      const TopologyRun t = run_topology(tree, eps, kTrials, 3000);
      eps_table.add_row(
          {Table::num(eps, 2),
           m.converged > 0 ? Table::num(m.time_sum / m.converged, 3) : "-",
           m.converged > 0 ? Table::num(m.firings_sum / m.converged, 0) : "-",
           t.converged > 0 ? Table::num(t.time_sum / t.converged, 3) : "-",
           t.converged > 0 ? Table::num(t.firings_sum / t.converged, 0) : "-"});
    }
  }
  eps_table.print(std::cout);
  json.write_table(eps_table, "epsilon_sweep");

  std::cout << "\nReading: trees need fewer pulses per cycle but pure PCO dynamics\n"
               "converge slower on them — exactly why the ST protocol adopts the\n"
               "winner's phase at each merge instead of waiting for tree-PCO\n"
               "dynamics (Algorithm 1's F_F_A over RACH2).\n";
  return 0;
}
