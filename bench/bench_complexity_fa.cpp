// bench_complexity_fa — the paper's §V complexity claim.
//
// "The basic algorithm of firefly is having inherent O(n²) time complexity
// ... Our distributed algorithm differs from this basic algorithm,
// maintaining an ordered tree structure of fireflies ... searching in
// firefly for more brightness than current firefly will take O(log n) time
// complexity ... Hence asymptotic time complexity of proposed distributed
// algorithms are O(n log n)."
//
// Two parts: google-benchmark wall-clock timings of one generation for each
// strategy across population sizes, and an explicit comparison-count table
// with fitted log-log slopes.
#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "fa/firefly.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace firefly;

fa::FaConfig config_for(std::size_t n, fa::Strategy strategy) {
  fa::FaConfig config;
  config.population = n;
  config.dimensions = 2;
  config.generations = 1;
  config.strategy = strategy;
  return config;
}

void BM_ClassicGeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    fa::FireflyOptimizer opt(config_for(n, fa::Strategy::kClassic), fa::sphere(),
                             util::Rng(n));
    benchmark::DoNotOptimize(opt.run());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_ClassicGeneration)->RangeMultiplier(2)->Range(64, 2048)->Complexity();

void BM_RankOrderedGeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    fa::FireflyOptimizer opt(config_for(n, fa::Strategy::kRankOrdered), fa::sphere(),
                             util::Rng(n));
    benchmark::DoNotOptimize(opt.run());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_RankOrderedGeneration)->RangeMultiplier(2)->Range(64, 8192)->Complexity();

void print_comparison_table(bench::BenchJson& json) {
  using util::Table;
  Table table("§V complexity claim — brightness comparisons per generation");
  table.set_headers({"population", "classic O(n^2)", "rank-ordered O(n log n)", "ratio"});
  std::vector<double> ns, classic, ordered;
  for (std::size_t n = 64; n <= 4096; n *= 2) {
    const auto c = fa::FireflyOptimizer(config_for(n, fa::Strategy::kClassic),
                                        fa::sphere(), util::Rng(1))
                       .run();
    const auto o = fa::FireflyOptimizer(config_for(n, fa::Strategy::kRankOrdered),
                                        fa::sphere(), util::Rng(1))
                       .run();
    ns.push_back(static_cast<double>(n));
    classic.push_back(static_cast<double>(c.comparisons));
    ordered.push_back(static_cast<double>(o.comparisons));
    table.add_row({Table::num(n), Table::num(static_cast<std::size_t>(c.comparisons)),
                   Table::num(static_cast<std::size_t>(o.comparisons)),
                   Table::num(static_cast<double>(c.comparisons) /
                                  static_cast<double>(o.comparisons),
                              1)});
  }
  table.print(std::cout);
  json.write_table(table, "comparisons");
  const double classic_slope = util::fit_loglog_slope(ns, classic);
  const double ordered_slope = util::fit_loglog_slope(ns, ordered);
  std::cout << "fitted log-log slope, classic:      " << classic_slope
            << " (paper claim: 2 = O(n^2))\n"
            << "fitted log-log slope, rank-ordered: " << ordered_slope
            << " (paper claim: ~1.1 = O(n log n))\n";
  json.write_object([&](obs::JsonWriter& w) {
    w.field("series", "loglog_slopes");
    w.field("classic_slope", classic_slope);
    w.field("rank_ordered_slope", ordered_slope);
  });
}

}  // namespace

int main(int argc, char** argv) {
  // BenchJson consumes --json before google-benchmark sees the arguments.
  firefly::bench::BenchJson json("complexity_fa", &argc, argv);
  json.write_meta();
  std::cout << "Reproducing the paper's O(n^2) vs O(n log n) claim (Section V)\n";
  print_comparison_table(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
