// bench_scale — spatial-index scaling: grid vs dense wall-clock at large N.
//
// Runs the ST protocol at N ∈ {1000, 2000, 5000} (density-scaled area, so
// the network stays multi-hop) once per trial under both candidate
// enumeration strategies and reports the wall-clock ratio.  The dense runs
// are the exhaustive O(N²) reference; the grid runs must produce
// bit-identical RunMetrics (asserted per trial and reported in the JSON as
// `metrics_identical`), so any speedup is a pure optimisation.
//
//   bench_scale [--trials K] [--json scale.json]
//   FIREFLY_BENCH_MAX_N=2000 bench_scale      # trim the sweep
//
// JSONL output (firefly-bench-v1): one "scale" record per (n, mode, trial)
// with the measured wall_ms, then one "speedup" record per n.  Wall-clock
// fields make this file machine-speed dependent — diff the "scale" records'
// converged/total_messages columns, not the timings.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "util/rng.hpp"

namespace {

using namespace firefly;

struct TrialResult {
  double wall_ms{0.0};
  core::RunMetrics metrics;
  std::string metrics_json;
};

TrialResult run_one(std::size_t n, std::size_t trial, phy::SpatialIndex index) {
  core::ScenarioConfig config;
  config.n = n;
  config.seed = util::derive_seed(2015, "bench_scale",
                                  (static_cast<std::uint64_t>(n) << 20) | trial);
  config.radio.spatial_index = index;

  TrialResult result;
  const auto start = std::chrono::steady_clock::now();
  result.metrics = core::run_trial(core::Protocol::kSt, config);
  const auto stop = std::chrono::steady_clock::now();
  result.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();

  std::ostringstream oss;
  obs::JsonWriter w(oss);
  core::write_run_metrics_json(w, result.metrics);
  result.metrics_json = oss.str();
  return result;
}

const char* mode_name(phy::SpatialIndex index) {
  return index == phy::SpatialIndex::kGrid ? "grid" : "dense";
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson json("bench_scale", &argc, argv);

  std::size_t trials = bench::env_or("FIREFLY_BENCH_TRIALS", 1);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--trials" && i + 1 < argc) {
      trials = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg.rfind("--trials=", 0) == 0) {
      trials = static_cast<std::size_t>(std::strtoull(arg.data() + 9, nullptr, 10));
    } else {
      std::cerr << "bench_scale: unknown argument '" << arg << "'\n";
      return 2;
    }
  }
  if (trials == 0) trials = 1;

  const std::size_t max_n = bench::env_or("FIREFLY_BENCH_MAX_N", 5000);
  std::vector<std::size_t> ns;
  for (const std::size_t n : {1000UL, 2000UL, 5000UL}) {
    if (n <= max_n) ns.push_back(n);
  }
  if (ns.empty()) ns.push_back(max_n);

  json.write_meta();

  util::Table table("bench_scale — ST wall-clock, grid vs dense candidate enumeration");
  table.set_headers({"N", "trials", "dense ms", "grid ms", "speedup", "identical"});

  bool all_identical = true;
  for (const std::size_t n : ns) {
    double dense_ms = 0.0;
    double grid_ms = 0.0;
    bool identical = true;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      std::string dense_json;
      for (const phy::SpatialIndex index :
           {phy::SpatialIndex::kDense, phy::SpatialIndex::kGrid}) {
        std::cerr << "bench_scale: n=" << n << " mode=" << mode_name(index)
                  << " trial=" << trial << "..." << std::flush;
        const TrialResult result = run_one(n, trial, index);
        std::cerr << ' ' << util::Table::num(result.wall_ms) << " ms\n";
        (index == phy::SpatialIndex::kDense ? dense_ms : grid_ms) += result.wall_ms;
        json.write_object([&](obs::JsonWriter& w) {
          w.field("series", "scale");
          w.field("protocol", "ST");
          w.field("mode", mode_name(index));
          w.field("n", static_cast<std::uint64_t>(n));
          w.field("trial", static_cast<std::uint64_t>(trial));
          w.field("wall_ms", result.wall_ms);
          w.field("converged", result.metrics.converged);
          w.field("total_messages", result.metrics.total_messages());
          w.field("deliveries", result.metrics.deliveries);
        });
        // Compare grid against the dense run of the same (n, trial).
        if (index == phy::SpatialIndex::kDense) {
          dense_json = result.metrics_json;
        } else if (result.metrics_json != dense_json) {
          identical = false;
        }
      }
    }
    dense_ms /= static_cast<double>(trials);
    grid_ms /= static_cast<double>(trials);
    const double speedup = grid_ms > 0.0 ? dense_ms / grid_ms : 0.0;
    all_identical = all_identical && identical;

    json.write_object([&](obs::JsonWriter& w) {
      w.field("series", "speedup");
      w.field("protocol", "ST");
      w.field("n", static_cast<std::uint64_t>(n));
      w.field("trials", static_cast<std::uint64_t>(trials));
      w.field("dense_ms", dense_ms);
      w.field("grid_ms", grid_ms);
      w.field("speedup", speedup);
      w.field("metrics_identical", identical);
    });
    table.add_row({util::Table::num(n), util::Table::num(trials),
                   util::Table::num(dense_ms), util::Table::num(grid_ms),
                   util::Table::num(speedup), identical ? "yes" : "NO"});
  }

  table.print(std::cout);
  if (json) std::cout << "\nJSON written to " << json.path() << '\n';
  if (!all_identical) {
    std::cerr << "bench_scale: grid metrics DIVERGED from the dense reference\n";
    return 1;
  }
  return 0;
}
