// bench_scale — scaling benchmark: spatial index × scheduler at large N.
//
// Runs the protocol axis (default ST, the production protocol; override
// with FIREFLY_BENCH_PROTOCOLS) at N ∈ {1000, 2000, 5000} (density-scaled
// area, so the network stays multi-hop) once per trial under three
// configurations:
//
//   dense+heap  — exhaustive O(N²) candidate enumeration, binary-heap
//                 scheduler: the reference everything is measured against.
//   grid+heap   — spatial-index fast path, heap scheduler: isolates the
//                 candidate-enumeration speedup (grid_vs_dense).
//   grid+wheel  — spatial index plus the slot-calendar scheduler: the
//                 production path; wheel_vs_heap isolates the scheduler win.
//   grid+wheel+struct — production index/scheduler but the reference struct
//                 device core (per-record type-erased callback dispatch over
//                 the fat Device structs, as before the batched SoA engine);
//                 struct_vs_soa isolates the batched-callback/SoA win and is
//                 emitted as the "callback_sweep" series.
//
// All four must produce bit-identical RunMetrics (asserted per trial and
// reported in the JSON as `metrics_identical`), so any speedup is a pure
// optimisation.
//
//   bench_scale [--trials K] [--json scale.json]
//   FIREFLY_BENCH_MAX_N=2000 bench_scale      # trim the sweep
//
// JSONL output (firefly-bench-v1): one "scale" record per (n, mode, trial)
// with the measured wall_ms, then one "speedup" and one "callback_sweep"
// record per n.  Wall-clock
// fields make this file machine-speed dependent — regression checks should
// compare the *ratios* (see tools/check_bench_json --baseline), not the
// absolute timings.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace {

using namespace firefly;

struct Mode {
  const char* name;
  phy::SpatialIndex index;
  sim::SchedulerKind scheduler;
  core::DeviceCore device_core;
};

constexpr Mode kModes[] = {
    {"dense", phy::SpatialIndex::kDense, sim::SchedulerKind::kHeap,
     core::DeviceCore::kSoa},
    {"grid", phy::SpatialIndex::kGrid, sim::SchedulerKind::kHeap,
     core::DeviceCore::kSoa},
    {"grid+wheel", phy::SpatialIndex::kGrid, sim::SchedulerKind::kWheel,
     core::DeviceCore::kSoa},
    // The callback-sweep reference: same spatial index and scheduler as the
    // production mode, but hot device state in the fat structs with
    // per-record type-erased dispatch (the pre-batching engine).  The
    // soa/struct wall-clock ratio is the "callback_sweep" series.
    {"grid+wheel+struct", phy::SpatialIndex::kGrid, sim::SchedulerKind::kWheel,
     core::DeviceCore::kStruct},
};
constexpr std::size_t kModeCount = sizeof(kModes) / sizeof(kModes[0]);

struct TrialResult {
  double wall_ms{0.0};
  core::RunMetrics metrics;
  std::string metrics_json;
};

TrialResult run_one(core::Protocol protocol, std::size_t n, std::size_t trial,
                    const Mode& mode) {
  core::ScenarioConfig config;
  config.n = n;
  config.seed = util::derive_seed(2015, "bench_scale",
                                  (static_cast<std::uint64_t>(n) << 20) | trial);
  config.radio.spatial_index = mode.index;
  config.protocol.scheduler = mode.scheduler;
  config.protocol.device_core = mode.device_core;

  TrialResult result;
  const auto start = std::chrono::steady_clock::now();
  result.metrics = core::run_trial(protocol, config);
  const auto stop = std::chrono::steady_clock::now();
  result.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();

  std::ostringstream oss;
  obs::JsonWriter w(oss);
  core::write_run_metrics_json(w, result.metrics);
  result.metrics_json = oss.str();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson json("bench_scale", &argc, argv);

  std::size_t trials = bench::env_or("FIREFLY_BENCH_TRIALS", 1);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--trials" && i + 1 < argc) {
      trials = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg.rfind("--trials=", 0) == 0) {
      trials = static_cast<std::size_t>(std::strtoull(arg.data() + 9, nullptr, 10));
    } else {
      std::cerr << "bench_scale: unknown argument '" << arg << "'\n";
      return 2;
    }
  }
  if (trials == 0) trials = 1;

  const std::size_t max_n = bench::env_or("FIREFLY_BENCH_MAX_N", 5000);
  std::vector<std::size_t> ns;
  for (const std::size_t n : {1000UL, 2000UL, 5000UL}) {
    if (n <= max_n) ns.push_back(n);
  }
  if (ns.empty()) ns.push_back(max_n);

  const std::vector<core::Protocol> protocols =
      bench::bench_protocols({core::Protocol::kSt});
  json.write_meta(protocols);

  util::Table table(
      "bench_scale — wall-clock: dense+heap vs grid+heap vs grid+wheel vs struct core");
  table.set_headers({"protocol", "N", "trials", "dense ms", "grid ms", "wheel ms",
                     "struct ms", "grid/dense", "wheel/heap", "struct/soa",
                     "identical"});

  bool all_identical = true;
  for (const core::Protocol protocol : protocols) {
    const char* protocol_id = core::to_string(protocol);
    for (const std::size_t n : ns) {
      double mode_ms[kModeCount] = {};
      bool identical = true;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        std::string reference_json;
        for (std::size_t m = 0; m < kModeCount; ++m) {
          const Mode& mode = kModes[m];
          std::cerr << "bench_scale: protocol=" << protocol_id << " n=" << n
                    << " mode=" << mode.name << " trial=" << trial << "..." << std::flush;
          const TrialResult result = run_one(protocol, n, trial, mode);
          std::cerr << ' ' << util::Table::num(result.wall_ms) << " ms\n";
          mode_ms[m] += result.wall_ms;
          json.write_object([&](obs::JsonWriter& w) {
            w.field("series", "scale");
            w.field("protocol", protocol_id);
            w.field("mode", mode.name);
            w.field("scheduler", sim::to_string(mode.scheduler));
            w.field("n", static_cast<std::uint64_t>(n));
            w.field("trial", static_cast<std::uint64_t>(trial));
            w.field("wall_ms", result.wall_ms);
            w.field("converged", result.metrics.converged);
            w.field("total_messages", result.metrics.total_messages());
            w.field("deliveries", result.metrics.deliveries);
          });
          // Every mode must reproduce the dense+heap reference bit for bit.
          if (m == 0) {
            reference_json = result.metrics_json;
          } else if (result.metrics_json != reference_json) {
            identical = false;
          }
        }
      }
      for (double& ms : mode_ms) ms /= static_cast<double>(trials);
      const double dense_ms = mode_ms[0];
      const double heap_ms = mode_ms[1];    // grid + heap
      const double wheel_ms = mode_ms[2];   // grid + wheel (SoA core)
      const double struct_ms = mode_ms[3];  // grid + wheel, struct core
      const double grid_vs_dense = heap_ms > 0.0 ? dense_ms / heap_ms : 0.0;
      const double wheel_vs_heap = wheel_ms > 0.0 ? heap_ms / wheel_ms : 0.0;
      const double speedup = wheel_ms > 0.0 ? dense_ms / wheel_ms : 0.0;
      const double struct_vs_soa = wheel_ms > 0.0 ? struct_ms / wheel_ms : 0.0;
      all_identical = all_identical && identical;

      json.write_object([&](obs::JsonWriter& w) {
        w.field("series", "speedup");
        w.field("protocol", protocol_id);
        w.field("n", static_cast<std::uint64_t>(n));
        w.field("trials", static_cast<std::uint64_t>(trials));
        w.field("dense_ms", dense_ms);
        w.field("heap_ms", heap_ms);
        w.field("wheel_ms", wheel_ms);
        w.field("grid_vs_dense", grid_vs_dense);
        w.field("wheel_vs_heap", wheel_vs_heap);
        w.field("speedup", speedup);
        w.field("metrics_identical", identical);
      });
      // In-run device-core head-to-head: same binary, same machine, same
      // slot stream — the struct/soa wall-clock ratio is machine-speed
      // independent, which is what the CI baseline gate compares.
      json.write_object([&](obs::JsonWriter& w) {
        w.field("series", "callback_sweep");
        w.field("protocol", protocol_id);
        w.field("n", static_cast<std::uint64_t>(n));
        w.field("trials", static_cast<std::uint64_t>(trials));
        w.field("struct_ms", struct_ms);
        w.field("soa_ms", wheel_ms);
        w.field("struct_vs_soa", struct_vs_soa);
        w.field("metrics_identical", identical);
      });
      table.add_row({protocol_id, util::Table::num(n), util::Table::num(trials),
                     util::Table::num(dense_ms), util::Table::num(heap_ms),
                     util::Table::num(wheel_ms), util::Table::num(struct_ms),
                     util::Table::num(grid_vs_dense), util::Table::num(wheel_vs_heap),
                     util::Table::num(struct_vs_soa), identical ? "yes" : "NO"});
    }
  }

  table.print(std::cout);
  if (json) std::cout << "\nJSON written to " << json.path() << '\n';
  if (!all_identical) {
    std::cerr << "bench_scale: metrics DIVERGED from the dense+heap reference\n";
    return 1;
  }
  return 0;
}
