// bench_fig4_messages — reproduces the paper's Fig. 4.
//
// "Comparison in average number exchange between existing FST method with
// proposed ST method at different scales."  The paper's claim: message
// counts grow for both methods with the node count; from mid scale
// (~600 nodes in the paper) the proposed ST method exchanges fewer messages
// to converge.
//
// Messages are counted at the radio medium — every RACH1/RACH2 broadcast by
// any device until the convergence instant — so both protocols are measured
// by the same meter.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace firefly;
  using util::Table;

  bench::BenchJson json("fig4_messages", &argc, argv);

  std::cout << "Reproducing Fig. 4: messages exchanged until convergence vs nodes\n"
            << "(Table I scenario, density-scaled area, "
            << bench::paper_sweep().trials << " seeds per point)\n";

  const bench::PaperSweepResult sweep = bench::run_paper_sweep();
  if (json) {
    json.write_meta(bench::paper_sweep());
    json.write_series(core::Protocol::kFst, sweep.fst);
    json.write_series(core::Protocol::kSt, sweep.st);
  }

  Table table("Fig. 4 — average messages exchanged until convergence");
  table.set_headers({"nodes", "FST total", "ST total", "ST RACH1", "ST RACH2",
                     "FST/ST", "FST collisions", "ST collisions"});
  std::size_t crossover_n = 0;
  for (std::size_t i = 0; i < sweep.fst.size(); ++i) {
    const auto& f = sweep.fst[i];
    const auto& s = sweep.st[i];
    const double ratio =
        s.total_messages.mean() > 0.0 ? f.total_messages.mean() / s.total_messages.mean()
                                      : 0.0;
    if (crossover_n == 0 && ratio > 1.0) crossover_n = f.n;
    table.add_row({Table::num(f.n), Table::num(f.total_messages.mean(), 0),
                   Table::num(s.total_messages.mean(), 0),
                   Table::num(s.rach1_messages.mean(), 0),
                   Table::num(s.rach2_messages.mean(), 0), Table::num(ratio, 2),
                   Table::num(f.collisions.mean(), 0), Table::num(s.collisions.mean(), 0)});
  }
  table.print(std::cout);
  table.write_csv("fig4_messages.csv");

  const auto& f_first = sweep.fst.front();
  const auto& f_last = sweep.fst.back();
  const auto& s_first = sweep.st.front();
  const auto& s_last = sweep.st.back();
  std::cout << "\nShape check (paper: both grow with N; ST more efficient from "
               "mid scale on):\n"
            << "  FST messages grow with N: "
            << (f_last.total_messages.mean() > f_first.total_messages.mean() ? "YES" : "NO")
            << "\n  ST messages grow with N: "
            << (s_last.total_messages.mean() > s_first.total_messages.mean() ? "YES" : "NO")
            << "\n  ST cheaper than FST at N=" << f_last.n << ": "
            << (s_last.total_messages.mean() < f_last.total_messages.mean() ? "YES" : "NO")
            << "\n  first sweep point where ST wins: N="
            << (crossover_n == 0 ? std::string("none") : std::to_string(crossover_n))
            << " (paper: ~600)\n(CSV written to fig4_messages.csv)\n";
  return 0;
}
