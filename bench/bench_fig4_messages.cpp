// bench_fig4_messages — reproduces the paper's Fig. 4.
//
// "Comparison in average number exchange between existing FST method with
// proposed ST method at different scales."  The paper's claim: message
// counts grow for both methods with the node count; from mid scale
// (~600 nodes in the paper) the proposed ST method exchanges fewer messages
// to converge.
//
// Messages are counted at the radio medium — every RACH1/RACH2 broadcast by
// any device until the convergence instant — so every protocol on the axis
// (default FST + ST; override with FIREFLY_BENCH_PROTOCOLS) is measured by
// the same meter.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace firefly;
  using util::Table;

  bench::BenchJson json("fig4_messages", &argc, argv);

  const std::vector<core::Protocol> protocols =
      bench::bench_protocols({core::Protocol::kFst, core::Protocol::kSt});
  std::cout << "Reproducing Fig. 4: messages exchanged until convergence vs nodes\n"
            << "(Table I scenario, density-scaled area, "
            << bench::paper_sweep().trials << " seeds per point)\n";

  const std::vector<bench::ProtocolSeries> sweep = bench::run_paper_sweep(protocols);
  if (json) {
    json.write_meta(bench::paper_sweep(), protocols);
    for (const bench::ProtocolSeries& series : sweep) {
      json.write_series(series.protocol, series.points);
    }
  }

  Table table("Fig. 4 — average messages exchanged until convergence");
  table.set_headers({"protocol", "nodes", "total", "RACH1", "RACH2", "collisions"});
  for (const bench::ProtocolSeries& series : sweep) {
    for (const core::SweepPoint& point : series.points) {
      table.add_row({core::to_string(series.protocol), Table::num(point.n),
                     Table::num(point.total_messages.mean(), 0),
                     Table::num(point.rach1_messages.mean(), 0),
                     Table::num(point.rach2_messages.mean(), 0),
                     Table::num(point.collisions.mean(), 0)});
    }
  }
  table.print(std::cout);
  table.write_csv("fig4_messages.csv");

  // Shape verdicts — meaningful only with both sides of the figure's
  // FST-vs-ST comparison on the axis.
  const auto* fst = bench::find_series(sweep, core::Protocol::kFst);
  const auto* st = bench::find_series(sweep, core::Protocol::kSt);
  if (fst != nullptr && st != nullptr && !fst->empty() && fst->size() == st->size()) {
    std::size_t crossover_n = 0;
    for (std::size_t i = 0; i < fst->size(); ++i) {
      const double ratio = (*st)[i].total_messages.mean() > 0.0
                               ? (*fst)[i].total_messages.mean() /
                                     (*st)[i].total_messages.mean()
                               : 0.0;
      if (crossover_n == 0 && ratio > 1.0) crossover_n = (*fst)[i].n;
    }
    const auto& f_first = fst->front();
    const auto& f_last = fst->back();
    const auto& s_first = st->front();
    const auto& s_last = st->back();
    std::cout << "\nShape check (paper: both grow with N; ST more efficient from "
                 "mid scale on):\n"
              << "  FST messages grow with N: "
              << (f_last.total_messages.mean() > f_first.total_messages.mean() ? "YES"
                                                                               : "NO")
              << "\n  ST messages grow with N: "
              << (s_last.total_messages.mean() > s_first.total_messages.mean() ? "YES"
                                                                               : "NO")
              << "\n  ST cheaper than FST at N=" << f_last.n << ": "
              << (s_last.total_messages.mean() < f_last.total_messages.mean() ? "YES"
                                                                              : "NO")
              << "\n  first sweep point where ST wins: N="
              << (crossover_n == 0 ? std::string("none") : std::to_string(crossover_n))
              << " (paper: ~600)\n";
  }
  std::cout << "(CSV written to fig4_messages.csv)\n";
  return 0;
}
