// bench_common.hpp — shared helpers for the figure-reproduction benches.
//
// Each figure bench runs the protocol sweep the paper's Section V
// describes — device counts from 50 to 1000 at the Table I density, several
// Monte-Carlo seeds — and prints the series the figure plots.  Environment
// variables trim the sweep for quick runs:
//   FIREFLY_BENCH_TRIALS  (default 3)
//   FIREFLY_BENCH_MAX_N   (default 1000)
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace firefly::bench {

inline std::size_t env_or(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const auto parsed = std::strtoull(value, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

inline core::SweepConfig paper_sweep() {
  core::SweepConfig config;
  config.trials = env_or("FIREFLY_BENCH_TRIALS", 3);
  const std::size_t max_n = env_or("FIREFLY_BENCH_MAX_N", 1000);
  config.ns.clear();
  for (const std::size_t n : {50UL, 100UL, 200UL, 400UL, 600UL, 800UL, 1000UL}) {
    if (n <= max_n) config.ns.push_back(n);
  }
  config.base.area_policy = core::AreaPolicy::kDensityScaled;
  config.master_seed = 2015;  // the venue year; any fixed value works
  return config;
}

/// Runs both protocols over the paper sweep.
struct PaperSweepResult {
  std::vector<core::SweepPoint> fst;
  std::vector<core::SweepPoint> st;
};

inline PaperSweepResult run_paper_sweep() {
  const core::SweepConfig config = paper_sweep();
  PaperSweepResult result;
  result.fst = core::sweep(core::Protocol::kFst, config);
  result.st = core::sweep(core::Protocol::kSt, config);
  return result;
}

}  // namespace firefly::bench
