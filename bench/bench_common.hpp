// bench_common.hpp — shared helpers for the figure-reproduction benches.
//
// Each figure bench runs the protocol sweep the paper's Section V
// describes — device counts from 50 to 1000 at the Table I density, several
// Monte-Carlo seeds — and prints the series the figure plots.  Environment
// variables trim the sweep for quick runs:
//   FIREFLY_BENCH_TRIALS    (default 3)
//   FIREFLY_BENCH_MAX_N     (default 1000)
//   FIREFLY_BENCH_PROGRESS  (set to anything for a stderr ETA line)
//
// Every bench also emits a machine-readable JSONL snapshot when asked:
//   bench_fig3 --json fig3.json     # or FIREFLY_BENCH_JSON=fig3.json
// The first line is a meta record (schema, bench name, git sha, compiler,
// trial count); subsequent lines are data records.  Output is deterministic:
// rerunning the same binary with the same seeds produces a byte-identical
// file (wall-clock values are deliberately excluded).
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "obs/build_info.hpp"
#include "obs/json.hpp"
#include "obs/progress.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace firefly::bench {

/// Strict environment override: malformed or zero values are rejected with a
/// one-time stderr warning and the fallback is used (see util::env_size_t).
inline std::size_t env_or(const char* name, std::size_t fallback) {
  return util::env_size_t(name, fallback);
}

/// Machine-readable JSONL output for a bench binary.
///
/// Consumes `--json <path>` / `--json=<path>` from argv (compacting argc so
/// later argv consumers — e.g. google-benchmark — never see the flag) and
/// falls back to the FIREFLY_BENCH_JSON environment variable.  Disabled when
/// neither is given; all write_* calls are then no-ops.
class BenchJson {
 public:
  BenchJson(std::string bench, int* argc, char** argv) : bench_(std::move(bench)) {
    std::string path;
    int write = 1;
    for (int read = 1; read < *argc; ++read) {
      const std::string_view arg = argv[read];
      if (arg == "--json") {
        if (read + 1 >= *argc) {
          std::cerr << bench_ << ": --json requires a path argument\n";
          std::exit(2);
        }
        path = argv[++read];
        continue;
      }
      if (arg.rfind("--json=", 0) == 0) {
        path = std::string(arg.substr(7));
        continue;
      }
      argv[write++] = argv[read];
    }
    *argc = write;
    if (path.empty()) {
      if (const char* env = std::getenv("FIREFLY_BENCH_JSON")) path = env;
    }
    if (path.empty()) return;
    out_.open(path, std::ios::binary | std::ios::trunc);
    if (!out_) {
      std::cerr << bench_ << ": cannot open --json output '" << path << "'\n";
      std::exit(2);
    }
    path_ = std::move(path);
  }

  [[nodiscard]] explicit operator bool() const { return out_.is_open(); }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// First line of the file: schema + provenance (benches without a sweep).
  void write_meta() {
    if (!out_.is_open()) return;
    obs::JsonWriter w(out_);
    w.begin_object();
    w.field("schema", "firefly-bench-v1");
    w.field("bench", std::string_view(bench_));
    obs::write_build_info_fields(w);
    w.end_object();
    out_ << '\n';
  }

  /// First line of the file: schema + provenance + sweep shape.
  void write_meta(const core::SweepConfig& config) {
    if (!out_.is_open()) return;
    obs::JsonWriter w(out_);
    w.begin_object();
    w.field("schema", "firefly-bench-v1");
    w.field("bench", std::string_view(bench_));
    obs::write_build_info_fields(w);
    w.field("trials", static_cast<std::uint64_t>(config.trials));
    w.field("master_seed", config.master_seed);
    w.key("ns").begin_array();
    for (const std::size_t n : config.ns) w.value(static_cast<std::uint64_t>(n));
    w.end_array();
    w.end_object();
    out_ << '\n';
  }

  /// One JSONL record per sweep point.
  void write_series(core::Protocol protocol, const std::vector<core::SweepPoint>& points) {
    if (!out_.is_open()) return;
    for (const core::SweepPoint& point : points) {
      obs::JsonWriter w(out_);
      core::write_sweep_point_json(w, point, protocol, bench_.c_str());
      out_ << '\n';
    }
  }

  /// One JSONL record per table row:
  /// {"bench":..,"series":..,"columns":[headers],"cells":[row]}.
  /// The stringly-typed mirror of the printed table — useful for diffing and
  /// regression tracking without re-deriving the bench's own aggregation.
  void write_table(const util::Table& table, std::string_view series) {
    if (!out_.is_open()) return;
    for (const std::vector<std::string>& row : table.row_data()) {
      obs::JsonWriter w(out_);
      w.begin_object();
      w.field("bench", std::string_view(bench_));
      w.field("series", series);
      w.key("columns").begin_array();
      for (const std::string& h : table.headers()) w.value(std::string_view(h));
      w.end_array();
      w.key("cells").begin_array();
      for (const std::string& c : row) w.value(std::string_view(c));
      w.end_array();
      w.end_object();
      out_ << '\n';
    }
  }

  /// Free-form record: {"bench":...,<caller fields>}.  The callback receives
  /// the writer with the object already open.
  template <typename Fn>
  void write_object(Fn&& fn) {
    if (!out_.is_open()) return;
    obs::JsonWriter w(out_);
    w.begin_object();
    w.field("bench", std::string_view(bench_));
    fn(w);
    w.end_object();
    out_ << '\n';
  }

 private:
  std::string bench_;
  std::string path_;
  std::ofstream out_;
};

inline core::SweepConfig paper_sweep() {
  core::SweepConfig config;
  config.trials = env_or("FIREFLY_BENCH_TRIALS", 3);
  const std::size_t max_n = env_or("FIREFLY_BENCH_MAX_N", 1000);
  config.ns.clear();
  for (const std::size_t n : {50UL, 100UL, 200UL, 400UL, 600UL, 800UL, 1000UL}) {
    if (n <= max_n) config.ns.push_back(n);
  }
  config.base.area_policy = core::AreaPolicy::kDensityScaled;
  config.master_seed = 2015;  // the venue year; any fixed value works
  return config;
}

/// Runs both protocols over the paper sweep.
struct PaperSweepResult {
  std::vector<core::SweepPoint> fst;
  std::vector<core::SweepPoint> st;
};

inline PaperSweepResult run_paper_sweep() {
  core::SweepConfig config = paper_sweep();
  std::optional<obs::ProgressReporter> progress;
  if (std::getenv("FIREFLY_BENCH_PROGRESS") != nullptr) {
    progress.emplace("sweep", 2 * config.total_trials());
    config.hooks.progress = &*progress;
  }
  PaperSweepResult result;
  result.fst = core::sweep(core::Protocol::kFst, config);
  result.st = core::sweep(core::Protocol::kSt, config);
  if (progress) progress->finish();
  return result;
}

}  // namespace firefly::bench
