// bench_common.hpp — shared helpers for the figure-reproduction benches.
//
// Each figure bench runs the protocol sweep the paper's Section V
// describes — device counts from 50 to 1000 at the Table I density, several
// Monte-Carlo seeds — and prints the series the figure plots.  Environment
// variables trim the sweep for quick runs:
//   FIREFLY_BENCH_TRIALS     (default 3)
//   FIREFLY_BENCH_MAX_N      (default 1000)
//   FIREFLY_BENCH_PROGRESS   (set to anything for a stderr ETA line)
//   FIREFLY_BENCH_PROTOCOLS  (comma-separated registry names, or "all":
//                            override the bench's default protocol axis;
//                            unknown names abort — see bench_protocols)
//
// Every bench also emits a machine-readable JSONL snapshot when asked:
//   bench_fig3 --json fig3.json     # or FIREFLY_BENCH_JSON=fig3.json
// The first line is a meta record (schema, bench name, git sha, compiler,
// trial count); subsequent lines are data records.  Output is deterministic:
// rerunning the same binary with the same seeds produces a byte-identical
// file (wall-clock values are deliberately excluded).
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "obs/build_info.hpp"
#include "obs/json.hpp"
#include "obs/progress.hpp"
#include "proto/registry.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace firefly::bench {

/// Strict environment override: malformed or zero values are rejected with a
/// one-time stderr warning and the fallback is used (see util::env_size_t).
inline std::size_t env_or(const char* name, std::size_t fallback) {
  return util::env_size_t(name, fallback);
}

/// The protocol axis of a bench: the bench's own default set, overridden by
/// FIREFLY_BENCH_PROTOCOLS — a comma-separated list of registry names, or
/// "all" for every registered backend.  Unknown names abort with the
/// registered list (a typo must not silently bench the defaults).
inline std::vector<core::Protocol> bench_protocols(
    std::initializer_list<core::Protocol> fallback) {
  const proto::Registry& registry = proto::Registry::instance();
  const char* env = std::getenv("FIREFLY_BENCH_PROTOCOLS");
  if (env == nullptr || *env == '\0') return std::vector<core::Protocol>(fallback);
  std::vector<core::Protocol> selected;
  std::string_view list(env);
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    const std::string_view name = list.substr(0, comma);
    list = comma == std::string_view::npos ? std::string_view() : list.substr(comma + 1);
    if (name.empty()) continue;
    if (name == "all") {
      selected.clear();
      for (const std::string& registered : registry.names()) {
        selected.push_back(registry.find(registered)->id);
      }
      return selected;
    }
    const proto::ProtocolInfo* info = registry.find(name);
    if (info == nullptr) {
      std::cerr << "FIREFLY_BENCH_PROTOCOLS: unknown protocol '" << name
                << "' (registered:";
      for (const std::string& registered : registry.names()) std::cerr << ' ' << registered;
      std::cerr << "; or \"all\")\n";
      std::exit(2);
    }
    selected.push_back(info->id);
  }
  if (selected.empty()) return std::vector<core::Protocol>(fallback);
  return selected;
}

/// Machine-readable JSONL output for a bench binary.
///
/// Consumes `--json <path>` / `--json=<path>` from argv (compacting argc so
/// later argv consumers — e.g. google-benchmark — never see the flag) and
/// falls back to the FIREFLY_BENCH_JSON environment variable.  Disabled when
/// neither is given; all write_* calls are then no-ops.
class BenchJson {
 public:
  BenchJson(std::string bench, int* argc, char** argv) : bench_(std::move(bench)) {
    std::string path;
    int write = 1;
    for (int read = 1; read < *argc; ++read) {
      const std::string_view arg = argv[read];
      if (arg == "--json") {
        if (read + 1 >= *argc) {
          std::cerr << bench_ << ": --json requires a path argument\n";
          std::exit(2);
        }
        path = argv[++read];
        continue;
      }
      if (arg.rfind("--json=", 0) == 0) {
        path = std::string(arg.substr(7));
        continue;
      }
      argv[write++] = argv[read];
    }
    *argc = write;
    if (path.empty()) {
      if (const char* env = std::getenv("FIREFLY_BENCH_JSON")) path = env;
    }
    if (path.empty()) return;
    out_.open(path, std::ios::binary | std::ios::trunc);
    if (!out_) {
      std::cerr << bench_ << ": cannot open --json output '" << path << "'\n";
      std::exit(2);
    }
    path_ = std::move(path);
  }

  [[nodiscard]] explicit operator bool() const { return out_.is_open(); }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// First line of the file: schema + provenance (benches without a sweep).
  /// Overloads append the sweep shape and/or the protocol axis (display
  /// ids, the values the records' "protocol" fields draw from).
  void write_meta() { write_meta_impl(nullptr, nullptr); }
  void write_meta(const std::vector<core::Protocol>& protocols) {
    write_meta_impl(nullptr, &protocols);
  }
  void write_meta(const core::SweepConfig& config) { write_meta_impl(&config, nullptr); }
  void write_meta(const core::SweepConfig& config,
                  const std::vector<core::Protocol>& protocols) {
    write_meta_impl(&config, &protocols);
  }

  /// One JSONL record per sweep point.
  void write_series(core::Protocol protocol, const std::vector<core::SweepPoint>& points) {
    if (!out_.is_open()) return;
    for (const core::SweepPoint& point : points) {
      obs::JsonWriter w(out_);
      core::write_sweep_point_json(w, point, protocol, bench_.c_str());
      out_ << '\n';
    }
  }

  /// One JSONL record per table row:
  /// {"bench":..,"series":..,"columns":[headers],"cells":[row]}.
  /// The stringly-typed mirror of the printed table — useful for diffing and
  /// regression tracking without re-deriving the bench's own aggregation.
  void write_table(const util::Table& table, std::string_view series) {
    if (!out_.is_open()) return;
    for (const std::vector<std::string>& row : table.row_data()) {
      obs::JsonWriter w(out_);
      w.begin_object();
      w.field("bench", std::string_view(bench_));
      w.field("series", series);
      w.key("columns").begin_array();
      for (const std::string& h : table.headers()) w.value(std::string_view(h));
      w.end_array();
      w.key("cells").begin_array();
      for (const std::string& c : row) w.value(std::string_view(c));
      w.end_array();
      w.end_object();
      out_ << '\n';
    }
  }

  /// Free-form record: {"bench":...,<caller fields>}.  The callback receives
  /// the writer with the object already open.
  template <typename Fn>
  void write_object(Fn&& fn) {
    if (!out_.is_open()) return;
    obs::JsonWriter w(out_);
    w.begin_object();
    w.field("bench", std::string_view(bench_));
    fn(w);
    w.end_object();
    out_ << '\n';
  }

 private:
  void write_meta_impl(const core::SweepConfig* config,
                       const std::vector<core::Protocol>* protocols) {
    if (!out_.is_open()) return;
    obs::JsonWriter w(out_);
    w.begin_object();
    w.field("schema", "firefly-bench-v1");
    w.field("bench", std::string_view(bench_));
    obs::write_build_info_fields(w);
    if (config != nullptr) {
      w.field("trials", static_cast<std::uint64_t>(config->trials));
      w.field("master_seed", config->master_seed);
      w.key("ns").begin_array();
      for (const std::size_t n : config->ns) w.value(static_cast<std::uint64_t>(n));
      w.end_array();
    }
    if (protocols != nullptr) {
      w.key("protocols").begin_array();
      for (const core::Protocol p : *protocols) w.value(core::to_string(p));
      w.end_array();
    }
    w.end_object();
    out_ << '\n';
  }

  std::string bench_;
  std::string path_;
  std::ofstream out_;
};

inline core::SweepConfig paper_sweep() {
  core::SweepConfig config;
  config.trials = env_or("FIREFLY_BENCH_TRIALS", 3);
  const std::size_t max_n = env_or("FIREFLY_BENCH_MAX_N", 1000);
  config.ns.clear();
  for (const std::size_t n : {50UL, 100UL, 200UL, 400UL, 600UL, 800UL, 1000UL}) {
    if (n <= max_n) config.ns.push_back(n);
  }
  config.base.area_policy = core::AreaPolicy::kDensityScaled;
  config.master_seed = 2015;  // the venue year; any fixed value works
  return config;
}

/// One protocol's series over a sweep — the unit of the generic axis.
struct ProtocolSeries {
  core::Protocol protocol;
  std::vector<core::SweepPoint> points;
};

/// Runs each protocol of the axis over the paper sweep, in axis order.
inline std::vector<ProtocolSeries> run_paper_sweep(
    const std::vector<core::Protocol>& protocols) {
  core::SweepConfig config = paper_sweep();
  std::optional<obs::ProgressReporter> progress;
  if (std::getenv("FIREFLY_BENCH_PROGRESS") != nullptr) {
    progress.emplace("sweep", protocols.size() * config.total_trials());
    config.hooks.progress = &*progress;
  }
  std::vector<ProtocolSeries> result;
  result.reserve(protocols.size());
  for (const core::Protocol protocol : protocols) {
    result.push_back({protocol, core::sweep(protocol, config)});
  }
  if (progress) progress->finish();
  return result;
}

/// The series of one protocol within a sweep result; nullptr when the axis
/// did not include it (benches print comparison tables only when both
/// sides ran).
inline const std::vector<core::SweepPoint>* find_series(
    const std::vector<ProtocolSeries>& sweep, core::Protocol protocol) {
  for (const ProtocolSeries& series : sweep)
    if (series.protocol == protocol) return &series.points;
  return nullptr;
}

}  // namespace firefly::bench
