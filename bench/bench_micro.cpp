// bench_micro — engine-cost microbenchmarks: the event queue, union-find,
// reference MSTs, PRC evaluation, oscillator updates, a radio slot flush
// and one end-to-end trial per registered protocol backend (the registry
// sweep is assembled at startup, so a newly registered protocol shows up
// here without editing this file).  These pin the constants behind the
// protocol-level numbers and catch performance regressions in the
// substrates.
//
// Machine-readable output: this bench is pure google-benchmark, so it keeps
// the native reporter (`--benchmark_format=json --benchmark_out=...`) rather
// than the firefly-bench-v1 JSONL the figure benches emit — wall-clock
// timings are inherently non-deterministic, so byte-identical reruns are
// not a goal here.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/scenario.hpp"
#include "graph/boruvka.hpp"
#include "graph/mst.hpp"
#include "graph/union_find.hpp"
#include "mac/radio.hpp"
#include "pco/oscillator.hpp"
#include "pco/prc.hpp"
#include "phy/channel.hpp"
#include "proto/registry.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/slot_calendar.hpp"
#include "util/rng.hpp"

namespace {

using namespace firefly;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<std::int64_t> times(n);
  for (auto& t : times) t = static_cast<std::int64_t>(rng.uniform_index(1'000'000));
  for (auto _ : state) {
    sim::EventQueue q;
    for (const auto t : times) q.schedule(sim::SimTime::microseconds(t), [] {});
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(16384);

void BM_SlotCalendarScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<std::int64_t> times(n);
  for (auto& t : times) t = static_cast<std::int64_t>(rng.uniform_index(1'000'000));
  for (auto _ : state) {
    sim::SlotCalendar q;
    for (const auto t : times) q.schedule(sim::SimTime::microseconds(t), [] {});
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_SlotCalendarScheduleAndPop)->Arg(1024)->Arg(16384);

// The engine's dominant scheduling pattern: N pending fire events, each pop
// reschedules one period (100 slots) ahead, with periodic cancel+reschedule
// standing in for pulse-coupling absorption.  Run against both schedulers.
template <typename Queue>
void period_reschedule_pattern(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::int64_t kPeriodMs = 100;
  for (auto _ : state) {
    Queue q;
    std::vector<sim::EventId> ids(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids[i] = q.schedule(sim::SimTime::milliseconds(static_cast<std::int64_t>(i % 100)),
                          [] {});
    }
    std::size_t victim = 0;
    for (int step = 0; step < 20000; ++step) {
      auto fired = q.pop();
      q.schedule(fired.time + sim::SimTime::milliseconds(kPeriodMs), [] {});
      if ((step & 3) == 0) {
        // Absorption: cancel a tracked event and re-arm it one period out.
        if (q.cancel(ids[victim])) {
          ids[victim] =
              q.schedule(fired.time + sim::SimTime::milliseconds(kPeriodMs), [] {});
        }
        victim = (victim + 1) % n;
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 20000);
}

void BM_WheelPeriodReschedule(benchmark::State& state) {
  period_reschedule_pattern<sim::SlotCalendar>(state);
}
BENCHMARK(BM_WheelPeriodReschedule)->Arg(256)->Arg(2048);

void BM_HeapPeriodReschedule(benchmark::State& state) {
  period_reschedule_pattern<sim::EventQueue>(state);
}
BENCHMARK(BM_HeapPeriodReschedule)->Arg(256)->Arg(2048);

void BM_SimulatorPeriodicTimers(benchmark::State& state) {
  const auto timers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t fires = 0;
    for (std::size_t i = 0; i < timers; ++i) {
      sim.schedule_periodic(sim::SimTime::milliseconds(static_cast<std::int64_t>(i % 7)),
                            sim::SimTime::milliseconds(5), [&fires] { ++fires; });
    }
    sim.run_until(sim::SimTime::milliseconds(200));
    benchmark::DoNotOptimize(fires);
  }
}
BENCHMARK(BM_SimulatorPeriodicTimers)->Arg(64)->Arg(512);

void BM_UnionFind(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs(4 * n);
  for (auto& p : pairs) {
    p = {static_cast<std::uint32_t>(rng.uniform_index(n)),
         static_cast<std::uint32_t>(rng.uniform_index(n))};
  }
  for (auto _ : state) {
    graph::UnionFind uf(n);
    for (const auto& [a, b] : pairs) {
      if (a != b) benchmark::DoNotOptimize(uf.unite(a, b));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * pairs.size()));
}
BENCHMARK(BM_UnionFind)->Arg(1024)->Arg(65536);

graph::Graph random_graph(std::size_t n, std::size_t extra_per_node) {
  util::Rng rng(3);
  graph::Graph g(n);
  for (std::uint32_t v = 1; v < n; ++v) g.add_edge(v - 1, v, rng.uniform());
  for (std::size_t i = 0; i < n * extra_per_node; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.uniform_index(n));
    const auto v = static_cast<std::uint32_t>(rng.uniform_index(n));
    if (u != v) g.add_edge(u, v, rng.uniform());
  }
  return g;
}

void BM_Kruskal(benchmark::State& state) {
  const graph::Graph g = random_graph(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) benchmark::DoNotOptimize(graph::kruskal(g));
}
BENCHMARK(BM_Kruskal)->Arg(256)->Arg(4096);

void BM_Prim(benchmark::State& state) {
  const graph::Graph g = random_graph(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) benchmark::DoNotOptimize(graph::prim(g));
}
BENCHMARK(BM_Prim)->Arg(256)->Arg(4096);

void BM_Boruvka(benchmark::State& state) {
  const graph::Graph g = random_graph(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) benchmark::DoNotOptimize(graph::boruvka(g));
}
BENCHMARK(BM_Boruvka)->Arg(256)->Arg(4096);

void BM_PrcEvaluation(benchmark::State& state) {
  const pco::PrcParams prc{3.0, 0.05};
  double theta = 0.1;
  for (auto _ : state) {
    theta = pco::apply_prc(theta, prc);
    if (theta >= 1.0) theta = 0.013;
    benchmark::DoNotOptimize(theta);
  }
}
BENCHMARK(BM_PrcEvaluation);

void BM_SlotOscillatorCycle(benchmark::State& state) {
  pco::SlotOscillator osc(100, pco::PrcParams{3.0, 0.05});
  for (auto _ : state) {
    if (osc.tick()) osc.on_fired();
    benchmark::DoNotOptimize(osc.counter());
  }
}
BENCHMARK(BM_SlotOscillatorCycle);

void BM_RadioSlotFlush(benchmark::State& state) {
  // One slot with `txs` simultaneous broadcasts into a 200-device network:
  // the protocol hot path.
  const auto txs = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  auto channel = phy::make_paper_channel(4);
  mac::RadioMedium radio(&sim, channel.get());
  util::Rng rng(5);
  const std::size_t n = 200;
  for (std::uint32_t id = 0; id < n; ++id) {
    radio.add_device(id, {rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)});
  }
  radio.rebuild();
  std::uint64_t slot = 1;
  for (auto _ : state) {
    for (std::size_t i = 0; i < txs; ++i) {
      radio.broadcast(static_cast<std::uint32_t>(i % n),
                      {mac::RachCodec::kRach1,
                       static_cast<std::uint32_t>(rng.uniform_index(64))},
                      mac::PsType::kSyncPulse, 0);
    }
    sim.run_until(sim::SimTime::milliseconds(static_cast<std::int64_t>(slot)));
    ++slot;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * txs));
}
BENCHMARK(BM_RadioSlotFlush)->Arg(1)->Arg(16)->Arg(128);

void BM_RadioBatchedDeliverySweep(benchmark::State& state) {
  // The batched SoA delivery path at scale: a 1000-device network, `txs`
  // broadcasts per slot, no faults/duty/downs so the one-fill-per-sender
  // sweep is active.  Compare against BM_RadioSlotFlush for the small-N
  // constant.
  const auto txs = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  auto channel = phy::make_paper_channel(6);
  mac::RadioMedium radio(&sim, channel.get());
  util::Rng rng(7);
  const std::size_t n = 1000;
  for (std::uint32_t id = 0; id < n; ++id) {
    radio.add_device(id, {rng.uniform(0.0, 450.0), rng.uniform(0.0, 450.0)});
  }
  radio.rebuild();
  std::uint64_t slot = 1;
  for (auto _ : state) {
    for (std::size_t i = 0; i < txs; ++i) {
      radio.broadcast(static_cast<std::uint32_t>((i * 37) % n),
                      {mac::RachCodec::kRach1,
                       static_cast<std::uint32_t>(rng.uniform_index(64))},
                      mac::PsType::kSyncPulse, 0);
    }
    sim.run_until(sim::SimTime::milliseconds(static_cast<std::int64_t>(slot)));
    ++slot;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * txs));
}
BENCHMARK(BM_RadioBatchedDeliverySweep)->Arg(32)->Arg(256);

// The callback sweep head-to-head: one full trial per device core.  kStruct
// keeps the PR-5-faithful reference leg (per-record type-erased dispatch over
// the fat Device structs); kSoa sweeps the same batches over DeviceHot's flat
// arrays with in-sweep neighbour-table prefetch.  The ratio between the two
// is the microbenchmark view of BENCH_PR9.json's callback_sweep records.
void BM_CallbackSweep(benchmark::State& state, core::DeviceCore device_core) {
  for (auto _ : state) {
    core::ScenarioConfig config;
    config.n = 200;
    config.seed = 21;
    config.area_policy = core::AreaPolicy::kFixed;
    config.protocol.max_periods = 60;
    config.protocol.stop_on_convergence = false;
    config.protocol.device_core = device_core;
    std::unique_ptr<core::EngineBase> engine = proto::Registry::instance().make(
        "fst", core::deploy(config), config.protocol, config.radio, config.seed);
    benchmark::DoNotOptimize(engine->run());
  }
}
BENCHMARK_CAPTURE(BM_CallbackSweep, struct_core, core::DeviceCore::kStruct);
BENCHMARK_CAPTURE(BM_CallbackSweep, soa_core, core::DeviceCore::kSoa);

// One full small-network trial through the registry — the cost of a
// protocol end to end (build, run to its own completion criterion or the
// horizon), per registered backend.  Registered dynamically in main() from
// proto::Registry::names().
void BM_ProtocolTrial(benchmark::State& state, const std::string& name) {
  for (auto _ : state) {
    core::ScenarioConfig config;
    config.n = 30;
    config.seed = 11;
    config.area_policy = core::AreaPolicy::kFixed;
    config.protocol.max_periods = 200;
    std::unique_ptr<core::EngineBase> engine = proto::Registry::instance().make(
        name, core::deploy(config), config.protocol, config.radio, config.seed);
    benchmark::DoNotOptimize(engine->run());
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& name : proto::Registry::instance().names()) {
    const std::string label = "BM_ProtocolTrial/" + name;
    benchmark::RegisterBenchmark(label.c_str(), BM_ProtocolTrial, name);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
