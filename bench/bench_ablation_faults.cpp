// bench_ablation_faults — resilience curves for the fault-injection
// subsystem: how gracefully the protocols on the axis (default ST and the
// FST baseline; override with FIREFLY_BENCH_PROTOCOLS) degrade under node
// churn, oscillator drift and i.i.d. packet loss, each swept separately so
// the degradation observables (re-convergence, sync uptime, resync time,
// repair traffic) attribute to one fault class at a time.
//
// Churn runs use a quiet tail (churn stops at 60% of the horizon) so the
// bench answers the recovery question — does the protocol re-converge once
// the faults stop? — rather than the unanswerable one of converging while
// devices keep dying.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/scenario.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace firefly;

struct Cell {
  int trials = 0;
  int converged = 0;
  int partitioned = 0;
  double uptime_sum = 0.0;
  double resync_sum = 0.0;
  std::uint64_t repair_sum = 0;
  std::uint64_t drops_sum = 0;
  double crashes_sum = 0.0;
};

core::ScenarioConfig base_config(std::uint64_t seed) {
  core::ScenarioConfig config;
  config.n = 30;
  config.seed = seed;
  config.area_policy = core::AreaPolicy::kFixed;
  config.protocol.max_periods = 250;
  return config;
}

Cell run_cell(core::Protocol protocol, const std::vector<core::ScenarioConfig>& configs,
              util::ThreadPool& pool) {
  std::vector<core::RunMetrics> results(configs.size());
  pool.parallel_for(configs.size(), [&](std::size_t i) {
    results[i] = core::run_trial(protocol, configs[i]);
  });
  Cell cell;
  for (const core::RunMetrics& m : results) {
    ++cell.trials;
    if (m.converged) ++cell.converged;
    if (m.partitioned) ++cell.partitioned;
    cell.uptime_sum += m.sync_uptime;
    cell.resync_sum += m.mean_resync_ms;
    cell.repair_sum += m.repair_messages;
    cell.drops_sum += m.fault_drops;
    cell.crashes_sum += m.crashes;
  }
  return cell;
}

std::string frac(int num, int den) {
  return util::Table::num(static_cast<std::size_t>(num)) + "/" +
         util::Table::num(static_cast<std::size_t>(den));
}

void add_rows(util::Table& table, const std::string& level,
              const std::vector<core::Protocol>& protocols,
              const std::vector<core::ScenarioConfig>& configs, util::ThreadPool& pool) {
  for (const core::Protocol protocol : protocols) {
    const Cell c = run_cell(protocol, configs, pool);
    table.add_row({level, core::to_string(protocol), frac(c.converged, c.trials),
                   util::Table::num(c.uptime_sum / c.trials, 3),
                   util::Table::num(c.resync_sum / c.trials, 0),
                   util::Table::num(static_cast<std::size_t>(c.repair_sum / c.trials)),
                   util::Table::num(c.crashes_sum / c.trials, 1),
                   util::Table::num(static_cast<std::size_t>(c.drops_sum / c.trials)),
                   frac(c.partitioned, c.trials)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson json("ablation_faults", &argc, argv);
  const std::vector<core::Protocol> protocols =
      bench::bench_protocols({core::Protocol::kSt, core::Protocol::kFst});
  json.write_meta(protocols);

  const std::size_t trials = bench::env_or("FIREFLY_BENCH_TRIALS", 3);
  std::cout << "Fault-resilience ablation: 30 devices, Table I box, " << trials
            << " seeds/point\n";
  util::ThreadPool pool;

  util::Table table("Degradation under churn / drift / packet loss (quiet-tail recovery)");
  table.set_headers({"fault level", "proto", "reconverged", "sync uptime",
                     "mean resync (ms)", "repair msgs", "crashes", "fault drops",
                     "partitioned"});

  auto cell_configs = [&](auto mutate) {
    std::vector<core::ScenarioConfig> configs;
    for (std::size_t t = 0; t < trials; ++t) {
      core::ScenarioConfig config = base_config(500 + t);
      mutate(config.protocol.faults, config);
      configs.push_back(config);
    }
    return configs;
  };

  // --- node churn (crash/recover), stopping at 60% of the horizon ---
  for (const double rate : {5.0, 15.0, 30.0, 60.0}) {
    const auto configs = cell_configs([rate](fault::FaultPlan& plan,
                                             const core::ScenarioConfig& config) {
      plan.churn_rate_per_min = rate;
      plan.mean_downtime_ms = 2'000.0;
      plan.churn_stop_ms = 0.6 * static_cast<double>(config.protocol.max_slots());
    });
    add_rows(table, "churn " + util::Table::num(rate, 0) + "/min", protocols, configs,
             pool);
  }

  // --- oscillator drift ---
  for (const double ppm : {50.0, 200.0, 500.0}) {
    const auto configs = cell_configs(
        [ppm](fault::FaultPlan& plan, const core::ScenarioConfig&) {
          plan.drift_max_ppm = ppm;
        });
    add_rows(table, "drift " + util::Table::num(ppm, 0) + " ppm", protocols, configs,
             pool);
  }

  // --- i.i.d. packet loss ---
  for (const double p : {0.05, 0.15, 0.30}) {
    const auto configs = cell_configs(
        [p](fault::FaultPlan& plan, const core::ScenarioConfig&) {
          plan.drop_probability = p;
        });
    add_rows(table, "drop " + util::Table::num(100.0 * p, 0) + "%", protocols, configs,
             pool);
  }

  // --- deep fades ---
  for (const double rate : {20.0, 60.0}) {
    const auto configs = cell_configs(
        [rate](fault::FaultPlan& plan, const core::ScenarioConfig&) {
          plan.fade_rate_per_min = rate;
          plan.fade_mean_duration_ms = 500.0;
        });
    add_rows(table, "fades " + util::Table::num(rate, 0) + "/min", protocols, configs,
             pool);
  }

  table.print(std::cout);
  table.write_csv("ablation_faults.csv");
  json.write_table(table, "faults");

  std::cout << "\nReading: ST re-converges after churn at every swept rate once the\n"
               "churn stops — the head lease re-elects around crashed heads and\n"
               "recovered devices re-join as fresh singletons — at the cost of\n"
               "repair RACH2 traffic that grows with the churn rate.  FST has no\n"
               "structure to repair (any neighbour's pulse re-entrains it) but\n"
               "also nothing to show for the faults but lower sync uptime.  Drift\n"
               "is absorbed up to hundreds of ppm by the periodic sync floods;\n"
               "i.i.d. loss mostly stretches convergence time.  (CSV written to\n"
               "ablation_faults.csv)\n";
  return 0;
}
