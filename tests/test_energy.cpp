// Tests for the energy meter (src/phy/energy.hpp) and its protocol
// integration.
#include "phy/energy.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"

namespace {

using firefly::phy::EnergyMeter;
using firefly::phy::EnergyParams;

TEST(EnergyMeter, IdleOnlyDevice) {
  EnergyMeter meter(2);
  // 1000 slots of pure idle at 10 mW, 1 ms each = 10 mJ.
  EXPECT_NEAR(meter.device_energy_mj(0, 1000), 10.0, 1e-9);
}

TEST(EnergyMeter, ActivityCharges) {
  EnergyParams params;
  params.tx_mw = 700.0;
  params.rx_mw = 300.0;
  params.idle_mw = 10.0;
  EnergyMeter meter(1, params);
  for (int i = 0; i < 5; ++i) meter.record_tx(0);
  for (int i = 0; i < 20; ++i) meter.record_rx(0);
  // 5 tx + 20 rx + 75 idle slots over 100 slots.
  const double expected = (5 * 700.0 + 20 * 300.0 + 75 * 10.0) * 1e-3;
  EXPECT_NEAR(meter.device_energy_mj(0, 100), expected, 1e-9);
  EXPECT_EQ(meter.tx_slots(0), 5U);
  EXPECT_EQ(meter.rx_slots(0), 20U);
}

TEST(EnergyMeter, BusySlotsNeverGoNegative) {
  EnergyMeter meter(1);
  for (int i = 0; i < 50; ++i) meter.record_rx(0);
  // More activity than elapsed slots: idle clamps at zero.
  const double expected = 50 * 300.0 * 1e-3;
  EXPECT_NEAR(meter.device_energy_mj(0, 10), expected, 1e-9);
}

TEST(EnergyMeter, TotalsAndMeans) {
  EnergyMeter meter(4);
  meter.record_tx(1);
  meter.record_rx(2);
  const double total = meter.total_energy_mj(100);
  EXPECT_NEAR(meter.mean_energy_mj(100), total / 4.0, 1e-12);
  EXPECT_GT(total, 4 * 100 * 10.0 * 1e-3 - 1e-9);  // at least the idle floor
}

TEST(EnergyMeter, CustomSlotLength) {
  EnergyParams params;
  params.slot_seconds = 0.5e-3;  // short TTI
  EnergyMeter meter(1, params);
  EXPECT_NEAR(meter.device_energy_mj(0, 1000), 0.5 * 10.0, 1e-9);
}

TEST(EnergyIntegration, ProtocolsReportEnergy) {
  firefly::core::ScenarioConfig config;
  config.n = 25;
  config.seed = 5;
  config.area_policy = firefly::core::AreaPolicy::kFixed;
  for (const auto protocol :
       {firefly::core::Protocol::kFst, firefly::core::Protocol::kSt}) {
    const auto m = firefly::core::run_trial(protocol, config);
    ASSERT_TRUE(m.converged);
    EXPECT_GT(m.total_energy_mj, 0.0);
    EXPECT_NEAR(m.mean_device_energy_mj, m.total_energy_mj / 25.0, 1e-9);
    EXPECT_GT(m.energy_per_neighbor_mj, 0.0);
    // Energy must be at least the idle floor over the simulated span.
    const double idle_floor = m.simulated_ms * 10.0 * 1e-3;
    EXPECT_GE(m.mean_device_energy_mj, idle_floor - 1e-6);
  }
}

TEST(EnergyIntegration, EnergyCrossoverAtScale) {
  // Below the crossover ST spends more energy (its spread-out discovery
  // beacons and sync floods are all *decoded*, and decoding costs energy,
  // while most of FST's synchronised beacons collide and are never
  // decoded).  At scale FST's ever-longer convergence dominates and ST
  // wins.  Pin both ends of that story.
  firefly::core::ScenarioConfig config;
  config.seed = 3;
  config.area_policy = firefly::core::AreaPolicy::kDensityScaled;

  config.n = 150;
  const auto fst_small = firefly::core::run_trial(firefly::core::Protocol::kFst, config);
  const auto st_small = firefly::core::run_trial(firefly::core::Protocol::kSt, config);
  ASSERT_TRUE(fst_small.converged);
  ASSERT_TRUE(st_small.converged);
  EXPECT_LT(fst_small.mean_device_energy_mj, st_small.mean_device_energy_mj);

  config.n = 600;
  const auto fst_large = firefly::core::run_trial(firefly::core::Protocol::kFst, config);
  const auto st_large = firefly::core::run_trial(firefly::core::Protocol::kSt, config);
  ASSERT_TRUE(fst_large.converged);
  ASSERT_TRUE(st_large.converged);
  EXPECT_GT(fst_large.convergence_ms, st_large.convergence_ms);
  // The robust shape claim: FST's relative energy cost grows with scale
  // (the absolute crossover point wanders with seeds and capture physics).
  const double ratio_small = fst_small.mean_device_energy_mj / st_small.mean_device_energy_mj;
  const double ratio_large = fst_large.mean_device_energy_mj / st_large.mean_device_energy_mj;
  EXPECT_GT(ratio_large, ratio_small);
}

}  // namespace
