// Tests for message-counting distributed Borůvka (src/graph/boruvka.hpp).
#include "graph/boruvka.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/mst.hpp"
#include "util/rng.hpp"

namespace {

using namespace firefly::graph;

Graph random_connected_graph(std::size_t n, firefly::util::Rng& rng) {
  Graph g(n);
  // Random spanning chain guarantees connectivity, plus random extras.
  for (std::uint32_t v = 1; v < n; ++v) {
    g.add_edge(v - 1, v, rng.uniform(1.0, 100.0));
  }
  const std::size_t extras = n * 2;
  for (std::size_t i = 0; i < extras; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.uniform_index(n));
    const auto v = static_cast<std::uint32_t>(rng.uniform_index(n));
    if (u != v) g.add_edge(u, v, rng.uniform(1.0, 100.0));
  }
  return g;
}

TEST(Boruvka, MatchesKruskalWeight) {
  firefly::util::Rng rng(21);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = random_connected_graph(60, rng);
    const BoruvkaResult b = boruvka(g);
    const MstResult k = kruskal(g);
    EXPECT_TRUE(b.tree.spanning);
    EXPECT_NEAR(b.tree.total_weight, k.total_weight, 1e-9) << "trial " << trial;
    EXPECT_TRUE(is_spanning_tree(g.vertex_count(), b.tree.edges));
  }
}

TEST(Boruvka, MaxOrientationMatchesKruskalMax) {
  firefly::util::Rng rng(22);
  Graph g = random_connected_graph(50, rng);
  const BoruvkaResult b = boruvka(g, Orientation::kMax);
  const MstResult k = kruskal(g, Orientation::kMax);
  EXPECT_NEAR(b.tree.total_weight, k.total_weight, 1e-9);
}

TEST(Boruvka, RoundsAreLogarithmic) {
  // Fragments at least halve per round: rounds <= ceil(log2 n).
  firefly::util::Rng rng(23);
  for (const std::size_t n : {16UL, 64UL, 256UL, 1024UL}) {
    Graph g = random_connected_graph(n, rng);
    const BoruvkaResult b = boruvka(g);
    EXPECT_LE(b.rounds, static_cast<std::size_t>(std::ceil(std::log2(n))) + 1)
        << "n=" << n;
  }
}

TEST(Boruvka, MessageCountIsNLogNish) {
  // ~n messages per round, log n rounds.
  firefly::util::Rng rng(24);
  for (const std::size_t n : {64UL, 256UL, 1024UL}) {
    Graph g = random_connected_graph(n, rng);
    const BoruvkaResult b = boruvka(g);
    const double bound = 2.5 * static_cast<double>(n) * (std::log2(double(n)) + 1.0);
    EXPECT_LT(static_cast<double>(b.messages), bound) << "n=" << n;
    EXPECT_GE(b.messages, n);  // at least one report per node
  }
}

TEST(Boruvka, EqualWeightsStillTerminate) {
  // The index tie-break must prevent merge cycles.
  Graph g(6);
  for (std::uint32_t u = 0; u < 6; ++u) {
    for (std::uint32_t v = u + 1; v < 6; ++v) g.add_edge(u, v, 7.0);
  }
  const BoruvkaResult b = boruvka(g);
  EXPECT_TRUE(b.tree.spanning);
  EXPECT_EQ(b.tree.edges.size(), 5U);
}

TEST(Boruvka, DisconnectedGraphYieldsForest) {
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(3, 4, 3.0);
  const BoruvkaResult b = boruvka(g);
  EXPECT_FALSE(b.tree.spanning);
  EXPECT_EQ(b.tree.edges.size(), 3U);
}

TEST(Boruvka, TrivialInputs) {
  Graph empty(0);
  EXPECT_TRUE(boruvka(empty).tree.spanning);
  Graph single(1);
  const BoruvkaResult b = boruvka(single);
  EXPECT_TRUE(b.tree.spanning);
  EXPECT_TRUE(b.tree.edges.empty());
}

}  // namespace
