// Edge cases and failure injection for the protocol engines: tiny
// populations, disconnected networks, hostile channels, degenerate
// parameters.  A production protocol stack must fail *informatively*, not
// crash or hang.
#include <gtest/gtest.h>

#include "proto/fst.hpp"
#include "core/scenario.hpp"
#include "proto/st.hpp"

namespace {

using namespace firefly;

TEST(EdgeCases, SingleDeviceConvergesTrivially) {
  core::ScenarioConfig config;
  config.n = 1;
  config.seed = 1;
  config.area_policy = core::AreaPolicy::kFixed;
  for (const auto protocol : {core::Protocol::kFst, core::Protocol::kSt}) {
    const auto m = core::run_trial(protocol, config);
    EXPECT_TRUE(m.converged) << core::to_string(protocol);
    EXPECT_EQ(m.collisions, 0U);
  }
}

TEST(EdgeCases, TwoDevicesInRange) {
  // Two devices a few metres apart must discover each other and align.
  std::vector<geo::Vec2> positions{{10.0, 10.0}, {14.0, 10.0}};
  core::ProtocolParams params;
  phy::RadioParams radio;
  proto::StEngine engine(positions, params, radio, 7);
  const auto m = engine.run();
  EXPECT_TRUE(m.converged);
  EXPECT_EQ(m.final_fragments, 1U);
  EXPECT_EQ(engine.devices()[0].neighbors.count(1), 1U);
  EXPECT_EQ(engine.devices()[1].neighbors.count(0), 1U);
}

TEST(EdgeCases, DisconnectedIslandsReportFailureNotHang) {
  // Two devices 10 km apart: no link can exist.  The run must terminate at
  // the max_periods cap with converged = false (global sync across
  // disconnected islands is impossible), quickly.
  std::vector<geo::Vec2> positions{{0.0, 0.0}, {10000.0, 10000.0}};
  core::ProtocolParams params;
  params.max_periods = 20;  // keep the capped run short
  phy::RadioParams radio;
  proto::StEngine engine(positions, params, radio, 3);
  const auto m = engine.run();
  EXPECT_FALSE(m.converged);
  EXPECT_NEAR(m.simulated_ms, 20.0 * 100.0, 1.0);
  // Discovery of reliable links is vacuously complete (there are none),
  // but the spanning requirement can never be met.
  EXPECT_GT(m.final_fragments, 1U);
}

TEST(EdgeCases, ExtremeShadowingDegradesButDoesNotCrash) {
  core::ScenarioConfig config;
  config.n = 30;
  config.seed = 5;
  config.area_policy = core::AreaPolicy::kFixed;
  config.radio.shadowing_sigma_db = 25.0;  // brutal environment
  config.protocol.max_periods = 200;
  const auto m = core::run_trial(core::Protocol::kSt, config);
  // Whether it converges is seed luck; the run must be sane either way.
  EXPECT_GT(m.total_messages(), 0U);
  EXPECT_LE(m.convergence_ms, config.protocol.max_slots());
}

TEST(EdgeCases, ZeroShadowingIsBenign) {
  core::ScenarioConfig config;
  config.n = 30;
  config.seed = 6;
  config.area_policy = core::AreaPolicy::kFixed;
  config.radio.shadowing_sigma_db = 0.0;
  const auto m = core::run_trial(core::Protocol::kSt, config);
  EXPECT_TRUE(m.converged);
  // Ranging through a clean channel still carries fast-fading error in the
  // instantaneous samples, but the EWMA average should be decent.
  EXPECT_LT(m.ranging_mean_abs_rel_error, 0.5);
}

TEST(EdgeCases, HugeCoupling) {
  // ε so large that any pulse absorbs: the system must still behave.
  core::ScenarioConfig config;
  config.n = 20;
  config.seed = 7;
  config.area_policy = core::AreaPolicy::kFixed;
  config.protocol.prc = pco::PrcParams{3.0, 5.0};
  const auto m = core::run_trial(core::Protocol::kFst, config);
  EXPECT_TRUE(m.converged);
}

TEST(EdgeCases, ShortPeriodStillWorks) {
  core::ScenarioConfig config;
  config.n = 20;
  config.seed = 8;
  config.area_policy = core::AreaPolicy::kFixed;
  config.protocol.period_slots = 20;
  config.protocol.refractory_slots = 2;
  config.protocol.tolerance_slots = 1;
  config.protocol.check_interval_slots = 5;
  config.protocol.discovery_slots = 20;
  config.protocol.round_slots = 8;
  const auto m = core::run_trial(core::Protocol::kSt, config);
  EXPECT_TRUE(m.converged);
}

TEST(EdgeCases, DenseHotspotSurvives) {
  // 300 devices crammed into the fixed 100 m box — every device hears
  // every other; collision pressure is maximal.
  core::ScenarioConfig config;
  config.n = 300;
  config.seed = 9;
  config.area_policy = core::AreaPolicy::kFixed;
  config.protocol.max_periods = 600;
  const auto m = core::run_trial(core::Protocol::kSt, config);
  EXPECT_TRUE(m.converged);
  EXPECT_GT(m.collisions, 0U);
}

TEST(EdgeCases, MetricsAreInternallyConsistent) {
  core::ScenarioConfig config;
  config.n = 40;
  config.seed = 10;
  config.area_policy = core::AreaPolicy::kFixed;
  const auto m = core::run_trial(core::Protocol::kSt, config);
  ASSERT_TRUE(m.converged);
  EXPECT_EQ(m.total_messages(), m.rach1_messages + m.rach2_messages);
  EXPECT_GE(m.simulated_ms, m.convergence_ms);
  EXPECT_GE(m.convergence_ms, m.sync_ms);
  EXPECT_GE(m.convergence_ms, m.discovery_ms);
  EXPECT_GE(m.mean_neighbors_discovered, m.mean_service_peers);
  EXPECT_GE(m.total_energy_mj, m.mean_device_energy_mj);
}

}  // namespace
