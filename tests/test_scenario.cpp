// Tests for scenario construction (src/core/scenario.hpp).
#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include "graph/mst.hpp"
#include "phy/channel.hpp"

namespace {

using namespace firefly;
using core::AreaPolicy;
using core::ScenarioConfig;

TEST(Scenario, DefaultsMatchTableOne) {
  const ScenarioConfig config;
  EXPECT_EQ(config.n, 50U);
  EXPECT_DOUBLE_EQ(config.radio.tx_power.value, 23.0);
  EXPECT_DOUBLE_EQ(config.radio.detection_threshold.value, -95.0);
  EXPECT_DOUBLE_EQ(config.radio.shadowing_sigma_db, 10.0);
  EXPECT_EQ(config.protocol.period_slots, 100U);  // 100 × 1 ms slots
}

TEST(Scenario, FixedAreaPolicy) {
  ScenarioConfig config;
  config.area_policy = AreaPolicy::kFixed;
  config.n = 1000;
  EXPECT_DOUBLE_EQ(config.area().width, 100.0);
  EXPECT_DOUBLE_EQ(config.area().height, 100.0);
}

TEST(Scenario, DensityScaledAreaPolicy) {
  ScenarioConfig config;
  config.area_policy = AreaPolicy::kDensityScaled;
  config.n = 200;
  EXPECT_NEAR(config.area().width, 200.0, 1e-9);
  EXPECT_NEAR(config.area().density(200), 0.005, 1e-12);
}

TEST(Scenario, DeployIsDeterministicPerSeed) {
  ScenarioConfig config;
  config.seed = 77;
  const auto a = core::deploy(config);
  const auto b = core::deploy(config);
  EXPECT_EQ(a, b);
  config.seed = 78;
  EXPECT_NE(core::deploy(config), a);
}

TEST(Scenario, DeployCountAndBounds) {
  ScenarioConfig config;
  config.n = 128;
  config.area_policy = AreaPolicy::kDensityScaled;
  const auto points = core::deploy(config);
  EXPECT_EQ(points.size(), 128U);
  const auto area = config.area();
  for (const auto& p : points) EXPECT_TRUE(area.contains(p));
}

TEST(Scenario, ProximityGraphPropertiesOnPaperScenario) {
  ScenarioConfig config;
  config.seed = 3;
  const auto positions = core::deploy(config);
  auto channel = phy::make_paper_channel(config.seed, config.radio);
  const graph::Graph g = core::proximity_graph(positions, *channel);

  EXPECT_EQ(g.vertex_count(), 50U);
  EXPECT_GT(g.edge_count(), 100U);  // dense at Table I density
  // Every edge weight is a received power above the threshold.
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.weight, config.radio.detection_threshold.value);
    // Shadowing is zero-mean in dB, so a lucky short link can show a net
    // gain; 4σ above the transmit power bounds it for any realistic draw.
    EXPECT_LT(e.weight,
              config.radio.tx_power.value + 4.0 * config.radio.shadowing_sigma_db);
  }
  // At 50 devices per hectare the paper's network is connected w.h.p.
  EXPECT_TRUE(g.connected());
}

TEST(Scenario, ProximityGraphSupportsMaxSpanningTree) {
  // Fig. 2's "firefly spanning tree": the heavy-edge tree exists and picks
  // strictly stronger edges than the minimum one.
  ScenarioConfig config;
  config.seed = 9;
  const auto positions = core::deploy(config);
  auto channel = phy::make_paper_channel(config.seed, config.radio);
  const graph::Graph g = core::proximity_graph(positions, *channel);
  ASSERT_TRUE(g.connected());
  const auto heavy = graph::kruskal(g, graph::Orientation::kMax);
  const auto light = graph::kruskal(g, graph::Orientation::kMin);
  EXPECT_TRUE(heavy.spanning);
  EXPECT_GT(heavy.total_weight, light.total_weight);
}

TEST(Scenario, ProtocolNames) {
  EXPECT_STREQ(core::to_string(core::Protocol::kFst), "FST");
  EXPECT_STREQ(core::to_string(core::Protocol::kSt), "ST");
}

}  // namespace
