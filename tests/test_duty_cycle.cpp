// Tests for the duty-cycling extension: gated reception, energy accounting
// and the latency/energy trade-off the power-saving literature predicts.
#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "mac/radio.hpp"
#include "phy/energy.hpp"

namespace {

using namespace firefly;

TEST(DutyCycleParams, AwakeFraction) {
  core::ProtocolParams params;
  EXPECT_FALSE(params.duty_cycled());
  EXPECT_DOUBLE_EQ(params.awake_fraction(), 1.0);
  params.duty_awake_slots = 25;
  params.duty_period_slots = 100;
  EXPECT_TRUE(params.duty_cycled());
  EXPECT_DOUBLE_EQ(params.awake_fraction(), 0.25);
  params.duty_awake_slots = 100;
  EXPECT_FALSE(params.duty_cycled());  // fully awake
}

TEST(DutyCycleRadio, SleepingReceiverHearsNothing) {
  sim::Simulator sim;
  auto channel = phy::make_paper_channel(1);
  mac::RadioMedium radio(&sim, channel.get());
  int awake_heard = 0, asleep_heard = 0;
  radio.add_device(0, {0.0, 0.0});
  radio.add_device(1, {10.0, 0.0}, [] { return true; });
  radio.add_device(2, {10.0, 1.0}, [] { return false; });
  radio.set_delivery_sink([&](const mac::RxBatch& batch) {
    for (std::size_t k = 0; k < batch.count; ++k) {
      if (batch.records[k].rx_index == 1) ++awake_heard;
      if (batch.records[k].rx_index == 2) ++asleep_heard;
    }
  });
  sim.schedule_at(sim::SimTime::zero(), [&] {
    radio.broadcast(0, {mac::RachCodec::kRach1, 0}, mac::PsType::kSyncPulse, 0);
  });
  sim.run();
  EXPECT_EQ(awake_heard, 1);
  EXPECT_EQ(asleep_heard, 0);
}

TEST(DutyCycleEnergy, SleepSlotsAreCheap) {
  phy::EnergyParams params;
  phy::EnergyMeter meter(1, params);
  const double always_on = meter.device_energy_mj(0, 1000, 1.0);
  const double quarter = meter.device_energy_mj(0, 1000, 0.25);
  // 25% awake at 10 mW + 75% asleep at 0.1 mW.
  EXPECT_NEAR(always_on, 10.0, 1e-9);
  EXPECT_NEAR(quarter, (250.0 * 10.0 + 750.0 * 0.1) * 1e-3, 1e-9);
  EXPECT_LT(quarter, always_on);
}

TEST(DutyCycleProtocol, StStillConvergesAtHalfDuty) {
  core::ScenarioConfig config;
  config.n = 30;
  config.seed = 12;
  config.area_policy = core::AreaPolicy::kFixed;
  config.protocol.duty_awake_slots = 50;
  config.protocol.duty_period_slots = 100;
  config.protocol.max_periods = 600;
  const auto m = core::run_trial(core::Protocol::kSt, config);
  EXPECT_TRUE(m.converged);
}

TEST(DutyCycleProtocol, LatencyEnergyTradeoff) {
  // The classic duty-cycling result: lower duty -> slower discovery but
  // less energy per unit time; pin both directions.
  core::ScenarioConfig config;
  config.n = 30;
  config.seed = 14;
  config.area_policy = core::AreaPolicy::kFixed;
  config.protocol.max_periods = 800;

  const auto always_on = core::run_trial(core::Protocol::kSt, config);

  // Below ~50% duty the strict sustained-global-alignment criterion starts
  // failing outright (residual PRC jitter on the partially-listening
  // population) — itself a finding; the trade-off test uses 50%.
  config.protocol.duty_awake_slots = 50;
  config.protocol.duty_period_slots = 100;
  const auto half = core::run_trial(core::Protocol::kSt, config);

  ASSERT_TRUE(always_on.converged);
  ASSERT_TRUE(half.converged);
  EXPECT_GT(half.convergence_ms, always_on.convergence_ms);
  // Energy per simulated millisecond must be lower when duty cycled.
  const double rate_on = always_on.mean_device_energy_mj / always_on.simulated_ms;
  const double rate_half = half.mean_device_energy_mj / half.simulated_ms;
  EXPECT_LT(rate_half, rate_on);
}

TEST(DutyCycleProtocol, DeterministicWithDutyCycle) {
  core::ScenarioConfig config;
  config.n = 25;
  config.seed = 16;
  config.area_policy = core::AreaPolicy::kFixed;
  config.protocol.duty_awake_slots = 40;
  config.protocol.duty_period_slots = 100;
  config.protocol.max_periods = 600;
  const auto a = core::run_trial(core::Protocol::kSt, config);
  const auto b = core::run_trial(core::Protocol::kSt, config);
  EXPECT_EQ(a.total_messages(), b.total_messages());
  EXPECT_DOUBLE_EQ(a.convergence_ms, b.convergence_ms);
}

}  // namespace
