// Tests for link-quality estimates (src/phy/link.hpp).
#include "phy/link.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace {

using namespace firefly;
using namespace firefly::util::literals;

TEST(Link, SnrLinear) {
  EXPECT_DOUBLE_EQ(phy::snr_linear(-94.0_dBm, -104.0_dBm), 10.0);
  EXPECT_NEAR(phy::snr_linear(-104.0_dBm, -104.0_dBm), 1.0, 1e-12);
  EXPECT_LT(phy::snr_linear(-110.0_dBm, -104.0_dBm), 1.0);
}

TEST(Link, ShannonRateKnownValues) {
  // SNR = 1 (0 dB): 10 MHz × log2(2) = 10 Mbit/s.
  EXPECT_NEAR(phy::shannon_rate_mbps(-104.0_dBm, -104.0_dBm, 10e6), 10.0, 1e-9);
  // SNR = 3 (≈4.77 dB): log2(4) = 2 → 20 Mbit/s.
  EXPECT_NEAR(
      phy::shannon_rate_mbps(util::Dbm{-104.0 + 10.0 * std::log10(3.0)}, -104.0_dBm, 10e6),
      20.0, 1e-9);
}

TEST(Link, ShannonRateMonotoneInSignal) {
  double prev = 0.0;
  for (double rx = -110.0; rx <= -40.0; rx += 5.0) {
    const double rate = phy::shannon_rate_mbps(util::Dbm{rx}, -104.0_dBm, 10e6);
    EXPECT_GT(rate, prev);
    prev = rate;
  }
}

TEST(Link, OutageClosedFormMatchesMonteCarlo) {
  const util::Dbm mean{-80.0};
  const util::Dbm required{-90.0};
  const util::Dbm noise{-104.0};
  const double analytic = phy::rayleigh_outage(mean, required, noise);
  util::Rng rng(3);
  int outages = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double gain = rng.exponential(1.0);
    const double rx = mean.value + 10.0 * std::log10(gain);
    if (rx < required.value) ++outages;
  }
  EXPECT_NEAR(outages / static_cast<double>(n), analytic, 0.005);
}

TEST(Link, OutageLimits) {
  // Strong link, low requirement: outage → small; hopeless link: outage 1.
  EXPECT_LT(phy::rayleigh_outage(-60.0_dBm, -95.0_dBm, -104.0_dBm), 0.01);
  EXPECT_DOUBLE_EQ(phy::rayleigh_outage(-130.0_dBm, -95.0_dBm, -104.0_dBm), 1.0);
  // Requirement equal to the mean: 1 − e^{−1} ≈ 0.632.
  EXPECT_NEAR(phy::rayleigh_outage(-90.0_dBm, -90.0_dBm, -104.0_dBm),
              1.0 - std::exp(-1.0), 1e-9);
}

TEST(Link, ErgodicRateBelowAwgnRateAtHighSnr) {
  // Jensen: E[log(1+γg)] < log(1+γ) for unit-mean g at any γ.
  const double awgn = phy::shannon_rate_mbps(-70.0_dBm, -104.0_dBm, 10e6);
  const double ergodic = phy::rayleigh_ergodic_rate_mbps(-70.0_dBm, -104.0_dBm, 10e6);
  EXPECT_LT(ergodic, awgn);
  EXPECT_GT(ergodic, 0.7 * awgn);  // but within the known ~−2.5 dB penalty
}

TEST(Link, ErgodicRateMatchesMonteCarlo) {
  const util::Dbm mean{-85.0};
  const util::Dbm noise{-104.0};
  const double quad = phy::rayleigh_ergodic_rate_mbps(mean, noise, 10e6);
  util::Rng rng(7);
  double sum = 0.0;
  const int n = 400000;
  const double snr = phy::snr_linear(mean, noise);
  for (int i = 0; i < n; ++i) {
    sum += std::log2(1.0 + snr * rng.exponential(1.0));
  }
  const double mc = 10e6 * (sum / n) / 1e6;
  EXPECT_NEAR(quad, mc, 0.01 * mc);
}

}  // namespace
