// Tests for the telemetry subsystem (src/obs/): JSON writer, metric
// registry, histograms, span sink / Chrome trace, scoped timers, progress
// reporting, build info — and the two system-level guarantees: JSONL output
// is byte-deterministic across identical seeded runs, and attaching
// telemetry leaves RunMetrics bit-identical.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "core/trace.hpp"
#include "obs/build_info.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "obs/timer.hpp"

namespace {

using namespace firefly;

// --- JsonWriter ---

TEST(JsonWriter, ObjectsArraysAndSeparators) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.field("a", std::uint64_t{1});
  w.field("b", "x");
  w.key("c").begin_array();
  w.value(std::uint64_t{1}).value(std::uint64_t{2});
  w.end_array();
  w.key("d").begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(out.str(), R"({"a":1,"b":"x","c":[1,2],"d":{}})");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(obs::JsonWriter::escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(obs::JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, DoubleFormattingIsShortestRoundTrip) {
  EXPECT_EQ(obs::JsonWriter::format_double(0.0), "0");
  EXPECT_EQ(obs::JsonWriter::format_double(2.5), "2.5");
  EXPECT_EQ(obs::JsonWriter::format_double(0.1), "0.1");
  EXPECT_EQ(obs::JsonWriter::format_double(-3.0), "-3");
  EXPECT_EQ(obs::JsonWriter::format_double(std::nan("")), "null");
  EXPECT_EQ(obs::JsonWriter::format_double(INFINITY), "null");
}

TEST(JsonWriter, BoolAndNegativeValues) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.field("t", true);
  w.field("f", false);
  w.field("i", std::int64_t{-5});
  w.end_object();
  EXPECT_EQ(out.str(), R"({"t":true,"f":false,"i":-5})");
}

// --- Histogram ---

TEST(Histogram, EmptyReportsZeros) {
  obs::Histogram h({1.0, 10.0});
  EXPECT_EQ(h.count(), 0U);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, SingleSampleQuantilesAreExact) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.observe(7.0);
  // Quantiles clamp to the observed [min, max], so one sample reports
  // itself exactly at every q.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 7.0);
  EXPECT_DOUBLE_EQ(h.min(), 7.0);
  EXPECT_DOUBLE_EQ(h.max(), 7.0);
  EXPECT_DOUBLE_EQ(h.sum(), 7.0);
}

TEST(Histogram, OverflowBucketCatchesLargeSamples) {
  obs::Histogram h({1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(1e9);  // beyond the last bound
  ASSERT_EQ(h.bucket_counts().size(), 3U);
  EXPECT_EQ(h.bucket_counts()[0], 1U);
  EXPECT_EQ(h.bucket_counts()[1], 1U);
  EXPECT_EQ(h.bucket_counts()[2], 1U);  // overflow
  // The overflow quantile clamps to the observed max, not infinity.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1e9);
  EXPECT_EQ(h.count(), 3U);
}

TEST(Histogram, QuantilesInterpolateWithinBuckets) {
  obs::Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) h.observe(5.0);    // all in first bucket
  for (int i = 0; i < 100; ++i) h.observe(15.0);   // all in second
  const double p25 = h.quantile(0.25);
  const double p75 = h.quantile(0.75);
  EXPECT_GE(p25, 5.0);
  EXPECT_LE(p25, 10.0);
  EXPECT_GE(p75, 10.0);
  EXPECT_LE(p75, 15.0);
  EXPECT_LE(p25, p75);
}

TEST(Histogram, ExponentialBucketFactory) {
  const obs::Histogram h = obs::Histogram::exponential(1.0, 2.0, 4);
  ASSERT_EQ(h.bounds().size(), 4U);
  EXPECT_DOUBLE_EQ(h.bounds()[0], 1.0);
  EXPECT_DOUBLE_EQ(h.bounds()[1], 2.0);
  EXPECT_DOUBLE_EQ(h.bounds()[2], 4.0);
  EXPECT_DOUBLE_EQ(h.bounds()[3], 8.0);
}

// --- Registry ---

TEST(Registry, FindOrCreateReturnsStableReferences) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("alpha");
  a.inc(3);
  // Creating more metrics must not invalidate the first reference.
  for (int i = 0; i < 100; ++i) registry.counter("c" + std::to_string(i));
  obs::Counter& a2 = registry.counter("alpha");
  EXPECT_EQ(&a, &a2);
  EXPECT_EQ(a2.value(), 3U);
}

TEST(Registry, JsonExportIsNameOrdered) {
  obs::Registry registry;
  registry.counter("zeta").inc();
  registry.counter("alpha").inc(2);
  registry.gauge("mid").set(1.5);
  registry.histogram("h", {1.0}).observe(0.5);
  std::ostringstream out;
  obs::JsonWriter w(out);
  registry.write_json(w);
  const std::string json = out.str();
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// --- SpanSink / Chrome trace ---

TEST(SpanSink, RingOverwritesOldestAndCountsDrops) {
  obs::SpanSink sink(2);
  for (int i = 0; i < 5; ++i) {
    sink.add({obs::SpanId::kSlotDelivery, 0, i * 1000, 100, -1.0});
  }
  EXPECT_EQ(sink.size(), 2U);
  EXPECT_EQ(sink.dropped(), 3U);
  const auto spans = sink.snapshot();
  ASSERT_EQ(spans.size(), 2U);
  EXPECT_EQ(spans[0].start_ns, 3000);
  EXPECT_EQ(spans[1].start_ns, 4000);
}

TEST(SpanSink, ChromeTraceShape) {
  obs::SpanSink sink;
  sink.add({obs::SpanId::kPcoUpdate, 2, 1'500, 2'000, 42.0});
  std::ostringstream out;
  sink.write_chrome_trace(out);
  const std::string trace = out.str();
  // Times are microseconds in the trace-event format.
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"pco_update\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ts\":1.5"), std::string::npos);
  EXPECT_NE(trace.find("\"dur\":2"), std::string::npos);
  EXPECT_NE(trace.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(trace.find("\"sim_ms\":42"), std::string::npos);
}

TEST(SpanSink, SpanNamesAreStable) {
  EXPECT_STREQ(obs::span_name(obs::SpanId::kSlotDelivery), "slot_delivery");
  EXPECT_STREQ(obs::span_name(obs::SpanId::kPcoUpdate), "pco_update");
  EXPECT_STREQ(obs::span_name(obs::SpanId::kHConnect), "h_connect");
  EXPECT_STREQ(obs::span_name(obs::SpanId::kMerge), "fragment_merge");
  EXPECT_STREQ(obs::span_name(obs::SpanId::kTrial), "trial");
}

// --- Telemetry + ScopedTimer ---

TEST(Telemetry, RecordSpanFeedsHistogramCounterAndSink) {
  obs::Telemetry telemetry;
  obs::SpanSink sink;
  telemetry.attach_spans(&sink);
  {
    const obs::ScopedTimer timer(&telemetry, obs::SpanId::kHConnect, 3.0);
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  EXPECT_EQ(telemetry.registry().counter("span.h_connect.calls").value(), 1U);
  const obs::Histogram& h =
      telemetry.registry().histogram("span.h_connect.us", {});
  EXPECT_EQ(h.count(), 1U);
  EXPECT_GT(h.sum(), 0.0);
  ASSERT_EQ(sink.size(), 1U);
  EXPECT_DOUBLE_EQ(sink.snapshot()[0].sim_ms, 3.0);
}

TEST(Telemetry, NullContextTimerIsANoOp) {
  // Must not crash or allocate; the instrumented hot paths rely on this.
  for (int i = 0; i < 1000; ++i) {
    const obs::ScopedTimer timer(nullptr, obs::SpanId::kSlotDelivery, 1.0);
  }
  SUCCEED();
}

TEST(Telemetry, CountAndObserveAreFindOrCreate) {
  obs::Telemetry telemetry;
  telemetry.count("events", 2);
  telemetry.count("events");
  telemetry.observe("sizes", {1.0, 10.0}, 5.0);
  telemetry.observe("sizes", {99.0}, 7.0);  // bounds ignored after creation
  EXPECT_EQ(telemetry.registry().counter("events").value(), 3U);
  const obs::Histogram& h = telemetry.registry().histogram("sizes", {});
  EXPECT_EQ(h.count(), 2U);
  ASSERT_EQ(h.bounds().size(), 2U);
  EXPECT_DOUBLE_EQ(h.bounds()[0], 1.0);
}

// --- ProgressReporter ---

TEST(Progress, ReportsAndFinishes) {
  std::ostringstream out;
  obs::ProgressReporter progress("test", 4, std::chrono::milliseconds(0), &out);
  progress.advance();
  progress.advance(3);
  EXPECT_EQ(progress.done(), 4U);
  progress.finish();
  progress.finish();  // idempotent
  const std::string text = out.str();
  EXPECT_NE(text.find("[test]"), std::string::npos);
  EXPECT_NE(text.find("4/4"), std::string::npos);
  EXPECT_EQ(text.find("5/4"), std::string::npos);
}

// --- BuildInfo ---

TEST(BuildInfo, FieldsAreNonEmpty) {
  const obs::BuildInfo info = obs::build_info();
  EXPECT_FALSE(info.git_sha.empty());
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_FALSE(info.build_type.empty());
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object();
  obs::write_build_info_fields(w);
  w.end_object();
  EXPECT_NE(out.str().find("\"git_sha\":\""), std::string::npos);
}

// --- system-level guarantees ---

core::ScenarioConfig small_scenario() {
  core::ScenarioConfig config;
  config.n = 20;
  config.seed = 33;
  config.area_policy = core::AreaPolicy::kFixed;
  return config;
}

TEST(ObsInvariance, TelemetryOffRunMetricsAreBitIdentical) {
  const core::ScenarioConfig config = small_scenario();
  for (const core::Protocol protocol :
       {core::Protocol::kSt, core::Protocol::kFst, core::Protocol::kBirthday}) {
    const core::RunMetrics bare = core::run_trial(protocol, config);

    obs::Telemetry telemetry;
    obs::SpanSink spans;
    telemetry.attach_spans(&spans);
    core::TraceSink trace;
    const core::RunMetrics observed =
        core::run_trial(protocol, config, core::RunHooks{&trace, &telemetry});

    // Field-wise equality via the defaulted operator==: attaching the full
    // observability stack must not perturb a single reported number.
    EXPECT_TRUE(bare == observed) << "protocol " << core::to_string(protocol);
    // ...and the observers did actually observe something.
    EXPECT_GT(telemetry.registry().counter("engine.fires").value(), 0U);
    EXPECT_GT(spans.size(), 0U);
  }
}

std::string run_metrics_json(const core::RunMetrics& metrics) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  core::write_run_metrics_json(w, metrics);
  return out.str();
}

TEST(ObsDeterminism, RunMetricsJsonIsByteIdenticalAcrossReruns) {
  const core::ScenarioConfig config = small_scenario();
  const std::string first =
      run_metrics_json(core::run_trial(core::Protocol::kSt, config));
  const std::string second =
      run_metrics_json(core::run_trial(core::Protocol::kSt, config));
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // Spot-check the stable key order.
  EXPECT_LT(first.find("\"converged\""), first.find("\"convergence_ms\""));
  EXPECT_LT(first.find("\"convergence_ms\""), first.find("\"simulated_ms\""));
}

TEST(ObsDeterminism, SweepPointJsonIsByteIdenticalAcrossReruns) {
  core::SweepConfig sweep_config;
  sweep_config.ns = {20};
  sweep_config.trials = 2;
  sweep_config.base.area_policy = core::AreaPolicy::kFixed;
  auto render = [&] {
    const auto points = core::sweep(core::Protocol::kSt, sweep_config);
    std::ostringstream out;
    obs::JsonWriter w(out);
    core::write_sweep_point_json(w, points.at(0), core::Protocol::kSt, "test");
    return out.str();
  };
  const std::string first = render();
  const std::string second = render();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"bench\":\"test\""), std::string::npos);
  EXPECT_NE(first.find("\"protocol\":\"ST\""), std::string::npos);
}

TEST(ObsDeterminism, SweepWithTelemetryMatchesSweepWithout) {
  core::SweepConfig sweep_config;
  sweep_config.ns = {20};
  sweep_config.trials = 2;
  sweep_config.base.area_policy = core::AreaPolicy::kFixed;

  const auto bare = core::sweep(core::Protocol::kSt, sweep_config);

  obs::Telemetry telemetry;
  std::ostringstream progress_out;
  obs::ProgressReporter progress("test", sweep_config.total_trials(),
                                 std::chrono::milliseconds(0), &progress_out);
  sweep_config.hooks.telemetry = &telemetry;
  sweep_config.hooks.progress = &progress;
  const auto observed = core::sweep(core::Protocol::kSt, sweep_config);

  ASSERT_EQ(bare.size(), observed.size());
  EXPECT_DOUBLE_EQ(bare[0].convergence_ms.mean(), observed[0].convergence_ms.mean());
  EXPECT_DOUBLE_EQ(bare[0].total_messages.mean(), observed[0].total_messages.mean());
  EXPECT_EQ(progress.done(), 2U);
  EXPECT_EQ(telemetry.registry().counter("span.trial.calls").value(), 2U);
}

TEST(ObsReport, EmptySampleJsonIsZeroSafe) {
  const util::Sample empty;
  std::ostringstream out;
  obs::JsonWriter w(out);
  core::write_sample_json(w, empty);
  EXPECT_EQ(out.str(),
            R"({"count":0,"mean":0,"stddev":0,"ci95":0,"p50":0,"p90":0,"p99":0})");
}

}  // namespace
