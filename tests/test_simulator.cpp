// Tests for the discrete-event scheduler (src/sim/simulator.hpp).
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using firefly::sim::SimTime;
using firefly::sim::Simulator;

TEST(SimTimeTest, ArithmeticAndConversions) {
  EXPECT_EQ(SimTime::milliseconds(1).us, 1000);
  EXPECT_EQ(SimTime::seconds(2).us, 2'000'000);
  EXPECT_EQ((SimTime::milliseconds(3) + SimTime::microseconds(5)).us, 3005);
  EXPECT_EQ((3 * SimTime::milliseconds(2)).us, 6000);
  EXPECT_DOUBLE_EQ(SimTime::milliseconds(1500).as_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::microseconds(2500).as_milliseconds(), 2.5);
  EXPECT_EQ(firefly::sim::kLteSlot.us, 1000);  // Table I slot
}

TEST(Simulator, AdvancesClockToEventTimes) {
  Simulator sim;
  std::vector<std::int64_t> seen;
  sim.schedule_at(SimTime::milliseconds(5), [&] { seen.push_back(sim.now().us); });
  sim.schedule_at(SimTime::milliseconds(2), [&] { seen.push_back(sim.now().us); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<std::int64_t>{2000, 5000}));
  EXPECT_EQ(sim.events_processed(), 2U);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  std::int64_t fired_at = -1;
  sim.schedule_at(SimTime::milliseconds(10), [&] {
    sim.schedule_in(SimTime::milliseconds(7), [&] { fired_at = sim.now().us; });
  });
  sim.run();
  EXPECT_EQ(fired_at, 17000);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  bool late_ran = false;
  sim.schedule_at(SimTime::milliseconds(100), [&] { late_ran = true; });
  const SimTime end = sim.run_until(SimTime::milliseconds(50));
  EXPECT_EQ(end, SimTime::milliseconds(50));
  EXPECT_FALSE(late_ran);
  // The event is still pending and fires on a longer run.
  sim.run_until(SimTime::milliseconds(200));
  EXPECT_TRUE(late_ran);
}

TEST(Simulator, StopEndsLoopEarly) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(SimTime::milliseconds(i), [&, i] {
      ++count;
      if (i == 3) sim.stop();
    });
  }
  sim.run_until(SimTime::seconds(1));
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(sim.stopped());
}

TEST(Simulator, CancelPendingEvent) {
  Simulator sim;
  bool ran = false;
  const auto id = sim.schedule_at(SimTime::milliseconds(5), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, PeriodicFiresRepeatedly) {
  Simulator sim;
  std::vector<std::int64_t> times;
  auto handle = sim.schedule_periodic(SimTime::milliseconds(2), SimTime::milliseconds(3),
                                      [&] { times.push_back(sim.now().us); });
  sim.run_until(SimTime::milliseconds(12));
  EXPECT_EQ(times, (std::vector<std::int64_t>{2000, 5000, 8000, 11000}));
  handle.cancel();
  sim.run_until(SimTime::milliseconds(30));
  EXPECT_EQ(times.size(), 4U);  // no more firings after cancel
}

TEST(Simulator, PeriodicCancelFromInsideCallback) {
  Simulator sim;
  int count = 0;
  Simulator::PeriodicHandle handle;
  handle = sim.schedule_periodic(SimTime::milliseconds(1), SimTime::milliseconds(1), [&] {
    if (++count == 3) handle.cancel();
  });
  sim.run_until(SimTime::milliseconds(20));
  EXPECT_EQ(count, 3);
}

TEST(Simulator, EventsAtSameTimeRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(SimTime::milliseconds(1), [&, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RunOnEmptyQueueReturnsImmediately) {
  Simulator sim;
  const SimTime end = sim.run();
  EXPECT_EQ(end, SimTime::zero());
}

}  // namespace
