// Tests for the reference MST algorithms (src/graph/mst.hpp).
#include "graph/mst.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph.hpp"
#include "graph/union_find.hpp"
#include "util/rng.hpp"

namespace {

using namespace firefly::graph;

Graph small_known_graph() {
  // Classic example with MST weight 1+2+3 = 6 (edges 0-1, 1-2, 1-3).
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(1, 3, 3.0);
  g.add_edge(0, 2, 4.0);
  g.add_edge(2, 3, 5.0);
  return g;
}

Graph random_graph(std::size_t n, double edge_prob, firefly::util::Rng& rng,
                   bool distinct_weights = true) {
  Graph g(n);
  double w = 1.0;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      if (rng.uniform() < edge_prob) {
        const double weight = distinct_weights ? (w += 1.0) + rng.uniform() * 0.5
                                               : std::floor(rng.uniform(1.0, 5.0));
        g.add_edge(u, v, weight);
      }
    }
  }
  return g;
}

TEST(Kruskal, KnownGraph) {
  const MstResult r = kruskal(small_known_graph());
  EXPECT_TRUE(r.spanning);
  EXPECT_EQ(r.edges.size(), 3U);
  EXPECT_DOUBLE_EQ(r.total_weight, 6.0);
  EXPECT_TRUE(is_spanning_tree(4, r.edges));
}

TEST(Prim, KnownGraph) {
  const MstResult r = prim(small_known_graph());
  EXPECT_TRUE(r.spanning);
  EXPECT_DOUBLE_EQ(r.total_weight, 6.0);
  EXPECT_TRUE(is_spanning_tree(4, r.edges));
}

TEST(Mst, MaximumOrientationPicksHeavyEdges) {
  // The paper's tree selects the heaviest (strongest-PS) edges: on the
  // known graph the maximum spanning tree uses 5+4+3 = 12.
  const MstResult k = kruskal(small_known_graph(), Orientation::kMax);
  const MstResult p = prim(small_known_graph(), Orientation::kMax);
  EXPECT_DOUBLE_EQ(k.total_weight, 12.0);
  EXPECT_DOUBLE_EQ(p.total_weight, 12.0);
  EXPECT_TRUE(is_spanning_tree(4, k.edges));
}

TEST(Mst, KruskalEqualsPrimOnRandomGraphs) {
  firefly::util::Rng rng(10);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = random_graph(40, 0.2, rng);
    const MstResult k = kruskal(g);
    const MstResult p = prim(g);
    EXPECT_EQ(k.spanning, p.spanning);
    if (k.spanning) {
      EXPECT_NEAR(k.total_weight, p.total_weight, 1e-9) << "trial " << trial;
      EXPECT_TRUE(is_spanning_tree(g.vertex_count(), k.edges));
      EXPECT_TRUE(is_spanning_tree(g.vertex_count(), p.edges));
    }
  }
}

TEST(Mst, MaxOrientationAgreesAcrossAlgorithms) {
  firefly::util::Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = random_graph(30, 0.3, rng);
    const MstResult k = kruskal(g, Orientation::kMax);
    const MstResult p = prim(g, Orientation::kMax);
    if (k.spanning) {
      EXPECT_NEAR(k.total_weight, p.total_weight, 1e-9);
    }
  }
}

TEST(Mst, DisconnectedGraphReportsNonSpanning) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 2.0);
  const MstResult k = kruskal(g);
  EXPECT_FALSE(k.spanning);
  EXPECT_EQ(k.edges.size(), 2U);  // spanning forest
  const MstResult p = prim(g);
  EXPECT_FALSE(p.spanning);  // Prim only covers vertex 0's component
}

TEST(Mst, SingleVertexAndEmpty) {
  Graph single(1);
  EXPECT_TRUE(kruskal(single).spanning);
  EXPECT_TRUE(prim(single).spanning);
  EXPECT_TRUE(kruskal(single).edges.empty());
  Graph empty(0);
  EXPECT_TRUE(kruskal(empty).spanning);
  EXPECT_TRUE(prim(empty).spanning);
}

TEST(Mst, TiesBrokenDeterministically) {
  // All weights equal: both runs of kruskal give the identical tree.
  Graph g(5);
  for (std::uint32_t u = 0; u < 5; ++u) {
    for (std::uint32_t v = u + 1; v < 5; ++v) g.add_edge(u, v, 1.0);
  }
  const MstResult a = kruskal(g);
  const MstResult b = kruskal(g);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t i = 0; i < a.edges.size(); ++i) EXPECT_EQ(a.edges[i], b.edges[i]);
}

TEST(Mst, MstWeightIsMinimalAgainstRandomTrees) {
  // Property: no random spanning tree beats the MST.
  firefly::util::Rng rng(12);
  Graph g = random_graph(12, 0.6, rng, /*distinct_weights=*/false);
  if (!kruskal(g).spanning) GTEST_SKIP();
  const double best = kruskal(g).total_weight;
  for (int trial = 0; trial < 50; ++trial) {
    // Random spanning tree via randomised Kruskal on shuffled edges.
    auto edges = g.edges();
    rng.shuffle(edges.begin(), edges.end());
    UnionFind uf(g.vertex_count());
    double total = 0.0;
    for (const Edge& e : edges) {
      if (uf.unite(e.u, e.v)) total += e.weight;
    }
    EXPECT_GE(total + 1e-9, best);
  }
}

}  // namespace
