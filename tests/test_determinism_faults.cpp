// Determinism regression for the fault-injection subsystem: the same master
// seed and the same FaultPlan must yield bit-identical RunMetrics — across
// repeated runs and across thread-pool sizes (every trial owns its whole
// world; nothing shared is mutated).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/scenario.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace firefly;

core::ScenarioConfig faulted_config(std::uint64_t seed) {
  core::ScenarioConfig config;
  config.n = 15;
  config.seed = seed;
  config.area_policy = core::AreaPolicy::kFixed;
  config.protocol.max_periods = 120;
  config.protocol.faults.churn_rate_per_min = 20.0;
  config.protocol.faults.mean_downtime_ms = 1'000.0;
  config.protocol.faults.churn_stop_ms = 8'000.0;
  config.protocol.faults.drift_max_ppm = 200.0;
  config.protocol.faults.drop_probability = 0.05;
  config.protocol.faults.fade_rate_per_min = 20.0;
  config.protocol.faults.fade_mean_duration_ms = 400.0;
  return config;
}

// Exact equality on every field, doubles included: the whole simulation is
// integer-slot arithmetic plus deterministic RNG draws, so replays must be
// bit-identical, not merely close.
void expect_identical(const core::RunMetrics& a, const core::RunMetrics& b) {
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.convergence_ms, b.convergence_ms);
  EXPECT_EQ(a.sync_ms, b.sync_ms);
  EXPECT_EQ(a.discovery_ms, b.discovery_ms);
  EXPECT_EQ(a.locally_converged, b.locally_converged);
  EXPECT_EQ(a.local_sync_ms, b.local_sync_ms);
  EXPECT_EQ(a.rach1_messages, b.rach1_messages);
  EXPECT_EQ(a.rach2_messages, b.rach2_messages);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.mean_neighbors_discovered, b.mean_neighbors_discovered);
  EXPECT_EQ(a.mean_service_peers, b.mean_service_peers);
  EXPECT_EQ(a.ranging_mean_abs_rel_error, b.ranging_mean_abs_rel_error);
  EXPECT_EQ(a.ranging_p90_rel_error, b.ranging_p90_rel_error);
  EXPECT_EQ(a.final_fragments, b.final_fragments);
  EXPECT_EQ(a.tree_edges, b.tree_edges);
  EXPECT_EQ(a.tree_weight_dbm, b.tree_weight_dbm);
  EXPECT_EQ(a.tree_service_affinity, b.tree_service_affinity);
  EXPECT_EQ(a.total_energy_mj, b.total_energy_mj);
  EXPECT_EQ(a.mean_device_energy_mj, b.mean_device_energy_mj);
  EXPECT_EQ(a.energy_per_neighbor_mj, b.energy_per_neighbor_mj);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.fade_episodes, b.fade_episodes);
  EXPECT_EQ(a.fault_drops, b.fault_drops);
  EXPECT_EQ(a.resyncs, b.resyncs);
  EXPECT_EQ(a.mean_resync_ms, b.mean_resync_ms);
  EXPECT_EQ(a.max_resync_ms, b.max_resync_ms);
  EXPECT_EQ(a.sync_uptime, b.sync_uptime);
  EXPECT_EQ(a.in_sync_at_end, b.in_sync_at_end);
  EXPECT_EQ(a.repair_messages, b.repair_messages);
  EXPECT_EQ(a.alive_at_end, b.alive_at_end);
  EXPECT_EQ(a.partitioned, b.partitioned);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.simulated_ms, b.simulated_ms);
}

TEST(DeterminismFaults, SameSeedSamePlanBitIdenticalMetrics) {
  for (const core::Protocol protocol : {core::Protocol::kSt, core::Protocol::kFst}) {
    const core::ScenarioConfig config = faulted_config(11);
    const core::RunMetrics first = core::run_trial(protocol, config);
    const core::RunMetrics second = core::run_trial(protocol, config);
    // The faults actually happened (the test would be vacuous otherwise).
    EXPECT_GT(first.crashes, 0U);
    EXPECT_GT(first.fault_drops, 0U);
    expect_identical(first, second);
  }
}

TEST(DeterminismFaults, MetricsIndependentOfThreadPoolSize) {
  // Fan the same 8 faulted trials out on 1 thread and on 4: each trial owns
  // its simulator, channel, radio and RNG streams, so the schedule of the
  // pool must not leak into any metric.
  constexpr std::size_t kTrials = 8;
  auto run_all = [](std::size_t threads) {
    std::vector<core::RunMetrics> out(kTrials);
    util::ThreadPool pool(threads);
    pool.parallel_for(kTrials, [&out](std::size_t i) {
      out[i] = core::run_trial(core::Protocol::kSt,
                               faulted_config(100 + static_cast<std::uint64_t>(i)));
    });
    return out;
  };
  const std::vector<core::RunMetrics> serial = run_all(1);
  const std::vector<core::RunMetrics> parallel = run_all(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < kTrials; ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial[i], parallel[i]);
  }
}

TEST(DeterminismFaults, DifferentSeedsDiverge) {
  // Sanity guard for the fixture itself: distinct master seeds must give
  // distinct runs (otherwise the identical-metrics checks prove nothing).
  const core::RunMetrics a = core::run_trial(core::Protocol::kSt, faulted_config(11));
  const core::RunMetrics b = core::run_trial(core::Protocol::kSt, faulted_config(12));
  EXPECT_NE(a.events_processed, b.events_processed);
}

}  // namespace
