// Integration tests for the mobility extension: devices move mid-protocol,
// shadowing decorrelates, the ST tree self-repairs.
#include <gtest/gtest.h>

#include <set>

#include "core/scenario.hpp"
#include "proto/st.hpp"

namespace {

using namespace firefly;

core::ScenarioConfig mobile_config(double speed, std::uint32_t periods) {
  core::ScenarioConfig config;
  config.n = 40;
  config.seed = 21;
  config.area_policy = core::AreaPolicy::kFixed;
  config.protocol.mobility_speed_mps = speed;
  config.protocol.stop_on_convergence = false;
  config.protocol.max_periods = periods;
  return config;
}

class ObservableSt final : public proto::StEngine {
 public:
  using StEngine::StEngine;
  [[nodiscard]] std::vector<geo::Vec2> positions() const {
    std::vector<geo::Vec2> out;
    for (const auto& d : devices()) out.push_back(d.position);
    return out;
  }
  [[nodiscard]] std::size_t fragment_count() const {
    std::set<std::uint16_t> labels;
    for (const auto& d : devices()) labels.insert(d.fragment);
    return labels.size();
  }
  [[nodiscard]] std::int64_t firing_spread_slots() const {
    std::vector<std::int64_t> mods;
    for (const auto& d : devices()) {
      if (d.last_fire_slot >= 0) mods.push_back(d.last_fire_slot % params().period_slots);
    }
    if (mods.size() < devices().size()) return params().period_slots;
    std::sort(mods.begin(), mods.end());
    const auto period = static_cast<std::int64_t>(params().period_slots);
    std::int64_t max_gap = mods.front() + period - mods.back();
    for (std::size_t i = 1; i < mods.size(); ++i) {
      max_gap = std::max(max_gap, mods[i] - mods[i - 1]);
    }
    return period - max_gap;
  }
};

TEST(Mobility, DevicesActuallyMove) {
  auto config = mobile_config(3.0, 30);
  auto initial = core::deploy(config);
  ObservableSt engine(initial, config.protocol, config.radio, config.seed);
  (void)engine.run();
  const auto moved = engine.positions();
  std::size_t changed = 0;
  for (std::size_t i = 0; i < initial.size(); ++i) {
    if (geo::distance(initial[i], moved[i]) > 1.0) ++changed;
  }
  EXPECT_GT(changed, initial.size() / 2);
}

TEST(Mobility, StaticRunIsUnaffectedByMobilityCode) {
  // speed = 0 must be byte-identical to the pre-extension behaviour.
  core::ScenarioConfig config;
  config.n = 25;
  config.seed = 33;
  config.area_policy = core::AreaPolicy::kFixed;
  const auto a = core::run_trial(core::Protocol::kSt, config);
  config.protocol.mobility_speed_mps = 0.0;
  const auto b = core::run_trial(core::Protocol::kSt, config);
  EXPECT_EQ(a.total_messages(), b.total_messages());
  EXPECT_DOUBLE_EQ(a.convergence_ms, b.convergence_ms);
}

TEST(Mobility, SyncSurvivesPedestrianMovement) {
  auto config = mobile_config(1.5, 50);  // 5 simulated seconds
  auto positions = core::deploy(config);
  ObservableSt engine(std::move(positions), config.protocol, config.radio, config.seed);
  (void)engine.run();
  // After 5 s of walking, the network still forms one fragment and the
  // firing spread is within a few slots.
  EXPECT_EQ(engine.fragment_count(), 1U);
  EXPECT_LE(engine.firing_spread_slots(), 5);
}

TEST(Mobility, TreeRepairsAfterChurn) {
  // At vehicular speed across a fixed 100 m box, neighbourhoods change
  // completely several times over; the tree must keep repairing rather
  // than fragmenting permanently.
  auto config = mobile_config(10.0, 80);
  auto positions = core::deploy(config);
  ObservableSt engine(std::move(positions), config.protocol, config.radio, config.seed);
  const auto metrics = engine.run();
  EXPECT_LE(engine.fragment_count(), 3U);
  EXPECT_GT(metrics.rach2_messages, 0U);
}

TEST(Mobility, ConvergenceStillRecordedWithoutStopping) {
  auto config = mobile_config(1.0, 60);
  const auto metrics = core::run_trial(core::Protocol::kSt, config);
  // The run went the full duration...
  EXPECT_NEAR(metrics.simulated_ms, 60.0 * 100.0, 1.0);
  // ...but the convergence instant was still captured.
  EXPECT_TRUE(metrics.converged);
  EXPECT_LT(metrics.convergence_ms, metrics.simulated_ms);
}

}  // namespace
