// Tests for path-loss models (src/phy/pathloss.hpp), pinned to the paper's
// Table I formulas.
#include "phy/pathloss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace firefly::phy;
using firefly::util::Db;

TEST(PaperDualSlope, TableOneFormulaNearField) {
  PaperDualSlope model;
  // PL = 4.35 + 25·log10(d) for d < 6.
  EXPECT_NEAR(model.loss(1.0).value, 4.35, 1e-12);
  EXPECT_NEAR(model.loss(2.0).value, 4.35 + 25.0 * std::log10(2.0), 1e-12);
  EXPECT_NEAR(model.loss(5.9).value, 4.35 + 25.0 * std::log10(5.9), 1e-12);
}

TEST(PaperDualSlope, TableOneFormulaFarField) {
  PaperDualSlope model;
  // PL = 40.0 + 40·log10(d) for d >= 6.
  EXPECT_NEAR(model.loss(6.0).value, 40.0 + 40.0 * std::log10(6.0), 1e-12);
  EXPECT_NEAR(model.loss(10.0).value, 80.0, 1e-12);
  EXPECT_NEAR(model.loss(100.0).value, 120.0, 1e-12);
}

TEST(PaperDualSlope, MonotoneNonDecreasing) {
  PaperDualSlope model;
  double prev = -1e18;
  for (double d = 0.1; d < 500.0; d *= 1.07) {
    const double pl = model.loss(d).value;
    EXPECT_GE(pl, prev) << "at d=" << d;
    prev = pl;
  }
}

TEST(PaperDualSlope, ClampsBelowMinDistance) {
  PaperDualSlope model;
  EXPECT_DOUBLE_EQ(model.loss(0.0).value, model.loss(model.min_distance()).value);
  EXPECT_DOUBLE_EQ(model.loss(1e-9).value, model.loss(model.min_distance()).value);
}

TEST(PaperDualSlope, InversionRoundTripsBothRegimes) {
  PaperDualSlope model;
  for (const double d : {0.5, 2.0, 5.0, 6.0, 10.0, 50.0, 89.0, 300.0}) {
    const Db pl = model.loss(d);
    EXPECT_NEAR(model.distance_for_loss(pl), d, 1e-9) << "d=" << d;
  }
}

TEST(PaperDualSlope, GapLossesSnapToBreakpoint) {
  PaperDualSlope model;
  // Losses strictly between the near-field value at 6 m (~23.8 dB) and the
  // far-field value at 6 m (~71.1 dB) have no preimage.
  EXPECT_DOUBLE_EQ(model.distance_for_loss(Db{40.0}), PaperDualSlope::kBreakpoint);
  EXPECT_DOUBLE_EQ(model.distance_for_loss(Db{60.0}), PaperDualSlope::kBreakpoint);
}

TEST(PaperDualSlope, PaperLinkBudgetRange) {
  // 23 dBm - (-95 dBm) = 118 dB budget → d = 10^((118-40)/40) ≈ 89.1 m.
  PaperDualSlope model;
  EXPECT_NEAR(model.distance_for_loss(Db{118.0}), std::pow(10.0, 78.0 / 40.0), 1e-9);
}

TEST(LogDistance, MatchesEquationSeven) {
  // p** = p* + 10·n·log10(r/r0): loss grows by 10·n dB per decade.
  LogDistance model(4.0, 1.0, Db{40.0});
  EXPECT_NEAR(model.loss(1.0).value, 40.0, 1e-12);
  EXPECT_NEAR(model.loss(10.0).value, 80.0, 1e-12);
  EXPECT_NEAR(model.loss(100.0).value, 120.0, 1e-12);
  EXPECT_DOUBLE_EQ(model.exponent(), 4.0);
}

TEST(LogDistance, IndoorOutdoorExponents) {
  // Section III: n = 2 indoor, n = 4 outdoor.
  LogDistance indoor(2.0);
  LogDistance outdoor(4.0);
  const double d = 50.0;
  EXPECT_LT(indoor.loss(d).value, outdoor.loss(d).value);
  EXPECT_NEAR(outdoor.loss(d).value - indoor.loss(d).value,
              10.0 * 2.0 * std::log10(d), 1e-9);
}

TEST(LogDistance, InversionRoundTrip) {
  LogDistance model(3.5, 2.0, Db{47.0});
  for (const double d : {0.5, 2.0, 20.0, 200.0}) {
    EXPECT_NEAR(model.distance_for_loss(model.loss(d)), d, 1e-9);
  }
}

TEST(FreeSpace, FriisAtTwoGigahertz) {
  FreeSpace model(2.0e9);
  // Friis at 1 m, 2 GHz: 20·log10(2e9) - 147.55 ≈ 38.47 dB.
  EXPECT_NEAR(model.loss(1.0).value, 20.0 * std::log10(2.0e9) - 147.55, 1e-9);
  // +20 dB per decade of distance.
  EXPECT_NEAR(model.loss(10.0).value - model.loss(1.0).value, 20.0, 1e-9);
  EXPECT_NEAR(model.distance_for_loss(model.loss(25.0)), 25.0, 1e-9);
}

TEST(Factories, ProduceExpectedModels) {
  const auto paper = make_paper_model();
  EXPECT_EQ(paper->name(), "paper-dual-slope");
  const auto outdoor = make_outdoor_log_distance();
  EXPECT_NE(outdoor->name().find("log-distance"), std::string::npos);
  // Anchored so the two agree at 10 m in the far field.
  EXPECT_NEAR(paper->loss(10.0).value, outdoor->loss(10.0).value, 1e-9);
}

}  // namespace
