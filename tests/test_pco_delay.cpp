// Tests for the delayed pulse-coupled oscillator model: propagation delay
// is exactly what breaks naive pulse coupling on radios (one delay of skew
// per absorption hop), motivating the protocols' reachback compensation.
#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "pco/network_pco.hpp"
#include "util/rng.hpp"

namespace {

using namespace firefly;
using pco::PcoNetwork;
using pco::PcoNetworkConfig;

graph::Graph full_mesh(std::size_t n) {
  graph::Graph g(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) g.add_edge(u, v, 1.0);
  }
  return g;
}

TEST(PcoDelay, ZeroDelayMatchesInstantaneousModel) {
  graph::Graph mesh = full_mesh(20);
  PcoNetworkConfig config;
  config.prc = pco::PrcParams{3.0, 0.2};
  util::Rng rng(1);
  const auto result = PcoNetwork(mesh, config, rng).run();
  EXPECT_TRUE(result.converged);
}

TEST(PcoDelay, DelayedMeshReachesLooseToleranceOnly) {
  // With a 2%-of-period delay the mesh aligns to within ~one delay but can
  // never beat it: loose tolerance converges, tight tolerance does not.
  graph::Graph mesh = full_mesh(16);

  PcoNetworkConfig loose;
  loose.prc = pco::PrcParams{3.0, 0.3};
  loose.delay_s = 0.002;      // 2% of the 0.1 s period
  loose.refractory_s = 0.01;  // echo guard (> 2·delay), standard for radios
  loose.spread_tolerance = 0.05;
  loose.max_time_s = 200.0;
  util::Rng rng1(2);
  const auto loose_result = PcoNetwork(mesh, loose, rng1).run();
  EXPECT_TRUE(loose_result.converged);

  PcoNetworkConfig tight = loose;
  tight.spread_tolerance = 1e-4;  // tighter than the delay skew
  tight.max_time_s = 50.0;
  util::Rng rng2(2);
  const auto tight_result = PcoNetwork(mesh, tight, rng2).run();
  EXPECT_FALSE(tight_result.converged);
  // The residual spread is on the order of the delay (in phase units).
  EXPECT_GT(tight_result.final_spread, 1e-4);
}

TEST(PcoDelay, SkewGrowsWithDelay) {
  graph::Graph mesh = full_mesh(16);
  auto residual_spread = [&](double delay_s) {
    PcoNetworkConfig config;
    config.prc = pco::PrcParams{3.0, 0.3};
    config.delay_s = delay_s;
    config.spread_tolerance = 1e-9;  // never met: measure the floor
    config.max_time_s = 30.0;
    util::Rng rng(3);
    return PcoNetwork(mesh, config, rng).run().final_spread;
  };
  const double small = residual_spread(0.001);
  const double large = residual_spread(0.01);
  EXPECT_GT(large, small);
}

TEST(PcoDelay, DelayedModelStillCountsFirings) {
  graph::Graph mesh = full_mesh(10);
  PcoNetworkConfig config;
  config.prc = pco::PrcParams{3.0, 0.2};
  config.delay_s = 0.001;
  config.spread_tolerance = 0.05;
  util::Rng rng(4);
  const auto result = PcoNetwork(mesh, config, rng).run();
  EXPECT_GT(result.total_firings, 0U);
  EXPECT_GT(result.cycles, 0U);
}

TEST(PcoDelay, RefractorySuppressesEcho) {
  // Without refractory, two coupled oscillators with delay can ping-pong;
  // with a refractory window longer than the delay they settle.
  graph::Graph pair(2);
  pair.add_edge(0, 1, 1.0);
  PcoNetworkConfig config;
  config.prc = pco::PrcParams{3.0, 0.5};
  config.delay_s = 0.004;
  config.refractory_s = 0.01;
  config.spread_tolerance = 0.06;
  config.max_time_s = 100.0;
  util::Rng rng(5);
  const auto result = PcoNetwork(pair, config, rng).run();
  EXPECT_TRUE(result.converged);
}

}  // namespace
