// Tests for the long-lived service mode (core/service_mode): windowed soak
// telemetry, the snapshot/restore rollback checkpoint (byte-identical
// RunMetrics after a mid-soak restore), scheduler-backend equivalence, the
// recorder's backpressure accounting and the config-validation paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "core/service_mode.hpp"
#include "proto/st.hpp"
#include "sim/soak.hpp"

namespace {

using namespace firefly;

core::ScenarioConfig soak_scenario(std::uint64_t seed = 11) {
  core::ScenarioConfig config;
  config.n = 24;
  config.seed = seed;
  config.protocol.faults.churn_rate_per_min = 120.0;  // 2 crashes/sec
  config.protocol.faults.mean_downtime_ms = 900.0;
  return config;
}

core::ServiceConfig short_soak() {
  core::ServiceConfig service;
  service.duration_slots = 25'000;
  service.window_slots = 1'000;
  return service;
}

/// StEngine with the service API opened up for direct driving.
class ServiceSt : public proto::StEngine {
 public:
  using proto::StEngine::StEngine;
  using proto::StEngine::restore;
  using proto::StEngine::run_service;
  using proto::StEngine::snapshot;
};

TEST(ServiceMode, EmitsOneWindowPerSlice) {
  sim::SoakRecorder recorder;
  const core::ServiceReport report = core::run_service_trial(
      core::Protocol::kSt, soak_scenario(), short_soak(), {}, &recorder);
  ASSERT_TRUE(report.ok()) << report.error;
  EXPECT_EQ(report.windows, 25u);
  EXPECT_EQ(recorder.emitted(), 25u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(report.windows_dropped, 0u);

  std::vector<sim::SoakWindow> windows;
  recorder.drain([&](const sim::SoakWindow& w) { windows.push_back(w); });
  ASSERT_EQ(windows.size(), 25u);
  std::uint64_t crashes = 0, messages = 0;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].index, i);
    EXPECT_EQ(windows[i].start_slot, static_cast<std::int64_t>(i) * 1'000);
    EXPECT_EQ(windows[i].end_slot, static_cast<std::int64_t>(i + 1) * 1'000);
    EXPECT_LE(windows[i].live_devices, 24u);
    EXPECT_GT(windows[i].live_devices, 0u);
    crashes += windows[i].crashes;
    messages += windows[i].messages;
  }
  // Window deltas add up to the run totals.
  EXPECT_EQ(crashes, report.metrics.crashes);
  EXPECT_EQ(messages, report.metrics.total_messages());
  EXPECT_GT(crashes, 0u) << "soak saw no churn";
  // The memory probe is populated (wheel scheduler has an arena).
  EXPECT_GT(report.arena_capacity, 0u);
  EXPECT_GT(report.arena_high_water, 0u);
  EXPECT_LE(report.arena_high_water, report.arena_capacity);
}

TEST(ServiceMode, SnapshotRestoreReproducesByteIdenticalMetrics) {
  const core::ScenarioConfig config = soak_scenario(5);
  core::ServiceConfig service = short_soak();
  service.snapshot_every_slots = 10'000;  // checkpoints at slots 10k and 20k

  const std::vector<geo::Vec2> positions = core::deploy(config);

  // Uninterrupted reference run (no snapshots at all).
  ServiceSt reference(positions, config.protocol, config.radio, config.seed);
  const core::ServiceReport ref = reference.run_service(short_soak());
  ASSERT_TRUE(ref.ok()) << ref.error;

  // Snapshotting run: identical metrics (checkpointing is a pure observer) …
  ServiceSt checkpointed(positions, config.protocol, config.radio, config.seed);
  const core::ServiceReport with_snaps = checkpointed.run_service(service);
  ASSERT_TRUE(with_snaps.ok()) << with_snaps.error;
  EXPECT_EQ(with_snaps.snapshots, 2u);
  EXPECT_TRUE(ref.metrics == with_snaps.metrics)
      << "taking snapshots perturbed the run";

  // … and rolling back to the slot-20k checkpoint then re-running the tail
  // reproduces the exact same end state, byte for byte.
  ASSERT_NE(checkpointed.service_snapshot(), nullptr);
  checkpointed.restore(*checkpointed.service_snapshot());
  const core::ServiceReport resumed = checkpointed.run_service(service);
  ASSERT_TRUE(resumed.ok()) << resumed.error;
  EXPECT_EQ(resumed.windows, 5u) << "resume should cover slots 20k..25k";
  EXPECT_TRUE(ref.metrics == resumed.metrics)
      << "restored run diverged from the uninterrupted one";
}

TEST(ServiceMode, RestoreRewindsAndReplaysWindows) {
  const core::ScenarioConfig config = soak_scenario(9);
  core::ServiceConfig service = short_soak();
  service.duration_slots = 10'000;
  service.snapshot_every_slots = 4'000;  // checkpoints land at slots 4k and 8k

  const std::vector<geo::Vec2> positions = core::deploy(config);
  ServiceSt engine(positions, config.protocol, config.radio, config.seed);

  sim::SoakRecorder first_pass;
  const core::ServiceReport report = engine.run_service(service, &first_pass);
  ASSERT_TRUE(report.ok()) << report.error;
  std::vector<sim::SoakWindow> all;
  first_pass.drain([&](const sim::SoakWindow& w) { all.push_back(w); });
  ASSERT_EQ(all.size(), 10u);

  ASSERT_NE(engine.service_snapshot(), nullptr);
  engine.restore(*engine.service_snapshot());
  sim::SoakRecorder replay;
  const core::ServiceReport resumed = engine.run_service(service, &replay);
  ASSERT_TRUE(resumed.ok()) << resumed.error;
  std::vector<sim::SoakWindow> tail;
  replay.drain([&](const sim::SoakWindow& w) { tail.push_back(w); });
  ASSERT_EQ(tail.size(), 2u) << "last checkpoint was at slot 8000";
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_TRUE(tail[i] == all[8 + i])
        << "replayed window " << tail[i].index << " differs";
  }
}

TEST(ServiceMode, WheelAndHeapSchedulersAgree) {
  core::ScenarioConfig config = soak_scenario(3);
  config.n = 16;
  core::ServiceConfig service = short_soak();
  service.duration_slots = 12'000;

  config.protocol.scheduler = sim::SchedulerKind::kWheel;
  const core::ServiceReport wheel =
      core::run_service_trial(core::Protocol::kSt, config, service);
  config.protocol.scheduler = sim::SchedulerKind::kHeap;
  const core::ServiceReport heap =
      core::run_service_trial(core::Protocol::kSt, config, service);
  ASSERT_TRUE(wheel.ok() && heap.ok());
  EXPECT_TRUE(wheel.metrics == heap.metrics)
      << "service runs must be scheduler-backend independent";
  // Only the arena probe may differ: the reference heap has no arena.
  EXPECT_GT(wheel.arena_capacity, 0u);
  EXPECT_EQ(heap.arena_capacity, 0u);
}

TEST(ServiceMode, RejectsPlansEndingBeforeHorizon) {
  core::ScenarioConfig config = soak_scenario();
  config.protocol.faults.churn_stop_ms = 4'000.0;
  const core::ServiceReport report =
      core::run_service_trial(core::Protocol::kSt, config, short_soak());
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.error.find("churn stops"), std::string::npos) << report.error;
  EXPECT_EQ(report.windows, 0u) << "a rejected soak must not run";
}

TEST(ServiceMode, RejectsMobilityAndBadConfig) {
  core::ScenarioConfig config = soak_scenario();
  config.protocol.mobility_speed_mps = 1.5;
  EXPECT_FALSE(core::run_service_trial(core::Protocol::kSt, config, short_soak()).ok());

  core::ServiceConfig bad = short_soak();
  bad.window_slots = 0;
  EXPECT_FALSE(core::run_service_trial(core::Protocol::kSt, soak_scenario(), bad).ok());
}

TEST(SoakRecorder, RingDropsOldestAndCountsIt) {
  sim::SoakRecorder recorder(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    sim::SoakWindow w;
    w.index = i;
    recorder.push(w);
  }
  EXPECT_EQ(recorder.emitted(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
  EXPECT_EQ(recorder.buffered(), 4u);
  std::vector<std::uint64_t> seen;
  recorder.drain([&](const sim::SoakWindow& w) { seen.push_back(w.index); });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{6, 7, 8, 9}));
  EXPECT_EQ(recorder.buffered(), 0u);
}

TEST(SoakRecorder, StreamingConsumerNeverDrops) {
  sim::SoakRecorder recorder(2);
  std::vector<std::uint64_t> seen;
  recorder.set_consumer([&](const sim::SoakWindow& w) { seen.push_back(w.index); });
  for (std::uint64_t i = 0; i < 8; ++i) {
    sim::SoakWindow w;
    w.index = i;
    recorder.push(w);
  }
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.buffered(), 0u);
}

}  // namespace
