// Tests for log-normal shadowing models (src/phy/shadowing.hpp).
#include "phy/shadowing.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace {

using namespace firefly::phy;
using firefly::util::Rng;

TEST(NoShadowing, AlwaysZero) {
  NoShadowing model;
  EXPECT_DOUBLE_EQ(model.sample(1, 2).value, 0.0);
  EXPECT_DOUBLE_EQ(model.sigma_db(), 0.0);
}

TEST(IidShadowing, MomentsMatchSigma) {
  IidShadowing model(10.0, Rng(1));
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = model.sample(0, 1).value;
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.15);
  EXPECT_NEAR(sum2 / n, 100.0, 2.0);
  EXPECT_DOUBLE_EQ(model.sigma_db(), 10.0);
}

TEST(IidShadowing, FreshDrawEveryCall) {
  IidShadowing model(10.0, Rng(2));
  EXPECT_NE(model.sample(0, 1).value, model.sample(0, 1).value);
}

TEST(PerLinkShadowing, MemoisedPerLink) {
  PerLinkShadowing model(10.0, Rng(3));
  const double first = model.sample(4, 9).value;
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(model.sample(4, 9).value, first);
}

TEST(PerLinkShadowing, SymmetricLinks) {
  PerLinkShadowing model(10.0, Rng(4));
  for (std::uint32_t a = 0; a < 8; ++a) {
    for (std::uint32_t b = a + 1; b < 8; ++b) {
      EXPECT_DOUBLE_EQ(model.sample(a, b).value, model.sample(b, a).value);
    }
  }
}

TEST(PerLinkShadowing, DistinctLinksIndependent) {
  PerLinkShadowing model(10.0, Rng(5));
  // 20 links, all draws distinct (collision probability ~0 for doubles).
  double prev = model.sample(0, 1).value;
  int distinct = 0;
  for (std::uint32_t i = 2; i < 22; ++i) {
    const double x = model.sample(0, i).value;
    if (x != prev) ++distinct;
    prev = x;
  }
  EXPECT_EQ(distinct, 20);
}

TEST(PerLinkShadowing, StatisticsAcrossLinks) {
  PerLinkShadowing model(6.0, Rng(6));
  double sum = 0.0, sum2 = 0.0;
  int n = 0;
  for (std::uint32_t a = 0; a < 200; ++a) {
    for (std::uint32_t b = a + 1; b < a + 6; ++b) {
      const double x = model.sample(a, b + 200).value;
      sum += x;
      sum2 += x * x;
      ++n;
    }
  }
  EXPECT_NEAR(sum / n, 0.0, 0.6);
  EXPECT_NEAR(sum2 / n, 36.0, 4.0);
}

TEST(PerLinkShadowing, ResetRedraws) {
  PerLinkShadowing model(10.0, Rng(7));
  const double before = model.sample(1, 2).value;
  model.reset();
  const double after = model.sample(1, 2).value;
  EXPECT_NE(before, after);
}

}  // namespace
