// Tests for RSSI ranging and its analytic error model (src/phy/rssi.hpp),
// i.e. the paper's equations (6), (11) and (12).
#include "phy/rssi.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "phy/pathloss.hpp"
#include "util/rng.hpp"

namespace {

using namespace firefly::phy;
using firefly::util::Dbm;
using firefly::util::Rng;

TEST(RssiRanging, ExactWithoutShadowing) {
  PaperDualSlope model;
  const RssiRanging ranging(&model, Dbm{23.0});
  for (const double d : {1.0, 3.0, 10.0, 50.0, 89.0}) {
    const Dbm rx = Dbm{23.0} - model.loss(d);
    EXPECT_NEAR(ranging.estimate_distance(rx), d, 1e-9) << "d=" << d;
  }
}

TEST(RssiRanging, RelativeErrorDefinition) {
  // eq. (6): ε = r*/r − 1.
  EXPECT_DOUBLE_EQ(RssiRanging::relative_error(12.0, 10.0), 0.2);
  EXPECT_DOUBLE_EQ(RssiRanging::relative_error(8.0, 10.0), -0.2);
  EXPECT_DOUBLE_EQ(RssiRanging::relative_error(10.0, 10.0), 0.0);
}

TEST(RangingDistortion, EquationElevenFactor) {
  // r* = r · 10^(x / 10n).
  EXPECT_DOUBLE_EQ(ranging_distortion(0.0, 4.0), 1.0);
  EXPECT_NEAR(ranging_distortion(10.0, 4.0), std::pow(10.0, 0.25), 1e-12);
  EXPECT_NEAR(ranging_distortion(-10.0, 4.0), std::pow(10.0, -0.25), 1e-12);
  // Indoor exponent (n = 2) doubles the exponent's magnitude vs n = 4.
  EXPECT_GT(ranging_distortion(10.0, 2.0), ranging_distortion(10.0, 4.0));
}

TEST(AnalyticError, ZeroShadowingIsExact) {
  const RangingErrorStats stats = analytic_ranging_error(0.0, 4.0);
  EXPECT_DOUBLE_EQ(stats.mean_ratio, 1.0);
  EXPECT_DOUBLE_EQ(stats.stddev_ratio, 0.0);
  EXPECT_DOUBLE_EQ(stats.median_ratio, 1.0);
  EXPECT_DOUBLE_EQ(stats.p90_ratio, 1.0);
}

struct ErrorCase {
  double sigma_db;
  double exponent;
};

class AnalyticVsMonteCarlo : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(AnalyticVsMonteCarlo, MomentsMatchSimulation) {
  const auto [sigma, n] = GetParam();
  const RangingErrorStats stats = analytic_ranging_error(sigma, n);

  Rng rng(1234);
  const int samples = 400000;
  double sum = 0.0, sum2 = 0.0;
  int above_p90 = 0;
  for (int i = 0; i < samples; ++i) {
    const double ratio = ranging_distortion(rng.normal(0.0, sigma), n);
    sum += ratio;
    sum2 += ratio * ratio;
    if (ratio > stats.p90_ratio) ++above_p90;
  }
  const double mean = sum / samples;
  const double var = sum2 / samples - mean * mean;
  EXPECT_NEAR(mean, stats.mean_ratio, 0.02 * stats.mean_ratio) << "sigma=" << sigma;
  EXPECT_NEAR(std::sqrt(var), stats.stddev_ratio, 0.05 * stats.stddev_ratio + 0.01);
  EXPECT_NEAR(above_p90 / static_cast<double>(samples), 0.10, 0.005);
}

INSTANTIATE_TEST_SUITE_P(
    SweepSigmaAndExponent, AnalyticVsMonteCarlo,
    ::testing::Values(ErrorCase{2.0, 4.0}, ErrorCase{6.0, 4.0}, ErrorCase{10.0, 4.0},
                      ErrorCase{10.0, 2.0}, ErrorCase{12.0, 3.0}));

TEST(AnalyticError, MedianUnbiasedButMeanBiasedUp) {
  // The log-normal distortion has median 1 but mean > 1: RSSI ranging
  // overestimates distance on average, the asymmetry the paper's ε ∈
  // [−1, +∞] interval reflects.
  const RangingErrorStats stats = analytic_ranging_error(10.0, 4.0);
  EXPECT_DOUBLE_EQ(stats.median_ratio, 1.0);
  EXPECT_GT(stats.mean_ratio, 1.0);
  EXPECT_GT(stats.p90_ratio, 1.0);
}

TEST(AnalyticError, HigherExponentShrinksError) {
  // eq. (12): error scales with 1/n — outdoor (n = 4) ranging is more
  // accurate than indoor (n = 2) at equal shadowing.
  const auto outdoor = analytic_ranging_error(10.0, 4.0);
  const auto indoor = analytic_ranging_error(10.0, 2.0);
  EXPECT_LT(outdoor.stddev_ratio, indoor.stddev_ratio);
  EXPECT_LT(outdoor.p90_ratio, indoor.p90_ratio);
}

TEST(RssiRanging, EndToEndWithShadowedChannel) {
  // Ranging through the dual-slope model with a known shadowing draw
  // reproduces eq. (11)'s multiplicative distortion in the far field.
  PaperDualSlope model;
  const RssiRanging ranging(&model, Dbm{23.0});
  const double d = 30.0;
  const double shadow_db = 8.0;  // extra loss → overestimate
  const Dbm rx = Dbm{23.0} - model.loss(d) - firefly::util::Db{shadow_db};
  const double estimated = ranging.estimate_distance(rx);
  EXPECT_NEAR(estimated / d, ranging_distortion(shadow_db, 4.0), 1e-9);
}

}  // namespace
