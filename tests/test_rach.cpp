// Tests for the RACH codec abstraction (src/mac/rach.hpp).
#include "mac/rach.hpp"

#include <gtest/gtest.h>

namespace {

using namespace firefly::mac;

TEST(Rach, CodecNames) {
  EXPECT_STREQ(to_string(RachCodec::kRach1), "RACH1");
  EXPECT_STREQ(to_string(RachCodec::kRach2), "RACH2");
}

TEST(Rach, PsTypeNames) {
  EXPECT_STREQ(to_string(PsType::kSyncPulse), "sync-pulse");
  EXPECT_STREQ(to_string(PsType::kDiscovery), "discovery");
  EXPECT_STREQ(to_string(PsType::kConnectRequest), "connect-request");
  EXPECT_STREQ(to_string(PsType::kConnectAccept), "connect-accept");
  EXPECT_STREQ(to_string(PsType::kMergeAnnounce), "merge-announce");
  EXPECT_STREQ(to_string(PsType::kHeadToken), "head-token");
  EXPECT_STREQ(to_string(PsType::kSyncFlood), "sync-flood");
}

TEST(Rach, SameResourceRequiresCodecAndIndex) {
  const Preamble a{RachCodec::kRach1, 5};
  const Preamble b{RachCodec::kRach1, 5};
  const Preamble c{RachCodec::kRach2, 5};   // other codec: orthogonal (OFDMA)
  const Preamble d{RachCodec::kRach1, 6};   // other preamble: orthogonal ZC
  EXPECT_TRUE(same_resource(a, b));
  EXPECT_FALSE(same_resource(a, c));
  EXPECT_FALSE(same_resource(a, d));
}

TEST(Rach, DeterministicPreambleAssignment) {
  const Preamble p = preamble_for_device(RachCodec::kRach1, 7);
  EXPECT_EQ(p.codec, RachCodec::kRach1);
  EXPECT_EQ(p.index, 7U);
  // Wraps modulo the pool.
  EXPECT_EQ(preamble_for_device(RachCodec::kRach2, kPreamblePoolSize + 3).index, 3U);
}

TEST(Rach, PoolSizeMatchesLte) {
  EXPECT_EQ(kPreamblePoolSize, 64U);  // 3GPP 36.211: 64 preambles per cell
}

}  // namespace
