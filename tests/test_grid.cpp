// Unit tests for geo::SpatialGrid: membership bookkeeping, disc queries as
// supersets of the true disc, and incremental cell updates under random and
// random-waypoint movement.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "geo/grid.hpp"
#include "geo/mobility.hpp"
#include "geo/point.hpp"
#include "util/rng.hpp"

namespace {

using firefly::geo::Area;
using firefly::geo::RandomWaypoint;
using firefly::geo::SpatialGrid;
using firefly::geo::Vec2;
using firefly::util::Rng;

std::vector<Vec2> random_positions(std::size_t n, double side, Rng& rng) {
  std::vector<Vec2> positions(n);
  for (Vec2& p : positions) p = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
  return positions;
}

/// Every id, exactly once, across all cells.
std::vector<std::uint32_t> all_members_sorted(const SpatialGrid& grid) {
  std::vector<std::uint32_t> ids;
  for (std::size_t c = 0; c < grid.cell_count(); ++c) {
    const auto& members = grid.cell_members(c);
    ids.insert(ids.end(), members.begin(), members.end());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(SpatialGrid, BuildAssignsEveryDeviceToItsCell) {
  Rng rng(11);
  const auto positions = random_positions(200, 500.0, rng);
  SpatialGrid grid;
  grid.build(positions, 50.0);

  ASSERT_TRUE(grid.built());
  EXPECT_EQ(grid.device_count(), positions.size());
  const auto ids = all_members_sorted(grid);
  ASSERT_EQ(ids.size(), positions.size());
  for (std::uint32_t id = 0; id < ids.size(); ++id) EXPECT_EQ(ids[id], id);

  for (std::uint32_t id = 0; id < positions.size(); ++id) {
    const auto& members = grid.cell_members(grid.cell_index(positions[id]));
    EXPECT_NE(std::find(members.begin(), members.end(), id), members.end())
        << "device " << id << " missing from its own cell";
  }
}

TEST(SpatialGrid, GatherIsASupersetOfTheDisc) {
  Rng rng(12);
  const auto positions = random_positions(300, 400.0, rng);
  SpatialGrid grid;
  grid.build(positions, 60.0);

  for (int trial = 0; trial < 20; ++trial) {
    const Vec2 center{rng.uniform(0.0, 400.0), rng.uniform(0.0, 400.0)};
    const double radius = rng.uniform(10.0, 150.0);
    std::vector<std::uint32_t> near;
    grid.gather(center, radius, near);
    std::sort(near.begin(), near.end());
    for (std::uint32_t id = 0; id < positions.size(); ++id) {
      if (firefly::geo::distance(positions[id], center) <= radius) {
        EXPECT_TRUE(std::binary_search(near.begin(), near.end(), id))
            << "device " << id << " inside the disc but not gathered";
      }
    }
  }
}

TEST(SpatialGrid, QueryRadiusLargerThanWorldReturnsEveryone) {
  Rng rng(13);
  const auto positions = random_positions(50, 100.0, rng);
  SpatialGrid grid;
  grid.build(positions, 1000.0);  // single cell
  std::vector<std::uint32_t> near;
  grid.gather({50.0, 50.0}, 1000.0, near);
  EXPECT_EQ(near.size(), positions.size());
}

TEST(SpatialGrid, MoveTransfersCellMembership) {
  const std::vector<Vec2> positions{{5.0, 5.0}, {95.0, 95.0}, {5.0, 95.0}};
  SpatialGrid grid;
  grid.build(positions, 10.0);

  const std::size_t old_cell = grid.cell_index({5.0, 5.0});
  const std::size_t new_cell = grid.cell_index({55.0, 55.0});
  ASSERT_NE(old_cell, new_cell);

  grid.move(0, {55.0, 55.0});
  const auto& old_members = grid.cell_members(old_cell);
  const auto& new_members = grid.cell_members(new_cell);
  EXPECT_EQ(std::find(old_members.begin(), old_members.end(), 0U), old_members.end());
  EXPECT_NE(std::find(new_members.begin(), new_members.end(), 0U), new_members.end());

  // After any move the device is findable via the cell of its new position.
  grid.move(1, {94.0, 94.0});
  const auto& corner = grid.cell_members(grid.cell_index({94.0, 94.0}));
  EXPECT_NE(std::find(corner.begin(), corner.end(), 1U), corner.end());
}

TEST(SpatialGrid, IncrementalMovesMatchARebuiltGrid) {
  // Anchor devices pin the bounding box so a freshly built grid over the
  // moved positions shares the incremental grid's origin and cell layout —
  // otherwise cell indices are not comparable across the two grids.
  Rng rng(14);
  auto positions = random_positions(120, 300.0, rng);
  positions[0] = {0.0, 0.0};
  positions[1] = {300.0, 300.0};
  SpatialGrid incremental;
  incremental.build(positions, 40.0);

  for (int step = 0; step < 400; ++step) {
    const auto id =
        2 + static_cast<std::size_t>(rng.uniform_index(positions.size() - 2));
    positions[id] = {rng.uniform(0.0, 300.0), rng.uniform(0.0, 300.0)};
    incremental.move(id, positions[id]);
  }

  SpatialGrid rebuilt;
  rebuilt.build(positions, 40.0);
  ASSERT_EQ(incremental.cell_count(), rebuilt.cell_count());
  for (std::size_t c = 0; c < rebuilt.cell_count(); ++c) {
    auto a = incremental.cell_members(c);
    auto b = rebuilt.cell_members(c);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "cell " << c << " diverged after incremental moves";
  }
}

TEST(SpatialGrid, CellMembershipTracksWaypointMobility) {
  // The engine's mobility step in miniature: random-waypoint movers advance,
  // the grid is updated incrementally, and membership must stay consistent
  // with the true positions — including waypoints outside the initial
  // bounding box being clamped into border cells.
  Rng rng(15);
  const Area area{200.0, 200.0};
  auto positions = random_positions(40, 200.0, rng);
  SpatialGrid grid;
  grid.build(positions, 30.0);

  std::vector<RandomWaypoint> movers;
  movers.reserve(positions.size());
  for (const Vec2 p : positions) movers.emplace_back(p, area, 5.0, 0.5, &rng);

  for (int step = 0; step < 50; ++step) {
    for (std::size_t id = 0; id < movers.size(); ++id) {
      positions[id] = movers[id].advance(1.0);
      grid.move(id, positions[id]);
    }
  }

  const auto ids = all_members_sorted(grid);
  ASSERT_EQ(ids.size(), positions.size());
  for (std::size_t id = 0; id < positions.size(); ++id) {
    const auto& members = grid.cell_members(grid.cell_index(positions[id]));
    EXPECT_NE(std::find(members.begin(), members.end(), static_cast<std::uint32_t>(id)),
              members.end())
        << "device " << id << " not in the cell of its current position";
  }
}

}  // namespace
