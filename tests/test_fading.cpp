// Tests for fast-fading models (src/phy/fading.hpp).
#include "phy/fading.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace {

using namespace firefly::phy;
using firefly::util::Rng;

TEST(NoFading, Zero) {
  NoFading model;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(model.sample(rng).value, 0.0);
  EXPECT_DOUBLE_EQ(model.mean_power_gain(), 1.0);
}

double empirical_mean_gain(const FadingModel& model, int n, std::uint64_t seed) {
  Rng rng(seed);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += std::pow(10.0, -model.sample(rng).value / 10.0);
  }
  return sum / n;
}

TEST(Rayleigh, UnitMeanPowerGain) {
  RayleighFading model;
  EXPECT_NEAR(empirical_mean_gain(model, 200000, 2), 1.0, 0.02);
}

TEST(Rayleigh, MedianLossNearOnePointSixDb) {
  // Median of Exp(1) is ln 2 → median loss = -10·log10(ln 2) ≈ 1.59 dB.
  RayleighFading model;
  Rng rng(3);
  int deeper = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (model.sample(rng).value > 1.59) ++deeper;
  }
  EXPECT_NEAR(deeper / static_cast<double>(n), 0.5, 0.01);
}

TEST(Rayleigh, DeepFadesAreBounded) {
  // The -60 dB gain floor keeps losses finite.
  RayleighFading model;
  Rng rng(4);
  for (int i = 0; i < 200000; ++i) {
    const double loss = model.sample(rng).value;
    ASSERT_LE(loss, 60.0 + 1e-9);
    ASSERT_TRUE(std::isfinite(loss));
  }
}

class NakagamiParamTest : public ::testing::TestWithParam<double> {};

TEST_P(NakagamiParamTest, UnitMeanPowerGain) {
  NakagamiFading model(GetParam());
  EXPECT_NEAR(empirical_mean_gain(model, 150000, 5), 1.0, 0.025) << "m=" << GetParam();
}

TEST_P(NakagamiParamTest, VarianceShrinksWithM) {
  // Power gain ~ Gamma(m, 1/m): variance = 1/m.
  const double m = GetParam();
  NakagamiFading model(m);
  Rng rng(6);
  const int n = 150000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = std::pow(10.0, -model.sample(rng).value / 10.0);
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(var, 1.0 / m, 0.1 / m + 0.01) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(SweepM, NakagamiParamTest, ::testing::Values(0.5, 1.0, 2.0, 4.0));

TEST(Nakagami, MEqualsOneMatchesRayleighDistribution) {
  // Nakagami-1 is Rayleigh: compare empirical exceedance at a few points.
  NakagamiFading nak(1.0);
  RayleighFading ray;
  Rng rng_n(7), rng_r(7);
  const int n = 100000;
  int nak_deep = 0, ray_deep = 0;
  for (int i = 0; i < n; ++i) {
    if (nak.sample(rng_n).value > 10.0) ++nak_deep;
    if (ray.sample(rng_r).value > 10.0) ++ray_deep;
  }
  EXPECT_NEAR(nak_deep / static_cast<double>(n), ray_deep / static_cast<double>(n), 0.01);
}

}  // namespace
