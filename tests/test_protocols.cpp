// Integration tests: the FST baseline and the proposed ST algorithm running
// end to end over the simulated radio (src/proto/fst.hpp, st.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "proto/fst.hpp"
#include "core/scenario.hpp"
#include "proto/st.hpp"

namespace {

using namespace firefly;
using core::Protocol;
using core::RunMetrics;
using core::ScenarioConfig;

ScenarioConfig small_scenario(std::uint64_t seed) {
  ScenarioConfig config;
  config.n = 30;
  config.seed = seed;
  config.area_policy = core::AreaPolicy::kFixed;
  config.protocol.max_periods = 200;
  return config;
}

class ProtocolSeedTest
    : public ::testing::TestWithParam<std::tuple<Protocol, std::uint64_t>> {};

TEST_P(ProtocolSeedTest, ConvergesOnPaperScenario) {
  const auto [protocol, seed] = GetParam();
  const RunMetrics m = core::run_trial(protocol, small_scenario(seed));
  EXPECT_TRUE(m.converged) << core::to_string(protocol) << " seed " << seed;
  EXPECT_GT(m.convergence_ms, 0.0);
  EXPECT_LT(m.convergence_ms, small_scenario(seed).protocol.max_slots());
  EXPECT_GT(m.total_messages(), 0U);
  EXPECT_GT(m.mean_neighbors_discovered, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    BothProtocolsSeveralSeeds, ProtocolSeedTest,
    ::testing::Combine(::testing::Values(Protocol::kFst, Protocol::kSt),
                       ::testing::Values(1ULL, 2ULL, 3ULL)));

TEST(Fst, UsesOnlyRach1) {
  const RunMetrics m = core::run_trial(Protocol::kFst, small_scenario(7));
  EXPECT_GT(m.rach1_messages, 0U);
  EXPECT_EQ(m.rach2_messages, 0U);
  EXPECT_EQ(m.final_fragments, 0U);  // baseline grows no tree
}

TEST(St, UsesBothCodecs) {
  const RunMetrics m = core::run_trial(Protocol::kSt, small_scenario(7));
  EXPECT_GT(m.rach1_messages, 0U);
  EXPECT_GT(m.rach2_messages, 0U);
}

TEST(St, BuildsOneSpanningFragment) {
  const RunMetrics m = core::run_trial(Protocol::kSt, small_scenario(11));
  ASSERT_TRUE(m.converged);
  EXPECT_EQ(m.final_fragments, 1U);
  // A tree on n nodes has n-1 edges; the asynchronous merge races can leave
  // a few extra coupling edges, never fewer.
  EXPECT_GE(m.tree_edges, 29U);
  EXPECT_LE(m.tree_edges, 29U + 12U);
}

TEST(Protocols, DeterministicReplay) {
  for (const Protocol protocol : {Protocol::kFst, Protocol::kSt}) {
    const RunMetrics a = core::run_trial(protocol, small_scenario(13));
    const RunMetrics b = core::run_trial(protocol, small_scenario(13));
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_DOUBLE_EQ(a.convergence_ms, b.convergence_ms);
    EXPECT_EQ(a.total_messages(), b.total_messages());
    EXPECT_EQ(a.collisions, b.collisions);
    EXPECT_EQ(a.events_processed, b.events_processed);
  }
}

TEST(Protocols, DifferentSeedsGiveDifferentRuns) {
  const RunMetrics a = core::run_trial(Protocol::kSt, small_scenario(17));
  const RunMetrics b = core::run_trial(Protocol::kSt, small_scenario(18));
  EXPECT_NE(a.total_messages(), b.total_messages());
}

TEST(Protocols, SyncAndDiscoveryBothRecorded) {
  const RunMetrics m = core::run_trial(Protocol::kSt, small_scenario(19));
  ASSERT_TRUE(m.converged);
  EXPECT_GT(m.sync_ms, 0.0);
  EXPECT_GT(m.discovery_ms, 0.0);
  EXPECT_DOUBLE_EQ(m.convergence_ms, std::max(m.sync_ms, m.discovery_ms));
  // Per-link alignment can't be harder than global alignment.
  EXPECT_TRUE(m.locally_converged);
  EXPECT_LE(m.local_sync_ms, m.sync_ms);
}

TEST(Protocols, RangingErrorWithinAnalyticBallpark) {
  // Table I: σ = 10 dB, outdoor dual-slope (far-field exponent 4).  The
  // mean |ε| for the log-normal distortion is ~0.45; EWMA averaging of PS
  // strength shrinks it somewhat.  Just pin a sane interval.
  const RunMetrics m = core::run_trial(Protocol::kSt, small_scenario(23));
  EXPECT_GT(m.ranging_mean_abs_rel_error, 0.05);
  EXPECT_LT(m.ranging_mean_abs_rel_error, 1.5);
  EXPECT_GT(m.ranging_p90_rel_error, m.ranging_mean_abs_rel_error / 4.0);
}

TEST(Protocols, ServiceDiscoveryFindsPeers) {
  const RunMetrics m = core::run_trial(Protocol::kSt, small_scenario(29));
  // With 4 services, roughly a quarter of the discovered neighbours share
  // the device's interest.
  EXPECT_GT(m.mean_service_peers, 0.0);
  EXPECT_LT(m.mean_service_peers, m.mean_neighbors_discovered);
}

TEST(Protocols, StBeatsFstAtScaleOnMessages) {
  // The paper's headline: at large scale the proposed ST method needs
  // fewer messages to converge.  Use a mid-size density-scaled network so
  // the test stays fast but the separation is visible.
  ScenarioConfig config;
  config.n = 450;
  config.seed = 5;
  config.area_policy = core::AreaPolicy::kDensityScaled;
  const RunMetrics fst = core::run_trial(Protocol::kFst, config);
  const RunMetrics st = core::run_trial(Protocol::kSt, config);
  ASSERT_TRUE(fst.converged);
  ASSERT_TRUE(st.converged);
  EXPECT_LT(st.total_messages(), fst.total_messages());
  EXPECT_LT(st.convergence_ms, fst.convergence_ms);
}

TEST(Protocols, EngineExposesDeviceStates) {
  ScenarioConfig config = small_scenario(31);
  auto positions = core::deploy(config);
  proto::StEngine engine(positions, config.protocol, config.radio, config.seed);
  const RunMetrics m = engine.run();
  ASSERT_TRUE(m.converged);
  // All devices in one fragment, each with a reasonable neighbour table.
  std::set<std::uint16_t> labels;
  for (const auto& d : engine.devices()) {
    labels.insert(d.fragment);
    EXPECT_FALSE(d.neighbors.empty());
  }
  EXPECT_EQ(labels.size(), 1U);
}

}  // namespace
