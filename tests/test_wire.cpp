// Tests for PS payload packing (src/core/wire.hpp).
#include "core/wire.hpp"

#include <gtest/gtest.h>

namespace {

using namespace firefly::core;

TEST(Wire, PackUnpackRoundTrip) {
  const Fields f{0x1234, 0xABCD, 0x0042, 0xFFFF};
  const Fields g = unpack(pack(f));
  EXPECT_EQ(g.a, f.a);
  EXPECT_EQ(g.b, f.b);
  EXPECT_EQ(g.c, f.c);
  EXPECT_EQ(g.d, f.d);
}

TEST(Wire, FieldPlacement) {
  EXPECT_EQ(pack(Fields{1, 0, 0, 0}), 0x0000000000000001ULL);
  EXPECT_EQ(pack(Fields{0, 1, 0, 0}), 0x0000000000010000ULL);
  EXPECT_EQ(pack(Fields{0, 0, 1, 0}), 0x0000000100000000ULL);
  EXPECT_EQ(pack(Fields{0, 0, 0, 1}), 0x0001000000000000ULL);
}

TEST(Wire, ZeroAndMax) {
  EXPECT_EQ(pack(Fields{}), 0ULL);
  EXPECT_EQ(pack(Fields{0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF}), ~0ULL);
  const Fields f = unpack(~0ULL);
  EXPECT_EQ(f.a, 0xFFFF);
  EXPECT_EQ(f.d, 0xFFFF);
}

TEST(Wire, MergeKeyIsUniquePerPair) {
  EXPECT_NE(merge_key(1, 2), merge_key(2, 1));  // ordered pair
  EXPECT_NE(merge_key(1, 2), merge_key(1, 3));
  EXPECT_EQ(merge_key(7, 9), merge_key(7, 9));
  EXPECT_EQ(merge_key(0xFFFF, 0xFFFF), 0xFFFFFFFFU);
}

TEST(Wire, PackIsConstexpr) {
  static_assert(pack(Fields{1, 2, 3, 4}) ==
                (1ULL | (2ULL << 16) | (3ULL << 32) | (4ULL << 48)));
  static_assert(unpack(pack(Fields{5, 6, 7, 8})).c == 7);
  SUCCEED();
}

}  // namespace
