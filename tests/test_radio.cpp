// Tests for the broadcast radio medium (src/mac/radio.hpp): slot-boundary
// delivery, threshold filtering, collisions, capture, counters and the
// candidate cache.
#include "mac/radio.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "phy/channel.hpp"
#include "util/rng.hpp"

namespace {

using namespace firefly;
using mac::PsType;
using mac::RachCodec;
using mac::RadioMedium;
using mac::RxRecord;

struct World {
  sim::Simulator sim;
  std::unique_ptr<phy::Channel> channel;
  std::unique_ptr<RadioMedium> radio;
  // Per-receiver inboxes, filled by the radio's batched delivery sink.  All
  // tests here add devices in id order, so rx_index == id.
  std::vector<std::vector<RxRecord>> inbox;

  explicit World(double capture_margin_db = 3.0, phy::RadioParams params = {}) {
    channel = std::make_unique<phy::Channel>(
        params, std::make_unique<phy::PaperDualSlope>(),
        std::make_unique<phy::NoShadowing>(), std::make_unique<phy::NoFading>(),
        util::Rng(1));
    radio = std::make_unique<RadioMedium>(&sim, channel.get(), capture_margin_db);
    radio->set_delivery_sink([this](const mac::RxBatch& batch) {
      for (std::size_t k = 0; k < batch.count; ++k) {
        const RxRecord& r = batch.records[k];
        inbox[r.rx_index].push_back(r);
      }
    });
  }

  void add(std::uint32_t id, geo::Vec2 pos) {
    if (inbox.size() <= id) inbox.resize(id + 1);
    radio->add_device(id, pos);
  }
};

TEST(Radio, DeliversAtNextSlotBoundary) {
  World w;
  w.add(0, {0.0, 0.0});
  w.add(1, {10.0, 0.0});
  w.sim.schedule_at(sim::SimTime::microseconds(3'500), [&] {
    w.radio->broadcast(0, {RachCodec::kRach1, 1}, PsType::kDiscovery, 42);
  });
  w.sim.run();
  ASSERT_EQ(w.inbox[1].size(), 1U);
  // Sent inside slot 3, delivered at the slot-4 boundary.
  EXPECT_EQ(w.sim.now().us, 4000);
  EXPECT_EQ(w.inbox[1][0].sender, 0U);
  EXPECT_EQ(w.inbox[1][0].payload, 42U);
  EXPECT_EQ(w.inbox[1][0].slot_start.us, 3000);
}

TEST(Radio, NoSelfReception) {
  World w;
  w.add(0, {0.0, 0.0});
  w.add(1, {5.0, 0.0});
  w.sim.schedule_at(sim::SimTime::zero(), [&] {
    w.radio->broadcast(0, {RachCodec::kRach1, 0}, PsType::kSyncPulse, 0);
  });
  w.sim.run();
  EXPECT_TRUE(w.inbox[0].empty());
  EXPECT_EQ(w.inbox[1].size(), 1U);
}

TEST(Radio, SubThresholdReceiverHearsNothing) {
  World w;
  w.add(0, {0.0, 0.0});
  w.add(1, {95.0, 0.0});   // beyond the ~89 m median range
  w.add(2, {50.0, 0.0});   // inside
  w.sim.schedule_at(sim::SimTime::zero(), [&] {
    w.radio->broadcast(0, {RachCodec::kRach1, 0}, PsType::kSyncPulse, 0);
  });
  w.sim.run();
  EXPECT_TRUE(w.inbox[1].empty());
  EXPECT_EQ(w.inbox[2].size(), 1U);
}

TEST(Radio, SameResourceSameSlotCollides) {
  World w;
  // Two equidistant senders on the SAME preamble: neither captures.
  w.add(0, {0.0, 0.0});
  w.add(1, {20.0, 0.0});
  w.add(2, {10.0, 0.0});  // receiver in the middle
  w.sim.schedule_at(sim::SimTime::zero(), [&] {
    w.radio->broadcast(0, {RachCodec::kRach1, 7}, PsType::kSyncPulse, 0);
    w.radio->broadcast(1, {RachCodec::kRach1, 7}, PsType::kSyncPulse, 0);
  });
  w.sim.run();
  EXPECT_TRUE(w.inbox[2].empty());
  EXPECT_EQ(w.radio->counters().collisions, 2U);
}

TEST(Radio, DifferentPreamblesDoNotCollide) {
  World w;
  w.add(0, {0.0, 0.0});
  w.add(1, {20.0, 0.0});
  w.add(2, {10.0, 0.0});
  w.sim.schedule_at(sim::SimTime::zero(), [&] {
    w.radio->broadcast(0, {RachCodec::kRach1, 7}, PsType::kSyncPulse, 0);
    w.radio->broadcast(1, {RachCodec::kRach1, 8}, PsType::kSyncPulse, 0);
  });
  w.sim.run();
  EXPECT_EQ(w.inbox[2].size(), 2U);
  EXPECT_EQ(w.radio->counters().collisions, 0U);
}

TEST(Radio, DifferentCodecsAreOrthogonal) {
  World w;
  w.add(0, {0.0, 0.0});
  w.add(1, {20.0, 0.0});
  w.add(2, {10.0, 0.0});
  w.sim.schedule_at(sim::SimTime::zero(), [&] {
    w.radio->broadcast(0, {RachCodec::kRach1, 7}, PsType::kSyncPulse, 0);
    w.radio->broadcast(1, {RachCodec::kRach2, 7}, PsType::kConnectRequest, 0);
  });
  w.sim.run();
  EXPECT_EQ(w.inbox[2].size(), 2U);
}

TEST(Radio, CaptureEffectDecodesTheStrongSignal) {
  World w(3.0);
  w.add(0, {9.0, 0.0});    // 1 m from the receiver: strong
  w.add(1, {60.0, 10.0});  // far away: weak interferer
  w.add(2, {10.0, 0.0});
  w.sim.schedule_at(sim::SimTime::zero(), [&] {
    w.radio->broadcast(0, {RachCodec::kRach1, 7}, PsType::kSyncPulse, 111);
    w.radio->broadcast(1, {RachCodec::kRach1, 7}, PsType::kSyncPulse, 222);
  });
  w.sim.run();
  // The strong one captures; the weak one is lost (collision counted).
  ASSERT_EQ(w.inbox[2].size(), 1U);
  EXPECT_EQ(w.inbox[2][0].payload, 111U);
  EXPECT_EQ(w.radio->counters().collisions, 1U);
}

TEST(Radio, CountersByCodec) {
  World w;
  w.add(0, {0.0, 0.0});
  w.add(1, {10.0, 0.0});
  w.sim.schedule_at(sim::SimTime::zero(), [&] {
    w.radio->broadcast(0, {RachCodec::kRach1, 0}, PsType::kSyncPulse, 0);
    w.radio->broadcast(0, {RachCodec::kRach2, 0}, PsType::kConnectRequest, 0);
    w.radio->broadcast(0, {RachCodec::kRach2, 1}, PsType::kConnectAccept, 0);
  });
  w.sim.run();
  EXPECT_EQ(w.radio->counters().rach1_tx, 1U);
  EXPECT_EQ(w.radio->counters().rach2_tx, 2U);
  EXPECT_EQ(w.radio->counters().total_tx(), 3U);
  EXPECT_EQ(w.radio->counters().deliveries, 3U);
  w.radio->reset_counters();
  EXPECT_EQ(w.radio->counters().total_tx(), 0U);
}

TEST(Radio, CandidateCacheMatchesFullScan) {
  // With deterministic propagation the cache must not change what is
  // delivered.
  for (const bool use_cache : {false, true}) {
    World w;
    w.add(0, {0.0, 0.0});
    for (std::uint32_t i = 1; i <= 30; ++i) {
      w.add(i, {static_cast<double>(i * 4), 0.0});
    }
    if (use_cache) w.radio->rebuild();
    w.sim.schedule_at(sim::SimTime::zero(), [&] {
      w.radio->broadcast(0, {RachCodec::kRach1, 0}, PsType::kSyncPulse, 0);
    });
    w.sim.run();
    std::size_t heard = 0;
    for (std::uint32_t i = 1; i <= 30; ++i) heard += w.inbox[i].size();
    // Devices at 4..88 m hear it (~89 m range): exactly 22 of them.
    EXPECT_EQ(heard, 22U) << "cache=" << use_cache;
  }
}

TEST(Radio, MoveDeviceChangesConnectivity) {
  World w;
  w.add(0, {0.0, 0.0});
  w.add(1, {200.0, 0.0});
  w.sim.schedule_at(sim::SimTime::zero(), [&] {
    w.radio->broadcast(0, {RachCodec::kRach1, 0}, PsType::kSyncPulse, 0);
  });
  w.sim.run_until(sim::SimTime::milliseconds(2));
  EXPECT_TRUE(w.inbox[1].empty());
  w.radio->move_device(1, {10.0, 0.0});
  EXPECT_EQ(w.radio->device_position(1).x, 10.0);
  w.sim.schedule_in(sim::SimTime::microseconds(10), [&] {
    w.radio->broadcast(0, {RachCodec::kRach1, 0}, PsType::kSyncPulse, 0);
  });
  w.sim.run();
  EXPECT_EQ(w.inbox[1].size(), 1U);
}

TEST(Radio, SlotIndexHelper) {
  EXPECT_EQ(RadioMedium::slot_index(sim::SimTime::microseconds(0)), 0);
  EXPECT_EQ(RadioMedium::slot_index(sim::SimTime::microseconds(999)), 0);
  EXPECT_EQ(RadioMedium::slot_index(sim::SimTime::microseconds(1000)), 1);
  EXPECT_EQ(RadioMedium::slot_index(sim::SimTime::milliseconds(42)), 42);
}

}  // namespace
