// Tests for table/CSV rendering (src/util/table.hpp).
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace {

using firefly::util::Table;

TEST(Table, PrintsAlignedColumns) {
  Table t("demo");
  t.set_headers({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::num(std::size_t{42}), "42");
}

TEST(Table, CsvRoundTrip) {
  Table t("csv");
  t.set_headers({"a", "b"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"with\"quote", "x"});
  const std::string path = "/tmp/firefly_test_table.csv";
  t.write_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,\"with,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with\"\"quote\",x");
  std::remove(path.c_str());
}

TEST(Table, RowCount) {
  Table t("count");
  t.set_headers({"x"});
  EXPECT_EQ(t.rows(), 0U);
  t.add_row({"1"}).add_row({"2"});
  EXPECT_EQ(t.rows(), 2U);
}

}  // namespace
