// Tests for synchronisation metrics and detectors (src/pco/sync_metrics.hpp).
#include "pco/sync_metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace firefly::pco;

TEST(OrderParameter, IdenticalPhasesGiveOne) {
  const std::vector<double> phases(10, 0.37);
  EXPECT_NEAR(order_parameter(phases), 1.0, 1e-12);
}

TEST(OrderParameter, UniformSpreadGivesZero) {
  std::vector<double> phases;
  for (int i = 0; i < 8; ++i) phases.push_back(i / 8.0);
  EXPECT_NEAR(order_parameter(phases), 0.0, 1e-12);
}

TEST(OrderParameter, TwoOppositePhasesCancel) {
  const std::vector<double> phases{0.0, 0.5};
  EXPECT_NEAR(order_parameter(phases), 0.0, 1e-12);
}

TEST(OrderParameter, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(order_parameter({}), 1.0);
  const std::vector<double> one{0.3};
  EXPECT_NEAR(order_parameter(one), 1.0, 1e-12);
}

TEST(CircularSpread, TightCluster) {
  const std::vector<double> phases{0.10, 0.12, 0.11, 0.13};
  EXPECT_NEAR(circular_spread(phases), 0.03, 1e-12);
}

TEST(CircularSpread, ClusterAcrossWrap) {
  // 0.98 and 0.02 are 0.04 apart on the circle, not 0.96.
  const std::vector<double> phases{0.98, 0.99, 0.01, 0.02};
  EXPECT_NEAR(circular_spread(phases), 0.04, 1e-12);
}

TEST(CircularSpread, DegenerateCases) {
  EXPECT_DOUBLE_EQ(circular_spread({}), 0.0);
  const std::vector<double> one{0.5};
  EXPECT_DOUBLE_EQ(circular_spread(one), 0.0);
  const std::vector<double> same{0.5, 0.5, 0.5};
  EXPECT_NEAR(circular_spread(same), 0.0, 1e-12);
}

TEST(CircularSpread, NormalisesPhasesOutsideUnit) {
  const std::vector<double> phases{1.98, -0.01, 0.02};  // ≡ 0.98, 0.99, 0.02
  EXPECT_NEAR(circular_spread(phases), 0.04, 1e-12);
}

TEST(ConvergenceDetector, RequiresAllDevicesToFire) {
  ConvergenceDetector det(3, 100, 2);
  det.record_fire(0, 10);
  det.record_fire(1, 11);
  EXPECT_FALSE(det.converged_at(50).has_value());
  EXPECT_DOUBLE_EQ(det.current_spread(), 1.0);
}

TEST(ConvergenceDetector, SustainedAlignmentConverges) {
  ConvergenceDetector det(3, 100, 2);
  det.record_fire(0, 10);
  det.record_fire(1, 11);
  det.record_fire(2, 12);
  EXPECT_FALSE(det.converged_at(20).has_value());  // not yet held a period
  // Next cycle, still aligned.
  det.record_fire(0, 110);
  det.record_fire(1, 111);
  det.record_fire(2, 112);
  const auto converged = det.converged_at(125);
  ASSERT_TRUE(converged.has_value());
  EXPECT_EQ(*converged, 20);  // first slot alignment was observed
}

TEST(ConvergenceDetector, MisalignmentResetsTheClock) {
  ConvergenceDetector det(2, 100, 2);
  det.record_fire(0, 10);
  det.record_fire(1, 11);
  EXPECT_FALSE(det.converged_at(20).has_value());
  det.record_fire(1, 160);  // drifted half a period
  EXPECT_FALSE(det.converged_at(170).has_value());
  det.record_fire(1, 210);
  det.record_fire(0, 210);
  EXPECT_FALSE(det.converged_at(220).has_value());
  EXPECT_TRUE(det.converged_at(330).has_value());
}

TEST(ConvergenceDetector, ToleranceBoundary) {
  ConvergenceDetector det(2, 100, 2);
  det.record_fire(0, 0);
  det.record_fire(1, 2);  // exactly at tolerance
  (void)det.converged_at(10);
  EXPECT_TRUE(det.converged_at(120).has_value());

  ConvergenceDetector det2(2, 100, 2);
  det2.record_fire(0, 0);
  det2.record_fire(1, 3);  // just outside
  (void)det2.converged_at(10);
  EXPECT_FALSE(det2.converged_at(120).has_value());
}

TEST(LocalSyncDetector, OnlyEdgesConstrainAlignment) {
  LocalSyncDetector det(3, 100, 2);
  det.add_edge(0, 1);
  // Device 2 has no edges: its phase is unconstrained (but it must fire).
  det.record_fire(0, 10);
  det.record_fire(1, 11);
  det.record_fire(2, 60);  // wildly different phase, no edge
  (void)det.converged_at(70);
  EXPECT_TRUE(det.converged_at(180).has_value());
}

TEST(LocalSyncDetector, ViolatedEdgeBlocksConvergence) {
  LocalSyncDetector det(3, 100, 2);
  det.add_edge(0, 1);
  det.add_edge(1, 2);
  det.record_fire(0, 10);
  det.record_fire(1, 11);
  det.record_fire(2, 60);
  (void)det.converged_at(70);
  EXPECT_FALSE(det.converged_at(180).has_value());
  EXPECT_NEAR(det.aligned_fraction(), 0.5, 1e-12);
}

TEST(LocalSyncDetector, WrapAroundAlignment) {
  LocalSyncDetector det(2, 100, 2);
  det.add_edge(0, 1);
  det.record_fire(0, 99);
  det.record_fire(1, 101);  // 99 vs 1 mod 100: circular distance 2
  (void)det.converged_at(110);
  EXPECT_TRUE(det.converged_at(220).has_value());
}

TEST(LocalSyncDetector, AlignedFractionBeforeAnyFire) {
  LocalSyncDetector det(2, 100, 2);
  det.add_edge(0, 1);
  EXPECT_DOUBLE_EQ(det.aligned_fraction(), 0.0);
  EXPECT_EQ(det.edge_count(), 1U);
}

}  // namespace
