// Tests for the synchronous GHS rendition (src/graph/ghs.hpp).
#include "graph/ghs.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/mst.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace firefly::graph;

Graph random_connected_graph(std::size_t n, firefly::util::Rng& rng) {
  Graph g(n);
  for (std::uint32_t v = 1; v < n; ++v) {
    g.add_edge(v - 1, v, rng.uniform(1.0, 1000.0));
  }
  for (std::size_t i = 0; i < 3 * n; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.uniform_index(n));
    const auto v = static_cast<std::uint32_t>(rng.uniform_index(n));
    if (u != v) g.add_edge(u, v, rng.uniform(1.0, 1000.0));
  }
  return g;
}

TEST(Ghs, MatchesKruskalOnDistinctWeights) {
  firefly::util::Rng rng(31);
  for (int trial = 0; trial < 12; ++trial) {
    Graph g = random_connected_graph(50, rng);
    const GhsResult r = ghs(g);
    const MstResult k = kruskal(g);
    EXPECT_TRUE(r.tree.spanning) << "trial " << trial;
    EXPECT_NEAR(r.tree.total_weight, k.total_weight, 1e-6) << "trial " << trial;
    EXPECT_TRUE(is_spanning_tree(g.vertex_count(), r.tree.edges));
  }
}

TEST(Ghs, MaxOrientationBuildsMaximumTree) {
  firefly::util::Rng rng(32);
  Graph g = random_connected_graph(40, rng);
  const GhsResult r = ghs(g, Orientation::kMax);
  const MstResult k = kruskal(g, Orientation::kMax);
  EXPECT_NEAR(r.tree.total_weight, k.total_weight, 1e-6);
}

TEST(Ghs, LevelsAreLogarithmicallyBounded) {
  // A fragment of level L has >= 2^L members, so max level <= log2 n.
  firefly::util::Rng rng(33);
  for (const std::size_t n : {16UL, 128UL, 512UL}) {
    Graph g = random_connected_graph(n, rng);
    const GhsResult r = ghs(g);
    EXPECT_LE(r.max_level,
              static_cast<std::size_t>(std::ceil(std::log2(static_cast<double>(n)))))
        << "n=" << n;
  }
}

TEST(Ghs, MessageComplexityScalesAsNLogN) {
  // GHS's bound is O(E + n log n); with E ~ 4n the empirical log-log slope
  // of total messages vs n should sit well below quadratic.
  firefly::util::Rng rng(34);
  std::vector<double> ns, msgs;
  for (const std::size_t n : {64UL, 128UL, 256UL, 512UL, 1024UL}) {
    Graph g = random_connected_graph(n, rng);
    const GhsResult r = ghs(g);
    ns.push_back(static_cast<double>(n));
    msgs.push_back(static_cast<double>(r.messages.total()));
  }
  const double slope = firefly::util::fit_loglog_slope(ns, msgs);
  EXPECT_GT(slope, 0.8);
  EXPECT_LT(slope, 1.5);
}

TEST(Ghs, MessageBreakdownIsConsistent) {
  firefly::util::Rng rng(35);
  Graph g = random_connected_graph(60, rng);
  const GhsResult r = ghs(g);
  const auto& m = r.messages;
  EXPECT_EQ(m.total(), m.test + m.accept_reject + m.report + m.connect + m.initiate);
  EXPECT_GT(m.test, 0U);
  EXPECT_GT(m.connect, 0U);
  EXPECT_GT(m.initiate, 0U);
  // Every test gets a reply in the synchronous rendition.
  EXPECT_EQ(m.test, m.accept_reject);
}

TEST(Ghs, EqualWeightsTerminate) {
  Graph g(8);
  for (std::uint32_t u = 0; u < 8; ++u) {
    for (std::uint32_t v = u + 1; v < 8; ++v) g.add_edge(u, v, 1.0);
  }
  const GhsResult r = ghs(g);
  EXPECT_TRUE(r.tree.spanning);
  EXPECT_EQ(r.tree.edges.size(), 7U);
}

TEST(Ghs, DisconnectedGraphGivesForest) {
  Graph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(4, 5, 2.0);
  const GhsResult r = ghs(g);
  EXPECT_FALSE(r.tree.spanning);
  EXPECT_EQ(r.tree.edges.size(), 4U);
}

TEST(Ghs, TrivialInputs) {
  Graph empty(0);
  EXPECT_TRUE(ghs(empty).tree.spanning);
  Graph single(1);
  EXPECT_TRUE(ghs(single).tree.spanning);
  EXPECT_EQ(ghs(single).messages.total(), 0U);
}

}  // namespace
