// Tests for geometry and deployments (src/geo/point.hpp, deployment.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "geo/deployment.hpp"
#include "geo/point.hpp"
#include "util/rng.hpp"

namespace {

using namespace firefly::geo;
using firefly::util::Rng;

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ((a + b), (Vec2{4.0, 1.0}));
  EXPECT_EQ((a - b), (Vec2{-2.0, 3.0}));
  EXPECT_EQ((2.0 * a), (Vec2{2.0, 4.0}));
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm_squared(), 25.0);
  EXPECT_DOUBLE_EQ(distance(a, b), std::sqrt(4.0 + 9.0));
}

TEST(AreaTest, ContainsAndClamp) {
  const Area area{100.0, 50.0};
  EXPECT_TRUE(area.contains({0.0, 0.0}));
  EXPECT_TRUE(area.contains({100.0, 50.0}));
  EXPECT_FALSE(area.contains({100.1, 10.0}));
  EXPECT_EQ(area.clamp({-5.0, 60.0}), (Vec2{0.0, 50.0}));
  EXPECT_EQ(area.clamp({42.0, 7.0}), (Vec2{42.0, 7.0}));
}

TEST(AreaTest, DensityMatchesPaperScenario) {
  // Table I: 50 devices in 100 m × 100 m.
  EXPECT_DOUBLE_EQ(kPaperArea.density(50), 0.005);
}

TEST(Deployment, UniformStaysInAreaAndIsDeterministic) {
  const Area area{200.0, 100.0};
  Rng rng1(42), rng2(42);
  const auto a = deploy_uniform(500, area, rng1);
  const auto b = deploy_uniform(500, area, rng2);
  EXPECT_EQ(a.size(), 500U);
  EXPECT_EQ(a, b);
  for (const Vec2& p : a) EXPECT_TRUE(area.contains(p));
}

TEST(Deployment, UniformCoversTheArea) {
  Rng rng(1);
  const auto points = deploy_uniform(4000, kPaperArea, rng);
  // Quadrant counts should be roughly balanced.
  int q[4] = {0, 0, 0, 0};
  for (const Vec2& p : points) {
    const int idx = (p.x > 50.0 ? 1 : 0) + (p.y > 50.0 ? 2 : 0);
    ++q[idx];
  }
  for (const int c : q) EXPECT_NEAR(c, 1000, 150);
}

TEST(Deployment, PoissonCountFluctuates) {
  Rng rng(2);
  double total = 0.0;
  const int reps = 200;
  for (int i = 0; i < reps; ++i) total += static_cast<double>(
      deploy_poisson(50.0, kPaperArea, rng).size());
  EXPECT_NEAR(total / reps, 50.0, 3.0);
}

TEST(Deployment, ClusteredPointsNearParents) {
  Rng rng(3);
  const auto points = deploy_clustered(300, 3, 2.0, kPaperArea, rng);
  EXPECT_EQ(points.size(), 300U);
  for (const Vec2& p : points) EXPECT_TRUE(kPaperArea.contains(p));
  // With spread 2 m and 3 clusters, the average nearest-neighbour distance
  // should be far below a uniform deployment's (~5 m for 300 in 1 ha).
  double nn_sum = 0.0;
  for (std::size_t i = 0; i < 50; ++i) {
    double best = 1e18;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      best = std::min(best, distance(points[i], points[j]));
    }
    nn_sum += best;
  }
  EXPECT_LT(nn_sum / 50.0, 2.0);
}

TEST(Deployment, GridIsDeterministicAndInBounds) {
  const auto a = deploy_grid(10, kPaperArea);
  const auto b = deploy_grid(10, kPaperArea);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 10U);
  for (const Vec2& p : a) EXPECT_TRUE(kPaperArea.contains(p));
  EXPECT_TRUE(deploy_grid(0, kPaperArea).empty());
  EXPECT_EQ(deploy_grid(1, kPaperArea).size(), 1U);
}

TEST(Deployment, ScaledAreaPreservesDensity) {
  for (const std::size_t n : {50UL, 200UL, 800UL}) {
    const Area area = scaled_area_for(n);
    EXPECT_NEAR(area.density(n), kPaperArea.density(50), 1e-12) << "n=" << n;
  }
  // 50 devices keeps the exact paper square.
  const Area base = scaled_area_for(50);
  EXPECT_DOUBLE_EQ(base.width, 100.0);
  EXPECT_DOUBLE_EQ(base.height, 100.0);
}

}  // namespace
