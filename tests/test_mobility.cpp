// Tests for mobility models (src/geo/mobility.hpp), including the paper's
// eq. (13) firefly movement update.
#include "geo/mobility.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace {

using namespace firefly::geo;
using firefly::util::Rng;

TEST(FireflyStep, MovesTowardBrighterNeighborWhenClose) {
  Rng rng(1);
  FireflyStepParams params;
  params.k = 1.0;
  params.gamma = 0.01;
  params.eta = 0.0;  // no exploration: pure attraction
  const Vec2 xi{0.0, 0.0};
  const Vec2 xj{1.0, 1.0};
  const Vec2 moved = firefly_step(xi, xj, params, rng);
  // attraction = exp(-0.01·2) ≈ 0.98: nearly the full step toward xj.
  EXPECT_NEAR(moved.x, std::exp(-0.02), 1e-12);
  EXPECT_NEAR(moved.y, std::exp(-0.02), 1e-12);
}

TEST(FireflyStep, AttractionDecaysWithDistanceSquared) {
  Rng rng(2);
  FireflyStepParams params;
  params.eta = 0.0;
  params.gamma = 1.0;
  const Vec2 near = firefly_step({0, 0}, {1.0, 0.0}, params, rng);
  const Vec2 far = firefly_step({0, 0}, {10.0, 0.0}, params, rng);
  // Displacement toward the near firefly is larger in *relative* step
  // despite the absolute offset being bigger for the far one.
  EXPECT_GT(near.x / 1.0, far.x / 10.0);
  // exp(-100) ~ 0: essentially no movement toward the far firefly.
  EXPECT_NEAR(far.x, 0.0, 1e-8);
}

TEST(FireflyStep, EtaAddsGaussianExploration) {
  Rng rng(3);
  FireflyStepParams params;
  params.k = 0.0;  // no attraction: pure exploration
  params.eta = 0.5;
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const Vec2 moved = firefly_step({0, 0}, {1, 1}, params, rng);
    sum2 += moved.x * moved.x + moved.y * moved.y;
  }
  // Each coordinate is eta·N(0,1): E[x²+y²] = 2·eta².
  EXPECT_NEAR(sum2 / n, 2.0 * 0.25, 0.02);
}

TEST(FireflyStep, IdenticalPositionsOnlyExplore) {
  Rng rng(4);
  FireflyStepParams params;
  params.eta = 0.0;
  const Vec2 moved = firefly_step({5, 5}, {5, 5}, params, rng);
  EXPECT_EQ(moved, (Vec2{5, 5}));
}

TEST(RandomWaypoint, StaysInsideArea) {
  const Area area{50.0, 50.0};
  Rng rng(5);
  RandomWaypoint model({25.0, 25.0}, area, 2.0, 0.5, &rng);
  for (int i = 0; i < 2000; ++i) {
    const Vec2 p = model.advance(0.1);
    ASSERT_TRUE(area.contains(p)) << p.x << "," << p.y;
  }
}

TEST(RandomWaypoint, RespectsSpeedLimit) {
  const Area area{100.0, 100.0};
  Rng rng(6);
  RandomWaypoint model({0.0, 0.0}, area, 3.0, 0.0, &rng);
  Vec2 prev = model.position();
  for (int i = 0; i < 500; ++i) {
    const Vec2 next = model.advance(0.25);
    EXPECT_LE(distance(prev, next), 3.0 * 0.25 + 1e-9);
    prev = next;
  }
}

TEST(RandomWaypoint, PausesAtWaypoints) {
  const Area area{10.0, 10.0};
  Rng rng(7);
  RandomWaypoint model({5.0, 5.0}, area, 100.0, 10.0, &rng);
  // With speed 100 m/s in a 10 m box, the model reaches the first waypoint
  // almost immediately and then sits in the pause for ~10 s.
  model.advance(1.0);
  const Vec2 at_pause = model.position();
  const Vec2 later = model.advance(5.0);
  EXPECT_EQ(at_pause, later);
}

TEST(RandomWaypoint, EventuallyMoves) {
  const Area area{100.0, 100.0};
  Rng rng(8);
  RandomWaypoint model({50.0, 50.0}, area, 1.5, 0.0, &rng);
  const Vec2 start = model.position();
  model.advance(10.0);
  EXPECT_GT(distance(start, model.position()), 0.0);
}

}  // namespace
