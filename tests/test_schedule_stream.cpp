// Tests for the regenerating fault-schedule streams (fault/schedule_stream):
// chunk-invariance of the emitted sequences, merge order of scripted events,
// churn-stop semantics, downtime absorption, and the service-horizon
// validation that rejects fault plans ending before the soak does.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fault/schedule_stream.hpp"
#include "util/rng.hpp"

namespace {

using namespace firefly;

fault::FaultPlan churn_plan(double rate_per_min, double downtime_ms = 500.0) {
  fault::FaultPlan plan;
  plan.churn_rate_per_min = rate_per_min;
  plan.mean_downtime_ms = downtime_ms;
  return plan;
}

std::vector<fault::ChurnEvent> churn_in_one_call(const fault::FaultPlan& plan,
                                                 std::uint32_t n, std::uint64_t seed,
                                                 std::int64_t horizon) {
  fault::ChurnStream stream(plan, n, seed);
  std::vector<fault::ChurnEvent> out;
  stream.generate_until(horizon, out);
  return out;
}

std::vector<fault::ChurnEvent> churn_in_chunks(const fault::FaultPlan& plan,
                                               std::uint32_t n, std::uint64_t seed,
                                               std::int64_t horizon,
                                               std::uint64_t chunk_seed) {
  fault::ChurnStream stream(plan, n, seed);
  util::Rng chunk_rng(chunk_seed);
  std::vector<fault::ChurnEvent> out;
  std::int64_t to = 0;
  while (to < horizon) {
    to = std::min<std::int64_t>(horizon, to + 1 + static_cast<std::int64_t>(
                                                      chunk_rng.uniform_index(700)));
    stream.generate_until(to, out);
    EXPECT_EQ(stream.generated_to(), to);
  }
  return out;
}

TEST(ChurnStream, ChunkInvariant) {
  const fault::FaultPlan plan = churn_plan(600.0);  // ~10 crashes/sec
  const std::vector<fault::ChurnEvent> whole =
      churn_in_one_call(plan, 32, 42, 100'000);
  ASSERT_FALSE(whole.empty());
  for (std::uint64_t chunk_seed = 1; chunk_seed <= 5; ++chunk_seed) {
    const std::vector<fault::ChurnEvent> sliced =
        churn_in_chunks(plan, 32, 42, 100'000, chunk_seed);
    EXPECT_EQ(whole, sliced) << "chunking changed the schedule (seed "
                             << chunk_seed << ")";
  }
}

TEST(ChurnStream, AbsorbsArrivalsWhileDown) {
  const std::vector<fault::ChurnEvent> events =
      churn_in_one_call(churn_plan(300.0, 800.0), 16, 7, 50'000);
  ASSERT_GE(events.size(), 2U);
  std::vector<std::int64_t> down_until(16, -1);
  for (std::size_t i = 0; i + 1 < events.size(); i += 2) {
    const fault::ChurnEvent& crash = events[i];
    const fault::ChurnEvent& recover = events[i + 1];
    EXPECT_GT(crash.slot, down_until[crash.device])
        << "crash emitted while the device was still down";
    down_until[crash.device] = recover.slot;
  }
}

TEST(ChurnStream, EmissionPairsCrashThenRecover) {
  const std::vector<fault::ChurnEvent> events =
      churn_in_one_call(churn_plan(300.0), 16, 9, 30'000);
  ASSERT_GE(events.size(), 2U);
  for (std::size_t i = 0; i < events.size(); i += 2) {
    ASSERT_LT(i + 1, events.size());
    EXPECT_TRUE(events[i].crash);
    EXPECT_FALSE(events[i + 1].crash);
    EXPECT_EQ(events[i].device, events[i + 1].device);
    EXPECT_LT(events[i].slot, events[i + 1].slot);
  }
}

TEST(ChurnStream, ScheduledEventsMergeChunkInvariantly) {
  fault::FaultPlan plan = churn_plan(200.0);
  plan.scheduled = {{40'000, 3, true}, {44'000, 3, false}, {100, 1, true},
                    {900, 1, false}, {99'999, 0, true}};
  const std::vector<fault::ChurnEvent> whole =
      churn_in_one_call(plan, 8, 11, 100'000);
  for (std::uint64_t chunk_seed = 1; chunk_seed <= 4; ++chunk_seed) {
    EXPECT_EQ(whole, churn_in_chunks(plan, 8, 11, 100'000, chunk_seed));
  }
  // Every scripted event addressed to a real device is present.
  for (const fault::ChurnEvent& scripted : plan.scheduled) {
    EXPECT_NE(std::find(whole.begin(), whole.end(), scripted), whole.end());
  }
}

TEST(ChurnStream, StopsAtChurnStop) {
  fault::FaultPlan plan = churn_plan(6'000.0);
  plan.churn_stop_ms = 5'000.0;
  const std::vector<fault::ChurnEvent> events =
      churn_in_one_call(plan, 32, 3, 200'000);
  ASSERT_FALSE(events.empty());
  for (const fault::ChurnEvent& e : events) {
    if (e.crash) EXPECT_LT(e.slot, 5'000);
  }
  // Chunk-invariance holds across the stop boundary too.
  EXPECT_EQ(events, churn_in_chunks(plan, 32, 3, 200'000, 2));
}

TEST(FadeStream, ChunkInvariant) {
  fault::FaultPlan plan;
  plan.fade_rate_per_min = 1'200.0;
  plan.fade_mean_duration_ms = 300.0;
  fault::FadeStream whole_stream(plan, 24, 42);
  std::vector<fault::FadeEpisode> whole;
  whole_stream.generate_until(80'000, whole);
  ASSERT_FALSE(whole.empty());

  fault::FadeStream sliced_stream(plan, 24, 42);
  std::vector<fault::FadeEpisode> sliced;
  for (std::int64_t to = 0; to < 80'000;) {
    to = std::min<std::int64_t>(80'000, to + 333);
    sliced_stream.generate_until(to, sliced);
  }
  EXPECT_EQ(whole, sliced);
  for (const fault::FadeEpisode& f : whole) {
    EXPECT_LT(f.u, f.v);
    EXPECT_LT(f.start_slot, f.end_slot);
  }
}

// --- satellite: horizon validation -----------------------------------------

TEST(ValidateServiceHorizon, AcceptsFaultFreeAndOpenEndedPlans) {
  EXPECT_EQ(fault::validate_service_horizon(fault::FaultPlan{}, 1'000'000), "");
  EXPECT_EQ(fault::validate_service_horizon(churn_plan(30.0), 1'000'000), "");
}

TEST(ValidateServiceHorizon, RejectsChurnStopBeforeHorizon) {
  fault::FaultPlan plan = churn_plan(30.0);
  plan.churn_stop_ms = 10'000.0;
  const std::string error = fault::validate_service_horizon(plan, 1'000'000);
  EXPECT_NE(error.find("churn stops at 10000 ms"), std::string::npos) << error;
  EXPECT_NE(error.find("1000000"), std::string::npos) << error;
  // A stop at/past the horizon is fine.
  plan.churn_stop_ms = 1'000'000.0;
  EXPECT_EQ(fault::validate_service_horizon(plan, 1'000'000), "");
}

TEST(ValidateServiceHorizon, RejectsScheduledChurnEndingEarly) {
  fault::FaultPlan plan;
  plan.scheduled = {{100, 0, true}, {500, 0, false}};
  const std::string error = fault::validate_service_horizon(plan, 50'000);
  EXPECT_NE(error.find("scheduled churn ends at slot 500"), std::string::npos) << error;
  // Scripted churn reaching the horizon passes.
  plan.scheduled.push_back({49'999, 1, true});
  EXPECT_EQ(fault::validate_service_horizon(plan, 50'000), "");
}

}  // namespace
