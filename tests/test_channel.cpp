// Tests for the composed channel (src/phy/channel.hpp).
#include "phy/channel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "util/rng.hpp"

namespace {

using namespace firefly::phy;
using firefly::geo::Vec2;
using firefly::util::Dbm;
using firefly::util::Rng;

std::unique_ptr<Channel> deterministic_channel(RadioParams params = {}) {
  return std::make_unique<Channel>(params, std::make_unique<PaperDualSlope>(),
                                   std::make_unique<NoShadowing>(),
                                   std::make_unique<NoFading>(), Rng(1));
}

TEST(Channel, DeterministicCompositionMatchesFormula) {
  auto channel = deterministic_channel();
  const Vec2 a{0.0, 0.0};
  const Vec2 b{10.0, 0.0};
  // 23 dBm - (40 + 40·log10(10)) = 23 - 80 = -57 dBm.
  EXPECT_NEAR(channel->received_power(0, a, 1, b).value, -57.0, 1e-9);
  EXPECT_NEAR(channel->mean_received_power(0, a, 1, b).value, -57.0, 1e-9);
}

TEST(Channel, DetectableAgainstTableThreshold) {
  auto channel = deterministic_channel();
  EXPECT_TRUE(channel->detectable(Dbm{-95.0}));
  EXPECT_TRUE(channel->detectable(Dbm{-60.0}));
  EXPECT_FALSE(channel->detectable(Dbm{-95.1}));
}

TEST(Channel, MedianRangeMatchesLinkBudget) {
  auto channel = deterministic_channel();
  // Budget 118 dB on the dual-slope far field: 10^((118-40)/40) ≈ 89.1 m.
  EXPECT_NEAR(channel->median_range(), std::pow(10.0, 78.0 / 40.0), 1e-6);
}

TEST(Channel, ShadowingShiftsMeanPower) {
  RadioParams params;
  auto channel = std::make_unique<Channel>(
      params, std::make_unique<PaperDualSlope>(),
      std::make_unique<PerLinkShadowing>(10.0, Rng(7)), std::make_unique<NoFading>(),
      Rng(2));
  const Vec2 a{0.0, 0.0};
  const Vec2 b{10.0, 0.0};
  const double with_shadow = channel->mean_received_power(0, a, 1, b).value;
  // Same link shadowing is frozen: repeatable.
  EXPECT_DOUBLE_EQ(channel->mean_received_power(0, a, 1, b).value, with_shadow);
  // Symmetric.
  EXPECT_DOUBLE_EQ(channel->mean_received_power(1, b, 0, a).value, with_shadow);
  // And almost surely different from the unshadowed value.
  EXPECT_NE(with_shadow, -57.0);
}

TEST(Channel, FadingVariesPerReception) {
  RadioParams params;
  auto channel = std::make_unique<Channel>(
      params, std::make_unique<PaperDualSlope>(), std::make_unique<NoShadowing>(),
      std::make_unique<RayleighFading>(), Rng(3));
  const Vec2 a{0.0, 0.0};
  const Vec2 b{10.0, 0.0};
  const double p1 = channel->received_power(0, a, 1, b).value;
  const double p2 = channel->received_power(0, a, 1, b).value;
  EXPECT_NE(p1, p2);
  // Mean power is unaffected by fading.
  EXPECT_NEAR(channel->mean_received_power(0, a, 1, b).value, -57.0, 1e-9);
}

TEST(Channel, PaperFactoryIsReproducible) {
  auto c1 = make_paper_channel(99);
  auto c2 = make_paper_channel(99);
  const Vec2 a{0.0, 0.0};
  const Vec2 b{25.0, 10.0};
  for (int i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(c1->received_power(0, a, 1, b).value,
                     c2->received_power(0, a, 1, b).value);
  }
}

TEST(Channel, PaperFactorySeedsDiffer) {
  auto c1 = make_paper_channel(1);
  auto c2 = make_paper_channel(2);
  const Vec2 a{0.0, 0.0};
  const Vec2 b{25.0, 10.0};
  EXPECT_NE(c1->mean_received_power(0, a, 1, b).value,
            c2->mean_received_power(0, a, 1, b).value);
}

TEST(Channel, ParamsExposed) {
  RadioParams params;
  params.tx_power = Dbm{20.0};
  auto channel = deterministic_channel(params);
  EXPECT_DOUBLE_EQ(channel->params().tx_power.value, 20.0);
  EXPECT_DOUBLE_EQ(channel->params().detection_threshold.value, -95.0);
}

}  // namespace
