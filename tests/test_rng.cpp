// Tests for the deterministic RNG stack (src/util/rng.hpp).
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace {

using firefly::util::Rng;
using firefly::util::RngFactory;
using firefly::util::SplitMix64;
using firefly::util::derive_seed;

TEST(SplitMix, KnownSequenceIsStable) {
  SplitMix64 a(0);
  SplitMix64 b(0);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicReplay) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_DOUBLE_EQ(a.uniform(), b.uniform());
    ASSERT_DOUBLE_EQ(a.normal(), b.normal());
    ASSERT_EQ(a.uniform_index(97), b.uniform_index(97));
  }
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMomentsMatch) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.002);
}

TEST(Rng, UniformIndexIsUnbiased) {
  Rng rng(13);
  constexpr std::uint64_t kBuckets = 7;
  std::vector<int> counts(kBuckets, 0);
  const int n = 140000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / static_cast<double>(kBuckets),
                5.0 * std::sqrt(n / static_cast<double>(kBuckets)));
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.15);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, RayleighMeanPower) {
  // If the amplitude is Rayleigh(sigma), the power (amplitude²) has mean
  // 2·sigma².
  Rng rng(23);
  const int n = 100000;
  double power = 0.0;
  for (int i = 0; i < n; ++i) {
    const double a = rng.rayleigh(1.0);
    power += a * a;
  }
  EXPECT_NEAR(power / n, 2.0, 0.05);
}

TEST(Rng, GammaMomentsAcrossShapes) {
  Rng rng(29);
  for (const double shape : {0.5, 1.0, 2.5, 8.0}) {
    const double scale = 1.5;
    const int n = 100000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < n; ++i) {
      const double x = rng.gamma(shape, scale);
      sum += x;
      sum2 += x * x;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, shape * scale, 0.08 * shape * scale) << "shape " << shape;
    EXPECT_NEAR(var, shape * scale * scale, 0.12 * shape * scale * scale + 0.05)
        << "shape " << shape;
  }
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(31);
  for (const double lambda : {0.5, 5.0, 50.0, 200.0}) {
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(lambda));
    EXPECT_NEAR(sum / n, lambda, 0.05 * lambda + 0.05) << "lambda " << lambda;
  }
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0U);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(41);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(43);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  rng.shuffle(v.begin(), v.end());
  EXPECT_NE(v, copy);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(DeriveSeed, NameAndIndexIndependence) {
  const std::uint64_t master = 99;
  std::set<std::uint64_t> seeds;
  for (const char* name : {"a", "b", "phy.fading", "phy.shadowing"}) {
    for (std::uint64_t index = 0; index < 8; ++index) {
      seeds.insert(derive_seed(master, name, index));
    }
  }
  EXPECT_EQ(seeds.size(), 32U);  // all distinct
}

TEST(DeriveSeed, StableAcrossCalls) {
  EXPECT_EQ(derive_seed(1, "stream", 2), derive_seed(1, "stream", 2));
  EXPECT_NE(derive_seed(1, "stream", 2), derive_seed(2, "stream", 2));
}

TEST(RngFactory, MakesIndependentStreams) {
  RngFactory factory(123);
  Rng a = factory.make("alpha");
  Rng b = factory.make("beta");
  // Streams should not be correlated: compare a few dozen draws.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.bits() == b.bits()) ++equal;
  }
  EXPECT_EQ(equal, 0);
  EXPECT_EQ(factory.master_seed(), 123U);
}

}  // namespace
