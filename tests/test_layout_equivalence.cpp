// Struct-vs-SoA device-core equivalence: ProtocolParams::device_core selects
// where hot per-device state lives (the fat core::Device structs, or
// core::DeviceHot's arena-backed flat arrays), and the choice must be
// invisible in the results.  Every scenario here runs twice — kStruct and
// kSoa — and asserts the full RunMetrics records are byte-identical through
// the deterministic JSON serializer (shortest-round-trip doubles, so one ULP
// of divergence fails).  Covers every registered protocol backend crossed
// with both schedulers and both spatial indexes, mobility and fault-
// injection scenarios, and the service-mode snapshot/restore round trip
// (which memcpys the SoA hot block) for every backend under both cores.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "core/service_mode.hpp"
#include "obs/json.hpp"
#include "proto/registry.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace firefly;

std::string metrics_json(const core::RunMetrics& metrics) {
  std::ostringstream oss;
  obs::JsonWriter w(oss);
  core::write_run_metrics_json(w, metrics);
  return oss.str();
}

core::RunMetrics run_with(core::Protocol protocol, core::ScenarioConfig config,
                          core::DeviceCore device_core, sim::SchedulerKind scheduler,
                          phy::SpatialIndex index) {
  config.protocol.device_core = device_core;
  config.protocol.scheduler = scheduler;
  config.radio.spatial_index = index;
  return core::run_trial(protocol, config);
}

/// Run `config` under both device cores for every {scheduler} × {spatial
/// index} combination and assert byte-identical metrics per combination.
void expect_cores_identical(core::Protocol protocol, const core::ScenarioConfig& config) {
  for (const sim::SchedulerKind scheduler :
       {sim::SchedulerKind::kWheel, sim::SchedulerKind::kHeap}) {
    for (const phy::SpatialIndex index :
         {phy::SpatialIndex::kGrid, phy::SpatialIndex::kDense}) {
      const core::RunMetrics soa = run_with(protocol, config, core::DeviceCore::kSoa,
                                            scheduler, index);
      const core::RunMetrics strct = run_with(protocol, config, core::DeviceCore::kStruct,
                                              scheduler, index);
      EXPECT_EQ(metrics_json(soa), metrics_json(strct))
          << core::to_string(protocol) << " scheduler=" << sim::to_string(scheduler)
          << " index=" << (index == phy::SpatialIndex::kGrid ? "grid" : "dense");
      // Guard against a vacuous pass.
      EXPECT_GT(soa.deliveries, 0U);
    }
  }
}

TEST(LayoutEquivalence, EveryProtocolStaticRunIsByteIdentical) {
  const proto::Registry& registry = proto::Registry::instance();
  for (const std::string& name : registry.names()) {
    core::ScenarioConfig config;
    config.n = 50;
    config.seed = 8101;
    config.area_policy = core::AreaPolicy::kFixed;
    config.protocol.max_periods = 120;
    expect_cores_identical(registry.find(name)->id, config);
  }
}

TEST(LayoutEquivalence, StMobilityRunIsByteIdentical) {
  // Mobility re-registers positions and rebuilds the candidate cache every
  // step; the hot arrays are indexed by registration slot and must track.
  core::ScenarioConfig config;
  config.n = 40;
  config.seed = 8102;
  config.protocol.mobility_speed_mps = 1.5;
  config.protocol.stop_on_convergence = false;
  config.protocol.max_periods = 20;
  expect_cores_identical(core::Protocol::kSt, config);
}

TEST(LayoutEquivalence, StFaultRunIsByteIdentical) {
  // Churn exercises crash_device/recover_device (which clear hot state) and
  // drift exercises the per-period drift accumulator in the hot arrays.
  core::ScenarioConfig config;
  config.n = 40;
  config.seed = 8103;
  config.area_policy = core::AreaPolicy::kFixed;
  config.protocol.max_periods = 30;
  config.protocol.faults.churn_rate_per_min = 20.0;
  config.protocol.faults.mean_downtime_ms = 1000.0;
  config.protocol.faults.drop_probability = 0.05;
  config.protocol.faults.drift_max_ppm = 50.0;
  expect_cores_identical(core::Protocol::kSt, config);
}

TEST(LayoutEquivalence, OtherBackendsFaultRunIsByteIdentical) {
  // The remaining backends under churn at the default wheel+grid pairing
  // (the full matrix would retread the static sweep above).
  const proto::Registry& registry = proto::Registry::instance();
  for (const std::string& name : registry.names()) {
    if (name == "st") continue;
    core::ScenarioConfig config;
    config.n = 40;
    config.seed = 8104;
    config.area_policy = core::AreaPolicy::kFixed;
    config.protocol.max_periods = 30;
    config.protocol.faults.churn_rate_per_min = 20.0;
    config.protocol.faults.mean_downtime_ms = 1000.0;
    const core::Protocol protocol = registry.find(name)->id;
    const core::RunMetrics soa =
        run_with(protocol, config, core::DeviceCore::kSoa, sim::SchedulerKind::kWheel,
                 phy::SpatialIndex::kGrid);
    const core::RunMetrics strct =
        run_with(protocol, config, core::DeviceCore::kStruct, sim::SchedulerKind::kWheel,
                 phy::SpatialIndex::kGrid);
    EXPECT_EQ(metrics_json(soa), metrics_json(strct)) << name;
    EXPECT_GT(soa.deliveries, 0U) << name;
  }
}

TEST(LayoutEquivalence, SnapshotRoundTripEveryBackendBothCores) {
  // Service-mode checkpointing snapshots the SoA hot region as one byte
  // block (and the struct core's devices vector element-wise); restoring the
  // last checkpoint and re-running the tail must land on the reference
  // run's exact metrics for every backend under BOTH cores — and the two
  // cores must agree with each other.
  const proto::Registry& registry = proto::Registry::instance();
  for (const std::string& name : registry.names()) {
    core::ScenarioConfig config;
    config.n = 24;
    config.seed = 8105;
    config.protocol.faults.churn_rate_per_min = 120.0;
    config.protocol.faults.mean_downtime_ms = 900.0;

    core::ServiceConfig service;
    service.duration_slots = 12'000;
    service.window_slots = 1'000;

    const std::vector<geo::Vec2> positions = core::deploy(config);
    std::string reference_json;  // kSoa uninterrupted reference
    for (const core::DeviceCore device_core :
         {core::DeviceCore::kSoa, core::DeviceCore::kStruct}) {
      core::ProtocolParams params = config.protocol;
      params.device_core = device_core;
      const char* core_id = device_core == core::DeviceCore::kSoa ? "soa" : "struct";

      // Uninterrupted reference.
      std::unique_ptr<core::EngineBase> reference =
          registry.make(name, positions, params, config.radio, config.seed);
      const core::ServiceReport ref = reference->run_service(service);
      ASSERT_TRUE(ref.ok()) << name << ' ' << core_id << ": " << ref.error;

      // Checkpointed run: restore the slot-8k snapshot, re-run the tail.
      core::ServiceConfig snapped = service;
      snapped.snapshot_every_slots = 8'000;
      std::unique_ptr<core::EngineBase> engine =
          registry.make(name, positions, params, config.radio, config.seed);
      const core::ServiceReport first = engine->run_service(snapped);
      ASSERT_TRUE(first.ok()) << name << ' ' << core_id << ": " << first.error;
      ASSERT_NE(engine->service_snapshot(), nullptr) << name << ' ' << core_id;
      engine->restore(*engine->service_snapshot());
      const core::ServiceReport resumed = engine->run_service(snapped);
      ASSERT_TRUE(resumed.ok()) << name << ' ' << core_id << ": " << resumed.error;

      EXPECT_EQ(metrics_json(resumed.metrics), metrics_json(ref.metrics))
          << name << ' ' << core_id << ": restored tail diverged";
      if (device_core == core::DeviceCore::kSoa) {
        reference_json = metrics_json(ref.metrics);
      } else {
        EXPECT_EQ(metrics_json(ref.metrics), reference_json)
            << name << ": struct and soa service runs diverged";
      }
    }
  }
}

}  // namespace
