// Tests for the service-affinity extension: biasing ST's heavy-edge choice
// toward same-service neighbours builds service-homophilous trees (the
// paper's "same service interest among devices" goal as a tunable).
#include <gtest/gtest.h>

#include "core/scenario.hpp"

namespace {

using namespace firefly;

core::ScenarioConfig affinity_config(double bias_db, std::uint64_t seed) {
  core::ScenarioConfig config;
  config.n = 60;
  config.seed = seed;
  config.area_policy = core::AreaPolicy::kFixed;
  config.protocol.service_bias_db = bias_db;
  return config;
}

TEST(ServiceAffinity, ZeroBiasGivesBaselineAffinity) {
  // With 4 uniformly assigned services and no bias, roughly a quarter of
  // tree edges join same-service devices.
  double affinity = 0.0;
  const int seeds = 4;
  for (int s = 0; s < seeds; ++s) {
    const auto m = core::run_trial(core::Protocol::kSt, affinity_config(0.0, 100 + s));
    EXPECT_TRUE(m.converged);
    affinity += m.tree_service_affinity;
  }
  affinity /= seeds;
  EXPECT_GT(affinity, 0.10);
  EXPECT_LT(affinity, 0.45);
}

TEST(ServiceAffinity, BiasRaisesAffinity) {
  double base = 0.0, biased = 0.0;
  const int seeds = 4;
  for (int s = 0; s < seeds; ++s) {
    base += core::run_trial(core::Protocol::kSt, affinity_config(0.0, 200 + s))
                .tree_service_affinity;
    biased += core::run_trial(core::Protocol::kSt, affinity_config(20.0, 200 + s))
                  .tree_service_affinity;
  }
  EXPECT_GT(biased / seeds, base / seeds + 0.1);
}

TEST(ServiceAffinity, BiasedTreeStillSpansAndConverges) {
  const auto m = core::run_trial(core::Protocol::kSt, affinity_config(20.0, 300));
  EXPECT_TRUE(m.converged);
  EXPECT_EQ(m.final_fragments, 1U);
}

TEST(ServiceAffinity, BiasTradesTreeWeight) {
  // A service-homophilous tree generally sacrifices some PS strength: the
  // pure heavy-edge tree has the maximum weight by construction.
  double base_weight = 0.0, biased_weight = 0.0;
  const int seeds = 3;
  for (int s = 0; s < seeds; ++s) {
    base_weight += core::run_trial(core::Protocol::kSt, affinity_config(0.0, 400 + s))
                       .tree_weight_dbm;
    biased_weight += core::run_trial(core::Protocol::kSt, affinity_config(25.0, 400 + s))
                         .tree_weight_dbm;
  }
  // Weights are sums of dBm values (negative); stronger tree = larger sum.
  EXPECT_GE(base_weight, biased_weight - 50.0);
}

}  // namespace
