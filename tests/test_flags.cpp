// Tests for the command-line flag parser (src/util/flags.hpp) and the
// strict environment-variable parsing (src/util/env.hpp).
#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/env.hpp"

namespace {

using firefly::util::Flags;

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, SpaceSeparatedValues) {
  const Flags f = parse({"--n", "200", "--seed", "7"});
  EXPECT_EQ(f.get("n", std::int64_t{0}), 200);
  EXPECT_EQ(f.get("seed", std::int64_t{0}), 7);
}

TEST(Flags, EqualsSeparatedValues) {
  const Flags f = parse({"--protocol=st", "--speed=2.5"});
  EXPECT_EQ(f.get("protocol", std::string("fst")), "st");
  EXPECT_DOUBLE_EQ(f.get("speed", 0.0), 2.5);
}

TEST(Flags, BareBooleans) {
  const Flags f = parse({"--verbose", "--csv"});
  EXPECT_TRUE(f.get("verbose", false));
  EXPECT_TRUE(f.get("csv", false));
  EXPECT_FALSE(f.get("quiet", false));
  EXPECT_TRUE(f.has("verbose"));
  EXPECT_FALSE(f.has("quiet"));
}

TEST(Flags, BooleanBeforeAnotherFlagStaysBoolean) {
  const Flags f = parse({"--verbose", "--n", "5"});
  EXPECT_TRUE(f.get("verbose", false));
  EXPECT_EQ(f.get("n", std::int64_t{0}), 5);
}

TEST(Flags, ExplicitBooleanValues) {
  const Flags f = parse({"--a=true", "--b=false", "--c=1", "--d=no"});
  EXPECT_TRUE(f.get("a", false));
  EXPECT_FALSE(f.get("b", true));
  EXPECT_TRUE(f.get("c", false));
  EXPECT_FALSE(f.get("d", true));
}

TEST(Flags, FallbacksWhenMissing) {
  const Flags f = parse({});
  EXPECT_EQ(f.get("n", std::int64_t{42}), 42);
  EXPECT_DOUBLE_EQ(f.get("x", 1.5), 1.5);
  EXPECT_EQ(f.get("s", std::string("def")), "def");
}

TEST(Flags, PositionalArguments) {
  const Flags f = parse({"run", "--n", "5", "extra"});
  ASSERT_EQ(f.positional().size(), 2U);
  EXPECT_EQ(f.positional()[0], "run");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(Flags, NamesEnumeratesParsedFlags) {
  const Flags f = parse({"--alpha", "1", "--beta=2"});
  const auto names = f.names();
  EXPECT_EQ(names.size(), 2U);
  EXPECT_EQ(names[0], "alpha");  // std::map: sorted
  EXPECT_EQ(names[1], "beta");
}

TEST(Flags, ProgramName) {
  const Flags f = parse({});
  EXPECT_EQ(f.program(), "prog");
}

TEST(ParseSize, AcceptsPlainPositiveIntegers) {
  using firefly::util::parse_size;
  EXPECT_EQ(parse_size("1"), 1U);
  EXPECT_EQ(parse_size("1000"), 1000U);
  EXPECT_EQ(parse_size("18446744073709551615"), 18446744073709551615ULL);
}

TEST(ParseSize, RejectsMalformedInput) {
  using firefly::util::parse_size;
  EXPECT_EQ(parse_size(""), std::nullopt);
  EXPECT_EQ(parse_size("0"), std::nullopt);        // zero trials/max-N is a typo
  EXPECT_EQ(parse_size("abc"), std::nullopt);
  EXPECT_EQ(parse_size("100x"), std::nullopt);     // trailing garbage
  EXPECT_EQ(parse_size("1 "), std::nullopt);
  EXPECT_EQ(parse_size(" 1"), std::nullopt);
  EXPECT_EQ(parse_size("-5"), std::nullopt);
  EXPECT_EQ(parse_size("1.5"), std::nullopt);
  EXPECT_EQ(parse_size("18446744073709551616"), std::nullopt);  // overflow
}

TEST(EnvSize, UnsetUsesFallbackWithoutWarning) {
  firefly::util::reset_env_warnings();
  unsetenv("FIREFLY_TEST_ENV_SIZE");
  EXPECT_EQ(firefly::util::env_size_t("FIREFLY_TEST_ENV_SIZE", 7), 7U);
}

TEST(EnvSize, ValidValueParses) {
  firefly::util::reset_env_warnings();
  setenv("FIREFLY_TEST_ENV_SIZE", "42", 1);
  EXPECT_EQ(firefly::util::env_size_t("FIREFLY_TEST_ENV_SIZE", 7), 42U);
  unsetenv("FIREFLY_TEST_ENV_SIZE");
}

TEST(EnvSize, MalformedValueFallsBack) {
  firefly::util::reset_env_warnings();
  setenv("FIREFLY_TEST_ENV_SIZE", "100x", 1);
  EXPECT_EQ(firefly::util::env_size_t("FIREFLY_TEST_ENV_SIZE", 7), 7U);
  setenv("FIREFLY_TEST_ENV_SIZE", "0", 1);
  EXPECT_EQ(firefly::util::env_size_t("FIREFLY_TEST_ENV_SIZE", 7), 7U);
  unsetenv("FIREFLY_TEST_ENV_SIZE");
}

}  // namespace
