// Tests for the deterministic pending-event set (src/sim/event_queue.hpp).
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace {

using firefly::sim::EventQueue;
using firefly::sim::SimTime;

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::milliseconds(30), [&] { order.push_back(3); });
  q.schedule(SimTime::milliseconds(10), [&] { order.push_back(1); });
  q.schedule(SimTime::milliseconds(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoForSimultaneousEvents) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime::milliseconds(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const auto id = q.schedule(SimTime::milliseconds(1), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const auto id = q.schedule(SimTime::milliseconds(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  const auto id = q.schedule(SimTime::milliseconds(1), [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(0));
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const auto early = q.schedule(SimTime::milliseconds(1), [] {});
  q.schedule(SimTime::milliseconds(5), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), SimTime::milliseconds(5));
  EXPECT_EQ(q.size(), 1U);
}

TEST(EventQueue, NextTimeOnEmptyIsMax) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), SimTime::max());
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const auto a = q.schedule(SimTime::milliseconds(1), [] {});
  q.schedule(SimTime::milliseconds(2), [] {});
  EXPECT_EQ(q.size(), 2U);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1U);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StressRandomScheduleCancelKeepsOrder) {
  EventQueue q;
  firefly::util::Rng rng(77);
  std::vector<firefly::sim::EventId> ids;
  for (int i = 0; i < 2000; ++i) {
    ids.push_back(q.schedule(SimTime::microseconds(
                                 static_cast<std::int64_t>(rng.uniform_index(10000))),
                             [] {}));
  }
  for (int i = 0; i < 500; ++i) {
    q.cancel(ids[rng.uniform_index(ids.size())]);
  }
  SimTime last = SimTime::zero();
  while (!q.empty()) {
    const auto fired = q.pop();
    EXPECT_GE(fired.time, last);
    last = fired.time;
  }
}

}  // namespace
