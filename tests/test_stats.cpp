// Tests for streaming/batch statistics (src/util/stats.hpp).
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace {

using firefly::util::RunningStats;
using firefly::util::Sample;

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats s;
  for (const double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 6.2);
  // Unbiased variance computed by hand: sum((x-6.2)^2)/4.
  double ss = 0.0;
  for (const double x : xs) ss += (x - 6.2) * (x - 6.2);
  EXPECT_NEAR(s.variance(), ss / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sem(), 0.0);
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  firefly::util::Rng rng(5);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2U);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2U);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Sample, PercentilesInterpolate) {
  Sample s;
  for (const double v : {10.0, 20.0, 30.0, 40.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 17.5);
}

TEST(Sample, SingleValue) {
  Sample s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(90.0), 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(Sample, AddAfterQueryResorts) {
  Sample s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  s.add(0.5);  // must invalidate the sorted cache
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.5);
}

TEST(Sample, Ci95ShrinksWithN) {
  firefly::util::Rng rng(9);
  Sample small, large;
  for (int i = 0; i < 20; ++i) small.add(rng.normal());
  for (int i = 0; i < 2000; ++i) large.add(rng.normal());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(FitLogLog, RecoversExponent) {
  std::vector<double> x, y;
  for (double v = 16.0; v <= 4096.0; v *= 2.0) {
    x.push_back(v);
    y.push_back(3.5 * v * v);  // slope 2
  }
  EXPECT_NEAR(firefly::util::fit_loglog_slope(x, y), 2.0, 1e-9);
}

TEST(FitLogLog, NLogNLandsBetweenOneAndTwo) {
  std::vector<double> x, y;
  for (double v = 64.0; v <= 65536.0; v *= 2.0) {
    x.push_back(v);
    y.push_back(v * std::log2(v));
  }
  const double slope = firefly::util::fit_loglog_slope(x, y);
  EXPECT_GT(slope, 1.0);
  EXPECT_LT(slope, 1.35);
}

TEST(FitLogLog, IgnoresNonPositivePoints) {
  const std::vector<double> x{-1.0, 2.0, 4.0, 8.0};
  const std::vector<double> y{5.0, 4.0, 8.0, 16.0};
  EXPECT_NEAR(firefly::util::fit_loglog_slope(x, y), 1.0, 1e-9);
}

TEST(Pearson, PerfectAndInverseCorrelation) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(firefly::util::pearson(x, y), 1.0, 1e-12);
  const std::vector<double> z{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(firefly::util::pearson(x, z), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(firefly::util::pearson(x, y), 0.0);
}

}  // namespace
