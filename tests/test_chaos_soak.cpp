// Chaos soak: hundreds of randomized fault schedules thrown at ST, each run
// asserting the invariant the hardening promises — the network either
// re-converges to one synchronised fragment or the run is diagnosed as
// partitioned (the reliable-link graph over the survivors is disconnected,
// so no protocol could do better).  A subset is replayed to prove the chaos
// itself is deterministic under the fixed master seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/scenario.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace firefly;

constexpr std::uint64_t kMasterSeed = 20150525;  // paper's venue date
constexpr std::size_t kSchedules = 200;

// One randomized scenario per index, drawn from a per-index substream so the
// plan depends only on (master seed, index) — not on evaluation order.
core::ScenarioConfig chaos_config(std::size_t index) {
  util::Rng rng(util::derive_seed(kMasterSeed, "chaos.plan", static_cast<std::uint32_t>(index)));
  core::ScenarioConfig config;
  config.n = 10 + rng.uniform_index(11);  // 10..20 devices
  config.seed = util::derive_seed(kMasterSeed, "chaos.trial", static_cast<std::uint32_t>(index));
  config.area_policy = core::AreaPolicy::kFixed;
  config.protocol.max_periods = 80;

  fault::FaultPlan& plan = config.protocol.faults;
  plan.churn_rate_per_min = rng.uniform(0.0, 40.0);
  plan.mean_downtime_ms = rng.uniform(500.0, 2'500.0);
  // Quiet tail: churn stops at ~60% of the horizon so re-convergence has
  // room (recoveries scheduled before the stop may still land in the tail).
  plan.churn_stop_ms = 0.6 * static_cast<double>(config.protocol.max_slots());
  plan.drift_max_ppm = rng.uniform(0.0, 300.0);
  plan.drop_probability = rng.uniform(0.0, 0.15);
  plan.fade_rate_per_min = rng.uniform(0.0, 60.0);
  plan.fade_mean_duration_ms = rng.uniform(100.0, 800.0);
  return config;
}

TEST(ChaosSoak, EveryScheduleReconvergesOrIsDiagnosedPartitioned) {
  std::vector<core::RunMetrics> results(kSchedules);
  util::ThreadPool pool;
  pool.parallel_for(kSchedules, [&results](std::size_t i) {
    results[i] = core::run_trial(core::Protocol::kSt, chaos_config(i));
  });

  std::size_t partitioned = 0;
  std::size_t faulted = 0;
  for (std::size_t i = 0; i < kSchedules; ++i) {
    SCOPED_TRACE(i);
    const core::RunMetrics& m = results[i];
    EXPECT_TRUE(m.converged || m.partitioned)
        << "schedule " << i << " neither converged nor diagnosed: crashes=" << m.crashes
        << " drops=" << m.fault_drops << " fragments=" << m.final_fragments
        << " alive=" << m.alive_at_end;
    if (m.partitioned) ++partitioned;
    if (m.crashes > 0 || m.fault_drops > 0) ++faulted;
  }
  // The sweep must actually exercise the fault machinery, and the partition
  // escape hatch must stay an exception, not the common outcome.
  EXPECT_GT(faulted, kSchedules / 2);
  EXPECT_LT(partitioned, kSchedules / 4);
}

TEST(ChaosSoak, ReplayedSchedulesAreBitIdentical) {
  // Re-run a slice of the soak and compare the replay-critical observables
  // exactly; every draw in the run comes from named substreams of the fixed
  // master seed, so nothing may differ.
  util::ThreadPool pool;
  constexpr std::size_t kReplays = 20;
  std::vector<core::RunMetrics> first(kReplays);
  std::vector<core::RunMetrics> second(kReplays);
  pool.parallel_for(kReplays, [&first](std::size_t i) {
    first[i] = core::run_trial(core::Protocol::kSt, chaos_config(i));
  });
  pool.parallel_for(kReplays, [&second](std::size_t i) {
    second[i] = core::run_trial(core::Protocol::kSt, chaos_config(i));
  });
  for (std::size_t i = 0; i < kReplays; ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(first[i].converged, second[i].converged);
    EXPECT_EQ(first[i].convergence_ms, second[i].convergence_ms);
    EXPECT_EQ(first[i].crashes, second[i].crashes);
    EXPECT_EQ(first[i].recoveries, second[i].recoveries);
    EXPECT_EQ(first[i].fault_drops, second[i].fault_drops);
    EXPECT_EQ(first[i].rach1_messages, second[i].rach1_messages);
    EXPECT_EQ(first[i].rach2_messages, second[i].rach2_messages);
    EXPECT_EQ(first[i].sync_uptime, second[i].sync_uptime);
    EXPECT_EQ(first[i].events_processed, second[i].events_processed);
    EXPECT_EQ(first[i].partitioned, second[i].partitioned);
  }
}

}  // namespace
