// Tests for structured run tracing (src/core/trace.hpp).
#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/scenario.hpp"
#include "proto/st.hpp"

namespace {

using namespace firefly;
using core::TraceKind;
using core::TraceSink;

TEST(TraceSink, RecordsAndCounts) {
  TraceSink sink;
  sink.record(1.0, 3, TraceKind::kFire, 0);
  sink.record(2.0, 4, TraceKind::kFire, 0);
  sink.record(3.0, 3, TraceKind::kMerge, 7, 9);
  EXPECT_EQ(sink.events().size(), 3U);
  EXPECT_EQ(sink.count(TraceKind::kFire), 2U);
  EXPECT_EQ(sink.count(TraceKind::kMerge), 1U);
  EXPECT_EQ(sink.count(TraceKind::kSync), 0U);
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
}

TEST(TraceSink, KindNames) {
  EXPECT_STREQ(to_string(TraceKind::kFire), "fire");
  EXPECT_STREQ(to_string(TraceKind::kMerge), "merge");
  EXPECT_STREQ(to_string(TraceKind::kSync), "sync");
}

TEST(TraceSink, CsvOutput) {
  TraceSink sink;
  sink.record(1.5, 2, TraceKind::kAdopt, 42);
  const std::string path = "/tmp/firefly_trace_test.csv";
  sink.write_csv(path);
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "time_ms,device,kind,a,b");
  EXPECT_EQ(row, "1.5,2,adopt,42,0");
  std::remove(path.c_str());
}

TEST(TraceSink, RingKeepsMostRecentEventsAndCountsDrops) {
  TraceSink sink;
  sink.set_capacity(3);
  for (std::uint32_t i = 0; i < 7; ++i) {
    sink.record(static_cast<double>(i), i, TraceKind::kFire);
  }
  EXPECT_EQ(sink.events().size(), 3U);
  EXPECT_EQ(sink.dropped(), 4U);
  // snapshot() restores chronological order across the wrap point.
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 3U);
  EXPECT_EQ(events[0].device, 4U);
  EXPECT_EQ(events[1].device, 5U);
  EXPECT_EQ(events[2].device, 6U);
  sink.clear();
  EXPECT_EQ(sink.dropped(), 0U);
  EXPECT_TRUE(sink.events().empty());
}

TEST(TraceSink, UnlimitedByDefault) {
  TraceSink sink;
  for (std::uint32_t i = 0; i < 1000; ++i) sink.record(0.0, i, TraceKind::kFire);
  EXPECT_EQ(sink.events().size(), 1000U);
  EXPECT_EQ(sink.dropped(), 0U);
}

TEST(TraceSink, DropCounterMirrorsIntoRegistry) {
  obs::Counter drops;
  TraceSink sink;
  sink.set_capacity(2);
  sink.set_drop_counter(&drops);
  for (std::uint32_t i = 0; i < 5; ++i) sink.record(0.0, i, TraceKind::kFire);
  EXPECT_EQ(sink.dropped(), 3U);
  EXPECT_EQ(drops.value(), 3U);
}

TEST(TraceSink, RingCsvIsChronological) {
  TraceSink sink;
  sink.set_capacity(2);
  for (std::uint32_t i = 0; i < 4; ++i) {
    sink.record(static_cast<double>(i), i, TraceKind::kFire);
  }
  const std::string path = "/tmp/firefly_trace_ring_test.csv";
  sink.write_csv(path);
  std::ifstream in(path);
  std::string header, row1, row2;
  std::getline(in, header);
  std::getline(in, row1);
  std::getline(in, row2);
  EXPECT_EQ(row1.substr(0, 1), "2");
  EXPECT_EQ(row2.substr(0, 1), "3");
  std::remove(path.c_str());
}

TEST(TraceIntegration, StRunEmitsProtocolMilestones) {
  core::ScenarioConfig config;
  config.n = 25;
  config.seed = 9;
  config.area_policy = core::AreaPolicy::kFixed;
  auto positions = core::deploy(config);
  proto::StEngine engine(std::move(positions), config.protocol, config.radio, config.seed);
  TraceSink sink;
  engine.set_trace(&sink);
  const auto metrics = engine.run();
  ASSERT_TRUE(metrics.converged);

  // Every device fires repeatedly.
  EXPECT_GE(sink.count(TraceKind::kFire), 25U);
  // 25 singletons need at least 24 merge events (each endpoint records).
  EXPECT_GE(sink.count(TraceKind::kMerge), 24U);
  // The convergence milestones appear exactly once.
  EXPECT_EQ(sink.count(TraceKind::kSync), 1U);
  EXPECT_EQ(sink.count(TraceKind::kDiscovery), 1U);
  // Phase adoptions happened during tree growth.
  EXPECT_GT(sink.count(TraceKind::kAdopt), 0U);
  // Events are time-ordered (the simulator is single-threaded).
  double prev = 0.0;
  for (const auto& e : sink.events()) {
    EXPECT_GE(e.time_ms, prev);
    prev = e.time_ms;
  }
}

TEST(TraceIntegration, DetachedSinkCostsNothingAndRecordsNothing) {
  core::ScenarioConfig config;
  config.n = 20;
  config.seed = 10;
  config.area_policy = core::AreaPolicy::kFixed;
  // No sink attached: run must behave identically (determinism covered by
  // other tests); here we simply check it does not crash and a second run
  // with a sink produces the same metrics.
  const auto bare = core::run_trial(core::Protocol::kSt, config);
  auto positions = core::deploy(config);
  proto::StEngine engine(std::move(positions), config.protocol, config.radio, config.seed);
  core::TraceSink sink;
  engine.set_trace(&sink);
  const auto traced = engine.run();
  EXPECT_EQ(bare.total_messages(), traced.total_messages());
  EXPECT_DOUBLE_EQ(bare.convergence_ms, traced.convergence_ms);
}

}  // namespace
