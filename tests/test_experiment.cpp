// Tests for the Monte-Carlo sweep harness (src/core/experiment.hpp).
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

using namespace firefly;
using core::Protocol;
using core::SweepConfig;
using core::SweepPoint;

SweepConfig tiny_sweep() {
  SweepConfig config;
  config.ns = {20, 40};
  config.trials = 2;
  config.base.area_policy = core::AreaPolicy::kFixed;
  config.base.protocol.max_periods = 200;
  config.master_seed = 99;
  return config;
}

TEST(Sweep, ProducesOnePointPerN) {
  const auto points = core::sweep(Protocol::kSt, tiny_sweep());
  ASSERT_EQ(points.size(), 2U);
  EXPECT_EQ(points[0].n, 20U);
  EXPECT_EQ(points[1].n, 40U);
  for (const SweepPoint& p : points) {
    EXPECT_EQ(p.trials, 2U);
    EXPECT_EQ(p.total_messages.count(), 2U);
    EXPECT_LE(p.failure_rate, 1.0);
  }
}

TEST(Sweep, ConvergedTrialsPopulateTimeSample) {
  const auto points = core::sweep(Protocol::kFst, tiny_sweep());
  for (const SweepPoint& p : points) {
    if (p.failure_rate == 0.0) {
      EXPECT_EQ(p.convergence_ms.count(), p.trials);
      EXPECT_GT(p.convergence_ms.mean(), 0.0);
    }
  }
}

TEST(Sweep, ParallelEqualsSequential) {
  // Seeds are derived per (n, trial), so the thread pool must not change
  // any statistic.
  const SweepConfig config = tiny_sweep();
  const auto sequential = core::sweep(Protocol::kSt, config);
  util::ThreadPool pool(4);
  const auto parallel = core::sweep(Protocol::kSt, config, &pool);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_DOUBLE_EQ(sequential[i].total_messages.mean(), parallel[i].total_messages.mean());
    EXPECT_DOUBLE_EQ(sequential[i].convergence_ms.mean(), parallel[i].convergence_ms.mean());
    EXPECT_DOUBLE_EQ(sequential[i].failure_rate, parallel[i].failure_rate);
    // Order-insensitive: medians of the retained samples agree too.
    EXPECT_DOUBLE_EQ(sequential[i].collisions.median(), parallel[i].collisions.median());
  }
}

TEST(Sweep, PoolSizeInvariance) {
  // Stronger than ParallelEqualsSequential: since workers write per-trial
  // slots and accumulation replays them in flat trial order, the resulting
  // SweepPoints must be *exactly* equal for a serial run and any pool size —
  // including the order of the retained per-trial values inside each Sample.
  const SweepConfig config = tiny_sweep();
  const auto serial = core::sweep(Protocol::kSt, config);
  util::ThreadPool pool1(1);
  const auto one_thread = core::sweep(Protocol::kSt, config, &pool1);
  util::ThreadPool pool4(4);
  const auto four_threads = core::sweep(Protocol::kSt, config, &pool4);

  auto expect_exactly_equal = [](const std::vector<SweepPoint>& a,
                                 const std::vector<SweepPoint>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].n, b[i].n);
      EXPECT_EQ(a[i].trials, b[i].trials);
      EXPECT_EQ(a[i].failure_rate, b[i].failure_rate);
      EXPECT_EQ(a[i].convergence_ms.values(), b[i].convergence_ms.values());
      EXPECT_EQ(a[i].total_messages.values(), b[i].total_messages.values());
      EXPECT_EQ(a[i].rach1_messages.values(), b[i].rach1_messages.values());
      EXPECT_EQ(a[i].rach2_messages.values(), b[i].rach2_messages.values());
      EXPECT_EQ(a[i].collisions.values(), b[i].collisions.values());
      EXPECT_EQ(a[i].neighbors_discovered.values(), b[i].neighbors_discovered.values());
      EXPECT_EQ(a[i].ranging_error.values(), b[i].ranging_error.values());
    }
  };
  expect_exactly_equal(serial, one_thread);
  expect_exactly_equal(serial, four_threads);
}

TEST(Sweep, TrialsUseDistinctSeeds) {
  SweepConfig config = tiny_sweep();
  config.ns = {30};
  config.trials = 4;
  const auto points = core::sweep(Protocol::kSt, config);
  ASSERT_EQ(points.size(), 1U);
  const auto& values = points[0].total_messages.values();
  ASSERT_EQ(values.size(), 4U);
  // With distinct seeds it is effectively impossible for all four trials
  // to produce the same message count.
  const bool all_same = std::all_of(values.begin(), values.end(),
                                    [&](double v) { return v == values[0]; });
  EXPECT_FALSE(all_same);
}

TEST(Sweep, MasterSeedChangesResults) {
  SweepConfig a = tiny_sweep();
  a.ns = {25};
  a.trials = 1;
  SweepConfig b = a;
  b.master_seed = a.master_seed + 1;
  const auto pa = core::sweep(Protocol::kFst, a);
  const auto pb = core::sweep(Protocol::kFst, b);
  // FST message counts are quantised to n per period, so two seeds that
  // happen to converge in the same number of periods tie on that statistic.
  // Collision counts are per-delivery stochastic; require that at least one
  // of the tracked statistics moved with the seed.
  const bool any_differ =
      pa[0].total_messages.mean() != pb[0].total_messages.mean() ||
      pa[0].collisions.mean() != pb[0].collisions.mean() ||
      pa[0].convergence_ms.mean() != pb[0].convergence_ms.mean();
  EXPECT_TRUE(any_differ);
}

}  // namespace
