// Tests for the Mirollo–Strogatz PRC (src/pco/prc.hpp), eq. (5).
#include "pco/prc.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace firefly::pco;

TEST(Prc, EquationFiveValues) {
  const PrcParams p{3.0, 0.05};
  EXPECT_NEAR(p.alpha(), std::exp(0.15), 1e-12);
  EXPECT_NEAR(p.beta(), (std::exp(0.15) - 1.0) / (std::exp(3.0) - 1.0), 1e-12);
}

TEST(Prc, ConvergenceConditionAlphaAboveOneBetaPositive) {
  // Mirollo–Strogatz: a > 0 and ε > 0 ⇒ α > 1 and β > 0 ⇒ convergence.
  for (const double a : {0.5, 1.0, 3.0, 8.0}) {
    for (const double eps : {0.01, 0.05, 0.2}) {
      const PrcParams p{a, eps};
      EXPECT_TRUE(p.valid_for_convergence());
      EXPECT_GT(p.alpha(), 1.0);
      EXPECT_GT(p.beta(), 0.0);
    }
  }
  EXPECT_FALSE((PrcParams{3.0, 0.0}).valid_for_convergence());
  EXPECT_FALSE((PrcParams{-1.0, 0.1}).valid_for_convergence());
}

TEST(Prc, ReturnMapSaturatesAtOne) {
  const PrcParams p{3.0, 0.5};
  EXPECT_DOUBLE_EQ(apply_prc(1.0, p), 1.0);
  EXPECT_DOUBLE_EQ(apply_prc(0.99, p), 1.0);
  EXPECT_LT(apply_prc(0.0, p), 1.0);
}

TEST(Prc, ReturnMapIsMonotone) {
  const PrcParams p{3.0, 0.05};
  double prev = -1.0;
  for (double theta = 0.0; theta <= 1.0; theta += 0.01) {
    const double jumped = apply_prc(theta, p);
    EXPECT_GE(jumped, prev);
    EXPECT_GE(jumped, theta);  // excitatory: never decreases the phase
    prev = jumped;
  }
}

TEST(Prc, PhaseResponseAtZeroIsBeta) {
  const PrcParams p{3.0, 0.05};
  EXPECT_NEAR(phase_response(0.0, p), p.beta(), 1e-12);
}

TEST(Prc, PhaseResponseGrowsWithPhaseBelowSaturation) {
  // Δθ(θ) = (α−1)θ + β is increasing until the min() clamps it.
  const PrcParams p{3.0, 0.05};
  const double threshold = absorption_threshold(p);
  double prev = 0.0;
  for (double theta = 0.0; theta < threshold; theta += 0.02) {
    const double response = phase_response(theta, p);
    EXPECT_GE(response, prev - 1e-12);
    prev = response;
  }
}

TEST(Prc, AbsorptionThresholdSeparatesFiring) {
  const PrcParams p{3.0, 0.05};
  const double theta_star = absorption_threshold(p);
  EXPECT_GT(theta_star, 0.0);
  EXPECT_LT(theta_star, 1.0);
  EXPECT_DOUBLE_EQ(apply_prc(theta_star, p), 1.0);
  EXPECT_LT(apply_prc(theta_star - 0.01, p), 1.0);
}

TEST(Prc, StrongCouplingAbsorbsEverything) {
  // β >= 1 means even phase 0 fires immediately.
  const PrcParams p{0.1, 30.0};
  EXPECT_DOUBLE_EQ(absorption_threshold(p), 0.0);
  EXPECT_DOUBLE_EQ(apply_prc(0.0, p), 1.0);
}

TEST(Prc, StrongerCouplingJumpsFurther) {
  const PrcParams weak{3.0, 0.01};
  const PrcParams strong{3.0, 0.2};
  for (double theta = 0.1; theta < 0.8; theta += 0.1) {
    EXPECT_GT(apply_prc(theta, strong), apply_prc(theta, weak));
  }
  EXPECT_LT(absorption_threshold(strong), absorption_threshold(weak));
}

}  // namespace
