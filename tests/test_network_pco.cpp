// Tests for the standalone continuous-time PCO network
// (src/pco/network_pco.hpp): the Mirollo–Strogatz theorem and topology
// effects the paper builds on.
#include "pco/network_pco.hpp"

#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace {

using namespace firefly;
using graph::Graph;
using pco::PcoNetwork;
using pco::PcoNetworkConfig;
using pco::PcoRunResult;

Graph full_mesh(std::size_t n) {
  Graph g(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) g.add_edge(u, v, 1.0);
  }
  return g;
}

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (std::uint32_t v = 1; v < n; ++v) g.add_edge(v - 1, v, 1.0);
  return g;
}

Graph star_graph(std::size_t n) {
  Graph g(n);
  for (std::uint32_t v = 1; v < n; ++v) g.add_edge(0, v, 1.0);
  return g;
}

class MirolloStrogatzTest : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(MirolloStrogatzTest, FullMeshAlwaysConverges) {
  // The M&S theorem: full mesh + α > 1, β > 0 ⇒ convergence (for almost
  // every initial condition).
  const auto [n, epsilon] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n * 1000 + int(epsilon * 1000)));
  PcoNetworkConfig config;
  config.prc = pco::PrcParams{3.0, epsilon};
  ASSERT_TRUE(config.prc.valid_for_convergence());
  Graph mesh = full_mesh(static_cast<std::size_t>(n));
  PcoNetwork net(mesh, config, rng);
  const PcoRunResult result = net.run();
  EXPECT_TRUE(result.converged) << "n=" << n << " eps=" << epsilon;
  EXPECT_LE(result.final_spread, config.spread_tolerance);
}

INSTANTIATE_TEST_SUITE_P(SweepSizeAndCoupling, MirolloStrogatzTest,
                         ::testing::Combine(::testing::Values(2, 5, 20, 50),
                                            ::testing::Values(0.02, 0.1, 0.3)));

TEST(PcoNetwork, StrongerCouplingConvergesFaster) {
  util::Rng rng1(7), rng2(7);
  Graph mesh = full_mesh(30);
  PcoNetworkConfig weak;
  weak.prc = pco::PrcParams{3.0, 0.01};
  PcoNetworkConfig strong;
  strong.prc = pco::PrcParams{3.0, 0.3};
  const auto weak_result = PcoNetwork(mesh, weak, rng1).run();
  const auto strong_result = PcoNetwork(mesh, strong, rng2).run();
  ASSERT_TRUE(weak_result.converged);
  ASSERT_TRUE(strong_result.converged);
  EXPECT_LT(strong_result.convergence_time_s, weak_result.convergence_time_s);
}

TEST(PcoNetwork, TreeTopologyConverges) {
  // The paper's claim (via [17]): synchronisation is achieved on trees.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    util::Rng rng(seed);
    Graph star = star_graph(20);
    PcoNetworkConfig config;
    config.prc = pco::PrcParams{3.0, 0.3};
    config.max_time_s = 2000.0;
    const auto result = PcoNetwork(star, config, rng).run();
    EXPECT_TRUE(result.converged) << "seed " << seed;
  }
}

TEST(PcoNetwork, PathSlowerThanMesh) {
  // Sparse coupling costs convergence time — the trade the ST design makes
  // deliberately and compensates for with merge-time phase adoption.
  util::Rng rng1(11), rng2(11);
  PcoNetworkConfig config;
  config.prc = pco::PrcParams{3.0, 0.3};
  config.max_time_s = 5000.0;
  const auto mesh_result = PcoNetwork(full_mesh(16), config, rng1).run();
  const auto path_result = PcoNetwork(path_graph(16), config, rng2).run();
  ASSERT_TRUE(mesh_result.converged);
  if (path_result.converged) {
    EXPECT_GE(path_result.convergence_time_s, mesh_result.convergence_time_s);
  }
}

TEST(PcoNetwork, PulseCountMatchesFiringAccounting) {
  util::Rng rng(13);
  Graph mesh = full_mesh(10);
  PcoNetworkConfig config;
  config.prc = pco::PrcParams{3.0, 0.2};
  PcoNetwork net(mesh, config, rng);
  const auto result = net.run();
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.total_firings, 0U);
  // Can't fire more often than once per oscillator per cascade instant;
  // loose sanity bound: firings <= n * (cycles + 1).
  EXPECT_LE(result.total_firings, 10 * (result.cycles + 1));
}

TEST(PcoNetwork, SingleOscillatorConvergesImmediately) {
  util::Rng rng(17);
  Graph g(1);
  PcoNetworkConfig config;
  const auto result = PcoNetwork(g, config, rng).run();
  EXPECT_TRUE(result.converged);
}

TEST(PcoNetwork, EmptyNetworkIsTriviallyConverged) {
  util::Rng rng(19);
  Graph g(0);
  PcoNetworkConfig config;
  EXPECT_TRUE(PcoNetwork(g, config, rng).run().converged);
}

TEST(PcoNetwork, GivesUpAtMaxTime) {
  // Two disconnected oscillators can never align (except by luck of the
  // draw): the run must terminate at max_time.
  util::Rng rng(23);
  Graph g(2);  // no edges
  PcoNetworkConfig config;
  config.max_time_s = 5.0;
  const auto result = PcoNetwork(g, config, rng).run();
  if (!result.converged) {
    EXPECT_GE(result.convergence_time_s, 0.0);
    EXPECT_LE(result.convergence_time_s, 5.0 + config.period_s);
  }
}

TEST(PcoNetwork, RefractoryStillConverges) {
  util::Rng rng(29);
  Graph mesh = full_mesh(20);
  PcoNetworkConfig config;
  config.prc = pco::PrcParams{3.0, 0.2};
  config.refractory_s = 0.01;  // 10% of the period
  const auto result = PcoNetwork(mesh, config, rng).run();
  EXPECT_TRUE(result.converged);
}

}  // namespace
