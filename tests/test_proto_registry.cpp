// Tests for the protocol registry (src/proto/registry): the built-in
// contents and their deterministic enumeration order, strict lookup
// (unknown names are nullptr, never a fallback), duplicate rejection, and
// the dispatch invariants the trial drivers rely on — an engine built by
// registry name is the same engine `run_trial` builds by enum
// (byte-identical serialized RunMetrics), and service snapshot/restore
// round-trips through the DiscoveryProtocol interface for every registered
// backend.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "core/service_mode.hpp"
#include "obs/json.hpp"
#include "proto/registry.hpp"

namespace {

using namespace firefly;

std::string metrics_json(const core::RunMetrics& metrics) {
  std::ostringstream oss;
  obs::JsonWriter w(oss);
  core::write_run_metrics_json(w, metrics);
  return oss.str();
}

std::unique_ptr<core::EngineBase> null_factory(std::vector<geo::Vec2>,
                                               const core::ProtocolParams&,
                                               const phy::RadioParams&, std::uint64_t) {
  return nullptr;
}

TEST(ProtoRegistry, BuiltinNamesEnumerateInRegistrationOrder) {
  const std::vector<std::string> expected = {"fst", "st", "birthday", "desync"};
  EXPECT_EQ(proto::Registry::instance().names(), expected);
  // names() is a pure enumeration: asking twice gives the same answer.
  EXPECT_EQ(proto::Registry::instance().names(), expected);
}

TEST(ProtoRegistry, FindByNameAndByEnumAgree) {
  const proto::Registry& registry = proto::Registry::instance();
  for (const std::string& name : registry.names()) {
    const proto::ProtocolInfo* by_name = registry.find(name);
    ASSERT_NE(by_name, nullptr) << name;
    EXPECT_EQ(registry.find(by_name->id), by_name);
    // The display id is the one the JSON records carry.
    EXPECT_EQ(by_name->display, core::to_string(by_name->id));
    EXPECT_FALSE(by_name->summary.empty()) << name;
  }
}

TEST(ProtoRegistry, UnknownNameIsNullNotAFallback) {
  const proto::Registry& registry = proto::Registry::instance();
  EXPECT_EQ(registry.find("nope"), nullptr);
  EXPECT_EQ(registry.find(""), nullptr);
  EXPECT_EQ(registry.find("ST"), nullptr) << "registry names are lower-case";
  core::ScenarioConfig config;
  config.n = 4;
  EXPECT_EQ(registry.make("nope", core::deploy(config), config.protocol, config.radio,
                          config.seed),
            nullptr);
}

TEST(ProtoRegistry, DuplicateAndNullRegistrationsAreRejected) {
  proto::Registry local;
  proto::ProtocolInfo info;
  info.name = "st";
  info.display = "ST";
  info.summary = "test stub";
  info.id = core::Protocol::kSt;
  info.factory = &null_factory;
  EXPECT_TRUE(local.add(info));
  EXPECT_FALSE(local.add(info)) << "same name must be rejected";

  proto::ProtocolInfo same_id = info;
  same_id.name = "st-again";
  EXPECT_FALSE(local.add(same_id)) << "same enum id must be rejected";

  proto::ProtocolInfo no_factory = info;
  no_factory.name = "hollow";
  no_factory.id = core::Protocol::kFst;
  no_factory.factory = nullptr;
  EXPECT_FALSE(local.add(no_factory)) << "null factory must be rejected";

  EXPECT_EQ(local.names(), std::vector<std::string>{"st"});
}

TEST(ProtoRegistry, EngineBuiltByNameMatchesRunTrialByEnum) {
  // run_trial dispatches by enum through the registry; building the engine
  // by registry name and running it directly must reproduce the exact same
  // serialized RunMetrics — name lookup and enum lookup are one backend.
  const proto::Registry& registry = proto::Registry::instance();
  for (const std::string& name : registry.names()) {
    core::ScenarioConfig config;
    config.n = 20;
    config.seed = 77;
    config.protocol.max_periods = 120;
    const core::RunMetrics via_enum =
        core::run_trial(registry.find(name)->id, config);
    std::unique_ptr<core::EngineBase> engine = registry.make(
        name, core::deploy(config), config.protocol, config.radio, config.seed);
    ASSERT_NE(engine, nullptr) << name;
    EXPECT_EQ(metrics_json(engine->run()), metrics_json(via_enum)) << name;
  }
}

TEST(ProtoRegistry, ServiceSnapshotRestoreRoundTripsForEveryBackend) {
  // The PR 6 replay harness, generalised across the registry: for each
  // backend, a soak with checkpoints matches the uninterrupted reference,
  // and rolling back to the last checkpoint and re-running the tail
  // reproduces the same end state — protocol_snapshot_word/restore_word
  // must capture everything protocol-specific.
  const proto::Registry& registry = proto::Registry::instance();
  for (const std::string& name : registry.names()) {
    core::ScenarioConfig config;
    config.n = 16;
    config.seed = 5;
    config.protocol.faults.churn_rate_per_min = 90.0;
    config.protocol.faults.mean_downtime_ms = 800.0;
    const std::vector<geo::Vec2> positions = core::deploy(config);

    core::ServiceConfig service;
    service.duration_slots = 8'000;
    service.window_slots = 1'000;

    std::unique_ptr<core::EngineBase> reference = registry.make(
        name, positions, config.protocol, config.radio, config.seed);
    ASSERT_NE(reference, nullptr) << name;
    const core::ServiceReport ref = reference->run_service(service);
    ASSERT_TRUE(ref.ok()) << name << ": " << ref.error;

    core::ServiceConfig checkpointed = service;
    checkpointed.snapshot_every_slots = 4'000;
    std::unique_ptr<core::EngineBase> engine = registry.make(
        name, positions, config.protocol, config.radio, config.seed);
    const core::ServiceReport with_snaps = engine->run_service(checkpointed);
    ASSERT_TRUE(with_snaps.ok()) << name << ": " << with_snaps.error;
    EXPECT_TRUE(ref.metrics == with_snaps.metrics)
        << name << ": taking snapshots perturbed the run";

    ASSERT_NE(engine->service_snapshot(), nullptr) << name;
    engine->restore(*engine->service_snapshot());
    const core::ServiceReport resumed = engine->run_service(checkpointed);
    ASSERT_TRUE(resumed.ok()) << name << ": " << resumed.error;
    EXPECT_TRUE(ref.metrics == resumed.metrics)
        << name << ": restored run diverged from the uninterrupted one";
  }
}

}  // namespace
