// Wheel-vs-heap equivalence: the slot-calendar scheduler must be a pure
// optimisation.  Every scenario here runs once per SchedulerKind (and, for
// the static ST case, per SpatialIndex too) and asserts the full RunMetrics
// records are bit-identical through the deterministic JSON serializer —
// any divergence in event order would shift RNG consumption and fail.
// Mirrors test_spatial_equivalence.cpp.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "obs/json.hpp"
#include "phy/channel.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace firefly;

std::string metrics_json(const core::RunMetrics& metrics) {
  std::ostringstream oss;
  obs::JsonWriter w(oss);
  core::write_run_metrics_json(w, metrics);
  return oss.str();
}

core::RunMetrics run_with(core::Protocol protocol, core::ScenarioConfig config,
                          sim::SchedulerKind kind) {
  config.protocol.scheduler = kind;
  return core::run_trial(protocol, config);
}

void expect_bit_identical(core::Protocol protocol, const core::ScenarioConfig& config) {
  const core::RunMetrics wheel = run_with(protocol, config, sim::SchedulerKind::kWheel);
  const core::RunMetrics heap = run_with(protocol, config, sim::SchedulerKind::kHeap);
  EXPECT_EQ(metrics_json(wheel), metrics_json(heap));
}

TEST(SchedulerEquivalence, StStaticRunIsBitIdentical) {
  core::ScenarioConfig config;
  config.n = 120;
  config.seed = 7001;
  const core::RunMetrics wheel =
      run_with(core::Protocol::kSt, config, sim::SchedulerKind::kWheel);
  const core::RunMetrics heap =
      run_with(core::Protocol::kSt, config, sim::SchedulerKind::kHeap);
  EXPECT_EQ(metrics_json(wheel), metrics_json(heap));
  // Guard against a vacuous pass: the scenario must actually do something.
  EXPECT_TRUE(wheel.converged);
  EXPECT_GT(wheel.deliveries, 0U);
}

TEST(SchedulerEquivalence, StSecondSeedIsBitIdentical) {
  core::ScenarioConfig config;
  config.n = 80;
  config.seed = 42;
  expect_bit_identical(core::Protocol::kSt, config);
}

TEST(SchedulerEquivalence, FstStaticRunIsBitIdentical) {
  core::ScenarioConfig config;
  config.n = 60;
  config.seed = 7002;
  expect_bit_identical(core::Protocol::kFst, config);
}

TEST(SchedulerEquivalence, StMobilityRunIsBitIdentical) {
  // Mobility adds the periodic mobility timer and per-step cache rebuilds
  // to the event mix.  Bounded observation window so devices keep moving.
  core::ScenarioConfig config;
  config.n = 60;
  config.seed = 7003;
  config.protocol.mobility_speed_mps = 1.5;
  config.protocol.stop_on_convergence = false;
  config.protocol.max_periods = 20;
  expect_bit_identical(core::Protocol::kSt, config);
}

TEST(SchedulerEquivalence, StFaultInjectionRunIsBitIdentical) {
  // Churn and fade events schedule far ahead of the firing pattern and
  // cancel/reschedule under recovery — the ugliest event mix we have.
  core::ScenarioConfig config;
  config.n = 60;
  config.seed = 7004;
  config.protocol.max_periods = 30;
  config.protocol.faults.churn_rate_per_min = 20.0;
  config.protocol.faults.mean_downtime_ms = 1000.0;
  config.protocol.faults.drop_probability = 0.05;
  config.protocol.faults.fade_rate_per_min = 10.0;
  config.protocol.faults.drift_max_ppm = 50.0;
  expect_bit_identical(core::Protocol::kSt, config);
}

TEST(SchedulerEquivalence, DesyncStaticRunIsBitIdentical) {
  // The DESYNC backend schedules jump-adjusted fires through the same
  // cancel/reschedule path; its run must not depend on the scheduler.
  core::ScenarioConfig config;
  config.n = 60;
  config.seed = 7005;
  const core::RunMetrics wheel =
      run_with(core::Protocol::kDesync, config, sim::SchedulerKind::kWheel);
  const core::RunMetrics heap =
      run_with(core::Protocol::kDesync, config, sim::SchedulerKind::kHeap);
  EXPECT_EQ(metrics_json(wheel), metrics_json(heap));
  EXPECT_TRUE(wheel.converged);
  EXPECT_GT(wheel.deliveries, 0U);
}

TEST(SchedulerEquivalence, DesyncFaultInjectionRunIsBitIdentical) {
  core::ScenarioConfig config;
  config.n = 40;
  config.seed = 7006;
  config.protocol.max_periods = 30;
  config.protocol.faults.churn_rate_per_min = 20.0;
  config.protocol.faults.mean_downtime_ms = 1000.0;
  config.protocol.faults.drop_probability = 0.05;
  expect_bit_identical(core::Protocol::kDesync, config);
}

TEST(SchedulerEquivalence, AllFourSchedulerSpatialCombinationsMatch) {
  // The acceptance matrix: {wheel, heap} × {grid, dense} on one scenario
  // must produce one identical RunMetrics record, serialised.
  core::ScenarioConfig config;
  config.n = 100;
  config.seed = 31337;
  std::string reference;
  for (const auto kind : {sim::SchedulerKind::kWheel, sim::SchedulerKind::kHeap}) {
    for (const auto index : {phy::SpatialIndex::kGrid, phy::SpatialIndex::kDense}) {
      core::ScenarioConfig c = config;
      c.protocol.scheduler = kind;
      c.radio.spatial_index = index;
      const std::string json = metrics_json(core::run_trial(core::Protocol::kSt, c));
      if (reference.empty()) {
        reference = json;
      } else {
        EXPECT_EQ(json, reference)
            << "diverged at scheduler=" << sim::to_string(kind)
            << " index=" << (index == phy::SpatialIndex::kGrid ? "grid" : "dense");
      }
    }
  }
  EXPECT_FALSE(reference.empty());
}

}  // namespace
