// Cancel-heavy churn coverage for the scheduler storage layer: SlabArena
// freelist reuse (slots recycle, capacity and high-water stay put) and
// slot-calendar cancel() under a mass-departure workload that cancels
// thousands of pending fires per wave — with the binary-heap reference
// scheduler asserting the surviving pop order is unchanged.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/slot_calendar.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace {

using namespace firefly;

struct Payload {
  std::uint64_t tag = 0;
};

TEST(SlabArena, FreelistRecyclesWithoutGrowingCapacity) {
  util::SlabArena<Payload> arena;
  std::vector<std::uint32_t> first;
  for (int i = 0; i < 1'000; ++i) first.push_back(arena.allocate());
  const std::size_t capacity = arena.capacity();
  EXPECT_EQ(arena.live(), 1'000u);
  EXPECT_EQ(arena.high_water(), 1'000u);

  // Release everything, then allocate the same count again: every slot must
  // come from the freelist — no new chunk, no high-water movement.
  for (const std::uint32_t idx : first) arena.release(idx);
  EXPECT_EQ(arena.live(), 0u);
  std::vector<bool> was_allocated(arena.capacity(), false);
  for (const std::uint32_t idx : first) was_allocated[idx] = true;
  for (int i = 0; i < 1'000; ++i) {
    const std::uint32_t idx = arena.allocate();
    EXPECT_TRUE(was_allocated[idx]) << "allocate() minted a fresh slot " << idx
                                    << " instead of reusing the freelist";
  }
  EXPECT_EQ(arena.capacity(), capacity);
  EXPECT_EQ(arena.high_water(), 1'000u);
}

TEST(SlabArena, HighWaterTracksPeakNotCurrent) {
  util::SlabArena<Payload> arena;
  std::vector<std::uint32_t> slots;
  for (int i = 0; i < 300; ++i) slots.push_back(arena.allocate());
  for (const std::uint32_t idx : slots) arena.release(idx);
  EXPECT_EQ(arena.live(), 0u);
  EXPECT_EQ(arena.high_water(), 300u);
  (void)arena.allocate();
  EXPECT_EQ(arena.high_water(), 300u) << "re-allocation below the peak moved HWM";
}

TEST(SlabArena, CopyFromReplicatesFreelistAndHighWater) {
  util::SlabArena<Payload> src;
  std::vector<std::uint32_t> slots;
  for (int i = 0; i < 600; ++i) slots.push_back(src.allocate());
  for (int i = 0; i < 600; i += 2) src.release(slots[i]);  // fragment freelist

  util::SlabArena<Payload> dst;
  dst.copy_from(src, [](Payload& d, const Payload& s) { d = s; });
  EXPECT_EQ(dst.capacity(), src.capacity());
  EXPECT_EQ(dst.live(), src.live());
  EXPECT_EQ(dst.high_water(), src.high_water());
  // The copy's freelist must replay identically: allocate from both, the
  // same indices must come back in the same order.
  for (int i = 0; i < 300; ++i) EXPECT_EQ(dst.allocate(), src.allocate());
}

/// One churn wave: schedule `per_wave` fires spread over the coming second,
/// cancel a churn-like subset (mass departure), drain the survivors.  Runs
/// the same sequence against the wheel and the reference heap.
TEST(SlotCalendarChurn, MassCancellationMatchesHeapAndBoundsArena) {
  sim::SlotCalendar wheel;
  sim::EventQueue heap;
  util::Rng rng(99);

  std::size_t capacity_after_first_wave = 0;
  sim::SimTime now = sim::SimTime::zero();
  for (int wave = 0; wave < 6; ++wave) {
    std::vector<std::pair<sim::EventId, sim::EventId>> pending;
    pending.reserve(4'000);
    for (int i = 0; i < 4'000; ++i) {
      const sim::SimTime at =
          now + sim::SimTime::milliseconds(1 + static_cast<std::int64_t>(
                                                   rng.uniform_index(1'000)));
      pending.emplace_back(wheel.schedule(at, [] {}), heap.schedule(at, [] {}));
    }
    // Mass departure: ~75% of this wave's fires are cancelled.
    std::uint32_t cancelled = 0;
    for (const auto& [wheel_id, heap_id] : pending) {
      if (rng.uniform_index(4) != 0) {
        ASSERT_TRUE(wheel.cancel(wheel_id));
        ASSERT_TRUE(heap.cancel(heap_id));
        // Double-cancel must report failure, not corrupt the freelist.
        EXPECT_FALSE(wheel.cancel(wheel_id));
        ++cancelled;
      }
    }
    ASSERT_GT(cancelled, 2'000u);

    // Survivors pop in the identical (time, seq) order on both backends.
    while (!heap.empty()) {
      ASSERT_FALSE(wheel.empty());
      const sim::SimTime wheel_time = wheel.next_time();
      EXPECT_EQ(wheel_time.us, heap.next_time().us);
      (void)wheel.pop();
      (void)heap.pop();
      now = wheel_time;
    }
    EXPECT_TRUE(wheel.empty());

    if (wave == 0) {
      capacity_after_first_wave = wheel.arena_capacity();
    } else {
      EXPECT_EQ(wheel.arena_capacity(), capacity_after_first_wave)
          << "arena grew on wave " << wave << " despite identical load";
    }
  }
  EXPECT_LE(wheel.arena_high_water(), 4'096u);
}

TEST(SlotCalendarChurn, CancelledIdsStayDeadAfterSlotReuse) {
  sim::SlotCalendar wheel;
  const sim::EventId first =
      wheel.schedule(sim::SimTime::milliseconds(5), [] {});
  ASSERT_TRUE(wheel.cancel(first));
  // The freed slot is recycled by the next schedule; the old id's generation
  // is stale and must not cancel the new occupant.
  const sim::EventId second =
      wheel.schedule(sim::SimTime::milliseconds(7), [] {});
  EXPECT_FALSE(wheel.cancel(first));
  EXPECT_EQ(wheel.size(), 1u);
  EXPECT_TRUE(wheel.cancel(second));
  EXPECT_TRUE(wheel.empty());
}

}  // namespace
