// Grid-vs-dense equivalence: the spatial-index fast path must be a pure
// optimisation.  Every scenario here runs twice — SpatialIndex::kGrid and
// SpatialIndex::kDense — and asserts the full RunMetrics records are
// bit-identical (compared through the deterministic JSON serializer, which
// renders doubles with shortest-round-trip formatting, so any ULP of
// divergence fails).  Also covers the memoised channel queries and the
// grid-accelerated proximity_graph builder.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "graph/graph.hpp"
#include "mac/radio.hpp"
#include "obs/json.hpp"
#include "phy/channel.hpp"

namespace {

using namespace firefly;

std::string metrics_json(const core::RunMetrics& metrics) {
  std::ostringstream oss;
  obs::JsonWriter w(oss);
  core::write_run_metrics_json(w, metrics);
  return oss.str();
}

core::RunMetrics run_with(core::Protocol protocol, core::ScenarioConfig config,
                          phy::SpatialIndex index) {
  config.radio.spatial_index = index;
  return core::run_trial(protocol, config);
}

void expect_bit_identical(core::Protocol protocol, const core::ScenarioConfig& config) {
  const core::RunMetrics grid = run_with(protocol, config, phy::SpatialIndex::kGrid);
  const core::RunMetrics dense = run_with(protocol, config, phy::SpatialIndex::kDense);
  EXPECT_EQ(metrics_json(grid), metrics_json(dense));
}

TEST(SpatialEquivalence, StStaticRunIsBitIdentical) {
  core::ScenarioConfig config;
  config.n = 120;
  config.seed = 7001;
  const core::RunMetrics grid = run_with(core::Protocol::kSt, config, phy::SpatialIndex::kGrid);
  const core::RunMetrics dense =
      run_with(core::Protocol::kSt, config, phy::SpatialIndex::kDense);
  EXPECT_EQ(metrics_json(grid), metrics_json(dense));
  // Guard against a vacuous pass: the scenario must actually do something.
  EXPECT_TRUE(grid.converged);
  EXPECT_GT(grid.deliveries, 0U);
}

TEST(SpatialEquivalence, StSecondSeedIsBitIdentical) {
  core::ScenarioConfig config;
  config.n = 80;
  config.seed = 42;
  expect_bit_identical(core::Protocol::kSt, config);
}

TEST(SpatialEquivalence, FstStaticRunIsBitIdentical) {
  core::ScenarioConfig config;
  config.n = 60;
  config.seed = 7002;
  expect_bit_identical(core::Protocol::kFst, config);
}

TEST(SpatialEquivalence, StMobilityRunIsBitIdentical) {
  // Mobility exercises the incremental grid updates plus the shadowing
  // epoch bump on every mobility step.  Run a bounded observation window so
  // devices keep moving after (possible) convergence.
  core::ScenarioConfig config;
  config.n = 60;
  config.seed = 7003;
  config.protocol.mobility_speed_mps = 1.5;
  config.protocol.stop_on_convergence = false;
  config.protocol.max_periods = 20;
  expect_bit_identical(core::Protocol::kSt, config);
}

TEST(SpatialEquivalence, StFaultInjectionRunIsBitIdentical) {
  // Faults hit the delivery fast path's bail-out (the fault hook must see
  // every reception, so the fading skip is disabled) plus churn-driven
  // cache invalidation.  Faulted runs go to max_periods; keep it short.
  core::ScenarioConfig config;
  config.n = 60;
  config.seed = 7004;
  config.protocol.max_periods = 30;
  config.protocol.faults.churn_rate_per_min = 20.0;
  config.protocol.faults.mean_downtime_ms = 1000.0;
  config.protocol.faults.drop_probability = 0.05;
  config.protocol.faults.fade_rate_per_min = 10.0;
  config.protocol.faults.drift_max_ppm = 50.0;
  expect_bit_identical(core::Protocol::kSt, config);
}

TEST(SpatialEquivalence, DesyncStaticRunIsBitIdentical) {
  // The DESYNC backend consumes the same delivery stream; the spatial
  // index must not change which pulses seed its phase-neighbour memory.
  core::ScenarioConfig config;
  config.n = 60;
  config.seed = 7005;
  const core::RunMetrics grid =
      run_with(core::Protocol::kDesync, config, phy::SpatialIndex::kGrid);
  const core::RunMetrics dense =
      run_with(core::Protocol::kDesync, config, phy::SpatialIndex::kDense);
  EXPECT_EQ(metrics_json(grid), metrics_json(dense));
  EXPECT_TRUE(grid.converged);
  EXPECT_GT(grid.deliveries, 0U);
}

TEST(SpatialEquivalence, MemoisedCandidateMeansMatchDirectChannelQueries) {
  // The candidate cache stores slot-averaged powers computed through the
  // cache-free bulk path; the protocols later query the memoised per-link
  // path.  Both must return the exact same dBm for every candidate pair.
  const core::ScenarioConfig config{.n = 150, .seed = 9001};
  const std::vector<geo::Vec2> positions = core::deploy(config);
  auto channel = phy::make_paper_channel(config.seed);

  sim::Simulator sim;
  mac::RadioMedium radio(&sim, channel.get(), channel->params().capture_margin_db);
  for (std::uint32_t id = 0; id < positions.size(); ++id) {
    radio.add_device(id, positions[id]);
  }
  radio.rebuild();

  std::size_t pairs = 0;
  radio.for_each_candidate_pair([&](std::uint32_t u, std::uint32_t v, util::Dbm mean) {
    const util::Dbm direct =
        channel->mean_received_power(u, positions[u], v, positions[v]);
    EXPECT_EQ(mean.value, direct.value) << "pair (" << u << ", " << v << ")";
    // Symmetric by construction: hypot and the shadow key are symmetric.
    const util::Dbm reverse =
        channel->mean_received_power(v, positions[v], u, positions[u]);
    EXPECT_EQ(direct.value, reverse.value);
    ++pairs;
  });
  EXPECT_GT(pairs, 0U);
}

TEST(SpatialEquivalence, ProximityGraphMatchesDenseReference) {
  const core::ScenarioConfig config{.n = 200, .seed = 9002};
  const std::vector<geo::Vec2> positions = core::deploy(config);

  auto channel = phy::make_paper_channel(config.seed);
  const graph::Graph via_grid = core::proximity_graph(positions, *channel);

  // Inline dense reference, same admission rule and edge order.
  auto reference_channel = phy::make_paper_channel(config.seed);
  graph::Graph dense(positions.size());
  for (std::uint32_t u = 0; u < positions.size(); ++u) {
    for (std::uint32_t v = u + 1; v < positions.size(); ++v) {
      const util::Dbm forward =
          reference_channel->mean_received_power_uncached(u, positions[u], v, positions[v]);
      const util::Dbm backward =
          reference_channel->mean_received_power_uncached(v, positions[v], u, positions[u]);
      const util::Dbm strongest = std::max(forward, backward);
      if (reference_channel->detectable(strongest)) dense.add_edge(u, v, strongest.value);
    }
  }

  ASSERT_EQ(via_grid.edge_count(), dense.edge_count());
  EXPECT_EQ(via_grid.edges(), dense.edges());
  EXPECT_GT(dense.edge_count(), 0U);
}

}  // namespace
