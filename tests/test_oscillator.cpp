// Tests for integrate-and-fire oscillators (src/pco/oscillator.hpp).
#include "pco/oscillator.hpp"

#include <gtest/gtest.h>

namespace {

using namespace firefly::pco;

constexpr PrcParams kPrc{3.0, 0.1};

TEST(Oscillator, FiresEveryPeriodWhenUncoupled) {
  // eq. (3): dθ/dt = θ_th/T — an uncoupled oscillator fires every T.
  Oscillator osc(0.1, kPrc, 0.0);
  int fires = 0;
  for (int step = 0; step < 1000; ++step) {
    if (osc.advance(0.001)) {
      ++fires;
      osc.on_fired();
    }
  }
  EXPECT_EQ(fires, 10);
}

TEST(Oscillator, TimeToFire) {
  Oscillator osc(2.0, kPrc, 0.25);
  EXPECT_DOUBLE_EQ(osc.time_to_fire(), 1.5);
  osc.advance(0.5);
  EXPECT_DOUBLE_EQ(osc.time_to_fire(), 1.0);
}

TEST(Oscillator, PulseAppliesPrc) {
  Oscillator osc(1.0, kPrc, 0.5);
  const double before = osc.phase();
  EXPECT_FALSE(osc.receive_pulse());
  EXPECT_NEAR(osc.phase(), apply_prc(before, kPrc), 1e-12);
}

TEST(Oscillator, PulseAtHighPhaseAbsorbs) {
  Oscillator osc(1.0, kPrc, 0.95);
  EXPECT_TRUE(osc.receive_pulse());
  EXPECT_DOUBLE_EQ(osc.phase(), 1.0);
  osc.on_fired();
  EXPECT_DOUBLE_EQ(osc.phase(), 0.0);
}

TEST(Oscillator, RefractoryBlocksPulses) {
  Oscillator osc(1.0, kPrc, 0.0);
  osc.set_refractory_window(0.2);
  osc.on_fired();
  EXPECT_TRUE(osc.refractory());
  const double before = osc.phase();
  EXPECT_FALSE(osc.receive_pulse());
  EXPECT_DOUBLE_EQ(osc.phase(), before);  // no jump while refractory
  osc.advance(0.25);
  EXPECT_FALSE(osc.refractory());
  osc.receive_pulse();
  EXPECT_GT(osc.phase(), 0.25);  // jump applied now
}

TEST(Oscillator, SetPhase) {
  Oscillator osc(1.0, kPrc, 0.0);
  osc.set_phase(0.7);
  EXPECT_DOUBLE_EQ(osc.phase(), 0.7);
}

TEST(SlotOscillator, CounterFormulation) {
  // The paper's Section III description: counter increments per slot,
  // fires at the threshold, resets to zero.
  SlotOscillator osc(10, kPrc, 0);
  int fires = 0;
  for (int slot = 0; slot < 100; ++slot) {
    if (osc.tick()) {
      ++fires;
      osc.on_fired();
    }
  }
  EXPECT_EQ(fires, 10);
}

TEST(SlotOscillator, InitialCounterShiftsFirstFire) {
  SlotOscillator osc(10, kPrc, 7);
  int ticks_to_fire = 0;
  while (!osc.tick()) ++ticks_to_fire;
  EXPECT_EQ(ticks_to_fire, 2);  // 7 -> 8 -> 9 -> fires on the 3rd tick
}

TEST(SlotOscillator, PulseJumpsCounterForward) {
  SlotOscillator osc(100, kPrc, 50);
  EXPECT_FALSE(osc.receive_pulse());
  // θ = 0.5 → α·0.5 + β ≈ 0.567: counter jumps to ceil(56.7) = 57.
  EXPECT_GT(osc.counter(), 50U);
  EXPECT_LT(osc.counter(), 100U);
}

TEST(SlotOscillator, PulseNeverMovesCounterBackwards) {
  SlotOscillator osc(100, PrcParams{3.0, 0.001}, 99);
  const auto before = osc.counter();
  osc.receive_pulse();
  EXPECT_GE(osc.counter(), before);
}

TEST(SlotOscillator, AbsorptionAtHighCounter) {
  SlotOscillator osc(100, kPrc, 95);
  EXPECT_TRUE(osc.receive_pulse());
  osc.on_fired();
  EXPECT_EQ(osc.counter(), 0U);
}

TEST(SlotOscillator, RefractorySlots) {
  SlotOscillator osc(100, kPrc, 0);
  osc.set_refractory_slots(3);
  osc.on_fired();
  EXPECT_TRUE(osc.refractory());
  EXPECT_FALSE(osc.receive_pulse());
  EXPECT_EQ(osc.counter(), 0U);
  osc.tick();
  osc.tick();
  osc.tick();
  EXPECT_FALSE(osc.refractory());
}

TEST(SlotOscillator, PhaseIsCounterOverPeriod) {
  SlotOscillator osc(200, kPrc, 50);
  EXPECT_DOUBLE_EQ(osc.phase(), 0.25);
  osc.set_counter(150);
  EXPECT_DOUBLE_EQ(osc.phase(), 0.75);
}

}  // namespace
