// Tests for the weighted graph container (src/graph/graph.hpp).
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace {

using namespace firefly::graph;

Graph triangle_plus_tail() {
  // 0-1-2 triangle with a tail 2-3.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 3.0);
  g.add_edge(2, 3, 4.0);
  return g;
}

TEST(Graph, CountsVerticesAndEdges) {
  const Graph g = triangle_plus_tail();
  EXPECT_EQ(g.vertex_count(), 4U);
  EXPECT_EQ(g.edge_count(), 4U);
  EXPECT_DOUBLE_EQ(g.total_weight(), 10.0);
}

TEST(Graph, AdjacencyListsBothDirections) {
  const Graph g = triangle_plus_tail();
  const auto n2 = g.neighbors(2);
  EXPECT_EQ(n2.size(), 3U);
  std::vector<VertexId> targets;
  for (const Neighbor& nb : n2) targets.push_back(nb.to);
  std::sort(targets.begin(), targets.end());
  EXPECT_EQ(targets, (std::vector<VertexId>{0, 1, 3}));
  EXPECT_EQ(g.neighbors(3).size(), 1U);
  EXPECT_EQ(g.neighbors(3)[0].to, 2U);
  EXPECT_DOUBLE_EQ(g.neighbors(3)[0].weight, 4.0);
}

TEST(Graph, EdgeIndicesInAdjacencyPointBack) {
  const Graph g = triangle_plus_tail();
  for (VertexId v = 0; v < 4; ++v) {
    for (const Neighbor& nb : g.neighbors(v)) {
      const Edge& e = g.edge(nb.edge_index);
      EXPECT_TRUE((e.u == v && e.v == nb.to) || (e.v == v && e.u == nb.to));
      EXPECT_DOUBLE_EQ(e.weight, nb.weight);
    }
  }
}

TEST(Graph, AdjacencyRebuiltAfterMutation) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_EQ(g.neighbors(2).size(), 0U);
  g.add_edge(1, 2, 1.0);
  EXPECT_EQ(g.neighbors(2).size(), 1U);
}

TEST(Graph, Connectivity) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  EXPECT_FALSE(g.connected());
  EXPECT_EQ(g.component_count(), 3U);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.component_count(), 1U);
}

TEST(Graph, EmptyGraph) {
  const Graph g(0);
  EXPECT_EQ(g.component_count(), 0U);
  EXPECT_TRUE(g.connected());
  EXPECT_DOUBLE_EQ(g.total_weight(), 0.0);
}

TEST(IsSpanningTree, AcceptsValidTree) {
  const std::vector<Edge> tree{{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}};
  EXPECT_TRUE(is_spanning_tree(4, tree));
}

TEST(IsSpanningTree, RejectsWrongEdgeCount) {
  const std::vector<Edge> too_few{{0, 1, 1.0}};
  EXPECT_FALSE(is_spanning_tree(4, too_few));
}

TEST(IsSpanningTree, RejectsCycle) {
  const std::vector<Edge> cycle{{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}};
  EXPECT_FALSE(is_spanning_tree(4, cycle));  // 3 edges, 4 vertices, has a cycle
}

TEST(IsSpanningTree, RejectsDisconnected) {
  const std::vector<Edge> forest{{0, 1, 1.0}, {0, 1, 2.0}, {2, 3, 1.0}};
  EXPECT_FALSE(is_spanning_tree(4, forest));  // duplicate edge = cycle
}

TEST(IsSpanningTree, RejectsOutOfRangeVertices) {
  const std::vector<Edge> bad{{0, 7, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}};
  EXPECT_FALSE(is_spanning_tree(4, bad));
}

TEST(IsSpanningTree, EmptyCases) {
  EXPECT_TRUE(is_spanning_tree(0, {}));
  EXPECT_TRUE(is_spanning_tree(1, {}));
  EXPECT_FALSE(is_spanning_tree(2, {}));
}

}  // namespace
