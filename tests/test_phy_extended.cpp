// Tests for the PHY extensions: Rician fading, spatially correlated
// shadowing, and the noise floor in the capture rule.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "mac/radio.hpp"
#include "phy/channel.hpp"
#include "phy/fading.hpp"
#include "phy/shadowing.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace firefly;
using phy::CorrelatedShadowing;
using phy::RicianFading;
using util::Rng;

double empirical_mean_gain(const phy::FadingModel& model, int n, std::uint64_t seed) {
  Rng rng(seed);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += std::pow(10.0, -model.sample(rng).value / 10.0);
  return sum / n;
}

double empirical_gain_variance(const phy::FadingModel& model, int n, std::uint64_t seed) {
  Rng rng(seed);
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = std::pow(10.0, -model.sample(rng).value / 10.0);
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  return sum2 / n - mean * mean;
}

class RicianKTest : public ::testing::TestWithParam<double> {};

TEST_P(RicianKTest, UnitMeanPower) {
  RicianFading model(GetParam());
  EXPECT_NEAR(empirical_mean_gain(model, 150000, 11), 1.0, 0.02) << "K=" << GetParam();
}

TEST_P(RicianKTest, VarianceMatchesTheory) {
  // Rician power gain variance = (2K+1)/(K+1)².
  const double k = GetParam();
  RicianFading model(k);
  const double expected = (2.0 * k + 1.0) / ((k + 1.0) * (k + 1.0));
  EXPECT_NEAR(empirical_gain_variance(model, 150000, 13), expected, 0.08 * expected + 0.01)
      << "K=" << k;
}

INSTANTIATE_TEST_SUITE_P(SweepK, RicianKTest, ::testing::Values(0.0, 1.0, 4.0, 10.0));

TEST(Rician, KZeroMatchesRayleighStatistics) {
  RicianFading rician(0.0);
  phy::RayleighFading rayleigh;
  EXPECT_NEAR(empirical_gain_variance(rician, 200000, 17),
              empirical_gain_variance(rayleigh, 200000, 17), 0.05);
}

TEST(Rician, LargeKApproachesNoFading) {
  RicianFading model(100.0);
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NEAR(model.sample(rng).value, 0.0, 3.0);  // within ±3 dB
  }
}

std::vector<geo::Vec2> line_positions() {
  std::vector<geo::Vec2> p;
  for (int i = 0; i < 40; ++i) p.push_back({static_cast<double>(i) * 5.0, 50.0});
  return p;
}

TEST(CorrelatedShadowing, SymmetricAndMemoised) {
  CorrelatedShadowing model(10.0, 20.0, line_positions(), Rng(1));
  const double ab = model.sample(3, 9).value;
  EXPECT_DOUBLE_EQ(model.sample(9, 3).value, ab);
  EXPECT_DOUBLE_EQ(model.sample(3, 9).value, ab);
}

TEST(CorrelatedShadowing, UnitFieldVariance) {
  CorrelatedShadowing model(10.0, 20.0, {}, Rng(2));
  util::Rng probe(3);
  double sum = 0.0, sum2 = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double v = model.field_at({probe.uniform(0.0, 2000.0), probe.uniform(0.0, 2000.0)});
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n - mean * mean, 1.0, 0.06);
}

TEST(CorrelatedShadowing, LinkVarianceIsSigmaSquared) {
  // Sample many independent *fields* at one link and check the variance.
  const auto positions = line_positions();
  double sum = 0.0, sum2 = 0.0;
  const int fields = 4000;
  for (int f = 0; f < fields; ++f) {
    CorrelatedShadowing model(10.0, 20.0, positions, Rng(100 + f));
    const double v = model.sample(0, 1).value;
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / fields;
  EXPECT_NEAR(mean, 0.0, 0.6);
  EXPECT_NEAR(sum2 / fields - mean * mean, 100.0, 10.0);
}

TEST(CorrelatedShadowing, NearbyLinksCorrelateFarLinksDoNot) {
  // Correlation across many field realisations between link (0,1) and a
  // link with a nearby midpoint vs one far away.
  const auto positions = line_positions();  // x = 0,5,10,...,195
  std::vector<double> base, near_link, far_link;
  for (int f = 0; f < 1500; ++f) {
    CorrelatedShadowing model(8.0, 25.0, positions, Rng(500 + f));
    base.push_back(model.sample(0, 1).value);       // midpoint x=2.5
    near_link.push_back(model.sample(1, 2).value);  // midpoint x=7.5
    far_link.push_back(model.sample(30, 31).value); // midpoint x=152.5
  }
  const double near_corr = util::pearson(base, near_link);
  const double far_corr = util::pearson(base, far_link);
  EXPECT_GT(near_corr, 0.5);
  EXPECT_LT(std::fabs(far_corr), 0.2);
  EXPECT_GT(near_corr, far_corr);
}

TEST(NoiseFloor, DefaultSitsBelowDetectionThreshold) {
  const phy::RadioParams params;
  EXPECT_LT(params.noise_floor.value, params.detection_threshold.value);
  EXPECT_NEAR(params.detection_threshold.value - params.noise_floor.value, 9.0, 1e-9);
}

TEST(NoiseFloor, NoiseBreaksMarginalCapture) {
  // Geometry built so the wanted signal arrives at −60 dBm and the
  // same-preamble interferer at −64 dBm: 4 dB of SIR, just above the 3 dB
  // capture margin.  With a negligible noise floor the capture succeeds;
  // raising the noise floor to the interferer's level (−64 dBm) turns the
  // denominator into −61 dBm, SINR drops to 1 dB, and the capture fails.
  auto run_with_noise = [](double noise_dbm) {
    sim::Simulator sim;
    phy::RadioParams params;
    params.noise_floor = util::Dbm{noise_dbm};
    auto channel = std::make_unique<phy::Channel>(
        params, std::make_unique<phy::PaperDualSlope>(),
        std::make_unique<phy::NoShadowing>(), std::make_unique<phy::NoFading>(),
        Rng(1));
    mac::RadioMedium radio(&sim, channel.get(), 3.0);
    int heard = 0;
    // PL(d)=83 dB -> d=10^(43/40)≈11.885 m: rx = 23−83 = −60 dBm.
    radio.add_device(0, {10.0 + 11.885, 0.0});
    // PL(d)=87 dB -> d≈14.962 m on the other side: rx = −64 dBm.
    radio.add_device(1, {10.0 - 14.962, 0.0});
    radio.set_delivery_sink([&](const mac::RxBatch& batch) {
      for (std::size_t k = 0; k < batch.count; ++k) {
        if (batch.records[k].rx_index == 2 && batch.records[k].sender == 0) ++heard;
      }
    });
    radio.add_device(2, {10.0, 0.0});
    sim.schedule_at(sim::SimTime::zero(), [&] {
      radio.broadcast(0, {mac::RachCodec::kRach1, 9}, mac::PsType::kSyncPulse, 0);
      radio.broadcast(1, {mac::RachCodec::kRach1, 9}, mac::PsType::kSyncPulse, 0);
    });
    sim.run();
    return heard;
  };
  EXPECT_EQ(run_with_noise(-200.0), 1);  // quiet: capture succeeds
  EXPECT_EQ(run_with_noise(-64.0), 0);   // noisy: capture fails
}

}  // namespace
