// Tests for the leveled logger (src/util/log.hpp).
#include "util/log.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace firefly::util;

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kWarn); }
};

TEST_F(LogTest, LevelRoundTrip) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LogTest, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
  EXPECT_STREQ(log_level_name(LogLevel::kOff), "OFF");
}

TEST_F(LogTest, MacroCompilesAndFiltersBelowThreshold) {
  set_log_level(LogLevel::kError);
  // Should not crash and should not evaluate when filtered; we can't easily
  // capture clog here, so just exercise both paths.
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return "x";
  };
  FIREFLY_LOG(kDebug) << count();  // filtered: count() must not run
  EXPECT_EQ(evaluations, 0);
  FIREFLY_LOG(kError) << count();  // emitted: count() runs
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, EmitRespectsThreshold) {
  set_log_level(LogLevel::kOff);
  log_emit(LogLevel::kError, "should be dropped");  // no crash, no output
  SUCCEED();
}

}  // namespace
