// Tests for the Monte-Carlo thread pool (src/util/thread_pool.hpp).
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace {

using firefly::util::ThreadPool;

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(4);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("hello"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "hello");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [](std::size_t i) {
                          if (i == 5) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ManySmallTasksAggregateCorrectly) {
  ThreadPool pool(8);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([i] { return i; }));
  }
  long long sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, 499LL * 500 / 2);
}

TEST(ThreadPool, ZeroSizePicksHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1U);
}

TEST(ThreadPool, DrainOnDestructionCompletesQueuedWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(done.load(), 32);
}

}  // namespace
