// The bounded-memory gate for service-mode soaks: a million-slot churn soak
// must reach a steady state where neither the process heap nor the scheduler
// arena grows.  The test-global operator new/delete below count net
// outstanding bytes (a 16-byte size header per allocation keeps the
// accounting exact under ASan, which intercepts the underlying malloc), the
// soak warms up for 400k slots, and the remaining 600k slots must finish
// with net heap growth of exactly zero and an unchanged arena high-water
// mark.  Everything is seeded, so the assertion is deterministic, not a
// statistical bound.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/scenario.hpp"
#include "core/service_mode.hpp"
#include "proto/st.hpp"
#include "sim/soak.hpp"

namespace {
std::atomic<long long> g_outstanding_bytes{0};
constexpr std::size_t kHeader = 16;  // keeps malloc's 16-byte alignment
}  // namespace

void* operator new(std::size_t size) {
  void* raw = std::malloc(size + kHeader);
  if (raw == nullptr) throw std::bad_alloc();
  *static_cast<std::size_t*>(raw) = size;
  g_outstanding_bytes.fetch_add(static_cast<long long>(size),
                                std::memory_order_relaxed);
  return static_cast<char*>(raw) + kHeader;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept {
  if (p == nullptr) return;
  void* raw = static_cast<char*>(p) - kHeader;
  g_outstanding_bytes.fetch_sub(static_cast<long long>(*static_cast<std::size_t*>(raw)),
                                std::memory_order_relaxed);
  std::free(raw);
}

void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace {

using namespace firefly;

class ServiceSt : public proto::StEngine {
 public:
  using proto::StEngine::StEngine;
  using proto::StEngine::run_service;
};

TEST(SoakMemory, MillionSlotChurnSoakHasZeroSteadyStateHeapGrowth) {
  core::ScenarioConfig config;
  config.n = 32;
  config.seed = 17;
  // Pin the production SoA device core explicitly (it is also the default):
  // the DeviceHot region is carved from one arena at engine construction and
  // crash/recover cold-boots rewrite it in place, so the zero-growth
  // assertion below covers the flat hot arrays too, not just the struct
  // path this test predates.
  config.protocol.device_core = core::DeviceCore::kSoa;
  // Churn plus the allocation-free channel faults.  (Deep fades are excluded
  // on purpose: the active-fade bookkeeping uses a node-based container, so
  // a fade soak's steady state is bounded but not allocation-free.)
  config.protocol.faults.churn_rate_per_min = 240.0;  // 4 crashes/sec
  config.protocol.faults.mean_downtime_ms = 1'500.0;
  config.protocol.faults.drift_max_ppm = 40.0;
  config.protocol.faults.drop_probability = 0.02;

  core::ServiceConfig warmup;
  warmup.duration_slots = 400'000;
  warmup.window_slots = 1'000;
  warmup.snapshot_every_slots = 0;  // snapshots allocate by design

  const std::vector<geo::Vec2> positions = core::deploy(config);
  ServiceSt engine(positions, config.protocol, config.radio, config.seed);

  // Both heap readings happen with no ServiceReport alive: the report's
  // RunMetrics owns sample vectors, and holding one report at the first
  // reading but two at the second would count report storage as "growth".
  std::uint64_t warm_crashes = 0;
  std::uint64_t arena_hwm_after_warmup = 0;
  std::uint64_t arena_capacity_after_warmup = 0;
  {
    const core::ServiceReport warm = engine.run_service(warmup);
    ASSERT_TRUE(warm.ok()) << warm.error;
    ASSERT_GT(warm.metrics.crashes, 0u) << "warm-up saw no churn";
    warm_crashes = warm.metrics.crashes;
    arena_hwm_after_warmup = warm.arena_high_water;
    arena_capacity_after_warmup = warm.arena_capacity;
  }
  const long long heap_after_warmup =
      g_outstanding_bytes.load(std::memory_order_relaxed);

  core::ServiceConfig full = warmup;
  full.duration_slots = 1'000'000;  // run_service extends the same run
  std::uint64_t end_arena_hwm = 0;
  std::uint64_t end_arena_capacity = 0;
  {
    const core::ServiceReport report = engine.run_service(full);
    ASSERT_TRUE(report.ok()) << report.error;
    EXPECT_EQ(report.windows, 600u);
    EXPECT_GT(report.metrics.crashes, warm_crashes) << "tail saw no churn";
    end_arena_hwm = report.arena_high_water;
    end_arena_capacity = report.arena_capacity;
  }
  const long long heap_at_end = g_outstanding_bytes.load(std::memory_order_relaxed);
  EXPECT_EQ(heap_at_end - heap_after_warmup, 0)
      << "steady-state soak grew the heap by " << (heap_at_end - heap_after_warmup)
      << " bytes over 600k slots";
  EXPECT_EQ(end_arena_hwm, arena_hwm_after_warmup)
      << "scheduler arena peak moved after warm-up";
  EXPECT_EQ(end_arena_capacity, arena_capacity_after_warmup)
      << "scheduler arena grew a new chunk after warm-up";
}

TEST(SoakMemory, RecorderRingStaysAllocationFreeWhenSaturated) {
  sim::SoakRecorder recorder(8);  // deliberately tiny: forces overwrites
  sim::SoakWindow w;
  const long long before = g_outstanding_bytes.load(std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    w.index = i;
    recorder.push(w);
  }
  const long long after = g_outstanding_bytes.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << "saturated ring allocated";
  EXPECT_EQ(recorder.dropped(), 10'000u - 8u);
}

}  // namespace
