// Tests for the ST protocol's fault hardening: bounded connect retries with
// Change_head after the cap, merge-announce dedup by (winner, loser), head
// lease expiry with remnant re-labelling, and end-to-end re-convergence
// under churn.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/scenario.hpp"
#include "proto/st.hpp"
#include "core/wire.hpp"

namespace {

using namespace firefly;

class SteppableSt : public proto::StEngine {
 public:
  using proto::StEngine::StEngine;
  using proto::StEngine::collect_metrics;
  using proto::StEngine::crash_device;
  using proto::StEngine::start_run;
  sim::Simulator& sim() { return sim_; }
  mac::RadioMedium& radio() { return radio_; }
  core::Device& device(std::uint32_t id) { return devices_[id]; }
  std::int64_t slot() const { return current_slot(); }
  /// Inject one synthetic decoded PS as a batch of one.
  void inject(const mac::RxRecord& record) {
    deliver_batched(mac::RxBatch{&record, 1});
  }
};

/// Direct-injection tests read `Device` struct fields between steps, so they
/// pin the reference struct core (the SoA core keeps hot fields in flat
/// arrays until devices() syncs them back).
core::ProtocolParams struct_core_params() {
  core::ProtocolParams params;
  params.device_core = core::DeviceCore::kStruct;
  return params;
}

mac::RxRecord make_announce(std::uint32_t sender, std::uint32_t rx_index,
                            std::uint16_t winner, std::uint16_t loser,
                            std::uint16_t size) {
  return mac::RxRecord{sender,
                       rx_index,
                       mac::Preamble{mac::RachCodec::kRach2, 3},
                       mac::PsType::kMergeAnnounce,
                       core::pack(core::Fields{winner, loser, 10, size}),
                       util::Dbm{-60.0},
                       sim::SimTime::zero()};
}

TEST(StFaults, AnnounceDedupByWinnerLoserPair) {
  const std::vector<geo::Vec2> positions{{0.0, 0.0}, {15.0, 0.0}};
  SteppableSt engine(positions, struct_core_params(), phy::RadioParams{}, 3);

  // Device 0 starts as fragment 0; an announce (winner=7, loser=0) makes it
  // adopt the winner and relay exactly once.
  const std::uint64_t rach2_before = engine.radio().counters().rach2_tx;
  engine.inject(make_announce(1, 0, 7, 0, 2));
  EXPECT_EQ(engine.device(0).fragment, 7U);
  EXPECT_FALSE(engine.device(0).is_head);
  EXPECT_EQ(engine.radio().counters().rach2_tx, rach2_before + 1) << "one relay";

  // The identical (winner, loser) announce again: deduplicated, no relay.
  engine.inject(make_announce(1, 0, 7, 0, 3));
  EXPECT_EQ(engine.radio().counters().rach2_tx, rach2_before + 1);

  // A *different* merge involving the new fragment still propagates.
  engine.inject(make_announce(1, 0, 9, 7, 4));
  EXPECT_EQ(engine.device(0).fragment, 9U);
  EXPECT_EQ(engine.radio().counters().rach2_tx, rach2_before + 2);
}

TEST(StFaults, ConnectRetriesAreCappedAndHeadshipMovesOn) {
  // Three devices close enough to hear each other; 0 and 1 merge, then all
  // fragment-control traffic to/from device 2 is vetoed.  The {0, 1} head
  // must not hammer 2 forever: after connect_max_retries timed-out attempts
  // it passes headship to its tree neighbour (Change_head), which then runs
  // into the same cap, and so on — observable as head-token traffic after
  // the veto instant.
  const std::vector<geo::Vec2> positions{{0.0, 0.0}, {12.0, 0.0}, {30.0, 0.0}};
  core::ProtocolParams params = struct_core_params();
  params.max_periods = 100;
  params.stop_on_convergence = false;
  SteppableSt engine(positions, params, phy::RadioParams{}, 17);
  core::TraceSink sink;
  engine.set_trace(&sink);

  engine.radio().set_fault_hook(
      [](std::uint32_t sender, std::uint32_t receiver, mac::PsType type,
         util::Dbm power) -> std::optional<util::Dbm> {
        const bool fragment_control = type == mac::PsType::kConnectRequest ||
                                      type == mac::PsType::kConnectAccept ||
                                      type == mac::PsType::kMergeAnnounce;
        if (fragment_control && (sender == 2 || receiver == 2)) return std::nullopt;
        return power;
      });

  engine.start_run();
  engine.sim().run_until(sim::SimTime::milliseconds(600));
  ASSERT_EQ(engine.device(0).fragment, engine.device(1).fragment)
      << "0 and 1 must have merged despite the quarantined third device";

  const std::size_t head_changes_before = sink.count(core::TraceKind::kHeadChange);
  engine.sim().run_until(sim::SimTime::milliseconds(10'000));

  // Headship bounced at least once after the unreachable-peer cap.
  EXPECT_GT(sink.count(core::TraceKind::kHeadChange), head_changes_before);
  // The {0, 1} fragment survived the unreachable neighbour intact.
  EXPECT_EQ(engine.device(0).fragment, engine.device(1).fragment);
  EXPECT_NE(engine.device(0).fragment, engine.device(2).fragment);
  // Retries are bounded: with backoff the probe rate decays geometrically,
  // so device state shows a bounded attempt counter, not hundreds.
  EXPECT_LE(engine.device(0).connect_attempts, 16U);
  EXPECT_LE(engine.device(1).connect_attempts, 16U);
}

TEST(StFaults, HeadCrashTriggersLeaseReclaimAndReMerge) {
  // Four devices in one cluster merge into a single fragment; then the
  // current head crashes.  The survivors' head lease expires, one of them
  // re-labels the remnant (kRelabel) and the fragment re-forms with a live
  // head — re-converging to one fragment spanning the survivors.
  const std::vector<geo::Vec2> positions{
      {0.0, 0.0}, {14.0, 0.0}, {0.0, 14.0}, {14.0, 14.0}};
  core::ProtocolParams params = struct_core_params();
  params.max_periods = 250;
  params.stop_on_convergence = false;
  SteppableSt engine(positions, params, phy::RadioParams{}, 29);
  core::TraceSink sink;
  engine.set_trace(&sink);

  engine.start_run();
  engine.sim().run_until(sim::SimTime::milliseconds(3'000));
  std::uint32_t head = 0;
  int heads = 0;
  for (std::uint32_t id = 0; id < 4; ++id) {
    if (engine.device(id).is_head) {
      head = id;
      ++heads;
    }
    EXPECT_EQ(engine.device(id).fragment, engine.device(0).fragment);
  }
  ASSERT_EQ(heads, 1) << "one spanning fragment with exactly one head";

  engine.crash_device(head);
  engine.sim().run_until(sim::SimTime::milliseconds(25'000));

  EXPECT_GE(sink.count(core::TraceKind::kRelabel), 1U)
      << "lease expiry must re-label the orphaned remnant";
  for (std::uint32_t id = 1; id < 4; ++id) {
    if (id == head) continue;
    EXPECT_EQ(engine.device(id).fragment, engine.device(head == 0 ? 1 : 0).fragment)
        << "survivors re-merge into one fragment";
  }
  // A complete fragment rotates headship perpetually, so at any single
  // instant the token may be in flight (zero heads); scan a short window.
  bool saw_live_head = false;
  for (int step = 0; step < 300 && !saw_live_head; ++step) {
    engine.sim().run_until(sim::SimTime::milliseconds(25'001 + step));
    for (std::uint32_t id = 0; id < 4; ++id) {
      if (id != head && engine.device(id).is_head) saw_live_head = true;
    }
  }
  EXPECT_TRUE(saw_live_head) << "the remnant elected a live head";

  const core::RunMetrics m = engine.collect_metrics();
  EXPECT_EQ(m.crashes, 1U);
  EXPECT_EQ(m.alive_at_end, 3U);
  EXPECT_EQ(m.final_fragments, 1U) << "crashed device excluded from the count";
  EXPECT_TRUE(m.in_sync_at_end);
}

TEST(StFaults, ReconvergesAfterChurnAtEveryRate) {
  // End-to-end resilience: random churn with a quiet tail; ST must have
  // (re)converged by the end at every swept churn rate.
  for (const double rate : {5.0, 15.0, 30.0}) {
    core::ScenarioConfig config;
    config.n = 20;
    config.seed = 4;
    config.area_policy = core::AreaPolicy::kFixed;
    config.protocol.max_periods = 300;
    config.protocol.faults.churn_rate_per_min = rate;
    config.protocol.faults.mean_downtime_ms = 1'500.0;
    config.protocol.faults.churn_stop_ms = 20'000.0;
    const core::RunMetrics m = core::run_trial(core::Protocol::kSt, config);
    EXPECT_TRUE(m.converged || m.partitioned) << "churn rate " << rate;
    if (!m.partitioned) {
      EXPECT_TRUE(m.in_sync_at_end) << "churn rate " << rate;
      EXPECT_EQ(m.final_fragments, 1U) << "churn rate " << rate;
      EXPECT_EQ(m.alive_at_end, 20U) << "churn stopped: everyone recovered";
    }
    EXPECT_GT(m.crashes, 0U) << "churn rate " << rate;
    EXPECT_EQ(m.crashes, m.recoveries);
  }
}

TEST(StFaults, FstSurvivesChurnToo) {
  core::ScenarioConfig config;
  config.n = 20;
  config.seed = 4;
  config.area_policy = core::AreaPolicy::kFixed;
  config.protocol.max_periods = 300;
  config.protocol.faults.churn_rate_per_min = 15.0;
  config.protocol.faults.mean_downtime_ms = 1'500.0;
  config.protocol.faults.churn_stop_ms = 20'000.0;
  const core::RunMetrics m = core::run_trial(core::Protocol::kFst, config);
  EXPECT_TRUE(m.converged || m.partitioned);
  EXPECT_GT(m.crashes, 0U);
  if (!m.partitioned) {
    EXPECT_TRUE(m.in_sync_at_end);
  }
}

TEST(StFaults, DriftedClocksStayAligned) {
  // Oscillator drift large enough to skew whole slots within the run: the
  // periodic flood re-compensation must hold the population inside the
  // tolerance (uptime stays high after first sync).
  core::ScenarioConfig config;
  config.n = 20;
  config.seed = 6;
  config.area_policy = core::AreaPolicy::kFixed;
  config.protocol.max_periods = 300;
  config.protocol.faults.drift_max_ppm = 400.0;
  const core::RunMetrics m = core::run_trial(core::Protocol::kSt, config);
  ASSERT_TRUE(m.converged);
  EXPECT_GT(m.sync_uptime, 0.9);
  EXPECT_TRUE(m.in_sync_at_end);
}

}  // namespace
