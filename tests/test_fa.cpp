// Tests for the firefly optimisation algorithm (src/fa/firefly.hpp) and the
// paper's O(n²) vs O(n log n) complexity claim.
#include "fa/firefly.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fa/objective.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace firefly::fa;
using firefly::util::Rng;

FaConfig base_config(Strategy strategy) {
  FaConfig config;
  config.population = 30;
  config.dimensions = 2;
  config.generations = 80;
  config.strategy = strategy;
  return config;
}

class StrategyTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(StrategyTest, FindsSphereOptimum) {
  FireflyOptimizer opt(base_config(GetParam()), sphere(), Rng(1));
  const FaResult result = opt.run();
  EXPECT_GT(result.best_value, -0.05);  // optimum is 0 at the origin
  ASSERT_EQ(result.best_position.size(), 2U);
  for (const double x : result.best_position) EXPECT_NEAR(x, 0.0, 0.3);
}

TEST_P(StrategyTest, ImprovesMonotonicallyOnAverage) {
  FireflyOptimizer opt(base_config(GetParam()), sphere(), Rng(2));
  const FaResult result = opt.run();
  ASSERT_GE(result.best_by_generation.size(), 10U);
  const double early = result.best_by_generation[4];
  const double late = result.best_by_generation.back();
  EXPECT_GE(late, early);
}

TEST_P(StrategyTest, DeterministicGivenSeed) {
  const FaResult a = FireflyOptimizer(base_config(GetParam()), rastrigin(), Rng(3)).run();
  const FaResult b = FireflyOptimizer(base_config(GetParam()), rastrigin(), Rng(3)).run();
  EXPECT_EQ(a.best_value, b.best_value);
  EXPECT_EQ(a.comparisons, b.comparisons);
  EXPECT_EQ(a.best_position, b.best_position);
}

TEST_P(StrategyTest, RespectsBounds) {
  FaConfig config = base_config(GetParam());
  config.lower_bound = -1.0;
  config.upper_bound = 2.0;
  FireflyOptimizer opt(config, rosenbrock(), Rng(4));
  const FaResult result = opt.run();
  for (const double x : result.best_position) {
    EXPECT_GE(x, -1.0);
    EXPECT_LE(x, 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(BothStrategies, StrategyTest,
                         ::testing::Values(Strategy::kClassic, Strategy::kRankOrdered));

TEST(Complexity, ClassicComparisonsAreQuadratic) {
  // §V: the basic firefly algorithm is inherently O(n²) because each
  // firefly evaluates eq. (13) against every other.
  std::vector<double> ns, comps;
  for (const std::size_t n : {32UL, 64UL, 128UL, 256UL}) {
    FaConfig config;
    config.population = n;
    config.generations = 4;
    config.strategy = Strategy::kClassic;
    const FaResult r = FireflyOptimizer(config, sphere(), Rng(5)).run();
    ns.push_back(static_cast<double>(n));
    comps.push_back(static_cast<double>(r.comparisons));
  }
  const double slope = firefly::util::fit_loglog_slope(ns, comps);
  EXPECT_NEAR(slope, 2.0, 0.1);
}

TEST(Complexity, RankOrderedComparisonsAreNLogN) {
  std::vector<double> ns, comps;
  for (const std::size_t n : {32UL, 64UL, 128UL, 256UL, 512UL}) {
    FaConfig config;
    config.population = n;
    config.generations = 4;
    config.strategy = Strategy::kRankOrdered;
    const FaResult r = FireflyOptimizer(config, sphere(), Rng(6)).run();
    ns.push_back(static_cast<double>(n));
    comps.push_back(static_cast<double>(r.comparisons));
  }
  const double slope = firefly::util::fit_loglog_slope(ns, comps);
  EXPECT_GT(slope, 0.9);
  EXPECT_LT(slope, 1.45);  // n·log n, clearly sub-quadratic
}

TEST(Complexity, RankOrderedDoesFewerComparisonsAtScale) {
  FaConfig classic;
  classic.population = 256;
  classic.generations = 3;
  classic.strategy = Strategy::kClassic;
  FaConfig ordered = classic;
  ordered.strategy = Strategy::kRankOrdered;
  const auto c = FireflyOptimizer(classic, sphere(), Rng(7)).run();
  const auto o = FireflyOptimizer(ordered, sphere(), Rng(7)).run();
  EXPECT_LT(o.comparisons, c.comparisons / 4);
}

TEST(Complexity, RankOrderedQualityComparableOnSphere) {
  // The improvement must not wreck optimisation quality.
  FaConfig classic = base_config(Strategy::kClassic);
  FaConfig ordered = base_config(Strategy::kRankOrdered);
  const auto c = FireflyOptimizer(classic, sphere(), Rng(8)).run();
  const auto o = FireflyOptimizer(ordered, sphere(), Rng(8)).run();
  EXPECT_NEAR(o.best_value, c.best_value, 0.5);
}

TEST(Objectives, SphereAndRastriginOptimaAtOrigin) {
  const auto s = sphere();
  const auto r = rastrigin();
  const std::vector<double> origin{0.0, 0.0, 0.0};
  const std::vector<double> off{1.0, -2.0, 0.5};
  EXPECT_DOUBLE_EQ(s(origin), 0.0);
  EXPECT_NEAR(r(origin), 0.0, 1e-12);
  EXPECT_LT(s(off), 0.0);
  EXPECT_LT(r(off), 0.0);
}

TEST(Objectives, RosenbrockOptimumAtOnes) {
  const auto f = rosenbrock();
  const std::vector<double> ones{1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(f(ones), 0.0);
  const std::vector<double> off{0.0, 0.0, 0.0};
  EXPECT_LT(f(off), 0.0);
}

TEST(Objectives, BeaconFieldPeaksAtBeacons) {
  const auto f = beacon_field({{10.0, 10.0}, {50.0, 50.0}});
  const std::vector<double> at_beacon{10.0, 10.0};
  const std::vector<double> between{30.0, 30.0};
  EXPECT_DOUBLE_EQ(f(at_beacon), 1.0);
  EXPECT_LT(f(between), 1.0);
  EXPECT_GT(f(between), 0.0);
}

TEST(Objectives, BeaconFieldDegenerateInputs) {
  const auto empty = beacon_field({});
  const std::vector<double> x{1.0, 2.0};
  EXPECT_DOUBLE_EQ(empty(x), 0.0);
  const auto f = beacon_field({{0.0, 0.0}});
  const std::vector<double> scalar{1.0};
  EXPECT_DOUBLE_EQ(f(scalar), 0.0);  // needs >= 2 dims
}

TEST(FaResult, EvaluationAccounting) {
  FaConfig config = base_config(Strategy::kClassic);
  const FaResult r = FireflyOptimizer(config, sphere(), Rng(9)).run();
  // One initial sweep plus one per generation.
  EXPECT_EQ(r.evaluations, config.population * (config.generations + 1));
  EXPECT_EQ(r.best_by_generation.size(), config.generations);
}

}  // namespace
