// Tests for the fault-injection subsystem: FaultInjector schedule
// expansion (src/fault/), the radio's down/fault-hook plumbing and the
// engine's crash/recover lifecycle.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/scenario.hpp"
#include "proto/st.hpp"
#include "fault/fault_injector.hpp"
#include "mac/radio.hpp"

namespace {

using namespace firefly;
using fault::ChurnEvent;
using fault::FadeEpisode;
using fault::FaultInjector;
using fault::FaultPlan;

FaultPlan busy_plan() {
  FaultPlan plan;
  plan.churn_rate_per_min = 30.0;
  plan.mean_downtime_ms = 1500.0;
  plan.drift_max_ppm = 200.0;
  plan.drop_probability = 0.1;
  plan.fade_rate_per_min = 60.0;
  plan.fade_mean_duration_ms = 400.0;
  return plan;
}

TEST(FaultPlan, EnabledFlags) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.drift_max_ppm = 10.0;
  EXPECT_TRUE(plan.enabled());
  EXPECT_FALSE(plan.churn_enabled());
  EXPECT_FALSE(plan.channel_enabled());
  plan = {};
  plan.scheduled.push_back(ChurnEvent{100, 0, true});
  EXPECT_TRUE(plan.churn_enabled());
  plan = {};
  plan.drop_probability = 0.01;
  EXPECT_TRUE(plan.channel_enabled());
}

TEST(FaultInjector, SchedulesAreDeterministic) {
  const FaultInjector a(busy_plan(), 20, 60'000, 42);
  const FaultInjector b(busy_plan(), 20, 60'000, 42);
  EXPECT_EQ(a.churn_schedule(), b.churn_schedule());
  EXPECT_EQ(a.fade_schedule(), b.fade_schedule());
  for (std::uint32_t d = 0; d < 20; ++d) {
    EXPECT_EQ(a.drift_ppm(d), b.drift_ppm(d));
  }
  // A different master seed produces a different schedule.
  const FaultInjector c(busy_plan(), 20, 60'000, 43);
  EXPECT_NE(a.churn_schedule(), c.churn_schedule());
}

TEST(FaultInjector, NeverCrashesADownDevice) {
  const FaultInjector inj(busy_plan(), 10, 120'000, 7);
  ASSERT_FALSE(inj.churn_schedule().empty());
  std::vector<bool> down(10, false);
  std::int64_t last_slot = 0;
  for (const ChurnEvent& e : inj.churn_schedule()) {
    EXPECT_GE(e.slot, last_slot) << "schedule must be sorted";
    last_slot = e.slot;
    EXPECT_LT(e.slot, 120'000);
    EXPECT_LT(e.device, 10U);
    if (e.crash) {
      EXPECT_FALSE(down[e.device]) << "crash of an already-down device";
      down[e.device] = true;
    } else {
      EXPECT_TRUE(down[e.device]) << "recovery of a device that is up";
      down[e.device] = false;
    }
  }
}

TEST(FaultInjector, ChurnStopLeavesAQuietTail) {
  FaultPlan plan;
  plan.churn_rate_per_min = 60.0;
  plan.mean_downtime_ms = 1000.0;
  plan.churn_stop_ms = 30'000.0;
  const FaultInjector inj(plan, 10, 120'000, 11);
  ASSERT_FALSE(inj.churn_schedule().empty());
  for (const ChurnEvent& e : inj.churn_schedule()) {
    if (e.crash) EXPECT_LT(e.slot, 30'000);
  }
}

TEST(FaultInjector, ScheduledChurnReplayedVerbatimAndHorizonFiltered) {
  FaultPlan plan;
  plan.scheduled = {ChurnEvent{500, 2, true}, ChurnEvent{2'500, 2, false},
                    ChurnEvent{99'999, 1, true}};
  const FaultInjector inj(plan, 5, 10'000, 3);
  ASSERT_EQ(inj.churn_schedule().size(), 2U);  // beyond-horizon event dropped
  EXPECT_EQ(inj.churn_schedule()[0], (ChurnEvent{500, 2, true}));
  EXPECT_EQ(inj.churn_schedule()[1], (ChurnEvent{2'500, 2, false}));
}

TEST(FaultInjector, DriftWithinBoundsAndZeroWhenDisabled) {
  const FaultInjector inj(busy_plan(), 50, 10'000, 9);
  bool any_nonzero = false;
  for (std::uint32_t d = 0; d < 50; ++d) {
    EXPECT_LE(std::abs(inj.drift_ppm(d)), 200.0);
    if (inj.drift_ppm(d) != 0.0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
  const FaultInjector off(FaultPlan{}, 50, 10'000, 9);
  for (std::uint32_t d = 0; d < 50; ++d) EXPECT_EQ(off.drift_ppm(d), 0.0);
}

TEST(FaultInjector, DropStreamMatchesProbabilityAndReplays) {
  FaultPlan plan;
  plan.drop_probability = 0.3;
  FaultInjector a(plan, 2, 1'000, 77);
  FaultInjector b(plan, 2, 1'000, 77);
  int drops = 0;
  for (int i = 0; i < 10'000; ++i) {
    const bool d = a.drop_reception();
    EXPECT_EQ(d, b.drop_reception()) << "drop stream must replay";
    if (d) ++drops;
  }
  EXPECT_NEAR(drops / 10'000.0, 0.3, 0.03);
  FaultInjector off(FaultPlan{}, 2, 1'000, 77);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(off.drop_reception());
}

TEST(FaultInjector, OverlappingFadesKeepTheLinkFaded) {
  FaultPlan plan;
  plan.fade_rate_per_min = 1.0;  // enables the channel path
  plan.fade_depth_db = 40.0;
  FaultInjector inj(plan, 4, 10'000, 5);
  const FadeEpisode first{100, 500, 1, 2};
  const FadeEpisode second{200, 800, 1, 2};
  EXPECT_EQ(inj.link_attenuation_db(1, 2), 0.0);
  inj.fade_started(first);
  inj.fade_started(second);
  EXPECT_EQ(inj.link_attenuation_db(1, 2), 40.0);
  EXPECT_EQ(inj.link_attenuation_db(2, 1), 40.0);  // symmetric
  EXPECT_EQ(inj.link_attenuation_db(0, 3), 0.0);   // other links clear
  inj.fade_ended(first);
  EXPECT_EQ(inj.link_attenuation_db(1, 2), 40.0) << "second episode still open";
  inj.fade_ended(second);
  EXPECT_EQ(inj.link_attenuation_db(1, 2), 0.0);
}

TEST(RadioFaults, DownDeviceNeitherSendsNorReceives) {
  sim::Simulator sim;
  auto channel = phy::make_paper_channel(1);
  mac::RadioMedium radio(&sim, channel.get());
  int heard_by_1 = 0;
  int heard_by_2 = 0;
  radio.add_device(0, {0.0, 0.0});
  radio.add_device(1, {10.0, 0.0});
  radio.add_device(2, {10.0, 1.0});
  radio.set_delivery_sink([&](const mac::RxBatch& batch) {
    for (std::size_t k = 0; k < batch.count; ++k) {
      if (batch.records[k].rx_index == 1) ++heard_by_1;
      if (batch.records[k].rx_index == 2) ++heard_by_2;
    }
  });
  radio.set_down(2, true);
  EXPECT_TRUE(radio.is_down(2));
  sim.schedule_at(sim::SimTime::zero(), [&] {
    radio.broadcast(0, {mac::RachCodec::kRach1, 0}, mac::PsType::kSyncPulse, 0);
    radio.broadcast(2, {mac::RachCodec::kRach1, 1}, mac::PsType::kSyncPulse, 0);
  });
  sim.run();
  EXPECT_EQ(heard_by_1, 1) << "only device 0's broadcast goes out";
  EXPECT_EQ(heard_by_2, 0);
  EXPECT_EQ(radio.counters().rach1_tx, 1U) << "a down sender is not metered";
}

TEST(RadioFaults, HookVetoIsCountedAndAttenuationFlowsThrough) {
  sim::Simulator sim;
  auto channel = phy::make_paper_channel(1);
  mac::RadioMedium radio(&sim, channel.get());
  int heard = 0;
  radio.add_device(0, {0.0, 0.0});
  radio.add_device(1, {10.0, 0.0});
  radio.set_delivery_sink([&](const mac::RxBatch& batch) {
    for (std::size_t k = 0; k < batch.count; ++k) {
      if (batch.records[k].rx_index == 1) ++heard;
    }
  });
  bool veto = true;
  radio.set_fault_hook([&](std::uint32_t, std::uint32_t, mac::PsType, util::Dbm power)
                           -> std::optional<util::Dbm> {
    if (veto) return std::nullopt;
    return power;  // pass through unchanged
  });
  sim.schedule_at(sim::SimTime::zero(), [&] {
    radio.broadcast(0, {mac::RachCodec::kRach1, 0}, mac::PsType::kSyncPulse, 0);
  });
  sim.run_until(sim::SimTime::milliseconds(2));
  EXPECT_EQ(heard, 0);
  EXPECT_EQ(radio.counters().fault_drops, 1U);
  veto = false;
  sim.schedule_at(sim.now(), [&] {
    radio.broadcast(0, {mac::RachCodec::kRach1, 0}, mac::PsType::kSyncPulse, 0);
  });
  sim.run();
  EXPECT_EQ(heard, 1);
  EXPECT_EQ(radio.counters().fault_drops, 1U);
}

// Exposes the protected stepping interface for lifecycle tests.
class SteppableSt : public proto::StEngine {
 public:
  using proto::StEngine::StEngine;
  using proto::StEngine::collect_metrics;
  using proto::StEngine::crash_device;
  using proto::StEngine::recover_device;
  using proto::StEngine::start_run;
  sim::Simulator& sim() { return sim_; }
  const core::Device& device(std::uint32_t id) const { return devices_[id]; }
};

TEST(EngineFaults, CrashParksAndRecoverColdBoots) {
  const std::vector<geo::Vec2> positions{{0.0, 0.0}, {15.0, 0.0}, {0.0, 15.0}};
  core::ProtocolParams params;
  // This test reads Device struct fields between steps; the reference
  // struct core keeps them live (the SoA core syncs only on devices()).
  params.device_core = core::DeviceCore::kStruct;
  params.max_periods = 100;
  params.stop_on_convergence = false;
  SteppableSt engine(positions, params, phy::RadioParams{}, 21);
  engine.start_run();
  engine.sim().run_until(sim::SimTime::milliseconds(1'000));
  ASSERT_FALSE(engine.device(1).neighbors.empty());

  engine.crash_device(1);
  EXPECT_TRUE(engine.device(1).down);
  engine.sim().run_until(sim::SimTime::milliseconds(2'000));
  const std::int64_t fire_while_down = engine.device(1).last_fire_slot;
  engine.sim().run_until(sim::SimTime::milliseconds(3'000));
  EXPECT_EQ(engine.device(1).last_fire_slot, fire_while_down)
      << "a crashed oscillator must not fire";

  engine.recover_device(1);
  EXPECT_FALSE(engine.device(1).down);
  EXPECT_TRUE(engine.device(1).neighbors.empty()) << "cold boot clears the table";
  EXPECT_TRUE(engine.device(1).is_head) << "ST restarts as a singleton head";
  EXPECT_EQ(engine.device(1).fragment_size, 1U);
  engine.sim().run_until(sim::SimTime::milliseconds(5'000));
  EXPECT_GT(engine.device(1).last_fire_slot, fire_while_down) << "oscillator restarted";
  EXPECT_FALSE(engine.device(1).neighbors.empty()) << "rediscovers the neighbourhood";

  const core::RunMetrics m = engine.collect_metrics();
  EXPECT_EQ(m.crashes, 1U);
  EXPECT_EQ(m.recoveries, 1U);
  EXPECT_EQ(m.alive_at_end, 3U);
}

TEST(EngineFaults, FaultedRunObservesThroughConvergence) {
  // With a fault plan the engine must keep running past first convergence
  // (resilience is measured on the tail), even though the config asks for
  // stop_on_convergence.
  core::ScenarioConfig config;
  config.n = 20;
  config.seed = 31;
  config.area_policy = core::AreaPolicy::kFixed;
  config.protocol.max_periods = 120;
  config.protocol.stop_on_convergence = true;
  config.protocol.faults.drop_probability = 0.02;
  const core::RunMetrics m = core::run_trial(core::Protocol::kSt, config);
  ASSERT_TRUE(m.converged);
  EXPECT_GE(m.simulated_ms, static_cast<double>(config.protocol.max_slots()));
  EXPECT_GT(m.fault_drops, 0U);
  EXPECT_GT(m.sync_uptime, 0.0);
}

TEST(EngineFaults, DeepFadesAreMeteredAndSurvived) {
  core::ScenarioConfig config;
  config.n = 20;
  config.seed = 8;
  config.area_policy = core::AreaPolicy::kFixed;
  config.protocol.max_periods = 200;
  config.protocol.faults.fade_rate_per_min = 120.0;
  config.protocol.faults.fade_mean_duration_ms = 500.0;
  const core::RunMetrics m = core::run_trial(core::Protocol::kSt, config);
  EXPECT_GT(m.fade_episodes, 0U);
  EXPECT_TRUE(m.converged);
}

}  // namespace
