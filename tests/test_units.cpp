// Unit tests for the dB/dBm strong types (src/util/units.hpp).
#include "util/units.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace {

using namespace firefly::util;
using namespace firefly::util::literals;

TEST(Units, DbmToMilliwattsKnownValues) {
  EXPECT_DOUBLE_EQ(Dbm{0.0}.milliwatts(), 1.0);
  EXPECT_DOUBLE_EQ(Dbm{10.0}.milliwatts(), 10.0);
  EXPECT_DOUBLE_EQ(Dbm{30.0}.milliwatts(), 1000.0);
  EXPECT_NEAR(Dbm{23.0}.milliwatts(), 199.526, 1e-3);  // the paper's device power
  EXPECT_NEAR(Dbm{-95.0}.milliwatts(), 3.1623e-10, 1e-13);
}

TEST(Units, WattsIsMilliwattsScaled) {
  EXPECT_DOUBLE_EQ(Dbm{30.0}.watts(), 1.0);
}

TEST(Units, RoundTripThroughMilliwatts) {
  for (double v : {-120.0, -95.0, -40.0, 0.0, 23.0, 46.0}) {
    EXPECT_NEAR(dbm_from_milliwatts(Dbm{v}.milliwatts()).value, v, 1e-9);
  }
}

TEST(Units, ZeroPowerMapsToNegativeInfinity) {
  EXPECT_EQ(dbm_from_milliwatts(0.0).value, -std::numeric_limits<double>::infinity());
  EXPECT_EQ(db_from_ratio(0.0).value, -std::numeric_limits<double>::infinity());
}

TEST(Units, GainArithmeticKeepsTypes) {
  const Dbm power = 23.0_dBm;
  const Db loss = 118.0_dB;
  const Dbm received = power - loss;
  EXPECT_DOUBLE_EQ(received.value, -95.0);
  const Db difference = power - received;
  EXPECT_DOUBLE_EQ(difference.value, 118.0);
}

TEST(Units, DbRatio) {
  EXPECT_DOUBLE_EQ(Db{3.0103}.ratio(), std::pow(10.0, 0.30103));
  EXPECT_NEAR(Db{10.0}.ratio(), 10.0, 1e-12);
  EXPECT_NEAR(db_from_ratio(100.0).value, 20.0, 1e-12);
}

TEST(Units, PowerSumOfEqualPowersAddsThreeDb) {
  const Dbm sum = power_sum(Dbm{-90.0}, Dbm{-90.0});
  EXPECT_NEAR(sum.value, -90.0 + 10.0 * std::log10(2.0), 1e-9);
}

TEST(Units, PowerSumDominatedByStronger) {
  const Dbm sum = power_sum(Dbm{-50.0}, Dbm{-100.0});
  EXPECT_NEAR(sum.value, -50.0, 1e-4);  // 50 dB below adds ~0.00004 dB
  EXPECT_GT(sum.value, -50.0);
}

TEST(Units, ComparisonOperators) {
  EXPECT_LT(Dbm{-95.0}, Dbm{-90.0});
  EXPECT_GT(Db{10.0}, Db{3.0});
  EXPECT_EQ(Dbm{23.0}, 23.0_dBm);
}

TEST(Units, ToStringIncludesUnit) {
  EXPECT_NE(to_string(Dbm{-95.0}).find("dBm"), std::string::npos);
  EXPECT_NE(to_string(Db{10.0}).find("dB"), std::string::npos);
}

TEST(Units, ScalarDbScaling) {
  EXPECT_DOUBLE_EQ((2.0 * Db{10.0}).value, 20.0);
  EXPECT_DOUBLE_EQ((-Db{10.0}).value, -10.0);
}

}  // namespace
