// Tests for the sync-free birthday-protocol baseline (src/proto/birthday.hpp).
#include <gtest/gtest.h>

#include "proto/birthday.hpp"
#include "core/scenario.hpp"
#include "pco/sync_metrics.hpp"

namespace {

using namespace firefly;

core::ScenarioConfig small(std::uint64_t seed) {
  core::ScenarioConfig config;
  config.n = 30;
  config.seed = seed;
  config.area_policy = core::AreaPolicy::kFixed;
  return config;
}

TEST(Birthday, CompletesDiscoveryWithoutSync) {
  const auto m = core::run_trial(core::Protocol::kBirthday, small(1));
  EXPECT_TRUE(m.converged);  // discovery-only convergence
  EXPECT_GT(m.discovery_ms, 0.0);
  EXPECT_GT(m.mean_neighbors_discovered, 5.0);
  EXPECT_EQ(m.rach2_messages, 0U);  // no control plane at all
  EXPECT_EQ(m.final_fragments, 0U);
}

TEST(Birthday, NeverAligns) {
  // Run the engine directly and confirm firing phases stay spread out.
  auto config = small(2);
  config.protocol.stop_on_convergence = false;
  config.protocol.max_periods = 50;
  auto positions = core::deploy(config);
  proto::BirthdayEngine engine(std::move(positions), config.protocol, config.radio,
                              config.seed);
  const auto m = engine.run();
  EXPECT_TRUE(m.converged);
  std::vector<double> phases;
  for (const auto& d : engine.devices()) {
    phases.push_back(static_cast<double>(d.last_fire_slot % 100) / 100.0);
  }
  // i.i.d. uniform phases: spread close to 1, far from aligned.
  EXPECT_GT(pco::circular_spread(phases), 0.5);
}

TEST(Birthday, DiscoveryFasterThanFstAtScale) {
  // Without fire-synchronised beacon pile-ups, the pure birthday protocol
  // discovers faster than the synchronised FST at scale — the quantitative
  // form of "FST's sync hurts its own discovery".
  core::ScenarioConfig config;
  config.n = 300;
  config.seed = 4;
  config.area_policy = core::AreaPolicy::kDensityScaled;
  const auto birthday = core::run_trial(core::Protocol::kBirthday, config);
  const auto fst = core::run_trial(core::Protocol::kFst, config);
  ASSERT_TRUE(birthday.converged);
  ASSERT_TRUE(fst.converged);
  EXPECT_LT(birthday.discovery_ms, fst.discovery_ms);
}

TEST(Birthday, DeterministicPerSeed) {
  const auto a = core::run_trial(core::Protocol::kBirthday, small(5));
  const auto b = core::run_trial(core::Protocol::kBirthday, small(5));
  EXPECT_DOUBLE_EQ(a.convergence_ms, b.convergence_ms);
  EXPECT_EQ(a.total_messages(), b.total_messages());
}

TEST(Birthday, NameRegistered) {
  EXPECT_STREQ(core::to_string(core::Protocol::kBirthday), "Birthday");
}

}  // namespace
