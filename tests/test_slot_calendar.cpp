// Tests for the hierarchical slot-calendar scheduler (src/sim/slot_calendar.hpp).
//
// Mirrors test_event_queue.cpp (same observable semantics), adds calendar-
// specific cases — page/level crossings, far-horizon overflow, cursor
// retreat, intra-slot microsecond ordering — and ends with a differential
// fuzz that drives the calendar and the heap reference with the identical
// schedule/cancel sequence and asserts the pop streams match exactly.
#include "sim/slot_calendar.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace {

using firefly::sim::EventId;
using firefly::sim::EventQueue;
using firefly::sim::SimTime;
using firefly::sim::SlotCalendar;

TEST(SlotCalendar, PopsInTimeOrder) {
  SlotCalendar q;
  std::vector<int> order;
  q.schedule(SimTime::milliseconds(30), [&] { order.push_back(3); });
  q.schedule(SimTime::milliseconds(10), [&] { order.push_back(1); });
  q.schedule(SimTime::milliseconds(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SlotCalendar, FifoForSimultaneousEvents) {
  SlotCalendar q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime::milliseconds(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SlotCalendar, CancelPreventsExecution) {
  SlotCalendar q;
  bool ran = false;
  const auto id = q.schedule(SimTime::milliseconds(1), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(SlotCalendar, CancelTwiceFails) {
  SlotCalendar q;
  const auto id = q.schedule(SimTime::milliseconds(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(SlotCalendar, CancelAfterFireFails) {
  SlotCalendar q;
  const auto id = q.schedule(SimTime::milliseconds(1), [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id));
}

TEST(SlotCalendar, CancelInvalidIdFails) {
  SlotCalendar q;
  EXPECT_FALSE(q.cancel(0));
  EXPECT_FALSE(q.cancel(12345));
}

TEST(SlotCalendar, CancelStaleIdOfReusedSlotFails) {
  SlotCalendar q;
  const auto a = q.schedule(SimTime::milliseconds(1), [] {});
  q.pop().fn();
  // The arena reuses the record slot; its generation must have advanced.
  const auto b = q.schedule(SimTime::milliseconds(2), [] {});
  EXPECT_FALSE(q.cancel(a));
  EXPECT_TRUE(q.cancel(b));
}

TEST(SlotCalendar, NextTimeSkipsCancelled) {
  SlotCalendar q;
  const auto early = q.schedule(SimTime::milliseconds(1), [] {});
  q.schedule(SimTime::milliseconds(5), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), SimTime::milliseconds(5));
  EXPECT_EQ(q.size(), 1U);
}

TEST(SlotCalendar, NextTimeOnEmptyIsMax) {
  SlotCalendar q;
  EXPECT_EQ(q.next_time(), SimTime::max());
}

TEST(SlotCalendar, SizeTracksLiveEvents) {
  SlotCalendar q;
  const auto a = q.schedule(SimTime::milliseconds(1), [] {});
  q.schedule(SimTime::milliseconds(2), [] {});
  EXPECT_EQ(q.size(), 2U);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1U);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(SlotCalendar, IntraSlotMicrosecondOffsetsOrderCorrectly) {
  // Three events inside the same 1 ms slot, scheduled out of time order:
  // the bucket must fall back to exact (time, seq) ordering.
  SlotCalendar q;
  std::vector<int> order;
  q.schedule(SimTime::microseconds(5700), [&] { order.push_back(7); });
  q.schedule(SimTime::microseconds(5200), [&] { order.push_back(2); });
  q.schedule(SimTime::microseconds(5900), [&] { order.push_back(9); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{2, 7, 9}));
}

TEST(SlotCalendar, Level1PageCrossing) {
  // Slots 100 and 300 straddle a 256-slot page boundary, so the second
  // event starts in level 1 and cascades down when the cursor crosses.
  SlotCalendar q;
  std::vector<int> order;
  q.schedule(SimTime::milliseconds(300), [&] { order.push_back(2); });
  q.schedule(SimTime::milliseconds(100), [&] { order.push_back(1); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SlotCalendar, Level2AndFarHorizonCrossing) {
  SlotCalendar q;
  std::vector<int> order;
  // Level 2 (beyond 2^16 slots) and far overflow (beyond 2^24 slots).
  q.schedule(SimTime::milliseconds((1 << 24) + 7), [&] { order.push_back(3); });
  q.schedule(SimTime::milliseconds((1 << 16) + 5), [&] { order.push_back(2); });
  q.schedule(SimTime::milliseconds(1), [&] { order.push_back(1); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SlotCalendar, ScheduleBehindPeekedCursorRetreats) {
  // next_time() advances the internal cursor to slot 100; scheduling into
  // slot 10 afterwards must still pop first (cursor retreat + rebuild).
  SlotCalendar q;
  std::vector<int> order;
  q.schedule(SimTime::milliseconds(100), [&] { order.push_back(2); });
  EXPECT_EQ(q.next_time(), SimTime::milliseconds(100));
  q.schedule(SimTime::milliseconds(10), [&] { order.push_back(1); });
  EXPECT_EQ(q.next_time(), SimTime::milliseconds(10));
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SlotCalendar, StressRandomScheduleCancelKeepsOrder) {
  SlotCalendar q;
  firefly::util::Rng rng(77);
  std::vector<EventId> ids;
  for (int i = 0; i < 2000; ++i) {
    ids.push_back(q.schedule(SimTime::microseconds(
                                 static_cast<std::int64_t>(rng.uniform_index(10000))),
                             [] {}));
  }
  for (int i = 0; i < 500; ++i) {
    q.cancel(ids[rng.uniform_index(ids.size())]);
  }
  SimTime last = SimTime::zero();
  while (!q.empty()) {
    const auto fired = q.pop();
    EXPECT_GE(fired.time, last);
    last = fired.time;
  }
}

// The decisive test: drive both schedulers with the identical operation
// sequence and assert identical pop streams — time AND payload, which pins
// the (time, seq) total order, not just time order.
TEST(SlotCalendar, DifferentialFuzzMatchesHeapReference) {
  for (const std::uint64_t seed : {1ULL, 2015ULL, 99991ULL}) {
    SlotCalendar cal;
    EventQueue heap;
    firefly::util::Rng rng(seed);
    std::vector<std::pair<EventId, EventId>> ids;  // (calendar, heap)
    std::vector<int> cal_log;
    std::vector<int> heap_log;
    int tag = 0;
    SimTime now = SimTime::zero();

    for (int round = 0; round < 4000; ++round) {
      const double p = rng.uniform();
      if (p < 0.55) {
        // Mostly slot-aligned times (the engine's pattern), some with
        // microsecond offsets, a few far ahead.
        std::int64_t delta_slots =
            static_cast<std::int64_t>(rng.uniform_index(300));
        if (rng.uniform() < 0.02) delta_slots += 70000;   // level 2
        if (rng.uniform() < 0.005) delta_slots += 17000000;  // far horizon
        std::int64_t us = (now.us / 1000 + delta_slots) * 1000;
        if (rng.uniform() < 0.2) us += static_cast<std::int64_t>(rng.uniform_index(1000));
        const int t = tag++;
        ids.emplace_back(
            cal.schedule(SimTime::microseconds(us), [&cal_log, t] { cal_log.push_back(t); }),
            heap.schedule(SimTime::microseconds(us), [&heap_log, t] { heap_log.push_back(t); }));
      } else if (p < 0.75 && !ids.empty()) {
        const auto pick = rng.uniform_index(ids.size());
        const bool a = cal.cancel(ids[pick].first);
        const bool b = heap.cancel(ids[pick].second);
        EXPECT_EQ(a, b);
      } else if (!cal.empty()) {
        ASSERT_FALSE(heap.empty());
        ASSERT_EQ(cal.next_time(), heap.next_time());
        auto fc = cal.pop();
        auto fh = heap.pop();
        ASSERT_EQ(fc.time, fh.time);
        fc.fn();
        fh.fn();
        ASSERT_EQ(cal_log.back(), heap_log.back());
        now = fc.time;
      }
      ASSERT_EQ(cal.size(), heap.size());
    }
    while (!cal.empty()) {
      ASSERT_FALSE(heap.empty());
      auto fc = cal.pop();
      auto fh = heap.pop();
      ASSERT_EQ(fc.time, fh.time);
      fc.fn();
      fh.fn();
      ASSERT_EQ(cal_log.back(), heap_log.back());
    }
    EXPECT_TRUE(heap.empty());
    EXPECT_EQ(cal_log, heap_log);
  }
}

}  // namespace
