// Tests for the DESYNC backend (src/proto/desync): convergence to a
// sustained balanced round-robin schedule on the paper scenario, the
// observables it contributes to RunMetrics / soak windows / the metric
// registry, and the cold-boot semantics of recovered devices (covered
// indirectly: faulted runs must still evaluate and terminate cleanly).
#include <gtest/gtest.h>

#include <vector>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "core/service_mode.hpp"
#include "obs/telemetry.hpp"
#include "sim/soak.hpp"

namespace {

using namespace firefly;

core::ScenarioConfig desync_scenario(std::uint64_t seed) {
  core::ScenarioConfig config;
  config.n = 30;
  config.seed = seed;
  config.area_policy = core::AreaPolicy::kFixed;
  return config;
}

TEST(Desync, ConvergesToBalancedScheduleOnPaperScenario) {
  const core::RunMetrics m = core::run_trial(core::Protocol::kDesync, desync_scenario(3));
  ASSERT_TRUE(m.converged);
  EXPECT_GT(m.convergence_ms, 0.0);
  // Completion requires every hearing device within tolerance — the mean
  // residual at the end can be at most the tolerance itself.
  core::ProtocolParams defaults;
  EXPECT_LE(m.desync_error, static_cast<double>(defaults.desync_tolerance_slots));
  EXPECT_LT(m.desync_spread_slots, static_cast<double>(defaults.period_slots));
  // Discovery still runs underneath (DESYNC beacons carry the same
  // discovery payload as FST's).
  EXPECT_GT(m.mean_neighbors_discovered, 0.0);
}

TEST(Desync, ConvergesAcrossSeeds) {
  for (const std::uint64_t seed : {7ULL, 11ULL, 23ULL}) {
    const core::RunMetrics m =
        core::run_trial(core::Protocol::kDesync, desync_scenario(seed));
    EXPECT_TRUE(m.converged) << "seed " << seed;
  }
}

TEST(Desync, OtherProtocolsLeaveDesyncMetricsZero) {
  const core::RunMetrics m = core::run_trial(core::Protocol::kSt, desync_scenario(3));
  EXPECT_EQ(m.desync_error, 0.0);
  EXPECT_EQ(m.desync_spread_slots, 0.0);
}

TEST(Desync, TelemetryGaugeTracksDesyncError) {
  obs::Telemetry telemetry;
  core::RunHooks hooks;
  hooks.telemetry = &telemetry;
  const core::RunMetrics m =
      core::run_trial(core::Protocol::kDesync, desync_scenario(3), hooks);
  ASSERT_TRUE(m.converged);
  // protocol_complete() publishes the mean residual on every convergence
  // check; the last published value is from the check where completion
  // latched, where every hearing device was within tolerance.  (RunMetrics
  // samples again at run end, so the two need not be equal.)
  core::ProtocolParams defaults;
  const double published = telemetry.registry().gauge("proto.desync.error").value();
  EXPECT_GT(published, 0.0) << "gauge never published";
  EXPECT_LE(published, static_cast<double>(defaults.desync_tolerance_slots));
}

TEST(Desync, SoakWindowsCarryDesyncError) {
  core::ScenarioConfig config = desync_scenario(5);
  config.protocol.faults.churn_rate_per_min = 60.0;
  config.protocol.faults.mean_downtime_ms = 900.0;
  core::ServiceConfig service;
  service.duration_slots = 12'000;
  service.window_slots = 2'000;

  sim::SoakRecorder recorder;
  const core::ServiceReport report = core::run_service_trial(
      core::Protocol::kDesync, config, service, {}, &recorder);
  ASSERT_TRUE(report.ok()) << report.error;

  std::vector<sim::SoakWindow> windows;
  recorder.drain([&](const sim::SoakWindow& w) { windows.push_back(w); });
  ASSERT_EQ(windows.size(), 6u);
  bool any_measured = false;
  for (const sim::SoakWindow& w : windows) {
    EXPECT_GE(w.desync_error, 0.0);
    if (w.desync_error > 0.0) any_measured = true;
  }
  EXPECT_TRUE(any_measured) << "no window ever observed a residual";

  // ST soak windows must keep the field at its idle zero.
  sim::SoakRecorder st_recorder;
  const core::ServiceReport st_report = core::run_service_trial(
      core::Protocol::kSt, config, service, {}, &st_recorder);
  ASSERT_TRUE(st_report.ok()) << st_report.error;
  st_recorder.drain([&](const sim::SoakWindow& w) { EXPECT_EQ(w.desync_error, 0.0); });
}

}  // namespace
