// Tests for the TDMA scheduler (src/core/schedule.hpp).
#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/scenario.hpp"
#include "proto/st.hpp"
#include "phy/channel.hpp"
#include "util/rng.hpp"

namespace {

using namespace firefly;
using core::build_tdma_schedule;
using core::TdmaSchedule;
using Link = std::pair<std::uint32_t, std::uint32_t>;

std::unique_ptr<phy::Channel> clean_channel() {
  return std::make_unique<phy::Channel>(
      phy::RadioParams{}, std::make_unique<phy::PaperDualSlope>(),
      std::make_unique<phy::NoShadowing>(), std::make_unique<phy::NoFading>(),
      util::Rng(1));
}

TEST(Schedule, EmptyLinkSet) {
  auto channel = clean_channel();
  const TdmaSchedule s = build_tdma_schedule({}, {}, *channel);
  EXPECT_TRUE(s.valid());
  EXPECT_EQ(s.frame_slots, 0U);
  EXPECT_DOUBLE_EQ(s.aggregate_throughput_mbps(), 0.0);
}

TEST(Schedule, SingleLinkGetsOneSlot) {
  auto channel = clean_channel();
  const std::vector<geo::Vec2> pos{{0.0, 0.0}, {20.0, 0.0}};
  const TdmaSchedule s = build_tdma_schedule({{0, 1}}, pos, *channel);
  EXPECT_TRUE(s.valid());
  EXPECT_EQ(s.frame_slots, 1U);
  EXPECT_GT(s.links[0].rate_mbps, 0.0);
}

TEST(Schedule, SharedEndpointLinksSerialise) {
  // A star: three links from device 0 must occupy three distinct slots.
  auto channel = clean_channel();
  const std::vector<geo::Vec2> pos{{50.0, 50.0}, {60.0, 50.0}, {50.0, 60.0}, {40.0, 50.0}};
  const TdmaSchedule s =
      build_tdma_schedule({{0, 1}, {0, 2}, {0, 3}}, pos, *channel);
  EXPECT_TRUE(s.valid());
  EXPECT_EQ(s.frame_slots, 3U);
  std::set<std::uint32_t> slots;
  for (const auto& link : s.links) slots.insert(link.slot);
  EXPECT_EQ(slots.size(), 3U);
}

TEST(Schedule, FarApartLinksShareASlot) {
  // Two links separated by 100 km: zero interference, same slot.
  auto channel = clean_channel();
  const std::vector<geo::Vec2> pos{
      {0.0, 0.0}, {10.0, 0.0}, {100000.0, 0.0}, {100010.0, 0.0}};
  const TdmaSchedule s = build_tdma_schedule({{0, 1}, {2, 3}}, pos, *channel);
  EXPECT_TRUE(s.valid());
  EXPECT_EQ(s.frame_slots, 1U);
  EXPECT_EQ(s.links[0].slot, s.links[1].slot);
  EXPECT_EQ(s.conflict_edges, 0U);
}

TEST(Schedule, NearbyLinksConflictPhysically) {
  // Disjoint endpoints but 30 m apart: the foreign transmitter is easily
  // audible at the other receiver, so the links must serialise.
  auto channel = clean_channel();
  const std::vector<geo::Vec2> pos{{0.0, 0.0}, {10.0, 0.0}, {0.0, 30.0}, {10.0, 30.0}};
  const TdmaSchedule s = build_tdma_schedule({{0, 1}, {2, 3}}, pos, *channel);
  EXPECT_TRUE(s.valid());
  EXPECT_EQ(s.frame_slots, 2U);
  EXPECT_EQ(s.conflict_edges, 1U);
}

TEST(Schedule, GreedyBoundHolds) {
  // Random dense links in the Table I box: colours <= max degree + 1.
  auto channel = clean_channel();
  util::Rng rng(9);
  std::vector<geo::Vec2> pos;
  for (int i = 0; i < 40; ++i) {
    pos.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  std::vector<Link> links;
  for (std::uint32_t i = 0; i + 1 < 40; i += 2) links.push_back({i, i + 1});
  const TdmaSchedule s = build_tdma_schedule(links, pos, *channel);
  EXPECT_TRUE(s.valid());
  EXPECT_LE(s.frame_slots, s.max_conflict_degree + 1);
  EXPECT_GE(s.frame_slots, 1U);
}

TEST(Schedule, ThroughputAccountsForFrameSharing) {
  // Serialising two equal links across 2 slots halves the aggregate vs the
  // sum of rates.
  auto channel = clean_channel();
  const std::vector<geo::Vec2> pos{{0.0, 0.0}, {10.0, 0.0}, {0.0, 30.0}, {10.0, 30.0}};
  const TdmaSchedule s = build_tdma_schedule({{0, 1}, {2, 3}}, pos, *channel);
  const double rate_sum = s.links[0].rate_mbps + s.links[1].rate_mbps;
  EXPECT_NEAR(s.aggregate_throughput_mbps(), rate_sum / 2.0, 1e-9);
}

TEST(Schedule, SchedulesTheStTree) {
  // End-to-end: run ST, schedule the tree it grew, verify the schedule.
  core::ScenarioConfig config;
  config.n = 40;
  config.seed = 17;
  config.area_policy = core::AreaPolicy::kFixed;
  auto positions = core::deploy(config);
  proto::StEngine engine(positions, config.protocol, config.radio, config.seed);
  const auto metrics = engine.run();
  ASSERT_TRUE(metrics.converged);

  std::vector<Link> tree_links;
  for (const auto& d : engine.devices()) {
    for (const std::uint32_t other : d.tree_neighbors) {
      if (d.id < other) tree_links.push_back({d.id, other});
    }
  }
  ASSERT_GE(tree_links.size(), 39U);

  auto channel = phy::make_paper_channel(config.seed, config.radio);
  const TdmaSchedule s = build_tdma_schedule(tree_links, positions, *channel);
  EXPECT_TRUE(s.valid());
  EXPECT_GT(s.aggregate_throughput_mbps(), 0.0);
  // In a single collision domain (fixed 100 m box) most links conflict:
  // the frame is long.
  EXPECT_GT(s.frame_slots, 5U);
}

}  // namespace
