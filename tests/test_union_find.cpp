// Tests for the disjoint-set forest (src/graph/union_find.hpp).
#include "graph/union_find.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace {

using firefly::graph::UnionFind;

TEST(UnionFind, StartsFullyDisjoint) {
  UnionFind uf(5);
  EXPECT_EQ(uf.set_count(), 5U);
  EXPECT_EQ(uf.element_count(), 5U);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.size_of(i), 1U);
  }
}

TEST(UnionFind, UniteMergesAndReportsCycle) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_EQ(uf.set_count(), 2U);
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_TRUE(uf.unite(1, 3));
  EXPECT_EQ(uf.set_count(), 1U);
  EXPECT_FALSE(uf.unite(0, 2));  // already together
}

TEST(UnionFind, UnionBySizeKeepsLargerRepresentative) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(0, 2);  // {0,1,2}
  uf.unite(3, 4);  // {3,4}
  const std::uint32_t big_root = uf.find(0);
  uf.unite(4, 2);
  // The larger set's representative survives (paper: the head comes from
  // the tree with the most nodes).
  EXPECT_EQ(uf.find(3), big_root);
  EXPECT_EQ(uf.size_of(3), 5U);
}

TEST(UnionFind, SizesAccumulate) {
  UnionFind uf(8);
  for (std::uint32_t i = 1; i < 8; ++i) uf.unite(0, i);
  EXPECT_EQ(uf.size_of(5), 8U);
  EXPECT_EQ(uf.set_count(), 1U);
}

TEST(UnionFind, RandomisedInvariants) {
  firefly::util::Rng rng(55);
  const std::size_t n = 500;
  UnionFind uf(n);
  std::size_t merges = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.uniform_index(n));
    const auto b = static_cast<std::uint32_t>(rng.uniform_index(n));
    if (a == b) continue;
    const bool merged = uf.unite(a, b);
    if (merged) ++merges;
    ASSERT_TRUE(uf.same(a, b));
  }
  // Every successful unite reduces the set count by exactly one.
  EXPECT_EQ(uf.set_count(), n - merges);
  // Sizes of distinct roots sum to n.
  std::size_t total = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (uf.find(v) == v) total += uf.size_of(v);
  }
  EXPECT_EQ(total, n);
}

TEST(UnionFind, FindIsIdempotent) {
  UnionFind uf(10);
  uf.unite(0, 5);
  uf.unite(5, 9);
  const auto root = uf.find(9);
  EXPECT_EQ(uf.find(9), root);
  EXPECT_EQ(uf.find(root), root);
}

}  // namespace
