// check_bench_json — schema validator for firefly-bench-v1 JSONL files.
//
//   check_bench_json <file.json> [--require-series]
//
// Used by CI (and by hand) to gate the machine-readable bench output
// without pulling in python or a JSON library: a small recursive-descent
// parser validates every line and collects top-level keys.  Checks:
//   * every line is a syntactically valid JSON object,
//   * line 1 is the meta record: schema == "firefly-bench-v1" plus bench,
//     git_sha and compiler keys,
//   * every line carries a "bench" key,
//   * with --require-series, at least one line has "protocol" and "n"
//     (a sweep-series record, as fig3/fig4 emit).
// Exit 0 on success, 1 on any violation (first violation is reported).
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace {

// Minimal JSON validator; collects top-level object keys and the string
// value of top-level string fields (enough to check the schema tag).
class LineParser {
 public:
  explicit LineParser(const std::string& line) : p_(line.data()), end_(p_ + line.size()) {}

  /// Parse one complete JSON object covering the whole line.
  bool parse() {
    skip_ws();
    if (!parse_object(/*top_level=*/true)) return false;
    skip_ws();
    return p_ == end_;
  }

  [[nodiscard]] bool has_key(const std::string& key) const {
    for (const auto& [k, v] : top_fields_)
      if (k == key) return true;
    return false;
  }

  /// Value of a top-level string field ("" when absent or not a string).
  [[nodiscard]] std::string string_value(const std::string& key) const {
    for (const auto& [k, v] : top_fields_)
      if (k == key) return v;
    return {};
  }

 private:
  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\r' || *p_ == '\n')) ++p_;
  }

  bool parse_string(std::string* out) {
    if (p_ == end_ || *p_ != '"') return false;
    ++p_;
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
        switch (*p_) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            if (out) out->push_back(*p_);
            ++p_;
            break;
          case 'u': {
            ++p_;
            for (int i = 0; i < 4; ++i, ++p_)
              if (p_ == end_ || !std::isxdigit(static_cast<unsigned char>(*p_))) return false;
            break;
          }
          default:
            return false;
        }
      } else {
        if (out) out->push_back(*p_);
        ++p_;
      }
    }
    if (p_ == end_) return false;
    ++p_;  // closing quote
    return true;
  }

  bool parse_number() {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) return false;
    while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    if (p_ != end_ && *p_ == '.') {
      ++p_;
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) return false;
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) return false;
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    return p_ != start;
  }

  bool parse_literal(const char* lit) {
    for (const char* c = lit; *c != '\0'; ++c, ++p_)
      if (p_ == end_ || *p_ != *c) return false;
    return true;
  }

  bool parse_value(std::string* string_out) {
    skip_ws();
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': return parse_object(false);
      case '[': return parse_array();
      case '"': return parse_string(string_out);
      case 't': return parse_literal("true");
      case 'f': return parse_literal("false");
      case 'n': return parse_literal("null");
      default: return parse_number();
    }
  }

  bool parse_array() {
    if (*p_ != '[') return false;
    ++p_;
    skip_ws();
    if (p_ != end_ && *p_ == ']') { ++p_; return true; }
    while (true) {
      if (!parse_value(nullptr)) return false;
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == ']') { ++p_; return true; }
      if (*p_ != ',') return false;
      ++p_;
    }
  }

  bool parse_object(bool top_level) {
    if (p_ == end_ || *p_ != '{') return false;
    ++p_;
    skip_ws();
    if (p_ != end_ && *p_ == '}') { ++p_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (p_ == end_ || *p_ != ':') return false;
      ++p_;
      std::string value;
      if (!parse_value(top_level ? &value : nullptr)) return false;
      if (top_level) top_fields_.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == '}') { ++p_; return true; }
      if (*p_ != ',') return false;
      ++p_;
    }
  }

  const char* p_;
  const char* end_;
  std::vector<std::pair<std::string, std::string>> top_fields_;
};

int fail(const std::string& path, std::size_t line_no, const std::string& why) {
  std::cerr << path << ":" << line_no << ": " << why << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool require_series = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--require-series") require_series = true;
    else if (path.empty()) path = arg;
    else {
      std::cerr << "usage: check_bench_json <file.json> [--require-series]\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: check_bench_json <file.json> [--require-series]\n";
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }

  std::string line;
  std::size_t line_no = 0;
  std::size_t series_records = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) return fail(path, line_no, "empty line");
    LineParser parser(line);
    if (!parser.parse()) return fail(path, line_no, "not a valid JSON object");
    if (line_no == 1) {
      if (parser.string_value("schema") != "firefly-bench-v1")
        return fail(path, line_no, "meta record missing schema \"firefly-bench-v1\"");
      for (const char* key : {"bench", "git_sha", "compiler"})
        if (!parser.has_key(key))
          return fail(path, line_no, std::string("meta record missing \"") + key + "\"");
    }
    if (!parser.has_key("bench"))
      return fail(path, line_no, "record missing \"bench\" key");
    if (parser.has_key("protocol") && parser.has_key("n")) ++series_records;
  }
  if (line_no == 0) return fail(path, 1, "file is empty");
  if (require_series && series_records == 0)
    return fail(path, line_no, "no series records (need \"protocol\" and \"n\")");

  std::cout << path << ": OK (" << line_no << " records, " << series_records
            << " series)\n";
  return 0;
}
